package repro

// End-to-end tests of bfhrfd's serve mode (-serve-http) through the real
// binaries: a standalone snapshot-backed service, SIGTERM drain with a
// query in flight, and a coordinator-backed service surviving a worker
// crash mid-request.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// queryResponse mirrors the /v1/query JSON answer.
type queryResponse struct {
	Collection string  `json:"collection"`
	Epoch      uint64  `json:"epoch"`
	Variant    string  `json:"variant"`
	Coverage   float64 `json:"coverage"`
	Results    []struct {
		Index int     `json:"index"`
		AvgRF float64 `json:"avg_rf"`
	} `json:"results"`
}

// serveProc is a bfhrfd -serve-http subprocess with its announced admin
// address and collected stderr.
type serveProc struct {
	cmd       *exec.Cmd
	adminAddr string
	ready     chan struct{} // closed once the query service announces itself
	scanDone  chan struct{} // closed once the stderr pipe hits EOF
	mu        sync.Mutex
	stderr    strings.Builder
}

// Stderr returns everything the process has written to stderr so far.
func (p *serveProc) Stderr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stderr.String()
}

// signal delivers sig to the process.
func (p *serveProc) signal(t *testing.T, sig os.Signal) {
	t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		t.Fatalf("signal %v: %v", sig, err)
	}
}

// waitExit waits for the process to exit and returns its exit code,
// failing the test if it does not exit within the timeout. The stderr
// scanner must hit EOF before Wait closes the pipe, or the final lines
// ("drained, exiting") can be lost to the read race.
func (p *serveProc) waitExit(t *testing.T, timeout time.Duration) int {
	t.Helper()
	select {
	case <-p.scanDone:
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		t.Fatalf("serve process did not exit within %s; stderr:\n%s", timeout, p.Stderr())
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
		return -1
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		t.Fatalf("serve process did not exit within %s; stderr:\n%s", timeout, p.Stderr())
		return -1
	}
}

// startServeProc launches a bfhrfd serve-mode process, parses the admin
// address off its stderr, and closes ready once the "serving" line (the
// query service accepting requests) appears. Extra env entries arm
// BFHRF_FAULTS chaos in the child.
func startServeProc(t *testing.T, env []string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), "bfhrfd"), args...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, ready: make(chan struct{}), scanDone: make(chan struct{})}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	adminCh := make(chan string, 1)
	go func() {
		defer close(p.scanDone)
		sc := bufio.NewScanner(stderr)
		readyClosed := false
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.stderr.WriteString(line)
			p.stderr.WriteByte('\n')
			p.mu.Unlock()
			if rest, found := strings.CutPrefix(line, "bfhrfd: admin serving on "); found {
				select {
				case adminCh <- strings.TrimSpace(rest):
				default:
				}
			}
			if !readyClosed && (strings.Contains(line, "bfhrfd: serving queries for collection") ||
				strings.Contains(line, "collection(s) over HTTP")) {
				readyClosed = true
				close(p.ready)
			}
		}
	}()
	select {
	case p.adminAddr = <-adminCh:
	case <-time.After(20 * time.Second):
		t.Fatalf("serve process never announced its admin address; stderr:\n%s", p.Stderr())
	}
	select {
	case <-p.ready:
	case <-time.After(20 * time.Second):
		t.Fatalf("serve process never announced its query service; stderr:\n%s", p.Stderr())
	}
	return p
}

// postQueryJSON POSTs body to the process's /v1/query and decodes the
// response. The generous client timeout is the no-hang guard: every
// failure mode must surface as a status code, not a stuck connection.
func postQueryJSON(t *testing.T, adminAddr, tenant string, body any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", fmt.Sprintf("http://%s/v1/query", adminAddr), bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// baselineAvgRF parses bfhrf's "index\tavgRF" stdout into a dense slice.
func baselineAvgRF(t *testing.T, stdout string, want int) []float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != want {
		t.Fatalf("baseline lines = %d, want %d:\n%s", len(lines), want, stdout)
	}
	out := make([]float64, len(lines))
	for _, line := range lines {
		fields := strings.Split(line, "\t")
		if len(fields) != 2 {
			t.Fatalf("malformed baseline line %q", line)
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil {
			t.Fatal(err)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		out[idx] = v
	}
	return out
}

// serveFixture generates reference and query tree files, publishes the
// references as epoch 1 of a bfhsnap store, and writes a catalog
// manifest naming it "refs". Returns (refs, queries, manifest) paths.
func serveFixture(t *testing.T) (string, string, string) {
	t.Helper()
	data := t.TempDir()
	refs := filepath.Join(data, "refs.nwk")
	queries := filepath.Join(data, "q.nwk")
	snap := filepath.Join(data, "snap")
	manifest := filepath.Join(data, "collections.json")
	if _, stderr, err := run(t, "treegen", "-n", "12", "-r", "24", "-seed", "17", "-out", refs); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}
	if _, stderr, err := run(t, "treegen", "-n", "12", "-r", "24", "-seed", "17", "-queries", "5", "-moves", "2", "-out", queries); err != nil {
		t.Fatalf("treegen -queries: %v\n%s", err, stderr)
	}
	if _, stderr, err := run(t, "bfhrf", "-ref", refs, "-save-bfh", snap); err != nil {
		t.Fatalf("bfhrf -save-bfh: %v\n%s", err, stderr)
	}
	m := fmt.Sprintf(`{"collections":[{"name":"refs","dir":%q}]}`, snap)
	if err := os.WriteFile(manifest, []byte(m), 0o644); err != nil {
		t.Fatal(err)
	}
	return refs, queries, manifest
}

// readTreeLines loads the newline-separated newick strings of path.
func readTreeLines(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSpace(string(raw)), "\n")
}

// TestCLIServeStandalone is the serve-mode acceptance e2e: a standalone
// bfhrfd serves a snapshot collection over HTTP, its /v1/query answers
// match the single-node bfhrf baseline exactly, and SIGTERM drains it
// to a clean zero exit with /healthz flipped to draining.
func TestCLIServeStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	_, queries, manifest := serveFixture(t)
	qTrees := readTreeLines(t, queries)

	// Single-node baseline through the snapshot path — byte-for-byte the
	// same hash the service will load.
	base, _, err := run(t, "bfhrf", "-load-bfh", readManifestDir(t, manifest), "-query", queries)
	if err != nil {
		t.Fatalf("bfhrf -load-bfh baseline: %v", err)
	}
	want := baselineAvgRF(t, base, len(qTrees))

	p := startServeProc(t, nil, "-serve-http", "-collections", manifest, "-admin", "127.0.0.1:0")

	status, body := httpGet(t, fmt.Sprintf("http://%s/healthz", p.adminAddr))
	if status != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz = %d %q, want 200 ok", status, body)
	}

	status, body = postQueryJSON(t, p.adminAddr, "e2e", map[string]any{
		"collection": "refs", "trees": qTrees,
	})
	if status != http.StatusOK {
		t.Fatalf("query status = %d, body %q", status, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad query response %q: %v", body, err)
	}
	if resp.Collection != "refs" || resp.Epoch != 1 || resp.Coverage != 1 {
		t.Errorf("response meta = %q/%d/%g, want refs/1/1", resp.Collection, resp.Epoch, resp.Coverage)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(want))
	}
	for _, r := range resp.Results {
		if r.AvgRF != want[r.Index] {
			t.Errorf("query %d: avg_rf = %v, want %v (bfhrf baseline)", r.Index, r.AvgRF, want[r.Index])
		}
	}

	// The shed counter family must be visible (at zero) on /metrics.
	if _, metrics := httpGet(t, fmt.Sprintf("http://%s/metrics", p.adminAddr)); !strings.Contains(metrics, "bfhrf_requests_shed_total") {
		t.Error("/metrics missing bfhrf_requests_shed_total")
	}

	// SIGTERM with nothing in flight: an immediate clean drain. (The
	// healthz draining flip has a real observation window only with a
	// query in flight — TestCLIServeDrainMidFlight asserts it.)
	p.signal(t, syscall.SIGTERM)
	if code := p.waitExit(t, 15*time.Second); code != 0 {
		t.Errorf("exit code = %d, want 0; stderr:\n%s", code, p.Stderr())
	}
	if !strings.Contains(p.Stderr(), "drained, exiting") {
		t.Errorf("no drain confirmation on stderr:\n%s", p.Stderr())
	}
}

// readManifestDir extracts the single collection dir from a fixture
// manifest, so baselines can hit the same snapshot store.
func readManifestDir(t *testing.T, manifest string) string {
	t.Helper()
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Collections []struct {
			Dir string `json:"dir"`
		} `json:"collections"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Collections) != 1 {
		t.Fatalf("fixture manifest has %d collections, want 1", len(m.Collections))
	}
	return m.Collections[0].Dir
}

// TestCLIServeDrainMidFlight arms a delay fault inside query execution,
// fires queries that are still running when SIGTERM lands, and asserts
// the drain semantics: the in-flight queries complete with correct
// answers, new work is shed, and the process exits 0.
func TestCLIServeDrainMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	_, queries, manifest := serveFixture(t)
	qTrees := readTreeLines(t, queries)
	base, _, err := run(t, "bfhrf", "-load-bfh", readManifestDir(t, manifest), "-query", queries)
	if err != nil {
		t.Fatalf("bfhrf baseline: %v", err)
	}
	want := baselineAvgRF(t, base, len(qTrees))

	// Every admitted query sleeps 600ms at the backend boundary, so the
	// SIGTERM below is guaranteed to land mid-flight.
	p := startServeProc(t, []string{"BFHRF_FAULTS=serve.query:delay@1x*:600ms"},
		"-serve-http", "-collections", manifest, "-admin", "127.0.0.1:0", "-drain-timeout", "30s")

	type answer struct {
		status int
		body   string
	}
	results := make(chan answer, 2)
	for i := 0; i < 2; i++ {
		go func() {
			s, b := postQueryJSON(t, p.adminAddr, "drain", map[string]any{
				"collection": "refs", "trees": qTrees,
			})
			results <- answer{s, b}
		}()
	}
	// Let both requests pass admission and reach the armed delay, then
	// drain under them.
	time.Sleep(200 * time.Millisecond)
	p.signal(t, syscall.SIGTERM)

	// While the delayed queries hold the service open, /healthz must
	// report draining and fresh work must be shed with a Retry-After.
	flipped := false
	var status int
	var body string
	for i := 0; i < 30 && !flipped; i++ {
		status, body = httpGet(t, fmt.Sprintf("http://%s/healthz", p.adminAddr))
		flipped = status == http.StatusServiceUnavailable && strings.Contains(body, "draining")
		if !flipped {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !flipped {
		t.Errorf("healthz never flipped to draining mid-drain (last: %d %q)", status, body)
	}
	status, body = postQueryJSON(t, p.adminAddr, "drain", map[string]any{
		"collection": "refs", "trees": qTrees,
	})
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("fresh query during drain = %d %q, want 503 draining", status, body)
	}

	for i := 0; i < 2; i++ {
		a := <-results
		if a.status != http.StatusOK {
			t.Fatalf("in-flight query during drain: status %d, body %q", a.status, a.body)
		}
		var resp queryResponse
		if err := json.Unmarshal([]byte(a.body), &resp); err != nil {
			t.Fatalf("bad response %q: %v", a.body, err)
		}
		for _, r := range resp.Results {
			if r.AvgRF != want[r.Index] {
				t.Errorf("drained query %d: avg_rf = %v, want %v", r.Index, r.AvgRF, want[r.Index])
			}
		}
	}
	if code := p.waitExit(t, 20*time.Second); code != 0 {
		t.Errorf("exit code = %d, want 0; stderr:\n%s", code, p.Stderr())
	}
	if !strings.Contains(p.Stderr(), "drained, exiting") {
		t.Errorf("no drain confirmation on stderr:\n%s", p.Stderr())
	}
}

// TestCLIServeCoordinatorChaos runs the coordinator-backed service with
// a worker armed to crash mid-request: the HTTP client must get a clean
// response — a 200 (failover recovered the shard) or a 5xx — never a
// hang, and the coordinator must stay up for subsequent queries.
func TestCLIServeCoordinatorChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	refs, queries, _ := serveFixture(t)
	qTrees := readTreeLines(t, queries)
	base, _, err := run(t, "bfhrf", "-ref", refs, "-query", queries)
	if err != nil {
		t.Fatalf("bfhrf baseline: %v", err)
	}
	want := baselineAvgRF(t, base, len(qTrees))

	// The 24 reference trees split into -chunk 7 chunks of 7/7/7/3, dealt
	// round-robin: the victim (worker 1) parses chunks 1 and 3 — exactly
	// 10 trees — at load. crash@13 therefore lands on the 3rd query tree
	// of the first /v1/query scatter: after load, mid-request.
	survivor, _ := startWorkerProcess(t)
	victimAddr, _, victim := startWorkerProcessCmd(t, "BFHRF_FAULTS=parse.tree:crash@13")

	p := startServeProc(t, nil,
		"-workers", survivor+","+victimAddr, "-ref", refs, "-chunk", "7",
		"-serve-http", "-collection-name", "refs", "-admin", "127.0.0.1:0",
		"-retries", "3", "-rpc-timeout", "10s")

	status, body := postQueryJSON(t, p.adminAddr, "chaos", map[string]any{
		"collection": "refs", "trees": qTrees,
	})
	if status != http.StatusOK && (status < 500 || status > 599) {
		t.Fatalf("chaos query status = %d, want 200 or 5xx; body %q", status, body)
	}
	if status == http.StatusOK {
		var resp queryResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("bad response %q: %v", body, err)
		}
		if resp.Coverage == 1 {
			// Full coverage means failover recovered the dead shard: the
			// answers must match the single-node baseline exactly.
			for _, r := range resp.Results {
				if r.AvgRF != want[r.Index] {
					t.Errorf("post-failover query %d: avg_rf = %v, want %v", r.Index, r.AvgRF, want[r.Index])
				}
			}
		}
	}
	if werr := victim.Wait(); werr == nil {
		t.Error("victim worker exited cleanly; the armed crash never fired")
	}

	// The service survives the crash: a follow-up query on the surviving
	// cluster must answer correctly.
	status, body = postQueryJSON(t, p.adminAddr, "chaos", map[string]any{
		"collection": "refs", "trees": qTrees,
	})
	if status != http.StatusOK {
		t.Fatalf("post-crash query status = %d, body %q", status, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad response %q: %v", body, err)
	}
	if resp.Coverage != 1 {
		t.Errorf("post-crash coverage = %g, want 1 (survivor holds every shard after failover)", resp.Coverage)
	}
	for _, r := range resp.Results {
		if r.AvgRF != want[r.Index] {
			t.Errorf("post-crash query %d: avg_rf = %v, want %v", r.Index, r.AvgRF, want[r.Index])
		}
	}

	p.signal(t, syscall.SIGTERM)
	if code := p.waitExit(t, 20*time.Second); code != 0 {
		t.Errorf("exit code = %d, want 0; stderr:\n%s", code, p.Stderr())
	}
}
