package repro

// Crash-safe resumable batch runs: AverageRFFiles with a checkpoint file
// that records each query tree's average as soon as it is computed, so an
// interrupted run (crash, OOM kill, SIGINT) resumes where it left off
// instead of starting over — and a resumed run is bit-identical to an
// uninterrupted one.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/collection"
	"repro/internal/core"
)

// ErrCanceled is returned by AverageRFFilesResumable when RunOptions.Cancel
// fires; the results completed (and checkpointed) so far accompany it.
var ErrCanceled = core.ErrCanceled

// RunOptions configure checkpointing and cancellation for a batch run.
type RunOptions struct {
	// CheckpointPath is the record file for per-query results. Empty
	// disables checkpointing (the run behaves like AverageRFFiles).
	CheckpointPath string
	// Resume loads CheckpointPath (which must match this run's reference
	// fingerprint and configuration) and skips already-completed query
	// trees. Without Resume an existing checkpoint is overwritten.
	Resume bool
	// CheckpointInterval is how many results accumulate between
	// flush+fsync cycles (0 = checkpoint.DefaultInterval).
	CheckpointInterval int
	// Cancel, when closed, stops the run gracefully: in-flight queries
	// drain, the checkpoint is flushed, and the partial results are
	// returned with ErrCanceled.
	Cancel <-chan struct{}
	// OnResume, if set, is called once after a successful Resume with the
	// number of already-completed queries restored from the checkpoint.
	OnResume func(done int)
}

// resultKey canonically renders every Config field that affects results,
// for the checkpoint header: a checkpoint written under one key must not
// resume a run with another.
func (c Config) resultKey() string {
	return fmt.Sprintf("variant=%s min=%d max=%d intersect=%t skipbad=%t maxtaxa=%d maxtreebytes=%d maxinput=%d",
		c.Variant, c.MinSplitSize, c.MaxSplitSize, c.IntersectTaxa,
		c.SkipBadTrees, c.MaxTaxa, c.MaxTreeBytes, c.MaxInputBytes)
}

// ErrCheckpointMismatch is returned when -resume finds a checkpoint
// written against a different reference collection or configuration.
var ErrCheckpointMismatch = checkpoint.ErrMismatch

// AverageRFFilesResumable is AverageRFFiles with crash-safety: results
// stream into run.CheckpointPath as they are computed, a resumed run
// (run.Resume) skips query trees already recorded — after verifying the
// checkpoint's reference fingerprint matches the current reference set —
// and run.Cancel flushes a valid checkpoint before returning.
func AverageRFFilesResumable(queryPath, refPath string, cfg Config, run RunOptions) ([]Result, error) {
	q, err := collection.OpenFileOpts(queryPath, cfg.ingest())
	if err != nil {
		return nil, err
	}
	defer q.Close()
	r, err := collection.OpenFileOpts(refPath, cfg.ingest())
	if err != nil {
		return nil, err
	}
	defer r.Close()

	h, qsrc, err := prepare(q, r, cfg)
	if err != nil {
		return nil, err
	}
	return resumableQuery(h, qsrc, cfg, run)
}

// AverageRFFileResumable runs the query file against this hash with the
// same checkpoint/resume semantics as AverageRFFilesResumable — but
// without rebuilding the reference hash, so a snapshot-loaded hash can
// serve crash-safe batch runs directly.
func (h *Hash) AverageRFFileResumable(queryPath string, run RunOptions) ([]Result, error) {
	q, err := collection.OpenFileOpts(queryPath, h.cfg.ingest())
	if err != nil {
		return nil, err
	}
	defer q.Close()
	return resumableQuery(h.h, q, h.cfg, run)
}

// resumableQuery is the checkpoint-wired query loop shared by the
// file-pair entry point and the prebuilt-hash method.
func resumableQuery(h *core.FreqHash, qsrc collection.Source, cfg Config, run RunOptions) ([]Result, error) {
	v, info, err := cfg.variant()
	if err != nil {
		return nil, err
	}
	opts := core.QueryOptions{
		Workers:         cfg.Workers,
		Filter:          cfg.filter(h.Taxa().Len()),
		Variant:         v,
		RequireComplete: true,
		Cancel:          run.Cancel,
		Cache:           cfg.queryCache(),
	}

	done := map[int]float64{}
	var w *checkpoint.Writer
	if run.CheckpointPath != "" {
		hdr := checkpoint.Header{Fingerprint: h.Fingerprint(), Config: cfg.resultKey()}
		if run.Resume {
			var loaded *checkpoint.LoadResult
			w, loaded, err = checkpoint.Resume(run.CheckpointPath, hdr)
			if err != nil {
				return nil, err
			}
			done = loaded.Done
			if run.OnResume != nil {
				run.OnResume(len(done))
			}
		} else {
			w, err = checkpoint.Create(run.CheckpointPath, hdr)
			if err != nil {
				return nil, err
			}
		}
		defer w.Close()
		if run.CheckpointInterval > 0 {
			w.Interval = run.CheckpointInterval
		}
		opts.Skip = func(idx int) bool { _, ok := done[idx]; return ok }

		var ckMu sync.Mutex
		var ckErr error
		opts.OnResult = func(res core.Result) {
			if err := w.Record(res.Index, res.AvgRF); err != nil {
				ckMu.Lock()
				if ckErr == nil {
					ckErr = err
				}
				ckMu.Unlock()
			}
		}
		results, err := runQuery(h, qsrc, opts, info)
		canceled := errors.Is(err, core.ErrCanceled)
		if err != nil && !canceled {
			return nil, err
		}
		if flushErr := w.Flush(); flushErr != nil && ckErr == nil {
			ckErr = flushErr
		}
		if ckErr != nil {
			return nil, fmt.Errorf("repro: checkpointing failed: %w", ckErr)
		}
		merged, mergeErr := mergeResults(results, done, canceled)
		if mergeErr != nil {
			return nil, mergeErr
		}
		if canceled {
			return merged, ErrCanceled
		}
		return merged, nil
	}

	results, err := runQuery(h, qsrc, opts, info)
	if err != nil && !errors.Is(err, core.ErrCanceled) {
		return nil, err
	}
	merged, mergeErr := mergeResults(results, nil, errors.Is(err, core.ErrCanceled))
	if mergeErr != nil {
		return nil, mergeErr
	}
	return merged, err
}

func runQuery(h *core.FreqHash, q collection.Source, opts core.QueryOptions, info bool) ([]core.Result, error) {
	if info {
		return h.AverageInfoRF(q, opts)
	}
	return h.AverageRF(q, opts)
}

// mergeResults folds checkpoint-restored averages into freshly computed
// ones and verifies the combined set is a contiguous 0..n-1 range (unless
// the run was canceled, in which case gaps are expected). A checkpoint
// record beyond the query count — stale state from a different query
// file — fails loudly rather than folding in silently.
func mergeResults(computed []core.Result, done map[int]float64, canceled bool) ([]Result, error) {
	out := make([]Result, 0, len(computed)+len(done))
	seen := make(map[int]bool, len(computed)+len(done))
	for _, r := range computed {
		out = append(out, Result{Index: r.Index, AvgRF: r.AvgRF})
		seen[r.Index] = true
	}
	for idx, avg := range done {
		if seen[idx] {
			continue
		}
		out = append(out, Result{Index: idx, AvgRF: avg})
		seen[idx] = true
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	if !canceled {
		for i, r := range out {
			if r.Index != i {
				return nil, fmt.Errorf("repro: result set is not contiguous at query %d (found index %d) — stale checkpoint for a different query file?", i, r.Index)
			}
		}
	}
	return out, nil
}
