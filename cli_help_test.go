package repro

import (
	"fmt"
	"strings"
	"testing"
)

// The -help audit: every registered flag of every binary must appear in
// its usage output, and — the other direction — every flag a user is
// documented to have must actually be registered. The lists are
// hardcoded on purpose: adding a flag without updating this test (and
// therefore without thinking about its usage string) is the regression
// this guards against.

// sharedProfFlags are registered by internal/profhook on bfhrf, bfhrfd
// and rfbench.
var sharedProfFlags = []string{"cpuprofile", "memprofile", "trace"}

// sharedLogFlags are registered by internal/obs on the same binaries.
var sharedLogFlags = []string{"log-format", "v"}

// sharedTraceFlags are the distributed-tracing flags registered by
// internal/obs on bfhrf and bfhrfd.
var sharedTraceFlags = []string{"trace-out", "trace-sample", "slow-query"}

func TestCLIHelpMentionsEveryFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	cases := []struct {
		bin   string
		flags []string
	}{
		{"bfhrf", append([]string{
			"ref", "query", "cpus", "variant", "min-split", "max-split",
			"intersect-taxa", "compress", "best", "annotate", "version",
			"query-cache", "query-cache-size", "query-cache-bytes",
			"o", "checkpoint", "checkpoint-interval", "resume",
			"skip-bad-trees", "bad-tree-log",
			"max-taxa", "max-tree-bytes", "max-input-bytes",
			"backend", "hash-shards",
			"save-bfh", "load-bfh", "delta-add", "delta-retire", "compact-bfh",
		}, append(sharedProfFlags, append(sharedLogFlags, sharedTraceFlags...)...)...)},
		{"bfhrfd", append([]string{
			"serve", "workers", "ref", "query", "compress", "chunk", "batch",
			"admin", "version",
			"rpc-timeout", "retries", "partial-results", "health-interval",
			"query-cache", "query-cache-size", "query-cache-bytes",
			"o", "checkpoint", "checkpoint-interval", "resume",
			"skip-bad-trees", "max-taxa", "max-tree-bytes", "max-input-bytes",
			"save-bfh", "load-bfh",
			"mutex-profile-fraction", "block-profile-rate",
			"serve-http", "collections", "collections-root", "collection-name",
			"max-inflight", "queue-depth", "tenant-rate", "tenant-burst",
			"request-max-bytes", "query-deadline", "drain-timeout",
		}, append(sharedProfFlags, append(sharedLogFlags, sharedTraceFlags...)...)...)},
		{"rfdist", append([]string{
			"a", "b", "matrix", "avg", "cluster", "linkage", "phylip",
			"consensus", "t", "greedy", "draw", "version",
		}, sharedLogFlags...)},
		{"rfbench", append([]string{
			"exp", "scale", "engines", "query-cap", "mem-budget", "csv",
			"work", "json", "compare", "with", "threshold", "reps", "version",
		}, append(sharedProfFlags, sharedLogFlags...)...)},
		{"treegen", []string{
			"dataset", "n", "r", "seed", "random", "shape", "queries", "moves",
			"out", "mean-branch",
		}},
		{"tracevet", []string{"summary", "min-traces"}},
	}
	for _, c := range cases {
		t.Run(c.bin, func(t *testing.T) {
			// flag prints usage on stderr and exits 2 for -help.
			_, usage, _ := run(t, c.bin, "-help")
			if !strings.Contains(usage, "Usage") {
				t.Fatalf("%s -help produced no usage text:\n%s", c.bin, usage)
			}
			for _, name := range c.flags {
				if !strings.Contains(usage, fmt.Sprintf("-%s", name)) {
					t.Errorf("%s -help does not mention -%s", c.bin, name)
				}
			}
			// The reverse direction: no flag registered beyond the audited
			// list. Usage lines look like "  -name value" or "  -name\t...".
			audited := make(map[string]bool, len(c.flags))
			for _, name := range c.flags {
				audited[name] = true
			}
			for _, line := range strings.Split(usage, "\n") {
				trimmed := strings.TrimSpace(line)
				if !strings.HasPrefix(trimmed, "-") || strings.HasPrefix(trimmed, "--") {
					continue
				}
				name := strings.Fields(strings.TrimPrefix(trimmed, "-"))[0]
				// "-v" renders as "-v\tverbosity..." — strip a glued tab part.
				if i := strings.IndexByte(name, '\t'); i >= 0 {
					name = name[:i]
				}
				if !audited[name] {
					t.Errorf("%s registers -%s but the help audit does not list it", c.bin, name)
				}
			}
		})
	}
}

// TestCLIHelpFlagDescriptionsCurrent spot-checks usage strings that have
// drifted before: behavior-bearing phrases must survive flag edits.
func TestCLIHelpFlagDescriptionsCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	checks := []struct {
		bin, substr string
	}{
		{"bfhrf", "clamped to the collection size"}, // -cpus is not a hard worker count
		{"bfhrf", "map hash backend"},               // -compress implies the map backend
		{"bfhrf", "crash-safe resume"},              // -checkpoint is durable, not a cache
		{"bfhrf", "fingerprint-verified"},           // -resume refuses foreign checkpoints
		{"bfhrf", "atomic"},                         // -o never leaves partial output
		{"bfhrfd", "coordinator mode"},              // coordinator-only flags are annotated
		{"bfhrfd", "per-RPC deadline"},
		{"bfhrfd", "transient failures"},
		{"bfhrfd", "surviving shards"},
		{"bfhrf", "head-sampling probability"}, // -trace-sample is a probability, not a ratio denominator
		{"bfhrf", "slow-query diagnostics"},    // -slow-query keeps AND logs
		{"bfhrfd", "/debug/pprof/mutex"},       // -mutex-profile-fraction feeds the pprof endpoint
		{"bfhrfd", "shed with 503"},            // -queue-depth overflow is shed, not queued
		{"bfhrfd", "X-Tenant"},                 // -tenant-rate keys on the tenant header
		{"rfbench", "exit 3 on regression"},
	}
	for _, c := range checks {
		_, usage, _ := run(t, c.bin, "-help")
		if !strings.Contains(usage, c.substr) {
			t.Errorf("%s -help no longer documents %q", c.bin, c.substr)
		}
	}
}
