// Incremental: maintaining the bipartition frequency hash as a collection
// grows and shrinks — the streaming workflow the frequency representation
// enables (posterior samples arriving from a Bayesian MCMC run, with
// burn-in discarded as the window slides). No other engine in the paper
// can update without a full rebuild: DS/DSMP would recompute q·r
// comparisons and HashRF its whole r×r matrix.
//
// Run: go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
)

func main() {
	const (
		numTaxa = 25
		window  = 200 // sliding window of retained samples
		batches = 5
		perStep = 100
	)
	ts := taxa.Generate(numTaxa)
	msc := simphy.NewMSCCollection(ts, 77, 1.0)
	simphy.ScaleMeanInternal(msc.Species, 1.0)

	// The candidate we track: the true species tree.
	sp := msc.Species.Clone()
	sp.Deroot()
	candidate := newick.String(sp, newick.WriteOptions{})

	// "MCMC" sample stream: early samples are heavily perturbed (burn-in),
	// later ones concentrate near the truth.
	rng := rand.New(rand.NewSource(9))
	sample := func(i int) string {
		heat := 12 - i/40 // cools as the chain runs
		if heat < 0 {
			heat = 0
		}
		t := simphy.PerturbNNI(msc.Make(i), heat, rng)
		return newick.String(t, newick.WriteOptions{})
	}

	// Seed the hash with the first window of samples.
	var ring []string
	for i := 0; i < window; i++ {
		ring = append(ring, sample(i))
	}
	h, err := repro.BuildHashNewick(ring, repro.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sliding-window average RF of the true species tree vs the sample stream:")
	next := window
	for b := 0; b < batches; b++ {
		avg, err := h.AverageRFOne(candidate)
		if err != nil {
			log.Fatal(err)
		}
		st := h.Stats()
		fmt.Printf("  window ending at sample %4d: avgRF=%7.3f  (r=%d, unique splits=%d)\n",
			next, avg, st.NumTrees, st.UniqueBipartitions)

		// Slide: add perStep new samples, retire the oldest perStep.
		for i := 0; i < perStep; i++ {
			s := sample(next)
			next++
			if err := h.AddTree(s); err != nil {
				log.Fatal(err)
			}
			if err := h.RemoveTree(ring[0]); err != nil {
				log.Fatal(err)
			}
			ring = append(ring[1:], s)
		}
	}
	avg, err := h.AverageRFOne(candidate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  final window:                 avgRF=%7.3f\n", avg)
	fmt.Println("\nthe average falls as burn-in samples leave the window — each slide")
	fmt.Println("cost O(n) per tree instead of a full rebuild.")
}
