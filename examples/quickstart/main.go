// Quickstart: compute the average Robinson-Foulds distance of query trees
// against a reference collection with the public API — the paper's core
// workflow (Algorithm 2) in a dozen lines.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A reference collection of gene trees over taxa A..F. Three support
	// the ((A,B),(C,D)) backbone; one disagrees.
	references := []string{
		"((A,B),((C,D),(E,F)));",
		"((A,B),((C,D),(E,F)));",
		"(((A,B),(C,D)),(E,F));", // same unrooted topology, different rooting
		"((A,E),((C,B),(D,F)));", // the dissenter
	}
	// Candidate summary trees whose fit we want to rank.
	queries := []string{
		"((A,B),((C,D),(E,F)));", // matches the majority
		"((A,C),((B,D),(E,F)));", // partially wrong
		"((A,F),((B,E),(C,D)));", // mostly wrong
	}

	results, err := repro.AverageRFNewick(queries, references, repro.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("average RF of each query against the reference collection:")
	for _, r := range results {
		fmt.Printf("  query %d: %.4f\n", r.Index, r.AvgRF)
	}

	best, err := repro.BestResult(results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best candidate: query %d (avg RF %.4f)\n", best.Index, best.AvgRF)

	// Exact pairwise RF (Day's algorithm) for two trees.
	d, err := repro.PairwiseRF(queries[0], queries[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairwise RF(query 0, query 2) = %d\n", d)

	// Normalized variant: distances in [0, 1].
	norm, err := repro.AverageRFNewick(queries, references, repro.Config{Variant: repro.VariantNormalized})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("normalized averages:")
	for _, r := range norm {
		fmt.Printf("  query %d: %.4f\n", r.Index, r.AvgRF)
	}
}
