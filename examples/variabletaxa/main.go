// Variable taxa: comparing tree collections whose trees do NOT share one
// taxon set — the restriction the paper lifts via intersection reduction
// (§VII.E). Real gene trees routinely miss species (fragmentary data); the
// BFH approach amends exactly like traditional RF: restrict every tree to
// the common taxa, then hash and compare as usual.
//
// Run: go run ./examples/variabletaxa
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/collection"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func main() {
	const (
		numTaxa = 24
		numRefs = 120
	)
	full := taxa.Generate(numTaxa)
	msc := simphy.NewMSCCollection(full, 314, 1.0)
	simphy.ScaleMeanInternal(msc.Species, 1.5)

	// Build reference gene trees, each randomly missing a few of the
	// "flaky" taxa (the last six) — fragmentary data in the style of the
	// paper's Insect source (Sayyari et al. study fragmentary gene
	// sequences). The remaining taxa are recovered in every gene.
	flaky := []string{"t0018", "t0019", "t0020", "t0021", "t0022", "t0023"}
	rng := rand.New(rand.NewSource(11))
	refs := make([]string, numRefs)
	for i := range refs {
		g := msc.Make(i)
		dropped := dropRandomTaxa(g, rng, flaky, 2)
		refs[i] = newick.String(dropped, newick.WriteOptions{})
	}
	// The query misses a different subset: the first two taxa.
	q := msc.Make(10_000)
	q = mustRestrict(q, func(name string) bool { return name >= "t0002" })
	queries := []string{newick.String(q, newick.WriteOptions{})}

	// Without variable-taxa handling this must fail: the trees disagree on
	// their taxon sets.
	if _, err := repro.AverageRFNewick(queries, refs, repro.Config{}); err == nil {
		log.Fatal("expected a taxa-mismatch failure without IntersectTaxa")
	} else {
		fmt.Printf("fixed-taxa mode refuses the input, as expected:\n  %v\n\n", err)
	}

	// With IntersectTaxa every tree is restricted to the taxa common to all
	// trees, and the standard BFHRF computation applies.
	res, err := repro.AverageRFNewick(queries, refs, repro.Config{IntersectTaxa: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intersection-reduced average RF of the query: %.3f\n", res[0].AvgRF)

	// The common catalogue the pipeline found:
	srcs := []collection.Source{parse(queries), parse(refs)}
	common, err := collection.ScanCommonTaxa(srcs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taxa common to every tree: %d of %d\n", common.Len(), numTaxa)
}

func parse(newicks []string) collection.Source {
	var trees []*tree.Tree
	for _, s := range newicks {
		trees = append(trees, newick.MustParse(s))
	}
	return collection.FromTrees(trees)
}

func dropRandomTaxa(t *tree.Tree, rng *rand.Rand, pool []string, k int) *tree.Tree {
	drop := map[string]bool{}
	for len(drop) < k {
		drop[pool[rng.Intn(len(pool))]] = true
	}
	return mustRestrict(t, func(n string) bool { return !drop[n] })
}

func mustRestrict(t *tree.Tree, keep func(string) bool) *tree.Tree {
	out, err := tree.Restrict(t, keep)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
