// Consensus: the most-parsimonious-tree workflow that motivates the paper's
// introduction. Given a collection of gene trees (simulated here under the
// multispecies coalescent), rank candidate species trees by average RF and
// read the majority-rule consensus directly off the bipartition frequency
// hash — the "other application of directly using a BFH" from §IX.
//
// Run: go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/day"
	"repro/internal/draw"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func main() {
	const (
		numTaxa  = 30
		numGenes = 500
	)
	ts := taxa.Generate(numTaxa)

	// Simulate a species tree and a collection of gene trees with moderate
	// incomplete lineage sorting.
	msc := simphy.NewMSCCollection(ts, 2024, 1.0)
	simphy.ScaleMeanInternal(msc.Species, 1.2)
	genes := &collection.Generator{N: numGenes, Make: msc.Make}

	// Build the bipartition frequency hash over the gene trees once.
	hash, err := core.BuildDefault(genes, ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFH over %d gene trees: %d unique bipartitions (of %d instances)\n",
		hash.NumTrees(), hash.UniqueBipartitions(), hash.TotalBipartitions())

	// Candidates: the true species tree, NNI-corrupted versions of it, and
	// a random tree. The true tree should win under the RF criterion.
	rng := rand.New(rand.NewSource(7))
	species := msc.Species.Clone()
	species.Deroot()
	candidates := []*tree.Tree{
		species,
		simphy.PerturbNNI(species, 2, rng),
		simphy.PerturbNNI(species, 8, rng),
		simphy.RandomBinary(ts, rng),
	}
	labels := []string{"true species tree", "2-NNI corrupted", "8-NNI corrupted", "random tree"}

	results, err := hash.AverageRF(collection.FromTrees(candidates), core.QueryOptions{RequireComplete: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naverage RF of each candidate against the gene trees:")
	for _, r := range results {
		fmt.Printf("  %-18s %.3f\n", labels[r.Index], r.AvgRF)
	}
	best, err := core.Best(results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("winner: %s\n", labels[best.Index])

	// Majority-rule consensus straight from the hash.
	cons, err := hash.Consensus(0.5)
	if err != nil {
		log.Fatal(err)
	}
	d, err := day.RF(cons, species)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmajority-rule consensus: %d internal edges (max %d), RF to true species tree = %d\n",
		cons.NumInternalEdges(), numTaxa-3, d)
	fmt.Println(newick.String(cons, newick.WriteOptions{}))

	// Support-annotated copy, drawn for the terminal.
	annotated := cons.Clone()
	if err := hash.AnnotateSupport(annotated, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconsensus with support percentages:")
	if err := draw.Write(os.Stdout, annotated, draw.Options{}); err != nil {
		log.Fatal(err)
	}
}
