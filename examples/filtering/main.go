// Filtering: the extensibility hook the paper demonstrates (§VII.F),
// bipartition size filtering. Because the BFH stores untransformed
// bipartitions, any filter that could be applied to a traditional RF
// computation applies identically to the hash — here we compare distances
// computed from all splits, from shallow splits only (small clades), and
// from deep splits only (backbone structure).
//
// Run: go run ./examples/filtering
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/simphy"
	"repro/internal/taxa"
)

func main() {
	const (
		numTaxa = 40
		numRefs = 300
	)
	ts := taxa.Generate(numTaxa)
	msc := simphy.NewMSCCollection(ts, 99, 1.0)
	simphy.ScaleMeanInternal(msc.Species, 0.8)
	refs := &collection.Generator{N: numRefs, Make: msc.Make}

	// A query whose shallow structure is corrupted but whose backbone is
	// intact: NNI moves mostly touch local (small) splits.
	rng := rand.New(rand.NewSource(5))
	base := msc.Species.Clone()
	base.Deroot()
	query := simphy.PerturbNNI(base, 4, rng)

	type regime struct {
		name   string
		filter bipart.Filter
	}
	regimes := []regime{
		{"all splits", nil},
		{"shallow only (small side ≤ 5)", bipart.SizeFilter(0, 5, numTaxa)},
		{"deep only (small side ≥ 6)", bipart.SizeFilter(6, 0, numTaxa)},
	}

	fmt.Printf("query vs %d MSC gene trees (n=%d) under bipartition size filters:\n\n", numRefs, numTaxa)
	for _, reg := range regimes {
		// The same filter is applied when building the hash and when
		// extracting query bipartitions — exactly as one would preprocess a
		// traditional RF computation.
		h, err := core.Build(refs, ts, core.BuildOptions{RequireComplete: true, Filter: reg.filter})
		if err != nil {
			log.Fatal(err)
		}
		avg, err := h.AverageRFOne(query, core.QueryOptions{RequireComplete: true, Filter: reg.filter})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s unique splits in hash: %4d   avg RF: %8.3f\n",
			reg.name, h.UniqueBipartitions(), avg)
	}

	fmt.Println("\nthe filtered hashes are smaller and the filtered distances isolate")
	fmt.Println("the disagreement at the chosen depth — no change to the algorithm,")
	fmt.Println("only a different Filter passed to Build and Query.")
}
