// Supertree: the RF supertree analysis the paper's introduction says
// restricted tools "are generally not applicable to" (§I, refs [14]–[16]).
// Gene trees covering different, overlapping taxon subsets are combined
// into one supertree over all taxa by minimizing total Robinson-Foulds
// distance to the sources (each comparison restricting the supertree to
// that source's taxa).
//
// Run: go run ./examples/supertree
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/day"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/supertree"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func main() {
	const (
		numTaxa    = 14
		numSources = 10
		taxaPerSrc = 9
	)
	// A true evolutionary history over all taxa.
	ts := taxa.Generate(numTaxa)
	rng := rand.New(rand.NewSource(2718))
	truth := simphy.RandomBinary(ts, rng)

	// Source trees: each study sampled a different subset of the taxa but
	// (here) agrees with the true history on the taxa it covers.
	sources := make([]*tree.Tree, numSources)
	for i := range sources {
		perm := rng.Perm(numTaxa)
		keep := map[string]bool{}
		for _, j := range perm[:taxaPerSrc] {
			keep[ts.Name(j)] = true
		}
		src, err := tree.Restrict(truth, func(name string) bool { return keep[name] })
		if err != nil {
			log.Fatal(err)
		}
		sources[i] = src
	}
	fmt.Printf("%d source trees over %d-taxon subsets of %d total taxa\n",
		numSources, taxaPerSrc, numTaxa)

	res, err := supertree.Search(sources, supertree.Options{
		Restarts: 8,
		MaxSteps: 500,
		UseSPR:   true,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search finished: total restricted-RF score %d after %d accepted moves\n",
		res.Score, res.Steps)
	fmt.Printf("supertree: %s\n", newick.String(res.Tree, newick.WriteOptions{}))

	d, err := day.RF(res.Tree, truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RF between supertree and the true %d-taxon history: %d (max %d)\n",
		numTaxa, d, 2*(numTaxa-3))
	if res.Score == 0 {
		fmt.Println("score 0: the supertree displays every source exactly")
	}
}
