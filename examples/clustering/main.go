// Clustering: the all-versus-all workflow HashRF was designed for
// ("the all versus all RF matrix problem which is useful for clustering
// techniques", §VIII). Two gene-tree collections simulated from different
// species trees are pooled; single-linkage clustering over the RF matrix
// recovers the two sources.
//
// Run: go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/collection"
	"repro/internal/hashrf"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func main() {
	const (
		numTaxa  = 20
		perGroup = 25
	)
	ts := taxa.Generate(numTaxa)

	// Two concordant collections from two different species trees.
	a := simphy.NewMSCCollection(ts, 1, 1.0)
	simphy.ScaleMeanInternal(a.Species, 3)
	b := simphy.NewMSCCollection(ts, 2, 1.0)
	simphy.ScaleMeanInternal(b.Species, 3)

	var pooled []*tree.Tree
	var truth []int
	for i := 0; i < perGroup; i++ {
		pooled = append(pooled, a.Make(i))
		truth = append(truth, 0)
	}
	for i := 0; i < perGroup; i++ {
		pooled = append(pooled, b.Make(i))
		truth = append(truth, 1)
	}

	m, err := hashrf.AllVsAll(collection.FromTrees(pooled), hashrf.Options{Taxa: ts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-vs-all RF matrix over %d pooled trees computed\n", m.R)

	dd, err := cluster.Build(m, m.R, cluster.Average)
	if err != nil {
		log.Fatal(err)
	}
	labels, err := dd.Cut(2)
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	for i := range labels {
		// Cluster IDs are arbitrary; count the best of the two labelings.
		if labels[i] == truth[i] {
			agree++
		}
	}
	if agree < len(labels)-agree {
		agree = len(labels) - agree
	}
	fmt.Printf("average-linkage (k=2) recovers the two source collections on %d/%d trees\n",
		agree, len(labels))
	fmt.Printf("silhouette of the 2-cluster solution: %.3f\n", cluster.Silhouette(m, labels))

	within, between := 0.0, 0.0
	nw, nb := 0, 0
	for i := 0; i < m.R; i++ {
		for j := i + 1; j < m.R; j++ {
			if truth[i] == truth[j] {
				within += float64(m.At(i, j))
				nw++
			} else {
				between += float64(m.At(i, j))
				nb++
			}
		}
	}
	fmt.Printf("mean within-group RF %.2f vs between-group RF %.2f\n",
		within/float64(nw), between/float64(nb))
}
