package repro

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIBfhrfd drives the multi-node pipeline end to end through the
// actual binaries: two worker processes, one coordinator, results compared
// against the single-node bfhrf tool.
func TestCLIBfhrfd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := buildCLIs(t)
	data := t.TempDir()
	refs := filepath.Join(data, "refs.nwk")
	queries := filepath.Join(data, "q.nwk")
	if _, stderr, err := run(t, "treegen", "-n", "12", "-r", "30", "-seed", "3", "-out", refs); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}
	if _, stderr, err := run(t, "treegen", "-n", "12", "-r", "30", "-seed", "3", "-queries", "4", "-out", queries); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}

	// Two ephemeral worker ports.
	addrs := make([]string, 2)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close() // free it for the worker process
	}
	for _, addr := range addrs {
		cmd := exec.Command(filepath.Join(dir, "bfhrfd"), "-serve", addr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	}
	// Wait for the workers to accept.
	for _, addr := range addrs {
		ok := false
		for i := 0; i < 50; i++ {
			if conn, err := net.Dial("tcp", addr); err == nil {
				conn.Close()
				ok = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !ok {
			t.Fatalf("worker on %s never came up", addr)
		}
	}

	distOut, stderr, err := run(t, "bfhrfd",
		"-workers", strings.Join(addrs, ","), "-ref", refs, "-query", queries, "-chunk", "7")
	if err != nil {
		t.Fatalf("coordinator: %v\n%s", err, stderr)
	}
	localOut, _, err := run(t, "bfhrf", "-ref", refs, "-query", queries)
	if err != nil {
		t.Fatalf("bfhrf: %v", err)
	}
	if strings.TrimSpace(distOut) != strings.TrimSpace(localOut) {
		t.Errorf("distributed output differs from local:\n%s\nvs\n%s", distOut, localOut)
	}
	if n := len(strings.Split(strings.TrimSpace(distOut), "\n")); n != 4 {
		t.Errorf("distributed lines = %d, want 4", n)
	}
}

func TestCLIBfhrfdErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	if _, _, err := run(t, "bfhrfd"); err == nil {
		t.Error("no mode should exit non-zero")
	}
	if _, _, err := run(t, "bfhrfd", "-workers", "127.0.0.1:1", "-ref", "/nonexistent.nwk"); err == nil {
		t.Error("unreachable workers should exit non-zero")
	}
	if _, _, err := run(t, "bfhrfd", "-workers", "127.0.0.1:1"); err == nil {
		t.Error("missing -ref should exit non-zero")
	}
}
