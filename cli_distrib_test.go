package repro

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestCLIBfhrfd drives the multi-node pipeline end to end through the
// actual binaries: two worker processes, one coordinator, results compared
// against the single-node bfhrf tool.
func TestCLIBfhrfd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := buildCLIs(t)
	data := t.TempDir()
	refs := filepath.Join(data, "refs.nwk")
	queries := filepath.Join(data, "q.nwk")
	if _, stderr, err := run(t, "treegen", "-n", "12", "-r", "30", "-seed", "3", "-out", refs); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}
	if _, stderr, err := run(t, "treegen", "-n", "12", "-r", "30", "-seed", "3", "-queries", "4", "-out", queries); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}

	// Two ephemeral worker ports.
	addrs := make([]string, 2)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close() // free it for the worker process
	}
	for _, addr := range addrs {
		cmd := exec.Command(filepath.Join(dir, "bfhrfd"), "-serve", addr)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	}
	// Wait for the workers to accept.
	for _, addr := range addrs {
		ok := false
		for i := 0; i < 50; i++ {
			if conn, err := net.Dial("tcp", addr); err == nil {
				conn.Close()
				ok = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !ok {
			t.Fatalf("worker on %s never came up", addr)
		}
	}

	distOut, stderr, err := run(t, "bfhrfd",
		"-workers", strings.Join(addrs, ","), "-ref", refs, "-query", queries, "-chunk", "7")
	if err != nil {
		t.Fatalf("coordinator: %v\n%s", err, stderr)
	}
	localOut, _, err := run(t, "bfhrf", "-ref", refs, "-query", queries)
	if err != nil {
		t.Fatalf("bfhrf: %v", err)
	}
	if strings.TrimSpace(distOut) != strings.TrimSpace(localOut) {
		t.Errorf("distributed output differs from local:\n%s\nvs\n%s", distOut, localOut)
	}
	if n := len(strings.Split(strings.TrimSpace(distOut), "\n")); n != 4 {
		t.Errorf("distributed lines = %d, want 4", n)
	}
}

func TestCLIBfhrfdErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	if _, _, err := run(t, "bfhrfd"); err == nil {
		t.Error("no mode should exit non-zero")
	}
	if _, _, err := run(t, "bfhrfd", "-workers", "127.0.0.1:1", "-ref", "/nonexistent.nwk"); err == nil {
		t.Error("unreachable workers should exit non-zero")
	}
	if _, _, err := run(t, "bfhrfd", "-workers", "127.0.0.1:1"); err == nil {
		t.Error("missing -ref should exit non-zero")
	}
	// Mode flags are mutually exclusive, and coordinator-only flags are
	// rejected — not silently ignored — in worker mode.
	if _, stderr, err := run(t, "bfhrfd", "-serve", ":0", "-workers", "127.0.0.1:1"); err == nil {
		t.Error("-serve with -workers should exit non-zero")
	} else if !strings.Contains(stderr, "mutually exclusive") || !strings.Contains(stderr, "Usage") {
		t.Errorf("expected mutual-exclusion message with usage, got:\n%s", stderr)
	}
	if _, stderr, err := run(t, "bfhrfd", "-serve", ":0", "-ref", "x.nwk"); err == nil {
		t.Error("-serve with -ref should exit non-zero")
	} else if !strings.Contains(stderr, "coordinator flag") {
		t.Errorf("expected coordinator-flag rejection, got:\n%s", stderr)
	}
	if _, _, err := run(t, "bfhrfd", "-serve", ":0", "-query", "x.nwk"); err == nil {
		t.Error("-serve with -query should exit non-zero")
	}
	// The fault-tolerance knobs configure the coordinator's RPC layer and
	// are likewise rejected in worker mode.
	for _, args := range [][]string{
		{"-serve", ":0", "-partial-results"},
		{"-serve", ":0", "-rpc-timeout", "5s"},
		{"-serve", ":0", "-retries", "7"},
		{"-serve", ":0", "-health-interval", "1s"},
	} {
		if _, stderr, err := run(t, "bfhrfd", args...); err == nil {
			t.Errorf("%v should exit non-zero", args[2:])
		} else if !strings.Contains(stderr, "coordinator flag") {
			t.Errorf("%v: expected coordinator-flag rejection, got:\n%s", args[2:], stderr)
		}
	}
}

// TestCLIBfhrfdFaultFlags drives a coordinator run with every fault-
// tolerance flag set: the happy path must be unaffected (stdout identical
// to cmd/bfhrf) with the health loop running.
func TestCLIBfhrfdFaultFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := buildCLIs(t)
	data := t.TempDir()
	refs := filepath.Join(data, "refs.nwk")
	if _, stderr, err := run(t, "treegen", "-n", "10", "-r", "16", "-seed", "21", "-out", refs); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}
	workerAddr, _ := startWorkerProcess(t)
	_ = dir

	distOut, stderr, err := run(t, "bfhrfd", "-workers", workerAddr, "-ref", refs,
		"-rpc-timeout", "10s", "-retries", "3", "-health-interval", "50ms", "-chunk", "5")
	if err != nil {
		t.Fatalf("coordinator with fault flags: %v\n%s", err, stderr)
	}
	localOut, _, err := run(t, "bfhrf", "-ref", refs)
	if err != nil {
		t.Fatalf("bfhrf: %v", err)
	}
	if strings.TrimSpace(distOut) != strings.TrimSpace(localOut) {
		t.Errorf("fault-flagged output differs from local:\n%s\nvs\n%s", distOut, localOut)
	}
	if strings.Contains(stderr, "PARTIAL") {
		t.Errorf("healthy run reported partial results:\n%s", stderr)
	}
}

func TestCLIVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	for _, bin := range []string{"bfhrf", "bfhrfd", "rfbench", "rfdist"} {
		stdout, stderr, err := run(t, bin, "-version")
		if err != nil {
			t.Errorf("%s -version: %v\n%s", bin, err, stderr)
			continue
		}
		if !strings.HasPrefix(stdout, bin+" ") || !strings.Contains(stdout, "revision") {
			t.Errorf("%s -version output = %q", bin, stdout)
		}
	}
}

// startWorkerProcess launches a bfhrfd worker with ephemeral RPC and admin
// ports, parses both bound addresses off its stderr, and returns them.
func startWorkerProcess(t *testing.T) (workerAddr, adminAddr string) {
	workerAddr, adminAddr, _ = startWorkerProcessCmd(t)
	return workerAddr, adminAddr
}

// startWorkerProcessCmd is startWorkerProcess returning the process handle
// too, and accepting extra environment entries — failover tests use
// BFHRF_FAULTS to schedule a deterministic mid-run crash in the worker.
func startWorkerProcessCmd(t *testing.T, env ...string) (workerAddr, adminAddr string, cmd *exec.Cmd) {
	t.Helper()
	cmd = exec.Command(filepath.Join(buildCLIs(t), "bfhrfd"), "-serve", "127.0.0.1:0", "-admin", "127.0.0.1:0")
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	sc := bufio.NewScanner(stderr)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for workerAddr == "" || adminAddr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("worker exited before announcing addresses (worker=%q admin=%q)", workerAddr, adminAddr)
			}
			if rest, found := strings.CutPrefix(line, "bfhrfd: worker serving on "); found {
				workerAddr = strings.TrimSpace(rest)
			}
			if rest, found := strings.CutPrefix(line, "bfhrfd: admin serving on "); found {
				adminAddr = strings.TrimSpace(rest)
			}
		case <-deadline:
			t.Fatal("timed out waiting for worker to announce its addresses")
		}
	}
	// Drain the rest so the worker never blocks on a full stderr pipe.
	go func() {
		for range lines {
		}
	}()
	return workerAddr, adminAddr, cmd
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestCLIBfhrfdAdmin is the acceptance end-to-end: a worker started with
// `-serve :0 -admin :0` serves Prometheus metrics and a health endpoint
// that flips from not-ready to ready once its shard is loaded.
func TestCLIBfhrfdAdmin(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	dir := buildCLIs(t)
	data := t.TempDir()
	refs := filepath.Join(data, "refs.nwk")
	if _, stderr, err := run(t, "treegen", "-n", "10", "-r", "20", "-seed", "9", "-out", refs); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}

	workerAddr, adminAddr := startWorkerProcess(t)

	// Before any references arrive the worker must report not-ready.
	status, body := httpGet(t, fmt.Sprintf("http://%s/healthz", adminAddr))
	if status != http.StatusServiceUnavailable {
		t.Errorf("pre-load healthz status = %d, want 503 (body %q)", status, body)
	}
	if !strings.Contains(body, "not ready") {
		t.Errorf("pre-load healthz body = %q", body)
	}

	// The metric families must exist (at zero) before any traffic.
	status, metrics := httpGet(t, fmt.Sprintf("http://%s/metrics", adminAddr))
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	for _, want := range []string{
		"# TYPE bfhrf_rpc_latency_seconds histogram",
		"# TYPE bfhrf_bipartitions_hashed_total counter",
		"# TYPE bfhrf_queries_total counter",
		"# TYPE bfhrf_build_info gauge",
		"bfhrf_build_info{revision=",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("pre-load /metrics missing %q", want)
		}
	}

	// Run a real coordinator against the worker. The cache is disabled so
	// the worker-side query counter below stays exactly the query count
	// (with it on, repeated topologies never reach the worker — that path
	// has its own e2e in TestCLIBfhrfdQueryCache).
	out, stderr, err := run(t, "bfhrfd", "-workers", workerAddr, "-ref", refs, "-chunk", "6", "-query-cache=false")
	if err != nil {
		t.Fatalf("coordinator: %v\n%s", err, stderr)
	}
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != 20 {
		t.Errorf("coordinator output lines = %d, want 20", n)
	}
	_ = dir

	// Health must have flipped to ready with the tree count.
	status, body = httpGet(t, fmt.Sprintf("http://%s/healthz", adminAddr))
	if status != http.StatusOK {
		t.Errorf("post-load healthz status = %d, want 200 (body %q)", status, body)
	}
	if !strings.Contains(body, `"trees":20`) {
		t.Errorf("post-load healthz body = %q, want 20 trees", body)
	}

	// And the traffic must show up in the worker's metrics.
	_, metrics = httpGet(t, fmt.Sprintf("http://%s/metrics", adminAddr))
	for _, want := range []string{
		`bfhrf_rpc_latency_seconds_count{method="Load",side="worker"}`,
		`bfhrf_rpc_latency_seconds_count{method="Query",side="worker"}`,
		"bfhrf_ref_trees_total 20",
		"bfhrf_queries_total 20",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("post-run /metrics missing %q\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, "bfhrf_bipartitions_hashed_total 0\n") {
		t.Error("bipartitions-hashed counter never moved")
	}

	// pprof rides on the same listener.
	status, _ = httpGet(t, fmt.Sprintf("http://%s/debug/pprof/cmdline", adminAddr))
	if status != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", status)
	}
}

// scrapeCounter fetches one Prometheus counter's value off an admin
// endpoint's /metrics page.
func scrapeCounter(adminAddr, name string) (float64, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", adminAddr))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			return strconv.ParseFloat(fields[1], 64)
		}
	}
	return 0, fmt.Errorf("counter %s not on /metrics", name)
}

// cachedCoordinatorRun starts a coordinator (query cache on, ephemeral
// admin port) against the given workers, polls its /metrics until the
// cache reports its first hits, invokes atHits, then drains stdout and
// waits for exit. The coordinator cannot slip away before the poll
// succeeds: its result print exceeds the stdout pipe buffer, so the
// process blocks — admin server still up, every cache hit already counted
// — until this function starts draining.
func cachedCoordinatorRun(t *testing.T, addrs []string, refs, queries string, atHits func()) (stdout, stderr string, hits float64) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), "bfhrfd"),
		"-workers", strings.Join(addrs, ","), "-ref", refs, "-query", queries,
		"-admin", "127.0.0.1:0", "-chunk", "7")
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	// Collect stderr in the background, catching the admin address as it
	// is announced.
	adminCh := make(chan string, 1)
	errDone := make(chan string, 1)
	go func() {
		var sb strings.Builder
		sc := bufio.NewScanner(errPipe)
		for sc.Scan() {
			line := sc.Text()
			sb.WriteString(line)
			sb.WriteByte('\n')
			if rest, found := strings.CutPrefix(line, "bfhrfd: admin serving on "); found {
				select {
				case adminCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
		errDone <- sb.String()
	}()

	var adminAddr string
	select {
	case adminAddr = <-adminCh:
	case <-time.After(20 * time.Second):
		t.Fatal("coordinator never announced its admin address")
	}
	deadline := time.Now().Add(30 * time.Second)
	for hits <= 0 {
		if time.Now().After(deadline) {
			t.Fatal("bfhrf_cache_hit_total never became positive on the coordinator")
		}
		hits, _ = scrapeCounter(adminAddr, "bfhrf_cache_hit_total")
		if hits <= 0 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if atHits != nil {
		atHits()
	}
	out, err := io.ReadAll(outPipe)
	if err != nil {
		t.Fatal(err)
	}
	stderr = <-errDone
	if err := cmd.Wait(); err != nil {
		t.Fatalf("coordinator exited with %v\n%s", err, stderr)
	}
	return string(out), stderr, hits
}

// TestCLIBfhrfdQueryCache is the query-cache e2e: a repeat-heavy stream —
// eight distinct topologies cycled 2500 times — against a two-worker
// cluster. The coordinator-side cache must report hits on /metrics, and
// its stdout must be byte-identical to a cache-disabled run, including
// when one worker is killed mid-run and its shard fails over.
func TestCLIBfhrfdQueryCache(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests in -short mode")
	}
	buildCLIs(t)
	data := t.TempDir()
	refs := filepath.Join(data, "refs.nwk")
	distinct := filepath.Join(data, "distinct.nwk")
	queries := filepath.Join(data, "q.nwk")
	if _, stderr, err := run(t, "treegen", "-n", "16", "-r", "60", "-seed", "5", "-out", refs); err != nil {
		t.Fatalf("treegen: %v\n%s", err, stderr)
	}
	if _, stderr, err := run(t, "treegen", "-n", "16", "-r", "60", "-seed", "5", "-queries", "8", "-moves", "2", "-out", distinct); err != nil {
		t.Fatalf("treegen -queries: %v\n%s", err, stderr)
	}
	block, err := os.ReadFile(distinct)
	if err != nil {
		t.Fatal(err)
	}
	const repeats = 2500
	var sb strings.Builder
	sb.Grow(len(block) * repeats)
	for i := 0; i < repeats; i++ {
		sb.Write(block)
	}
	if err := os.WriteFile(queries, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	wantLines := repeats * 8

	// Baseline: the same stream with the cache disabled, every repeat
	// re-scattered to the workers.
	a1, _ := startWorkerProcess(t)
	a2, _ := startWorkerProcess(t)
	baseline, stderr, err := run(t, "bfhrfd", "-workers", a1+","+a2,
		"-ref", refs, "-query", queries, "-chunk", "7", "-query-cache=false")
	if err != nil {
		t.Fatalf("cache-disabled coordinator: %v\n%s", err, stderr)
	}
	if n := len(strings.Split(strings.TrimSpace(baseline), "\n")); n != wantLines {
		t.Fatalf("baseline lines = %d, want %d", n, wantLines)
	}

	t.Run("hits", func(t *testing.T) {
		b1, _ := startWorkerProcess(t)
		b2, _ := startWorkerProcess(t)
		out, _, hits := cachedCoordinatorRun(t, []string{b1, b2}, refs, queries, nil)
		if hits <= 0 {
			t.Fatalf("cache hits = %v, want > 0", hits)
		}
		if out != baseline {
			t.Error("cached output differs from cache-disabled baseline")
		}
	})

	t.Run("worker-killed-mid-run", func(t *testing.T) {
		// The repeat-heavy stream above is useless here: its eight
		// topologies all enter the cache in the first batch, after which
		// the coordinator never talks to a worker again — there is no
		// "mid-run" left to kill. This stream interleaves fresh
		// topologies with the eight repeats, so batches keep scattering
		// (and the repeats keep hitting) for the whole run.
		fresh := filepath.Join(data, "fresh.nwk")
		mixed := filepath.Join(data, "mixed.nwk")
		if _, stderr, err := run(t, "treegen", "-n", "16", "-r", "2000", "-seed", "6",
			"-out", fresh); err != nil {
			t.Fatalf("treegen fresh: %v\n%s", err, stderr)
		}
		freshBytes, err := os.ReadFile(fresh)
		if err != nil {
			t.Fatal(err)
		}
		freshLines := strings.Split(strings.TrimSpace(string(freshBytes)), "\n")
		distinctLines := strings.Split(strings.TrimSpace(string(block)), "\n")
		var mb strings.Builder
		for i, line := range freshLines {
			mb.WriteString(line)
			mb.WriteByte('\n')
			mb.WriteString(distinctLines[i%len(distinctLines)])
			mb.WriteByte('\n')
		}
		if err := os.WriteFile(mixed, []byte(mb.String()), 0o644); err != nil {
			t.Fatal(err)
		}

		// Baseline: cache disabled, both workers healthy.
		c1, _ := startWorkerProcess(t)
		c2, _ := startWorkerProcess(t)
		mixedBase, stderr, err := run(t, "bfhrfd", "-workers", c1+","+c2,
			"-ref", refs, "-query", mixed, "-chunk", "7", "-query-cache=false")
		if err != nil {
			t.Fatalf("cache-disabled coordinator: %v\n%s", err, stderr)
		}

		// The victim arms a deterministic crash: exit on its 600th tree
		// parse. Its reference shard is ~30 parses and each scattered
		// batch is ~130 more, so the crash lands several batches into the
		// query phase — reliably after load, reliably before EOF.
		d1, _ := startWorkerProcess(t)
		d2, _, victim := startWorkerProcessCmd(t, "BFHRF_FAULTS=parse.tree:crash@600")
		out, coordErr, err := run(t, "bfhrfd", "-workers", d1+","+d2,
			"-ref", refs, "-query", mixed, "-chunk", "7")
		if err != nil {
			t.Fatalf("coordinator with crashing worker: %v\n%s", err, coordErr)
		}
		if werr := victim.Wait(); werr == nil {
			t.Error("victim worker exited cleanly; the armed crash never fired")
		}
		if out != mixedBase {
			t.Error("cached output after worker crash differs from cache-disabled baseline")
		}
		if !strings.Contains(coordErr, "lost workers during run") &&
			!strings.Contains(coordErr, "failed over") {
			t.Errorf("no failover evidence on coordinator stderr:\n%s", coordErr)
		}
	})
}
