#!/usr/bin/env bash
# ci.sh — one-command tier-1 verification.
#
#   ./ci.sh            vet + build + tests + race (fast subset) + fuzz smoke
#   CI_PERF=1 ./ci.sh  additionally gate the perf sweep against BENCH_0001.json
#
# The perf gate is opt-in because wall-clock measurements on a loaded CI
# machine can exceed the noise threshold without any code change; run it
# on quiet hardware (see "Tracking performance" in README.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (fast subset) =="
go test -race -short \
  ./internal/bipart ./internal/bitset ./internal/collection \
  ./internal/memprof ./internal/newick ./internal/nexus \
  ./internal/perfjson ./internal/profhook ./internal/stats \
  ./internal/tabfmt ./internal/taxa ./internal/tree

echo "== fuzz smoke (10s per parser) =="
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/newick
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/nexus

if [[ "${CI_PERF:-0}" == "1" ]]; then
  echo "== perf gate (rfbench -compare BENCH_0001.json) =="
  go run ./cmd/rfbench -compare BENCH_0001.json -threshold 0.10 -reps 5
fi

echo "ci.sh: all checks passed"
