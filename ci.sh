#!/usr/bin/env bash
# ci.sh — one-command tier-1 verification.
#
#   ./ci.sh            gofmt + doc gate + vet + build + tests + race (fast
#                      subset, incl. the distrib failover/health tests) +
#                      fuzz smoke + admin smoke + snapshot round-trip smoke
#   CI_PERF=1 ./ci.sh  additionally gate the perf sweep against BENCH_0005.json
#
# The perf gate is opt-in because wall-clock measurements on a loaded CI
# machine can exceed the noise threshold without any code change; run it
# on quiet hardware (see "Tracking performance" in README.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
  echo "ci.sh: gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== doc gate (internal/doclint) =="
go run ./internal/doclint/cmd/doclint .

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (fast subset) =="
go test -race -short \
  ./internal/atomicio ./internal/bfhtable ./internal/bipart \
  ./internal/bitset ./internal/checkpoint ./internal/collection \
  ./internal/core ./internal/distrib ./internal/faultinject \
  ./internal/memprof ./internal/newick ./internal/nexus \
  ./internal/obs ./internal/perfjson ./internal/profhook \
  ./internal/seqrf ./internal/serve ./internal/stats \
  ./internal/tabfmt ./internal/taxa ./internal/tree

echo "== go test -race (distrib fault tolerance) =="
# The failover, retry, and health-loop paths are the concurrency-heavy
# new surface; run them explicitly under the race detector (not -short,
# so nothing in them can quietly skip).
go test -race -run 'Failover|PartialResults|Retry|Health|Adopt|LoadSeq|WorkerDies|Traced' \
  ./internal/distrib

echo "== chaos smoke (seeded fault schedules under -race) =="
# The full chaos sweep (50+ schedules, single-node + distributed) plus
# the subprocess kill-and-resume e2e tests. Schedules are deterministic,
# so a failure here names a replayable BFHRF_FAULTS spec.
go test -race -run 'TestChaos' -count=1 ./internal/faultinject
go test -run 'TestCrashAndResume|TestCorruptCheckpointQuarantine|TestResumeRejectsForeignCheckpoint' \
  -count=1 ./cmd/bfhrf
# Kill-and-reload chaos for the snapshot store: crash inside every
# window of the epoch publish/reap protocol, then reload and demand
# byte-identical answers.
go test -run 'TestSnapshotCrashAndReload|TestDeltaMatchesScratchBuild' -count=1 ./cmd/bfhrf

echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/newick
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/nexus
go test -run='^$' -fuzz=FuzzTable -fuzztime=10s ./internal/bfhtable
go test -run='^$' -fuzz=FuzzSuccinct -fuzztime=10s ./internal/bfhtable
go test -run='^$' -fuzz=FuzzFingerprint -fuzztime=10s ./internal/core
go test -run='^$' -fuzz=FuzzSnapshot -fuzztime=10s ./internal/bfhsnap

echo "== bfhrfd admin endpoint smoke =="
# Start a worker on ephemeral RPC+admin ports, scrape /healthz and
# /metrics, check the operator-facing metric families exist, shut down.
tmpdir="$(mktemp -d)"
worker_pid=""
serve_pid=""
trap 'for p in "$worker_pid" "$serve_pid"; do [[ -n "$p" ]] && kill "$p" 2>/dev/null || true; done; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/bfhrfd" ./cmd/bfhrfd
"$tmpdir/bfhrfd" -serve 127.0.0.1:0 -admin 127.0.0.1:0 2>"$tmpdir/worker.log" &
worker_pid=$!
admin_addr=""
for _ in $(seq 1 100); do
  admin_addr="$(sed -n 's/^bfhrfd: admin serving on //p' "$tmpdir/worker.log")"
  [[ -n "$admin_addr" ]] && break
  sleep 0.1
done
[[ -n "$admin_addr" ]] || { echo "ci.sh: bfhrfd never announced its admin address" >&2; cat "$tmpdir/worker.log" >&2; exit 1; }
health="$(curl -s -o /dev/null -w '%{http_code}' "http://$admin_addr/healthz")"
[[ "$health" == "503" ]] || { echo "ci.sh: pre-load /healthz = $health, want 503" >&2; exit 1; }
metrics="$(curl -fsS "http://$admin_addr/metrics")"
for family in bfhrf_rpc_latency_seconds bfhrf_bipartitions_hashed_total bfhrf_queries_total bfhrf_build_info bfhrf_go_goroutines; do
  grep -q "^# TYPE $family " <<<"$metrics" || { echo "ci.sh: /metrics missing family $family" >&2; exit 1; }
done
traces="$(curl -fsS "http://$admin_addr/debug/traces")"
grep -q '"count"' <<<"$traces" || { echo "ci.sh: /debug/traces returned no trace listing: $traces" >&2; exit 1; }
kill "$worker_pid"
wait "$worker_pid" 2>/dev/null || true
echo "admin smoke: /healthz, /metrics and /debug/traces OK on $admin_addr"

echo "== trace smoke (bfhrf -trace-out → tracevet) =="
# A real single-node run with tracing on must export at least one valid
# JSONL trace; tracevet is the schema gate.
go build -o "$tmpdir/treegen" ./cmd/treegen
go build -o "$tmpdir/bfhrf" ./cmd/bfhrf
go build -o "$tmpdir/tracevet" ./cmd/tracevet
"$tmpdir/treegen" -n 16 -r 40 -seed 7 -out "$tmpdir/refs.nwk"
"$tmpdir/bfhrf" -ref "$tmpdir/refs.nwk" -trace-out "$tmpdir/traces.jsonl" -slow-query 1ns >/dev/null 2>"$tmpdir/trace.log"
"$tmpdir/tracevet" -min-traces 1 "$tmpdir/traces.jsonl"
grep -q "slow query" "$tmpdir/trace.log" || { echo "ci.sh: -slow-query 1ns produced no slow-query log line" >&2; exit 1; }

echo "== snapshot round-trip smoke (save → load → identical answers, all backends) =="
# For each hash backend: build from the reference file and persist an
# epoch, then answer the same queries from the loaded snapshot and from
# the fresh build; outputs must be byte-identical.
"$tmpdir/treegen" -n 24 -r 60 -seed 11 -out "$tmpdir/snaprefs.nwk"
"$tmpdir/treegen" -n 24 -r 60 -seed 12 -queries 8 -moves 2 -out "$tmpdir/snapq.nwk"
for backend in openaddr map succinct; do
  snapdir="$tmpdir/snap-$backend"
  "$tmpdir/bfhrf" -ref "$tmpdir/snaprefs.nwk" -query "$tmpdir/snapq.nwk" -backend "$backend" \
    -save-bfh "$snapdir" -o "$tmpdir/built-$backend.tsv" >/dev/null
  "$tmpdir/bfhrf" -load-bfh "$snapdir" -query "$tmpdir/snapq.nwk" \
    -o "$tmpdir/loaded-$backend.tsv" >/dev/null
  cmp "$tmpdir/built-$backend.tsv" "$tmpdir/loaded-$backend.tsv" \
    || { echo "ci.sh: $backend snapshot round trip changed the answers" >&2; exit 1; }
done
echo "snapshot smoke: save/load round trip byte-identical for all three backends"

echo "== serve overload smoke (tiny queue, concurrent hammer, shed + recover) =="
# A standalone query service over the openaddr snapshot from above, with
# a one-slot queue and a 200ms injected delay per query so the hammer
# reliably overflows admission. The burst must shed (counter moves),
# and afterwards the service must still be healthy and still answer the
# pre-burst query byte-identically.
cat > "$tmpdir/collections.json" <<EOF
{"collections": [{"name": "smoke", "dir": "$tmpdir/snap-openaddr"}]}
EOF
BFHRF_FAULTS='serve.query:delay@1x*:200ms' "$tmpdir/bfhrfd" -serve-http \
  -collections "$tmpdir/collections.json" -admin 127.0.0.1:0 \
  -max-inflight 1 -queue-depth 1 2>"$tmpdir/serve.log" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr="$(sed -n 's/^bfhrfd: admin serving on //p' "$tmpdir/serve.log")"
  [[ -n "$serve_addr" ]] && break
  sleep 0.1
done
[[ -n "$serve_addr" ]] || { echo "ci.sh: serve-http bfhrfd never announced its admin address" >&2; cat "$tmpdir/serve.log" >&2; exit 1; }
qtree="$(head -1 "$tmpdir/snapq.nwk")"
qbody="{\"collection\":\"smoke\",\"trees\":[\"$qtree\"]}"
curl -fsS -X POST -d "$qbody" "http://$serve_addr/v1/query" >"$tmpdir/serve-pre.json"
grep -q '"avg_rf"' "$tmpdir/serve-pre.json" || { echo "ci.sh: pre-burst query returned no results: $(cat "$tmpdir/serve-pre.json")" >&2; exit 1; }
hammer_pids=()
for _ in $(seq 1 40); do
  curl -s -o /dev/null -X POST -d "$qbody" "http://$serve_addr/v1/query" &
  hammer_pids+=("$!")
done
wait "${hammer_pids[@]}" 2>/dev/null || true
shed="$(curl -fsS "http://$serve_addr/metrics" | awk '/^bfhrf_requests_shed_total\{/ {s+=$2} END {print s+0}')"
[[ "$shed" -gt 0 ]] || { echo "ci.sh: hammer never shed (bfhrf_requests_shed_total = $shed)" >&2; exit 1; }
health="$(curl -s "http://$serve_addr/healthz")"
grep -q '"status":"ok"' <<<"$health" || { echo "ci.sh: post-burst /healthz = $health, want ok" >&2; exit 1; }
curl -fsS -X POST -d "$qbody" "http://$serve_addr/v1/query" >"$tmpdir/serve-post.json"
cmp -s "$tmpdir/serve-pre.json" "$tmpdir/serve-post.json" \
  || { echo "ci.sh: post-burst answer differs from pre-burst" >&2; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "serve smoke: shed $shed request(s) under the burst, healthy and byte-identical after"

if [[ "${CI_PERF:-0}" == "1" ]]; then
  echo "== perf gate (rfbench -compare BENCH_0005.json) =="
  go run ./cmd/rfbench -compare BENCH_0005.json -threshold 0.10 -reps 5
fi

echo "ci.sh: all checks passed"
