package repro

import (
	"io/fs"
	"os"
	"regexp"
	"strings"
	"testing"
)

// Every durable artifact is identified by a magic string declared as a
// `Magic`/`magic` constant in its owning package. FORMATS.md is the
// byte-level spec for all of them; a new format (or a changed magic)
// that skips the spec is exactly the drift this gate exists to catch.
func TestFormatsSpecCoversEveryMagic(t *testing.T) {
	spec, err := os.ReadFile("FORMATS.md")
	if err != nil {
		t.Fatalf("reading FORMATS.md: %v", err)
	}
	magicDecl := regexp.MustCompile(`const\s+[Mm]agic\s*=\s*"([^"]+)"`)

	found := map[string][]string{} // magic -> declaring files
	err = fs.WalkDir(os.DirFS("."), ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range magicDecl.FindAllSubmatch(src, -1) {
			magic := string(m[1])
			found[magic] = append(found[magic], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The two formats this repo ships today; shrinking this set means a
	// format was dropped and FORMATS.md needs a matching edit.
	for _, want := range []string{"BFHSNAP1", "bfhrf-checkpoint v1"} {
		if len(found[want]) == 0 {
			t.Errorf("no package declares magic %q anymore; update this test and FORMATS.md together", want)
		}
	}
	for magic, files := range found {
		if !strings.Contains(string(spec), magic) {
			t.Errorf("magic %q (declared in %s) is not documented in FORMATS.md", magic, strings.Join(files, ", "))
		}
	}
}
