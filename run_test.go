package repro

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeTrees(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const runRefs = "((a,b),(c,d),e);\n((a,c),(b,d),e);\n((a,d),(b,c),e);\n"
const runQueries = "((a,b),(c,d),e);\n((a,c),(b,d),e);\n((a,d),(b,c),e);\n((a,e),(b,c),d);\n((b,e),(a,c),d);\n"

func TestResumableMatchesPlainRun(t *testing.T) {
	dir := t.TempDir()
	qp := writeTrees(t, dir, "q.nwk", runQueries)
	rp := writeTrees(t, dir, "r.nwk", runRefs)
	ck := filepath.Join(dir, "run.ckpt")

	plain, err := AverageRFFiles(qp, rp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ckpted, err := AverageRFFilesResumable(qp, rp, Config{}, RunOptions{CheckpointPath: ck, CheckpointInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(ckpted) {
		t.Fatalf("plain %d results, checkpointed %d", len(plain), len(ckpted))
	}
	for i := range plain {
		if plain[i] != ckpted[i] {
			t.Fatalf("result %d: plain %+v != checkpointed %+v", i, plain[i], ckpted[i])
		}
	}

	// Resuming the finished run recomputes nothing and returns identical
	// results.
	resumed, err := AverageRFFilesResumable(qp, rp, Config{}, RunOptions{CheckpointPath: ck, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != resumed[i] {
			t.Fatalf("resumed result %d: %+v != %+v", i, resumed[i], plain[i])
		}
	}
}

func TestResumeAfterCancelIsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	qp := writeTrees(t, dir, "q.nwk", runQueries)
	rp := writeTrees(t, dir, "r.nwk", runRefs)
	ck := filepath.Join(dir, "run.ckpt")

	baseline, err := AverageRFFiles(qp, rp, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel before any query is fed: the run checkpoints nothing (or
	// very little) and reports ErrCanceled.
	cancel := make(chan struct{})
	close(cancel)
	partial, err := AverageRFFilesResumable(qp, rp, Config{}, RunOptions{
		CheckpointPath: ck, CheckpointInterval: 1, Cancel: cancel,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run gave %v, want ErrCanceled", err)
	}
	if len(partial) >= len(baseline) {
		t.Fatalf("canceled run completed all %d queries", len(partial))
	}

	// Resume and finish; merged results must be bit-identical.
	final, err := AverageRFFilesResumable(qp, rp, Config{}, RunOptions{
		CheckpointPath: ck, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(baseline) {
		t.Fatalf("resumed run has %d results, want %d", len(final), len(baseline))
	}
	for i := range baseline {
		if final[i] != baseline[i] {
			t.Fatalf("result %d: resumed %+v != baseline %+v", i, final[i], baseline[i])
		}
	}
}

func TestResumeRejectsDifferentReferences(t *testing.T) {
	dir := t.TempDir()
	qp := writeTrees(t, dir, "q.nwk", runQueries)
	rp := writeTrees(t, dir, "r.nwk", runRefs)
	rp2 := writeTrees(t, dir, "r2.nwk", "((a,b),(c,e),d);\n((a,c),(b,e),d);\n")
	ck := filepath.Join(dir, "run.ckpt")

	if _, err := AverageRFFilesResumable(qp, rp, Config{}, RunOptions{CheckpointPath: ck}); err != nil {
		t.Fatal(err)
	}
	_, err := AverageRFFilesResumable(qp, rp2, Config{}, RunOptions{CheckpointPath: ck, Resume: true})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("resume against different references gave %v, want ErrCheckpointMismatch", err)
	}
}

func TestResumeRejectsDifferentConfig(t *testing.T) {
	dir := t.TempDir()
	qp := writeTrees(t, dir, "q.nwk", runQueries)
	rp := writeTrees(t, dir, "r.nwk", runRefs)
	ck := filepath.Join(dir, "run.ckpt")

	if _, err := AverageRFFilesResumable(qp, rp, Config{}, RunOptions{CheckpointPath: ck}); err != nil {
		t.Fatal(err)
	}
	_, err := AverageRFFilesResumable(qp, rp, Config{Variant: VariantNormalized},
		RunOptions{CheckpointPath: ck, Resume: true})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("resume with different variant gave %v, want ErrCheckpointMismatch", err)
	}
}

func TestLenientIngestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	qp := writeTrees(t, dir, "q.nwk", "((a,b),(c,d),e);\n(a,,b);\n((a,c),(b,d),e);\n")
	rp := writeTrees(t, dir, "r.nwk", runRefs)

	if _, err := AverageRFFiles(qp, rp, Config{}); err == nil {
		t.Fatal("strict run accepted malformed query file")
	}

	var bad []BadTree
	res, err := AverageRFFiles(qp, rp, Config{
		SkipBadTrees: true,
		OnBadTree:    func(b BadTree) { bad = append(bad, b) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("lenient run returned %d results, want 2", len(res))
	}
	if len(bad) == 0 || bad[0].Tree != 2 {
		t.Fatalf("bad-tree diagnostics: %+v", bad)
	}
}
