package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRefs(t *testing.T) (refPath, qPath string) {
	t.Helper()
	dir := t.TempDir()
	refPath = filepath.Join(dir, "refs.nwk")
	qPath = filepath.Join(dir, "q.nwk")
	refs := strings.Join(sixTaxonRefs(), "\n") + "\n"
	if err := os.WriteFile(refPath, []byte(refs), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(qPath, []byte("((A,B),((C,D),(E,F)));\n((A,F),((B,E),(C,D)));\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return refPath, qPath
}

func TestBuildHashFileAndQueryFile(t *testing.T) {
	refPath, qPath := writeRefs(t)
	h, err := BuildHashFile(refPath, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats().NumTrees != 4 {
		t.Fatalf("stats = %+v", h.Stats())
	}
	res, err := h.AverageRFFile(qPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].AvgRF >= res[1].AvgRF {
		t.Errorf("majority topology should score better: %v", res)
	}
	// Must agree with the one-shot file API.
	oneShot, err := AverageRFFiles(qPath, refPath, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].AvgRF != oneShot[i].AvgRF {
			t.Errorf("query %d: hash %v vs one-shot %v", i, res[i].AvgRF, oneShot[i].AvgRF)
		}
	}
}

func TestBuildHashFileMissing(t *testing.T) {
	if _, err := BuildHashFile("/nonexistent.nwk", Config{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestHashAnnotateSupport(t *testing.T) {
	h, err := BuildHashNewick(sixTaxonRefs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.AnnotateSupport("((A,B),((C,D),(E,F)));", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "75") {
		t.Errorf("annotated tree missing the 75%% label: %s", out)
	}
	// Annotated output must still parse and keep its taxa.
	d, err := PairwiseRF(out, "((A,B),((C,D),(E,F)));")
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("annotation changed the topology: RF = %d", d)
	}
	if _, err := h.AnnotateSupport("((garbage", 0); err == nil {
		t.Error("malformed input should fail")
	}
	if _, err := h.AnnotateSupport("((A,B),(C,X));", 0); err == nil {
		t.Error("foreign taxa should fail")
	}
}

func TestGreedyConsensusFile(t *testing.T) {
	refPath, _ := writeRefs(t)
	out, err := GreedyConsensusFile(refPath, 0.05, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := PairwiseRF(out, "((A,B),((C,D),(E,F)));")
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("greedy consensus = %q (RF %d from majority)", out, d)
	}
	if _, err := GreedyConsensusFile("/nonexistent.nwk", 0.05, Config{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestHashAverageRFOneErrors(t *testing.T) {
	h, err := BuildHashNewick(sixTaxonRefs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AverageRFOne("((bad"); err == nil {
		t.Error("malformed query should fail")
	}
	if _, err := h.AverageRFOne("((A,B),(C,X));"); err == nil {
		t.Error("foreign taxa should fail")
	}
}
