// Package repro is the public API of the BFHRF reproduction: scalable and
// extensible Robinson-Foulds distances between collections of phylogenetic
// trees, after Chon et al., "Scalable and Extensible Robinson-Foulds for
// Comparative Phylogenetics" (IPDPSW 2022).
//
// The central operation is computing, for each query tree in a collection
// Q, its average RF distance to a reference collection R — via a
// bipartition frequency hash (BFH) built once over R. Entry points accept
// Newick files or strings; the returned values are per-query averages in
// query order.
//
// # Quick start
//
//	results, err := repro.AverageRFFiles("queries.nwk", "references.nwk", repro.Config{})
//	best, _ := repro.BestResult(results)
//
// For repeated queries against one reference collection, build the hash
// once with BuildHashFile and query it many times.
package repro

import (
	"fmt"
	"strings"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/day"
	"repro/internal/newick"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// Variant names an RF flavour for Config.
const (
	// VariantPlain is the traditional symmetric-difference count.
	VariantPlain = "plain"
	// VariantNormalized divides by the maximum RF 2(n−3), giving [0,1].
	VariantNormalized = "normalized"
	// VariantWeighted sums branch lengths of unshared bipartitions.
	VariantWeighted = "weighted"
	// VariantInfo weights each unshared bipartition by its phylogenetic
	// information content (the information-theoretic generalized RF).
	VariantInfo = "info"
)

// Config controls average-RF computations.
type Config struct {
	// Workers is the parallelism degree; 0 uses all CPUs.
	Workers int
	// Variant is one of VariantPlain (default), VariantNormalized,
	// VariantWeighted.
	Variant string
	// MinSplitSize / MaxSplitSize filter bipartitions by the size of the
	// smaller side (0 = no bound) — the paper's demonstrated extensibility
	// hook.
	MinSplitSize int
	MaxSplitSize int
	// IntersectTaxa enables variable-taxa mode: trees are restricted to
	// the taxa common to every tree before comparison (intersection
	// reduction). Without it, all trees must share an identical taxon set.
	IntersectTaxa bool
	// CompressKeys stores losslessly compressed bipartition keys in the
	// frequency hash, trading a little CPU for memory (paper §IX).
	CompressKeys bool
	// Backend selects the hash storage: "auto" (default), "openaddr",
	// "map" or "succinct". CompressKeys forces the map backend.
	Backend string
	// HashShards is the hash's shard count (a power of two; 0 = default).
	// More shards mean finer-grained copy-on-write in snapshot deltas.
	HashShards int

	// NoQueryCache disables the topology-fingerprint result cache that
	// answers exact topological repeats (bootstrap replicates, posterior
	// samples) without re-probing the hash. The cache is on by default
	// for the Plain and Normalized variants; Weighted and Info queries
	// never use it. Disable it for memory-constrained runs or when the
	// query stream has no repeats.
	NoQueryCache bool
	// QueryCacheEntries caps the cache's entry count (0 = default 65536).
	QueryCacheEntries int
	// QueryCacheBytes caps the cache's accounted memory (0 = default 8 MiB).
	QueryCacheBytes int64

	// SkipBadTrees makes file ingest lenient: malformed or over-limit
	// trees are skipped (each recorded as a diagnostic) instead of
	// failing the run. The default is strict — fail fast on the first
	// bad tree.
	SkipBadTrees bool
	// MaxTaxa caps the number of leaves per input tree (0 = unlimited).
	MaxTaxa int
	// MaxTreeBytes caps the serialized size of one input tree
	// (0 = unlimited).
	MaxTreeBytes int
	// MaxInputBytes caps the decompressed bytes read per input file
	// (0 = unlimited). Exceeding it fails the run even with
	// SkipBadTrees — the budget exists to stop runaway inputs.
	MaxInputBytes int64
	// OnBadTree, when set with SkipBadTrees, observes each skipped
	// tree's diagnostic (file path, tree ordinal, line, reason).
	OnBadTree func(BadTree)
}

// BadTree describes one input tree skipped by lenient ingest.
type BadTree struct {
	Path   string
	Tree   int // 1-based ordinal within the file
	Line   int // 1-based line where the failure was detected (0 if unknown)
	Reason string
	// Limit marks trees dropped by a resource limit (MaxTaxa,
	// MaxTreeBytes) rather than a syntax error.
	Limit bool
}

// ingest translates the Config's hardening fields to collection options.
func (c Config) ingest() collection.Options {
	opts := collection.Options{
		Lenient:       c.SkipBadTrees,
		Limits:        newick.Limits{MaxTaxa: c.MaxTaxa, MaxTreeBytes: c.MaxTreeBytes},
		MaxInputBytes: c.MaxInputBytes,
	}
	if c.OnBadTree != nil {
		cb := c.OnBadTree
		opts.OnDiag = func(d collection.Diag) {
			cb(BadTree{Path: d.Path, Tree: d.Tree, Line: d.Line, Reason: d.Reason, Limit: d.Limit})
		}
	}
	return opts
}

func (c Config) variant() (core.Variant, bool, error) {
	switch c.Variant {
	case "", VariantPlain:
		return core.Plain, false, nil
	case VariantNormalized:
		return core.Normalized, false, nil
	case VariantWeighted:
		return core.Weighted, false, nil
	case VariantInfo:
		return core.Plain, true, nil
	default:
		return 0, false, fmt.Errorf("repro: unknown variant %q", c.Variant)
	}
}

// queryCache constructs the configured query-result cache, or nil when
// disabled.
func (c Config) queryCache() *core.QueryCache {
	if c.NoQueryCache {
		return nil
	}
	return core.NewQueryCache(c.QueryCacheEntries, c.QueryCacheBytes)
}

// buildOptions translates the Config's build-affecting fields, resolving
// the backend name.
func (c Config) buildOptions(ts *taxa.Set) (core.BuildOptions, error) {
	b, err := core.ParseBackend(c.Backend)
	if err != nil {
		return core.BuildOptions{}, fmt.Errorf("repro: %w", err)
	}
	return core.BuildOptions{
		Workers:         c.Workers,
		Filter:          c.filter(ts.Len()),
		RequireComplete: true,
		CompressKeys:    c.CompressKeys,
		Backend:         b,
		HashShards:      c.HashShards,
	}, nil
}

func (c Config) filter(n int) bipart.Filter {
	if c.MinSplitSize <= 0 && c.MaxSplitSize <= 0 {
		return nil
	}
	min := c.MinSplitSize
	if min < 0 {
		min = 0
	}
	return bipart.SizeFilter(min, c.MaxSplitSize, n)
}

// Result is the average RF of one query tree against the reference
// collection.
type Result struct {
	// Index is the query's position (0-based) in the query collection.
	Index int
	// AvgRF is the average distance in the configured variant's units.
	AvgRF float64
}

// BestResult returns the result with the lowest average RF — the
// most-parsimonious candidate under the RF criterion.
func BestResult(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("repro: no results")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.AvgRF < best.AvgRF {
			best = r
		}
	}
	return best, nil
}

// AverageRFFiles computes average RF of every tree in the query Newick
// file against the collection in the reference Newick file.
func AverageRFFiles(queryPath, refPath string, cfg Config) ([]Result, error) {
	q, err := collection.OpenFileOpts(queryPath, cfg.ingest())
	if err != nil {
		return nil, err
	}
	defer q.Close()
	r, err := collection.OpenFileOpts(refPath, cfg.ingest())
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return averageRF(q, r, cfg)
}

// AverageRFNewick computes average RF of every query Newick string against
// the reference Newick strings.
func AverageRFNewick(queries, refs []string, cfg Config) ([]Result, error) {
	q, err := parseAll(queries)
	if err != nil {
		return nil, fmt.Errorf("repro: query: %w", err)
	}
	r, err := parseAll(refs)
	if err != nil {
		return nil, fmt.Errorf("repro: reference: %w", err)
	}
	return averageRF(q, r, cfg)
}

func parseAll(newicks []string) (collection.Source, error) {
	r := newick.NewReader(strings.NewReader(strings.Join(newicks, "\n")))
	trees, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	return collection.FromTrees(trees), nil
}

func averageRF(q, r collection.Source, cfg Config) ([]Result, error) {
	h, qsrc, err := prepare(q, r, cfg)
	if err != nil {
		return nil, err
	}
	return query(h, qsrc, cfg)
}

func prepare(q, r collection.Source, cfg Config) (*core.FreqHash, collection.Source, error) {
	var ts *taxa.Set
	var err error
	if cfg.IntersectTaxa {
		ts, err = collection.ScanCommonTaxa(q, r)
		if err != nil {
			return nil, nil, err
		}
		if ts.Len() < 4 {
			return nil, nil, fmt.Errorf("repro: only %d taxa common to every tree; need at least 4", ts.Len())
		}
		q = collection.Restricted(q, ts)
		r = collection.Restricted(r, ts)
	} else {
		ts, err = collection.ScanTaxa(r)
		if err != nil {
			return nil, nil, err
		}
	}
	bo, err := cfg.buildOptions(ts)
	if err != nil {
		return nil, nil, err
	}
	h, err := core.Build(r, ts, bo)
	if err != nil {
		return nil, nil, err
	}
	return h, q, nil
}

func query(h *core.FreqHash, q collection.Source, cfg Config) ([]Result, error) {
	v, info, err := cfg.variant()
	if err != nil {
		return nil, err
	}
	opts := core.QueryOptions{
		Workers:         cfg.Workers,
		Filter:          cfg.filter(h.Taxa().Len()),
		Variant:         v,
		RequireComplete: true,
		Cache:           cfg.queryCache(),
	}
	var res []core.Result
	if info {
		res, err = h.AverageInfoRF(q, opts)
	} else {
		res, err = h.AverageRF(q, opts)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{Index: r.Index, AvgRF: r.AvgRF}
	}
	return out, nil
}

// PairwiseRF returns the exact RF distance between two Newick trees on the
// same taxa, computed with Day's O(n) algorithm.
func PairwiseRF(newick1, newick2 string) (int, error) {
	t1, err := newick.Parse(newick1)
	if err != nil {
		return 0, fmt.Errorf("repro: first tree: %w", err)
	}
	t2, err := newick.Parse(newick2)
	if err != nil {
		return 0, fmt.Errorf("repro: second tree: %w", err)
	}
	return day.RF(t1, t2)
}

// ConsensusFile builds the threshold consensus tree of the collection in
// the Newick file directly from its bipartition frequency hash and returns
// it as a Newick string. threshold 0.5 is majority rule.
func ConsensusFile(refPath string, threshold float64, cfg Config) (string, error) {
	r, err := collection.OpenFile(refPath)
	if err != nil {
		return "", err
	}
	defer r.Close()
	return consensus(r, threshold, cfg)
}

// ConsensusNewick is ConsensusFile over in-memory Newick strings.
func ConsensusNewick(refs []string, threshold float64, cfg Config) (string, error) {
	r, err := parseAll(refs)
	if err != nil {
		return "", fmt.Errorf("repro: reference: %w", err)
	}
	return consensus(r, threshold, cfg)
}

func consensus(r collection.Source, threshold float64, cfg Config) (string, error) {
	return consensusWith(r, cfg, func(h *core.FreqHash) (*tree.Tree, error) {
		return h.Consensus(threshold)
	})
}

// GreedyConsensusFile builds the greedy (extended majority-rule) consensus
// of the collection: splits are added in decreasing support order while
// compatible. minSupport prunes the candidate list.
func GreedyConsensusFile(refPath string, minSupport float64, cfg Config) (string, error) {
	r, err := collection.OpenFile(refPath)
	if err != nil {
		return "", err
	}
	defer r.Close()
	return consensusWith(r, cfg, func(h *core.FreqHash) (*tree.Tree, error) {
		return h.GreedyConsensus(minSupport)
	})
}

// GreedyConsensusNewick is GreedyConsensusFile over in-memory strings.
func GreedyConsensusNewick(refs []string, minSupport float64, cfg Config) (string, error) {
	r, err := parseAll(refs)
	if err != nil {
		return "", fmt.Errorf("repro: reference: %w", err)
	}
	return consensusWith(r, cfg, func(h *core.FreqHash) (*tree.Tree, error) {
		return h.GreedyConsensus(minSupport)
	})
}

func consensusWith(r collection.Source, cfg Config, build func(*core.FreqHash) (*tree.Tree, error)) (string, error) {
	ts, err := collection.ScanTaxa(r)
	if err != nil {
		return "", err
	}
	bo, err := cfg.buildOptions(ts)
	if err != nil {
		return "", err
	}
	h, err := core.Build(r, ts, bo)
	if err != nil {
		return "", err
	}
	t, err := build(h)
	if err != nil {
		return "", err
	}
	return newick.String(t, newick.DefaultWriteOptions()), nil
}
