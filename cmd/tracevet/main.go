// Command tracevet validates and summarizes a -trace-out JSONL trace
// export. It is both an operator tool ("which traces were slow, where did
// the time go") and the CI gate that keeps the export schema honest: every
// line must be one JSON trace object whose IDs are well-formed fixed-width
// hex, whose spans all carry the trace's ID, and whose parent links
// resolve within the trace (the root's parent may live in another process
// — a stitched remote trace — and is reported, not failed).
//
// Usage:
//
//	tracevet traces.jsonl
//	tracevet -summary traces.jsonl
//
// With -summary a per-trace line (trace ID, root, duration, span count,
// slow flag) is printed after validation. Exit status: 0 when every line
// validates, 1 on any malformed line, 2 on usage errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	summary := flag.Bool("summary", false, "print a per-trace summary line after validating")
	minTraces := flag.Int("min-traces", 0, "fail unless the file holds at least this many traces")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "Usage: tracevet [-summary] [-min-traces N] <traces.jsonl>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracevet: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // traces can be long lines
	traces, bad := 0, 0
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var t obs.Trace
		if err := json.Unmarshal(sc.Bytes(), &t); err != nil {
			fmt.Fprintf(os.Stderr, "tracevet: line %d: invalid JSON: %v\n", line, err)
			bad++
			continue
		}
		if errs := vetTrace(&t); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "tracevet: line %d: trace %s: %s\n", line, t.TraceID, e)
			}
			bad++
			continue
		}
		traces++
		if *summary {
			slow := ""
			if t.Slow {
				slow = "\tSLOW"
			}
			fmt.Printf("%s\t%s\t%s\t%d spans%s\n",
				t.TraceID, t.Root, time.Duration(t.DurationNanos), len(t.Spans), slow)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "tracevet: reading: %v\n", err)
		os.Exit(1)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "tracevet: %d of %d trace line(s) invalid\n", bad, traces+bad)
		os.Exit(1)
	}
	if traces < *minTraces {
		fmt.Fprintf(os.Stderr, "tracevet: %d trace(s), want at least %d\n", traces, *minTraces)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracevet: %d trace(s) ok\n", traces)
}

// vetTrace checks one trace's internal consistency and returns every
// violation found (not just the first, so a broken producer is diagnosed
// in one run).
func vetTrace(t *obs.Trace) []string {
	var errs []string
	if !validHex(t.TraceID, 32) {
		errs = append(errs, fmt.Sprintf("trace_id %q is not 32 hex digits", t.TraceID))
	}
	if t.Root == "" {
		errs = append(errs, "empty root name")
	}
	if t.DurationNanos < 0 {
		errs = append(errs, fmt.Sprintf("negative duration %d", t.DurationNanos))
	}
	if len(t.Spans) == 0 {
		errs = append(errs, "no spans")
	}
	ids := make(map[string]bool, len(t.Spans))
	for i, s := range t.Spans {
		if s.TraceID != t.TraceID {
			errs = append(errs, fmt.Sprintf("span %d carries trace %q", i, s.TraceID))
		}
		if !validHex(s.SpanID, 16) {
			errs = append(errs, fmt.Sprintf("span %d: span_id %q is not 16 hex digits", i, s.SpanID))
		}
		if s.ParentID != "" && !validHex(s.ParentID, 16) {
			errs = append(errs, fmt.Sprintf("span %d: parent_id %q is not 16 hex digits", i, s.ParentID))
		}
		if s.Name == "" {
			errs = append(errs, fmt.Sprintf("span %d has no name", i))
		}
		if s.DurationNanos < 0 {
			errs = append(errs, fmt.Sprintf("span %d: negative duration %d", i, s.DurationNanos))
		}
		if ids[s.SpanID] {
			errs = append(errs, fmt.Sprintf("duplicate span_id %s", s.SpanID))
		}
		ids[s.SpanID] = true
	}
	// Parent links must resolve within the trace, except for spans whose
	// parent is the propagated remote context (the worker-side root of a
	// stitched trace) — those parents are other spans of the same trace
	// recorded by the sender, so they still resolve once the trace is
	// assembled by the coordinator. A dangling parent is only legal when
	// the trace was truncated by the span cap.
	if t.DroppedSpans == 0 {
		for i, s := range t.Spans {
			if s.ParentID != "" && !ids[s.ParentID] {
				errs = append(errs, fmt.Sprintf("span %d (%s): parent %s not in trace", i, s.Name, s.ParentID))
			}
		}
	}
	return errs
}

// validHex reports whether s is exactly n lowercase hex digits and not
// all-zero (the invalid ID).
func validHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}
