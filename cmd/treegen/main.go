// Command treegen writes the simulated tree collections of the paper's
// Table II (or custom sweeps) as Newick files — the stand-in for the
// SimPhy/ASTRAL-II S100 pipeline and the non-redistributable real data.
//
// Usage:
//
//	treegen -dataset avian -out avian.nwk
//	treegen -dataset insect -r 5000 -out insect5k.nwk     # first 5000 trees
//	treegen -n 200 -r 1000 -seed 7 -out custom.nwk        # custom MSC collection
//	treegen -n 64 -r 500 -random -out random.nwk          # i.i.d. random topologies
//	treegen -n 4096 -r 100 -shape caterpillar -out c.nwk  # label-permuted pectinate trees
//	treegen -n 8192 -r 100 -shape balanced -out b.nwk     # label-permuted balanced trees
//	treegen -dataset avian -queries 50 -moves 3 -out q.nwk # perturbed query set
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/atomicio"
	"repro/internal/collection"
	"repro/internal/dataset"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func main() {
	var (
		name    = flag.String("dataset", "", "named dataset: avian | insect | vartrees | vartaxa")
		n       = flag.Int("n", 100, "taxa count for custom collections (or vartaxa point)")
		r       = flag.Int("r", 0, "tree count; 0 = dataset's full size")
		seed    = flag.Int64("seed", 42, "random seed for custom collections")
		random  = flag.Bool("random", false, "custom mode: i.i.d. uniform random topologies instead of MSC")
		shape   = flag.String("shape", "", "custom mode: fixed tree shape with per-tree label permutation (caterpillar | balanced | random)")
		queries = flag.Int("queries", 0, "emit this many NNI-perturbed query trees instead of the collection")
		moves   = flag.Int("moves", 2, "NNI moves per query tree (with -queries)")
		out     = flag.String("out", "", "output file (default stdout)")
		meanBr  = flag.Float64("mean-branch", 1.0, "species-tree mean internal branch length (coalescent units)")
	)
	flag.Parse()

	// -out is written atomically: the file appears only once the full
	// collection is generated, so a killed treegen never leaves a truncated
	// dataset behind for a later experiment to silently train on.
	var w io.Writer = os.Stdout
	var af *atomicio.File
	commit := func() {
		if af == nil {
			return
		}
		if err := af.Commit(); err != nil {
			fatal(err)
		}
	}
	if *out != "" {
		f, err := atomicio.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		af, w = f, f
	}

	spec, err := resolveSpec(*name, *n, *r, *seed, *meanBr)
	if err != nil {
		fatal(err)
	}

	if *queries > 0 {
		qs, err := spec.QuerySet(*queries, *moves)
		if err != nil {
			fatal(err)
		}
		if err := newick.WriteAll(w, qs, writeOpts(spec)); err != nil {
			fatal(err)
		}
		commit()
		fmt.Fprintf(os.Stderr, "treegen: wrote %d query trees (%d NNI moves each)\n", len(qs), *moves)
		return
	}

	count := spec.NumTrees
	if *r > 0 && *r < count {
		count = *r
	}
	mode := *shape
	if mode == "" && *random {
		mode = "random"
	}
	var src collection.Source
	if mode != "" {
		// Fixed-shape modes: every tree i has the same topology class over
		// an independent per-index label permutation. The makers are O(n)
		// per tree (single permutation draw, one node per taxon), so huge
		// catalogues (n >= 4096) generate in linear time.
		var mk func(ts *taxa.Set, rng *rand.Rand) *tree.Tree
		switch mode {
		case "random":
			mk = simphy.RandomBinary
		case "caterpillar":
			mk = simphy.Caterpillar
		case "balanced":
			mk = simphy.BalancedBinary
		default:
			fatal(fmt.Errorf("unknown shape %q (want caterpillar|balanced|random)", mode))
		}
		ts := taxa.Generate(spec.NumTaxa)
		src = &collection.Generator{N: count, Make: func(i int) *tree.Tree {
			rng := rand.New(rand.NewSource(*seed ^ int64(i+1)*0x5851F42D4C957F2D))
			return mk(ts, rng)
		}}
	} else {
		full, _ := spec.Source()
		src = &collection.Head{Src: full, N: count}
	}
	written := 0
	opts := writeOpts(spec)
	for {
		t, err := src.Next()
		if err != nil {
			break
		}
		if err := newick.Write(w, t, opts); err != nil {
			fatal(err)
		}
		written++
	}
	commit()
	fmt.Fprintf(os.Stderr, "treegen: wrote %d trees (n=%d, %s)\n", written, spec.NumTaxa, spec.Name)
}

func resolveSpec(name string, n, r int, seed int64, meanBr float64) (dataset.Spec, error) {
	switch name {
	case "avian":
		return dataset.Avian(), nil
	case "insect":
		return dataset.Insect(), nil
	case "vartrees":
		size := r
		if size <= 0 {
			size = 100000
		}
		return dataset.VariableTrees(size), nil
	case "vartaxa":
		return dataset.VariableTaxa(n), nil
	case "":
		size := r
		if size <= 0 {
			size = 1000
		}
		return dataset.Spec{
			Name:               fmt.Sprintf("custom-n%d", n),
			NumTaxa:            n,
			NumTrees:           size,
			Seed:               seed,
			MeanInternalBranch: meanBr,
		}, nil
	default:
		return dataset.Spec{}, fmt.Errorf("unknown dataset %q (want avian|insect|vartrees|vartaxa)", name)
	}
}

func writeOpts(spec dataset.Spec) newick.WriteOptions {
	return newick.WriteOptions{BranchLengths: !spec.Unweighted, Precision: 6}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "treegen: %v\n", err)
	os.Exit(1)
}
