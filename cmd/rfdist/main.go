// Command rfdist computes pairwise Robinson-Foulds distances: either the
// exact RF between two trees (Day's algorithm) or the all-versus-all RF
// matrix of a collection (the HashRF-style computation), with optional
// averaging and a majority-rule consensus mode built directly from the
// bipartition frequency hash.
//
// Usage:
//
//	rfdist -a tree1.nwk -b tree2.nwk        # one pairwise distance
//	rfdist -matrix trees.nwk                # all-vs-all matrix to stdout
//	rfdist -matrix trees.nwk -avg           # per-tree row averages only
//	rfdist -matrix trees.nwk -cluster 3     # flat clustering over the matrix
//	rfdist -matrix trees.nwk -phylip        # PHYLIP square format (ape, PHYLIP)
//	rfdist -consensus trees.nwk -t 0.5      # threshold consensus tree
//	rfdist -consensus trees.nwk -greedy     # greedy (extended majority) consensus
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cluster"
	"repro/internal/collection"
	"repro/internal/day"
	"repro/internal/draw"
	"repro/internal/hashrf"
	"repro/internal/newick"
	"repro/internal/obs"
)

func main() {
	var (
		aPath     = flag.String("a", "", "first tree file (pairwise mode)")
		bPath     = flag.String("b", "", "second tree file (pairwise mode)")
		matrix    = flag.String("matrix", "", "collection file for the all-vs-all RF matrix")
		avg       = flag.Bool("avg", false, "with -matrix: print per-tree averages instead of the matrix")
		clusterK  = flag.Int("cluster", 0, "with -matrix: print a k-cluster assignment (average linkage) instead of the matrix")
		linkage   = flag.String("linkage", "average", "with -cluster: single | complete | average")
		phylip    = flag.Bool("phylip", false, "with -matrix: emit the PHYLIP square distance format")
		consensus = flag.String("consensus", "", "collection file for a threshold consensus tree")
		threshold = flag.Float64("t", 0.5, "consensus support threshold in [0.5, 1] (or min support with -greedy)")
		greedy    = flag.Bool("greedy", false, "greedy extended-majority consensus instead of strict threshold")
		drawTree  = flag.Bool("draw", false, "with -consensus: render the tree as ASCII art instead of Newick")
		version   = flag.Bool("version", false, "print version and VCS revision, then exit")
	)
	logc := obs.RegisterLogFlags(nil)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("rfdist"))
		return
	}
	if _, err := logc.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "rfdist: %v\n", err)
		os.Exit(2)
	}

	switch {
	case *aPath != "" && *bPath != "":
		pairwise(*aPath, *bPath)
	case *matrix != "":
		matrixMode(*matrix, *avg, *clusterK, *linkage, *phylip)
	case *consensus != "":
		consensusMode(*consensus, *threshold, *greedy, *drawTree)
	default:
		fmt.Fprintln(os.Stderr, "rfdist: need -a/-b, -matrix, or -consensus")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rfdist: %v\n", err)
	os.Exit(1)
}

func readFirstTree(path string) string {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := newick.NewReader(f).Read()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return newick.String(t, newick.DefaultWriteOptions())
}

func pairwise(aPath, bPath string) {
	a, err := collection.OpenFile(aPath)
	if err != nil {
		fatal(err)
	}
	defer a.Close()
	b, err := collection.OpenFile(bPath)
	if err != nil {
		fatal(err)
	}
	defer b.Close()
	ta, err := a.Next()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", aPath, err))
	}
	tb, err := b.Next()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", bPath, err))
	}
	d, err := day.RF(ta, tb)
	if err != nil {
		fatal(err)
	}
	fmt.Println(d)
}

func matrixMode(path string, avgOnly bool, clusterK int, linkage string, phylip bool) {
	src, err := collection.OpenFile(path)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	ts, err := collection.ScanTaxa(src)
	if err != nil {
		fatal(err)
	}
	m, err := hashrf.AllVsAll(src, hashrf.Options{Taxa: ts, AcceptUnweighted: true})
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if phylip {
		if err := m.WritePhylip(w, nil); err != nil {
			fatal(err)
		}
		return
	}
	if clusterK > 0 {
		lk, err := parseLinkage(linkage)
		if err != nil {
			fatal(err)
		}
		dd, err := cluster.Build(m, m.R, lk)
		if err != nil {
			fatal(err)
		}
		labels, err := dd.Cut(clusterK)
		if err != nil {
			fatal(err)
		}
		for i, l := range labels {
			fmt.Fprintf(w, "%d\t%d\n", i, l)
		}
		fmt.Fprintf(os.Stderr, "rfdist: silhouette = %.3f\n", cluster.Silhouette(m, labels))
		return
	}
	if avgOnly {
		for i, a := range m.RowAverages() {
			fmt.Fprintf(w, "%d\t%g\n", i, a)
		}
		return
	}
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.R; j++ {
			if j > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, m.At(i, j))
		}
		fmt.Fprintln(w)
	}
}

func parseLinkage(s string) (cluster.Linkage, error) {
	switch s {
	case "single":
		return cluster.Single, nil
	case "complete":
		return cluster.Complete, nil
	case "average", "":
		return cluster.Average, nil
	default:
		return 0, fmt.Errorf("unknown linkage %q (want single|complete|average)", s)
	}
}

func consensusMode(path string, threshold float64, greedy, drawTree bool) {
	var out string
	var err error
	if greedy {
		min := threshold
		if min >= 0.5 {
			min = 0.05 // with -greedy, default -t is too strict to be useful
		}
		out, err = repro.GreedyConsensusFile(path, min, repro.Config{})
	} else {
		out, err = repro.ConsensusFile(path, threshold, repro.Config{})
	}
	if err != nil {
		fatal(err)
	}
	if drawTree {
		t, err := newick.Parse(out)
		if err != nil {
			fatal(err)
		}
		if err := draw.Write(os.Stdout, t, draw.Options{}); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println(out)
}
