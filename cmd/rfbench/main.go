// Command rfbench regenerates every table and figure of the paper's
// evaluation section on simulated stand-ins for its datasets, printing the
// same rows the paper reports (runtime in minutes, peak memory in MB, per
// engine and data point) plus empirical complexity fits and the §VI.C
// statistics.
//
// Usage:
//
//	rfbench                          # full suite at the default scale (minutes)
//	rfbench -exp avian               # only Fig. 1
//	rfbench -exp headline            # the abstract's speedup/memory ratios
//	rfbench -scale 0.1 -csv out/     # 10% of the paper's sizes, CSVs saved
//	rfbench -scale 1                 # the paper's full sizes (hours, tens of GB)
//
// Experiments: datasets (Table II), avian (Fig. 1), insect (Table III),
// vartaxa (Table IV), vartrees (Table V / Fig. 2), complexity (Table I +
// §VI.C), accuracy (§III.C), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all | datasets | avian | insect | vartaxa | vartrees | complexity | accuracy | headline | ablation | distrib")
		scale   = flag.Float64("scale", 0.02, "fraction of the paper's dataset sizes (1 = full scale)")
		engines = flag.String("engines", "", "comma-separated engine subset (DS,DSMP8,DSMP16,HashRF,BFHRF8,BFHRF16)")
		qcap    = flag.Int("query-cap", 64, "max queries executed by DS/DSMP before extrapolating (paper's estimation protocol)")
		membw   = flag.Int("mem-budget", 2048, "HashRF matrix budget in MB (simulates the paper's OOM kills)")
		csvDir  = flag.String("csv", "", "directory to save per-table CSV files")
		workDir = flag.String("work", "", "directory for materialized dataset files (default: temp)")
		verbose = flag.Bool("v", false, "per-run progress on stderr")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:       *scale,
		QueryCap:    *qcap,
		MemBudgetMB: *membw,
		WorkDir:     *workDir,
		Verbose:     *verbose,
	}
	if *engines != "" {
		for _, e := range strings.Split(*engines, ",") {
			cfg.Engines = append(cfg.Engines, experiments.Engine(strings.TrimSpace(e)))
		}
	}

	type runner struct {
		name string
		run  func() *experiments.Report
	}
	all := []runner{
		{"datasets", cfg.Datasets},
		{"accuracy", cfg.Accuracy},
		{"avian", cfg.Avian},
		{"insect", cfg.Insect},
		{"vartaxa", cfg.VarTaxa},
		{"vartrees", cfg.VarTrees},
		{"complexity", cfg.Complexity},
		{"headline", cfg.Headline},
		{"ablation", cfg.Ablation},
		{"distrib", cfg.Distrib},
	}
	var selected []runner
	if *exp == "all" {
		selected = all
	} else {
		for _, r := range all {
			if r.name == *exp {
				selected = append(selected, r)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "rfbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}

	for _, r := range selected {
		rep := r.run()
		if err := rep.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := rep.SaveCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "rfbench: saving CSV: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
