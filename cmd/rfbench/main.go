// Command rfbench regenerates every table and figure of the paper's
// evaluation section on simulated stand-ins for its datasets, printing the
// same rows the paper reports (runtime in minutes, peak memory in MB, per
// engine and data point) plus empirical complexity fits and the §VI.C
// statistics.
//
// It is also the perf-observability tool: `-json` runs the benchmark
// sweep over the experiment index and emits machine-readable records
// (the committed BENCH_*.json trajectory), and `-compare` gates a run
// against a committed baseline, exiting non-zero on regression.
//
// Usage:
//
//	rfbench                          # full suite at the default scale (minutes)
//	rfbench -exp avian               # only Fig. 1
//	rfbench -exp headline            # the abstract's speedup/memory ratios
//	rfbench -scale 0.1 -csv out/     # 10% of the paper's sizes, CSVs saved
//	rfbench -scale 1                 # the paper's full sizes (hours, tens of GB)
//
//	rfbench -json BENCH_0002.json            # measure the perf sweep, write records
//	rfbench -compare BENCH_0001.json         # measure and gate against a baseline
//	rfbench -compare old.json -with new.json # gate one recorded run against another
//
// Experiments: datasets (Table II), avian (Fig. 1), insect (Table III),
// vartaxa (Table IV), vartrees (Table V / Fig. 2), complexity (Table I +
// §VI.C), accuracy (§III.C), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/perfjson"
	"repro/internal/profhook"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all | datasets | avian | insect | vartaxa | vartrees | complexity | accuracy | headline | ablation | distrib")
		scale     = flag.Float64("scale", 0.02, "fraction of the paper's dataset sizes (1 = full scale)")
		engines   = flag.String("engines", "", "comma-separated engine subset (DS,DSMP8,DSMP16,HashRF,BFHRF8,BFHRF16,BFHRF-OA,BFHRF-MAP,BFHRF-SUCC)")
		qcap      = flag.Int("query-cap", 64, "max queries executed by DS/DSMP before extrapolating (paper's estimation protocol)")
		membw     = flag.Int("mem-budget", 2048, "HashRF matrix budget in MB (simulates the paper's OOM kills)")
		csvDir    = flag.String("csv", "", "directory to save per-table CSV files")
		workDir   = flag.String("work", "", "directory for materialized dataset files (default: temp)")
		jsonOut   = flag.String("json", "", "perf mode: run the benchmark sweep and write perfjson records to this file")
		compare   = flag.String("compare", "", "perf mode: gate against this baseline perfjson file (exit 3 on regression)")
		with      = flag.String("with", "", "with -compare: gate this already-recorded perfjson file instead of measuring")
		threshold = flag.Float64("threshold", perfjson.DefaultThreshold, "relative slowdown that counts as a regression")
		reps      = flag.Int("reps", 5, "perf mode: repetitions per workload/engine (median and min are recorded)")
		version   = flag.Bool("version", false, "print version and VCS revision, then exit")
	)
	profs := profhook.RegisterFlags(nil)
	// -v doubles as the historical "verbose progress" switch (bare -v) and
	// the shared log verbosity (-v=2 for trace).
	logc := obs.RegisterLogFlags(nil)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("rfbench"))
		return
	}
	if _, err := logc.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
		os.Exit(2)
	}

	stop, err := profs.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
		os.Exit(1)
	}
	code := run(*exp, *scale, *engines, *qcap, *membw, *csvDir, *workDir, logc.V >= 1,
		*jsonOut, *compare, *with, *threshold, *reps)
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "rfbench: stopping profiles: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(exp string, scale float64, engines string, qcap, membw int, csvDir, workDir string, verbose bool,
	jsonOut, compare, with string, threshold float64, reps int) int {
	cfg := experiments.Config{
		Scale:       scale,
		QueryCap:    qcap,
		MemBudgetMB: membw,
		WorkDir:     workDir,
		Verbose:     verbose,
	}
	if engines != "" {
		for _, e := range strings.Split(engines, ",") {
			cfg.Engines = append(cfg.Engines, experiments.Engine(strings.TrimSpace(e)))
		}
	}

	if jsonOut != "" || compare != "" || with != "" {
		return runPerf(cfg, jsonOut, compare, with, threshold, reps)
	}

	type runner struct {
		name string
		run  func() *experiments.Report
	}
	all := []runner{
		{"datasets", cfg.Datasets},
		{"accuracy", cfg.Accuracy},
		{"avian", cfg.Avian},
		{"insect", cfg.Insect},
		{"vartaxa", cfg.VarTaxa},
		{"vartrees", cfg.VarTrees},
		{"complexity", cfg.Complexity},
		{"headline", cfg.Headline},
		{"ablation", cfg.Ablation},
		{"distrib", cfg.Distrib},
	}
	var selected []runner
	if exp == "all" {
		selected = all
	} else {
		for _, r := range all {
			if r.name == exp {
				selected = append(selected, r)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "rfbench: unknown experiment %q\n", exp)
			return 2
		}
	}

	for _, r := range selected {
		rep := r.run()
		if err := rep.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
			return 1
		}
		if csvDir != "" {
			if err := rep.SaveCSV(csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "rfbench: saving CSV: %v\n", err)
				return 1
			}
		}
	}
	return 0
}

// runPerf is the perf-observability mode: measure (or load) a benchmark
// suite, optionally persist it, optionally gate it against a baseline.
func runPerf(cfg experiments.Config, jsonOut, compare, with string, threshold float64, reps int) int {
	var cur *perfjson.Suite
	var err error
	if with != "" {
		if compare == "" {
			fmt.Fprintln(os.Stderr, "rfbench: -with requires -compare")
			return 2
		}
		if cur, err = perfjson.ReadFile(with); err != nil {
			fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
			return 1
		}
	} else {
		if cur, err = cfg.PerfSweep(reps); err != nil {
			fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
			return 1
		}
		cur.Tool = "rfbench"
		cur.GitCommit = perfjson.GitCommit(".")
		cur.Timestamp = time.Now().UTC().Format(time.RFC3339)
	}

	if jsonOut != "" {
		if err := perfjson.WriteFile(jsonOut, cur); err != nil {
			fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "rfbench: wrote %d records to %s\n", len(cur.Records), jsonOut)
	}

	if compare == "" {
		return 0
	}
	base, err := perfjson.ReadFile(compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
		return 1
	}
	cmp, err := perfjson.Compare(base, cur, perfjson.Options{Threshold: threshold})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
		return 1
	}
	if err := cmp.WriteText(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rfbench: %v\n", err)
		return 1
	}
	if !cmp.OK() {
		return 3
	}
	return 0
}
