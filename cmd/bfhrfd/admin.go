package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/distrib"
	"repro/internal/obs"
)

// The admin listener is the operational surface of a bfhrfd process:
//
//	/metrics       obs registry, Prometheus text format (including the
//	               runtime telemetry polled by obs.RuntimeCollector)
//	/healthz       readiness — worker: shard loaded + tree count;
//	               coordinator: reachable workers
//	/debug/traces  the last-K kept traces as JSON (?n=K limits)
//	/debug/pprof/  live CPU/heap/goroutine profiling (net/http/pprof);
//	               mutex and block profiles populate when the
//	               -mutex-profile-fraction / -block-profile-rate flags
//	               enable their samplers
//
// It is deliberately separate from the RPC port so operators can firewall
// the data plane and the admin plane independently.

// adminServer is the admin HTTP listener with graceful shutdown.
type adminServer struct {
	srv *http.Server
	l   net.Listener
	rc  *obs.RuntimeCollector
}

// startAdmin serves the admin mux on addr. healthz is mode-specific;
// mount, when non-nil, adds extra routes (the /v1 query service).
func startAdmin(addr string, healthz http.HandlerFunc, mount func(*http.ServeMux)) (*adminServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Default.Handler())
	mux.HandleFunc("/healthz", healthz)
	mux.Handle("/debug/traces", obs.CurrentTracer().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if mount != nil {
		mount(mux)
	}
	a := &adminServer{
		// The listener is reachable by anything that can scrape metrics, so
		// it gets the full slow-client armor: a client must finish its
		// headers in 10s and its whole request in 1m, idle keep-alives are
		// reaped, and headers are capped — a slowloris holds a connection,
		// not a goroutine-per-byte forever. ReadTimeout is generous because
		// /v1/query bodies are real payloads; WriteTimeout stays 0 so a
		// long CPU profile stream (/debug/pprof/profile?seconds=...) is not
		// cut off mid-write.
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       time.Minute,
			IdleTimeout:       2 * time.Minute,
			MaxHeaderBytes:    64 << 10,
		},
		l: l,
		// Poll runtime health (GC pauses, heap, goroutines, sched latency)
		// into the registry for as long as /metrics is being served.
		rc: obs.StartRuntimeCollector(nil, 5*time.Second),
	}
	go a.srv.Serve(l) //nolint:errcheck — returns ErrServerClosed on Shutdown
	return a, nil
}

// Addr returns the bound admin address (useful with -admin :0).
func (a *adminServer) Addr() string { return a.l.Addr().String() }

// Shutdown stops the runtime collector and drains in-flight admin
// requests for up to five seconds.
func (a *adminServer) Shutdown() error {
	a.rc.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return a.srv.Shutdown(ctx)
}

// workerHealthz reports readiness of a worker shard: 503 until the first
// reference chunk is folded in, then 200 with the shard statistics.
func workerHealthz(w *distrib.Worker) http.HandlerFunc {
	return func(rw http.ResponseWriter, _ *http.Request) {
		st := w.Status()
		rw.Header().Set("Content-Type", "application/json")
		if !st.Loaded {
			rw.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(rw, `{"status":"not ready","initialized":%t,"trees":0}`+"\n", st.Initialized)
			return
		}
		fmt.Fprintf(rw, `{"status":"ok","trees":%d,"unique_bipartitions":%d}`+"\n", st.Trees, st.Unique)
	}
}

// coordinatorHealthz reports the cluster shape as the coordinator sees
// it: total and alive worker counts plus the per-worker health verdict
// (healthy/suspect/dead, mirroring bfhrf_worker_state). 503 when no
// worker is reachable, "degraded" when some — but not all — are dead.
func coordinatorHealthz(coord *distrib.Coordinator) http.HandlerFunc {
	return func(rw http.ResponseWriter, _ *http.Request) {
		n := coord.NumWorkers()
		alive := coord.AliveWorkers()
		rw.Header().Set("Content-Type", "application/json")
		if n == 0 || alive == 0 {
			rw.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(rw, `{"status":"not ready","workers":%d,"alive":%d}`+"\n", n, alive)
			return
		}
		status := "ok"
		if alive < n {
			status = "degraded"
		}
		states := coord.WorkerStates()
		addrs := make([]string, 0, len(states))
		for addr := range states {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		var sb strings.Builder
		for i, addr := range addrs {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, `%q:%q`, addr, states[addr].String())
		}
		fmt.Fprintf(rw, `{"status":%q,"workers":%d,"alive":%d,"states":{%s}}`+"\n",
			status, n, alive, sb.String())
	}
}
