// Command bfhrfd runs BFHRF in multi-node mode — the paper's §VII.B
// extension. One process per worker node serves a shard of the reference
// collection; a coordinator process distributes the references, fans
// queries out, and folds the exact average-RF results.
//
// Worker (one per node):
//
//	bfhrfd -serve :7001 -admin :9090
//
// Coordinator:
//
//	bfhrfd -workers host1:7001,host2:7001 -ref refs.nwk -query queries.nwk
//
// Output matches cmd/bfhrf: one "index<TAB>avgRF" line per query.
//
// The -admin listener serves the runtime telemetry: /metrics (Prometheus
// text format), /healthz (worker: shard loaded + tree count; coordinator:
// reachable workers), and /debug/pprof. Structured logs go to stderr
// (-log-format text|json, -v for debug detail, -v=2 for trace). See
// "Operating bfhrfd" in README.md for the metric catalog.
//
// The profiling flags (-cpuprofile, -memprofile, -trace) capture the run
// for `go tool pprof` / `go tool trace`. A worker profiles until it is
// terminated (SIGINT/SIGTERM), at which point the profiles are flushed
// before exit.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/collection"
	"repro/internal/distrib"
	"repro/internal/obs"
	"repro/internal/profhook"
)

func main() {
	var (
		serve     = flag.String("serve", "", "run as a worker, listening on this address (e.g. :7001)")
		workers   = flag.String("workers", "", "coordinator mode: comma-separated worker addresses")
		refPath   = flag.String("ref", "", "reference tree collection (coordinator mode)")
		queryPath = flag.String("query", "", "query tree collection; defaults to -ref")
		compress  = flag.Bool("compress", false, "store compressed bipartition keys on the shards")
		chunk     = flag.Int("chunk", 512, "reference trees per load RPC")
		batch     = flag.Int("batch", 256, "query trees per query RPC")
		admin     = flag.String("admin", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :9090)")
		version   = flag.Bool("version", false, "print version and VCS revision, then exit")
	)
	profs := profhook.RegisterFlags(nil)
	logc := obs.RegisterLogFlags(nil)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("bfhrfd"))
		return
	}
	if _, err := logc.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
		os.Exit(2)
	}
	obs.RegisterBuildInfo(nil)

	if code, msg := validateFlags(*serve, *workers, *refPath, *queryPath); code != 0 {
		fmt.Fprintf(os.Stderr, "bfhrfd: %s\n", msg)
		flag.Usage()
		os.Exit(code)
	}

	stop, err := profs.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
		os.Exit(1)
	}

	var code int
	if *serve != "" {
		code = runWorker(*serve, *admin)
	} else {
		code = runCoordinator(*workers, *refPath, *queryPath, *admin, *compress, *chunk, *batch)
	}
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: stopping profiles: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// validateFlags enforces the mode split: -serve selects worker mode and
// -workers coordinator mode; they are mutually exclusive, and the
// coordinator-only flags are errors in worker mode rather than silently
// ignored.
func validateFlags(serve, workers, refPath, queryPath string) (int, string) {
	switch {
	case serve == "" && workers == "":
		return 2, "need -serve (worker) or -workers (coordinator)"
	case serve != "" && workers != "":
		return 2, "-serve (worker mode) and -workers (coordinator mode) are mutually exclusive"
	case serve != "" && (refPath != "" || queryPath != ""):
		return 2, "-ref/-query are coordinator flags; a worker receives its shard over RPC"
	}
	return 0, ""
}

func fail(err error) int {
	slog.Error(err.Error())
	fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
	return 1
}

// runWorker serves until SIGINT/SIGTERM so that profiles started in main
// are flushed on the way out (os.Exit inside a signal-less select would
// discard them). The RPC listener and the admin server are shut down
// before returning.
func runWorker(addr, adminAddr string) int {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fail(err)
	}
	w := &distrib.Worker{}
	go distrib.ServeWorker(l, w) //nolint:errcheck — terminates when l closes
	fmt.Fprintf(os.Stderr, "bfhrfd: worker serving on %s\n", l.Addr())
	slog.Info("worker serving", "addr", l.Addr().String())

	var adm *adminServer
	if adminAddr != "" {
		adm, err = startAdmin(adminAddr, workerHealthz(w))
		if err != nil {
			l.Close()
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: admin serving on %s\n", adm.Addr())
		slog.Info("admin serving", "addr", adm.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "bfhrfd: %s, shutting down\n", s)
	slog.Info("shutting down", "signal", s.String())
	l.Close()
	code := 0
	if adm != nil {
		if err := adm.Shutdown(); err != nil {
			code = fail(fmt.Errorf("admin shutdown: %w", err))
		}
	}
	return code
}

func runCoordinator(workerList, refPath, queryPath, adminAddr string, compress bool, chunk, batch int) int {
	if refPath == "" {
		fmt.Fprintln(os.Stderr, "bfhrfd: -ref is required in coordinator mode")
		flag.Usage()
		return 2
	}
	if queryPath == "" {
		queryPath = refPath
	}
	var addrs []string
	for _, a := range strings.Split(workerList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	coord, err := distrib.Dial(addrs)
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	coord.ChunkSize = chunk
	coord.BatchSize = batch

	var adm *adminServer
	if adminAddr != "" {
		adm, err = startAdmin(adminAddr, coordinatorHealthz(coord))
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: admin serving on %s\n", adm.Addr())
		slog.Info("admin serving", "addr", adm.Addr())
		defer adm.Shutdown() //nolint:errcheck — best-effort drain on exit
	}

	refs, err := collection.OpenFile(refPath)
	if err != nil {
		return fail(err)
	}
	defer refs.Close()
	_, span := obs.StartSpan(nil, "coord.scan_taxa")
	ts, err := collection.ScanTaxa(refs)
	span.End()
	if err != nil {
		return fail(err)
	}
	if err := coord.Load(refs, ts, compress); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "bfhrfd: loaded references across %d workers\n", coord.NumWorkers())

	queries, err := collection.OpenFile(queryPath)
	if err != nil {
		return fail(err)
	}
	defer queries.Close()
	results, err := coord.AverageRF(queries)
	if err != nil {
		return fail(err)
	}
	for _, r := range results {
		fmt.Printf("%d\t%g\n", r.Index, r.AvgRF)
	}
	slog.Info("run complete", "queries", len(results), "workers", coord.NumWorkers())
	return 0
}
