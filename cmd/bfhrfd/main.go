// Command bfhrfd runs BFHRF in multi-node mode — the paper's §VII.B
// extension. One process per worker node serves a shard of the reference
// collection; a coordinator process distributes the references, fans
// queries out, and folds the exact average-RF results.
//
// Worker (one per node):
//
//	bfhrfd -serve :7001
//
// Coordinator:
//
//	bfhrfd -workers host1:7001,host2:7001 -ref refs.nwk -query queries.nwk
//
// Output matches cmd/bfhrf: one "index<TAB>avgRF" line per query.
//
// The profiling flags (-cpuprofile, -memprofile, -trace) capture the run
// for `go tool pprof` / `go tool trace`. A worker profiles until it is
// terminated (SIGINT/SIGTERM), at which point the profiles are flushed
// before exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/collection"
	"repro/internal/distrib"
	"repro/internal/profhook"
)

func main() {
	var (
		serve     = flag.String("serve", "", "run as a worker, listening on this address (e.g. :7001)")
		workers   = flag.String("workers", "", "coordinator mode: comma-separated worker addresses")
		refPath   = flag.String("ref", "", "reference tree collection (coordinator mode)")
		queryPath = flag.String("query", "", "query tree collection; defaults to -ref")
		compress  = flag.Bool("compress", false, "store compressed bipartition keys on the shards")
		chunk     = flag.Int("chunk", 512, "reference trees per load RPC")
		batch     = flag.Int("batch", 256, "query trees per query RPC")
	)
	profs := profhook.RegisterFlags(nil)
	flag.Parse()

	stop, err := profs.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
		os.Exit(1)
	}

	var code int
	switch {
	case *serve != "":
		code = runWorker(*serve)
	case *workers != "":
		code = runCoordinator(*workers, *refPath, *queryPath, *compress, *chunk, *batch)
	default:
		fmt.Fprintln(os.Stderr, "bfhrfd: need -serve (worker) or -workers (coordinator)")
		flag.Usage()
		code = 2
	}
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: stopping profiles: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
	return 1
}

// runWorker serves until SIGINT/SIGTERM so that profiles started in main
// are flushed on the way out (os.Exit inside a signal-less select would
// discard them).
func runWorker(addr string) int {
	l, err := distrib.Listen(addr)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "bfhrfd: worker serving on %s\n", l.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "bfhrfd: %s, shutting down\n", s)
	return 0
}

func runCoordinator(workerList, refPath, queryPath string, compress bool, chunk, batch int) int {
	if refPath == "" {
		return fail(fmt.Errorf("-ref is required in coordinator mode"))
	}
	if queryPath == "" {
		queryPath = refPath
	}
	var addrs []string
	for _, a := range strings.Split(workerList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	coord, err := distrib.Dial(addrs)
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	coord.ChunkSize = chunk
	coord.BatchSize = batch

	refs, err := collection.OpenFile(refPath)
	if err != nil {
		return fail(err)
	}
	defer refs.Close()
	ts, err := collection.ScanTaxa(refs)
	if err != nil {
		return fail(err)
	}
	if err := coord.Load(refs, ts, compress); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "bfhrfd: loaded references across %d workers\n", coord.NumWorkers())

	queries, err := collection.OpenFile(queryPath)
	if err != nil {
		return fail(err)
	}
	defer queries.Close()
	results, err := coord.AverageRF(queries)
	if err != nil {
		return fail(err)
	}
	for _, r := range results {
		fmt.Printf("%d\t%g\n", r.Index, r.AvgRF)
	}
	return 0
}
