// Command bfhrfd runs BFHRF in multi-node mode — the paper's §VII.B
// extension. One process per worker node serves a shard of the reference
// collection; a coordinator process distributes the references, fans
// queries out, and folds the exact average-RF results.
//
// Worker (one per node):
//
//	bfhrfd -serve :7001
//
// Coordinator:
//
//	bfhrfd -workers host1:7001,host2:7001 -ref refs.nwk -query queries.nwk
//
// Output matches cmd/bfhrf: one "index<TAB>avgRF" line per query.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collection"
	"repro/internal/distrib"
)

func main() {
	var (
		serve     = flag.String("serve", "", "run as a worker, listening on this address (e.g. :7001)")
		workers   = flag.String("workers", "", "coordinator mode: comma-separated worker addresses")
		refPath   = flag.String("ref", "", "reference tree collection (coordinator mode)")
		queryPath = flag.String("query", "", "query tree collection; defaults to -ref")
		compress  = flag.Bool("compress", false, "store compressed bipartition keys on the shards")
		chunk     = flag.Int("chunk", 512, "reference trees per load RPC")
		batch     = flag.Int("batch", 256, "query trees per query RPC")
	)
	flag.Parse()

	switch {
	case *serve != "":
		runWorker(*serve)
	case *workers != "":
		runCoordinator(*workers, *refPath, *queryPath, *compress, *chunk, *batch)
	default:
		fmt.Fprintln(os.Stderr, "bfhrfd: need -serve (worker) or -workers (coordinator)")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
	os.Exit(1)
}

func runWorker(addr string) {
	l, err := distrib.Listen(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bfhrfd: worker serving on %s\n", l.Addr())
	select {} // serve until killed
}

func runCoordinator(workerList, refPath, queryPath string, compress bool, chunk, batch int) {
	if refPath == "" {
		fatal(fmt.Errorf("-ref is required in coordinator mode"))
	}
	if queryPath == "" {
		queryPath = refPath
	}
	var addrs []string
	for _, a := range strings.Split(workerList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	coord, err := distrib.Dial(addrs)
	if err != nil {
		fatal(err)
	}
	defer coord.Close()
	coord.ChunkSize = chunk
	coord.BatchSize = batch

	refs, err := collection.OpenFile(refPath)
	if err != nil {
		fatal(err)
	}
	defer refs.Close()
	ts, err := collection.ScanTaxa(refs)
	if err != nil {
		fatal(err)
	}
	if err := coord.Load(refs, ts, compress); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bfhrfd: loaded references across %d workers\n", coord.NumWorkers())

	queries, err := collection.OpenFile(queryPath)
	if err != nil {
		fatal(err)
	}
	defer queries.Close()
	results, err := coord.AverageRF(queries)
	if err != nil {
		fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%d\t%g\n", r.Index, r.AvgRF)
	}
}
