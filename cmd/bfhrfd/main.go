// Command bfhrfd runs BFHRF in multi-node mode — the paper's §VII.B
// extension. One process per worker node serves a shard of the reference
// collection; a coordinator process distributes the references, fans
// queries out, and folds the exact average-RF results.
//
// Worker (one per node):
//
//	bfhrfd -serve :7001 -admin :9090
//
// Coordinator:
//
//	bfhrfd -workers host1:7001,host2:7001 -ref refs.nwk -query queries.nwk
//
// Output matches cmd/bfhrf: one "index<TAB>avgRF" line per query on
// stdout. Fault-tolerance annotations (coverage, failovers, lost workers)
// go to stderr so pipelines comparing the two commands stay byte-stable.
//
// The coordinator tolerates worker failure. Every RPC carries the
// -rpc-timeout deadline and transient failures (dial errors, timeouts,
// severed connections) are retried up to -retries times with exponential
// backoff. A worker that stays unreachable is declared dead: by default
// its shard is re-dispatched to a healthy worker from the post-load
// checkpoint and the query still returns the exact full result; with
// -partial-results the query instead answers from the shards that
// responded and reports the achieved coverage. -health-interval starts a
// background probe loop that detects dead workers between queries
// (bfhrf_worker_state: 0 healthy, 1 suspect, 2 dead). See ARCHITECTURE.md
// for the failure model and "Operating bfhrfd" in README.md for the
// recovery runbook.
//
// The -admin listener serves the runtime telemetry: /metrics (Prometheus
// text format), /healthz (worker: shard loaded + tree count; coordinator:
// alive/dead worker counts), and /debug/pprof. Structured logs go to
// stderr (-log-format text|json, -v for debug detail, -v=2 for trace).
//
// The profiling flags (-cpuprofile, -memprofile, -trace) capture the run
// for `go tool pprof` / `go tool trace`. A worker profiles until it is
// terminated (SIGINT/SIGTERM), at which point the profiles are flushed
// before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/collection"
	"repro/internal/distrib"
	"repro/internal/obs"
	"repro/internal/profhook"
)

func main() {
	var (
		serve     = flag.String("serve", "", "run as a worker, listening on this address (e.g. :7001)")
		workers   = flag.String("workers", "", "coordinator mode: comma-separated worker addresses")
		refPath   = flag.String("ref", "", "reference tree collection (coordinator mode)")
		queryPath = flag.String("query", "", "query tree collection; defaults to -ref (coordinator mode)")
		compress  = flag.Bool("compress", false, "store losslessly compressed bipartition keys on the shards (selects the map hash backend; coordinator mode)")
		chunk     = flag.Int("chunk", 512, "reference trees per load RPC (coordinator mode)")
		batch     = flag.Int("batch", 256, "query trees per query RPC (coordinator mode)")
		admin     = flag.String("admin", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :9090)")
		version   = flag.Bool("version", false, "print version and VCS revision, then exit")

		rpcTimeout = flag.Duration("rpc-timeout", 30*time.Second,
			"per-RPC deadline; 0 disables (coordinator mode)")
		retries = flag.Int("retries", 2,
			"retries per RPC on transient failures, with exponential backoff (coordinator mode)")
		partialResults = flag.Bool("partial-results", false,
			"answer from surviving shards instead of failing over a dead worker's shard; coverage is reported on stderr and in bfhrf_query_shard_coverage (coordinator mode)")
		healthInterval = flag.Duration("health-interval", 0,
			"probe worker health at this period; 0 disables the loop (coordinator mode)")
	)
	profs := profhook.RegisterFlags(nil)
	logc := obs.RegisterLogFlags(nil)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("bfhrfd"))
		return
	}
	if _, err := logc.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
		os.Exit(2)
	}
	obs.RegisterBuildInfo(nil)

	if code, msg := validateFlags(*serve, *workers, setFlags()); code != 0 {
		fmt.Fprintf(os.Stderr, "bfhrfd: %s\n", msg)
		flag.Usage()
		os.Exit(code)
	}

	stop, err := profs.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
		os.Exit(1)
	}

	var code int
	if *serve != "" {
		code = runWorker(*serve, *admin)
	} else {
		code = runCoordinator(coordConfig{
			workers:        *workers,
			refPath:        *refPath,
			queryPath:      *queryPath,
			adminAddr:      *admin,
			compress:       *compress,
			chunk:          *chunk,
			batch:          *batch,
			rpcTimeout:     *rpcTimeout,
			retries:        *retries,
			partialResults: *partialResults,
			healthInterval: *healthInterval,
		})
	}
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: stopping profiles: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// coordinatorOnly lists the flags that configure the coordinator and are
// meaningless on a worker (a worker receives its shard and its queries
// over RPC). Worker mode rejects them instead of silently ignoring them.
var coordinatorOnly = []string{
	"ref", "query", "compress", "chunk", "batch",
	"rpc-timeout", "retries", "partial-results", "health-interval",
}

// setFlags reports which flags were explicitly set on the command line.
func setFlags() map[string]bool {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// validateFlags enforces the mode split: -serve selects worker mode and
// -workers coordinator mode; they are mutually exclusive, and the
// coordinator-only flags are errors in worker mode rather than silently
// ignored.
func validateFlags(serve, workers string, set map[string]bool) (int, string) {
	switch {
	case serve == "" && workers == "":
		return 2, "need -serve (worker) or -workers (coordinator)"
	case serve != "" && workers != "":
		return 2, "-serve (worker mode) and -workers (coordinator mode) are mutually exclusive"
	}
	if serve != "" {
		for _, name := range coordinatorOnly {
			if set[name] {
				return 2, fmt.Sprintf("-%s is a coordinator flag; a worker receives its shard over RPC", name)
			}
		}
	}
	return 0, ""
}

func fail(err error) int {
	slog.Error(err.Error())
	fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
	return 1
}

// runWorker serves until SIGINT/SIGTERM so that profiles started in main
// are flushed on the way out (os.Exit inside a signal-less select would
// discard them). The RPC listener and the admin server are shut down
// before returning.
func runWorker(addr, adminAddr string) int {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fail(err)
	}
	w := &distrib.Worker{}
	go distrib.ServeWorker(l, w) //nolint:errcheck — terminates when l closes
	fmt.Fprintf(os.Stderr, "bfhrfd: worker serving on %s\n", l.Addr())
	slog.Info("worker serving", "addr", l.Addr().String())

	var adm *adminServer
	if adminAddr != "" {
		adm, err = startAdmin(adminAddr, workerHealthz(w))
		if err != nil {
			l.Close()
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: admin serving on %s\n", adm.Addr())
		slog.Info("admin serving", "addr", adm.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "bfhrfd: %s, shutting down\n", s)
	slog.Info("shutting down", "signal", s.String())
	l.Close()
	code := 0
	if adm != nil {
		if err := adm.Shutdown(); err != nil {
			code = fail(fmt.Errorf("admin shutdown: %w", err))
		}
	}
	return code
}

// coordConfig bundles the coordinator-mode flag values.
type coordConfig struct {
	workers, refPath, queryPath, adminAddr string
	compress                               bool
	chunk, batch                           int
	rpcTimeout                             time.Duration
	retries                                int
	partialResults                         bool
	healthInterval                         time.Duration
}

func runCoordinator(cfg coordConfig) int {
	if cfg.refPath == "" {
		fmt.Fprintln(os.Stderr, "bfhrfd: -ref is required in coordinator mode")
		flag.Usage()
		return 2
	}
	if cfg.queryPath == "" {
		cfg.queryPath = cfg.refPath
	}
	var addrs []string
	for _, a := range strings.Split(cfg.workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	// SIGINT/SIGTERM cancels the context, which aborts in-flight RPCs and
	// backoff sleeps instead of leaving the run hanging on a dead cluster.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	retry := distrib.RetryPolicy{MaxAttempts: cfg.retries + 1}
	// Workers may still be starting when the coordinator launches; ride
	// that out with the same backoff the per-RPC path uses.
	var coord *distrib.Coordinator
	err := distrib.Do(ctx, retry,
		func(r int, err error) { slog.Warn("retrying worker dial", "retry", r+1, "error", err) },
		func() error {
			var err error
			coord, err = distrib.Dial(addrs)
			return err
		})
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	coord.ChunkSize = cfg.chunk
	coord.BatchSize = cfg.batch
	coord.RPCTimeout = cfg.rpcTimeout
	coord.Retry = retry
	coord.PartialResults = cfg.partialResults

	var adm *adminServer
	if cfg.adminAddr != "" {
		adm, err = startAdmin(cfg.adminAddr, coordinatorHealthz(coord))
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: admin serving on %s\n", adm.Addr())
		slog.Info("admin serving", "addr", adm.Addr())
		defer adm.Shutdown() //nolint:errcheck — best-effort drain on exit
	}

	refs, err := collection.OpenFile(cfg.refPath)
	if err != nil {
		return fail(err)
	}
	defer refs.Close()
	_, span := obs.StartSpan(nil, "coord.scan_taxa")
	ts, err := collection.ScanTaxa(refs)
	span.End()
	if err != nil {
		return fail(err)
	}
	if err := coord.LoadContext(ctx, refs, ts, cfg.compress); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "bfhrfd: loaded references across %d workers\n", coord.NumWorkers())

	if cfg.healthInterval > 0 {
		stopHealth := coord.StartHealthLoop(cfg.healthInterval)
		defer stopHealth()
		slog.Info("health loop started", "interval", cfg.healthInterval.String())
	}

	queries, err := collection.OpenFile(cfg.queryPath)
	if err != nil {
		return fail(err)
	}
	defer queries.Close()
	out, err := coord.AverageRFContext(ctx, queries)
	if err != nil {
		return fail(err)
	}
	for _, r := range out.Results {
		fmt.Printf("%d\t%g\n", r.Index, r.AvgRF)
	}
	// Fault-tolerance annotations stay off stdout: the result stream must
	// remain byte-identical to cmd/bfhrf.
	if len(out.DeadWorkers) > 0 {
		fmt.Fprintf(os.Stderr, "bfhrfd: lost workers during run: %s\n", strings.Join(out.DeadWorkers, ", "))
	}
	if out.Failovers > 0 {
		fmt.Fprintf(os.Stderr, "bfhrfd: %d shard(s) failed over; results are complete\n", out.Failovers)
	}
	if out.Partial {
		fmt.Fprintf(os.Stderr, "bfhrfd: PARTIAL RESULTS: minimum shard coverage %.1f%% of reference trees\n",
			out.Coverage*100)
	}
	slog.Info("run complete", "queries", len(out.Results), "workers", coord.NumWorkers(),
		"alive", coord.AliveWorkers(), "failovers", out.Failovers,
		"partial", out.Partial, "coverage", out.Coverage)
	return 0
}
