// Command bfhrfd runs BFHRF in multi-node mode — the paper's §VII.B
// extension. One process per worker node serves a shard of the reference
// collection; a coordinator process distributes the references, fans
// queries out, and folds the exact average-RF results.
//
// Worker (one per node):
//
//	bfhrfd -serve :7001 -admin :9090
//
// Coordinator:
//
//	bfhrfd -workers host1:7001,host2:7001 -ref refs.nwk -query queries.nwk
//
// Output matches cmd/bfhrf: one "index<TAB>avgRF" line per query on
// stdout. Fault-tolerance annotations (coverage, failovers, lost workers)
// go to stderr so pipelines comparing the two commands stay byte-stable.
//
// The coordinator tolerates worker failure. Every RPC carries the
// -rpc-timeout deadline and transient failures (dial errors, timeouts,
// severed connections) are retried up to -retries times with exponential
// backoff. A worker that stays unreachable is declared dead: by default
// its shard is re-dispatched to a healthy worker from the post-load
// checkpoint and the query still returns the exact full result; with
// -partial-results the query instead answers from the shards that
// responded and reports the achieved coverage. -health-interval starts a
// background probe loop that detects dead workers between queries
// (bfhrf_worker_state: 0 healthy, 1 suspect, 2 dead). See ARCHITECTURE.md
// for the failure model and "Operating bfhrfd" in README.md for the
// recovery runbook.
//
// The -admin listener serves the runtime telemetry: /metrics (Prometheus
// text format, including Go runtime health polled by the runtime
// collector), /healthz (worker: shard loaded + tree count; coordinator:
// alive/dead worker counts), /debug/traces (the last-K kept distributed
// traces as JSON), and /debug/pprof (whose mutex and block profiles
// activate via -mutex-profile-fraction / -block-profile-rate). Structured
// logs go to stderr (-log-format text|json, -v for debug detail, -v=2
// for trace).
//
// Distributed tracing is configured by -trace-out (JSONL export),
// -trace-sample (head-sampling probability) and -slow-query (tail-based
// always-keep plus a structured slow-query log line); trace context
// propagates through the query RPCs, so a coordinator trace includes the
// worker-side spans of every fan-out. See "Diagnosing slow queries" in
// README.md.
//
// The profiling flags (-cpuprofile, -memprofile, -trace) capture the run
// for `go tool pprof` / `go tool trace`. A worker profiles until it is
// terminated (SIGINT/SIGTERM), at which point the profiles are flushed
// before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/newick"
	"repro/internal/obs"
	"repro/internal/profhook"
	"repro/internal/serve"
)

func main() {
	var (
		serve     = flag.String("serve", "", "run as a worker, listening on this address (e.g. :7001)")
		workers   = flag.String("workers", "", "coordinator mode: comma-separated worker addresses")
		refPath   = flag.String("ref", "", "reference tree collection (coordinator mode)")
		queryPath = flag.String("query", "", "query tree collection; defaults to -ref (coordinator mode)")
		compress  = flag.Bool("compress", false, "store losslessly compressed bipartition keys on the shards (selects the map hash backend; coordinator mode)")
		saveBfh   = flag.String("save-bfh", "", "after loading -ref, persist the cluster's shards as a worker-layout snapshot epoch in this directory (coordinator mode)")
		loadBfh   = flag.String("load-bfh", "", "restore the cluster from the snapshot directory's current epoch instead of loading -ref (coordinator mode)")
		chunk     = flag.Int("chunk", 512, "reference trees per load RPC (coordinator mode)")
		batch     = flag.Int("batch", 256, "query trees per query RPC (coordinator mode)")
		admin     = flag.String("admin", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :9090)")
		version   = flag.Bool("version", false, "print version and VCS revision, then exit")

		rpcTimeout = flag.Duration("rpc-timeout", 30*time.Second,
			"per-RPC deadline; 0 disables (coordinator mode)")
		retries = flag.Int("retries", 2,
			"retries per RPC on transient failures, with exponential backoff (coordinator mode)")
		partialResults = flag.Bool("partial-results", false,
			"answer from surviving shards instead of failing over a dead worker's shard; coverage is reported on stderr and in bfhrf_query_shard_coverage (coordinator mode)")
		queryCache = flag.Bool("query-cache", true,
			"answer exact topological repeats from the coordinator's topology-fingerprint cache and dedupe repeats within a batch (coordinator mode)")
		queryCacheSize = flag.Int("query-cache-size", 0,
			"query-cache capacity in entries; 0 = default 65536 (coordinator mode)")
		queryCacheBytes = flag.Int64("query-cache-bytes", 0,
			"query-cache memory cap in bytes; 0 = default 8 MiB (coordinator mode)")
		healthInterval = flag.Duration("health-interval", 0,
			"probe worker health at this period; 0 disables the loop (coordinator mode)")

		outPath = flag.String("o", "",
			"write results to this file (atomic: temp+fsync+rename) instead of stdout (coordinator mode)")
		checkpointPath = flag.String("checkpoint", "",
			"stream per-query results to this checksummed record file for crash-safe resume (coordinator mode)")
		checkpointEvery = flag.Int("checkpoint-interval", 0,
			"results between checkpoint fsyncs; 0 = default (coordinator mode)")
		resume = flag.Bool("resume", false,
			"resume from -checkpoint, skipping already-completed query trees (fingerprint-verified; coordinator mode)")
		skipBadTrees = flag.Bool("skip-bad-trees", false,
			"skip malformed or over-limit input trees, recording a diagnostic for each, instead of failing (coordinator mode)")
		maxTaxa = flag.Int("max-taxa", 0,
			"reject input trees with more than this many leaves; 0 = unlimited (coordinator mode)")
		maxTreeBytes = flag.Int("max-tree-bytes", 0,
			"reject input trees serialized larger than this; 0 = unlimited (coordinator mode)")
		maxInputBytes = flag.Int64("max-input-bytes", 0,
			"hard cap on decompressed bytes read per input file; 0 = unlimited (coordinator mode)")

		mutexFraction = flag.Int("mutex-profile-fraction", 0,
			"sample 1/n of mutex contention events for /debug/pprof/mutex; 0 disables (both modes)")
		blockRate = flag.Int("block-profile-rate", 0,
			"sample blocking events lasting at least this many nanoseconds for /debug/pprof/block; 0 disables (both modes)")

		serveHTTP = flag.Bool("serve-http", false,
			"run as a long-lived query service: answer POST /v1/query on the -admin listener instead of running one batch (serve mode)")
		collections = flag.String("collections", "",
			"JSON manifest of named snapshot collections to serve (serve mode)")
		collectionsRoot = flag.String("collections-root", "",
			"directory under which /v1/collections registrations without an explicit dir resolve, as <root>/<name> (serve mode)")
		collectionName = flag.String("collection-name", "default",
			"catalog name for the worker-backed collection loaded via -ref/-load-bfh (serve mode with -workers)")
		maxInflight = flag.Int("max-inflight", 0,
			"queries executing concurrently; 0 = GOMAXPROCS (serve mode)")
		queueDepth = flag.Int("queue-depth", 0,
			"admitted requests that may wait for an execution slot; beyond it requests are shed with 503; 0 = default 64 (serve mode)")
		tenantRate = flag.Float64("tenant-rate", 0,
			"per-tenant sustained requests/second, keyed on the X-Tenant header; over-rate requests are shed with 429; 0 disables (serve mode)")
		tenantBurst = flag.Float64("tenant-burst", 0,
			"per-tenant token-bucket burst capacity; 0 = 2x -tenant-rate (serve mode)")
		requestMaxBytes = flag.Int64("request-max-bytes", 0,
			"per-request body cap; 0 = default 1 MiB (serve mode)")
		queryDeadline = flag.Duration("query-deadline", 0,
			"end-to-end deadline per admitted request, propagated into worker RPCs; 0 = default 30s (serve mode)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"on SIGTERM, wait this long for in-flight queries before exiting (serve mode)")
	)
	profs := profhook.RegisterFlags(nil)
	logc := obs.RegisterLogFlags(nil)
	tracec := obs.RegisterTraceFlags(nil)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("bfhrfd"))
		return
	}
	if _, err := logc.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
		os.Exit(2)
	}
	obs.RegisterBuildInfo(nil)
	// With an admin listener the ring must record regardless of flags, so
	// /debug/traces has something to show.
	flushTraces, err := tracec.Setup(*admin != "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
		os.Exit(2)
	}
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	if code, msg := validateFlags(*serve, *workers, *serveHTTP, *admin, setFlags()); code != 0 {
		fmt.Fprintf(os.Stderr, "bfhrfd: %s\n", msg)
		flag.Usage()
		os.Exit(code)
	}

	stop, err := profs.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
		os.Exit(1)
	}

	svcCfg := serveConfig{
		manifest:        *collections,
		root:            *collectionsRoot,
		collectionName:  *collectionName,
		maxInflight:     *maxInflight,
		queueDepth:      *queueDepth,
		tenantRate:      *tenantRate,
		tenantBurst:     *tenantBurst,
		requestMaxBytes: *requestMaxBytes,
		queryDeadline:   *queryDeadline,
		drainTimeout:    *drainTimeout,
		maxTaxa:         *maxTaxa,
		maxTreeBytes:    *maxTreeBytes,
	}

	var code int
	switch {
	case *serve != "":
		code = runWorker(*serve, *admin)
	case *serveHTTP && *workers == "":
		code = runServeStandalone(*admin, svcCfg)
	default:
		code = runCoordinator(coordConfig{
			workers:         *workers,
			refPath:         *refPath,
			queryPath:       *queryPath,
			adminAddr:       *admin,
			compress:        *compress,
			chunk:           *chunk,
			batch:           *batch,
			rpcTimeout:      *rpcTimeout,
			retries:         *retries,
			partialResults:  *partialResults,
			queryCache:      *queryCache,
			queryCacheSize:  *queryCacheSize,
			queryCacheBytes: *queryCacheBytes,
			healthInterval:  *healthInterval,
			outPath:         *outPath,
			checkpointPath:  *checkpointPath,
			checkpointEvery: *checkpointEvery,
			resume:          *resume,
			skipBadTrees:    *skipBadTrees,
			maxTaxa:         *maxTaxa,
			maxTreeBytes:    *maxTreeBytes,
			maxInputBytes:   *maxInputBytes,
			saveDir:         *saveBfh,
			loadDir:         *loadBfh,
			serveHTTP:       *serveHTTP,
			serveCfg:        svcCfg,
		})
	}
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: stopping profiles: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	if err := flushTraces(); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrfd: flushing traces: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// coordinatorOnly lists the flags that configure the coordinator and are
// meaningless on a worker (a worker receives its shard and its queries
// over RPC). Worker mode rejects them instead of silently ignoring them.
var coordinatorOnly = []string{
	"ref", "query", "compress", "chunk", "batch",
	"rpc-timeout", "retries", "partial-results", "health-interval",
	"query-cache", "query-cache-size", "query-cache-bytes",
	"o", "checkpoint", "checkpoint-interval", "resume",
	"skip-bad-trees", "max-taxa", "max-tree-bytes", "max-input-bytes",
	"save-bfh", "load-bfh",
}

// serveOnly lists the flags that configure the query service; setting one
// outside -serve-http mode is an error, not a silent no-op.
var serveOnly = []string{
	"collections", "collections-root", "collection-name",
	"max-inflight", "queue-depth", "tenant-rate", "tenant-burst",
	"request-max-bytes", "query-deadline", "drain-timeout",
}

// batchOnly lists the coordinator flags that only make sense for a
// one-shot batch run; in serve mode queries arrive over HTTP, so a batch
// query file or checkpoint is a configuration error.
var batchOnly = []string{"query", "o", "checkpoint", "checkpoint-interval", "resume"}

// workerShardOnly lists the coordinator flags that additionally need a
// worker cluster; standalone serve mode (no -workers) rejects them.
var workerShardOnly = []string{
	"ref", "compress", "chunk", "batch",
	"rpc-timeout", "retries", "partial-results", "health-interval",
	"query-cache", "query-cache-size", "query-cache-bytes",
	"skip-bad-trees", "max-input-bytes", "save-bfh", "load-bfh",
}

// setFlags reports which flags were explicitly set on the command line.
func setFlags() map[string]bool {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// validateFlags enforces the mode split. -serve selects worker mode,
// -workers coordinator mode (batch, or a service with -serve-http), and
// -serve-http alone a standalone service over local snapshots; flags
// belonging to another mode are errors rather than silently ignored.
func validateFlags(serve, workers string, serveHTTP bool, admin string, set map[string]bool) (int, string) {
	switch {
	case serve == "" && workers == "" && !serveHTTP:
		return 2, "need -serve (worker), -workers (coordinator) or -serve-http (query service)"
	case serve != "" && workers != "":
		return 2, "-serve (worker mode) and -workers (coordinator mode) are mutually exclusive"
	case serve != "" && serveHTTP:
		return 2, "-serve (worker mode) and -serve-http (query service) are mutually exclusive"
	}
	if serve != "" {
		for _, name := range append(append([]string{}, coordinatorOnly...), serveOnly...) {
			if set[name] {
				return 2, fmt.Sprintf("-%s is a coordinator flag; a worker receives its shard over RPC", name)
			}
		}
		return 0, ""
	}
	if !serveHTTP {
		for _, name := range serveOnly {
			if set[name] {
				return 2, fmt.Sprintf("-%s only applies with -serve-http", name)
			}
		}
		return 0, ""
	}
	// Serve mode: the query API rides the admin listener.
	if admin == "" {
		return 2, "-serve-http needs -admin (the query API is served on the admin listener)"
	}
	for _, name := range batchOnly {
		if set[name] {
			return 2, fmt.Sprintf("-%s is a batch flag; in -serve-http mode queries arrive over HTTP", name)
		}
	}
	if workers == "" {
		for _, name := range workerShardOnly {
			if set[name] {
				return 2, fmt.Sprintf("-%s needs -workers; standalone -serve-http serves local snapshot collections", name)
			}
		}
		if !set["collections"] && !set["collections-root"] {
			return 2, "standalone -serve-http needs -collections (manifest) or -collections-root"
		}
	}
	return 0, ""
}

func fail(err error) int {
	slog.Error(err.Error())
	fmt.Fprintf(os.Stderr, "bfhrfd: %v\n", err)
	return 1
}

// runWorker serves until SIGINT/SIGTERM so that profiles started in main
// are flushed on the way out (os.Exit inside a signal-less select would
// discard them). The RPC listener and the admin server are shut down
// before returning.
func runWorker(addr, adminAddr string) int {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fail(err)
	}
	w := &distrib.Worker{}
	go distrib.ServeWorker(l, w) //nolint:errcheck — terminates when l closes
	fmt.Fprintf(os.Stderr, "bfhrfd: worker serving on %s\n", l.Addr())
	slog.Info("worker serving", "addr", l.Addr().String())

	var adm *adminServer
	if adminAddr != "" {
		adm, err = startAdmin(adminAddr, workerHealthz(w), nil)
		if err != nil {
			l.Close()
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: admin serving on %s\n", adm.Addr())
		slog.Info("admin serving", "addr", adm.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "bfhrfd: %s, shutting down\n", s)
	slog.Info("shutting down", "signal", s.String())
	l.Close()
	code := 0
	if adm != nil {
		if err := adm.Shutdown(); err != nil {
			code = fail(fmt.Errorf("admin shutdown: %w", err))
		}
	}
	return code
}

// coordConfig bundles the coordinator-mode flag values.
type coordConfig struct {
	workers, refPath, queryPath, adminAddr string
	compress                               bool
	chunk, batch                           int
	rpcTimeout                             time.Duration
	retries                                int
	partialResults                         bool
	queryCache                             bool
	queryCacheSize                         int
	queryCacheBytes                        int64
	healthInterval                         time.Duration
	outPath                                string
	checkpointPath                         string
	checkpointEvery                        int
	resume                                 bool
	skipBadTrees                           bool
	maxTaxa, maxTreeBytes                  int
	maxInputBytes                          int64
	saveDir, loadDir                       string
	serveHTTP                              bool
	serveCfg                               serveConfig
}

// ingest translates the hardening flags to collection options; skipped
// trees are reported on stderr, mirroring cmd/bfhrf.
func (cfg coordConfig) ingest() collection.Options {
	opts := collection.Options{
		Lenient:       cfg.skipBadTrees,
		Limits:        newick.Limits{MaxTaxa: cfg.maxTaxa, MaxTreeBytes: cfg.maxTreeBytes},
		MaxInputBytes: cfg.maxInputBytes,
	}
	if cfg.skipBadTrees {
		opts.OnDiag = func(d collection.Diag) {
			kind := "malformed"
			if d.Limit {
				kind = "over limit"
			}
			fmt.Fprintf(os.Stderr, "bfhrfd: skipped %s: tree %d (line %d): %s: %s\n",
				d.Path, d.Tree, d.Line, kind, d.Reason)
		}
	}
	return opts
}

// resultKey canonically renders every flag that affects result values, for
// the checkpoint header. The topology (workers, chunk, batch) is absent on
// purpose: sharding never changes the answers, so a run may resume on a
// different cluster shape.
func (cfg coordConfig) resultKey() string {
	return fmt.Sprintf("distrib skipbad=%t maxtaxa=%d maxtreebytes=%d maxinput=%d",
		cfg.skipBadTrees, cfg.maxTaxa, cfg.maxTreeBytes, cfg.maxInputBytes)
}

func runCoordinator(cfg coordConfig) int {
	if cfg.loadDir != "" && cfg.refPath != "" {
		fmt.Fprintln(os.Stderr, "bfhrfd: -load-bfh and -ref are mutually exclusive (the snapshot is the reference collection)")
		return 2
	}
	if cfg.refPath == "" && cfg.loadDir == "" {
		fmt.Fprintln(os.Stderr, "bfhrfd: -ref is required in coordinator mode")
		flag.Usage()
		return 2
	}
	if cfg.loadDir != "" && cfg.queryPath == "" && !cfg.serveHTTP {
		fmt.Fprintln(os.Stderr, "bfhrfd: -load-bfh needs -query (no reference file to default to)")
		return 2
	}
	if cfg.resume && cfg.checkpointPath == "" {
		fmt.Fprintln(os.Stderr, "bfhrfd: -resume requires -checkpoint")
		return 2
	}
	if cfg.queryPath == "" {
		cfg.queryPath = cfg.refPath
	}
	var addrs []string
	for _, a := range strings.Split(cfg.workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	// Signal handling is phased. During startup (dial, load) there is
	// nothing worth draining, so SIGINT/SIGTERM cancels the context
	// outright, aborting in-flight RPCs and backoff sleeps instead of
	// leaving the run hanging on a dead cluster. Once the query phase
	// begins, the first signal drains — /healthz flips to "draining",
	// in-flight work finishes (batch: the current batches fold and the
	// checkpoint flushes; serve: admission stops and admitted queries
	// complete) — and only a second signal hard-cancels.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	soft := make(chan struct{})
	var draining atomic.Bool
	var queryPhase atomic.Bool
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		softClosed := false
		for s := range sig {
			if !queryPhase.Load() {
				fmt.Fprintf(os.Stderr, "bfhrfd: %s during startup, aborting\n", s)
				cancel()
				return
			}
			if !softClosed {
				softClosed = true
				draining.Store(true)
				fmt.Fprintf(os.Stderr, "bfhrfd: %s: draining — finishing in-flight work (signal again to abort)\n", s)
				slog.Info("draining", "signal", s.String())
				close(soft)
				continue
			}
			fmt.Fprintf(os.Stderr, "bfhrfd: %s again: aborting\n", s)
			cancel()
			return
		}
	}()

	retry := distrib.RetryPolicy{MaxAttempts: cfg.retries + 1}
	// Workers may still be starting when the coordinator launches; ride
	// that out with the same backoff the per-RPC path uses.
	var coord *distrib.Coordinator
	err := distrib.Do(ctx, retry,
		func(r int, err error) { slog.Warn("retrying worker dial", "retry", r+1, "error", err) },
		func() error {
			var err error
			coord, err = distrib.Dial(addrs)
			return err
		})
	if err != nil {
		return fail(err)
	}
	defer coord.Close()
	coord.ChunkSize = cfg.chunk
	coord.BatchSize = cfg.batch
	coord.RPCTimeout = cfg.rpcTimeout
	coord.Retry = retry
	coord.PartialResults = cfg.partialResults
	if cfg.queryCache {
		coord.Cache = core.NewQueryCache(cfg.queryCacheSize, cfg.queryCacheBytes)
	}

	// In serve mode the /v1 routes must exist before the listener opens, so
	// the catalog and service are built first and the worker-backed
	// collection is registered after Load completes (queries for it 404
	// until then; /healthz already reports readiness honestly).
	var svc *serve.Service
	var cat *serve.Catalog
	healthz := coordinatorHealthz(coord)
	var mount func(*http.ServeMux)
	if cfg.serveHTTP {
		cat = serve.NewCatalog(cfg.serveCfg.root, 0)
		defer cat.Close()
		svc = cfg.serveCfg.service(cat)
		healthz = svc.WrapHealthz(healthz)
		mount = svc.Register
	} else {
		healthz = drainingHealthz(&draining, healthz)
	}
	var adm *adminServer
	if cfg.adminAddr != "" {
		adm, err = startAdmin(cfg.adminAddr, healthz, mount)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: admin serving on %s\n", adm.Addr())
		slog.Info("admin serving", "addr", adm.Addr())
		defer adm.Shutdown() //nolint:errcheck — best-effort drain on exit
	}

	if cfg.loadDir != "" {
		if err := coord.LoadSnapshotContext(ctx, cfg.loadDir); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: restored snapshot %s across %d workers\n", cfg.loadDir, coord.NumWorkers())
	} else {
		refs, err := collection.OpenFileOpts(cfg.refPath, cfg.ingest())
		if err != nil {
			return fail(err)
		}
		defer refs.Close()
		_, span := obs.StartSpan(nil, "coord.scan_taxa")
		ts, err := collection.ScanTaxa(refs)
		span.End()
		if err != nil {
			return fail(err)
		}
		if err := coord.LoadContext(ctx, refs, ts, cfg.compress); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: loaded references across %d workers\n", coord.NumWorkers())
	}
	if cfg.saveDir != "" {
		epoch, err := coord.SaveSnapshotsContext(ctx, cfg.saveDir)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: saved snapshot epoch %d to %s\n", epoch, cfg.saveDir)
	}

	if cfg.healthInterval > 0 {
		stopHealth := coord.StartHealthLoop(cfg.healthInterval)
		defer stopHealth()
		slog.Info("health loop started", "interval", cfg.healthInterval.String())
	}

	if cfg.serveHTTP {
		if err := cat.Register(cfg.serveCfg.collectionName, &serve.Distributed{Coord: coord}); err != nil {
			return fail(err)
		}
		if cfg.serveCfg.manifest != "" {
			if err := cat.LoadManifest(cfg.serveCfg.manifest); err != nil {
				return fail(err)
			}
		}
		fmt.Fprintf(os.Stderr, "bfhrfd: serving queries for collection %q on %s\n",
			cfg.serveCfg.collectionName, adm.Addr())
		slog.Info("query service ready", "collection", cfg.serveCfg.collectionName)
		queryPhase.Store(true)
		return serveWait(ctx, svc, soft, cfg.serveCfg.drainTimeout)
	}

	queries, err := collection.OpenFileOpts(cfg.queryPath, cfg.ingest())
	if err != nil {
		return fail(err)
	}
	defer queries.Close()

	// Checkpoint wiring: each folded result streams into the record file,
	// and a resumed run skips the queries already on disk after verifying
	// the checkpoint was written against these references and flags.
	// Cancellation is the soft channel: the first signal stops the run at
	// a batch boundary with in-flight batches folded and the checkpoint
	// flushed; a second signal cancels ctx, aborting in-flight RPCs.
	queryPhase.Store(true)
	ropts := distrib.QueryRunOptions{Cancel: soft}
	done := map[int]float64{}
	var w *checkpoint.Writer
	var ckMu sync.Mutex
	var ckErr error
	if cfg.checkpointPath != "" {
		hdr := checkpoint.Header{Fingerprint: coord.Fingerprint(), Config: cfg.resultKey()}
		if cfg.resume {
			var loaded *checkpoint.LoadResult
			w, loaded, err = checkpoint.Resume(cfg.checkpointPath, hdr)
			if err != nil {
				return fail(err)
			}
			done = loaded.Done
			fmt.Fprintf(os.Stderr, "bfhrfd: resuming from %s: %d queries already done\n",
				cfg.checkpointPath, len(done))
		} else {
			w, err = checkpoint.Create(cfg.checkpointPath, hdr)
			if err != nil {
				return fail(err)
			}
		}
		defer w.Close()
		if cfg.checkpointEvery > 0 {
			w.Interval = cfg.checkpointEvery
		}
		ropts.Skip = func(idx int) bool { _, ok := done[idx]; return ok }
		ropts.OnResult = func(r core.Result) {
			if err := w.Record(r.Index, r.AvgRF); err != nil {
				ckMu.Lock()
				if ckErr == nil {
					ckErr = err
				}
				ckMu.Unlock()
			}
		}
	}

	out, err := coord.AverageRFOpts(ctx, queries, ropts)
	// SIGINT/SIGTERM surface either as ErrCanceled (caught at a batch
	// boundary) or as a context error from an aborted in-flight RPC; both
	// leave a valid, flushed checkpoint behind.
	canceled := errors.Is(err, distrib.ErrCanceled) || errors.Is(err, context.Canceled)
	if err != nil && !canceled {
		return fail(err)
	}
	if w != nil {
		if flushErr := w.Flush(); flushErr != nil && ckErr == nil {
			ckErr = flushErr
		}
		if ckErr != nil {
			return fail(fmt.Errorf("checkpointing failed: %w", ckErr))
		}
	}
	results, err := mergeResults(out.Results, done, canceled)
	if err != nil {
		return fail(err)
	}
	if canceled {
		if cfg.checkpointPath != "" {
			fmt.Fprintf(os.Stderr, "bfhrfd: interrupted after %d queries; checkpoint %s is valid — rerun with -resume to continue\n",
				len(results), cfg.checkpointPath)
		} else {
			fmt.Fprintf(os.Stderr, "bfhrfd: interrupted after %d queries (no -checkpoint; progress not saved)\n", len(results))
		}
		return 130
	}
	var sb strings.Builder
	for _, r := range results {
		fmt.Fprintf(&sb, "%d\t%g\n", r.Index, r.AvgRF)
	}
	if cfg.outPath != "" {
		if err := atomicio.WriteFile(cfg.outPath, []byte(sb.String())); err != nil {
			return fail(err)
		}
	} else {
		fmt.Print(sb.String())
	}
	// Fault-tolerance annotations stay off stdout: the result stream must
	// remain byte-identical to cmd/bfhrf.
	if len(out.DeadWorkers) > 0 {
		fmt.Fprintf(os.Stderr, "bfhrfd: lost workers during run: %s\n", strings.Join(out.DeadWorkers, ", "))
	}
	if out.Failovers > 0 {
		fmt.Fprintf(os.Stderr, "bfhrfd: %d shard(s) failed over; results are complete\n", out.Failovers)
	}
	if out.Partial {
		fmt.Fprintf(os.Stderr, "bfhrfd: PARTIAL RESULTS: minimum shard coverage %.1f%% of reference trees\n",
			out.Coverage*100)
	}
	slog.Info("run complete", "queries", len(results), "workers", coord.NumWorkers(),
		"alive", coord.AliveWorkers(), "failovers", out.Failovers,
		"partial", out.Partial, "coverage", out.Coverage)
	return 0
}

// mergeResults folds checkpoint-restored averages into freshly computed
// ones and verifies the combined set is a contiguous 0..n-1 range (unless
// the run was canceled, where gaps are expected). A checkpoint record
// beyond the query count — stale state from a different query file —
// fails loudly rather than folding in silently.
func mergeResults(computed []core.Result, done map[int]float64, canceled bool) ([]core.Result, error) {
	out := make([]core.Result, 0, len(computed)+len(done))
	seen := make(map[int]bool, len(computed)+len(done))
	for _, r := range computed {
		out = append(out, r)
		seen[r.Index] = true
	}
	for idx, avg := range done {
		if seen[idx] {
			continue
		}
		out = append(out, core.Result{Index: idx, AvgRF: avg})
		seen[idx] = true
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	if !canceled {
		for i, r := range out {
			if r.Index != i {
				return nil, fmt.Errorf("result set is not contiguous at query %d (found index %d) — stale checkpoint for a different query file?", i, r.Index)
			}
		}
	}
	return out, nil
}
