package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/newick"
	"repro/internal/serve"
)

// Serve mode (-serve-http) turns bfhrfd from a one-shot batch job into a
// long-lived, multi-tenant query service: snapshot collections are
// loaded once into a catalog and answered over POST /v1/query on the
// admin listener, behind the internal/serve admission layer. Two
// shapes exist: standalone (no -workers; every collection is a local
// bfhsnap store from -collections / -collections-root) and
// coordinator-backed (-workers; the sharded cluster loaded via -ref or
// -load-bfh is registered under -collection-name, optionally alongside
// local manifest collections). See "Serving queries over HTTP" in
// README.md.

// serveConfig bundles the serve-mode flag values.
type serveConfig struct {
	manifest, root, collectionName string
	maxInflight, queueDepth        int
	tenantRate, tenantBurst        float64
	requestMaxBytes                int64
	queryDeadline, drainTimeout    time.Duration
	maxTaxa, maxTreeBytes          int
}

// service builds the query service over cat.
func (cfg serveConfig) service(cat *serve.Catalog) *serve.Service {
	return serve.New(serve.Config{
		Admission: serve.AdmissionConfig{
			MaxInflight: cfg.maxInflight,
			QueueDepth:  cfg.queueDepth,
			TenantRate:  cfg.tenantRate,
			TenantBurst: cfg.tenantBurst,
		},
		MaxBodyBytes:    cfg.requestMaxBytes,
		DefaultDeadline: cfg.queryDeadline,
		Limits:          newick.Limits{MaxTaxa: cfg.maxTaxa, MaxTreeBytes: cfg.maxTreeBytes},
	}, cat)
}

// runServeStandalone serves local snapshot collections with no worker
// cluster: open the manifest's stores, mount the query API on the admin
// listener, and run until a signal drains the service.
func runServeStandalone(adminAddr string, cfg serveConfig) int {
	cat := serve.NewCatalog(cfg.root, 0)
	defer cat.Close()
	if cfg.manifest != "" {
		if err := cat.LoadManifest(cfg.manifest); err != nil {
			return fail(err)
		}
	}
	svc := cfg.service(cat)
	adm, err := startAdmin(adminAddr, svc.WrapHealthz(standaloneHealthz(cat)), svc.Register)
	if err != nil {
		return fail(err)
	}
	defer adm.Shutdown() //nolint:errcheck — best-effort drain on exit
	fmt.Fprintf(os.Stderr, "bfhrfd: admin serving on %s\n", adm.Addr())
	fmt.Fprintf(os.Stderr, "bfhrfd: serving %d collection(s) over HTTP\n", len(cat.List()))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	soft := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "bfhrfd: %s: draining — finishing in-flight queries (signal again to abort)\n", s)
		close(soft)
		<-sig
		cancel()
	}()
	return serveWait(ctx, svc, soft, cfg.drainTimeout)
}

// serveWait blocks until the first signal (soft closes), drains the
// service, and returns the exit code: 0 for a clean drain, 1 when the
// drain timed out, 130 when a second signal aborted the wait.
func serveWait(ctx context.Context, svc *serve.Service, soft <-chan struct{}, timeout time.Duration) int {
	select {
	case <-soft:
	case <-ctx.Done():
		// Hard-canceled before any drain request (e.g. during startup).
		return 130
	}
	drained := make(chan bool, 1)
	go func() { drained <- svc.Drain(timeout) }()
	select {
	case ok := <-drained:
		if !ok {
			fmt.Fprintf(os.Stderr, "bfhrfd: drain timed out after %s with queries still in flight\n", timeout)
			return 1
		}
		fmt.Fprintln(os.Stderr, "bfhrfd: drained, exiting")
		return 0
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "bfhrfd: aborting with queries in flight")
		return 130
	}
}

// standaloneHealthz reports readiness of a standalone query service:
// the catalog size (an empty catalog still answers ok — collections can
// be registered over /v1/collections afterwards).
func standaloneHealthz(cat *serve.Catalog) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","collections":%d}`+"\n", len(cat.List()))
	}
}

// drainingHealthz reports "draining" (503) once d is set, so load
// balancers stop routing to a batch coordinator that is finishing up;
// otherwise it defers to the mode-specific handler. (Serve mode uses
// serve.Service.WrapHealthz instead, which keys off the service's own
// drain state.)
func drainingHealthz(d *atomic.Bool, inner http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if d.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"status":"draining"}`+"\n")
			return
		}
		inner(w, r)
	}
}
