package main

// Kill-and-reload chaos for the epoch-versioned snapshot store: the real
// bfhrf binary is hard-killed (exit 137) inside each window of the
// publish and reap protocols — mid section write, before the epoch
// directory rename, between the rename and the CURRENT update, and mid
// reap — and after every crash a plain reload must serve byte-identical
// query results. This is the failure-model promise "a crash never leaves
// a partially visible epoch" driven end to end.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotCrashAndReload(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	rp := filepath.Join(dir, "refs.nwk")
	qp := filepath.Join(dir, "queries.nwk")
	ap := filepath.Join(dir, "add.nwk")
	writeCollection(t, rp, 11, 14, 20)
	writeCollection(t, qp, 12, 14, 6)
	writeCollection(t, ap, 13, 14, 2)
	snap := filepath.Join(dir, "snap")
	out := filepath.Join(dir, "out.txt")

	// Baseline: build, publish epoch 1, and query it.
	code, msg := runBin(t, bin, nil, "-ref", rp, "-query", qp, "-cpus", "1",
		"-hash-shards", "8", "-save-bfh", snap, "-o", out)
	if code != 0 {
		t.Fatalf("baseline save failed (%d): %s", code, msg)
	}
	want, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	// loadMatches reloads the store with no faults and checks the answers.
	loadMatches := func(stage string) {
		t.Helper()
		os.Remove(out)
		code, msg := runBin(t, bin, nil, "-load-bfh", snap, "-query", qp, "-cpus", "1", "-o", out)
		if code != 0 {
			t.Fatalf("%s: reload failed (%d): %s", stage, code, msg)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: reloaded answers differ from baseline:\ngot:\n%s\nwant:\n%s", stage, got, want)
		}
	}

	// Crash a re-publish inside each window of the protocol. Epoch 1 must
	// keep serving after every one.
	for _, c := range []struct{ name, fault string }{
		{"mid section write", "snap.write:crash@2"},
		{"before epoch rename", "snap.rename:crash@1"},
		{"before CURRENT update", "snap.rename:crash@2"},
	} {
		code, msg := runBin(t, bin, []string{"BFHRF_FAULTS=" + c.fault},
			"-ref", rp, "-cpus", "1", "-hash-shards", "8", "-save-bfh", snap, "-query", qp, "-o", out)
		if code != 137 {
			t.Fatalf("%s: crash run exited %d, want 137: %s", c.name, code, msg)
		}
		loadMatches("after crash " + c.name)
	}

	// A crashed delta publish must also leave the base epoch intact.
	code, msg = runBin(t, bin, []string{"BFHRF_FAULTS=snap.rename:crash@2"},
		"-load-bfh", snap, "-delta-add", ap, "-cpus", "1")
	if code != 137 {
		t.Fatalf("delta crash run exited %d, want 137: %s", code, msg)
	}
	loadMatches("after crashed delta")

	// Publish a second epoch so compaction has something to reap, then
	// kill it mid reap; the current epoch must be untouched.
	code, msg = runBin(t, bin, nil, "-ref", rp, "-cpus", "1", "-hash-shards", "8", "-save-bfh", snap)
	if code != 0 {
		t.Fatalf("second save failed (%d): %s", code, msg)
	}
	code, msg = runBin(t, bin, []string{"BFHRF_FAULTS=snap.reap:crash@1"}, "-compact-bfh", snap)
	if code != 137 {
		t.Fatalf("reap crash run exited %d, want 137: %s", code, msg)
	}
	loadMatches("after crashed reap")
	code, msg = runBin(t, bin, nil, "-compact-bfh", snap)
	if code != 0 {
		t.Fatalf("compaction after crash failed (%d): %s", code, msg)
	}
	loadMatches("after recovery compaction")
}

// TestDeltaMatchesScratchBuild is the equivalence wall at the CLI level:
// a delta-published epoch must answer queries byte-identically to a
// from-scratch build over the updated collection.
func TestDeltaMatchesScratchBuild(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	rp := filepath.Join(dir, "refs.nwk")
	qp := filepath.Join(dir, "queries.nwk")
	ap := filepath.Join(dir, "add.nwk")
	writeCollection(t, rp, 21, 16, 25)
	writeCollection(t, qp, 22, 16, 7)
	writeCollection(t, ap, 23, 16, 2)
	snap := filepath.Join(dir, "snap")

	code, msg := runBin(t, bin, nil, "-ref", rp, "-cpus", "1", "-hash-shards", "16", "-save-bfh", snap)
	if code != 0 {
		t.Fatalf("save failed (%d): %s", code, msg)
	}
	outDelta := filepath.Join(dir, "delta.out")
	code, msg = runBin(t, bin, nil, "-load-bfh", snap, "-delta-add", ap,
		"-query", qp, "-cpus", "1", "-o", outDelta)
	if code != 0 {
		t.Fatalf("delta run failed (%d): %s", code, msg)
	}

	// From-scratch reference over refs+add.
	refs, err := os.ReadFile(rp)
	if err != nil {
		t.Fatal(err)
	}
	add, err := os.ReadFile(ap)
	if err != nil {
		t.Fatal(err)
	}
	combined := filepath.Join(dir, "combined.nwk")
	if err := os.WriteFile(combined, append(refs, add...), 0o644); err != nil {
		t.Fatal(err)
	}
	outScratch := filepath.Join(dir, "scratch.out")
	code, msg = runBin(t, bin, nil, "-ref", combined, "-query", qp, "-cpus", "1", "-o", outScratch)
	if code != 0 {
		t.Fatalf("scratch run failed (%d): %s", code, msg)
	}

	got, err := os.ReadFile(outDelta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(outScratch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("delta epoch answers differ from scratch build:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
