// Command bfhrf computes the average Robinson-Foulds distance of each
// query tree against a reference tree collection using the bipartition
// frequency hash — the tool the paper ships ("an easy to use installation
// and interface for calculating the average RF of query trees against a
// collection of reference trees").
//
// Usage:
//
//	bfhrf -ref references.nwk [-query queries.nwk] [flags]
//
// When -query is omitted the reference collection is compared against
// itself (Q is R), the setting of every experiment in the paper.
//
// Output: one line per query tree, "index<TAB>avgRF", plus a summary of
// the best (lowest average) query on stderr.
//
// The profiling flags (-cpuprofile, -memprofile, -trace) capture the run
// for `go tool pprof` / `go tool trace`, so hot paths can be inspected on
// real workloads.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/obs"
	"repro/internal/profhook"
)

func main() {
	var (
		refPath   = flag.String("ref", "", "reference tree collection (Newick, required)")
		queryPath = flag.String("query", "", "query tree collection (Newick); defaults to -ref (Q is R)")
		cpus      = flag.Int("cpus", 0, "worker count (0 = all CPUs; clamped to the collection size)")
		variant   = flag.String("variant", "plain", "RF variant: plain | normalized | weighted | info")
		minSize   = flag.Int("min-split", 0, "drop bipartitions whose smaller side has fewer taxa")
		maxSize   = flag.Int("max-split", 0, "drop bipartitions whose smaller side has more taxa (0 = no bound)")
		intersect = flag.Bool("intersect-taxa", false, "variable-taxa mode: restrict all trees to their common taxa")
		compress  = flag.Bool("compress", false, "store losslessly compressed bipartition keys (lower memory; selects the map hash backend)")
		best      = flag.Bool("best", false, "print only the query with the lowest average RF")
		annotate  = flag.String("annotate", "", "instead of distances, print this Newick tree annotated with reference support percentages")
		version   = flag.Bool("version", false, "print version and VCS revision, then exit")
	)
	profs := profhook.RegisterFlags(nil)
	logc := obs.RegisterLogFlags(nil)
	flag.Parse()

	if *version {
		fmt.Println(obs.VersionLine("bfhrf"))
		return
	}
	if _, err := logc.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		os.Exit(2)
	}

	stop, err := profs.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		os.Exit(1)
	}
	code := run(*refPath, *queryPath, *cpus, *variant, *minSize, *maxSize, *intersect, *compress, *best, *annotate)
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: stopping profiles: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(refPath, queryPath string, cpus int, variant string, minSize, maxSize int,
	intersect, compress, best bool, annotate string) int {
	if refPath == "" {
		fmt.Fprintln(os.Stderr, "bfhrf: -ref is required")
		flag.Usage()
		return 2
	}
	q := queryPath
	if q == "" {
		q = refPath
	}
	cfg := repro.Config{
		Workers:       cpus,
		Variant:       variant,
		MinSplitSize:  minSize,
		MaxSplitSize:  maxSize,
		IntersectTaxa: intersect,
		CompressKeys:  compress,
	}
	if annotate != "" {
		return annotateMode(annotate, refPath, cfg)
	}
	results, err := repro.AverageRFFiles(q, refPath, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bfhrf: no query trees")
		return 1
	}
	if best {
		b, err := repro.BestResult(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
			return 1
		}
		fmt.Printf("%d\t%g\n", b.Index, b.AvgRF)
		return 0
	}
	for _, r := range results {
		fmt.Printf("%d\t%g\n", r.Index, r.AvgRF)
	}
	b, _ := repro.BestResult(results)
	fmt.Fprintf(os.Stderr, "bfhrf: %d queries; best is tree %d with average RF %g\n",
		len(results), b.Index, b.AvgRF)
	return 0
}

// annotateMode prints the target tree with BFH support percentages.
func annotateMode(targetPath, refPath string, cfg repro.Config) int {
	data, err := os.ReadFile(targetPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	h, err := repro.BuildHashFile(refPath, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	out, err := h.AnnotateSupport(string(data), 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	fmt.Println(out)
	return 0
}
