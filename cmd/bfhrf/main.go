// Command bfhrf computes the average Robinson-Foulds distance of each
// query tree against a reference tree collection using the bipartition
// frequency hash — the tool the paper ships ("an easy to use installation
// and interface for calculating the average RF of query trees against a
// collection of reference trees").
//
// Usage:
//
//	bfhrf -ref references.nwk [-query queries.nwk] [flags]
//
// When -query is omitted the reference collection is compared against
// itself (Q is R), the setting of every experiment in the paper.
//
// Output: one line per query tree, "index<TAB>avgRF", plus a summary of
// the best (lowest average) query on stderr. With -o the lines go to a
// file, written atomically (temp file + fsync + rename) so a crash never
// leaves a half-written result.
//
// Long runs survive interruption: -checkpoint streams each result to a
// checksummed record file as it is computed, SIGINT/SIGTERM flush it
// before exit, and -resume skips the already-recorded query trees after
// verifying the checkpoint matches the current reference collection.
//
// Hostile or damaged inputs are handled explicitly: -skip-bad-trees
// records a diagnostic per malformed tree and continues, while -max-taxa,
// -max-tree-bytes and -max-input-bytes turn pathological inputs into
// clean errors.
//
// The profiling flags (-cpuprofile, -memprofile, -trace) capture the run
// for `go tool pprof` / `go tool trace`, so hot paths can be inspected on
// real workloads. The tracing flags (-trace-out, -trace-sample,
// -slow-query) record per-request distributed traces — every kept trace
// is exported as JSONL on exit, and roots exceeding -slow-query emit a
// structured slow-query log line with their stage breakdown; validate or
// summarize the export with cmd/tracevet.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro"
	"repro/internal/atomicio"
	"repro/internal/obs"
	"repro/internal/profhook"
)

type cliOptions struct {
	refPath, queryPath string
	cfg                repro.Config
	best               bool
	annotate           string
	outPath            string
	checkpointPath     string
	checkpointEvery    int
	resume             bool
	badTreeLog         string
	saveDir            string
	loadDir            string
	deltaAdd           string
	deltaRetire        string
	compactDir         string
}

func main() {
	var o cliOptions
	flag.StringVar(&o.refPath, "ref", "", "reference tree collection (Newick, required)")
	flag.StringVar(&o.queryPath, "query", "", "query tree collection (Newick); defaults to -ref (Q is R)")
	flag.IntVar(&o.cfg.Workers, "cpus", 0, "worker count (0 = all CPUs; clamped to the collection size)")
	flag.StringVar(&o.cfg.Variant, "variant", "plain", "RF variant: plain | normalized | weighted | info")
	flag.IntVar(&o.cfg.MinSplitSize, "min-split", 0, "drop bipartitions whose smaller side has fewer taxa")
	flag.IntVar(&o.cfg.MaxSplitSize, "max-split", 0, "drop bipartitions whose smaller side has more taxa (0 = no bound)")
	flag.BoolVar(&o.cfg.IntersectTaxa, "intersect-taxa", false, "variable-taxa mode: restrict all trees to their common taxa")
	flag.BoolVar(&o.cfg.CompressKeys, "compress", false, "store losslessly compressed bipartition keys (lower memory; selects the map hash backend)")
	flag.StringVar(&o.cfg.Backend, "backend", "auto", "hash backend: auto | openaddr | map | succinct")
	flag.IntVar(&o.cfg.HashShards, "hash-shards", 0, "hash shard count, a power of two (0 = default; more shards = finer snapshot deltas)")
	flag.StringVar(&o.saveDir, "save-bfh", "", "after building the hash from -ref, publish it as the next epoch of this snapshot directory")
	flag.StringVar(&o.loadDir, "load-bfh", "", "load the hash from this snapshot directory instead of building from -ref")
	flag.StringVar(&o.deltaAdd, "delta-add", "", "with -load-bfh: append this Newick file's trees and publish a delta epoch")
	flag.StringVar(&o.deltaRetire, "delta-retire", "", "with -load-bfh: remove this Newick file's trees and publish a delta epoch")
	flag.StringVar(&o.compactDir, "compact-bfh", "", "delete all epochs but the current one in this snapshot directory, then exit")
	queryCache := flag.Bool("query-cache", true, "answer exact topological repeats from the topology-fingerprint result cache (plain/normalized variants)")
	flag.IntVar(&o.cfg.QueryCacheEntries, "query-cache-size", 0, "query-cache capacity in entries (0 = default 65536)")
	flag.Int64Var(&o.cfg.QueryCacheBytes, "query-cache-bytes", 0, "query-cache memory cap in bytes (0 = default 8 MiB)")
	flag.BoolVar(&o.best, "best", false, "print only the query with the lowest average RF")
	flag.StringVar(&o.annotate, "annotate", "", "instead of distances, print this Newick tree annotated with reference support percentages")
	flag.StringVar(&o.outPath, "o", "", "write results to this file (atomic: temp+fsync+rename) instead of stdout")
	flag.StringVar(&o.checkpointPath, "checkpoint", "", "stream per-query results to this checksummed record file for crash-safe resume")
	flag.IntVar(&o.checkpointEvery, "checkpoint-interval", 0, "results between checkpoint fsyncs (0 = default)")
	flag.BoolVar(&o.resume, "resume", false, "resume from -checkpoint, skipping already-completed query trees (fingerprint-verified)")
	flag.BoolVar(&o.cfg.SkipBadTrees, "skip-bad-trees", false, "skip malformed or over-limit input trees, recording a diagnostic for each, instead of failing")
	flag.StringVar(&o.badTreeLog, "bad-tree-log", "", "with -skip-bad-trees, append per-tree diagnostics to this file (default stderr)")
	flag.IntVar(&o.cfg.MaxTaxa, "max-taxa", 0, "reject input trees with more than this many leaves (0 = unlimited)")
	flag.IntVar(&o.cfg.MaxTreeBytes, "max-tree-bytes", 0, "reject input trees serialized larger than this (0 = unlimited)")
	flag.Int64Var(&o.cfg.MaxInputBytes, "max-input-bytes", 0, "hard cap on decompressed bytes read per input file (0 = unlimited)")
	version := flag.Bool("version", false, "print version and VCS revision, then exit")
	profs := profhook.RegisterFlags(nil)
	logc := obs.RegisterLogFlags(nil)
	tracec := obs.RegisterTraceFlags(nil)
	flag.Parse()
	o.cfg.NoQueryCache = !*queryCache

	if *version {
		fmt.Println(obs.VersionLine("bfhrf"))
		return
	}
	if _, err := logc.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		os.Exit(2)
	}
	flushTraces, err := tracec.Setup(false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		os.Exit(2)
	}

	stop, err := profs.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		os.Exit(1)
	}
	code := run(&o)
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: stopping profiles: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	if err := flushTraces(); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: flushing traces: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(o *cliOptions) int {
	if o.compactDir != "" {
		remaining, err := repro.CompactSnapshots(o.compactDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bfhrf: compacted %s: %d epoch(s) remain\n", o.compactDir, remaining)
		return 0
	}
	if o.loadDir != "" && o.refPath != "" {
		fmt.Fprintln(os.Stderr, "bfhrf: -load-bfh and -ref are mutually exclusive (the snapshot is the reference collection)")
		return 2
	}
	if (o.deltaAdd != "" || o.deltaRetire != "") && o.loadDir == "" {
		fmt.Fprintln(os.Stderr, "bfhrf: -delta-add/-delta-retire require -load-bfh")
		return 2
	}
	if o.refPath == "" && o.loadDir == "" {
		fmt.Fprintln(os.Stderr, "bfhrf: -ref is required")
		flag.Usage()
		return 2
	}
	if o.resume && o.checkpointPath == "" {
		fmt.Fprintln(os.Stderr, "bfhrf: -resume requires -checkpoint")
		return 2
	}
	q := o.queryPath
	if q == "" {
		q = o.refPath
	}

	// Per-tree diagnostics sink for lenient ingest.
	var diagSink *os.File
	if o.cfg.SkipBadTrees {
		diagSink = os.Stderr
		if o.badTreeLog != "" {
			f, err := os.OpenFile(o.badTreeLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
				return 1
			}
			defer f.Close()
			diagSink = f
		}
		o.cfg.OnBadTree = func(b repro.BadTree) {
			kind := "malformed"
			if b.Limit {
				kind = "over limit"
			}
			fmt.Fprintf(diagSink, "bfhrf: skipped %s: tree %d (line %d): %s: %s\n",
				b.Path, b.Tree, b.Line, kind, b.Reason)
		}
	}

	if o.annotate != "" {
		return annotateMode(o.annotate, o.refPath, o.cfg)
	}

	// SIGINT/SIGTERM cancel the run gracefully: in-flight queries drain
	// and the checkpoint is flushed before exit.
	cancel := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		if _, ok := <-sigs; ok {
			fmt.Fprintln(os.Stderr, "bfhrf: interrupted; flushing checkpoint…")
			close(cancel)
		}
	}()

	if o.loadDir != "" || o.saveDir != "" {
		return snapshotMode(o, cancel)
	}

	results, err := repro.AverageRFFilesResumable(q, o.refPath, o.cfg, runOptions(o, cancel))
	return finish(o, results, err)
}

// runOptions builds the checkpoint/cancel wiring shared by the build-
// and-query path and the snapshot modes.
func runOptions(o *cliOptions, cancel <-chan struct{}) repro.RunOptions {
	return repro.RunOptions{
		CheckpointPath:     o.checkpointPath,
		CheckpointInterval: o.checkpointEvery,
		Resume:             o.resume,
		Cancel:             cancel,
		OnResume: func(done int) {
			fmt.Fprintf(os.Stderr, "bfhrf: resuming from %s: %d queries already done\n", o.checkpointPath, done)
		},
	}
}

// snapshotMode services -save-bfh and -load-bfh: the hash comes from a
// fresh build (save) or from the snapshot store (load, optionally with a
// delta publish), and any requested queries then run against it without
// a rebuild.
func snapshotMode(o *cliOptions, cancel <-chan struct{}) int {
	var h *repro.Hash
	var err error
	switch {
	case o.loadDir != "" && (o.deltaAdd != "" || o.deltaRetire != ""):
		var d repro.SnapshotDelta
		h, d, err = repro.DeltaHashSnapshot(o.loadDir, o.deltaAdd, o.deltaRetire, o.cfg)
		if err == nil {
			fmt.Fprintf(os.Stderr, "bfhrf: delta epoch %d over %d: %d part(s) rewritten, %d hard-linked\n",
				d.Epoch, d.Base, d.PartsWritten, d.PartsLinked)
		}
	case o.loadDir != "":
		h, err = repro.LoadHashSnapshot(o.loadDir, o.cfg)
	default:
		h, err = repro.BuildHashFile(o.refPath, o.cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	if o.saveDir != "" {
		epoch, err := h.SaveSnapshot(o.saveDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
			return 1
		}
		st := h.Stats()
		fmt.Fprintf(os.Stderr, "bfhrf: saved epoch %d to %s (%d trees, %d unique bipartitions)\n",
			epoch, o.saveDir, st.NumTrees, st.UniqueBipartitions)
	}
	q := o.queryPath
	if q == "" && o.refPath != "" {
		q = o.refPath // -save-bfh keeps the Q-is-R default
	}
	if q == "" {
		// A pure delta or compaction run has nothing to query; a plain
		// -load-bfh with no work at all is a usage error.
		if o.deltaAdd == "" && o.deltaRetire == "" {
			fmt.Fprintln(os.Stderr, "bfhrf: -load-bfh needs -query (or -delta-add/-delta-retire)")
			return 2
		}
		return 0
	}
	results, err := h.AverageRFFileResumable(q, runOptions(o, cancel))
	return finish(o, results, err)
}

// finish reports a completed (or interrupted) query run.
func finish(o *cliOptions, results []repro.Result, err error) int {
	if errors.Is(err, repro.ErrCanceled) {
		if o.checkpointPath != "" {
			fmt.Fprintf(os.Stderr, "bfhrf: interrupted after %d queries; checkpoint %s is valid — rerun with -resume to continue\n",
				len(results), o.checkpointPath)
		} else {
			fmt.Fprintf(os.Stderr, "bfhrf: interrupted after %d queries (no -checkpoint; progress not saved)\n", len(results))
		}
		return 130
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bfhrf: no query trees")
		return 1
	}
	if o.best {
		b, err := repro.BestResult(results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
			return 1
		}
		return emit(o.outPath, fmt.Sprintf("%d\t%g\n", b.Index, b.AvgRF))
	}
	var sb strings.Builder
	for _, r := range results {
		fmt.Fprintf(&sb, "%d\t%g\n", r.Index, r.AvgRF)
	}
	if code := emit(o.outPath, sb.String()); code != 0 {
		return code
	}
	b, _ := repro.BestResult(results)
	fmt.Fprintf(os.Stderr, "bfhrf: %d queries; best is tree %d with average RF %g\n",
		len(results), b.Index, b.AvgRF)
	return 0
}

// emit writes the result block to stdout, or atomically to a file so an
// interrupted write can never be mistaken for a complete result set.
func emit(outPath, content string) int {
	if outPath == "" {
		fmt.Print(content)
		return 0
	}
	if err := atomicio.WriteFile(outPath, []byte(content)); err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	return 0
}

// annotateMode prints the target tree with BFH support percentages.
func annotateMode(targetPath, refPath string, cfg repro.Config) int {
	data, err := os.ReadFile(targetPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	h, err := repro.BuildHashFile(refPath, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	out, err := h.AnnotateSupport(string(data), 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfhrf: %v\n", err)
		return 1
	}
	fmt.Println(out)
	return 0
}
