package main

// End-to-end crash safety: these tests build the real bfhrf binary and
// hard-kill it mid-run with an injected crash (exit 137, simulating
// kill -9 / OOM), then verify that -resume completes the run to output
// byte-identical with an uninterrupted one, and that a corrupted
// checkpoint record is quarantined rather than silently folded in.

import (
	"bytes"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
)

var buildOnce sync.Once
var builtBin string
var buildErr error

// buildBinary compiles bfhrf once for all subprocess tests.
func buildBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "bfhrf-e2e")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "bfhrf")
		cmd := exec.Command("go", "build", "-o", builtBin, ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			builtBin = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building bfhrf: %v\n%s", buildErr, builtBin)
	}
	return builtBin
}

// writeCollection writes r deterministic random binary trees on n taxa.
func writeCollection(t *testing.T, path string, seed int64, n, r int) {
	t.Helper()
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	for i := 0; i < r; i++ {
		buf.WriteString(newick.String(simphy.RandomBinary(ts, rng), newick.WriteOptions{BranchLengths: true}))
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runBin executes the binary and returns its exit code and combined output.
func runBin(t *testing.T, bin string, env []string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("running %s: %v\n%s", bin, err, out)
	return -1, ""
}

func TestCrashAndResume(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	rp := filepath.Join(dir, "refs.nwk")
	qp := filepath.Join(dir, "queries.nwk")
	writeCollection(t, rp, 1, 12, 15)
	writeCollection(t, qp, 2, 12, 8)
	ck := filepath.Join(dir, "run.ckpt")
	outCrash := filepath.Join(dir, "crash.out")
	outClean := filepath.Join(dir, "clean.out")

	// Reference: an uninterrupted run.
	code, msg := runBin(t, bin, nil, "-ref", rp, "-query", qp, "-cpus", "1", "-o", outClean)
	if code != 0 {
		t.Fatalf("clean run failed (%d): %s", code, msg)
	}
	want, err := os.ReadFile(outClean)
	if err != nil {
		t.Fatal(err)
	}

	// Crash run: the injected fault exits the process with 137 on the 2nd
	// checkpoint append — after some results are durable, before the rest.
	code, msg = runBin(t, bin, []string{"BFHRF_FAULTS=checkpoint.write:crash@2"},
		"-ref", rp, "-query", qp, "-cpus", "1",
		"-checkpoint", ck, "-checkpoint-interval", "1", "-o", outCrash)
	if code != 137 {
		t.Fatalf("crash run exited %d, want 137: %s", code, msg)
	}
	if _, err := os.Stat(outCrash); !os.IsNotExist(err) {
		t.Fatalf("crashed run left an output file at %s — atomic write broken", outCrash)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("crashed run left no checkpoint: %v", err)
	}

	// Resume run: completes the remaining queries from the checkpoint.
	code, msg = runBin(t, bin, nil, "-ref", rp, "-query", qp, "-cpus", "1",
		"-checkpoint", ck, "-resume", "-o", outCrash)
	if code != 0 {
		t.Fatalf("resume run failed (%d): %s", code, msg)
	}
	got, err := os.ReadFile(outCrash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCorruptCheckpointQuarantine(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	rp := filepath.Join(dir, "refs.nwk")
	qp := filepath.Join(dir, "queries.nwk")
	writeCollection(t, rp, 3, 10, 12)
	writeCollection(t, qp, 4, 10, 6)
	ck := filepath.Join(dir, "run.ckpt")
	out1 := filepath.Join(dir, "first.out")
	out2 := filepath.Join(dir, "second.out")

	code, msg := runBin(t, bin, nil, "-ref", rp, "-query", qp, "-cpus", "1",
		"-checkpoint", ck, "-checkpoint-interval", "1", "-o", out1)
	if code != 0 {
		t.Fatalf("first run failed (%d): %s", code, msg)
	}

	// Flip one byte inside a middle record: its CRC no longer matches, so
	// it and everything after it must be quarantined, never folded in.
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("checkpoint too short to corrupt: %d lines", len(lines))
	}
	mid := lines[len(lines)/2]
	if len(mid) < 5 {
		t.Fatalf("middle record too short: %q", mid)
	}
	mid[4] ^= 0xFF
	if err := os.WriteFile(ck, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	code, msg = runBin(t, bin, nil, "-ref", rp, "-query", qp, "-cpus", "1",
		"-checkpoint", ck, "-resume", "-o", out2)
	if code != 0 {
		t.Fatalf("resume over corrupt checkpoint failed (%d): %s", code, msg)
	}
	want, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output after corrupt-checkpoint resume differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, err := os.Stat(ck + ".quarantine"); err != nil {
		t.Fatalf("corrupt checkpoint suffix was not quarantined: %v", err)
	}
}

func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	rp := filepath.Join(dir, "refs.nwk")
	rp2 := filepath.Join(dir, "refs2.nwk")
	qp := filepath.Join(dir, "queries.nwk")
	writeCollection(t, rp, 5, 10, 12)
	writeCollection(t, rp2, 6, 10, 12) // different collection → different fingerprint
	writeCollection(t, qp, 7, 10, 6)
	ck := filepath.Join(dir, "run.ckpt")

	code, msg := runBin(t, bin, nil, "-ref", rp, "-query", qp, "-cpus", "1",
		"-checkpoint", ck, "-checkpoint-interval", "1")
	if code != 0 {
		t.Fatalf("first run failed (%d): %s", code, msg)
	}
	code, msg = runBin(t, bin, nil, "-ref", rp2, "-query", qp, "-cpus", "1",
		"-checkpoint", ck, "-resume")
	if code == 0 {
		t.Fatalf("resume against a different reference collection succeeded; output:\n%s", msg)
	}
}
