package repro

import (
	"fmt"
	"io"

	"repro/internal/bfhsnap"
	"repro/internal/collection"
	"repro/internal/tree"
)

// Persistent snapshots: the built BFH saved to an epoch-versioned
// directory (see FORMATS.md) so later runs load it in one pass over the
// stored tables instead of re-parsing and re-extracting the reference
// collection. Small reference updates publish delta epochs that rewrite
// only the touched shards and hard-link the rest.

// SnapshotDelta reports what a delta build published.
type SnapshotDelta struct {
	// Epoch is the newly published epoch; Base is the epoch it extends.
	Epoch, Base int
	// PartsWritten part files were re-serialized; PartsLinked were reused
	// from the base epoch via hard link (copy-on-write).
	PartsWritten, PartsLinked int
}

// SaveSnapshot publishes the hash as the next epoch of the snapshot
// store at dir (created if needed) and returns the epoch number. The
// publish is crash-safe: a crash mid-save can never leave a partially
// visible epoch.
func (h *Hash) SaveSnapshot(dir string) (int, error) {
	store, err := bfhsnap.Open(dir)
	if err != nil {
		return 0, err
	}
	return store.SaveEpoch(h.h)
}

// LoadHashSnapshot loads the current epoch of the snapshot store at dir.
// cfg supplies the query-time settings (variant, workers, filters); its
// build-affecting fields must match the configuration the snapshot was
// built with, or query results will not correspond to a fresh build.
func LoadHashSnapshot(dir string, cfg Config) (*Hash, error) {
	store, err := bfhsnap.Open(dir)
	if err != nil {
		return nil, err
	}
	e, err := store.Pin()
	if err != nil {
		return nil, err
	}
	// The loaded hash is a private in-memory copy; the pin only protects
	// the on-disk directory, which we are done with.
	defer e.Release()
	return &Hash{h: e.Hash, cfg: cfg}, nil
}

// DeltaHashSnapshot applies reference updates to the snapshot store at
// dir: trees in addPath are appended, trees in retirePath are removed,
// and the result is published as a new epoch that hard-links every part
// file the update did not touch. Either path may be empty. Returns the
// updated hash (already loaded) and the delta report.
func DeltaHashSnapshot(dir, addPath, retirePath string, cfg Config) (*Hash, SnapshotDelta, error) {
	var d SnapshotDelta
	store, err := bfhsnap.Open(dir)
	if err != nil {
		return nil, d, err
	}
	cur := store.Current()
	if cur == 0 {
		return nil, d, fmt.Errorf("repro: %s holds no published epoch", dir)
	}
	man, err := store.Manifest(cur)
	if err != nil {
		return nil, d, err
	}
	add, err := readTreeFile(addPath, cfg)
	if err != nil {
		return nil, d, err
	}
	retire, err := readTreeFile(retirePath, cfg)
	if err != nil {
		return nil, d, err
	}
	if len(add) == 0 && len(retire) == 0 {
		return nil, d, fmt.Errorf("repro: delta with nothing to add or retire")
	}
	res, err := store.Delta(add, retire, cfg.filter(man.Taxa), true)
	if err != nil {
		return nil, d, err
	}
	d = SnapshotDelta{Epoch: res.Epoch, Base: res.Base,
		PartsWritten: res.PartsWritten, PartsLinked: res.PartsLinked}
	e, err := store.Pin()
	if err != nil {
		return nil, d, err
	}
	defer e.Release()
	return &Hash{h: e.Hash, cfg: cfg}, d, nil
}

// CompactSnapshots reclaims disk from the store at dir: every epoch
// other than the current one is deleted. Returns the number of epoch
// directories remaining.
func CompactSnapshots(dir string) (int, error) {
	store, err := bfhsnap.Open(dir)
	if err != nil {
		return 0, err
	}
	return store.Compact(), nil
}

func readTreeFile(path string, cfg Config) ([]*tree.Tree, error) {
	if path == "" {
		return nil, nil
	}
	src, err := collection.OpenFileOpts(path, cfg.ingest())
	if err != nil {
		return nil, err
	}
	defer src.Close()
	var trees []*tree.Tree
	for {
		t, err := src.Next()
		if err == io.EOF {
			return trees, nil
		}
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
}
