package repro

import (
	"testing"
)

func sixTaxonRefs() []string {
	return []string{
		"((A,B),((C,D),(E,F)));",
		"((A,B),((C,D),(E,F)));",
		"(((A,B),(C,D)),(E,F));",
		"((A,C),((B,D),(E,F)));",
	}
}

func TestBuildHashAndQuery(t *testing.T) {
	h, err := BuildHashNewick(sixTaxonRefs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.NumTrees != 4 || st.NumTaxa != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueBipartitions == 0 || st.TotalBipartitions != 12 {
		t.Errorf("bipartition counts = %+v (12 = 4 trees × 3 splits)", st)
	}
	// Repeated queries against one hash.
	v1, err := h.AverageRFOne("((A,B),((C,D),(E,F)));")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := h.AverageRFOne("((A,F),((B,E),(C,D)));")
	if err != nil {
		t.Fatal(err)
	}
	if v1 >= v2 {
		t.Errorf("majority topology (%v) should be closer than a wrong one (%v)", v1, v2)
	}
	// Must match the one-shot API.
	oneShot, err := AverageRFNewick([]string{"((A,B),((C,D),(E,F)));"}, sixTaxonRefs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if oneShot[0].AvgRF != v1 {
		t.Errorf("hash query %v vs one-shot %v", v1, oneShot[0].AvgRF)
	}
}

func TestHashConsensusMethods(t *testing.T) {
	h, err := BuildHashNewick(sixTaxonRefs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	maj, err := h.Consensus(0.5)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := h.GreedyConsensus(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Majority topology dominates 3 of 4 trees; both consensus flavours
	// must match it.
	for _, cons := range []string{maj, greedy} {
		d, err := PairwiseRF(cons, "((A,B),((C,D),(E,F)));")
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("consensus %q at RF %d from the majority topology", cons, d)
		}
	}
}

func TestHashIncrementalUpdates(t *testing.T) {
	h, err := BuildHashNewick(sixTaxonRefs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := h.AverageRFOne("((A,B),((C,D),(E,F)));")
	if err != nil {
		t.Fatal(err)
	}
	extra := "((A,F),((B,E),(C,D)));"
	if err := h.AddTree(extra); err != nil {
		t.Fatal(err)
	}
	if h.Stats().NumTrees != 5 {
		t.Fatalf("r = %d after AddTree", h.Stats().NumTrees)
	}
	during, err := h.AverageRFOne("((A,B),((C,D),(E,F)));")
	if err != nil {
		t.Fatal(err)
	}
	if during <= before {
		t.Errorf("adding a distant tree should raise the average: %v -> %v", before, during)
	}
	if err := h.RemoveTree(extra); err != nil {
		t.Fatal(err)
	}
	after, err := h.AverageRFOne("((A,B),((C,D),(E,F)));")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("remove did not restore the hash: %v vs %v", after, before)
	}
	if err := h.AddTree("((A,B),(C"); err == nil {
		t.Error("malformed Newick should fail")
	}
}

func TestHashSplits(t *testing.T) {
	h, err := BuildHashNewick(sixTaxonRefs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	splits, err := h.Splits(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) == 0 {
		t.Fatal("no majority splits found")
	}
	for i := 1; i < len(splits); i++ {
		if splits[i].Support > splits[i-1].Support {
			t.Error("splits not sorted by support")
		}
	}
	for _, s := range splits {
		if s.Support <= 0.5 {
			t.Errorf("split below threshold: %+v", s)
		}
		if len(s.Taxa) == 0 {
			t.Error("split without taxa")
		}
	}
}

func TestHashCompressedAgrees(t *testing.T) {
	plain, err := BuildHashNewick(sixTaxonRefs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := BuildHashNewick(sixTaxonRefs(), Config{CompressKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Stats().Compressed {
		t.Fatal("Compressed stat not set")
	}
	q := "((A,C),((B,D),(E,F)));"
	a, err := plain.AverageRFOne(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := comp.AverageRFOne(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("compressed hash disagrees: %v vs %v", a, b)
	}
}

func TestInfoVariantPublic(t *testing.T) {
	res, err := AverageRFNewick(
		[]string{"((A,B),((C,D),(E,F)));"},
		sixTaxonRefs(),
		Config{Variant: VariantInfo},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].AvgRF < 0 {
		t.Errorf("info distance negative: %v", res[0].AvgRF)
	}
	// The majority topology must still score better than a wrong one.
	wrong, err := AverageRFNewick(
		[]string{"((A,F),((B,E),(C,D)));"},
		sixTaxonRefs(),
		Config{Variant: VariantInfo},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].AvgRF >= wrong[0].AvgRF {
		t.Errorf("info variant ranking wrong: %v vs %v", res[0].AvgRF, wrong[0].AvgRF)
	}
}

func TestGreedyConsensusPublicFunctions(t *testing.T) {
	out, err := GreedyConsensusNewick(sixTaxonRefs(), 0.05, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := PairwiseRF(out, "((A,B),((C,D),(E,F)));"); err != nil || d != 0 {
		t.Errorf("greedy consensus = %q (d=%d, err=%v)", out, d, err)
	}
}
