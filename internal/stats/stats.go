// Package stats implements the small statistical toolkit the paper's
// evaluation uses: Pearson correlation, least-squares linear regression and
// its R², plus basic summaries. (§VI.C reports R² and Pearson coefficients
// for BFHRF's runtime linearity.)
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// errEmpty reports a summary requested over no samples. An empty input is
// a caller-level condition (an experiment that produced no measurements),
// not a programming invariant, so these functions return errors rather
// than panicking.
func errEmpty(what string) error { return fmt.Errorf("stats: %s of empty slice", what) }

// Min returns the minimum of xs; it errors on empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errEmpty("Min")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs; it errors on empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errEmpty("Max")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the median of xs (mean of middle pair for even length);
// it errors on empty input.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errEmpty("Median")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid], nil
	}
	return (s[mid-1] + s[mid]) / 2, nil
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples. It errors on mismatched lengths, fewer than 2 points, or zero
// variance in either variable.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, have %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinearFit is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear fits a least-squares line to the paired samples.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, have %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: x has zero variance")
	}
	fit := LinearFit{Slope: sxy / sxx}
	fit.Intercept = my - fit.Slope*mx
	// R² = 1 − SS_res / SS_tot.
	var ssRes, ssTot float64
	for i := range xs {
		pred := fit.Slope*xs[i] + fit.Intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// GrowthExponent estimates k in y ≈ c·xᵏ by a log-log linear fit; it is
// how the complexity experiment classifies empirical growth as linear
// (k ≈ 1) or quadratic (k ≈ 2). All values must be positive.
func GrowthExponent(xs, ys []float64) (float64, error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if i >= len(ys) {
			break
		}
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, fmt.Errorf("stats: GrowthExponent requires positive values (x=%v, y=%v at %d)", xs[i], ys[i], i)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	fit, err := FitLinear(lx, ly)
	if err != nil {
		return 0, err
	}
	return fit.Slope, nil
}
