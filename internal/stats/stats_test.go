package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	mn, err1 := Min(xs)
	mx, err2 := Max(xs)
	if err1 != nil || err2 != nil || mn != 1 || mx != 5 {
		t.Errorf("Min/Max = %v (%v), %v (%v)", mn, err1, mx, err2)
	}
	if md, err := Median(xs); err != nil || md != 3 {
		t.Errorf("Median = %v, %v", md, err)
	}
	if md, err := Median([]float64{1, 2, 3, 4}); err != nil || md != 2.5 {
		t.Errorf("even-length median = %v, %v", md, err)
	}
	for name, f := range map[string]func() (float64, error){
		"Min":    func() (float64, error) { return Min(nil) },
		"Max":    func() (float64, error) { return Max(nil) },
		"Median": func() (float64, error) { return Median(nil) },
	} {
		if _, err := f(); err == nil {
			t.Errorf("%s(nil) should error", name)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !approxEq(r, 1, 1e-12) {
		t.Errorf("perfect correlation r = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !approxEq(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation r = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance should fail")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(fit.Slope, 2, 1e-12) || !approxEq(fit.Intercept, 1, 1e-12) || !approxEq(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 3*x+10+rng.NormFloat64())
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(fit.Slope, 3, 0.05) {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %v for a nearly exact line", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("vertical line should fail")
	}
	if _, err := FitLinear([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestGrowthExponent(t *testing.T) {
	// y = x² exactly.
	xs := []float64{1, 2, 4, 8, 16}
	var quad, lin []float64
	for _, x := range xs {
		quad = append(quad, x*x)
		lin = append(lin, 5*x)
	}
	k, err := GrowthExponent(xs, quad)
	if err != nil || !approxEq(k, 2, 1e-9) {
		t.Errorf("quadratic exponent = %v, %v", k, err)
	}
	k, err = GrowthExponent(xs, lin)
	if err != nil || !approxEq(k, 1, 1e-9) {
		t.Errorf("linear exponent = %v", k)
	}
	if _, err := GrowthExponent([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("non-positive x should fail")
	}
}

func TestQuickPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPearsonSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		a, err1 := Pearson(xs, ys)
		b, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return true
		}
		return approxEq(a, b, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
