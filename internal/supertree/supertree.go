// Package supertree implements RF supertree search — the analysis the
// paper's introduction says bipartition-restricted tools are "generally
// not applicable to" (§I, citing Bansal et al. [14]): given source trees
// over *different* (overlapping) taxon sets, find a supertree over the
// union of all taxa minimizing the total RF distance to the sources, where
// each comparison restricts the supertree to that source's taxa.
//
// The search is the standard greedy hill-climb over NNI (optionally SPR)
// neighbourhoods, scored with Day's linear-time RF after restriction.
// Because BFHRF-style machinery keeps bipartitions untransformed, the
// restriction+score path reuses the same substrates as everything else.
package supertree

import (
	"fmt"
	"math/rand"

	"repro/internal/day"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// Options tune the search.
type Options struct {
	// Restarts is the number of independent hill-climbs (best kept).
	// Default 3.
	Restarts int
	// MaxSteps bounds accepted moves per climb. Default 200.
	MaxSteps int
	// Patience is the number of consecutive rejected proposals that ends a
	// climb. Default 4 × number of internal edges.
	Patience int
	// UseSPR also proposes subtree-prune-regraft moves (bolder steps).
	UseSPR bool
	// Seed makes the search deterministic.
	Seed int64
}

// Result is the search outcome.
type Result struct {
	// Tree is the best supertree found, over the union catalogue.
	Tree *tree.Tree
	// Score is Σ_t RF(Tree|L(t), t), the quantity minimized.
	Score int
	// Taxa is the union catalogue.
	Taxa *taxa.Set
	// Steps counts accepted moves across all restarts.
	Steps int
}

// Search runs the RF supertree heuristic over the source trees. Sources
// must each have ≥ 4 taxa; their union forms the supertree's leaf set.
func Search(sources []*tree.Tree, opts Options) (*Result, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("supertree: no source trees")
	}
	union, leafSets, err := unionTaxa(sources)
	if err != nil {
		return nil, err
	}
	if union.Len() < 4 {
		return nil, fmt.Errorf("supertree: union has %d taxa; need at least 4", union.Len())
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200
	}
	rng := rand.New(rand.NewSource(opts.Seed*2654435761 + 1))

	best := &Result{Score: -1, Taxa: union}
	for restart := 0; restart < restarts; restart++ {
		cur := simphy.RandomBinary(union, rng)
		curScore, err := Score(cur, sources, leafSets)
		if err != nil {
			return nil, err
		}
		patience := opts.Patience
		if patience <= 0 {
			patience = 4 * (union.Len() - 3)
		}
		rejected := 0
		steps := 0
		for steps < maxSteps && rejected < patience && curScore > 0 {
			var cand *tree.Tree
			if opts.UseSPR && rng.Intn(4) == 0 {
				cand = simphy.SPR(cur, rng)
			} else {
				cand = simphy.NNI(cur, rng)
			}
			candScore, err := Score(cand, sources, leafSets)
			if err != nil {
				return nil, err
			}
			if candScore < curScore {
				cur, curScore = cand, candScore
				steps++
				rejected = 0
			} else {
				rejected++
			}
		}
		best.Steps += steps
		if best.Score < 0 || curScore < best.Score {
			best.Tree = cur
			best.Score = curScore
		}
	}
	return best, nil
}

// Score computes Σ_t RF(S restricted to L(t), t). leafSets may be nil, in
// which case they are recomputed from the sources.
func Score(s *tree.Tree, sources []*tree.Tree, leafSets []map[string]bool) (int, error) {
	if leafSets == nil {
		leafSets = make([]map[string]bool, len(sources))
		for i, src := range sources {
			set := map[string]bool{}
			for _, n := range src.LeafNames() {
				set[n] = true
			}
			leafSets[i] = set
		}
	}
	total := 0
	for i, src := range sources {
		keep := leafSets[i]
		restricted, err := tree.Restrict(s, func(name string) bool { return keep[name] })
		if err != nil {
			return 0, fmt.Errorf("supertree: restricting to source %d: %w", i, err)
		}
		d, err := day.RF(restricted, src)
		if err != nil {
			return 0, fmt.Errorf("supertree: scoring source %d: %w", i, err)
		}
		total += d
	}
	return total, nil
}

// unionTaxa validates the sources and returns the union catalogue plus
// per-source leaf sets.
func unionTaxa(sources []*tree.Tree) (*taxa.Set, []map[string]bool, error) {
	seen := map[string]bool{}
	var names []string
	leafSets := make([]map[string]bool, len(sources))
	for i, src := range sources {
		if src == nil || src.Root == nil {
			return nil, nil, fmt.Errorf("supertree: source %d is nil", i)
		}
		if err := src.Validate(); err != nil {
			return nil, nil, fmt.Errorf("supertree: source %d: %w", i, err)
		}
		ln := src.LeafNames()
		if len(ln) < 4 {
			return nil, nil, fmt.Errorf("supertree: source %d has %d taxa; need at least 4", i, len(ln))
		}
		set := make(map[string]bool, len(ln))
		for _, n := range ln {
			set[n] = true
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		leafSets[i] = set
	}
	union, err := taxa.NewSet(names)
	if err != nil {
		return nil, nil, err
	}
	return union, leafSets, nil
}
