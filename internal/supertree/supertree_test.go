package supertree

import (
	"math/rand"
	"testing"

	"repro/internal/day"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// makeSources restricts a true tree to k random overlapping taxon subsets.
func makeSources(t *testing.T, truth *tree.Tree, ts *taxa.Set, k, keep int, seed int64) []*tree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := ts.Len()
	out := make([]*tree.Tree, k)
	for i := range out {
		perm := rng.Perm(n)
		set := map[string]bool{}
		for _, j := range perm[:keep] {
			set[ts.Name(j)] = true
		}
		src, err := tree.Restrict(truth, func(name string) bool { return set[name] })
		if err != nil {
			t.Fatal(err)
		}
		out[i] = src
	}
	return out
}

func TestScoreZeroForConsistentSources(t *testing.T) {
	// Restrictions of one true tree score 0 against it.
	ts := taxa.Generate(12)
	rng := rand.New(rand.NewSource(3))
	truth := simphy.RandomBinary(ts, rng)
	sources := makeSources(t, truth, ts, 5, 8, 7)
	score, err := Score(truth, sources, nil)
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Errorf("true tree score = %d, want 0", score)
	}
}

func TestSearchRecoversTrueTree(t *testing.T) {
	// Sources consistent with one tree: search should reach score 0 (or
	// very near) and hence a supertree displaying every source.
	ts := taxa.Generate(10)
	rng := rand.New(rand.NewSource(9))
	truth := simphy.RandomBinary(ts, rng)
	sources := makeSources(t, truth, ts, 8, 7, 21)

	res, err := Search(sources, Options{Restarts: 6, MaxSteps: 400, UseSPR: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Taxa.Len() != 10 {
		t.Fatalf("union taxa = %d", res.Taxa.Len())
	}
	if res.Tree.NumLeaves() != 10 {
		t.Fatalf("supertree leaves = %d", res.Tree.NumLeaves())
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatalf("supertree invalid: %v", err)
	}
	if res.Score > 2 {
		t.Errorf("search score = %d; consistent sources should reach ~0", res.Score)
	}
	if res.Score == 0 {
		// A perfect supertree restricted to full taxa equals the truth up
		// to RF 0 only if sources jointly resolve it; allow any tree with
		// score 0.
		s, err := Score(res.Tree, sources, nil)
		if err != nil || s != 0 {
			t.Errorf("reported score 0 but rescored %d (%v)", s, err)
		}
	}
}

func TestSearchImprovesOverRandom(t *testing.T) {
	ts := taxa.Generate(14)
	rng := rand.New(rand.NewSource(31))
	truth := simphy.RandomBinary(ts, rng)
	sources := makeSources(t, truth, ts, 6, 9, 17)
	res, err := Search(sources, Options{Restarts: 2, MaxSteps: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	randomScore, err := Score(simphy.RandomBinary(ts, rng), sources, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score >= randomScore {
		t.Errorf("search score %d not better than a random tree's %d", res.Score, randomScore)
	}
}

func TestConflictingSources(t *testing.T) {
	// Two sources over the SAME taxa with different topologies: no
	// supertree scores 0; the search must still return a valid tree.
	a := mustParse(t, "((A,B),((C,D),(E,F)));")
	b := mustParse(t, "((A,F),((C,E),(B,D)));")
	res, err := Search([]*tree.Tree{a, b}, Options{Restarts: 3, MaxSteps: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Errorf("conflicting sources cannot reach score %d", res.Score)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Optimal is one of the two sources themselves (score = RF(a,b)).
	d := day.MustRF(a, b)
	if res.Score > d {
		t.Errorf("score %d worse than picking one source outright (%d)", res.Score, d)
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(nil, Options{}); err == nil {
		t.Error("no sources should fail")
	}
	tiny := mustParse(t, "(A,B,C);")
	if _, err := Search([]*tree.Tree{tiny}, Options{}); err == nil {
		t.Error("3-taxon source should fail")
	}
	if _, err := Search([]*tree.Tree{nil}, Options{}); err == nil {
		t.Error("nil source should fail")
	}
}

func mustParse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	return newick.MustParse(s)
}
