package bipart

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// TestQuickRestrictionCommutes is the correctness property behind the
// variable-taxa pipeline (paper §VII.E): extracting bipartitions from a
// taxon-restricted tree must equal projecting the full tree's bipartitions
// onto the surviving taxa. If this held only approximately, intersection
// reduction would silently change distances.
func TestQuickRestrictionCommutes(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%20 + 8
		full := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		tr := simphy.RandomBinary(full, rng)

		// Random subset of 4..n-1 taxa.
		k := rng.Intn(n-4) + 4
		perm := rng.Perm(n)
		keep := map[string]bool{}
		var kept []string
		for _, i := range perm[:k] {
			keep[full.Name(i)] = true
			kept = append(kept, full.Name(i))
		}
		sub, err := taxa.NewSet(kept)
		if err != nil {
			return false
		}

		// Path A: restrict the tree, then extract over the sub-catalogue.
		restricted, err := tree.Restrict(tr, func(name string) bool { return keep[name] })
		if err != nil {
			return false
		}
		exSub := NewExtractor(sub)
		direct, err := exSub.Extract(restricted)
		if err != nil {
			return false
		}

		// Path B: extract over the full catalogue, then project each mask.
		exFull := NewExtractor(full)
		fullSplits, err := exFull.Extract(tr)
		if err != nil {
			return false
		}
		anchor := 0 // lowest index in sub-catalogue
		projected := map[string]bool{}
		for _, b := range fullSplits {
			m := bitset.New(sub.Len())
			for _, i := range b.Mask().Indices() {
				name := full.Name(i)
				if j, ok := sub.Index(name); ok {
					m.Set(j)
				}
			}
			pb := FromMask(m, anchor)
			if pb.IsTrivial(sub.Len()) {
				continue
			}
			projected[pb.Key()] = true
		}

		directKeys := map[string]bool{}
		for _, b := range direct {
			directKeys[b.Key()] = true
		}
		if len(directKeys) != len(projected) {
			return false
		}
		for k := range directKeys {
			if !projected[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompatibilityOracle cross-checks the anchored Compatible
// predicate against the four-intersection definition on random masks.
func TestQuickCompatibilityOracle(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%30 + 4
		rng := rand.New(rand.NewSource(seed))
		mk := func() Bipartition {
			m := bitset.New(n)
			for i := 1; i < n; i++ { // keep anchor 0 on the 0 side
				if rng.Intn(2) == 1 {
					m.Set(i)
				}
			}
			return FromMask(m, 0)
		}
		a, b := mk(), mk()
		// Oracle: compatible iff one of the four intersections is empty.
		am, bm := a.Mask(), b.Mask()
		inter := func(x, y *bitset.Bits) bool { return x.Intersects(y) }
		ac, bc := am.Complement(), bm.Complement()
		oracle := !inter(am, bm) || !inter(am, bc) || !inter(ac, bm) || !inter(ac, bc)
		return Compatible(a, b) == oracle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTreeSplitsAlwaysCompatible: the splits of any single tree form
// a compatible (laminar) family.
func TestQuickTreeSplitsAlwaysCompatible(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%25 + 4
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		tr := simphy.RandomBinary(ts, rng)
		ex := NewExtractor(ts)
		bs, err := ex.Extract(tr)
		if err != nil {
			return false
		}
		return MutuallyCompatible(bs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// sanity: projection keys used above are deterministic.
func TestProjectionHelperDeterminism(t *testing.T) {
	keys := func() []string {
		full := taxa.Generate(10)
		rng := rand.New(rand.NewSource(3))
		tr := simphy.RandomBinary(full, rng)
		ex := NewExtractor(full)
		bs, err := ex.Extract(tr)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(bs))
		for i, b := range bs {
			out[i] = b.Key()
		}
		sort.Strings(out)
		return out
	}
	a, b := keys(), keys()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("extraction keys not deterministic")
		}
	}
}
