// Package bipart implements bipartition extraction and encoding — the data
// type every RF engine in this repository operates on (paper §II.B).
//
// A bipartition is the split of the taxa induced by removing one edge of an
// unrooted tree. It is encoded as an n-bit bitmask vector over a shared
// taxon catalogue, canonically oriented so that the lowest-indexed taxon
// present in the tree sits on the 0 side; the two orientations of a split
// therefore map to a single canonical encoding, and two bipartitions are
// equal iff their encodings are bit-for-bit equal (collision-free).
package bipart

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// Bipartition is one canonical, immutable split. Mask bits mark the side of
// the split that does not contain the anchor (lowest-indexed) taxon.
type Bipartition struct {
	mask *bitset.Bits
	// hash is the canonical mask's word hash under the open-addressing
	// table's hashing rule, computed once at construction while the words
	// are cache-hot. See Hash.
	hash uint64
	// Length is the length of the inducing edge (for weighted-RF variants);
	// valid only when HasLength is true.
	Length    float64
	HasLength bool
}

// maskHash is the one hashing rule shared with the open-addressing table
// (bfhtable.Table.hashOf): the cheap inlinable HashWord on one-word masks,
// the generic multi-word mix otherwise. Never 0.
func maskHash(words []uint64) uint64 {
	if len(words) == 1 {
		return bitset.HashWord(words[0])
	}
	return bitset.HashWords(words)
}

// FromMask builds a bipartition from an arbitrary orientation of a split
// mask over a width-n catalogue, canonicalizing in place semantics-safe
// (the input is cloned if it must be complemented). anchor is the index of
// the reference taxon that must end up on the 0 side (pass 0 for complete
// trees).
func FromMask(mask *bitset.Bits, anchor int) Bipartition {
	m := mask
	if m.Test(anchor) {
		m = m.Complement()
	}
	return Bipartition{mask: m, hash: maskHash(m.Words())}
}

// Mask returns the canonical mask. Callers must not mutate it.
func (b Bipartition) Mask() *bitset.Bits { return b.mask }

// Hash returns the canonical mask's word hash under the open-addressing
// table's hashing rule (bitset.HashWord for one-word masks, bitset.HashWords
// otherwise), precomputed at construction. The table's hashed lookups and
// the topology fingerprint read it instead of re-walking the mask words —
// the fingerprint's hash pass then touches only the contiguous bipartition
// slice, never the pointer-scattered word arrays. Never 0.
func (b Bipartition) Hash() uint64 { return b.hash }

// Words returns the canonical mask's backing words — the key-free access
// path of the open-addressing BFH backend, which hashes and stores these
// words directly instead of materializing a string key. The slice is
// shared with the mask; callers must not mutate it.
func (b Bipartition) Words() []uint64 { return b.mask.Words() }

// Key returns the collision-free map key for the bipartition.
func (b Bipartition) Key() string { return b.mask.Key() }

// AppendKey appends the Key() bytes to dst and returns the extended slice,
// allocating only when dst lacks capacity — the scratch-buffer probe path
// of the legacy map backend.
func (b Bipartition) AppendKey(dst []byte) []byte { return b.mask.AppendKey(dst) }

// CompactKey returns the losslessly compressed collision-free key — the
// paper's §IX future-work memory optimization. Equal bipartitions have
// equal compact keys and distinct ones never collide.
func (b Bipartition) CompactKey() string { return b.mask.CompactKey() }

// AppendCompactKey is AppendKey for the compressed key scheme.
func (b Bipartition) AppendCompactKey(dst []byte) []byte { return b.mask.AppendCompactKey(dst) }

// Size returns the number of taxa on the 1 side of the canonical encoding.
func (b Bipartition) Size() int { return b.mask.Count() }

// SmallSideSize returns min(size, total-size) given the number of taxa
// present in the source tree; useful for size filters that should be
// orientation-independent.
func (b Bipartition) SmallSideSize(total int) int {
	c := b.mask.Count()
	if total-c < c {
		return total - c
	}
	return c
}

// IsTrivial reports whether the split separates fewer than 2 taxa from the
// rest, given the number of taxa present in the source tree. Trivial splits
// (pendant edges) occur in every tree on the same taxa and carry no
// distance information; all engines exclude them, as the paper does.
func (b Bipartition) IsTrivial(total int) bool {
	c := b.mask.Count()
	return c <= 1 || c >= total-1
}

// Equal reports bitwise equality of the canonical encodings.
func (b Bipartition) Equal(o Bipartition) bool { return b.mask.Equal(o.mask) }

// String renders the bitmask with bit 0 rightmost, as in the paper's
// examples.
func (b Bipartition) String() string { return b.mask.String() }

// Compatible reports whether two canonical bipartitions over the same
// catalogue can coexist in one tree. With both masks anchored (the shared
// anchor taxon on the 0 side), the splits are compatible iff the 1-sides
// are nested or disjoint — the fourth classical condition (complement
// containment) would require the anchor on a 1 side and cannot occur.
func Compatible(a, b Bipartition) bool {
	am, bm := a.mask, b.mask
	return !am.Intersects(bm) || am.IsSubsetOf(bm) || bm.IsSubsetOf(am)
}

// MutuallyCompatible reports whether every pair in bs is compatible, i.e.
// the set is realizable as a single tree.
func MutuallyCompatible(bs []Bipartition) bool {
	for i := range bs {
		for j := i + 1; j < len(bs); j++ {
			if !Compatible(bs[i], bs[j]) {
				return false
			}
		}
	}
	return true
}

// Filter selects bipartitions. Filters are the extensibility hook the paper
// demonstrates (§VII.F, bipartition size filtering): they apply identically
// to reference and query bipartitions before any RF computation.
type Filter func(Bipartition) bool

// SizeFilter keeps bipartitions whose smaller side has between min and max
// taxa inclusive, out of total taxa. max <= 0 means unbounded.
func SizeFilter(min, max, total int) Filter {
	return func(b Bipartition) bool {
		s := b.SmallSideSize(total)
		if s < min {
			return false
		}
		if max > 0 && s > max {
			return false
		}
		return true
	}
}

// And composes filters conjunctively; a nil filter passes everything.
func And(filters ...Filter) Filter {
	return func(b Bipartition) bool {
		for _, f := range filters {
			if f != nil && !f(b) {
				return false
			}
		}
		return true
	}
}

// Extractor computes the bipartition set B(T) of trees over a fixed taxon
// catalogue. Extraction is a postorder sweep computing leaf-set masks
// bottom-up: O(n²) in bits, matching the paper's model (O(n) bipartitions,
// each an n-bit vector).
//
// An Extractor reuses internal mask buffers across Extract calls and is
// therefore NOT safe for concurrent use; give each worker goroutine its
// own (as every engine in this repository does).
type Extractor struct {
	Taxa *taxa.Set
	// IncludeTrivial also emits pendant-edge splits. Off by default
	// everywhere, as in the paper.
	IncludeTrivial bool
	// RequireComplete rejects trees that do not cover the entire catalogue.
	// The fixed-n engines (matching the paper's core setting) set this.
	RequireComplete bool
	// Filter, when non-nil, drops bipartitions it rejects.
	Filter Filter
	// ReuseMasks recycles the emitted bipartition masks and the returned
	// slice across Extract calls, making extraction allocation-free in
	// steady state. The returned bipartitions (and their masks) are then
	// valid only until the next Extract call: callers must copy anything
	// they retain (the BFH backends do — the open-addressing table copies
	// words into its arena, the map backend copies bytes into keys) and
	// Filter hooks must not hold on to the masks they see. Engines that
	// keep bipartition sets resident (seqrf, consensus) must leave this
	// off.
	ReuseMasks bool

	// pool recycles mask buffers between Extract calls.
	pool []*bitset.Bits
	// seen is the per-call duplicate-leaf scratch, reused across calls.
	seen []bool
	// emitted tracks masks handed out in the previous ReuseMasks Extract,
	// recycled into pool at the start of the next call.
	emitted []*bitset.Bits
	// outBuf is the reused result slice under ReuseMasks.
	outBuf []Bipartition
}

// getMask returns a zeroed width-n mask from the pool.
func (e *Extractor) getMask(n int) *bitset.Bits {
	if k := len(e.pool); k > 0 {
		m := e.pool[k-1]
		e.pool = e.pool[:k-1]
		if m.Width() == n {
			m.Reset()
			return m
		}
	}
	return bitset.New(n)
}

func (e *Extractor) putMask(m *bitset.Bits) { e.pool = append(e.pool, m) }

// NewExtractor returns an extractor over ts requiring complete taxon
// coverage (the paper's fixed-n setting).
func NewExtractor(ts *taxa.Set) *Extractor {
	return &Extractor{Taxa: ts, RequireComplete: true}
}

// Extract returns the bipartitions of t in postorder edge order.
// Each returned bipartition is canonical; trivial splits are excluded
// unless IncludeTrivial is set.
func (e *Extractor) Extract(t *tree.Tree) ([]Bipartition, error) {
	n := e.Taxa.Len()
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("bipart: nil tree")
	}
	if e.ReuseMasks {
		// The previous call's emitted masks are dead now; recycle them.
		e.pool = append(e.pool, e.emitted...)
		e.emitted = e.emitted[:0]
	}

	// First pass: map leaves to catalogue indices and find the anchor
	// (lowest-indexed taxon present).
	present := 0
	anchor := -1
	var leafErr error
	if cap(e.seen) < n {
		e.seen = make([]bool, n)
	}
	seen := e.seen[:n]
	for i := range seen {
		seen[i] = false
	}
	t.Postorder(func(nd *tree.Node) {
		if leafErr != nil || !nd.IsLeaf() {
			return
		}
		idx, ok := e.Taxa.Index(nd.Name)
		if !ok {
			leafErr = fmt.Errorf("bipart: leaf %q not in taxon catalogue", nd.Name)
			return
		}
		if seen[idx] {
			leafErr = fmt.Errorf("bipart: duplicate leaf %q", nd.Name)
			return
		}
		seen[idx] = true
		present++
		if anchor == -1 || idx < anchor {
			anchor = idx
		}
	})
	if leafErr != nil {
		return nil, leafErr
	}
	if present < 2 {
		return nil, fmt.Errorf("bipart: tree has %d taxa; need at least 2", present)
	}
	if e.RequireComplete && present != n {
		return nil, fmt.Errorf("bipart: tree covers %d of %d catalogue taxa; complete coverage required", present, n)
	}

	// Second pass: iterative postorder with pooled masks. Each stack frame
	// owns one mask; a completed child ORs its mask into its parent's and
	// returns the buffer to the pool, so extraction allocates only the
	// emitted canonical masks (and not even those under ReuseMasks).
	var out []Bipartition
	if e.ReuseMasks {
		out = e.outBuf[:0]
	}
	// In the rooted-binary serialization (root with 2 children) the two root
	// edges are the same unrooted edge; emit only the first.
	var skipChild *tree.Node
	if len(t.Root.Children) == 2 {
		skipChild = t.Root.Children[1]
	}
	type frame struct {
		nd    *tree.Node
		child int
		mask  *bitset.Bits
	}
	stack := make([]frame, 1, 64)
	stack[0] = frame{nd: t.Root, mask: e.getMask(n)}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child < len(f.nd.Children) {
			c := f.nd.Children[f.child]
			f.child++
			stack = append(stack, frame{nd: c, mask: e.getMask(n)})
			continue
		}
		nd, m := f.nd, f.mask
		if nd.IsLeaf() {
			idx, _ := e.Taxa.Index(nd.Name)
			m.Set(idx)
		}
		if nd.Parent != nil && nd != skipChild {
			var c *bitset.Bits
			if e.ReuseMasks {
				c = e.getMask(n)
				c.CopyFrom(m)
			} else {
				c = m.Clone()
			}
			if c.Test(anchor) {
				c.ComplementInPlace()
			}
			b := Bipartition{mask: c, hash: maskHash(c.Words())}
			b.Length, b.HasLength = nd.Length, nd.HasLength
			if (e.IncludeTrivial || !b.IsTrivial(present)) &&
				(e.Filter == nil || e.Filter(b)) {
				out = append(out, b)
				if e.ReuseMasks {
					e.emitted = append(e.emitted, c)
				}
			} else if e.ReuseMasks {
				e.putMask(c)
			}
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			stack[len(stack)-1].mask.Or(m)
		}
		e.putMask(m)
	}
	return out, nil
}

// MustExtract is Extract but panics on error. For tests.
func (e *Extractor) MustExtract(t *tree.Tree) []Bipartition {
	bs, err := e.Extract(t)
	if err != nil {
		panic(err)
	}
	return bs
}
