package bipart

import (
	"sort"
)

// Set is a collection of distinct bipartitions keyed by their canonical
// encodings. It implements the set algebra underlying the traditional RF
// definition RF(T,T') = |B(T)\B(T')| + |B(T')\B(T)|.
type Set struct {
	m map[string]Bipartition
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{m: make(map[string]Bipartition)} }

// SetOf builds a set from a slice of bipartitions, deduplicating.
func SetOf(bs []Bipartition) *Set {
	s := &Set{m: make(map[string]Bipartition, len(bs))}
	for _, b := range bs {
		s.Add(b)
	}
	return s
}

// Add inserts b (overwriting an equal entry, so length annotations from the
// latest insertion win).
func (s *Set) Add(b Bipartition) { s.m[b.Key()] = b }

// Len returns the number of distinct bipartitions.
func (s *Set) Len() int { return len(s.m) }

// Contains reports membership by canonical encoding.
func (s *Set) Contains(b Bipartition) bool {
	_, ok := s.m[b.Key()]
	return ok
}

// ContainsKey reports membership by precomputed key.
func (s *Set) ContainsKey(key string) bool {
	_, ok := s.m[key]
	return ok
}

// Get returns the stored bipartition for key.
func (s *Set) Get(key string) (Bipartition, bool) {
	b, ok := s.m[key]
	return b, ok
}

// Each visits every bipartition in unspecified order.
func (s *Set) Each(visit func(Bipartition)) {
	for _, b := range s.m {
		visit(b)
	}
}

// Sorted returns the bipartitions ordered by key, for deterministic output.
func (s *Set) Sorted() []Bipartition {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Bipartition, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// IntersectionSize returns |s ∩ o|.
func (s *Set) IntersectionSize(o *Set) int {
	small, big := s, o
	if big.Len() < small.Len() {
		small, big = big, small
	}
	c := 0
	for k := range small.m {
		if _, ok := big.m[k]; ok {
			c++
		}
	}
	return c
}

// SymmetricDifferenceSize returns |s\o| + |o\s| — the traditional RF
// distance between the two encoded trees (paper Eq. 1).
func (s *Set) SymmetricDifferenceSize(o *Set) int {
	shared := s.IntersectionSize(o)
	return (s.Len() - shared) + (o.Len() - shared)
}

// WeightedSymmetricDifference returns the branch-length-weighted symmetric
// difference: shared bipartitions contribute |len_s − len_o| and unshared
// ones contribute their own length. Bipartitions without lengths contribute
// 1 (reducing to the unweighted count when no tree has lengths). This is the
// classic weighted-RF generalization the paper's extensibility discussion
// targets.
func (s *Set) WeightedSymmetricDifference(o *Set) float64 {
	var d float64
	for k, b := range s.m {
		if ob, ok := o.m[k]; ok {
			if b.HasLength && ob.HasLength {
				d += abs(b.Length - ob.Length)
			}
		} else {
			d += weight(b)
		}
	}
	for k, ob := range o.m {
		if _, ok := s.m[k]; !ok {
			d += weight(ob)
		}
	}
	return d
}

func weight(b Bipartition) float64 {
	if b.HasLength {
		return b.Length
	}
	return 1
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
