package bipart

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
)

var abcd = taxa.MustNewSet([]string{"A", "B", "C", "D"})

func extract(t *testing.T, ts *taxa.Set, nwk string) []Bipartition {
	t.Helper()
	ex := NewExtractor(ts)
	bs, err := ex.Extract(newick.MustParse(nwk))
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func keysOf(bs []Bipartition) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

func TestPaperExample(t *testing.T) {
	// Paper §II.B: T = ((A,B),(C,D)) has the single non-trivial split
	// {A,B}|{C,D}; with A anchored to the 0 side the canonical mask is the
	// complement of 0011, i.e. 1100.
	bs := extract(t, abcd, "((A,B),(C,D));")
	if len(bs) != 1 {
		t.Fatalf("non-trivial bipartitions = %d, want 1: %v", len(bs), keysOf(bs))
	}
	if bs[0].String() != "1100" {
		t.Errorf("canonical mask = %s, want 1100", bs[0])
	}

	// T' = ((D,B),(C,A)) has the split {B,D}|{A,C}: canonical 1010.
	bs2 := extract(t, abcd, "((D,B),(C,A));")
	if len(bs2) != 1 || bs2[0].String() != "1010" {
		t.Errorf("T' bipartition = %v, want [1010]", keysOf(bs2))
	}

	// RF(T, T') = 2, per the paper's worked example (Eq. 1).
	if d := SetOf(bs).SymmetricDifferenceSize(SetOf(bs2)); d != 2 {
		t.Errorf("RF = %d, want 2", d)
	}
}

func TestRootedAndUnrootedSerializationsAgree(t *testing.T) {
	// The same unrooted topology serialized with a degree-2 root and a
	// degree-3 root must give identical bipartition sets.
	rooted := extract(t, abcd, "((A,B),(C,D));")
	unrooted := extract(t, abcd, "(A,B,(C,D));")
	if len(rooted) != len(unrooted) {
		t.Fatalf("sizes differ: %d vs %d", len(rooted), len(unrooted))
	}
	rk, uk := keysOf(rooted), keysOf(unrooted)
	for i := range rk {
		if rk[i] != uk[i] {
			t.Errorf("bipartition %d: %s vs %s", i, rk[i], uk[i])
		}
	}
}

func TestBinaryTreeBipartitionCount(t *testing.T) {
	// A binary unrooted tree on n taxa has exactly n−3 non-trivial splits.
	six := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	bs := extract(t, six, "((A,B),((C,D),(E,F)));")
	if len(bs) != 3 {
		t.Errorf("6-taxon binary tree: %d non-trivial splits, want 3", len(bs))
	}
}

func TestIncludeTrivial(t *testing.T) {
	ex := NewExtractor(abcd)
	ex.IncludeTrivial = true
	bs, err := ex.Extract(newick.MustParse("(A,B,(C,D));"))
	if err != nil {
		t.Fatal(err)
	}
	// 4 pendant edges + 1 internal; but the anchor leaf A's pendant edge is
	// also emitted (canonical complement). Total 2n−3 = 5 for binary.
	if len(bs) != 5 {
		t.Errorf("with trivial: %d, want 5 (= 2n−3)", len(bs))
	}
}

func TestMultifurcatingTree(t *testing.T) {
	// Star tree: no internal edges at all.
	bs := extract(t, abcd, "(A,B,C,D);")
	if len(bs) != 0 {
		t.Errorf("star tree should have no non-trivial splits, got %v", keysOf(bs))
	}
}

func TestExtractorErrors(t *testing.T) {
	ex := NewExtractor(abcd)
	if _, err := ex.Extract(newick.MustParse("((A,B),(C,X));")); err == nil {
		t.Error("unknown taxon should fail")
	}
	if _, err := ex.Extract(newick.MustParse("((A,B),(C,C));")); err == nil {
		t.Error("duplicate taxon should fail")
	}
	if _, err := ex.Extract(newick.MustParse("(A,B,C);")); err == nil {
		t.Error("incomplete coverage should fail when required")
	}
	if _, err := ex.Extract(nil); err == nil {
		t.Error("nil tree should fail")
	}
	ex.RequireComplete = false
	if _, err := ex.Extract(newick.MustParse("(A,B,C);")); err != nil {
		t.Errorf("incomplete coverage should pass when not required: %v", err)
	}
}

func TestPartialTreeAnchor(t *testing.T) {
	// Without B and A absent, the anchor is the lowest present taxon (B).
	ex := &Extractor{Taxa: abcd}
	bs, err := ex.Extract(newick.MustParse("((B,C),(D,Dx));"))
	if err == nil {
		t.Fatal("Dx is not in the catalogue; expected error")
	}
	bs, err = ex.Extract(newick.MustParse("(B,C,D);"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Errorf("3-taxon tree: %d non-trivial splits, want 0", len(bs))
	}
}

func TestFilterApplied(t *testing.T) {
	six := taxa.MustNewSet([]string{"A", "B", "C", "D", "E", "F"})
	ex := NewExtractor(six)
	ex.Filter = SizeFilter(3, 0, 6) // only balanced splits (small side = 3)
	bs, err := ex.Extract(newick.MustParse("((A,B),((C,D),(E,F)));"))
	if err != nil {
		t.Fatal(err)
	}
	// Splits: {A,B}(2), {C,D}(2), {E,F}(2)? No: internal edges are AB|rest,
	// CD|rest, EF|rest — wait, also CDEF|AB duplicates. Small sides are
	// 2, 2, 2 for those three... none has small side 3? CDEF vs AB edge has
	// small side 2. So expect 0.
	if len(bs) != 0 {
		t.Errorf("filtered: %d splits, want 0: %v", len(bs), keysOf(bs))
	}
	ex.Filter = SizeFilter(2, 2, 6)
	bs, err = ex.Extract(newick.MustParse("((A,B),((C,D),(E,F)));"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Errorf("size-2 filter: %d splits, want 3", len(bs))
	}
}

func TestSizeFilterBounds(t *testing.T) {
	m := bitset.New(8)
	m.Set(1)
	m.Set(2)
	b := FromMask(m, 0)
	if !SizeFilter(2, 0, 8)(b) {
		t.Error("size 2 should pass min=2")
	}
	if SizeFilter(3, 0, 8)(b) {
		t.Error("size 2 should fail min=3")
	}
	if SizeFilter(0, 1, 8)(b) {
		t.Error("size 2 should fail max=1")
	}
}

func TestAndFilter(t *testing.T) {
	yes := Filter(func(Bipartition) bool { return true })
	no := Filter(func(Bipartition) bool { return false })
	var b Bipartition
	m := bitset.New(4)
	m.Set(1)
	b = FromMask(m, 0)
	if !And(yes, nil, yes)(b) {
		t.Error("all-pass And failed")
	}
	if And(yes, no)(b) {
		t.Error("And with failing filter passed")
	}
}

func TestCanonicalOrientation(t *testing.T) {
	// Both orientations of a split map to one canonical encoding.
	m1 := bitset.MustParse("0011")
	m2 := bitset.MustParse("1100")
	b1 := FromMask(m1, 0)
	b2 := FromMask(m2, 0)
	if !b1.Equal(b2) {
		t.Errorf("orientations differ: %s vs %s", b1, b2)
	}
	if b1.Key() != b2.Key() {
		t.Error("keys differ for equivalent orientations")
	}
}

func TestIsTrivialAndSmallSide(t *testing.T) {
	m := bitset.New(6)
	m.Set(1)
	b := FromMask(m, 0)
	if !b.IsTrivial(6) {
		t.Error("singleton should be trivial")
	}
	m2 := bitset.New(6)
	for i := 1; i < 6; i++ {
		m2.Set(i)
	}
	b2 := FromMask(m2, 0)
	if !b2.IsTrivial(6) {
		t.Error("n−1 split should be trivial")
	}
	if b2.SmallSideSize(6) != 1 {
		t.Errorf("SmallSideSize = %d, want 1", b2.SmallSideSize(6))
	}
	m3 := bitset.New(6)
	m3.Set(1)
	m3.Set(2)
	b3 := FromMask(m3, 0)
	if b3.IsTrivial(6) {
		t.Error("2-vs-4 split should not be trivial")
	}
}

func TestLengthsCarried(t *testing.T) {
	ex := NewExtractor(abcd)
	bs, err := ex.Extract(newick.MustParse("((A:1,B:2):0.5,(C:3,D:4):0.5);"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("splits = %d", len(bs))
	}
	if !bs[0].HasLength {
		t.Fatal("internal split should carry its edge length")
	}
	// The degree-2 root serialization merges the two root edges; the split
	// is emitted from the first root child (length 0.5).
	if bs[0].Length != 0.5 {
		t.Errorf("split length = %v", bs[0].Length)
	}
}

// TestQuickExtractionInvariants checks structural invariants on random
// binary trees: count = n−3, all non-trivial, all canonical, disjoint or
// nested masks (laminar family property).
func TestQuickExtractionInvariants(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%40 + 4
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		tr := simphy.RandomBinary(ts, rng)
		ex := NewExtractor(ts)
		bs, err := ex.Extract(tr)
		if err != nil {
			return false
		}
		if len(bs) != n-3 {
			return false
		}
		for _, b := range bs {
			if b.IsTrivial(n) {
				return false
			}
			if b.Mask().Test(0) {
				return false // anchor must be on the 0 side
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
