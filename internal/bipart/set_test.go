package bipart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func bp(s string) Bipartition {
	return FromMask(bitset.MustParse(s), 0)
}

func bpLen(s string, l float64) Bipartition {
	b := FromMask(bitset.MustParse(s), 0)
	b.Length, b.HasLength = l, true
	return b
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if s.Len() != 0 {
		t.Error("new set not empty")
	}
	a := bp("0110")
	s.Add(a)
	s.Add(a) // dedup
	if s.Len() != 1 {
		t.Errorf("Len = %d after duplicate insert", s.Len())
	}
	if !s.Contains(a) || !s.ContainsKey(a.Key()) {
		t.Error("membership lookup failed")
	}
	if s.Contains(bp("1010")) {
		t.Error("absent element reported present")
	}
	got, ok := s.Get(a.Key())
	if !ok || !got.Equal(a) {
		t.Error("Get failed")
	}
}

func TestSymmetricDifference(t *testing.T) {
	// Matches the paper's example: one split each, disjoint → RF = 2.
	s1 := SetOf([]Bipartition{bp("1100")})
	s2 := SetOf([]Bipartition{bp("1010")})
	if d := s1.SymmetricDifferenceSize(s2); d != 2 {
		t.Errorf("RF = %d, want 2", d)
	}
	// Identical sets → 0.
	if d := s1.SymmetricDifferenceSize(s1); d != 0 {
		t.Errorf("self RF = %d, want 0", d)
	}
	// Partial overlap.
	s3 := SetOf([]Bipartition{bp("1100"), bp("0110")})
	if d := s1.SymmetricDifferenceSize(s3); d != 1 {
		t.Errorf("partial RF = %d, want 1", d)
	}
}

func TestIntersectionSize(t *testing.T) {
	a := SetOf([]Bipartition{bp("1100"), bp("0110"), bp("1010")})
	b := SetOf([]Bipartition{bp("0110"), bp("1010")})
	if got := a.IntersectionSize(b); got != 2 {
		t.Errorf("IntersectionSize = %d, want 2", got)
	}
	if got := b.IntersectionSize(a); got != 2 {
		t.Errorf("IntersectionSize not symmetric: %d", got)
	}
}

func TestSorted(t *testing.T) {
	s := SetOf([]Bipartition{bp("1100"), bp("0110"), bp("1010")})
	sorted := s.Sorted()
	if len(sorted) != 3 {
		t.Fatalf("Sorted len = %d", len(sorted))
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Key() >= sorted[i].Key() {
			t.Error("Sorted output not ordered")
		}
	}
}

func TestEach(t *testing.T) {
	s := SetOf([]Bipartition{bp("1100"), bp("0110")})
	count := 0
	s.Each(func(Bipartition) { count++ })
	if count != 2 {
		t.Errorf("Each visited %d", count)
	}
}

func TestWeightedSymmetricDifference(t *testing.T) {
	// Shared split with different lengths contributes |Δ|; unshared
	// contribute their own lengths.
	a := SetOf([]Bipartition{bpLen("1100", 1.0), bpLen("0110", 2.0)})
	b := SetOf([]Bipartition{bpLen("1100", 1.5), bpLen("1010", 4.0)})
	got := a.WeightedSymmetricDifference(b)
	want := 0.5 + 2.0 + 4.0
	if got != want {
		t.Errorf("weighted = %v, want %v", got, want)
	}
	// Without lengths it reduces to the unweighted count.
	c := SetOf([]Bipartition{bp("1100"), bp("0110")})
	d := SetOf([]Bipartition{bp("1010")})
	if got := c.WeightedSymmetricDifference(d); got != 3 {
		t.Errorf("unweighted fallback = %v, want 3", got)
	}
}

// Property: symmetric difference is a pseudometric on sets — symmetric,
// zero on identity, triangle inequality.
func TestQuickSymmetricDifferenceMetric(t *testing.T) {
	gen := func(rng *rand.Rand) *Set {
		s := NewSet()
		for i := 0; i < rng.Intn(12); i++ {
			m := bitset.New(10)
			for j := 1; j < 10; j++ {
				if rng.Intn(2) == 1 {
					m.Set(j)
				}
			}
			s.Add(FromMask(m, 0))
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		dab := a.SymmetricDifferenceSize(b)
		dba := b.SymmetricDifferenceSize(a)
		if dab != dba {
			return false
		}
		if a.SymmetricDifferenceSize(a) != 0 {
			return false
		}
		dac := a.SymmetricDifferenceSize(c)
		dcb := c.SymmetricDifferenceSize(b)
		return dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
