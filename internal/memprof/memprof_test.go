package memprof

import (
	"errors"
	"testing"
	"time"
)

func TestMeasureWallTime(t *testing.T) {
	m := Measure(func() error {
		time.Sleep(30 * time.Millisecond)
		return nil
	})
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Wall < 25*time.Millisecond {
		t.Errorf("Wall = %v, expected >= 25ms", m.Wall)
	}
	if m.Minutes() <= 0 {
		t.Error("Minutes should be positive")
	}
}

func TestMeasureCapturesError(t *testing.T) {
	want := errors.New("boom")
	m := Measure(func() error { return want })
	if m.Err != want {
		t.Errorf("Err = %v", m.Err)
	}
}

func TestMeasurePeakHeap(t *testing.T) {
	var sink [][]byte
	m := Measure(func() error {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 1<<20))
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	// 64 MiB allocated and retained; expect a peak of at least half that.
	if m.PeakHeapMB() < 32 {
		t.Errorf("PeakHeapMB = %v, expected >= 32", m.PeakHeapMB())
	}
	if m.TotalAllocBytes < 32<<20 {
		t.Errorf("TotalAllocBytes = %d", m.TotalAllocBytes)
	}
	sink = nil
	_ = sink
}

func TestMeasureQuickFunction(t *testing.T) {
	// A run shorter than the sample interval must still be measured.
	m := Measure(func() error { return nil })
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Wall < 0 {
		t.Error("negative wall time")
	}
}
