package memprof

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestMeasureWallTime(t *testing.T) {
	m := Measure(func() error {
		time.Sleep(30 * time.Millisecond)
		return nil
	})
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Wall < 25*time.Millisecond {
		t.Errorf("Wall = %v, expected >= 25ms", m.Wall)
	}
	if m.Minutes() <= 0 {
		t.Error("Minutes should be positive")
	}
}

func TestMeasureCapturesError(t *testing.T) {
	want := errors.New("boom")
	m := Measure(func() error { return want })
	if m.Err != want {
		t.Errorf("Err = %v", m.Err)
	}
}

func TestMeasurePeakHeap(t *testing.T) {
	var sink [][]byte
	m := Measure(func() error {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 1<<20))
			time.Sleep(time.Millisecond)
		}
		return nil
	})
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	// 64 MiB allocated and retained; expect a peak of at least half that.
	if m.PeakHeapMB() < 32 {
		t.Errorf("PeakHeapMB = %v, expected >= 32", m.PeakHeapMB())
	}
	if m.TotalAllocBytes < 32<<20 {
		t.Errorf("TotalAllocBytes = %d", m.TotalAllocBytes)
	}
	sink = nil
	_ = sink
}

func TestMeasureQuickFunction(t *testing.T) {
	// A run shorter than the sample interval must still be measured.
	m := Measure(func() error { return nil })
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Wall < 0 {
		t.Error("negative wall time")
	}
}

func TestMeasureConcurrentAllocation(t *testing.T) {
	// Deterministic concurrent workload: 8 goroutines each retain 8 MiB,
	// all held simultaneously long enough for several sampler ticks. The
	// sampled peak must agree with the runtime.MemStats truth read while
	// everything is retained — the property the paper-table memory
	// columns and the perfjson heap records both rest on.
	const (
		workers   = 8
		perWorker = 8 << 20
		total     = workers * perWorker
	)
	var truthAlloc uint64
	m := Measure(func() error {
		retained := make([][]byte, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, perWorker)
				for i := 0; i < len(buf); i += 4096 {
					buf[i] = byte(w) // touch every page so it is really resident
				}
				retained[w] = buf
			}(w)
		}
		wg.Wait()
		// Truth: the live heap while all workers' memory is retained.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		truthAlloc = ms.HeapAlloc
		time.Sleep(4 * SampleInterval) // let the sampler observe the plateau
		runtime.KeepAlive(retained)
		return nil
	})
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if truthAlloc < m.BaselineBytes {
		t.Fatalf("truth %d below baseline %d", truthAlloc, m.BaselineBytes)
	}
	truthAbove := truthAlloc - m.BaselineBytes
	if truthAbove < total {
		t.Fatalf("truth above baseline = %d, expected at least the %d retained", truthAbove, total)
	}
	// The sampled peak must be within 25% of the truth on the low side
	// (a missed plateau underreads) and may exceed it only by transient
	// garbage, bounded here at 50% + the truth itself.
	if m.PeakHeapBytes < truthAbove*3/4 {
		t.Errorf("sampled peak %d under 75%% of truth %d", m.PeakHeapBytes, truthAbove)
	}
	if m.PeakHeapBytes > truthAbove*3/2 {
		t.Errorf("sampled peak %d over 150%% of truth %d", m.PeakHeapBytes, truthAbove)
	}
}

func TestMeasureN(t *testing.T) {
	calls := 0
	ms := MeasureN(3, func() error {
		calls++
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if len(ms) != 3 || calls != 3 {
		t.Fatalf("len = %d, calls = %d, want 3", len(ms), calls)
	}
	for _, m := range ms {
		if m.Err != nil || m.Wall <= 0 {
			t.Errorf("bad measurement: %+v", m)
		}
	}
	if err := Err(ms); err != nil {
		t.Errorf("Err = %v", err)
	}
	if ms := MeasureN(0, func() error { return nil }); len(ms) != 1 {
		t.Errorf("k<1 should clamp to one run, got %d", len(ms))
	}
}

func TestMeasureNStopsOnFailure(t *testing.T) {
	want := errors.New("boom")
	calls := 0
	ms := MeasureN(5, func() error {
		calls++
		if calls == 2 {
			return want
		}
		return nil
	})
	if calls != 2 || len(ms) != 2 {
		t.Errorf("calls = %d, len = %d; a failing workload must not be re-run", calls, len(ms))
	}
	if err := Err(ms); err != want {
		t.Errorf("Err = %v, want boom", err)
	}
}
