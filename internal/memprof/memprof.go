// Package memprof measures the two quantities the paper reports per run:
// wall-clock time and maximum resident memory. Peak memory is approximated
// by sampling the Go heap during the run (after forcing a GC to establish a
// baseline), which tracks the same shape as the paper's max-resident
// profiler at a fraction of the absolute value.
package memprof

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Measurement is the outcome of one measured run.
type Measurement struct {
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// PeakHeapBytes is the maximum sampled live-heap size above the
	// pre-run baseline.
	PeakHeapBytes uint64
	// BaselineBytes is the live heap before the run started.
	BaselineBytes uint64
	// TotalAllocBytes is the cumulative allocation during the run.
	TotalAllocBytes uint64
	// ResidentBytes is structure footprint reported by the workload itself
	// — memory that is live for the whole measured region (a pre-built
	// hash table, say) and therefore invisible to the sampled delta, which
	// only sees what grows above the pre-run baseline. Captured by
	// MeasureWith/MeasureNWith; zero for plain Measure runs.
	ResidentBytes uint64
	// Err is the error returned by the measured function, if any.
	Err error
}

// PeakHeapMB returns the peak in mebibytes: the sampled above-baseline
// peak plus any reported resident footprint. Without the resident term, a
// workload probing a pre-built table reports only its per-query
// allocations — the BENCH_0003 BFHRF-OA/MAP records bottomed out at
// ~0.0005 MB while holding multi-megabyte tables.
func (m Measurement) PeakHeapMB() float64 {
	return float64(m.PeakHeapBytes+m.ResidentBytes) / (1 << 20)
}

// Minutes returns the wall time in minutes, the unit of the paper's
// tables.
func (m Measurement) Minutes() float64 { return m.Wall.Minutes() }

// SampleInterval is the heap-sampling period. Coarser sampling underreads
// sharp peaks; finer sampling perturbs short runs.
var SampleInterval = 2 * time.Millisecond

// MeasureN runs f k times, measuring each run independently (each with
// its own GC-settled baseline), and returns the k measurements in run
// order. It stops early after the first failing run — later repetitions
// of a broken workload measure nothing. k < 1 is treated as 1.
//
// Repetition is the noise model of the perfjson benchmark records: the
// comparator gates on the median and min of these runs, so one
// descheduled repetition cannot fake a regression.
func MeasureN(k int, f func() error) []Measurement {
	return MeasureNWith(k, nil, f)
}

// MeasureNWith is MeasureN for workloads holding pre-built state:
// resident (when non-nil) reports the byte footprint of structures live
// across the whole measured region, evaluated after each run and folded
// into that run's peak (see Measurement.ResidentBytes).
func MeasureNWith(k int, resident func() int64, f func() error) []Measurement {
	if k < 1 {
		k = 1
	}
	out := make([]Measurement, 0, k)
	for i := 0; i < k; i++ {
		m := MeasureWith(resident, f)
		out = append(out, m)
		if m.Err != nil {
			break
		}
	}
	return out
}

// Err returns the error of the first failed measurement in ms, if any.
func Err(ms []Measurement) error {
	for _, m := range ms {
		if m.Err != nil {
			return m.Err
		}
	}
	return nil
}

// MeasureWith runs f like Measure and then stamps the measurement with
// the workload's self-reported resident footprint (when resident is
// non-nil), so PeakHeapMB covers pre-built structures the sampled
// above-baseline delta cannot see.
func MeasureWith(resident func() int64, f func() error) Measurement {
	m := Measure(f)
	if resident != nil {
		if r := resident(); r > 0 {
			m.ResidentBytes = uint64(r)
		}
	}
	return m
}

// Measure runs f while sampling heap usage, returning the measurement.
// The measured function's error is recorded, not swallowed.
func Measure(f func() error) Measurement {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	startAlloc := ms.TotalAlloc

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(SampleInterval)
		defer ticker.Stop()
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&s)
				if s.HeapAlloc > peak.Load() {
					peak.Store(s.HeapAlloc)
				}
			}
		}
	}()

	start := time.Now()
	err := f()
	wall := time.Since(start)
	close(stop)
	<-done

	// Final sample: short runs can finish between ticks.
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak.Load() {
		peak.Store(ms.HeapAlloc)
	}
	p := peak.Load()
	if p < baseline {
		p = baseline
	}
	return Measurement{
		Wall:            wall,
		PeakHeapBytes:   p - baseline,
		BaselineBytes:   baseline,
		TotalAllocBytes: ms.TotalAlloc - startAlloc,
		Err:             err,
	}
}
