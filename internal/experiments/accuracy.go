package experiments

import (
	"math"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hashrf"
	"repro/internal/seqrf"
)

// agreement computes the maximum absolute difference in per-tree average RF
// between BFHRF and each other engine on the first r trees of spec (Q = R).
func (c *Config) agreement(spec dataset.Spec, r int) (dDS, dDSMP, dHRF float64, err error) {
	path, ts, err := c.materialize(spec, r)
	if err != nil {
		return 0, 0, 0, err
	}
	src, err := collection.OpenFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer src.Close()
	qsrc, err := collection.OpenFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer qsrc.Close()

	h, err := core.Build(src, ts, core.BuildOptions{RequireComplete: true})
	if err != nil {
		return 0, 0, 0, err
	}
	bf, err := h.AverageRF(qsrc, core.QueryOptions{RequireComplete: true})
	if err != nil {
		return 0, 0, 0, err
	}
	bfv := make([]float64, len(bf))
	for _, x := range bf {
		bfv[x.Index] = x.AvgRF
	}

	ds, err := seqrf.AverageRF(qsrc, src, seqrf.Options{Taxa: ts, Workers: 1})
	if err != nil {
		return 0, 0, 0, err
	}
	dsmp, err := seqrf.AverageRF(qsrc, src, seqrf.Options{Taxa: ts, Workers: 8})
	if err != nil {
		return 0, 0, 0, err
	}
	hrf, err := hashrf.AverageRF(src, hashrf.Options{Taxa: ts, AcceptUnweighted: true})
	if err != nil {
		return 0, 0, 0, err
	}
	return maxDelta(bfv, ds), maxDelta(bfv, dsmp), maxDelta(bfv, hrf), nil
}

func maxDelta(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if i >= len(b) {
			break
		}
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
