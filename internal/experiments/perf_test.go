package experiments

import (
	"bytes"
	"testing"

	"repro/internal/perfjson"
)

func TestPerfIndexStableIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range PerfIndex() {
		if w.ID == "" || len(w.Engines) == 0 || w.R <= 0 {
			t.Errorf("malformed workload: %+v", w)
		}
		if seen[w.ID] {
			t.Errorf("duplicate workload ID %s", w.ID)
		}
		seen[w.ID] = true
		for _, e := range w.Engines {
			if w.Spec.Unweighted && e == HashRF {
				t.Errorf("%s: HashRF cannot measure unweighted input", w.ID)
			}
		}
	}
}

func TestPerfSweepProducesValidSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("perf sweep in -short mode")
	}
	c := tinyConfig(t)
	suite, err := c.PerfSweep(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.Validate(); err != nil {
		t.Fatal(err)
	}
	var want int
	for _, w := range PerfIndex() {
		want += len(w.Engines)
	}
	if len(suite.Records) != want {
		t.Errorf("records = %d, want %d", len(suite.Records), want)
	}
	for _, r := range suite.Records {
		if r.Reps != 2 {
			t.Errorf("%s: reps = %d, want 2", r.Key(), r.Reps)
		}
		if r.NsOpMin <= 0 || r.NsOpMedian < r.NsOpMin {
			t.Errorf("%s: nonsensical timings %d/%d", r.Key(), r.NsOpMedian, r.NsOpMin)
		}
	}
	// A suite must round-trip and compare clean against itself.
	var buf bytes.Buffer
	if err := perfjson.Encode(&buf, suite); err != nil {
		t.Fatal(err)
	}
	back, err := perfjson.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := perfjson.Compare(suite, back, perfjson.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() || cmp.Compared != want {
		t.Errorf("self-comparison should pass all %d records: %+v", want, cmp)
	}
}

func TestPerfSweepRespectsEngineSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("perf sweep in -short mode")
	}
	c := tinyConfig(t)
	c.Engines = []Engine{BFHRF8}
	suite, err := c.PerfSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	// One record per workload that offers BFHRF8 (the replicate point runs
	// only the cache A/B pair, so it contributes none).
	want := 0
	for _, w := range PerfIndex() {
		if len(intersectEngines(w.Engines, c.Engines)) > 0 {
			want++
		}
	}
	if len(suite.Records) != want {
		t.Errorf("records = %d, want one BFHRF8 per offering workload (%d)", len(suite.Records), want)
	}
	for _, r := range suite.Records {
		if r.Engine != string(BFHRF8) {
			t.Errorf("unexpected engine %s", r.Engine)
		}
		if r.Workers != 8 {
			t.Errorf("%s: workers = %d, want 8", r.Key(), r.Workers)
		}
	}
}
