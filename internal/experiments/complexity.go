package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/tabfmt"
)

// Complexity empirically verifies Table I and regenerates the §VI.C
// statistics: it fits growth exponents of runtime against r (trees) and n
// (taxa) per engine, and reports R² and Pearson coefficients for BFHRF's
// runtime-vs-n linearity, the two numbers the paper quotes (0.988/0.994
// for 8 cores, 0.997/0.999 for 16).
func (c *Config) Complexity() *Report {
	rep := &Report{ID: "TableI_Complexity"}

	growth := tabfmt.New(
		"Table I (empirical) — growth exponents k in time ≈ c·xᵏ (log-log fit)",
		"Algorithm", "k vs trees r", "k vs taxa n", "theory (r)", "theory (n, bits)")
	theoryR := map[Engine]string{
		DS: "2 (q=r)", DSMP8: "2 (q=r)", DSMP16: "2 (q=r)",
		HashRF: "2", BFHRF8: "1", BFHRF16: "1",
	}

	// Sweep vs r at n=100 (Table V sizes, scaled).
	var rPoints []SweepPoint
	for _, r := range []int{1000, 25000, 50000, 75000, 100000} {
		rPoints = append(rPoints, SweepPoint{dataset.VariableTrees(r), c.ScaleTrees(r)})
	}
	// Sweep vs n at r=1000 (Table IV sizes, scaled).
	var nPoints []SweepPoint
	for _, n := range []int{100, 250, 500, 750, 1000} {
		spec := dataset.VariableTaxa(n)
		nPoints = append(nPoints, SweepPoint{spec, c.ScaleTrees(spec.NumTrees)})
	}

	statsTab := tabfmt.New(
		"§VI.C — BFHRF runtime linearity vs taxa n (paper: R²=0.988/0.997, Pearson=0.994/0.999)",
		"Algorithm", "R-Squared", "Pearson")
	rep.Tables = append(rep.Tables, growth, statsTab)

	for _, engine := range c.engines() {
		var rx, ry []float64
		for _, p := range rPoints {
			res := c.RunPoint(engine, p.Spec, p.R)
			if res.Err == nil && res.Minutes > 0 {
				rx = append(rx, float64(res.R))
				ry = append(ry, res.Minutes)
			}
		}
		var nx, ny []float64
		for _, p := range nPoints {
			res := c.RunPoint(engine, p.Spec, p.R)
			if res.Err == nil && res.Minutes > 0 {
				nx = append(nx, float64(res.N))
				ny = append(ny, res.Minutes)
			}
		}
		kr := fitCell(rx, ry)
		kn := fitCell(nx, ny)
		growth.AddRow(string(engine), kr, kn, theoryR[engine], "2 (linear in practice)")

		if engine == BFHRF8 || engine == BFHRF16 {
			fit, errF := stats.FitLinear(nx, ny)
			pear, errP := stats.Pearson(nx, ny)
			if errF == nil && errP == nil {
				statsTab.AddRow(string(engine), fmt.Sprintf("%.3f", fit.R2), fmt.Sprintf("%.3f", pear))
			} else {
				statsTab.AddRow(string(engine), "-", "-")
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"exponents near 1 indicate linear scaling, near 2 quadratic; BFHRF should be ~1 vs r while HashRF and DS/DSMP trend ≥ ~2 (Table I)",
		"runtimes vs n are linear in practice for all engines despite the O(n²)-bits bound, matching §VI.C")
	return rep
}

func fitCell(xs, ys []float64) string {
	k, err := stats.GrowthExponent(xs, ys)
	if err != nil {
		return "-"
	}
	return fmt.Sprintf("%.2f", k)
}

// Accuracy regenerates the §III.C claim as a table: the maximum absolute
// disagreement in average RF between BFHRF and the DS/DSMP/HashRF/Day
// engines across a simulated collection. All cells must be 0.
func (c *Config) Accuracy() *Report {
	rep := &Report{ID: "AccuracyIIIC"}
	tab := tabfmt.New("§III.C — cross-engine agreement (max |Δ avg RF|)",
		"Dataset", "n", "R", "max|BFHRF−DS|", "max|BFHRF−DSMP|", "max|BFHRF−HashRF|")
	rep.Tables = append(rep.Tables, tab)
	for _, spec := range []dataset.Spec{dataset.Avian(), dataset.VariableTrees(1000)} {
		r := c.ScaleTrees(1000)
		dDS, dDSMP, dHRF, err := c.agreement(spec, r)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %v", spec.Name, err))
			tab.AddRow(spec.Name, spec.NumTaxa, r, "-", "-", "-")
			continue
		}
		tab.AddRow(spec.Name, spec.NumTaxa, r,
			fmt.Sprintf("%.2g", dDS), fmt.Sprintf("%.2g", dDSMP), fmt.Sprintf("%.2g", dHRF))
	}
	rep.Notes = append(rep.Notes, "all deltas must be 0: the BFH is collision-free, so no accuracy is traded for speed")
	return rep
}
