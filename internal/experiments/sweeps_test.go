package experiments

import (
	"strings"
	"testing"
)

func microConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Scale:       0.0005, // every sweep point floors to 8 trees
		QueryCap:    8,
		MemBudgetMB: 256,
		WorkDir:     t.TempDir(),
		Engines:     []Engine{DS, HashRF, BFHRF8},
	}
}

func render(t *testing.T, rep *Report) string {
	t.Helper()
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestAvianReport(t *testing.T) {
	c := microConfig(t)
	rep := c.Avian()
	out := render(t, rep)
	for _, want := range []string{"Fig. 1", "DS", "HashRF", "BFHRF8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Avian report missing %q", want)
		}
	}
	if rep.Tables[0].NumRows() != 3*4 {
		t.Errorf("rows = %d", rep.Tables[0].NumRows())
	}
}

func TestInsectReportHashRFDashes(t *testing.T) {
	c := microConfig(t)
	rep := c.Insect()
	out := render(t, rep)
	if !strings.Contains(out, "-") {
		t.Error("Insect report should contain '-' cells for HashRF")
	}
	foundNote := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "branch lengths") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Error("expected an unweighted-refusal note")
	}
}

func TestVarTaxaAndVarTreesReports(t *testing.T) {
	c := microConfig(t)
	for _, rep := range []*Report{c.VarTaxa(), c.VarTrees()} {
		out := render(t, rep)
		if !strings.Contains(out, "BFHRF8") {
			t.Errorf("%s report missing engine rows", rep.ID)
		}
		if rep.Tables[0].NumRows() == 0 {
			t.Errorf("%s report empty", rep.ID)
		}
	}
}

func TestComplexityReport(t *testing.T) {
	c := microConfig(t)
	c.Engines = []Engine{DS, BFHRF8} // keep it fast
	rep := c.Complexity()
	out := render(t, rep)
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "R-Squared") {
		t.Errorf("complexity report malformed:\n%s", out)
	}
	if len(rep.Tables) != 2 {
		t.Errorf("tables = %d, want 2", len(rep.Tables))
	}
}

func TestHeadlineReport(t *testing.T) {
	c := microConfig(t)
	rep := c.Headline()
	out := render(t, rep)
	if !strings.Contains(out, "BFHRF8 vs DS") {
		t.Errorf("headline report missing the DS comparison:\n%s", out)
	}
}

func TestAblationReport(t *testing.T) {
	c := microConfig(t)
	rep := c.Ablation()
	out := render(t, rep)
	for _, want := range []string{"compressed", "raw", "Worker scaling"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}

func TestDistribReport(t *testing.T) {
	c := microConfig(t)
	rep := c.Distrib()
	out := render(t, rep)
	if !strings.Contains(out, "MaxDelta") {
		t.Errorf("distrib report malformed:\n%s", out)
	}
	// Every delta cell must be 0.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 5 && (fields[0] == "1" || fields[0] == "2" || fields[0] == "4" || fields[0] == "local") {
			if fields[4] != "0" {
				t.Errorf("nonzero delta in distrib row: %s", line)
			}
		}
	}
}
