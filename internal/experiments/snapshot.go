package experiments

import (
	"fmt"

	"repro/internal/bfhsnap"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/memprof"
	"repro/internal/taxa"
)

// runSnapshotLoad measures the BFHRF-LOAD / BFHRF-REBUILD pair. REBUILD's
// measured region is the whole fresh-run cost the snapshot replaces:
// streaming the materialized reference file through the Newick parser,
// bipartition extraction, and the parallel hash build. LOAD's region is
// opening the epoch store and pinning its current epoch — the full
// decode-validate-adopt path over every part file, ending in a servable
// hash — against a store persisted once per (dataset, r) outside any
// measured region and reused across repetitions, exactly as an operator's
// saved snapshot is. Both engines build with identical options (auto
// backend: succinct in the huge-n regime), so the ratio isolates
// load-vs-rebuild, not a backend change.
func (c *Config) runSnapshotLoad(engine Engine, src *collection.File, path string, ts *taxa.Set, r int) (memprof.Measurement, float64, error) {
	opts := core.BuildOptions{Workers: workersOf(engine), RequireComplete: true}
	if engine == BFHRFREBUILD {
		m := memprof.Measure(func() error {
			_, err := core.Build(src, ts, opts)
			return err
		})
		return m, 1, m.Err
	}

	snapDir := path + ".snap"
	prep, err := bfhsnap.Open(snapDir)
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	if prep.Current() == 0 {
		h, err := core.Build(src, ts, opts)
		if err != nil {
			return memprof.Measurement{}, 1, err
		}
		if _, err := prep.SaveEpoch(h); err != nil {
			return memprof.Measurement{}, 1, err
		}
	}
	m := memprof.Measure(func() error {
		store, err := bfhsnap.Open(snapDir)
		if err != nil {
			return err
		}
		e, err := store.Pin()
		if err != nil {
			return err
		}
		defer e.Release()
		if got := e.Hash.NumTrees(); got != r {
			return fmt.Errorf("experiments: snapshot holds %d trees, expected %d", got, r)
		}
		return nil
	})
	return m, 1, m.Err
}
