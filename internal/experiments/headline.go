package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/tabfmt"
)

// Headline regenerates the abstract's headline comparisons: the speedup
// and memory reduction of BFHRF over the sequential baseline and over
// HashRF at the largest data point each can reach. The paper reports
// 8884× / 39× speedups and 26× / 22× memory reductions "for large data
// sets"; at reduced scale the ratios are smaller but must point the same
// way and grow with r.
func (c *Config) Headline() *Report {
	rep := &Report{ID: "Headline_Abstract"}
	tab := tabfmt.New(
		"Abstract headline — BFHRF vs baselines at the largest sweep point",
		"Comparison", "n", "R", "Speedup(×)", "Memory reduction(×)")
	rep.Tables = append(rep.Tables, tab)

	// The paper's headline point is the variable-trees sweep's top (DS) and
	// the largest HashRF-survivable point.
	rTop := c.ScaleTrees(100000)
	spec := dataset.VariableTrees(100000)

	bf := c.RunPoint(BFHRF8, spec, rTop)
	if bf.Err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("BFHRF8 failed: %v", bf.Err))
		return rep
	}
	ds := c.RunPoint(DS, spec, rTop)
	addRatio(tab, rep, "BFHRF8 vs DS (sequential)", bf, ds)
	dsmp := c.RunPoint(DSMP8, spec, rTop)
	addRatio(tab, rep, "BFHRF8 vs DSMP8", bf, dsmp)
	hrf := c.RunPoint(HashRF, spec, rTop)
	if hrf.Err != nil {
		// HashRF died at the top point (as at the paper's full scale);
		// fall back to the largest point it survives.
		rep.Notes = append(rep.Notes, fmt.Sprintf("HashRF at R=%d: %v", rTop, hrf.Err))
		for _, r := range []int{75000, 50000, 25000, 1000} {
			rs := c.ScaleTrees(r)
			hrf = c.RunPoint(HashRF, dataset.VariableTrees(r), rs)
			if hrf.Err == nil {
				bfAt := c.RunPoint(BFHRF8, dataset.VariableTrees(r), rs)
				addRatio(tab, rep, fmt.Sprintf("BFHRF8 vs HashRF (R=%d)", rs), bfAt, hrf)
				break
			}
		}
	} else {
		addRatio(tab, rep, "BFHRF8 vs HashRF", bf, hrf)
	}
	rep.Notes = append(rep.Notes,
		"paper headline (full scale, Python/C++): 8884× vs sequential, 39× vs HashRF; 26× and 22× memory",
		"ratios grow with scale — rerun with -scale 1 for the paper's sizes")
	return rep
}

func addRatio(tab *tabfmt.Table, rep *Report, label string, fast, slow RunResult) {
	if slow.Err != nil {
		tab.AddRow(label, fast.N, fast.R, "-", "-")
		rep.Notes = append(rep.Notes, fmt.Sprintf("%s: baseline failed: %v", label, slow.Err))
		return
	}
	speed := "-"
	if fast.Minutes > 0 {
		s := slow.Minutes / fast.Minutes
		speed = fmt.Sprintf("%.1f", s)
		if slow.Estimated {
			speed += "*"
		}
	}
	mem := "-"
	if fast.MemoryMB > 0 {
		mem = fmt.Sprintf("%.1f", slow.MemoryMB/fast.MemoryMB)
	}
	tab.AddRow(label, fast.N, fast.R, speed, mem)
}
