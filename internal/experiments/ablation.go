package experiments

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/memprof"
	"repro/internal/tabfmt"
	"repro/internal/taxa"
)

// Ablation measures the design choices DESIGN.md calls out:
//
//   - §IX key compression: hash build time and memory with raw vs
//     compressed keys, at growing n (compression wins more as bitmasks
//     get wider);
//   - worker scaling: BFHRF build+query wall time at 1/2/4/8/16 workers,
//     quantifying the paper's observed diminishing 8→16 returns;
//   - streaming vs materialized input: the cost of the collection.Source
//     abstraction.
func (c *Config) Ablation() *Report {
	rep := &Report{ID: "Ablation_Design"}

	// --- key compression ---------------------------------------------------
	comp := tabfmt.New("§IX ablation — raw vs compressed hash keys",
		"n", "R", "Keys", "Build(m)", "PeakMem(MB)", "KeyBytes")
	rep.Tables = append(rep.Tables, comp)
	for _, n := range []int{100, 500, 1000} {
		spec := dataset.VariableTaxa(n)
		r := c.ScaleTrees(spec.NumTrees)
		path, ts, err := c.materialize(spec, r)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ablation n=%d: %v", n, err))
			continue
		}
		for _, compress := range []bool{false, true} {
			src, err := collection.OpenFile(path)
			if err != nil {
				rep.Notes = append(rep.Notes, err.Error())
				continue
			}
			var h *core.FreqHash
			m := memprof.Measure(func() error {
				var err error
				// Both rows pin the map backend: §IX compares key
				// schemes within the string-keyed engine, and the
				// open-addressing default stores raw words only. The
				// backend itself is ablated in the table below.
				h, err = core.Build(src, ts, core.BuildOptions{
					RequireComplete: true,
					CompressKeys:    compress,
					Backend:         core.BackendMap,
				})
				return err
			})
			src.Close()
			if m.Err != nil {
				rep.Notes = append(rep.Notes, m.Err.Error())
				continue
			}
			label := "raw"
			if compress {
				label = "compressed"
			}
			comp.AddRow(n, r, label, fmt.Sprintf("%.4f", m.Minutes()),
				fmt.Sprintf("%.1f", m.PeakHeapMB()), keyBytesOf(h))
		}
	}

	// --- hash backend --------------------------------------------------------
	// Open-addressing vs map vs map+compressed on one workload, split by
	// phase: build wall time, then pure query passes over pre-extracted
	// splits (the same measured region as the BFHRF-OA/BFHRF-MAP perf
	// records), so the lookup cost the backend changes is visible apart
	// from parsing.
	back := tabfmt.New("Hash backend ablation — open-addressing vs map vs succinct",
		"Backend", "n", "R", "Build(m)", "Query(m)", "PeakMem(MB)", "Unique")
	rep.Tables = append(rep.Tables, back)
	bspec := dataset.Avian()
	br := c.ScaleTrees(14446)
	for _, bc := range []struct {
		label    string
		backend  core.Backend
		compress bool
	}{
		{"openaddr", core.BackendOpenAddressing, false},
		{"map", core.BackendMap, false},
		{"map+compressed", core.BackendMap, true},
		{"succinct", core.BackendSuccinct, false},
	} {
		path, ts, err := c.materialize(bspec, br)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			break
		}
		src, err := collection.OpenFile(path)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			break
		}
		var h *core.FreqHash
		mb := memprof.Measure(func() error {
			var err error
			h, err = core.Build(src, ts, core.BuildOptions{
				RequireComplete: true,
				CompressKeys:    bc.compress,
				Backend:         bc.backend,
			})
			return err
		})
		src.Close()
		if mb.Err != nil {
			rep.Notes = append(rep.Notes, mb.Err.Error())
			continue
		}
		splits, err := extractAll(path, ts)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			continue
		}
		mq := memprof.Measure(func() error {
			p := h.NewProber()
			for pass := 0; pass < 10; pass++ {
				for _, bs := range splits {
					if _, err := p.AverageRFOfSplits(bs, core.Plain); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if mq.Err != nil {
			rep.Notes = append(rep.Notes, mq.Err.Error())
			continue
		}
		back.AddRow(bc.label, bspec.NumTaxa, br,
			fmt.Sprintf("%.4f", mb.Minutes()), fmt.Sprintf("%.4f", mq.Minutes()),
			fmt.Sprintf("%.1f", mb.PeakHeapMB()), h.UniqueBipartitions())
	}

	// --- succinct backend at huge n -----------------------------------------
	// The regime the succinct arena exists for: raw keys of n/8 bytes.
	// Build each backend once at n=4096, then report the table footprint
	// and a pure query pass — the offline twin of the hugetaxa-n4096 perf
	// workload (BENCH_0004).
	huge := tabfmt.New("Succinct backend ablation — table footprint at huge n",
		"Backend", "n", "R", "Footprint(MB)", "Query(m)", "Unique")
	rep.Tables = append(rep.Tables, huge)
	hspec := dataset.HugeTaxa(4096)
	hr := c.ScaleTrees(hspec.NumTrees)
	for _, bc := range []struct {
		label   string
		backend core.Backend
	}{
		{"openaddr", core.BackendOpenAddressing},
		{"succinct", core.BackendSuccinct},
	} {
		path, ts, err := c.materialize(hspec, hr)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			break
		}
		src, err := collection.OpenFile(path)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			break
		}
		h, err := core.Build(src, ts, core.BuildOptions{
			RequireComplete: true,
			Backend:         bc.backend,
		})
		src.Close()
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			continue
		}
		splits, err := extractAll(path, ts)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			continue
		}
		mq := memprof.Measure(func() error {
			p := h.NewProber()
			for pass := 0; pass < 2; pass++ {
				for _, bs := range splits {
					if _, err := p.AverageRFOfSplits(bs, core.Plain); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if mq.Err != nil {
			rep.Notes = append(rep.Notes, mq.Err.Error())
			continue
		}
		huge.AddRow(bc.label, hspec.NumTaxa, hr,
			fmt.Sprintf("%.1f", float64(h.FootprintBytes())/(1<<20)),
			fmt.Sprintf("%.4f", mq.Minutes()), h.UniqueBipartitions())
	}

	// --- worker scaling ------------------------------------------------------
	scal := tabfmt.New("Worker scaling — BFHRF build+query wall time",
		"Workers", "n", "R", "Time(m)", "Speedup vs 1")
	rep.Tables = append(rep.Tables, scal)
	spec := dataset.VariableTrees(100000)
	r := c.ScaleTrees(50000)
	var base float64
	for _, w := range []int{1, 2, 4, 8, 16} {
		path, ts, err := c.materialize(spec, r)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			break
		}
		src, err := collection.OpenFile(path)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			break
		}
		qsrc, err := collection.OpenFile(path)
		if err != nil {
			src.Close()
			rep.Notes = append(rep.Notes, err.Error())
			break
		}
		m := memprof.Measure(func() error {
			h, err := core.Build(src, ts, core.BuildOptions{Workers: w, RequireComplete: true})
			if err != nil {
				return err
			}
			_, err = h.AverageRF(qsrc, core.QueryOptions{Workers: w, RequireComplete: true})
			return err
		})
		src.Close()
		qsrc.Close()
		if m.Err != nil {
			rep.Notes = append(rep.Notes, m.Err.Error())
			break
		}
		if w == 1 {
			base = m.Minutes()
		}
		speed := "-"
		if m.Minutes() > 0 {
			speed = fmt.Sprintf("%.2f", base/m.Minutes())
		}
		scal.AddRow(w, spec.NumTaxa, r, fmt.Sprintf("%.4f", m.Minutes()), speed)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("compression shrinks key storage most at large n; worker rows are meaningful only when GOMAXPROCS > 1 (this host: %d) — on a single hardware thread they measure goroutine overhead, not the paper's §VII.A scaling", runtime.GOMAXPROCS(0)))
	return rep
}

// extractAll parses every tree of the file at path and returns its
// bipartition set, retained so callers can run repeated query passes
// without re-parsing. Shared by the backend ablation and the
// BFHRF-OA/BFHRF-MAP perf engines.
func extractAll(path string, ts *taxa.Set) ([][]bipart.Bipartition, error) {
	src, err := collection.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	ex := &bipart.Extractor{Taxa: ts, RequireComplete: true}
	var splits [][]bipart.Bipartition
	for {
		t, err := src.Next()
		if err == io.EOF {
			return splits, nil
		}
		if err != nil {
			return nil, err
		}
		bs, err := ex.Extract(t)
		if err != nil {
			return nil, err
		}
		splits = append(splits, bs)
	}
}

func keyBytesOf(h *core.FreqHash) int {
	total := 0
	for _, e := range h.KeySizes() {
		total += e
	}
	return total
}
