// Package experiments is the reproduction harness: it regenerates every
// table and figure of the paper's evaluation section (Fig. 1, Fig. 2,
// Tables II–V, the §VI.C statistics, and an empirical check of Table I's
// complexity claims) from the simulated datasets.
//
// Every experiment follows the paper's protocol: the dataset is
// materialized to a Newick file, each engine reads that file exactly as the
// original tools read theirs (Q is R), and wall time plus peak heap are
// recorded per run. A scale factor shrinks the sweep points uniformly so
// the full suite finishes in minutes on a laptop; at scale 1 the sizes are
// the paper's.
package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/atomicio"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hashrf"
	"repro/internal/memprof"
	"repro/internal/newick"
	"repro/internal/seqrf"
	"repro/internal/taxa"
)

// Engine identifies one of the paper's six measured configurations.
type Engine string

// The engines of the paper's evaluation (§V): the sequential baseline, its
// 8- and 16-way parallelizations, HashRF, and BFHRF with 8 and 16 workers.
const (
	DS      Engine = "DS"
	DSMP8   Engine = "DSMP8"
	DSMP16  Engine = "DSMP16"
	HashRF  Engine = "HashRF"
	BFHRF8  Engine = "BFHRF8"
	BFHRF16 Engine = "BFHRF16"
	// BFHRFOA, BFHRFMAP, and BFHRFSUCC are the hash-backend ablation
	// trio, beyond the paper's six configurations: identical 8-worker
	// BFHRF runs that pin the frequency hash to the open-addressing
	// table, the legacy Go map, or the succinct compressed-key table.
	// Their measured region is repeated query passes over pre-extracted
	// bipartition sets (build and parsing excluded), so the ns/op ratios
	// isolate the per-lookup cost each backend changes, and the peak-heap
	// figure — table footprint plus in-region allocation — records the
	// succinct arena's memory win on the huge-n workloads.
	BFHRFOA   Engine = "BFHRF-OA"
	BFHRFMAP  Engine = "BFHRF-MAP"
	BFHRFSUCC Engine = "BFHRF-SUCC"
	// BFHRFCACHED and BFHRFNOCACHE are the query-cache A/B pair on the
	// replicate-heavy workload (see replicate.go): identical 8-worker
	// probe passes over a repeat-dominated query stream, with and without
	// the topology-fingerprint result cache. Build, parsing and extraction
	// are excluded from the measured region, so the CACHED/NOCACHE ratio
	// isolates what the cache saves on bootstrap-style traffic.
	BFHRFCACHED  Engine = "BFHRF-CACHED"
	BFHRFNOCACHE Engine = "BFHRF-NOCACHE"
	// BFHRFLOAD and BFHRFREBUILD are the snapshot A/B pair on the huge-n
	// workload (see snapshot.go): REBUILD measures what every fresh run
	// pays — streaming the reference file through parse, extraction, and
	// the parallel hash build — while LOAD measures restoring the same
	// hash from a persisted epoch (bfhsnap.Store), which installs the
	// stored slot arrays wholesale. Their ratio is the win `-save-bfh` /
	// `-load-bfh` buys on a reference collection that rarely changes.
	BFHRFLOAD    Engine = "BFHRF-LOAD"
	BFHRFREBUILD Engine = "BFHRF-REBUILD"
)

// AllEngines lists the engines in the paper's table order.
func AllEngines() []Engine {
	return []Engine{DS, DSMP8, DSMP16, HashRF, BFHRF8, BFHRF16}
}

// Config tunes the harness.
type Config struct {
	// Scale multiplies every sweep size (taxa counts are never scaled; tree
	// counts are). 1.0 reproduces the paper's sizes; the default harness
	// value 0.02 finishes the whole suite in minutes.
	Scale float64
	// Engines to run; nil means AllEngines().
	Engines []Engine
	// QueryCap bounds the number of query trees the quadratic baselines
	// (DS, DSMP) actually execute; when q exceeds the cap the runtime is
	// extrapolated linearly and flagged, mirroring the paper's "estimated
	// the rate of trees per minute" protocol for DS on large inputs.
	QueryCap int
	// MemBudgetMB bounds HashRF's all-vs-all matrix; exceeding it aborts
	// the run, standing in for the kernel OOM kills the paper reports.
	MemBudgetMB int
	// WorkDir holds materialized dataset files. Defaults to a temp dir.
	WorkDir string
	// Verbose emits per-run progress lines to stderr.
	Verbose bool
}

// DefaultConfig returns the fast-laptop defaults.
func DefaultConfig() Config {
	return Config{
		Scale:       0.02,
		QueryCap:    64,
		MemBudgetMB: 2048,
	}
}

func (c *Config) engines() []Engine {
	if len(c.Engines) == 0 {
		return AllEngines()
	}
	return c.Engines
}

func (c *Config) scale() float64 {
	if c.Scale <= 0 {
		return 0.02
	}
	return c.Scale
}

// ScaleTrees applies the scale factor to a tree count, keeping at least 8.
func (c *Config) ScaleTrees(r int) int {
	s := int(math.Round(float64(r) * c.scale()))
	if s < 8 {
		s = 8
	}
	return s
}

func (c *Config) workDir() (string, error) {
	if c.WorkDir != "" {
		return c.WorkDir, os.MkdirAll(c.WorkDir, 0o755)
	}
	dir, err := os.MkdirTemp("", "bfhrf-bench-")
	if err != nil {
		return "", err
	}
	c.WorkDir = dir
	return dir, nil
}

func (c *Config) logf(format string, args ...any) {
	if c.Verbose {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// RunResult is one measured (engine, dataset point) cell of a paper table.
type RunResult struct {
	Engine Engine
	// N and R are the taxa and tree counts of the data point.
	N, R int
	// Minutes is wall time in minutes (the paper's unit); Estimated marks
	// extrapolation from a query subsample.
	Minutes   float64
	Estimated bool
	// MemoryMB is the peak sampled heap in MiB.
	MemoryMB float64
	// Err is non-nil when the engine refused or aborted (HashRF on
	// unweighted input or over the matrix budget) — rendered as the
	// paper's "-" cells.
	Err error
}

// TimeCell renders the Minutes column like the paper ("-" for failures,
// "*" suffix for estimates).
func (r RunResult) TimeCell() string {
	if r.Err != nil {
		return "-"
	}
	s := fmt.Sprintf("%.3f", r.Minutes)
	if r.Estimated {
		s += "*"
	}
	return s
}

// MemCell renders the Memory column like the paper.
func (r RunResult) MemCell() string {
	if r.Err != nil {
		return "-"
	}
	return fmt.Sprintf("%.1f", r.MemoryMB)
}

// materialize writes the first r trees of spec to a Newick file in the
// work dir (cached across engines) and returns its path and catalogue.
func (c *Config) materialize(spec dataset.Spec, r int) (string, *taxa.Set, error) {
	dir, err := c.workDir()
	if err != nil {
		return "", nil, err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-r%d.nwk", spec.Name, r))
	ts := spec.Taxa()
	if _, err := os.Stat(path); err == nil {
		return path, ts, nil // cached
	}
	src, _ := spec.Source()
	head := &collection.Head{Src: src, N: r}
	f, err := atomicio.Create(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	opts := newick.WriteOptions{BranchLengths: !spec.Unweighted, Precision: 6}
	count := 0
	for {
		t, err := head.Next()
		if err != nil {
			break
		}
		if err := newick.Write(f, t, opts); err != nil {
			return "", nil, err
		}
		count++
	}
	if count != r {
		return "", nil, fmt.Errorf("experiments: materialized %d of %d trees for %s", count, r, spec.Name)
	}
	if err := f.Commit(); err != nil {
		return "", nil, err
	}
	return path, ts, nil
}

// RunPoint measures one engine on the first r trees of spec (Q = R, as in
// every experiment of the paper).
func (c *Config) RunPoint(engine Engine, spec dataset.Spec, r int) RunResult {
	res := RunResult{Engine: engine, N: spec.NumTaxa, R: r}
	c.logf("  %-8s n=%-5d r=%-7d ...", engine, spec.NumTaxa, r)
	start := time.Now()
	m, factor, err := c.MeasurePoint(engine, spec, r)
	if err != nil {
		res.Err = err
	} else {
		res.Minutes = m.Minutes() * factor
		res.Estimated = factor != 1
		res.MemoryMB = m.PeakHeapMB()
	}
	c.logf("  %-8s n=%-5d r=%-7d time=%s mem=%sMB (%.1fs elapsed)",
		engine, spec.NumTaxa, r, res.TimeCell(), res.MemCell(), time.Since(start).Seconds())
	return res
}

// MeasurePoint runs one engine on the first r trees of spec and returns
// the raw memprof measurement plus the extrapolation factor its wall time
// must be multiplied by to estimate the full run (1 when the run was
// exact, r/QueryCap when the quadratic baselines were subsampled). The
// perf sweep repeats this call and feeds the measurements into perfjson
// records; RunPoint wraps it into the paper's table cells.
func (c *Config) MeasurePoint(engine Engine, spec dataset.Spec, r int) (memprof.Measurement, float64, error) {
	path, ts, err := c.materialize(spec, r)
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	src, err := collection.OpenFile(path)
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	defer src.Close()

	switch engine {
	case DS, DSMP8, DSMP16:
		return c.runSeq(engine, src, path, ts, r)
	case HashRF:
		return c.runHashRF(src, ts)
	case BFHRF8, BFHRF16:
		return c.runBFHRF(engine, src, path, ts)
	case BFHRFOA, BFHRFMAP, BFHRFSUCC:
		return c.runBFHRFBackend(engine, src, path, ts)
	case BFHRFCACHED, BFHRFNOCACHE:
		return c.runBFHRFReplicate(engine, src, ts, spec)
	case BFHRFLOAD, BFHRFREBUILD:
		return c.runSnapshotLoad(engine, src, path, ts, r)
	default:
		return memprof.Measurement{}, 1, fmt.Errorf("experiments: unknown engine %q", engine)
	}
}

func workersOf(e Engine) int {
	switch e {
	case DS:
		return 1
	case DSMP8, BFHRF8, BFHRFOA, BFHRFMAP, BFHRFSUCC, BFHRFCACHED, BFHRFNOCACHE,
		BFHRFLOAD, BFHRFREBUILD:
		return 8
	case DSMP16, BFHRF16:
		return 16
	default:
		return 1
	}
}

// runSeq measures DS/DSMP. When r (= q) exceeds QueryCap, only the first
// QueryCap query trees are executed and the returned factor extrapolates
// the runtime (memory is not extrapolated: the reference structures are
// fully loaded either way, which is what dominates).
func (c *Config) runSeq(engine Engine, src *collection.File, path string, ts *taxa.Set, r int) (memprof.Measurement, float64, error) {
	qCap := c.QueryCap
	if qCap <= 0 || qCap > r {
		qCap = r
	}
	qsrc, err := collection.OpenFile(path)
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	defer qsrc.Close()
	q := &collection.Head{Src: qsrc, N: qCap}

	m := memprof.Measure(func() error {
		_, err := seqrf.AverageRF(q, src, seqrf.Options{Taxa: ts, Workers: workersOf(engine)})
		return err
	})
	if m.Err != nil {
		return m, 1, m.Err
	}
	factor := 1.0
	if qCap < r {
		factor = float64(r) / float64(qCap)
	}
	return m, factor, nil
}

func (c *Config) runHashRF(src *collection.File, ts *taxa.Set) (memprof.Measurement, float64, error) {
	budget := c.MemBudgetMB
	if budget <= 0 {
		budget = 2048
	}
	// Each triangle cell is 2 bytes.
	maxCells := budget * (1 << 20) / 2
	m := memprof.Measure(func() error {
		_, err := hashrf.AverageRF(src, hashrf.Options{
			Taxa:           ts,
			MaxMatrixCells: maxCells,
		})
		return err
	})
	return m, 1, m.Err
}

// backendQueryPasses is the number of full query passes the backend A/B
// engines execute inside the measured region. One pass over a scaled
// slice finishes in single-digit milliseconds — too quick for the
// comparator's 10% threshold to gate code rather than scheduler jitter —
// so the pass count lifts both engines into the tens-of-milliseconds
// band without changing their ratio.
const backendQueryPasses = 100

// hugeTaxaQueryPasses replaces backendQueryPasses once masks reach 4096
// taxa: each pass is two orders of magnitude more work per probe, so ten
// passes already put the measured region far beyond the comparator's
// noise band without stretching the sweep.
const hugeTaxaQueryPasses = 10

func backendOf(engine Engine) core.Backend {
	switch engine {
	case BFHRFMAP:
		return core.BackendMap
	case BFHRFSUCC:
		return core.BackendSuccinct
	default:
		return core.BackendOpenAddressing
	}
}

// runBFHRFBackend measures the BFHRF-OA / BFHRF-MAP / BFHRF-SUCC trio.
// The hash build and the query-tree parsing/extraction both happen before
// measurement starts: the engines differ only in the frequency-hash
// backend, so the recorded region is repeated AverageRFOfSplits passes
// over pre-extracted bipartition sets and the ns/op ratio is
// lookup-dominated. The pre-built table itself sits below the sampled
// baseline, so its footprint is folded into the peak-heap figure via
// MeasureWith — the record then reports what the backend actually holds,
// which is the number the succinct arena shrinks.
func (c *Config) runBFHRFBackend(engine Engine, src *collection.File, path string, ts *taxa.Set) (memprof.Measurement, float64, error) {
	h, err := core.Build(src, ts, core.BuildOptions{
		Workers:         workersOf(engine),
		RequireComplete: true,
		Backend:         backendOf(engine),
	})
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	splits, err := extractAll(path, ts)
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	passes := backendQueryPasses
	if ts.Len() >= 4096 {
		passes = hugeTaxaQueryPasses
	}
	m := memprof.MeasureWith(h.FootprintBytes, func() error {
		p := h.NewProber()
		for pass := 0; pass < passes; pass++ {
			for _, bs := range splits {
				if _, err := p.AverageRFOfSplits(bs, core.Plain); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return m, 1, m.Err
}

func (c *Config) runBFHRF(engine Engine, src *collection.File, path string, ts *taxa.Set) (memprof.Measurement, float64, error) {
	qsrc, err := collection.OpenFile(path)
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	defer qsrc.Close()
	m := memprof.Measure(func() error {
		h, err := core.Build(src, ts, core.BuildOptions{
			Workers:         workersOf(engine),
			RequireComplete: true,
		})
		if err != nil {
			return err
		}
		_, err = h.AverageRF(qsrc, core.QueryOptions{
			Workers:         workersOf(engine),
			RequireComplete: true,
		})
		return err
	})
	return m, 1, m.Err
}
