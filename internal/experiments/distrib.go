package experiments

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distrib"
	"repro/internal/memprof"
	"repro/internal/tabfmt"
	"repro/internal/taxa"
)

// Distrib measures the §VII.B multi-node extension against single-node
// BFHRF on the same workload: per-worker-count wall time and an exactness
// check (the sharded result must match the local one bit for bit). Workers
// run in-process over real localhost TCP, so the numbers include
// serialization and transport, not network latency.
func (c *Config) Distrib() *Report {
	rep := &Report{ID: "Distrib_VIIB"}
	tab := tabfmt.New("§VII.B — multi-node BFHRF (localhost TCP, real RPC path)",
		"Workers", "n", "R", "Time(m)", "MaxDelta vs local")
	rep.Tables = append(rep.Tables, tab)

	spec := dataset.VariableTrees(100000)
	r := c.ScaleTrees(25000)
	path, ts, err := c.materialize(spec, r)
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}

	// Local reference run.
	localRes := c.RunPoint(BFHRF8, spec, r)
	if localRes.Err != nil {
		rep.Notes = append(rep.Notes, localRes.Err.Error())
		return rep
	}
	localAvgs, err := localAverages(path, ts)
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}
	tab.AddRow("local", spec.NumTaxa, r, fmt.Sprintf("%.4f", localRes.Minutes), "0")

	for _, workers := range []int{1, 2, 4} {
		addrs := make([]string, workers)
		listeners := make([]interface{ Close() error }, workers)
		ok := true
		for i := range addrs {
			l, err := distrib.Listen("127.0.0.1:0")
			if err != nil {
				rep.Notes = append(rep.Notes, err.Error())
				ok = false
				break
			}
			listeners[i] = l
			addrs[i] = l.Addr().String()
		}
		if !ok {
			break
		}
		coord, err := distrib.Dial(addrs)
		if err != nil {
			rep.Notes = append(rep.Notes, err.Error())
			break
		}
		var got []float64
		m := memprof.Measure(func() error {
			refs, err := collection.OpenFile(path)
			if err != nil {
				return err
			}
			defer refs.Close()
			qs, err := collection.OpenFile(path)
			if err != nil {
				return err
			}
			defer qs.Close()
			if err := coord.Load(refs, ts, false); err != nil {
				return err
			}
			res, err := coord.AverageRF(qs)
			if err != nil {
				return err
			}
			got = make([]float64, len(res))
			for _, x := range res {
				got[x.Index] = x.AvgRF
			}
			return nil
		})
		coord.Close()
		for _, l := range listeners {
			l.Close()
		}
		if m.Err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("workers=%d: %v", workers, m.Err))
			continue
		}
		tab.AddRow(workers, spec.NumTaxa, r, fmt.Sprintf("%.4f", m.Minutes()),
			fmt.Sprintf("%.2g", maxDelta(got, localAvgs)))
	}
	rep.Notes = append(rep.Notes,
		"MaxDelta must be 0: sharded frequency sums fold exactly; time includes Newick serialization over RPC",
		"at laptop scale serialization dominates and each added worker adds query fan-out cost; the mode pays off when R exceeds one node's memory, which is its purpose (§VII.B)")
	return rep
}

// localAverages computes the single-node BFHRF averages for the exactness
// check.
func localAverages(path string, ts *taxa.Set) ([]float64, error) {
	refs, err := collection.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer refs.Close()
	qs, err := collection.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer qs.Close()
	h, err := core.Build(refs, ts, core.BuildOptions{RequireComplete: true})
	if err != nil {
		return nil, err
	}
	res, err := h.AverageRF(qs, core.QueryOptions{RequireComplete: true})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(res))
	for _, x := range res {
		out[x.Index] = x.AvgRF
	}
	return out, nil
}
