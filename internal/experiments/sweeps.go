package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/dataset"
	"repro/internal/tabfmt"
)

// Report is one regenerated paper artifact: its tables plus commentary.
type Report struct {
	ID     string // e.g. "Fig1_Avian", "TableV_Fig2_VarTrees"
	Tables []*tabfmt.Table
	Notes  []string
}

// WriteText renders the report (tables and notes) to w.
func (rep *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "== %s ==\n", rep.ID)
	for _, t := range rep.Tables {
		if err := t.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

// SaveCSV writes every table of the report as CSV files under dir.
func (rep *Report) SaveCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range rep.Tables {
		name := fmt.Sprintf("%s_%d.csv", rep.ID, i)
		f, err := atomicio.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// SweepPoint is one data point of a sweep: the first R trees of Spec.
type SweepPoint struct {
	Spec dataset.Spec
	R    int
}

// sweep measures every engine at every point and fills a runtime+memory
// table in the paper's layout (engine-major, like Tables III–V).
func (c *Config) sweep(id, title string, points []SweepPoint) *Report {
	tab := tabfmt.New(title, "Algorithm", "n", "R", "Time(m)", "Memory(MB)")
	rep := &Report{ID: id, Tables: []*tabfmt.Table{tab}}
	for _, engine := range c.engines() {
		for _, p := range points {
			res := c.RunPoint(engine, p.Spec, p.R)
			tab.AddRow(string(engine), res.N, res.R, res.TimeCell(), res.MemCell())
			if res.Err != nil {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s n=%d R=%d: %v", engine, res.N, p.R, res.Err))
			}
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("scale=%.3g of the paper's sizes; '*' marks runtimes extrapolated from the first %d queries (the paper's estimation protocol); '-' marks refused/aborted runs",
			c.scale(), c.QueryCap))
	return rep
}

// Avian regenerates Fig. 1: runtime and memory on the Avian dataset at
// r ∈ {1000, 5000, 10000, 14446} (scaled), each point being the first r
// trees of the collection.
func (c *Config) Avian() *Report {
	spec := dataset.Avian()
	var points []SweepPoint
	for _, r := range []int{1000, 5000, 10000, 14446} {
		points = append(points, SweepPoint{spec, c.ScaleTrees(r)})
	}
	return c.sweep("Fig1_Avian",
		"Fig. 1 — Avian data set (n=48): runtime and memory vs number of trees", points)
}

// Insect regenerates Table III: the Insect dataset at
// r ∈ {1000, 50000, 100000, 149278} (scaled). HashRF rows come out "-"
// because the data is unweighted, as in the paper (§VI.B).
func (c *Config) Insect() *Report {
	spec := dataset.Insect()
	var points []SweepPoint
	for _, r := range []int{1000, 50000, 100000, 149278} {
		points = append(points, SweepPoint{spec, c.ScaleTrees(r)})
	}
	return c.sweep("TableIII_Insect", "Table III — Insect data set (n=144)", points)
}

// VarTaxa regenerates Table IV: n ∈ {100, 250, 500, 750, 1000} at r = 1000
// (scaled).
func (c *Config) VarTaxa() *Report {
	var points []SweepPoint
	for _, n := range []int{100, 250, 500, 750, 1000} {
		spec := dataset.VariableTaxa(n)
		points = append(points, SweepPoint{spec, c.ScaleTrees(spec.NumTrees)})
	}
	return c.sweep("TableIV_VarTaxa", "Table IV — variable number of taxa (R=1000)", points)
}

// VarTrees regenerates Table V / Fig. 2: n=100 at
// r ∈ {1000, 25000, 50000, 75000, 100000} (scaled). At full scale HashRF's
// matrix exceeds the memory budget at the top point, reproducing the
// paper's kernel kill.
func (c *Config) VarTrees() *Report {
	var points []SweepPoint
	for _, r := range []int{1000, 25000, 50000, 75000, 100000} {
		points = append(points, SweepPoint{dataset.VariableTrees(r), c.ScaleTrees(r)})
	}
	return c.sweep("TableV_Fig2_VarTrees", "Table V / Fig. 2 — variable number of trees (n=100)", points)
}

// Datasets regenerates Table II, the dataset inventory.
func (c *Config) Datasets() *Report {
	tab := tabfmt.New("Table II — data sets", "Name", "Taxa n", "Trees R", "Type", "Source")
	tab.AddRow("Avian", 48, 14446, "Real→Sim", "MSC substitute for Jarvis et al. 2014")
	tab.AddRow("Insect", 144, 149278, "Real→Sim (unweighted)", "MSC substitute for Sayyari et al. 2017")
	tab.AddRow("Variable Trees, R", 100, "1000:100000", "Sim", "Yule + MSC (SimPhy-style)")
	tab.AddRow("Variable Species, n", "100:1000", 1000, "Sim", "Yule + MSC (SimPhy-style)")
	return &Report{ID: "TableII_Datasets", Tables: []*tabfmt.Table{tab}, Notes: []string{
		"real collections are substituted by multispecies-coalescent simulations with matching n and r (see DESIGN.md)",
	}}
}
