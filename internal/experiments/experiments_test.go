package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func tinyConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Scale:       0.002, // r points become tens to a couple hundred trees
		QueryCap:    16,
		MemBudgetMB: 512,
		WorkDir:     t.TempDir(),
	}
}

func TestRunPointAllEngines(t *testing.T) {
	c := tinyConfig(t)
	spec := dataset.VariableTrees(1000)
	for _, e := range AllEngines() {
		res := c.RunPoint(e, spec, 20)
		if res.Err != nil {
			t.Errorf("%s failed: %v", e, res.Err)
			continue
		}
		if res.Minutes < 0 || res.MemoryMB < 0 {
			t.Errorf("%s: nonsensical measurement %+v", e, res)
		}
		if res.N != 100 || res.R != 20 {
			t.Errorf("%s: wrong point recorded: %+v", e, res)
		}
	}
}

func TestRunPointUnknownEngine(t *testing.T) {
	c := tinyConfig(t)
	res := c.RunPoint(Engine("Bogus"), dataset.VariableTrees(1000), 10)
	if res.Err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestDSExtrapolationFlag(t *testing.T) {
	c := tinyConfig(t)
	c.QueryCap = 5
	res := c.RunPoint(DS, dataset.VariableTrees(1000), 20)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Estimated {
		t.Error("runtime should be flagged as extrapolated when q > QueryCap")
	}
	if !strings.HasSuffix(res.TimeCell(), "*") {
		t.Errorf("TimeCell should carry '*': %q", res.TimeCell())
	}
}

func TestHashRFRefusesInsect(t *testing.T) {
	// Insect is unweighted; HashRF must refuse it, rendering "-" like the
	// paper's Table III.
	c := tinyConfig(t)
	res := c.RunPoint(HashRF, dataset.Insect(), 12)
	if res.Err == nil {
		t.Fatal("HashRF must refuse unweighted input")
	}
	if res.TimeCell() != "-" || res.MemCell() != "-" {
		t.Errorf("failure cells = %q/%q, want -/-", res.TimeCell(), res.MemCell())
	}
}

func TestHashRFMatrixBudget(t *testing.T) {
	c := tinyConfig(t)
	c.MemBudgetMB = 0 // force the default
	cSmall := c
	cSmall.MemBudgetMB = 1 // 1 MiB: ~500k cells → r=1500 overflows
	res := cSmall.RunPoint(HashRF, dataset.VariableTrees(100000), 1500)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "simulated OOM") {
		t.Errorf("expected simulated OOM, got %v", res.Err)
	}
}

func TestMaterializeCaches(t *testing.T) {
	c := tinyConfig(t)
	spec := dataset.VariableTrees(1000)
	p1, _, err := c.materialize(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := c.materialize(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("materialize should cache")
	}
}

func TestDatasetsReport(t *testing.T) {
	c := tinyConfig(t)
	rep := c.Datasets()
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Avian", "Insect", "14446", "149278"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestAccuracyReportAllZero(t *testing.T) {
	c := tinyConfig(t)
	rep := c.Accuracy()
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "0") {
		t.Errorf("accuracy report malformed:\n%s", out)
	}
	// No failure notes beyond the standard ones.
	for _, n := range rep.Notes {
		if strings.Contains(n, "error") {
			t.Errorf("unexpected failure note: %s", n)
		}
	}
}

func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke test in -short mode")
	}
	c := tinyConfig(t)
	c.Engines = []Engine{DS, HashRF, BFHRF8}
	rep := c.Avian()
	if len(rep.Tables) != 1 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	if rep.Tables[0].NumRows() != 3*4 {
		t.Errorf("rows = %d, want 12", rep.Tables[0].NumRows())
	}
	if err := rep.SaveCSV(t.TempDir()); err != nil {
		t.Errorf("SaveCSV: %v", err)
	}
}

func TestScaleTreesFloor(t *testing.T) {
	c := Config{Scale: 0.0001}
	if got := c.ScaleTrees(1000); got != 8 {
		t.Errorf("ScaleTrees floor = %d, want 8", got)
	}
	c = Config{Scale: 1}
	if got := c.ScaleTrees(14446); got != 14446 {
		t.Errorf("ScaleTrees identity = %d", got)
	}
}
