package experiments

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/memprof"
)

// TestPaperOrderingShape asserts the paper's §VI ordering as a test, not
// only as a bench: at a vartrees point, BFHRF finishes no later than the
// sequential baseline and peaks no higher than HashRF. The point (r=3000,
// n=100) is the smallest where both margins are comfortable — BFHRF's
// wall is ~50× under DS's estimate, and HashRF's O(r²) matrix (~9 MB)
// clears BFHRF's hash (~5 MB) — so scheduler noise cannot flip either
// inequality. Medians of three runs absorb the rest.
func TestPaperOrderingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape measurement in -short mode")
	}
	c := Config{
		Scale:       1, // r is given directly; no further shrinking
		QueryCap:    64,
		MemBudgetMB: 512,
		WorkDir:     t.TempDir(),
	}
	spec := dataset.VariableTrees(5000)
	const r = 3000

	medianHeap := func(e Engine) float64 {
		t.Helper()
		heaps := make([]float64, 0, 3)
		for i := 0; i < 3; i++ {
			m, _, err := c.MeasurePoint(e, spec, r)
			if err != nil {
				t.Fatalf("%s: %v", e, err)
			}
			heaps = append(heaps, m.PeakHeapMB())
		}
		sort.Float64s(heaps)
		return heaps[1]
	}

	// Wall time: BFHRF8 actual vs DS (extrapolated from QueryCap queries,
	// the paper's own estimation protocol).
	bfTime, _, err := c.MeasurePoint(BFHRF8, spec, r)
	if err != nil {
		t.Fatal(err)
	}
	dsRes := c.RunPoint(DS, spec, r)
	if dsRes.Err != nil {
		t.Fatal(dsRes.Err)
	}
	if bf, ds := bfTime.Minutes(), dsRes.Minutes; bf > ds {
		t.Errorf("BFHRF8 wall %.4f min exceeds DS wall %.4f min — the paper's §VI time ordering is violated", bf, ds)
	}

	// Peak heap: BFHRF8 vs HashRF, median of three.
	bfHeap := medianHeap(BFHRF8)
	hrfHeap := medianHeap(HashRF)
	if bfHeap > hrfHeap {
		t.Errorf("BFHRF8 peak heap %.2f MB exceeds HashRF %.2f MB — the paper's §VI memory ordering is violated", bfHeap, hrfHeap)
	}
}

// TestShapeUsesRealMeasurements guards the shape test's foundation: the
// raw measurement path must report positive wall time and a factor of 1
// for the hash engines (their runs are never extrapolated).
func TestShapeUsesRealMeasurements(t *testing.T) {
	c := tinyConfig(t)
	m, factor, err := c.MeasurePoint(BFHRF8, dataset.VariableTrees(1000), 20)
	if err != nil {
		t.Fatal(err)
	}
	if factor != 1 {
		t.Errorf("BFHRF factor = %v, want 1", factor)
	}
	if m.Wall <= 0 {
		t.Errorf("Wall = %v", m.Wall)
	}
	var ms []memprof.Measurement
	for i := 0; i < 2; i++ {
		m, _, err := c.MeasurePoint(BFHRF8, dataset.VariableTrees(1000), 20)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	if err := memprof.Err(ms); err != nil {
		t.Fatal(err)
	}
}
