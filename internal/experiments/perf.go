package experiments

import (
	"fmt"
	"runtime/debug"

	"repro/internal/dataset"
	"repro/internal/memprof"
	"repro/internal/perfjson"
)

// PerfWorkload is one entry of the experiment index that the benchmark
// trajectory tracks: a named data point plus the engines measured on it.
// The ID is the stable key baselines are matched by, so it encodes the
// dataset and its full-scale size, never anything run-dependent.
type PerfWorkload struct {
	ID   string
	Spec dataset.Spec
	// R is the full-scale tree count; the config's scale factor shrinks
	// it at run time exactly as in the paper sweeps.
	R       int
	Engines []Engine
}

// perfEngines are the four engine families of the paper's evaluation; the
// 16-way variants track the same code paths as the 8-way ones, so the
// trajectory measures one representative of each family.
var perfEngines = []Engine{DS, DSMP8, HashRF, BFHRF8}

// avianEngines adds the hash-backend A/B pair (BFHRF-OA vs BFHRF-MAP) to
// the paper families on the avian point: the trajectory's record of the
// open-addressing table's query-phase advantage over the legacy map.
var avianEngines = []Engine{DS, DSMP8, HashRF, BFHRF8, BFHRFOA, BFHRFMAP}

// hugeTaxaEngines is the succinct-backend ablation pair on the huge-n
// workloads: identical probe passes with raw-word keys (BFHRF-OA) and
// compressed arena keys (BFHRF-SUCC), recording the peak-heap-vs-ns/op
// trade once raw keys are 512+ bytes.
var hugeTaxaEngines = []Engine{BFHRFOA, BFHRFSUCC}

// hugeTaxa4096Engines adds the snapshot A/B pair (BFHRF-LOAD vs
// BFHRF-REBUILD) on the n=4096 point: the trajectory's record of what
// loading a persisted epoch saves over rebuilding from the Newick file —
// the workload where both the build (wide masks) and the saved tables
// (compressed succinct arena) are substantial.
var hugeTaxa4096Engines = []Engine{BFHRFOA, BFHRFSUCC, BFHRFLOAD, BFHRFREBUILD}

// PerfIndex is the experiment index of the benchmark trajectory: one
// point per dataset family, sized so that at the default scale every
// measured operation is tens to hundreds of milliseconds — big enough
// that the comparator's 10% threshold gates code, not scheduler jitter —
// while the whole sweep stays under a minute. The quadratic baselines are
// measured at moderate r (their cost grows as r²); the hash engines get
// an additional large-r point the baselines could not afford. HashRF is
// omitted from the insect workload because it refuses unweighted input
// (§VI.B) — a refusal is not a measurement.
func PerfIndex() []PerfWorkload {
	return []PerfWorkload{
		{ID: "avian-n48-r14446", Spec: dataset.Avian(), R: 14446, Engines: avianEngines},
		{ID: "insect-n144-r10000", Spec: dataset.Insect(), R: 10000, Engines: []Engine{DS, DSMP8, BFHRF8}},
		{ID: "vartaxa-n1000-r1000", Spec: dataset.VariableTaxa(1000), R: 1000, Engines: perfEngines},
		// The huge-n points: raw bipartition keys are 512 and 1024 bytes,
		// so the reference table's key storage dominates the heap and the
		// succinct backend's compressed arena is measured against the
		// open-addressing raw-word arena (see EXPERIMENTS.md, BENCH_0004).
		{ID: "hugetaxa-n4096-r1000", Spec: dataset.HugeTaxa(4096), R: 1000, Engines: hugeTaxa4096Engines},
		{ID: "hugetaxa-n8192-r1000", Spec: dataset.HugeTaxa(8192), R: 1000, Engines: hugeTaxaEngines},
		{ID: "vartrees-n100-r10000", Spec: dataset.VariableTrees(10000), R: 10000, Engines: perfEngines},
		{ID: "vartrees-n100-r50000", Spec: dataset.VariableTrees(50000), R: 50000, Engines: []Engine{HashRF, BFHRF8}},
		// The replicate-heavy point: a repeat-dominated query stream over a
		// high-discordance reference table far larger than cache, where the
		// query-cache A/B pair records the dedupe win (see replicate.go).
		// Only the hash engines run here — the stream's 50k instances are
		// pointless for the quadratic baselines.
		{ID: "replicate-n100-r2500000", Spec: dataset.Replicate(2500000), R: 2500000, Engines: []Engine{BFHRFCACHED, BFHRFNOCACHE}},
	}
}

// PerfSweep measures every workload of the experiment index reps times
// per engine and returns the aggregated benchmark suite. Runs are exact:
// the quadratic baselines' query subsampling is disabled, so the recorded
// nanoseconds are measured, never extrapolated. Provenance fields (tool,
// git commit, timestamp) are left for the caller to stamp — the sweep
// itself stays deterministic apart from the timings.
//
// An engine failure aborts the sweep with an error: a benchmark that
// silently skips a workload would let the comparator's missing-workload
// gate pass vacuously on the next run.
func (c *Config) PerfSweep(reps int) (*perfjson.Suite, error) {
	if reps < 1 {
		reps = 1
	}
	exact := *c
	exact.QueryCap = 0 // qCap <= 0 means "run every query": no extrapolation

	// Flatten the index into cells so repetitions can be interleaved:
	// pass p measures every cell once before any cell gets pass p+1. A
	// transient noise burst (co-tenant, GC of another process, thermal
	// dip) then slows at most one repetition of each cell instead of
	// every repetition of one cell, which is exactly the shape the
	// median/min comparator absorbs. Pass 0 is a discarded warmup that
	// settles the page cache, CPU frequency, and heap before anything is
	// recorded.
	type cell struct {
		w  PerfWorkload
		e  Engine
		r  int
		ms []memprof.Measurement
	}
	var cells []cell
	for _, w := range PerfIndex() {
		engines := w.Engines
		if len(c.Engines) > 0 {
			engines = intersectEngines(w.Engines, c.Engines)
		}
		r := c.ScaleTrees(w.R)
		for _, e := range engines {
			cells = append(cells, cell{w: w, e: e, r: r})
		}
	}
	for pass := 0; pass <= reps; pass++ {
		for i := range cells {
			cl := &cells[i]
			if pass == 1 {
				c.logf("perf %-22s %-8s r=%-6d reps=%d", cl.w.ID, cl.e, cl.r, reps)
			}
			m, _, err := exact.MeasurePoint(cl.e, cl.w.Spec, cl.r)
			if err != nil {
				return nil, fmt.Errorf("experiments: perf sweep %s/%s pass %d: %w", cl.w.ID, cl.e, pass, err)
			}
			if pass > 0 {
				cl.ms = append(cl.ms, m)
			}
			// Inter-cell barrier: return the cell's heap to the OS so a
			// large workload (the huge-n tables reach hundreds of MB)
			// cannot bleed allocator state, RSS, or GC pacing into the
			// next cell's measured region.
			debug.FreeOSMemory()
		}
	}

	suite := &perfjson.Suite{Schema: perfjson.SchemaVersion, Scale: c.scale()}
	for _, cl := range cells {
		suite.Records = append(suite.Records,
			perfjson.FromMeasurements(cl.w.ID, string(cl.e), cl.w.Spec.NumTaxa, cl.r, workersOf(cl.e), cl.ms))
	}
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	return suite, nil
}

func intersectEngines(all, want []Engine) []Engine {
	set := make(map[Engine]bool, len(want))
	for _, e := range want {
		set[e] = true
	}
	var out []Engine
	for _, e := range all {
		if set[e] {
			out = append(out, e)
		}
	}
	return out
}
