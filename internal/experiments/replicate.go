package experiments

// The replicate-heavy workload: real comparative-phylogenetics query
// traffic (bootstrap replicates, MCMC posterior samples) is dominated by
// exact topological repeats, which the BFHRF-CACHED / BFHRF-NOCACHE A/B
// pair models as a query stream that cycles through a small set of
// distinct perturbed topologies many times. Both engines run the same
// probe code over the same pre-extracted bipartition sets against the
// same open-addressing hash; the only difference is a fresh
// core.QueryCache attached to the CACHED prober — so the ns/op ratio is
// exactly the cache's saving at a replicateDistinct/replicateQueries hit
// rate, with the fingerprint cost honestly paid on every query.

import (
	"fmt"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/memprof"
	"repro/internal/taxa"
)

const (
	// replicateDistinct is the number of distinct query topologies; the
	// stream cycles through them, so the steady-state cache hit rate is
	// 1 − replicateDistinct/replicateQueries (≈ 99.5%). It is sized so
	// the distinct sets' probed table slots overflow the L2 cache — a
	// handful of sets would hand the uncached engine an implicit cache
	// via pure temporal locality and understate the dedupe win on real
	// posterior-sample traffic — while the cached engine's per-query
	// footprint (one contiguous bipartition slice plus the fingerprint
	// scratch) stays cache-resident.
	replicateDistinct = 256
	// replicateQueries is the total query instances per measured pass.
	replicateQueries = 50000
	// replicateMoves is the NNI perturbation depth of each distinct
	// topology relative to its reference base tree.
	replicateMoves = 3
)

// runBFHRFReplicate measures the BFHRF-CACHED / BFHRF-NOCACHE pair. The
// hash build and the query extraction happen before measurement starts;
// the measured region is one pass over the repeat-dominated stream via
// Prober.AverageRFOfSplits. The CACHED engine constructs its cache inside
// the measured region, so every pass pays the same replicateDistinct cold
// misses before the repeats start hitting — no warm state leaks between
// repetitions.
func (c *Config) runBFHRFReplicate(engine Engine, src *collection.File, ts *taxa.Set, spec dataset.Spec) (memprof.Measurement, float64, error) {
	h, err := core.Build(src, ts, core.BuildOptions{
		Workers:         workersOf(engine),
		RequireComplete: true,
		Backend:         core.BackendOpenAddressing,
	})
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	distinct, err := replicateSplits(spec, ts)
	if err != nil {
		return memprof.Measurement{}, 1, err
	}
	// The stream cycles the distinct topologies; repeats reference the
	// same extracted slice, exactly as repeated parses of one replicate
	// would yield identical bipartition sets.
	stream := make([][]bipart.Bipartition, replicateQueries)
	for i := range stream {
		stream[i] = distinct[i%len(distinct)]
	}
	m := memprof.Measure(func() error {
		p := h.NewProber()
		if engine == BFHRFCACHED {
			p.SetCache(core.NewQueryCache(0, 0))
		}
		for _, bs := range stream {
			if _, err := p.AverageRFOfSplits(bs, core.Plain); err != nil {
				return err
			}
		}
		return nil
	})
	return m, 1, m.Err
}

// replicateSplits generates the distinct query topologies (NNI
// perturbations of the dataset's first reference trees) and extracts
// their bipartition sets.
func replicateSplits(spec dataset.Spec, ts *taxa.Set) ([][]bipart.Bipartition, error) {
	qs, err := spec.QuerySet(replicateDistinct, replicateMoves)
	if err != nil {
		return nil, err
	}
	ex := &bipart.Extractor{Taxa: ts, RequireComplete: true}
	out := make([][]bipart.Bipartition, len(qs))
	for i, t := range qs {
		bs, err := ex.Extract(t)
		if err != nil {
			return nil, fmt.Errorf("experiments: replicate query %d: %w", i, err)
		}
		out[i] = bs
	}
	return out, nil
}
