package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestAbortLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("partial"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("aborted write clobbered target: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp file left behind: %d entries", len(entries))
	}
}

func TestDoubleCommitRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err == nil {
		t.Fatal("second Commit succeeded")
	}
}

func TestInjectedCommitFault(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointOutputWrite, Kind: faultinject.KindError, Hit: 1,
	})
	err := WriteFile(path, []byte("new"))
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("commit fault not injected: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("failed commit clobbered target: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("failed commit littered: %d entries", len(entries))
	}
}
