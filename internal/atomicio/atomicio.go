// Package atomicio writes files crash-safely: content goes to a temp file
// in the destination directory, is fsync'd, and is renamed over the target
// in one step, so readers never observe a half-written result and a crash
// mid-write leaves the previous version intact. Every place a result lands
// on disk (bfhrf output files, rfbench CSV/JSON records, materialized
// datasets, checkpoint finalization) goes through this package.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// File is an in-progress atomic write. Write into it like a regular file,
// then Commit to publish (fsync + rename) or Close to abort (the target
// is untouched either way until Commit returns nil).
type File struct {
	f         *os.File
	path, tmp string
	committed bool
}

// Create begins an atomic write of path. The temp file lives next to the
// target so the final rename stays within one filesystem.
func Create(path string) (*File, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &File{f: f, path: path, tmp: f.Name()}, nil
}

// Write implements io.Writer.
func (a *File) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit fsyncs the temp file, renames it over the target, and fsyncs the
// directory so the rename itself survives a crash. After Commit, Close is
// a no-op.
func (a *File) Commit() error {
	if a.committed {
		return fmt.Errorf("atomicio: %s: already committed", a.path)
	}
	if err := faultinject.Hit(faultinject.PointOutputWrite); err != nil {
		a.Close()
		return fmt.Errorf("atomicio: %s: %w", a.path, err)
	}
	if err := a.f.Sync(); err != nil {
		a.Close()
		return fmt.Errorf("atomicio: syncing %s: %w", a.tmp, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.tmp)
		return fmt.Errorf("atomicio: closing %s: %w", a.tmp, err)
	}
	if err := os.Rename(a.tmp, a.path); err != nil {
		os.Remove(a.tmp)
		return fmt.Errorf("atomicio: %w", err)
	}
	a.committed = true
	syncDir(filepath.Dir(a.path))
	return nil
}

// Close aborts an uncommitted write, removing the temp file. It is safe
// (and conventional, via defer) to call after Commit.
func (a *File) Close() error {
	if a.committed {
		return nil
	}
	a.committed = true
	err := a.f.Close()
	if rmErr := os.Remove(a.tmp); err == nil {
		err = rmErr
	}
	return err
}

// WriteFile atomically replaces path with data (the crash-safe
// counterpart of os.WriteFile).
func WriteFile(path string, data []byte) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("atomicio: writing %s: %w", path, err)
	}
	return f.Commit()
}

// syncDir best-effort fsyncs a directory so a just-renamed entry is
// durable. Some filesystems reject directory fsync; that is not an error
// worth failing a completed write over.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
