package obs

import (
	"strings"
	"testing"
)

func TestBuildInfoNeverEmpty(t *testing.T) {
	version, revision := BuildInfo()
	if version == "" || revision == "" {
		t.Errorf("BuildInfo = %q, %q; want non-empty fallbacks", version, revision)
	}
}

func TestVersionLine(t *testing.T) {
	line := VersionLine("bfhrfd")
	if !strings.HasPrefix(line, "bfhrfd ") || !strings.Contains(line, "revision") {
		t.Errorf("VersionLine = %q", line)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	g := RegisterBuildInfo(r)
	if g.Value() != 1 {
		t.Errorf("build info gauge = %g, want 1", g.Value())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "bfhrf_build_info{") ||
		!strings.Contains(out, `revision="`) || !strings.Contains(out, `version="`) {
		t.Errorf("exposition missing build info labels:\n%s", out)
	}
}
