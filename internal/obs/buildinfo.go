package obs

import (
	"fmt"
	"runtime/debug"
)

// Build identity: the module version and VCS revision stamped by the Go
// toolchain, surfaced in three places that must agree — the -version flag
// of every binary, the bfhrf_build_info gauge on /metrics, and (via
// perfjson.GitCommit) the offline BENCH_*.json records. Agreement is what
// lets a runtime latency regression be matched to the exact commit whose
// benchmark record first showed it.

// BuildInfo returns the module version and VCS revision, with "unknown"
// for anything the build did not stamp (e.g. test binaries).
func BuildInfo() (version, revision string) {
	version, revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, revision
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	modified := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if modified && revision != "unknown" {
		revision += "-dirty"
	}
	return version, revision
}

// VersionLine formats the -version output for a binary.
func VersionLine(tool string) string {
	version, revision := BuildInfo()
	return fmt.Sprintf("%s %s (revision %s)", tool, version, revision)
}

// RegisterBuildInfo publishes the constant-1 build-info gauge, carrying
// version and revision as labels, into r (Default when nil).
func RegisterBuildInfo(r *Registry) *GaugeMetric {
	if r == nil {
		r = Default
	}
	version, revision := BuildInfo()
	g := r.Gauge("bfhrf_build_info",
		"Build identity: constant 1, labeled with module version and VCS revision.",
		L("version", version), L("revision", revision))
	g.Set(1)
	return g
}
