package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeCollector polls runtime/metrics into the registry so /metrics
// exposes process health next to the application families: goroutine
// count, heap footprint, GC cycles, and the GC-pause and scheduling-
// latency distributions (as quantile gauges — the runtime's histograms
// have runtime-chosen bucket layouts, so fixed-bucket re-observation
// would distort them; quantiles carry the operational signal: "are GC
// pauses eating my tail latency").
//
// The sampled metric names are resolved against metrics.All at
// construction, so a runtime that renames or drops a metric (they are
// versioned by Go release) degrades to publishing the supported subset
// instead of reading garbage.

// runtimeQuantiles are the published distribution cuts.
var runtimeQuantiles = []float64{0.5, 0.9, 0.99}

// runtimeSample maps one runtime/metrics name to a registry family.
type runtimeSample struct {
	// names are tried in order; the first one the runtime supports wins
	// (e.g. GC pauses moved from /gc/pauses to /sched/pauses/total/gc).
	names  []string
	metric string
	help   string
}

var runtimeSamples = []runtimeSample{
	{
		names:  []string{"/sched/goroutines:goroutines"},
		metric: "bfhrf_go_goroutines",
		help:   "Live goroutines (runtime/metrics /sched/goroutines).",
	},
	{
		names:  []string{"/memory/classes/heap/objects:bytes"},
		metric: "bfhrf_go_heap_objects_bytes",
		help:   "Bytes occupied by live heap objects plus dead objects not yet swept (runtime/metrics).",
	},
	{
		names:  []string{"/memory/classes/total:bytes"},
		metric: "bfhrf_go_mem_total_bytes",
		help:   "Total bytes of memory mapped by the Go runtime (runtime/metrics).",
	},
	{
		names:  []string{"/gc/cycles/total:gc-cycles"},
		metric: "bfhrf_go_gc_cycles",
		help:   "Completed GC cycles since process start (runtime/metrics).",
	},
	{
		names:  []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"},
		metric: "bfhrf_go_gc_pause_seconds",
		help:   "Distribution of stop-the-world GC pause latencies, as quantile gauges (runtime/metrics).",
	},
	{
		names:  []string{"/sched/latencies:seconds"},
		metric: "bfhrf_go_sched_latency_seconds",
		help:   "Distribution of goroutine scheduling latencies, as quantile gauges (runtime/metrics).",
	},
}

// RuntimeCollector owns the background polling loop.
type RuntimeCollector struct {
	reg      *Registry
	samples  []metrics.Sample
	resolved []runtimeSample // parallel to samples
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// StartRuntimeCollector resolves the supported runtime metrics, polls
// them into reg (Default when nil) immediately and then every interval,
// and returns the collector; call Stop to terminate the loop. interval
// defaults to 5s when non-positive.
func StartRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	if reg == nil {
		reg = Default
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	supported := make(map[string]bool)
	for _, d := range metrics.All() {
		supported[d.Name] = true
	}
	c := &RuntimeCollector{
		reg:  reg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, rs := range runtimeSamples {
		for _, name := range rs.names {
			if supported[name] {
				c.samples = append(c.samples, metrics.Sample{Name: name})
				c.resolved = append(c.resolved, rs)
				break
			}
		}
	}
	c.Collect()
	go c.loop(interval)
	return c
}

// Stop terminates the polling loop and waits for the in-flight poll.
// Idempotent.
func (c *RuntimeCollector) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

func (c *RuntimeCollector) loop(interval time.Duration) {
	defer close(c.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.Collect()
		}
	}
}

// Collect performs one poll: reads every resolved runtime metric and
// publishes it. Exposed so tests (and callers wanting a fresh snapshot
// right before a scrape) can poll synchronously.
func (c *RuntimeCollector) Collect() {
	if len(c.samples) == 0 {
		return
	}
	metrics.Read(c.samples)
	for i, s := range c.samples {
		rs := c.resolved[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			c.reg.Gauge(rs.metric, rs.help).Set(float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			c.reg.Gauge(rs.metric, rs.help).Set(s.Value.Float64())
		case metrics.KindFloat64Histogram:
			c.publishQuantiles(rs, s.Value.Float64Histogram())
		}
	}
}

// publishQuantiles reduces a runtime histogram to quantile gauges plus a
// max gauge (the highest non-empty bucket's upper bound).
func (c *RuntimeCollector) publishQuantiles(rs runtimeSample, h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	var total uint64
	for _, n := range h.Counts {
		total += n
	}
	for _, q := range runtimeQuantiles {
		c.reg.Gauge(rs.metric, rs.help, L("quantile", formatFloat(q))).
			Set(histQuantile(h, total, q))
	}
	maxV := 0.0
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			maxV = bucketBound(h, i)
			break
		}
	}
	c.reg.Gauge(rs.metric, rs.help, L("quantile", "max")).Set(maxV)
}

// histQuantile returns the upper bound of the bucket containing the q-th
// quantile of h, 0 when the histogram is empty.
func histQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, n := range h.Counts {
		cum += n
		if cum > target {
			return bucketBound(h, i)
		}
	}
	return bucketBound(h, len(h.Counts)-1)
}

// bucketBound returns a finite representative upper bound for bucket i:
// Buckets[i+1], falling back to the highest finite boundary when the
// bucket is unbounded above.
func bucketBound(h *metrics.Float64Histogram, i int) float64 {
	// Counts[i] covers [Buckets[i], Buckets[i+1]).
	b := h.Buckets[i+1]
	if !isInf(b) {
		return b
	}
	for j := len(h.Buckets) - 1; j >= 0; j-- {
		if !isInf(h.Buckets[j]) {
			return h.Buckets[j]
		}
	}
	return 0
}

func isInf(f float64) bool { return f > 1e300 || f < -1e300 }
