package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracer swaps in an isolated tracer for one test and restores the
// previous one afterwards.
func withTracer(t *testing.T, tr *Tracer) *Tracer {
	t.Helper()
	prev := SetCurrentTracer(tr)
	t.Cleanup(func() { SetCurrentTracer(prev) })
	return tr
}

func TestTraceAndSpanIDs(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := nextID()
		if id == 0 {
			t.Fatal("nextID returned zero")
		}
		if seen[id] {
			t.Fatalf("nextID repeated %x within 1000 draws", id)
		}
		seen[id] = true
	}
	tid := newTraceID()
	if tid.IsZero() {
		t.Error("newTraceID returned the zero ID")
	}
	if s := tid.String(); len(s) != 32 {
		t.Errorf("TraceID string %q: len = %d, want 32", s, len(s))
	}
	if s := SpanID(1).String(); s != "0000000000000001" {
		t.Errorf("SpanID(1) = %q, want 16 zero-padded hex digits", s)
	}
}

func TestTracerDisabledRecordsNothing(t *testing.T) {
	withTracer(t, NewTracer(8)) // sample 0, slow 0
	ctx, root := StartSpan(nil, "coord.query")
	if root.Recorded() {
		t.Error("root should not be recorded with tracing disabled")
	}
	if sc := SpanContextFrom(ctx); sc != (SpanContext{}) {
		t.Errorf("SpanContextFrom = %+v, want zero", sc)
	}
	_, child := StartSpan(ctx, "rpc.query")
	child.SetAttr("k", "v") // must be a no-op, not a crash
	child.End()
	root.End()
	if got := CurrentTracer().Snapshot(0); len(got) != 0 {
		t.Errorf("ring holds %d traces, want 0", len(got))
	}
}

func TestSampledTraceReachesRing(t *testing.T) {
	tr := withTracer(t, NewTracer(8))
	tr.SetSampleRate(1)
	ctx, root := StartSpan(nil, "coord.query")
	if !root.Recorded() {
		t.Fatal("root should be recorded at sample rate 1")
	}
	root.SetAttr("fingerprint", "deadbeef")
	root.SetAttr("retries", 2)
	root.SetAttr("retries", 3) // last write wins
	_, child := StartSpan(ctx, "rpc.query")
	child.End()
	root.End()

	got := tr.Snapshot(0)
	if len(got) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(got))
	}
	tc := got[0]
	if tc.TraceID != root.TraceID().String() {
		t.Errorf("trace ID %s, want %s", tc.TraceID, root.TraceID())
	}
	if tc.Root != "coord.query" || tc.Slow {
		t.Errorf("root = %q slow = %t, want coord.query/false", tc.Root, tc.Slow)
	}
	if len(tc.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (child + root)", len(tc.Spans))
	}
	// Spans land in end order: child first, root last.
	if tc.Spans[0].Name != "rpc.query" || tc.Spans[1].Name != "coord.query" {
		t.Errorf("span order = %s, %s", tc.Spans[0].Name, tc.Spans[1].Name)
	}
	if tc.Spans[0].ParentID != tc.Spans[1].SpanID {
		t.Errorf("child parent_id %s != root span_id %s", tc.Spans[0].ParentID, tc.Spans[1].SpanID)
	}
	if got := tc.Spans[1].Attrs["retries"]; got != "3" {
		t.Errorf(`root attr retries = %q, want "3" (last write wins)`, got)
	}
	if got := tc.Spans[1].Attrs["fingerprint"]; got != "deadbeef" {
		t.Errorf("root attr fingerprint = %q", got)
	}
}

func TestHeadSampleDropStillArmsTailKeep(t *testing.T) {
	tr := withTracer(t, NewTracer(8))
	tr.SetSampleRate(0)
	tr.SetSlowQuery(time.Hour) // armed, but nothing is that slow
	dropped := tracesDropped().Value()
	_, root := StartSpan(nil, "coord.query")
	if !root.Recorded() {
		t.Fatal("root must record when the slow threshold is armed (tail keep needs the spans)")
	}
	root.End()
	if got := tr.Snapshot(0); len(got) != 0 {
		t.Errorf("fast unsampled trace reached the ring (%d traces)", len(got))
	}
	if got := tracesDropped().Value() - dropped; got != 1 {
		t.Errorf("traces_dropped delta = %d, want 1", got)
	}
}

func TestSlowQueryKeptAndLogged(t *testing.T) {
	prev := slog.Default()
	defer slog.SetDefault(prev)
	var buf bytes.Buffer
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))

	tr := withTracer(t, NewTracer(8))
	tr.SetSlowQuery(time.Nanosecond) // everything is slow
	slowBefore := slowQueries().Value()

	ctx, root := StartSpan(nil, "coord.query")
	root.SetAttr("fingerprint", "cafe0123")
	for i := 0; i < 3; i++ {
		_, c := StartSpan(ctx, "rpc.query")
		c.End()
	}
	time.Sleep(time.Millisecond)
	root.End()

	got := tr.Snapshot(0)
	if len(got) != 1 || !got[0].Slow {
		t.Fatalf("want one slow trace in the ring, got %+v", got)
	}
	if got := slowQueries().Value() - slowBefore; got != 1 {
		t.Errorf("slow_queries delta = %d, want 1", got)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query log line:\n%s", out)
	}
	if !strings.Contains(out, "rpc.query×3=") {
		t.Errorf("slow-query line lacks the stage breakdown (rpc.query×3):\n%s", out)
	}
	if !strings.Contains(out, "fingerprint=cafe0123") {
		t.Errorf("slow-query line lacks the root attributes:\n%s", out)
	}
	if !strings.Contains(out, got[0].TraceID) {
		t.Errorf("slow-query line lacks the trace ID:\n%s", out)
	}
}

func TestRemoteStitch(t *testing.T) {
	tr := withTracer(t, NewTracer(8))
	tr.SetSampleRate(1)

	// Coordinator side: root + one RPC span.
	ctx, root := StartSpan(nil, "coord.query")
	qctx, qspan := StartSpan(ctx, "rpc.query")
	sc := SpanContextFrom(qctx)
	if sc.Trace.IsZero() || !sc.Sampled {
		t.Fatalf("propagated context = %+v", sc)
	}

	// "Worker" side, as if in another process: a remote root + child.
	wctx, wroot := StartRemoteSpan(nil, "worker.query", sc)
	_, wchild := StartSpan(wctx, "bfh.probe")
	wchild.End()
	wroot.End()
	recs := wroot.Records()
	if len(recs) != 2 {
		t.Fatalf("worker records = %d, want 2", len(recs))
	}
	for _, r := range recs {
		if r.TraceID != sc.Trace.String() {
			t.Errorf("worker span %s carries trace %s, want %s", r.Name, r.TraceID, sc.Trace)
		}
	}

	// Reply path: stitch the worker spans into the live coordinator trace.
	AttachSpans(qctx, recs)
	qspan.End()
	root.End()

	// In one process the worker-side remote root also runs the keep policy
	// and publishes its partial trace; the stitched trace is the one whose
	// root is the coordinator's.
	var stitched *Trace
	for _, tc := range tr.Snapshot(0) {
		if tc.Root == "coord.query" {
			stitched = tc
		}
	}
	if stitched == nil {
		t.Fatalf("no coord.query trace in the ring: %+v", tr.Snapshot(0))
	}
	names := make(map[string]string) // name -> parent
	for _, s := range stitched.Spans {
		if s.TraceID != sc.Trace.String() {
			t.Errorf("span %s carries trace %s", s.Name, s.TraceID)
		}
		names[s.Name] = s.ParentID
	}
	if len(names) != 4 {
		t.Fatalf("stitched trace has spans %v, want 4 distinct", names)
	}
	// The worker root's parent is the coordinator's RPC span.
	var qid string
	for _, s := range stitched.Spans {
		if s.Name == "rpc.query" {
			qid = s.SpanID
		}
	}
	if names["worker.query"] != qid {
		t.Errorf("worker.query parent = %s, want rpc.query's %s", names["worker.query"], qid)
	}
}

func TestRemoteSpanWithoutContextIsLocalRoot(t *testing.T) {
	tr := withTracer(t, NewTracer(8))
	tr.SetSampleRate(1)
	_, s := StartRemoteSpan(nil, "worker.query", SpanContext{})
	s.End()
	if got := tr.Snapshot(0); len(got) != 1 || got[0].Root != "worker.query" {
		t.Errorf("zero-context remote span should fall back to a local root; ring = %+v", got)
	}
}

func TestJSONLExportRoundTrip(t *testing.T) {
	tr := withTracer(t, NewTracer(8))
	tr.SetSampleRate(1)
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	tr.SetExportPath(path)

	for i := 0; i < 3; i++ {
		ctx, root := StartSpan(nil, "coord.query")
		root.SetAttr("i", i)
		_, c := StartSpan(ctx, "rpc.query")
		c.End()
		root.End()
	}
	if err := tr.FlushExport(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	ring := tr.Snapshot(0) // newest first
	for i, line := range lines {
		var got Trace
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		want := ring[len(ring)-1-i] // export is oldest first
		if got.TraceID != want.TraceID || len(got.Spans) != len(want.Spans) {
			t.Errorf("line %d: trace %s (%d spans), ring has %s (%d spans)",
				i, got.TraceID, len(got.Spans), want.TraceID, len(want.Spans))
		}
		for j := range got.Spans {
			g, w := got.Spans[j], want.Spans[j]
			if g.SpanID != w.SpanID || g.ParentID != w.ParentID || g.Name != w.Name ||
				g.StartUnixNano != w.StartUnixNano || g.DurationNanos != w.DurationNanos {
				t.Errorf("line %d span %d: round-trip mismatch\ngot  %+v\nwant %+v", i, j, g, w)
			}
			for k, v := range w.Attrs {
				if g.Attrs[k] != v {
					t.Errorf("line %d span %d attr %s: %q != %q", i, j, k, g.Attrs[k], v)
				}
			}
		}
	}
}

func TestDebugTracesHandlerGolden(t *testing.T) {
	tr := NewTracer(8)
	tr.Publish(&Trace{
		TraceID:       "000102030405060708090a0b0c0d0e0f",
		Root:          "coord.query",
		DurationNanos: 1500,
		Slow:          true,
		Spans: []SpanRecord{{
			TraceID:       "000102030405060708090a0b0c0d0e0f",
			SpanID:        "1112131415161718",
			Name:          "coord.query",
			StartUnixNano: 42,
			DurationNanos: 1500,
			Attrs:         map[string]string{"fingerprint": "deadbeef"},
		}},
	})
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	golden := `{
  "count": 1,
  "traces": [
    {
      "trace_id": "000102030405060708090a0b0c0d0e0f",
      "root": "coord.query",
      "duration_ns": 1500,
      "slow": true,
      "spans": [
        {
          "trace_id": "000102030405060708090a0b0c0d0e0f",
          "span_id": "1112131415161718",
          "name": "coord.query",
          "start_unix_ns": 42,
          "duration_ns": 1500,
          "attrs": {
            "fingerprint": "deadbeef"
          }
        }
      ]
    }
  ]
}
`
	if rec.Body.String() != golden {
		t.Errorf("/debug/traces response drifted from the documented schema:\ngot:\n%s\nwant:\n%s",
			rec.Body.String(), golden)
	}

	// ?n=K limits, bad n is a 400.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status = %d, want 400", rec.Code)
	}
}

func TestDebugTracesHandlerLimit(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Publish(&Trace{TraceID: SpanID(i+1).String() + SpanID(i+1).String(), Root: "r"})
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=2", nil))
	var resp struct {
		Count  int      `json:"count"`
		Traces []*Trace `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || len(resp.Traces) != 2 {
		t.Fatalf("n=2 returned %d traces", len(resp.Traces))
	}
	// Newest first: the last published trace leads.
	if resp.Traces[0].TraceID != SpanID(5).String()+SpanID(5).String() {
		t.Errorf("newest trace = %s", resp.Traces[0].TraceID)
	}
}

// TestTraceRingHammer publishes and snapshots concurrently; under -race
// this is the lock-free ring's data-race gate, and the invariant checked
// is that snapshots only ever see fully-formed traces.
func TestTraceRingHammer(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Publish(&Trace{
					TraceID: newTraceID().String(),
					Root:    "hammer",
					Spans:   []SpanRecord{{Name: "hammer"}},
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				for _, tc := range tr.Snapshot(0) {
					if tc.Root != "hammer" || len(tc.TraceID) != 32 {
						t.Errorf("torn trace observed: %+v", tc)
						return
					}
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestSpanCapBoundsTrace(t *testing.T) {
	tr := withTracer(t, NewTracer(8))
	tr.SetSampleRate(1)
	tr.SetSpanCap(3)
	ctx, root := StartSpan(nil, "coord.query")
	for i := 0; i < 10; i++ {
		_, c := StartSpan(ctx, "rpc.query")
		c.End()
	}
	root.End()
	got := tr.Snapshot(0)
	if len(got) != 1 {
		t.Fatalf("ring holds %d traces", len(got))
	}
	if len(got[0].Spans) != 3 {
		t.Errorf("spans = %d, want 3 (capped)", len(got[0].Spans))
	}
	// 10 children + 1 root ended; 3 kept.
	if got[0].DroppedSpans != 8 {
		t.Errorf("dropped_spans = %d, want 8", got[0].DroppedSpans)
	}
}

func TestTraceFlagsSetup(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.jsonl")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterTraceFlags(fs)
	if err := fs.Parse([]string{"-trace-out", out, "-trace-sample", "0.5", "-slow-query", "250ms"}); err != nil {
		t.Fatal(err)
	}
	if c.Out != out || c.Sample != 0.5 || c.Slow != 250*time.Millisecond {
		t.Errorf("parsed config = %+v", c)
	}
	if !c.Enabled(false) {
		t.Error("config with -trace-out should be enabled")
	}
	if !(&TraceConfig{Sample: 1}).Enabled(true) {
		t.Error("force must enable")
	}
	if (&TraceConfig{Sample: 1}).Enabled(false) {
		t.Error("default config without force must stay disabled")
	}

	withTracer(t, NewTracer(8))
	flush, err := c.Setup(false)
	if err != nil {
		t.Fatal(err)
	}
	tr := CurrentTracer()
	if tr.SampleRate() != 0.5 || tr.SlowQuery() != 250*time.Millisecond {
		t.Errorf("tracer not configured: sample=%g slow=%v", tr.SampleRate(), tr.SlowQuery())
	}
	if err := flush(); err != nil {
		t.Errorf("flush: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("flush did not write the export file: %v", err)
	}

	bad := &TraceConfig{Sample: 1.5}
	if _, err := bad.Setup(true); err == nil {
		t.Error("sample rate 1.5 must be rejected")
	}
	bad = &TraceConfig{Sample: 1, Slow: -time.Second}
	if _, err := bad.Setup(true); err == nil {
		t.Error("negative slow-query must be rejected")
	}
}
