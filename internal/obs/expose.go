package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers per family, one line per
// labeled sample, histograms as cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Families are sorted by name and samples by label
// signature, so the output is byte-stable for a given registry state —
// the property the golden test locks in.

// escapeLabelValue escapes backslash, double quote and newline, the three
// characters the exposition format requires escaping in label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a sorted label set as {k="v",...}; extra appends
// one more pair (used for histogram le labels). Empty sets render as "".
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf(`%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteText writes the whole registry in the text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)

	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		sigs := make([]string, 0, len(f.metrics))
		for sig := range f.metrics {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			in := f.metrics[sig]
			switch m := in.metric.(type) {
			case *CounterMetric:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(in.labels), m.Value())
			case *GaugeMetric:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(in.labels), formatFloat(m.Value()))
			case *HistogramMetric:
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n",
						f.name, labelString(in.labels, L("le", formatFloat(bound))), cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(in.labels, L("le", "+Inf")), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(in.labels), formatFloat(m.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(in.labels), cum)
			}
		}
	}
	r.mu.RUnlock()

	return bw.Flush()
}

// Handler serves the registry at an HTTP endpoint (the /metrics handler of
// the admin listener).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w) //nolint:errcheck — client gone mid-write is not actionable
	})
}
