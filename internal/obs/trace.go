package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
)

// Distributed tracing on top of the span layer. Every trace is identified
// by a 128-bit trace ID; every span by a 64-bit span ID with a parent
// link, so a request's stage tree reconstructs exactly — including across
// the coordinator→worker RPC boundary, where the trace context travels in
// the RPC args and the worker's completed spans come back in the reply
// (see internal/distrib).
//
// The Tracer keeps completed traces in a fixed-size ring with lock-free
// reads (atomic pointer slots), serves the last K at /debug/traces, and
// optionally exports every kept trace as JSONL through internal/atomicio.
// Keep/drop combines probabilistic head sampling (decided at root start)
// with tail-based retention: a root that exceeds the slow-query threshold
// is always kept and additionally emits a structured slow-query log line
// with its full stage breakdown. When neither sampling nor the slow
// threshold is configured, spans carry no trace state at all and the
// whole layer costs two atomic operations per span.

// TraceID is a 128-bit trace identifier.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	return fmt.Sprintf("%016x%016x", id.Hi, id.Lo)
}

// SpanID is a 64-bit span identifier, unique within its process.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanContext is the propagatable part of an active span: what a
// coordinator puts into RPC args so the worker's spans join its trace.
type SpanContext struct {
	// Trace is the 128-bit trace the span belongs to.
	Trace TraceID
	// Span is the propagating span's ID — the remote side's parent.
	Span SpanID
	// Sampled reports whether the trace is being recorded, so the remote
	// side can skip span collection for traces nobody will keep.
	Sampled bool
}

// Attr is one key/value annotation on a span (fingerprint, cache verdict,
// probe mode, shard, retry count, …). Values are strings; SetAttr
// stringifies common types.
type Attr struct {
	Key, Value string
}

// SpanRecord is the serialized form of a completed span — the JSONL and
// /debug/traces schema. All IDs are fixed-width lowercase hex.
type SpanRecord struct {
	// TraceID is 32 hex digits; SpanID and ParentID are 16.
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Name is the stage name (StartSpan's name argument).
	Name string `json:"name"`
	// StartUnixNano is the span's wall-clock start.
	StartUnixNano int64 `json:"start_unix_ns"`
	// DurationNanos is the span's duration.
	DurationNanos int64 `json:"duration_ns"`
	// Attrs are the span's key/value annotations (last write wins per key).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is one kept trace: the root span's identity plus every span
// recorded under it, in end order.
type Trace struct {
	TraceID string `json:"trace_id"`
	// Root is the root span's stage name.
	Root string `json:"root"`
	// DurationNanos is the root span's duration.
	DurationNanos int64 `json:"duration_ns"`
	// Slow marks a trace kept by the tail-based slow-query rule.
	Slow bool `json:"slow,omitempty"`
	// DroppedSpans counts spans discarded beyond the per-trace cap.
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// ---- ID generation ---------------------------------------------------------

// idState seeds a splitmix64 sequence from crypto/rand once per process;
// each ID is one atomic add plus the mix, cheap enough for per-span use.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// nextID returns a non-zero pseudo-random 64-bit ID.
func nextID() uint64 {
	for {
		x := idState.Add(0x9E3779B97F4A7C15)
		x ^= x >> 30
		x *= 0xBF58476D1CE4B91D
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// newTraceID returns a fresh non-zero 128-bit trace ID.
func newTraceID() TraceID { return TraceID{Hi: nextID(), Lo: nextID()} }

// ---- trace collection ------------------------------------------------------

// traceBuf accumulates the completed spans of one in-flight trace. The
// root span allocates it; children (and remotely attached records) append
// under the mutex. It is bounded by the tracer's per-trace span cap.
type traceBuf struct {
	tracer  *Tracer
	sampled bool // head-sampling verdict, decided at root start
	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
}

// add appends one completed span's record, honouring the span cap.
func (b *traceBuf) add(rec SpanRecord) {
	max := b.tracer.maxSpans()
	b.mu.Lock()
	if len(b.spans) >= max {
		b.dropped++
	} else {
		b.spans = append(b.spans, rec)
	}
	b.mu.Unlock()
}

// Trace-keeping metrics, published into the Default registry like every
// other obs family. Resolved lazily so trace.go has no init-order
// dependency on the Default registry.
func tracesKept(reason string) *CounterMetric {
	return Counter("bfhrf_traces_kept_total",
		"Traces kept in the ring/export, by keep reason (sampled | slow).",
		L("reason", reason))
}

func tracesDropped() *CounterMetric {
	return Counter("bfhrf_traces_dropped_total",
		"Recorded traces dropped by head sampling (not sampled, not slow).")
}

func slowQueries() *CounterMetric {
	return Counter("bfhrf_slow_queries_total",
		"Root spans exceeding the -slow-query threshold.")
}

// Tracer owns the keep/drop policy, the completed-trace ring and the
// optional JSONL export. Configuration setters are safe to call at any
// time; the zero state (sample 0, slow 0) disables recording entirely.
type Tracer struct {
	sampleBits atomic.Uint64 // float64 bits of the head-sampling probability
	slowNanos  atomic.Int64  // tail-keep threshold; 0 disables
	spanCap    atomic.Int64  // per-trace recorded-span cap

	// ring: fixed slots holding immutable *Trace values. Writers claim a
	// slot with one atomic add; readers snapshot with atomic loads — no
	// lock on either side.
	slots  []atomic.Pointer[Trace]
	cursor atomic.Uint64

	// export accumulates kept traces for the JSONL file (bounded).
	expMu      sync.Mutex
	expPath    string
	expTraces  []*Trace
	expDropped int
}

// DefaultTraceRing is the ring capacity of the process-wide tracer (the
// "last K traces" served at /debug/traces).
const DefaultTraceRing = 256

// defaultTraceSpanCap bounds recorded spans per trace so a pathological
// request cannot balloon a trace; overflow is counted in DroppedSpans.
const defaultTraceSpanCap = 4096

// maxExportTraces bounds the in-memory export buffer; beyond it kept
// traces still reach the ring but are dropped from the JSONL file (the
// flush logs how many).
const maxExportTraces = 65536

// NewTracer returns a tracer with the given ring capacity (minimum 1)
// and recording disabled (sample rate 0, no slow threshold).
func NewTracer(ringSize int) *Tracer {
	if ringSize < 1 {
		ringSize = 1
	}
	t := &Tracer{slots: make([]atomic.Pointer[Trace], ringSize)}
	t.spanCap.Store(defaultTraceSpanCap)
	return t
}

// curTracer is the process-wide tracer consulted by root spans.
var curTracer atomic.Pointer[Tracer]

func init() { curTracer.Store(NewTracer(DefaultTraceRing)) }

// CurrentTracer returns the process-wide tracer (never nil).
func CurrentTracer() *Tracer { return curTracer.Load() }

// SetCurrentTracer swaps the process-wide tracer and returns the previous
// one — test isolation; production code configures CurrentTracer in place.
func SetCurrentTracer(t *Tracer) *Tracer {
	if t == nil {
		t = NewTracer(DefaultTraceRing)
	}
	return curTracer.Swap(t)
}

// SetSampleRate sets the head-sampling probability in [0, 1]: the chance
// a fresh root trace is kept regardless of duration.
func (tr *Tracer) SetSampleRate(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	tr.sampleBits.Store(floatBits(p))
}

// SampleRate returns the head-sampling probability.
func (tr *Tracer) SampleRate() float64 { return floatFromBits(tr.sampleBits.Load()) }

// SetSlowQuery sets the tail-keep threshold: a root span lasting at least
// d is always kept and logged as a slow query. 0 disables.
func (tr *Tracer) SetSlowQuery(d time.Duration) {
	if d < 0 {
		d = 0
	}
	tr.slowNanos.Store(int64(d))
}

// SlowQuery returns the tail-keep threshold (0 when disabled).
func (tr *Tracer) SlowQuery() time.Duration { return time.Duration(tr.slowNanos.Load()) }

// SetSpanCap bounds the recorded spans per trace (minimum 1).
func (tr *Tracer) SetSpanCap(n int) {
	if n < 1 {
		n = 1
	}
	tr.spanCap.Store(int64(n))
}

func (tr *Tracer) maxSpans() int { return int(tr.spanCap.Load()) }

// Enabled reports whether any recording policy is active.
func (tr *Tracer) Enabled() bool {
	return tr.SampleRate() > 0 || tr.SlowQuery() > 0
}

// startRoot decides a fresh root span's recording fate: nil when nothing
// would keep the trace, otherwise a buffer carrying the head verdict.
func (tr *Tracer) startRoot() *traceBuf {
	p := tr.SampleRate()
	sampled := p >= 1
	if !sampled && p > 0 {
		// 53 uniform bits from the ID sequence; no global rand lock.
		sampled = float64(nextID()>>11)/(1<<53) < p
	}
	if !sampled && tr.SlowQuery() == 0 {
		return nil
	}
	return &traceBuf{tracer: tr, sampled: sampled}
}

// finish applies the keep/drop policy to a completed root (local or
// remote): push to the ring and export on keep, and emit the slow-query
// log line for roots past the threshold.
func (tr *Tracer) finish(s *Span, b *traceBuf, d time.Duration) {
	slowAt := tr.SlowQuery()
	slow := slowAt > 0 && d >= slowAt
	if !b.sampled && !slow {
		tracesDropped().Inc()
		return
	}
	b.mu.Lock()
	spans := b.spans
	dropped := b.dropped
	b.mu.Unlock()
	t := &Trace{
		TraceID:       s.trace.String(),
		Root:          s.name,
		DurationNanos: int64(d),
		Slow:          slow,
		DroppedSpans:  dropped,
		Spans:         spans,
	}
	tr.Publish(t)
	if slow {
		slowQueries().Inc()
		logSlowTrace(s, t, d)
	}
	if b.sampled {
		tracesKept("sampled").Inc()
	} else {
		tracesKept("slow").Inc()
	}
}

// Publish stores an assembled trace in the ring and, when exporting, the
// JSONL buffer. Exposed so tests (and tools replaying captured traces)
// can feed the ring deterministically.
func (tr *Tracer) Publish(t *Trace) {
	i := tr.cursor.Add(1) - 1
	tr.slots[i%uint64(len(tr.slots))].Store(t)
	tr.expMu.Lock()
	if tr.expPath != "" {
		if len(tr.expTraces) < maxExportTraces {
			tr.expTraces = append(tr.expTraces, t)
		} else {
			tr.expDropped++
		}
	}
	tr.expMu.Unlock()
}

// Snapshot returns up to n of the most recently kept traces, newest
// first. It never blocks writers: each slot is one atomic load.
func (tr *Tracer) Snapshot(n int) []*Trace {
	size := len(tr.slots)
	written := tr.cursor.Load()
	avail := int(written)
	if written > uint64(size) {
		avail = size
	}
	if n <= 0 || n > avail {
		n = avail
	}
	out := make([]*Trace, 0, n)
	for k := 0; k < avail && len(out) < n; k++ {
		// written-1-k counts back from the most recent claim. A slot may
		// still be nil (claimed, not yet stored) or already overwritten
		// by a newer trace; both are benign under concurrent publishing.
		i := (written - 1 - uint64(k)) % uint64(size)
		if t := tr.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// SetExportPath arms JSONL export: every kept trace is buffered and
// FlushExport writes them to path atomically. Empty disables.
func (tr *Tracer) SetExportPath(path string) {
	tr.expMu.Lock()
	tr.expPath = path
	tr.expMu.Unlock()
}

// FlushExport writes the buffered traces as one JSON object per line to
// the configured export path via internal/atomicio (temp+fsync+rename),
// so a crash mid-flush never leaves a torn trace file. A no-op without an
// export path.
func (tr *Tracer) FlushExport() error {
	tr.expMu.Lock()
	path := tr.expPath
	traces := tr.expTraces
	dropped := tr.expDropped
	tr.expMu.Unlock()
	if path == "" {
		return nil
	}
	var sb strings.Builder
	for _, t := range traces {
		line, err := json.Marshal(t)
		if err != nil {
			return fmt.Errorf("obs: encoding trace %s: %w", t.TraceID, err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	if dropped > 0 {
		slog.Warn("trace export buffer overflowed; JSONL is incomplete",
			"path", path, "exported", len(traces), "dropped", dropped)
	}
	return atomicio.WriteFile(path, []byte(sb.String()))
}

// Handler serves the ring as JSON — the /debug/traces endpoint of the
// admin listener. `?n=K` limits the response to the K newest traces.
func (tr *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "invalid n: want a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		traces := tr.Snapshot(n)
		w.Header().Set("Content-Type", "application/json")
		resp := struct {
			Count  int      `json:"count"`
			Traces []*Trace `json:"traces"`
		}{Count: len(traces), Traces: traces}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp) //nolint:errcheck — client gone mid-write is not actionable
	})
}

// logSlowTrace emits the structured slow-query line: trace identity,
// duration, the root's attributes, and the per-stage breakdown aggregated
// from the kept spans (count and total time per stage name).
func logSlowTrace(root *Span, t *Trace, d time.Duration) {
	type agg struct {
		count int
		total time.Duration
	}
	stages := make(map[string]*agg)
	for _, rec := range t.Spans {
		if rec.Name == t.Root {
			continue // the root's own time is the headline duration
		}
		a := stages[rec.Name]
		if a == nil {
			a = &agg{}
			stages[rec.Name] = a
		}
		a.count++
		a.total += time.Duration(rec.DurationNanos)
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, name := range names {
		if i > 0 {
			sb.WriteByte(' ')
		}
		a := stages[name]
		fmt.Fprintf(&sb, "%s×%d=%s", name, a.count, a.total)
	}
	attrs := []any{
		slog.String("trace_id", t.TraceID),
		slog.String("root", t.Root),
		slog.Duration("duration", d),
		slog.Int("spans", len(t.Spans)),
		slog.String("stages", sb.String()),
	}
	for _, kv := range root.attrs {
		attrs = append(attrs, slog.String(kv.Key, kv.Value))
	}
	slog.Warn("slow query", attrs...)
}

// logSlowSpan reports a non-root span past the slow threshold: no stage
// breakdown (its children are interleaved in the trace), but enough to
// attribute the time without waiting for the root to finish.
func logSlowSpan(s *Span, d time.Duration) {
	attrs := []any{
		slog.String("trace_id", s.trace.String()),
		slog.String("span", s.name),
		slog.Duration("duration", d),
	}
	for _, kv := range s.attrs {
		attrs = append(attrs, slog.String(kv.Key, kv.Value))
	}
	slog.Warn("slow span", attrs...)
}

// floatBits / floatFromBits keep the atomic sample-rate field readable.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
