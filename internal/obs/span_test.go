package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()
	ctx, s := startSpanIn(r, context.Background(), "bfh.build")
	if SpanFromContext(ctx) != s {
		t.Error("context should carry the span")
	}
	d := s.End()
	if d < 0 {
		t.Errorf("duration = %v", d)
	}
	h := r.Histogram(StageMetric, "", nil, L("stage", "bfh.build"))
	if got := h.Count(); got != 1 {
		t.Errorf("stage histogram count = %d, want 1", got)
	}
	// End is idempotent: a second call must not double-record.
	s.End()
	if got := h.Count(); got != 1 {
		t.Errorf("after double End, count = %d, want 1", got)
	}
}

func TestSpanChildOrdering(t *testing.T) {
	r := NewRegistry()
	ctx, parent := startSpanIn(r, nil, "coord.query")
	_, c1 := startSpanIn(r, ctx, "rpc")
	_, c2 := startSpanIn(r, ctx, "rpc")
	if c1.seq != 1 || c2.seq != 2 {
		t.Errorf("child seqs = %d, %d, want 1, 2", c1.seq, c2.seq)
	}
	if c1.parent != parent || c2.parent != parent {
		t.Error("children should point at the parent span")
	}
	c1.End()
	c2.End()
	parent.End()
	h := r.Histogram(StageMetric, "", nil, L("stage", "rpc"))
	if got := h.Count(); got != 2 {
		t.Errorf("rpc stage count = %d, want 2", got)
	}
}

func TestSpanDebugLogging(t *testing.T) {
	prev := slog.Default()
	defer slog.SetDefault(prev)
	var buf bytes.Buffer
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))

	r := NewRegistry()
	ctx, parent := startSpanIn(r, nil, "outer")
	_, child := startSpanIn(r, ctx, "inner")
	child.End()
	parent.End()

	out := buf.String()
	for _, want := range []string{"stage=inner", "parent=outer", "child_seq=1", "stage=outer"} {
		if !strings.Contains(out, want) {
			t.Errorf("debug log missing %q:\n%s", want, out)
		}
	}
}

func TestSpanSilentAtInfo(t *testing.T) {
	prev := slog.Default()
	defer slog.SetDefault(prev)
	var buf bytes.Buffer
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo})))

	r := NewRegistry()
	_, s := startSpanIn(r, nil, "quiet")
	s.End()
	if buf.Len() != 0 {
		t.Errorf("span logged at info level:\n%s", buf.String())
	}
}
