package obs

import (
	"flag"
	"fmt"
	"time"
)

// Trace flag plumbing shared by cmd/bfhrf and cmd/bfhrfd, mirroring
// RegisterLogFlags: three flags configure the process-wide tracer.
//
//	-trace-out FILE     export every kept trace as JSONL (atomic write)
//	-trace-sample P     head-sampling probability in [0,1] (default 1)
//	-slow-query D       always keep roots lasting ≥ D and log them with a
//	                    stage breakdown; 0 disables the tail rule
//
// Tracing activates when -trace-out or -slow-query is set, or when the
// caller forces it on (bfhrfd does, whenever -admin serves /debug/traces).
// Otherwise the tracer stays disabled and spans carry no trace state.

// TraceConfig holds the tracing flags' values.
type TraceConfig struct {
	// Out is the JSONL export path ("" disables export).
	Out string
	// Sample is the head-sampling probability in [0, 1].
	Sample float64
	// Slow is the slow-query threshold (0 disables tail-based keeping).
	Slow time.Duration
}

// RegisterTraceFlags adds -trace-out, -trace-sample and -slow-query to fs
// (the default flag set when fs is nil) and returns the struct they
// populate.
func RegisterTraceFlags(fs *flag.FlagSet) *TraceConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &TraceConfig{Sample: 1}
	fs.StringVar(&c.Out, "trace-out", "",
		"export kept traces as JSONL to this file (atomic: temp+fsync+rename; enables tracing)")
	fs.Float64Var(&c.Sample, "trace-sample", 1,
		"head-sampling probability in [0,1]: fraction of traces kept regardless of duration")
	fs.DurationVar(&c.Slow, "slow-query", 0,
		"always keep and log traces whose root lasts at least this long (slow-query diagnostics); 0 disables")
	return c
}

// Enabled reports whether the flags (or force) turn tracing on.
func (c *TraceConfig) Enabled(force bool) bool {
	return force || c.Out != "" || c.Slow > 0
}

// Setup configures the process-wide tracer from the flags and returns the
// flush function that writes the JSONL export (a no-op without
// -trace-out); call it once on the way out, before os.Exit. force enables
// ring recording even without -trace-out/-slow-query — what bfhrfd does
// when the admin listener serves /debug/traces.
func (c *TraceConfig) Setup(force bool) (flush func() error, err error) {
	if c.Sample < 0 || c.Sample > 1 {
		return nil, fmt.Errorf("obs: -trace-sample %g out of range [0,1]", c.Sample)
	}
	if c.Slow < 0 {
		return nil, fmt.Errorf("obs: -slow-query must be non-negative")
	}
	tr := CurrentTracer()
	if !c.Enabled(force) {
		return func() error { return nil }, nil
	}
	tr.SetSampleRate(c.Sample)
	tr.SetSlowQuery(c.Slow)
	tr.SetExportPath(c.Out)
	return tr.FlushExport, nil
}
