package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// Spans are the per-stage tracing layer: a span wraps one pipeline stage
// (parse, BFH build, tree-vs-hash compare, an RPC fan-out) and, when
// ended, records its duration into the registry's stage histogram and —
// at debug verbosity — into the structured log with its parent and child
// ordinal, reconstructing the per-request stage tree. Much lighter than a
// tracing dependency: spans cost two time.Now calls and one histogram
// observation, so they can stay on in production.

// StageMetric is the histogram family every span records into.
const StageMetric = "bfhrf_stage_duration_seconds"

const stageHelp = "Duration of pipeline stages (spans), by stage name."

// spanKey carries the active span through a context.
type spanKey struct{}

// Span is one timed pipeline stage.
type Span struct {
	name   string
	start  time.Time
	parent *Span
	// seq is this span's 1-based ordinal among its parent's children.
	seq      int
	children atomic.Int64
	reg      *Registry
	ended    atomic.Bool
}

// StartSpan begins a stage named name, child of the span in ctx if any.
// The returned context carries the new span; pass it to nested stages.
// A nil ctx is treated as context.Background().
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return startSpanIn(Default, ctx, name)
}

// startSpanIn is StartSpan against an explicit registry (tests).
func startSpanIn(reg *Registry, ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := &Span{name: name, start: time.Now(), parent: parent, reg: reg}
	if parent != nil {
		s.seq = int(parent.children.Add(1))
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Name returns the stage name.
func (s *Span) Name() string { return s.name }

// End stops the span, records its duration into the stage histogram, logs
// it at debug level, and returns the duration. End is idempotent; only
// the first call records.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if s.ended.Swap(true) {
		return d
	}
	s.reg.Histogram(StageMetric, stageHelp, DefLatencyBuckets, L("stage", s.name)).Observe(d.Seconds())
	if slog.Default().Enabled(context.Background(), slog.LevelDebug) {
		attrs := []any{
			slog.String("stage", s.name),
			slog.Duration("duration", d),
		}
		if s.parent != nil {
			attrs = append(attrs,
				slog.String("parent", s.parent.name),
				slog.Int("child_seq", s.seq),
			)
		}
		slog.Debug("span", attrs...)
	}
	return d
}
