package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"
)

// Spans are the per-stage tracing layer: a span wraps one pipeline stage
// (parse, BFH build, tree-vs-hash compare, an RPC fan-out) and, when
// ended, records its duration into the registry's stage histogram and —
// at debug verbosity — into the structured log with its parent and child
// ordinal, reconstructing the per-request stage tree.
//
// On top of that sits distributed tracing (trace.go): a span started
// without a parent is a trace root; if the current Tracer's policy keeps
// it (head sampling or the slow-query tail rule), the root and all its
// descendants carry a shared 128-bit trace ID, per-span 64-bit IDs with
// parent links, and key/value attributes, and the completed trace lands
// in the ring served at /debug/traces and in the JSONL export. With
// tracing disabled a span still costs only two time.Now calls, one
// histogram observation and two atomic adds, so spans stay on in
// production.

// StageMetric is the histogram family every span records into.
const StageMetric = "bfhrf_stage_duration_seconds"

const stageHelp = "Duration of pipeline stages (spans), by stage name."

// spanKey carries the active span through a context.
type spanKey struct{}

// activeSpans counts spans started but not yet ended, process-wide. The
// obstest span-leak gate reads it after a test suite runs.
var activeSpans atomic.Int64

// ActiveSpans returns the number of spans currently started and not yet
// ended. A process at rest reports 0; a persistent positive value after
// work drains means some code path leaks spans (and so skews the stage
// histograms silently). See internal/obs/obstest.
func ActiveSpans() int64 { return activeSpans.Load() }

// Span is one timed pipeline stage.
type Span struct {
	name   string
	start  time.Time
	parent *Span
	// seq is this span's 1-based ordinal among its parent's children.
	seq      int
	children atomic.Int64
	reg      *Registry
	ended    atomic.Bool

	// Tracing state; zero/nil when the trace is not being recorded.
	trace    TraceID
	id       SpanID
	parentID SpanID
	buf      *traceBuf
	// root marks a span that owns its traceBuf's lifecycle: a local trace
	// root (no parent span) or a remote root (StartRemoteSpan).
	root bool
	// attrs are owner-goroutine-only annotations (see SetAttr).
	attrs []Attr
}

// StartSpan begins a stage named name, child of the span in ctx if any.
// The returned context carries the new span; pass it to nested stages.
// A nil ctx is treated as context.Background(). A span with no parent is
// a trace root: the current Tracer decides whether the trace is recorded.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return startSpanIn(Default, ctx, name)
}

// startSpanIn is StartSpan against an explicit registry (tests).
func startSpanIn(reg *Registry, ctx context.Context, name string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := &Span{name: name, start: time.Now(), parent: parent, reg: reg}
	if parent != nil {
		s.seq = int(parent.children.Add(1))
		if parent.buf != nil {
			s.buf = parent.buf
			s.trace = parent.trace
			s.parentID = parent.id
			s.id = SpanID(nextID())
		}
	} else if buf := CurrentTracer().startRoot(); buf != nil {
		s.buf = buf
		s.root = true
		s.trace = newTraceID()
		s.id = SpanID(nextID())
	}
	activeSpans.Add(1)
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartRemoteSpan begins a span whose parent lives in another process:
// the worker-side entry point of an RPC, joining the coordinator's trace
// described by sc. When sc carries no trace (zero ID) or the trace is not
// sampled and no local slow threshold is armed, the span behaves like a
// plain local root. After End, Records returns the spans collected under
// the remote root so the RPC reply can carry them back.
func StartRemoteSpan(ctx context.Context, name string, sc SpanContext) (context.Context, *Span) {
	if sc.Trace.IsZero() {
		return StartSpan(ctx, name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tr := CurrentTracer()
	s := &Span{name: name, start: time.Now(), reg: Default, root: true}
	if sc.Sampled || tr.SlowQuery() > 0 {
		s.buf = &traceBuf{tracer: tr, sampled: sc.Sampled}
		s.trace = sc.Trace
		s.parentID = sc.Span
		s.id = SpanID(nextID())
	}
	activeSpans.Add(1)
	return context.WithValue(ctx, spanKey{}, s), s
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SpanContextFrom extracts the propagatable trace context of the active
// span in ctx — what an RPC layer serializes into its request so the
// remote side's spans stitch into this trace. The zero SpanContext (no
// active span, or trace not recorded) disables remote recording.
func SpanContextFrom(ctx context.Context) SpanContext {
	s := SpanFromContext(ctx)
	if s == nil || s.buf == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id, Sampled: s.buf.sampled}
}

// AttachSpans folds remotely collected span records (an RPC reply's
// payload) into the trace of the active span in ctx. Records keep their
// own IDs and parent links — the remote side already stamped them with
// this trace's ID. A no-op when no recorded trace is active.
func AttachSpans(ctx context.Context, recs []SpanRecord) {
	s := SpanFromContext(ctx)
	if s == nil || s.buf == nil {
		return
	}
	for _, rec := range recs {
		s.buf.add(rec)
	}
}

// Name returns the stage name.
func (s *Span) Name() string { return s.name }

// Recorded reports whether the span belongs to a recorded trace. SetAttr
// is a no-op otherwise, so callers computing an expensive attribute value
// (a formatted fingerprint, a counter delta) can skip the work.
func (s *Span) Recorded() bool { return s != nil && s.buf != nil }

// TraceID returns the span's trace ID (zero when the trace is not being
// recorded).
func (s *Span) TraceID() TraceID { return s.trace }

// SetAttr annotates the span with one key/value pair. Only the goroutine
// that started the span may call it (attributes are read at End). Values
// stringify via fast paths for the common types; a repeated key wins with
// its last value. A no-op when the trace is not recorded, so callers can
// annotate unconditionally on hot-ish paths.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.buf == nil {
		return
	}
	var v string
	switch x := value.(type) {
	case string:
		v = x
	case bool:
		v = strconv.FormatBool(x)
	case int:
		v = strconv.Itoa(x)
	case int64:
		v = strconv.FormatInt(x, 10)
	case uint64:
		v = strconv.FormatUint(x, 10)
	case float64:
		v = strconv.FormatFloat(x, 'g', -1, 64)
	case time.Duration:
		v = x.String()
	case fmt.Stringer:
		v = x.String()
	default:
		v = fmt.Sprint(x)
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// Records returns the span records collected under a remote root after
// End — the payload an RPC reply ships back to the caller's trace. Nil
// for unrecorded traces, local spans, or before End.
func (s *Span) Records() []SpanRecord {
	if s == nil || s.buf == nil || !s.root || !s.ended.Load() {
		return nil
	}
	s.buf.mu.Lock()
	defer s.buf.mu.Unlock()
	out := make([]SpanRecord, len(s.buf.spans))
	copy(out, s.buf.spans)
	return out
}

// record serializes the completed span. Duplicate attribute keys resolve
// last-wins here, where the map is built.
func (s *Span) record(d time.Duration) SpanRecord {
	rec := SpanRecord{
		TraceID:       s.trace.String(),
		SpanID:        s.id.String(),
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNanos: int64(d),
	}
	if s.parentID != 0 {
		rec.ParentID = s.parentID.String()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for _, kv := range s.attrs {
			rec.Attrs[kv.Key] = kv.Value
		}
	}
	return rec
}

// End stops the span, records its duration into the stage histogram, logs
// it at debug level, and returns the duration. On a recorded trace the
// span's record joins the trace buffer; ending a root additionally runs
// the tracer's keep/drop policy (ring, JSONL export, slow-query log). End
// is idempotent; only the first call records.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if s.ended.Swap(true) {
		return d
	}
	activeSpans.Add(-1)
	s.reg.Histogram(StageMetric, stageHelp, DefLatencyBuckets, L("stage", s.name)).Observe(d.Seconds())
	if slog.Default().Enabled(context.Background(), slog.LevelDebug) {
		attrs := []any{
			slog.String("stage", s.name),
			slog.Duration("duration", d),
		}
		if s.parent != nil {
			attrs = append(attrs,
				slog.String("parent", s.parent.name),
				slog.Int("child_seq", s.seq),
			)
		}
		if s.buf != nil {
			attrs = append(attrs, slog.String("trace_id", s.trace.String()))
		}
		slog.Debug("span", attrs...)
	}
	if b := s.buf; b != nil {
		b.add(s.record(d))
		if s.root {
			b.tracer.finish(s, b, d)
		} else if slowAt := b.tracer.SlowQuery(); slowAt > 0 && d >= slowAt {
			logSlowSpan(s, d)
		}
	}
	return d
}
