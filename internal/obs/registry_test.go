package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if again := r.Counter("x_total", "help"); again != c {
		t.Error("same name should return the same instance")
	}
	if other := r.Counter("x_total", "help", L("k", "v")); other == c {
		t.Error("different labels should return a different instance")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Errorf("Value = %g, want 3", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 16 {
		t.Errorf("Sum = %g, want 16", got)
	}
	// Bucket counts (non-cumulative): le=1 gets 0.5 and 1 (inclusive
	// upper bound), le=2 gets 1.5, le=5 gets 3, +Inf gets 10.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", nil)
	if got, want := len(h.Buckets()), len(DefLatencyBuckets); got != want {
		t.Errorf("default buckets = %d, want %d", got, want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Error("requesting a counter as a gauge should panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	r.Counter("bad name", "help")
}

func TestDuplicateLabelPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("duplicate label keys should panic")
		}
	}()
	r.Counter("m_total", "help", L("a", "1"), L("a", "2"))
}

func TestLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m_total", "help", L("x", "1"), L("y", "2"))
	b := r.Counter("m_total", "help", L("y", "2"), L("x", "1"))
	if a != b {
		t.Error("label order should not distinguish instances")
	}
}

func TestGaugeNegativeAndInf(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Error("gauge should hold +Inf")
	}
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Errorf("Value = %g, want -2.5", got)
	}
}

// TestRegistryConcurrency hammers registration, updates, and exposition
// from many goroutines; run under -race (ci.sh includes this package in
// the race subset).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 400

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%d", g%4)
			for i := 0; i < iters; i++ {
				r.Counter("conc_total", "h", L("worker", worker)).Inc()
				r.Gauge("conc_inflight", "h").Add(1)
				r.Histogram("conc_seconds", "h", nil, L("worker", worker)).Observe(float64(i) / 1000)
				r.Gauge("conc_inflight", "h").Add(-1)
			}
		}(g)
	}
	// Concurrent scrapes while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	var total uint64
	for g := 0; g < 4; g++ {
		total += r.Counter("conc_total", "h", L("worker", fmt.Sprintf("w%d", g))).Value()
	}
	if want := uint64(goroutines * iters); total != want {
		t.Errorf("total counter = %d, want %d", total, want)
	}
	if got := r.Gauge("conc_inflight", "h").Value(); got != 0 {
		t.Errorf("inflight gauge = %g, want 0", got)
	}
	var count uint64
	for g := 0; g < 4; g++ {
		count += r.Histogram("conc_seconds", "h", nil, L("worker", fmt.Sprintf("w%d", g))).Count()
	}
	if want := uint64(goroutines * iters); count != want {
		t.Errorf("histogram count = %d, want %d", count, want)
	}
}
