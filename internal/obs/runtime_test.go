package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollectorPublishes(t *testing.T) {
	reg := NewRegistry()
	rc := StartRuntimeCollector(reg, time.Hour) // immediate poll, then idle
	defer rc.Stop()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, family := range []string{
		"bfhrf_go_goroutines",
		"bfhrf_go_heap_objects_bytes",
		"bfhrf_go_mem_total_bytes",
		"bfhrf_go_gc_cycles",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("runtime collector did not publish %s:\n%s", family, out)
		}
	}
	// The distribution families publish quantile-labelled gauges. These
	// names are version-dependent in runtime/metrics; the resolver must
	// have found at least the GC-pause source on any supported Go.
	for _, want := range []string{
		`bfhrf_go_gc_pause_seconds{quantile="0.5"}`,
		`bfhrf_go_gc_pause_seconds{quantile="max"}`,
		`bfhrf_go_sched_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime collector did not publish %s", want)
		}
	}

	if g := reg.Gauge("bfhrf_go_goroutines",
		"Live goroutines (runtime/metrics /sched/goroutines).").Value(); g < 1 {
		t.Errorf("bfhrf_go_goroutines = %g, want >= 1", g)
	}

	// A later synchronous poll refreshes values without the ticker.
	done := make(chan struct{})
	go func() { <-done }()
	rc.Collect()
	close(done)
}

func TestRuntimeCollectorStopIdempotent(t *testing.T) {
	rc := StartRuntimeCollector(NewRegistry(), time.Millisecond)
	time.Sleep(5 * time.Millisecond) // let the ticker fire at least once
	rc.Stop()
	rc.Stop() // second Stop must not panic or deadlock
}
