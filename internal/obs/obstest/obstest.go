// Package obstest provides test-suite gates for observability hygiene.
// Its Main wrapper runs a package's tests and then fails the suite if
// any started span was never ended — a leaked span under-reports the
// stage histograms and, with tracing enabled, pins its trace buffer
// forever, so leaks are bugs even though nothing crashes.
package obstest

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
)

// Main is a TestMain body that forwards to m.Run and converts a span
// leak into a suite failure:
//
//	func TestMain(m *testing.M) { obstest.Main(m) }
//
// It waits briefly for stragglers (background goroutines ending spans
// after their test returns) before declaring a leak, so legitimate
// asynchronous End calls don't flake.
func Main(m *testing.M) {
	code := m.Run()
	if n := waitForSpans(2 * time.Second); n != 0 && code == 0 {
		fmt.Fprintf(os.Stderr,
			"obstest: span leak: %d span(s) started but never ended after suite completed\n", n)
		code = 1
	}
	os.Exit(code)
}

// waitForSpans polls obs.ActiveSpans until it reaches zero or the
// timeout expires, returning the final count.
func waitForSpans(timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for {
		n := obs.ActiveSpans()
		if n == 0 || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}
