package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteTextGolden locks in the exposition format: family ordering,
// label ordering, HELP/TYPE lines, cumulative histogram buckets, and
// value formatting. Any change to this output can break scrapers, so it
// must be deliberate.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bfhrf_queries_total", "Query trees answered.").Add(7)
	r.Counter("bfhrf_rpc_errors_total", "RPC errors.", L("side", "coordinator"), L("method", "Query")).Add(2)
	r.Counter("bfhrf_rpc_errors_total", "RPC errors.", L("side", "worker"), L("method", "Load")).Inc()
	g := r.Gauge("bfhrf_build_info", "Build identity.", L("version", "v1.2.3"), L("revision", "abc123"))
	g.Set(1)
	r.Gauge("bfhrf_rpc_inflight", "In-flight RPCs.", L("side", "worker")).Set(3)
	h := r.Histogram("bfhrf_rpc_latency_seconds", "RPC latency.", []float64{0.01, 0.1, 1}, L("method", "Query"))
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 2} {
		h.Observe(v)
	}

	const want = `# HELP bfhrf_build_info Build identity.
# TYPE bfhrf_build_info gauge
bfhrf_build_info{revision="abc123",version="v1.2.3"} 1
# HELP bfhrf_queries_total Query trees answered.
# TYPE bfhrf_queries_total counter
bfhrf_queries_total 7
# HELP bfhrf_rpc_errors_total RPC errors.
# TYPE bfhrf_rpc_errors_total counter
bfhrf_rpc_errors_total{method="Load",side="worker"} 1
bfhrf_rpc_errors_total{method="Query",side="coordinator"} 2
# HELP bfhrf_rpc_inflight In-flight RPCs.
# TYPE bfhrf_rpc_inflight gauge
bfhrf_rpc_inflight{side="worker"} 3
# HELP bfhrf_rpc_latency_seconds RPC latency.
# TYPE bfhrf_rpc_latency_seconds histogram
bfhrf_rpc_latency_seconds_bucket{method="Query",le="0.01"} 1
bfhrf_rpc_latency_seconds_bucket{method="Query",le="0.1"} 3
bfhrf_rpc_latency_seconds_bucket{method="Query",le="1"} 4
bfhrf_rpc_latency_seconds_bucket{method="Query",le="+Inf"} 5
bfhrf_rpc_latency_seconds_sum{method="Query"} 2.605
bfhrf_rpc_latency_seconds_count{method="Query"} 5
`
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The output must be byte-stable across repeated scrapes.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if sb.String() != sb2.String() {
		t.Error("exposition output is not stable across scrapes")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("path", `a\b"c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\\b\"c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped line %q not found in:\n%s", want, sb.String())
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("multi_total", "line one\nline two").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP multi_total line one\nline two`) {
		t.Errorf("HELP newline not escaped:\n%s", sb.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "h").Add(9)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "served_total 9") {
		t.Errorf("body missing sample:\n%s", buf[:n])
	}
}
