package obs

import (
	"bytes"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestVLevelFlag(t *testing.T) {
	cases := []struct {
		args []string
		want VLevel
	}{
		{nil, 0},
		{[]string{"-v"}, 1},
		{[]string{"-v=2"}, 2},
		{[]string{"-v=0"}, 0},
		{[]string{"-v=false"}, 0},
	}
	for _, c := range cases {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		lc := RegisterLogFlags(fs)
		if err := fs.Parse(c.args); err != nil {
			t.Errorf("Parse(%v): %v", c.args, err)
			continue
		}
		if lc.V != c.want {
			t.Errorf("Parse(%v): V = %d, want %d", c.args, lc.V, c.want)
		}
	}

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	RegisterLogFlags(fs)
	if err := fs.Parse([]string{"-v=-1"}); err == nil {
		t.Error("negative verbosity should fail")
	}
}

func TestVLevelLevels(t *testing.T) {
	if VLevel(0).Level() != slog.LevelInfo {
		t.Error("v0 should be info")
	}
	if VLevel(1).Level() != slog.LevelDebug {
		t.Error("v1 should be debug")
	}
	if VLevel(2).Level() != LevelTrace {
		t.Error("v2 should be trace")
	}
}

func TestSetupFormats(t *testing.T) {
	prev := slog.Default()
	defer slog.SetDefault(prev)

	var buf bytes.Buffer
	lc := &LogConfig{Format: "json", V: 0}
	logger, err := lc.Setup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hello", "k", "v")
	if out := buf.String(); !strings.Contains(out, `"msg":"hello"`) || !strings.Contains(out, `"k":"v"`) {
		t.Errorf("json output = %s", out)
	}

	buf.Reset()
	lc = &LogConfig{Format: "text", V: 1}
	logger, err = lc.Setup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("dbg")
	if !strings.Contains(buf.String(), "msg=dbg") {
		t.Errorf("text debug output = %s", buf.String())
	}
	if slog.Default() != logger {
		t.Error("Setup should install the slog default")
	}

	if _, err := (&LogConfig{Format: "xml"}).Setup(&buf); err == nil {
		t.Error("unknown format should error")
	}
}
