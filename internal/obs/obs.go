// Package obs is the runtime telemetry subsystem: a concurrent metrics
// registry with Prometheus text-format exposition, a shared structured-
// logging setup on log/slog, and lightweight request-scoped spans. It is
// the runtime counterpart of the offline perf-observability layer
// (internal/perfjson): BENCH_*.json records answer "did this commit get
// slower", the obs registry answers "where is this *running* process
// spending its time right now".
//
// Everything is standard library only. Metrics follow Prometheus naming
// conventions (`bfhrf_` prefix, `_total` counters, `_seconds` histograms)
// so the /metrics endpoint of cmd/bfhrfd can be scraped by any Prometheus-
// compatible collector without adapters.
//
// The package-level Default registry is what the instrumented packages
// (internal/core, internal/distrib) and the admin endpoint share; unit
// tests that need isolation construct their own via NewRegistry.
package obs

// Default is the process-wide registry served by admin /metrics endpoints.
var Default = NewRegistry()

// Counter returns the named counter from the Default registry, creating it
// on first use.
func Counter(name, help string, labels ...Label) *CounterMetric {
	return Default.Counter(name, help, labels...)
}

// Gauge returns the named gauge from the Default registry.
func Gauge(name, help string, labels ...Label) *GaugeMetric {
	return Default.Gauge(name, help, labels...)
}

// Histogram returns the named histogram from the Default registry. Buckets
// are fixed at first registration; later calls for the same family may pass
// nil.
func Histogram(name, help string, buckets []float64, labels ...Label) *HistogramMetric {
	return Default.Histogram(name, help, buckets, labels...)
}
