package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Keep cardinality low: label values should
// come from small closed sets (RPC method, worker address, pipeline stage),
// never from unbounded input (tree content, file paths).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the three supported metric families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// CounterMetric is a monotonically increasing count. All methods are safe
// for concurrent use; Inc/Add are a single atomic add, cheap enough for
// per-tree accounting (per-bipartition hot loops should still accumulate
// locally and Add once per tree or batch).
type CounterMetric struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *CounterMetric) Inc() { c.v.Add(1) }

// Add adds n.
func (c *CounterMetric) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *CounterMetric) Value() uint64 { return c.v.Load() }

// GaugeMetric is a float64 value that can go up and down.
type GaugeMetric struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *GaugeMetric) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to decrement).
func (g *GaugeMetric) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *GaugeMetric) Inc() { g.Add(1) }
func (g *GaugeMetric) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *GaugeMetric) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramMetric is a fixed-bucket histogram in the Prometheus style:
// cumulative bucket counts, a sum, and a total count. Observations are
// lock-free (one atomic add per observation plus a CAS on the sum).
type HistogramMetric struct {
	// bounds are the inclusive upper bounds, ascending, excluding +Inf.
	bounds []float64
	// counts[i] observes bounds[i]; counts[len(bounds)] is the +Inf bucket.
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *HistogramMetric) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *HistogramMetric) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *HistogramMetric) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the configured upper bounds (excluding +Inf).
func (h *HistogramMetric) Buckets() []float64 { return append([]float64(nil), h.bounds...) }

// DefLatencyBuckets cover RPC and pipeline-stage latencies from 100µs to
// 10s, the operating range of tree parsing, BFH builds, and query batches.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets cover message and payload sizes in bytes (256 B – 16 MiB).
var DefSizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// LinearBuckets returns count evenly spaced upper bounds starting at
// start: start, start+width, …  Useful for bounded ratios (e.g. shard
// coverage in [0,1]) where exponential latency-style buckets would waste
// resolution. count must be positive and width non-negative.
func LinearBuckets(start, width float64, count int) []float64 {
	if count <= 0 {
		panic("obs: LinearBuckets needs a positive count")
	}
	if width < 0 {
		panic("obs: LinearBuckets needs a non-negative width")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start + width*float64(i)
	}
	return b
}

// instance is one labeled metric within a family, keeping the sorted
// label set for exposition.
type instance struct {
	labels []Label // sorted by key
	metric any     // *CounterMetric | *GaugeMetric | *HistogramMetric
}

// family groups every labeled instance of one metric name. Type, help and
// (for histograms) buckets are fixed at first registration.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
	metrics map[string]*instance // label signature -> instance
}

// Registry holds metric families and hands out their labeled instances.
// Registration (the Counter/Gauge/Histogram accessors) takes a lock;
// updates on the returned metrics are lock-free, so hot paths should hold
// on to the instance rather than re-resolve it per event.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// signature serializes a label set into a canonical map key (sorted by
// label name). It doubles as the exposition ordering key, so metric lines
// within a family are stable across runs.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(escapeLabelValue(l.Value))
	}
	return b.String()
}

// lookup resolves or creates the (family, instance) pair. Misuse —
// re-registering a name with a different type, invalid names, duplicate
// label keys — panics: these are programmer errors, caught by the first
// test that touches the metric.
func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labels []Label) any {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !labelRe.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
		if seen[l.Key] {
			panic(fmt.Sprintf("obs: duplicate label %q on metric %q", l.Key, name))
		}
		seen[l.Key] = true
	}
	sig := signature(labels)

	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		in, ok := f.metrics[sig]
		kindGot := f.kind
		r.mu.RUnlock()
		if kindGot != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, kindGot, kind))
		}
		if ok {
			return in.metric
		}
	} else {
		r.mu.RUnlock()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if kind == kindHistogram && len(buckets) == 0 {
			buckets = DefLatencyBuckets
		}
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		f = &family{name: name, help: help, kind: kind, buckets: bs, metrics: make(map[string]*instance)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	if in, ok := f.metrics[sig]; ok {
		return in.metric
	}
	var m any
	switch kind {
	case kindCounter:
		m = &CounterMetric{}
	case kindGauge:
		m = &GaugeMetric{}
	case kindHistogram:
		h := &HistogramMetric{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		m = h
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	f.metrics[sig] = &instance{labels: ls, metric: m}
	return m
}

// Counter returns the labeled counter, creating family and instance as
// needed. The same (name, labels) always yields the same instance.
func (r *Registry) Counter(name, help string, labels ...Label) *CounterMetric {
	return r.lookup(name, help, kindCounter, nil, labels).(*CounterMetric)
}

// Gauge returns the labeled gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *GaugeMetric {
	return r.lookup(name, help, kindGauge, nil, labels).(*GaugeMetric)
}

// Histogram returns the labeled histogram. Buckets apply only at family
// creation; pass nil afterwards (or for DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *HistogramMetric {
	return r.lookup(name, help, kindHistogram, buckets, labels).(*HistogramMetric)
}
