package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
)

// Structured logging setup shared by every binary. Two flags:
//
//	-log-format text|json   handler selection (text for humans, json for
//	                        log pipelines)
//	-v, -v=N                verbosity: 0 info (default), 1 debug,
//	                        2 trace (span-level detail)
//
// -v is bool-compatible: a bare `-v` means level 1, so existing muscle
// memory (and rfbench's historical boolean -v) keeps working.

// LevelTrace is one step below slog.LevelDebug, used for span completion
// events and other per-request detail.
const LevelTrace = slog.LevelDebug - 4

// VLevel is the -v verbosity as a flag.Value that also accepts bare -v.
type VLevel int

// String implements flag.Value.
func (v *VLevel) String() string {
	if v == nil {
		return "0"
	}
	return strconv.Itoa(int(*v))
}

// Set implements flag.Value, accepting "", "true", "false" (bool-style
// bare -v) as well as integer levels.
func (v *VLevel) Set(s string) error {
	switch s {
	case "", "true":
		*v = 1
		return nil
	case "false":
		*v = 0
		return nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return fmt.Errorf("invalid verbosity %q (want 0, 1 or 2)", s)
	}
	*v = VLevel(n)
	return nil
}

// IsBoolFlag lets the flag package accept a bare -v.
func (v *VLevel) IsBoolFlag() bool { return true }

// Level maps the verbosity to a slog level.
func (v VLevel) Level() slog.Level {
	switch {
	case v <= 0:
		return slog.LevelInfo
	case v == 1:
		return slog.LevelDebug
	default:
		return LevelTrace
	}
}

// LogConfig holds the logging flags' values.
type LogConfig struct {
	// Format is "text" or "json".
	Format string
	// V is the -v verbosity.
	V VLevel
}

// RegisterLogFlags adds -log-format and -v to fs (the default flag set
// when fs is nil) and returns the struct they populate.
func RegisterLogFlags(fs *flag.FlagSet) *LogConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &LogConfig{Format: "text"}
	fs.StringVar(&c.Format, "log-format", "text", "log output format: text | json")
	fs.Var(&c.V, "v", "verbosity: 0 info, 1 (or bare -v) debug, 2 trace")
	return c
}

// Setup builds the logger described by the config, writing to w (stderr
// when nil), installs it as the slog default, and returns it.
func (c *LogConfig) Setup(w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	opts := &slog.HandlerOptions{Level: c.V.Level()}
	var h slog.Handler
	switch c.Format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown -log-format %q (want text or json)", c.Format)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}
