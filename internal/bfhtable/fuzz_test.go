package bfhtable

import (
	"encoding/binary"
	"testing"
)

// FuzzTable drives insert/probe/decrement over arbitrary word patterns and
// cross-checks every observable against a reference map. The corpus seeds
// duplicate-heavy streams and adversarial patterns (shared low words,
// shared high words, all-ones) — the cases where a weak mix or a probing
// bug would cluster or lose keys.
func FuzzTable(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 1, 0, 1, 1, 1, 0, 3})
	// Duplicate-heavy: one key inserted many times.
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 40; i++ {
			b = append(b, 0, 7)
		}
		return b
	}())
	// Adversarial: keys identical except the last byte (same high words).
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 64; i++ {
			b = append(b, 0, 0xff, 0xee, byte(i))
		}
		return b
	}())
	// All-ones words and interleaved decrements.
	f.Add([]byte{0, 0xff, 0xff, 0xff, 1, 0xff, 0xff, 0xff, 0, 0xff, 0xff, 0xff, 1, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		const nw = 2
		tb := New(nw, 4)
		ref := map[[nw]uint64]Entry{}

		// Each op: 1 opcode byte + up to 8 key bytes (zero-padded, spread
		// across both words so high- and low-word collisions both occur).
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			var kb [8]byte
			n := copy(kb[:], data)
			data = data[n:]
			k := binary.LittleEndian.Uint64(kb[:])
			words := []uint64{k & 0xffffffff, k >> 32}
			var key [nw]uint64
			copy(key[:], words)

			switch op % 2 {
			case 0: // insert
				size := uint32(op) % 17
				length := float64(op%5) * 0.5
				tb.Add(words, size, length)
				e := ref[key]
				e.Freq++
				e.Size = size
				e.LengthSum += length
				ref[key] = e
			case 1: // decrement
				e, ok := ref[key]
				got := tb.Dec(words, 0.5)
				if got != (ok && e.Freq > 0) {
					t.Fatalf("Dec(%x) = %v, ref has freq %d", key, got, e.Freq)
				}
				if ok && e.Freq > 0 {
					// Dec on an already-dead key is a no-op in the table;
					// mirror that here or the reference count underflows.
					e.Freq--
					e.LengthSum -= 0.5
					if e.Freq == 0 {
						e.LengthSum = 0
					}
					ref[key] = e
				}
			}

			// Probe after every op: the touched key must agree with ref.
			e, ok := tb.Lookup(words)
			re, rok := ref[key]
			if ok != (rok && re.Freq > 0) {
				t.Fatalf("Lookup(%x) live=%v, ref freq=%d", key, ok, re.Freq)
			}
			if ok && (e.Freq != re.Freq || e.Size != re.Size || e.LengthSum != re.LengthSum) {
				t.Fatalf("Lookup(%x) = %+v, ref %+v", key, e, re)
			}
		}

		// Final full sweep: live sets identical.
		live := 0
		for _, e := range ref {
			if e.Freq > 0 {
				live++
			}
		}
		if tb.Len() != live {
			t.Fatalf("Len = %d, ref live = %d", tb.Len(), live)
		}
		seen := 0
		tb.Range(func(words []uint64, e Entry) bool {
			seen++
			var key [nw]uint64
			copy(key[:], words)
			re, ok := ref[key]
			if !ok || re.Freq == 0 {
				t.Fatalf("Range yielded dead or phantom key %x", key)
			}
			if e.Freq != re.Freq || e.Size != re.Size || e.LengthSum != re.LengthSum {
				t.Fatalf("Range key %x = %+v, ref %+v", key, e, re)
			}
			return true
		})
		if seen != live {
			t.Fatalf("Range visited %d, ref live = %d", seen, live)
		}
	})
}
