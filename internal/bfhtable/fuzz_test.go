package bfhtable

import (
	"encoding/binary"
	"testing"

	"repro/internal/bitset"
)

// FuzzTable drives insert/probe/decrement over arbitrary word patterns and
// cross-checks every observable against a reference map. The corpus seeds
// duplicate-heavy streams and adversarial patterns (shared low words,
// shared high words, all-ones) — the cases where a weak mix or a probing
// bug would cluster or lose keys.
func FuzzTable(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 1, 0, 1, 1, 1, 0, 3})
	// Duplicate-heavy: one key inserted many times.
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 40; i++ {
			b = append(b, 0, 7)
		}
		return b
	}())
	// Adversarial: keys identical except the last byte (same high words).
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 64; i++ {
			b = append(b, 0, 0xff, 0xee, byte(i))
		}
		return b
	}())
	// All-ones words and interleaved decrements.
	f.Add([]byte{0, 0xff, 0xff, 0xff, 1, 0xff, 0xff, 0xff, 0, 0xff, 0xff, 0xff, 1, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		const nw = 2
		tb := New(nw, 4)
		ref := map[[nw]uint64]Entry{}

		// Each op: 1 opcode byte + up to 8 key bytes (zero-padded, spread
		// across both words so high- and low-word collisions both occur).
		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			var kb [8]byte
			n := copy(kb[:], data)
			data = data[n:]
			k := binary.LittleEndian.Uint64(kb[:])
			words := []uint64{k & 0xffffffff, k >> 32}
			var key [nw]uint64
			copy(key[:], words)

			switch op % 2 {
			case 0: // insert
				size := uint32(op) % 17
				length := float64(op%5) * 0.5
				tb.Add(words, size, length)
				e := ref[key]
				e.Freq++
				e.Size = size
				e.LengthSum += length
				ref[key] = e
			case 1: // decrement
				e, ok := ref[key]
				got := tb.Dec(words, 0.5)
				if got != (ok && e.Freq > 0) {
					t.Fatalf("Dec(%x) = %v, ref has freq %d", key, got, e.Freq)
				}
				if ok && e.Freq > 0 {
					// Dec on an already-dead key is a no-op in the table;
					// mirror that here or the reference count underflows.
					e.Freq--
					e.LengthSum -= 0.5
					if e.Freq == 0 {
						e.LengthSum = 0
					}
					ref[key] = e
				}
			}

			// Probe after every op: the touched key must agree with ref.
			e, ok := tb.Lookup(words)
			re, rok := ref[key]
			if ok != (rok && re.Freq > 0) {
				t.Fatalf("Lookup(%x) live=%v, ref freq=%d", key, ok, re.Freq)
			}
			if ok && (e.Freq != re.Freq || e.Size != re.Size || e.LengthSum != re.LengthSum) {
				t.Fatalf("Lookup(%x) = %+v, ref %+v", key, e, re)
			}
		}

		// Final full sweep: live sets identical.
		live := 0
		for _, e := range ref {
			if e.Freq > 0 {
				live++
			}
		}
		if tb.Len() != live {
			t.Fatalf("Len = %d, ref live = %d", tb.Len(), live)
		}
		seen := 0
		tb.Range(func(words []uint64, e Entry) bool {
			seen++
			var key [nw]uint64
			copy(key[:], words)
			re, ok := ref[key]
			if !ok || re.Freq == 0 {
				t.Fatalf("Range yielded dead or phantom key %x", key)
			}
			if e.Freq != re.Freq || e.Size != re.Size || e.LengthSum != re.LengthSum {
				t.Fatalf("Range key %x = %+v, ref %+v", key, e, re)
			}
			return true
		})
		if seen != live {
			t.Fatalf("Range visited %d, ref live = %d", seen, live)
		}
	})
}

// FuzzSuccinct is the succinct-codec and SuccinctTable oracle: every key
// is round-tripped through the compact encoding (encode→decode must be
// the identity on mask words), encoded-byte equality must coincide with
// set equality (the collision-freedom BFHRF requires), and the table's
// observable state — across inserts, decrements, and a mid-stream
// Freeze — must match a reference map keyed on the raw words.
func FuzzSuccinct(f *testing.F) {
	f.Add([]byte{100, 0, 1, 0, 2, 0, 1, 2, 1, 1, 1, 0, 3})
	// Duplicate-heavy one-key stream with an early freeze.
	f.Add(func() []byte {
		b := []byte{180}
		for i := 0; i < 20; i++ {
			b = append(b, 0, 7)
		}
		b = append(b, 2, 0)
		for i := 0; i < 20; i++ {
			b = append(b, 0, 7)
		}
		return b
	}())
	// Dense keys (cosparse encodings) interleaved with decrements.
	f.Add([]byte{70, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfe,
		1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfe, 2, 0xff})
	// Shared-prefix population: identical low words, varying high bytes.
	f.Add(func() []byte {
		b := []byte{200}
		for i := 0; i < 32; i++ {
			b = append(b, 0, 0x3f, 0, 0, 0, 0, 0, 0, byte(i))
		}
		b = append(b, 2)
		for i := 0; i < 32; i++ {
			b = append(b, 0, 0x3f, 0, 0, 0, 0, 0, 0, byte(i))
		}
		return b
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		width := int(data[0])%250 + 2
		data = data[1:]
		nw := (width + 63) / 64
		st := NewSuccinct(width, 4)
		ref := map[string]Entry{}
		byEnc := map[string]string{} // encoded bytes -> raw-words key
		words := make([]uint64, nw)
		dec := make([]uint64, nw)

		wordsKey := func(w []uint64) string {
			var kb []byte
			for _, x := range w {
				var tmp [8]byte
				binary.LittleEndian.PutUint64(tmp[:], x)
				kb = append(kb, tmp[:]...)
			}
			return string(kb)
		}

		for len(data) > 0 {
			op := data[0]
			data = data[1:]
			var kb [8]byte
			n := copy(kb[:], data)
			data = data[n:]
			k := binary.LittleEndian.Uint64(kb[:])
			// Spread the 64 fuzz bits across all words, then mask to width
			// so the vector is canonical.
			for i := range words {
				words[i] = k ^ (uint64(i) * 0x9e3779b97f4a7c15)
			}
			if rem := width % 64; rem != 0 {
				words[nw-1] &= (1 << uint(rem)) - 1
			}

			// Codec oracle: round-trip identity and collision ⟺ equality.
			enc, ones := bitset.AppendWordsKey(nil, words, width)
			if ones != bitset.PopCountWords(words) {
				t.Fatalf("encoder popcount %d, want %d", ones, bitset.PopCountWords(words))
			}
			if err := bitset.DecodeWordsKey(dec, enc, width); err != nil {
				t.Fatalf("decode of fresh encoding failed: %v", err)
			}
			if !bitset.EqualWords(dec, words) {
				t.Fatalf("round-trip mismatch: %x -> % x -> %x", words, enc, dec)
			}
			rk := wordsKey(words)
			if prev, ok := byEnc[string(enc)]; ok {
				if prev != rk {
					t.Fatalf("two distinct masks share encoding % x", enc)
				}
			} else {
				byEnc[string(enc)] = rk
			}

			switch op % 3 {
			case 0: // insert
				size := uint32(ones)
				length := float64(op%5) * 0.5
				st.Add(words, size, length)
				e := ref[rk]
				e.Freq++
				e.Size = size
				e.LengthSum += length
				ref[rk] = e
			case 1: // decrement
				e, ok := ref[rk]
				got := st.Dec(words, 0.5)
				if got != (ok && e.Freq > 0) {
					t.Fatalf("Dec = %v, ref freq %d", got, e.Freq)
				}
				if ok && e.Freq > 0 {
					e.Freq--
					e.LengthSum -= 0.5
					if e.Freq == 0 {
						e.LengthSum = 0
					}
					ref[rk] = e
				}
			case 2: // freeze (idempotent; exercises dictionary re-encode)
				st.Freeze()
			}

			e, ok := st.Lookup(words)
			re := ref[rk]
			if ok != (re.Freq > 0) {
				t.Fatalf("Lookup live=%v, ref freq=%d", ok, re.Freq)
			}
			if ok && (e.Freq != re.Freq || e.Size != re.Size || e.LengthSum != re.LengthSum) {
				t.Fatalf("Lookup = %+v, ref %+v", e, re)
			}
		}

		// Final sweeps: live set and decoded Range contents identical.
		live := 0
		for _, e := range ref {
			if e.Freq > 0 {
				live++
			}
		}
		if st.Len() != live {
			t.Fatalf("Len = %d, ref live = %d", st.Len(), live)
		}
		seen := 0
		st.Range(func(w []uint64, e Entry) bool {
			seen++
			re, ok := ref[wordsKey(w)]
			if !ok || re.Freq == 0 {
				t.Fatalf("Range yielded dead or phantom key %x", w)
			}
			if e.Freq != re.Freq || e.Size != re.Size || e.LengthSum != re.LengthSum {
				t.Fatalf("Range key %x = %+v, ref %+v", w, e, re)
			}
			return true
		})
		if seen != live {
			t.Fatalf("Range visited %d, ref live = %d", seen, live)
		}
	})
}
