package bfhtable

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

func TestAddLookup(t *testing.T) {
	tb := New(2, 4)
	a := []uint64{0x1, 0x2}
	b := []uint64{0x1, 0x3}
	if _, ok := tb.Lookup(a); ok {
		t.Fatal("lookup on empty table hit")
	}
	tb.Add(a, 3, 1.5)
	tb.Add(a, 3, 2.5)
	tb.Add(b, 5, 0)
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	e, ok := tb.Lookup(a)
	if !ok || e.Freq != 2 || e.Size != 3 || e.LengthSum != 4.0 {
		t.Fatalf("Lookup(a) = %+v, %v", e, ok)
	}
	e, ok = tb.Lookup(b)
	if !ok || e.Freq != 1 || e.Size != 5 {
		t.Fatalf("Lookup(b) = %+v, %v", e, ok)
	}
	if _, ok := tb.Lookup([]uint64{0x4, 0x4}); ok {
		t.Fatal("lookup of absent key hit")
	}
}

func TestAddCopiesWords(t *testing.T) {
	tb := New(1, 1)
	w := []uint64{42}
	tb.Add(w, 1, 0)
	w[0] = 99 // caller reuses the buffer; the table must keep its own copy
	if _, ok := tb.Lookup([]uint64{42}); !ok {
		t.Fatal("table did not copy key words")
	}
	if _, ok := tb.Lookup([]uint64{99}); ok {
		t.Fatal("table aliases the caller's buffer")
	}
}

func TestGrowthAndDuplicateHeavy(t *testing.T) {
	// Way past several growth rounds, with every key inserted 3 times.
	tb := New(2, 2)
	const n = 5000
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			tb.Add([]uint64{uint64(i), uint64(i) << 32}, 2, 1)
		}
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	for i := 0; i < n; i++ {
		e, ok := tb.Lookup([]uint64{uint64(i), uint64(i) << 32})
		if !ok || e.Freq != 3 || e.LengthSum != 3 {
			t.Fatalf("key %d: %+v, %v", i, e, ok)
		}
	}
	if lf := tb.LoadFactor(); lf <= 0 || lf > 0.75 {
		t.Fatalf("load factor %v outside (0, 0.75]", lf)
	}
}

func TestDecAndRevive(t *testing.T) {
	tb := New(1, 1)
	w := []uint64{7}
	tb.Add(w, 1, 2.0)
	tb.Add(w, 1, 2.0)
	if !tb.Dec(w, 2.0) {
		t.Fatal("Dec missed a live entry")
	}
	if e, ok := tb.Lookup(w); !ok || e.Freq != 1 {
		t.Fatalf("after Dec: %+v, %v", e, ok)
	}
	if !tb.Dec(w, 2.0) {
		t.Fatal("second Dec missed")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after removing all, want 0", tb.Len())
	}
	if _, ok := tb.Lookup(w); ok {
		t.Fatal("tombstoned entry reported live")
	}
	if tb.Dec(w, 0) {
		t.Fatal("Dec on tombstone succeeded")
	}
	if tb.Dec([]uint64{8}, 0) {
		t.Fatal("Dec on absent key succeeded")
	}
	// Revive: the tombstone keeps its key, so Add finds the same slot.
	tb.Add(w, 1, 5.0)
	if e, ok := tb.Lookup(w); !ok || e.Freq != 1 || e.LengthSum != 5.0 {
		t.Fatalf("revived entry: %+v, %v", e, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after revive, want 1", tb.Len())
	}
}

// TestAdversarialCollisions inserts keys engineered to collide on the slot
// index (identical low hash bits cannot be forced without inverting the
// mix, so instead use keys differing only in high words — any clustering
// weakness shows as unbounded probe chains).
func TestAdversarialCollisions(t *testing.T) {
	tb := New(4, 1)
	const n = 2000
	w := make([]uint64, 4)
	for i := 0; i < n; i++ {
		w[0], w[1], w[2], w[3] = 0xffffffffffffffff, 0, 0, uint64(i)
		tb.Add(w, 4, 0)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	maxProbe := 0
	total := 0
	tb.ProbeLengths(func(d int) {
		total++
		if d > maxProbe {
			maxProbe = d
		}
	})
	if total != n {
		t.Fatalf("ProbeLengths visited %d slots, want %d", total, n)
	}
	// With a mixing hash at load <= 3/4, worst-case displacement stays
	// modest; a weak hash would cluster these near-identical keys into
	// chains hundreds long.
	if maxProbe > 64 {
		t.Fatalf("max probe length %d; hash is clustering", maxProbe)
	}
}

func TestMergeMatchesSerialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const parts, perPart, universe = 5, 3000, 1200
	locals := make([]*Table, parts)
	ref := map[uint64]Entry{}
	for p := 0; p < parts; p++ {
		locals[p] = New(1, 8)
		for i := 0; i < perPart; i++ {
			k := uint64(rng.Intn(universe))
			l := float64(k%7) * 0.25
			locals[p].Add([]uint64{k}, uint32(k%13), l)
			e := ref[k]
			e.Freq++
			e.Size = uint32(k % 13)
			e.LengthSum += l
			ref[k] = e
		}
	}
	m := Merge(locals)
	if m.Len() != len(ref) {
		t.Fatalf("merged Len = %d, want %d", m.Len(), len(ref))
	}
	seen := 0
	m.Range(func(words []uint64, e Entry) bool {
		seen++
		want, ok := ref[words[0]]
		if !ok {
			t.Fatalf("merged table has phantom key %d", words[0])
		}
		if e != want {
			t.Fatalf("key %d: merged %+v, want %+v", words[0], e, want)
		}
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d, want %d", seen, len(ref))
	}
	// Sharding invariant: every key still resolves through Lookup.
	for k, want := range ref {
		e, ok := m.Lookup([]uint64{k})
		if !ok || e != want {
			t.Fatalf("Lookup(%d) = %+v, %v; want %+v", k, e, ok, want)
		}
	}
}

func TestMergeSinglePartIsIdentity(t *testing.T) {
	tb := New(1, 2)
	tb.Add([]uint64{1}, 1, 0)
	if m := Merge([]*Table{tb}); m != tb {
		t.Fatal("single-part Merge should return the part itself")
	}
}

func TestShardSelectionUsesTopBits(t *testing.T) {
	tb := New(1, 16)
	if got := tb.NumShards(); got != 16 {
		t.Fatalf("NumShards = %d, want 16", got)
	}
	for i := 0; i < 1000; i++ {
		tb.Add([]uint64{uint64(i)}, 1, 0)
	}
	// The shard of each key must match the top-bits rule exactly (1-word
	// tables hash with bitset.HashWord).
	for i := 0; i < 1000; i++ {
		h := bitset.HashWord(uint64(i))
		want := int(h >> tb.shardShift)
		found := -1
		for s := 0; s < tb.NumShards(); s++ {
			tb.RangeShard(s, func(words []uint64, e Entry) bool {
				if words[0] == uint64(i) {
					found = s
					return false
				}
				return true
			})
		}
		if found != want {
			t.Fatalf("key %d in shard %d, want %d", i, found, want)
		}
	}
	n := 0
	for s := 0; s < tb.NumShards(); s++ {
		n += tb.ShardLen(s)
	}
	if n != 1000 {
		t.Fatalf("shard lens sum to %d, want 1000", n)
	}
}

func TestHashWordsNeverZeroAndSpreads(t *testing.T) {
	buckets := make([]int, 64)
	for i := 0; i < 1<<14; i++ {
		h := bitset.HashWords([]uint64{uint64(i)})
		if h == 0 {
			t.Fatal("HashWords returned 0")
		}
		buckets[h>>58]++
	}
	for b, c := range buckets {
		if c == 0 {
			t.Fatalf("top-bits bucket %d empty over 16k hashes", b)
		}
	}
}
