package bfhtable

import (
	"fmt"
	"math/bits"
)

// Shard export and install — the storage halves of the on-disk snapshot
// format (internal/bfhsnap). ExportShard hands out a shard's raw slot
// arrays so a writer can serialize them without re-hashing or decoding a
// single key; InstallShard accepts arrays read straight off disk (or
// aliased into a read buffer) and adopts them wholesale, so a restore
// costs one validation pass instead of an insert per entry. The exported
// arrays alias live table storage: hold them only while the table is not
// mutated, and never write through them.

// TableShard is the raw storage of one open-addressing shard: the slot
// arrays exactly as the table keeps them (capacity slots, including empty
// ones and keyed tombstones).
type TableShard struct {
	// Hashes holds one word per slot; 0 marks an empty slot.
	Hashes []uint64
	// Words is the inline key arena: slot i's key occupies
	// Words[i*nw : (i+1)*nw].
	Words []uint64
	// Entries holds one record per slot.
	Entries []Entry
	// Used counts occupied slots (tombstones included); Live counts
	// slots with Freq > 0.
	Used, Live int
}

// ExportShard returns shard s's raw storage. The slices alias the table;
// the caller must not mutate them or the table while holding them.
func (t *Table) ExportShard(s int) TableShard {
	sh := &t.shards[s]
	return TableShard{Hashes: sh.hashes, Words: sh.words, Entries: sh.entries, Used: sh.used, Live: sh.live}
}

// InstallShard replaces shard s with the given storage, adopting the
// slices without copying. It validates the invariants the probe loops
// rely on — power-of-two capacity, the 3/4 load bound (which guarantees
// an empty slot terminates every probe), array lengths consistent with
// the capacity and key width, and Used/Live matching the slot contents —
// so a corrupt snapshot fails here instead of corrupting lookups.
func (t *Table) InstallShard(s int, ts TableShard) error {
	if s < 0 || s >= len(t.shards) {
		return fmt.Errorf("bfhtable: install into shard %d of %d", s, len(t.shards))
	}
	capacity := len(ts.Hashes)
	if capacity == 0 {
		if ts.Used != 0 || ts.Live != 0 || len(ts.Words) != 0 || len(ts.Entries) != 0 {
			return fmt.Errorf("bfhtable: empty shard %d with nonzero contents", s)
		}
		t.shards[s] = shard{}
		return nil
	}
	if capacity&(capacity-1) != 0 {
		return fmt.Errorf("bfhtable: shard %d capacity %d is not a power of two", s, capacity)
	}
	if len(ts.Words) != capacity*t.nw {
		return fmt.Errorf("bfhtable: shard %d has %d key words, want %d", s, len(ts.Words), capacity*t.nw)
	}
	if len(ts.Entries) != capacity {
		return fmt.Errorf("bfhtable: shard %d has %d entries, want %d", s, len(ts.Entries), capacity)
	}
	if 4*ts.Used > 3*capacity {
		return fmt.Errorf("bfhtable: shard %d load %d/%d exceeds the 3/4 bound", s, ts.Used, capacity)
	}
	used, live := 0, 0
	for i, h := range ts.Hashes {
		if h == 0 {
			continue
		}
		used++
		if ts.Entries[i].Freq > 0 {
			live++
		}
	}
	if used != ts.Used || live != ts.Live {
		return fmt.Errorf("bfhtable: shard %d declares used=%d live=%d, slots hold %d/%d",
			s, ts.Used, ts.Live, used, live)
	}
	t.shards[s] = shard{
		mask:    uint64(capacity - 1),
		hashes:  ts.Hashes,
		words:   ts.Words,
		entries: ts.Entries,
		used:    ts.Used,
		live:    ts.Live,
	}
	return nil
}

// SuccinctShard is the raw storage of one succinct shard: slot arrays plus
// the variable-length encoded-key arena.
type SuccinctShard struct {
	// Hashes holds one raw-word hash per slot; 0 marks an empty slot.
	Hashes []uint64
	// Meta holds the packed (popcount bucket, encoded length) header per
	// slot; Offs the key's arena offset.
	Meta, Offs []uint32
	// Entries holds one record per slot.
	Entries []Entry
	// Arena is the encoded-key byte arena.
	Arena []byte
	// Used counts occupied slots (tombstones included); Live counts
	// slots with Freq > 0.
	Used, Live int
}

// ExportShard returns shard s's raw storage. The slices alias the table;
// the caller must not mutate them or the table while holding them.
func (t *SuccinctTable) ExportShard(s int) SuccinctShard {
	sh := &t.shards[s]
	return SuccinctShard{
		Hashes: sh.hashes, Meta: sh.meta, Offs: sh.offs,
		Entries: sh.entries, Arena: sh.arena, Used: sh.used, Live: sh.live,
	}
}

// InstallShard replaces shard s with the given storage, adopting the
// slices without copying. Beyond the open-addressing invariants it also
// bounds-checks every occupied slot's arena reference and encoding tag, so
// a corrupt snapshot cannot make keyAt slice out of bounds or later panic
// the encoding classifier. The per-encoding key-byte totals are folded in
// here.
func (t *SuccinctTable) InstallShard(s int, ss SuccinctShard) error {
	if s < 0 || s >= len(t.shards) {
		return fmt.Errorf("bfhtable: install into shard %d of %d", s, len(t.shards))
	}
	capacity := len(ss.Hashes)
	if capacity == 0 {
		if ss.Used != 0 || ss.Live != 0 || len(ss.Meta) != 0 || len(ss.Offs) != 0 ||
			len(ss.Entries) != 0 || len(ss.Arena) != 0 {
			return fmt.Errorf("bfhtable: empty succinct shard %d with nonzero contents", s)
		}
		t.shards[s] = sshard{}
		return nil
	}
	if capacity&(capacity-1) != 0 {
		return fmt.Errorf("bfhtable: succinct shard %d capacity %d is not a power of two", s, capacity)
	}
	if len(ss.Meta) != capacity || len(ss.Offs) != capacity || len(ss.Entries) != capacity {
		return fmt.Errorf("bfhtable: succinct shard %d array lengths %d/%d/%d, want %d",
			s, len(ss.Meta), len(ss.Offs), len(ss.Entries), capacity)
	}
	if 4*ss.Used > 3*capacity {
		return fmt.Errorf("bfhtable: succinct shard %d load %d/%d exceeds the 3/4 bound", s, ss.Used, capacity)
	}
	used, live := 0, 0
	var perEnc [4]int64
	for i, h := range ss.Hashes {
		if h == 0 {
			continue
		}
		used++
		if ss.Entries[i].Freq > 0 {
			live++
		}
		encLen := uint64(ss.Meta[i] & maxEncLen)
		if encLen == 0 || uint64(ss.Offs[i])+encLen > uint64(len(ss.Arena)) {
			return fmt.Errorf("bfhtable: succinct shard %d slot %d references arena [%d,%d) of %d bytes",
				s, i, ss.Offs[i], uint64(ss.Offs[i])+encLen, len(ss.Arena))
		}
		tag := ss.Arena[ss.Offs[i]]
		if tag > tagDict {
			return fmt.Errorf("bfhtable: succinct shard %d slot %d has unknown key tag %#x", s, i, tag)
		}
		perEnc[tag] += int64(encLen)
	}
	if used != ss.Used || live != ss.Live {
		return fmt.Errorf("bfhtable: succinct shard %d declares used=%d live=%d, slots hold %d/%d",
			s, ss.Used, ss.Live, used, live)
	}
	old := &t.shards[s]
	if old.used > 0 {
		// Replacing a populated shard would double-count keyBytes; installs
		// only ever target empty shards of a fresh table.
		return fmt.Errorf("bfhtable: succinct shard %d is already populated", s)
	}
	t.shards[s] = sshard{
		mask:    uint64(capacity - 1),
		hashes:  ss.Hashes,
		meta:    ss.Meta,
		offs:    ss.Offs,
		entries: ss.Entries,
		arena:   ss.Arena,
		used:    ss.Used,
		live:    ss.Live,
	}
	for k, v := range perEnc {
		t.keyBytes[k] += v
	}
	return nil
}

// InstallDict installs a frozen table's shared-prefix dictionary, marking
// the table frozen (an empty dictionary is a valid frozen state). Arena
// keys installed before or after must already carry this dictionary's
// encodings — InstallDict never re-encodes. The prefix slices are adopted
// without copying.
func (t *SuccinctTable) InstallDict(dict [][]byte) error {
	if t.dict != nil {
		return fmt.Errorf("bfhtable: dictionary already installed")
	}
	if len(dict) > dictMaxEntries {
		return fmt.Errorf("bfhtable: dictionary has %d entries, max %d", len(dict), dictMaxEntries)
	}
	ids := make(map[string]uint8, len(dict))
	for i, p := range dict {
		if len(p) != dictPrefixLen {
			return fmt.Errorf("bfhtable: dictionary entry %d is %d bytes, want %d", i, len(p), dictPrefixLen)
		}
		ids[string(p)] = uint8(i)
	}
	if len(ids) != len(dict) {
		return fmt.Errorf("bfhtable: dictionary has duplicate prefixes")
	}
	if dict == nil {
		dict = [][]byte{}
	}
	t.dict = dict
	t.dictIDs = ids
	return nil
}

// ShardIndex maps a key hash to its shard under the table's partitioning
// rule (the hash's top bits). shards must be the table's NumShards — a
// power of two. Delta builds use it to mark which shards a tree's
// bipartitions touch without holding a table at all.
func ShardIndex(h uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	if shards&(shards-1) != 0 {
		panic(fmt.Sprintf("bfhtable: ShardIndex with non-power-of-two shard count %d", shards))
	}
	shift := uint(64 - bits.TrailingZeros64(uint64(shards)))
	return int(h >> shift)
}

// Totals sums the stored records — Σ Freq and Σ LengthSum over every
// occupied slot (tombstones contribute zero). Restore paths use the
// frequency total to cross-check a snapshot's declared instance count.
func (t *Table) Totals() (sum uint64, lenSum float64) {
	for i := range t.shards {
		sh := &t.shards[i]
		for j, h := range sh.hashes {
			if h == 0 {
				continue
			}
			sum += uint64(sh.entries[j].Freq)
			lenSum += sh.entries[j].LengthSum
		}
	}
	return sum, lenSum
}

// Totals is Table.Totals for the succinct backend.
func (t *SuccinctTable) Totals() (sum uint64, lenSum float64) {
	for i := range t.shards {
		sh := &t.shards[i]
		for j, h := range sh.hashes {
			if h == 0 {
				continue
			}
			sum += uint64(sh.entries[j].Freq)
			lenSum += sh.entries[j].LengthSum
		}
	}
	return sum, lenSum
}
