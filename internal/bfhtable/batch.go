package bfhtable

import "repro/internal/bitset"

// Shard-ordered batched lookups. A query tree probes one bipartition at a
// time in extraction order, which ping-pongs across shards — every probe
// lands on a cold arena region. LookupBatch instead takes a whole block
// of query keys, sorts them by (shard, home slot) with a counting sort
// over the shard index, and probes each shard's arena in ascending slot
// order, so consecutive probes touch adjacent cache lines. Results are
// scattered back to the caller's original order, which keeps the fold —
// and therefore float summation order in the weighted variant —
// bit-identical to the scalar path.

// ProbeBatch is reusable scratch for LookupBatch: key storage, per-key
// hashes, the shard-ordered permutation, and the result array. A zero
// ProbeBatch is ready to use; like a Prober it is single-goroutine state.
type ProbeBatch struct {
	keys    []uint64 // n*nw key words, caller-filled via Reset
	hashes  []uint64
	order   []int32
	entries []Entry
	bucket  [maxShards + 1]int32
}

// Reset sizes the batch for n keys of nw words each and returns the flat
// key buffer and the per-key hash buffer to fill: key i occupies
// keys[i*nw : (i+1)*nw] and hashes[i] must be the table's hashing rule
// applied to it — bipart.Bipartition.Hash is exactly that value, computed
// once at extraction, so the batch path never re-walks the key words to
// hash them. Previous contents are discarded; storage is reused across
// calls.
func (b *ProbeBatch) Reset(n, nw int) (keys, hashes []uint64) {
	need := n * nw
	if cap(b.keys) < need {
		b.keys = make([]uint64, need)
	}
	b.keys = b.keys[:need]
	if cap(b.hashes) < n {
		b.hashes = make([]uint64, n)
		b.order = make([]int32, n)
		b.entries = make([]Entry, n)
	}
	b.hashes = b.hashes[:n]
	b.order = b.order[:n]
	b.entries = b.entries[:n]
	return b.keys, b.hashes
}

// LookupBatch probes the first n keys loaded into pb (via Reset, with
// caller-supplied hashes) and returns the entries in the caller's key
// order; absent and tombstoned keys yield a zero Entry, matching what the
// scalar Lookup reports as (Entry{…Freq: 0…}, false). Like Lookup it
// allocates nothing after the scratch warms up and takes no lock, so it
// is safe concurrently with other readers.
func (t *Table) LookupBatch(pb *ProbeBatch, n int) []Entry {
	nw := t.nw
	keys, hashes, order := pb.keys, pb.hashes, pb.order
	// Pass 1: counting sort by shard index into order.
	shift := t.shardShift
	bucket := &pb.bucket
	for i := range t.shards {
		bucket[i] = 0
	}
	bucket[len(t.shards)] = 0
	if shift >= 64 {
		for i := 0; i < n; i++ {
			order[i] = int32(i)
		}
		bucket[0] = int32(n)
	} else {
		for i := 0; i < n; i++ {
			bucket[hashes[i]>>shift]++
		}
		sum := int32(0)
		for i := 0; i <= len(t.shards); i++ {
			c := bucket[i]
			bucket[i] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			s := hashes[i] >> shift
			order[bucket[s]] = int32(i)
			bucket[s]++
		}
		// bucket[s] now holds the END of shard s's run (exclusive), i.e.
		// the start of shard s+1's run — the walk below uses that.
	}
	// Pass 2: within each shard's run, insertion-sort by home slot, then
	// probe in ascending slot order, scattering entries back to the
	// caller's indices.
	start := int32(0)
	for si := range t.shards {
		end := bucket[si]
		if end <= start {
			start = end
			continue
		}
		s := &t.shards[si]
		if s.used == 0 {
			for k := start; k < end; k++ {
				pb.entries[order[k]] = Entry{}
			}
			start = end
			continue
		}
		mask := s.mask
		run := order[start:end]
		for i := 1; i < len(run); i++ {
			oi := run[i]
			slot := hashes[oi] & mask
			j := i - 1
			for j >= 0 && hashes[run[j]]&mask > slot {
				run[j+1] = run[j]
				j--
			}
			run[j+1] = oi
		}
		for _, oi := range run {
			pb.entries[oi] = s.probeOne(hashes[oi], keys[int(oi)*nw:int(oi)*nw+nw], nw)
		}
		start = end
	}
	return pb.entries[:n]
}

// probeOne is the scalar probe loop shared by the batched path: linear
// probing from the home slot, zero Entry on an empty slot.
func (s *shard) probeOne(h uint64, words []uint64, nw int) Entry {
	i := h & s.mask
	if nw == 1 {
		w := words[0]
		for {
			sh := s.hashes[i]
			if sh == 0 {
				return Entry{}
			}
			if sh == h && s.words[i] == w {
				return s.entries[i]
			}
			i = (i + 1) & s.mask
		}
	}
	for {
		sh := s.hashes[i]
		if sh == 0 {
			return Entry{}
		}
		if sh == h && bitset.EqualWords(s.key(int(i), nw), words) {
			return s.entries[i]
		}
		i = (i + 1) & s.mask
	}
}
