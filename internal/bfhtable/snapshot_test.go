package bfhtable

import (
	"math/rand"
	"testing"
)

// fillRandom inserts n random multi-word keys and returns them for later
// verification. Keys are generated deterministic-per-seed.
func fillRandom(tb testing.TB, t *Table, nw, n int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]uint64, 0, n)
	for i := 0; i < n; i++ {
		k := make([]uint64, nw)
		for j := range k {
			k[j] = rng.Uint64()
		}
		t.Add(k, 5, 1.0)
		keys = append(keys, k)
	}
	return keys
}

func TestTableExportInstallRoundTrip(t *testing.T) {
	const nw, shards, n = 3, 4, 500
	src := New(nw, shards)
	keys := fillRandom(t, src, nw, n, 1)

	dst := New(nw, shards)
	for s := 0; s < shards; s++ {
		if err := dst.InstallShard(s, src.ExportShard(s)); err != nil {
			t.Fatalf("InstallShard(%d): %v", s, err)
		}
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored Len = %d, want %d", dst.Len(), src.Len())
	}
	for _, k := range keys {
		if e, ok := dst.Lookup(k); !ok || e.Freq == 0 {
			t.Fatalf("restored table missing key %x", k)
		}
	}
	wantSum, wantLen := src.Totals()
	gotSum, gotLen := dst.Totals()
	if gotSum != wantSum || gotLen != wantLen {
		t.Fatalf("Totals = (%d, %v), want (%d, %v)", gotSum, gotLen, wantSum, wantLen)
	}
}

func TestTableInstallShardRejectsCorruption(t *testing.T) {
	const nw, shards = 2, 2
	src := New(nw, shards)
	fillRandom(t, src, nw, 100, 2)
	exp := src.ExportShard(0)

	cases := []struct {
		name string
		mut  func(TableShard) TableShard
	}{
		{"wrong used", func(s TableShard) TableShard { s.Used++; return s }},
		{"wrong live", func(s TableShard) TableShard { s.Live--; return s }},
		{"overfull", func(s TableShard) TableShard {
			s.Used = len(s.Hashes) // > 3/4 bound
			return s
		}},
		{"non-pow2", func(s TableShard) TableShard {
			s.Hashes = s.Hashes[:len(s.Hashes)-1]
			return s
		}},
		{"short words", func(s TableShard) TableShard { s.Words = s.Words[:1]; return s }},
		{"short entries", func(s TableShard) TableShard { s.Entries = s.Entries[:1]; return s }},
	}
	for _, tc := range cases {
		dst := New(nw, shards)
		if err := dst.InstallShard(0, tc.mut(clone(exp))); err == nil {
			t.Errorf("%s: install accepted corrupt shard", tc.name)
		}
	}
	dst := New(nw, shards)
	if err := dst.InstallShard(shards, clone(exp)); err == nil {
		t.Errorf("out-of-range shard index accepted")
	}
}

func clone(s TableShard) TableShard {
	c := s
	c.Hashes = append([]uint64(nil), s.Hashes...)
	c.Words = append([]uint64(nil), s.Words...)
	c.Entries = append([]Entry(nil), s.Entries...)
	return c
}

func TestSuccinctExportInstallRoundTrip(t *testing.T) {
	const width, shards, n = 300, 4, 400
	src := NewSuccinct(width, shards)
	rng := rand.New(rand.NewSource(3))
	nw := src.WordsPerKey()
	keys := make([][]uint64, 0, n)
	for i := 0; i < n; i++ {
		k := make([]uint64, nw)
		// Sparse-ish keys so several encodings appear in the arena.
		for j := 0; j < 1+rng.Intn(nw); j++ {
			k[rng.Intn(nw)] = rng.Uint64()
		}
		if k[0] == 0 && k[1] == 0 {
			k[0] = 1
		}
		src.Add(k, 7, 0.5)
		keys = append(keys, k)
	}
	src.Freeze()

	dst := NewSuccinct(width, shards)
	if err := dst.InstallDict(src.DictEntries()); err != nil {
		t.Fatalf("InstallDict: %v", err)
	}
	for s := 0; s < shards; s++ {
		if err := dst.InstallShard(s, src.ExportShard(s)); err != nil {
			t.Fatalf("InstallShard(%d): %v", s, err)
		}
	}
	if !dst.Frozen() {
		t.Fatal("restored table not frozen")
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored Len = %d, want %d", dst.Len(), src.Len())
	}
	for _, k := range keys {
		if e, ok := dst.Lookup(k); !ok || e.Freq == 0 {
			t.Fatalf("restored table missing key %x", k)
		}
	}
	wantSum, wantLen := src.Totals()
	gotSum, gotLen := dst.Totals()
	if gotSum != wantSum || gotLen != wantLen {
		t.Fatalf("Totals = (%d, %v), want (%d, %v)", gotSum, gotLen, wantSum, wantLen)
	}
	r0, s0, c0, d0 := src.KeyByteTotals()
	r1, s1, c1, d1 := dst.KeyByteTotals()
	if r0 != r1 || s0 != s1 || c0 != c1 || d0 != d1 {
		t.Fatalf("KeyByteTotals = (%d,%d,%d,%d), want (%d,%d,%d,%d)", r1, s1, c1, d1, r0, s0, c0, d0)
	}
}

func TestSuccinctInstallShardRejectsCorruption(t *testing.T) {
	const width, shards = 200, 2
	src := NewSuccinct(width, shards)
	rng := rand.New(rand.NewSource(4))
	nw := src.WordsPerKey()
	for i := 0; i < 150; i++ {
		k := make([]uint64, nw)
		k[rng.Intn(nw)] = rng.Uint64() | 1
		src.Add(k, 3, 1.0)
	}
	exp := src.ExportShard(0)
	if exp.Used == 0 {
		t.Skip("shard 0 empty under this seed")
	}

	firstOcc := -1
	for i, h := range exp.Hashes {
		if h != 0 {
			firstOcc = i
			break
		}
	}

	cases := []struct {
		name string
		mut  func(SuccinctShard) SuccinctShard
	}{
		{"wrong used", func(s SuccinctShard) SuccinctShard { s.Used++; return s }},
		{"arena overrun", func(s SuccinctShard) SuccinctShard {
			s.Offs[firstOcc] = uint32(len(s.Arena))
			return s
		}},
		{"zero encLen", func(s SuccinctShard) SuccinctShard {
			s.Meta[firstOcc] &^= maxEncLen
			return s
		}},
		{"bad tag", func(s SuccinctShard) SuccinctShard {
			s.Arena[s.Offs[firstOcc]] = 0x7f
			return s
		}},
		{"short meta", func(s SuccinctShard) SuccinctShard { s.Meta = s.Meta[:1]; return s }},
	}
	for _, tc := range cases {
		dst := NewSuccinct(width, shards)
		if err := dst.InstallShard(0, tc.mut(sclone(exp))); err == nil {
			t.Errorf("%s: install accepted corrupt shard", tc.name)
		}
	}
}

func sclone(s SuccinctShard) SuccinctShard {
	c := s
	c.Hashes = append([]uint64(nil), s.Hashes...)
	c.Meta = append([]uint32(nil), s.Meta...)
	c.Offs = append([]uint32(nil), s.Offs...)
	c.Entries = append([]Entry(nil), s.Entries...)
	c.Arena = append([]byte(nil), s.Arena...)
	return c
}

func TestInstallDictValidation(t *testing.T) {
	mk := func(b byte) []byte {
		p := make([]byte, dictPrefixLen)
		p[0] = b
		return p
	}
	t.Run("duplicate", func(t *testing.T) {
		dst := NewSuccinct(100, 1)
		if err := dst.InstallDict([][]byte{mk(1), mk(1)}); err == nil {
			t.Fatal("duplicate prefixes accepted")
		}
	})
	t.Run("wrong length", func(t *testing.T) {
		dst := NewSuccinct(100, 1)
		if err := dst.InstallDict([][]byte{{1, 2, 3}}); err == nil {
			t.Fatal("short prefix accepted")
		}
	})
	t.Run("twice", func(t *testing.T) {
		dst := NewSuccinct(100, 1)
		if err := dst.InstallDict(nil); err != nil {
			t.Fatalf("empty dict: %v", err)
		}
		if !dst.Frozen() {
			t.Fatal("empty dict did not freeze the table")
		}
		if err := dst.InstallDict(nil); err == nil {
			t.Fatal("second InstallDict accepted")
		}
	})
}

func TestShardIndexMatchesTable(t *testing.T) {
	for _, shards := range []int{1, 2, 8, 256} {
		tb := New(1, shards)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 1000; i++ {
			h := rng.Uint64() | 1
			want := 0
			if tb.shardShift < 64 {
				want = int(h >> tb.shardShift)
			}
			if got := ShardIndex(h, shards); got != want {
				t.Fatalf("ShardIndex(%#x, %d) = %d, want %d", h, shards, got, want)
			}
		}
	}
}
