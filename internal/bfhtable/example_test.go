package bfhtable_test

import (
	"fmt"

	"repro/internal/bfhtable"
)

// Example folds a few bipartition occurrences into the open-addressing
// table and reads one back. Keys are the canonical mask words themselves;
// no string key is ever materialized.
func Example() {
	t := bfhtable.New(1, 4) // one-word keys (catalogue of ≤64 taxa), 4 shards

	ab := []uint64{0b0011} // the split {A,B} | rest as a bit mask
	cd := []uint64{0b1100}
	t.Add(ab, 2, 0) // seen in one reference tree...
	t.Add(ab, 2, 0) // ...and another
	t.Add(cd, 2, 0)

	e, ok := t.Lookup(ab)
	fmt.Printf("unique=%d {A,B}: found=%t freq=%d size=%d\n", t.Len(), ok, e.Freq, e.Size)
	_, ok = t.Lookup([]uint64{0b0101})
	fmt.Printf("{A,C}: found=%t\n", ok)
	// Output:
	// unique=2 {A,B}: found=true freq=2 size=2
	// {A,C}: found=false
}
