package bfhtable

import (
	"bytes"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"unsafe"

	"repro/internal/bitset"
)

// This file implements SuccinctTable, the compressed-key sibling of Table
// for huge-n catalogues. A Table key is the full canonical mask — n/8
// bytes per unique bipartition, which at n=8192 makes the arena dwarf the
// trees themselves. SuccinctTable stores each key in the self-describing
// raw/sparse/cosparse encoding of bitset.AppendWordsKey inside a per-shard
// variable-length byte arena, plus an optional shared-prefix dictionary
// built at Freeze time: biological splits are overwhelmingly shallow or
// deep, so most keys collapse to a handful of varint deltas and common
// clade prefixes collapse further to a 2-byte dictionary reference.
//
// Probing stays open-addressing with linear probing, sharded and hashed
// exactly like Table (the raw-word hash, so callers reuse the
// bipartition's precomputed hash). Each slot additionally carries a packed
// (popcount bucket, encoded length) header word; a probe compares hash,
// then header, and only byte-compares arena keys when both match — keys of
// different cardinality or different encoded size are rejected without
// touching the arena at all.

const (
	// tagDict marks a dictionary-compressed key: the first dictPrefixLen
	// bytes of the plain encoding are replaced by [tagDict, id]. Plain
	// encodings only use tags 0x00–0x02, so the tag spaces are disjoint
	// and the combined encoding stays a bijection on vectors.
	tagDict = 0x03

	// dictPrefixLen is the number of leading plain-encoding bytes one
	// dictionary entry covers. Each dictionary hit saves
	// dictPrefixLen-2 bytes.
	dictPrefixLen = 12

	// dictMaxEntries bounds the dictionary so an id fits one byte.
	dictMaxEntries = 256

	// dictMinCount is the minimum number of keys sharing a prefix before
	// the prefix earns a dictionary slot; a singleton prefix would cost
	// dictionary space without saving arena bytes overall.
	dictMinCount = 2

	// metaLenBits is the width of the encoded-length field in a slot's
	// packed header; the top 8 bits hold the popcount bucket.
	metaLenBits = 24
	maxEncLen   = 1<<metaLenBits - 1
)

// sshard is one open-addressing sub-table over encoded keys. Slot i's key
// bytes live at arena[offs[i] : offs[i]+len] with len taken from meta[i];
// hashes[i] == 0 marks an empty slot.
type sshard struct {
	mask    uint64
	hashes  []uint64
	meta    []uint32 // popcount bucket <<24 | encoded key length
	offs    []uint32
	entries []Entry
	arena   []byte
	used    int // occupied slots, including Freq==0 tombstones
	live    int // slots with Freq > 0
}

// SuccinctTable is the sharded open-addressing frequency table over
// compressed bipartition keys. Build with NewSuccinct + Add (or AddEntry),
// optionally MergeSuccinct worker-local parts, then Freeze once to mint
// the shared-prefix dictionary; after that any number of readers may probe
// concurrently via AppendEncoded + LookupEncoded, exactly the
// build-once/query-many contract of Table.
type SuccinctTable struct {
	shards     []sshard
	shardShift uint
	nw         int              // words per decoded key
	width      int              // catalogue size in bits
	dict       [][]byte         // id → prefix bytes; non-nil once frozen
	dictIDs    map[string]uint8 // prefix → id
	keyBytes   [4]int64         // arena bytes by encoding: raw/sparse/cosparse/dict
	enc        []byte           // owner-only scratch for Add/AddEntry/Dec
}

// NewSuccinct returns an empty succinct table for a catalogue of width
// taxa, partitioned like New (shards rounded to a power of two in
// [1, 256]).
func NewSuccinct(width, shards int) *SuccinctTable {
	if width < 0 {
		panic(fmt.Sprintf("bfhtable: negative width %d", width))
	}
	s := nextPow2(shards)
	if s < 1 {
		s = 1
	}
	if s > maxShards {
		s = maxShards
	}
	t := &SuccinctTable{
		shards: make([]sshard, s),
		nw:     (width + 63) / 64,
		width:  width,
	}
	t.shardShift = uint(64 - bits.TrailingZeros64(uint64(s)))
	return t
}

// Width returns the catalogue size in bits.
func (t *SuccinctTable) Width() int { return t.width }

// WordsPerKey returns the decoded key width in words.
func (t *SuccinctTable) WordsPerKey() int { return t.nw }

// NumShards returns the shard count.
func (t *SuccinctTable) NumShards() int { return len(t.shards) }

// Frozen reports whether Freeze has run (the dictionary exists, possibly
// empty).
func (t *SuccinctTable) Frozen() bool { return t.dict != nil }

// Len returns the number of live entries (Freq > 0).
func (t *SuccinctTable) Len() int {
	n := 0
	for i := range t.shards {
		n += t.shards[i].live
	}
	return n
}

// ShardLen returns the number of live entries in one shard.
func (t *SuccinctTable) ShardLen(s int) int { return t.shards[s].live }

// FootprintBytes returns the table's resident size: slot arrays, entry
// arrays, the compressed key arenas, and the dictionary.
func (t *SuccinctTable) FootprintBytes() int64 {
	const entryBytes = int64(unsafe.Sizeof(Entry{}))
	var b int64
	for i := range t.shards {
		s := &t.shards[i]
		b += int64(len(s.hashes))*8 + int64(len(s.meta))*4 + int64(len(s.offs))*4 +
			int64(len(s.entries))*entryBytes + int64(cap(s.arena))
	}
	for _, p := range t.dict {
		b += int64(len(p)) + 16 // prefix bytes + slice header
	}
	return b
}

// KeyByteTotals returns the arena bytes currently stored under each
// encoding — the bfhrf_key_bytes_total{encoding=...} metric source.
func (t *SuccinctTable) KeyByteTotals() (raw, sparse, cosparse, dict int64) {
	return t.keyBytes[0], t.keyBytes[1], t.keyBytes[2], t.keyBytes[3]
}

// shardOf selects the shard by the hash's top bits, identical to Table.
func (t *SuccinctTable) shardOf(h uint64) *sshard {
	if t.shardShift >= 64 {
		return &t.shards[0]
	}
	return &t.shards[h>>t.shardShift]
}

// hashOf is the same one hashing rule as Table: raw-word hashing, so the
// bipartition's precomputed hash routes both backends identically.
func (t *SuccinctTable) hashOf(words []uint64) uint64 {
	if t.nw == 1 {
		return bitset.HashWord(words[0])
	}
	return bitset.HashWords(words)
}

func packMeta(ones, encLen int) uint32 {
	if encLen > maxEncLen {
		panic(fmt.Sprintf("bfhtable: encoded key of %d bytes exceeds the %d-bit length field", encLen, metaLenBits))
	}
	bucket := ones
	if bucket > 255 {
		bucket = 255
	}
	return uint32(bucket)<<metaLenBits | uint32(encLen)
}

// keyAt returns slot i's encoded key bytes.
func (s *sshard) keyAt(i int) []byte {
	off := s.offs[i]
	return s.arena[off : off+s.meta[i]&maxEncLen]
}

// findSlot probes for h/meta/enc, returning the matching or first empty
// slot. Most misses reject on the hash word or the packed header without
// reading arena bytes. The caller guarantees an empty slot exists.
func (s *sshard) findSlot(h uint64, meta uint32, enc []byte) int {
	i := h & s.mask
	for {
		sh := s.hashes[i]
		if sh == 0 {
			return int(i)
		}
		if sh == h && s.meta[i] == meta && bytes.Equal(s.keyAt(int(i)), enc) {
			return int(i)
		}
		i = (i + 1) & s.mask
	}
}

// grow doubles the shard's slot arrays, re-placing by stored hash. The
// arena is untouched: offsets and headers travel with their slots, so
// growth never copies or re-encodes a key.
func (s *sshard) grow() {
	oldHashes, oldMeta, oldOffs, oldEntries := s.hashes, s.meta, s.offs, s.entries
	capacity := 2 * len(oldHashes)
	if capacity < minShardCap {
		capacity = minShardCap
	}
	s.hashes = make([]uint64, capacity)
	s.meta = make([]uint32, capacity)
	s.offs = make([]uint32, capacity)
	s.entries = make([]Entry, capacity)
	s.mask = uint64(capacity - 1)
	for i, h := range oldHashes {
		if h == 0 {
			continue
		}
		off := oldOffs[i]
		key := s.arena[off : off+oldMeta[i]&maxEncLen]
		j := s.findSlot(h, oldMeta[i], key)
		s.hashes[j] = h
		s.meta[j] = oldMeta[i]
		s.offs[j] = off
		s.entries[j] = oldEntries[i]
	}
}

func (s *sshard) ensure() {
	if len(s.hashes) == 0 || 4*(s.used+1) > 3*len(s.hashes) {
		s.grow()
	}
}

// upsert returns the slot for the encoded key, inserting it if absent and
// reporting whether it was inserted.
func (s *sshard) upsert(h uint64, meta uint32, enc []byte) (int, bool) {
	s.ensure()
	i := s.findSlot(h, meta, enc)
	if s.hashes[i] != 0 {
		return i, false
	}
	s.hashes[i] = h
	s.meta[i] = meta
	s.offs[i] = uint32(len(s.arena))
	s.arena = append(s.arena, enc...)
	s.used++
	return i, true
}

// appendEncode writes the table's encoding of words (dictionary form when
// frozen and the prefix is in the dictionary) to dst and returns the
// extended slice plus the packed header. It only reads table state, so
// concurrent callers with private dst buffers are safe.
func (t *SuccinctTable) appendEncode(dst []byte, words []uint64) ([]byte, uint32) {
	start := len(dst)
	dst, ones := bitset.AppendWordsKey(dst, words, t.width)
	if len(t.dictIDs) > 0 {
		if enc := dst[start:]; len(enc) >= dictPrefixLen {
			if id, ok := t.dictIDs[string(enc[:dictPrefixLen])]; ok {
				rest := enc[dictPrefixLen:]
				enc[0] = tagDict
				enc[1] = id
				n := copy(enc[2:], rest)
				dst = dst[:start+2+n]
			}
		}
	}
	return dst, packMeta(ones, len(dst)-start)
}

// AppendEncoded is the concurrent probe-side encoder: it appends the
// table's encoding of words to dst and returns the extended slice and the
// packed (bucket, length) header to pass to LookupEncoded. Reusing dst
// across calls makes the query path allocation-free.
func (t *SuccinctTable) AppendEncoded(dst []byte, words []uint64) ([]byte, uint32) {
	return t.appendEncode(dst, words)
}

// encodingIndex classifies an encoded key for the keyBytes totals.
func encodingIndex(tag byte) int {
	if tag > tagDict {
		panic(fmt.Sprintf("bfhtable: unknown key tag %#x", tag))
	}
	return int(tag)
}

// Add folds one bipartition occurrence, exactly as Table.Add. words must
// hold the canonical mask; they are encoded into the arena on first
// insertion, so the caller may reuse the slice. Add is single-owner:
// concurrent mutation is not safe (build workers own private tables).
func (t *SuccinctTable) Add(words []uint64, size uint32, length float64) {
	var meta uint32
	t.enc, meta = t.appendEncode(t.enc[:0], words)
	h := t.hashOf(words)
	s := t.shardOf(h)
	i, inserted := s.upsert(h, meta, t.enc)
	if inserted {
		t.keyBytes[encodingIndex(t.enc[0])] += int64(len(t.enc))
	}
	e := &s.entries[i]
	if e.Freq == 0 {
		s.live++
	}
	e.Freq++
	e.Size = size
	e.LengthSum += length
}

// AddEntry folds a whole pre-aggregated entry (restore paths), exactly as
// Table.AddEntry. Single-owner like Add.
func (t *SuccinctTable) AddEntry(words []uint64, e Entry) {
	var meta uint32
	t.enc, meta = t.appendEncode(t.enc[:0], words)
	h := t.hashOf(words)
	s := t.shardOf(h)
	i, inserted := s.upsert(h, meta, t.enc)
	if inserted {
		t.keyBytes[encodingIndex(t.enc[0])] += int64(len(t.enc))
	}
	se := &s.entries[i]
	if se.Freq == 0 && e.Freq > 0 {
		s.live++
	}
	se.Freq += e.Freq
	se.Size = e.Size
	se.LengthSum += e.LengthSum
}

// LookupEncoded probes for a key previously encoded with AppendEncoded.
// h must be the raw-word hash of the decoded key (the table's hashing
// rule); meta the packed header AppendEncoded returned. No allocation, no
// lock: concurrent lookups are safe while no mutation is in flight.
func (t *SuccinctTable) LookupEncoded(h uint64, enc []byte, meta uint32) (Entry, bool) {
	s := t.shardOf(h)
	if s.used == 0 {
		return Entry{}, false
	}
	i := h & s.mask
	for {
		sh := s.hashes[i]
		if sh == 0 {
			return Entry{}, false
		}
		if sh == h && s.meta[i] == meta && bytes.Equal(s.keyAt(int(i)), enc) {
			e := s.entries[i]
			return e, e.Freq > 0
		}
		i = (i + 1) & s.mask
	}
}

// Lookup probes for a canonical mask, encoding into a transient buffer.
// Convenience for tests and cold paths; hot paths carry their own scratch
// through AppendEncoded + LookupEncoded.
func (t *SuccinctTable) Lookup(words []uint64) (Entry, bool) {
	enc, meta := t.appendEncode(make([]byte, 0, 64), words)
	return t.LookupEncoded(t.hashOf(words), enc, meta)
}

// Dec subtracts one occurrence, with Table.Dec's keyed-tombstone
// semantics: a key whose frequency reaches 0 stays in the arena so probe
// chains stay intact and a later Add revives it. Single-owner like Add.
func (t *SuccinctTable) Dec(words []uint64, length float64) bool {
	var meta uint32
	t.enc, meta = t.appendEncode(t.enc[:0], words)
	h := t.hashOf(words)
	s := t.shardOf(h)
	if s.used == 0 {
		return false
	}
	i := h & s.mask
	for {
		sh := s.hashes[i]
		if sh == 0 {
			return false
		}
		if sh == h && s.meta[i] == meta && bytes.Equal(s.keyAt(int(i)), t.enc) {
			e := &s.entries[i]
			if e.Freq == 0 {
				return false
			}
			e.Freq--
			e.LengthSum -= length
			if e.Freq == 0 {
				e.LengthSum = 0 // shed float dust so a revived entry restarts clean
				s.live--
			}
			return true
		}
		i = (i + 1) & s.mask
	}
}

// decodeInto decodes an encoded key (dictionary form included) into words,
// growing and returning the byte scratch used for dictionary reassembly.
func (t *SuccinctTable) decodeInto(words []uint64, enc []byte, scratch []byte) ([]byte, error) {
	if len(enc) > 0 && enc[0] == tagDict {
		if len(enc) < 2 || int(enc[1]) >= len(t.dict) {
			return scratch, fmt.Errorf("bfhtable: corrupt dictionary key")
		}
		scratch = append(scratch[:0], t.dict[enc[1]]...)
		scratch = append(scratch, enc[2:]...)
		return scratch, bitset.DecodeWordsKey(words, scratch, t.width)
	}
	return scratch, bitset.DecodeWordsKey(words, enc, t.width)
}

// Range calls fn for every live entry, shard by shard in slot order. The
// words slice is a per-call scratch reused between invocations: valid only
// during the call and never to be retained or mutated. fn returning false
// stops the iteration.
func (t *SuccinctTable) Range(fn func(words []uint64, e Entry) bool) {
	for s := range t.shards {
		if !t.RangeShard(s, fn) {
			return
		}
	}
}

// RangeShard is Range over a single shard; it reports whether iteration
// ran to completion (false when fn stopped it).
func (t *SuccinctTable) RangeShard(s int, fn func(words []uint64, e Entry) bool) bool {
	sh := &t.shards[s]
	words := make([]uint64, t.nw)
	var scratch []byte
	for i, h := range sh.hashes {
		if h == 0 || sh.entries[i].Freq == 0 {
			continue
		}
		var err error
		scratch, err = t.decodeInto(words, sh.keyAt(i), scratch)
		if err != nil {
			panic(fmt.Sprintf("bfhtable: arena key failed to decode: %v", err))
		}
		if !fn(words, sh.entries[i]) {
			return false
		}
	}
	return true
}

// RangeShardEncoded iterates one shard's live entries handing out the
// stored encoded key bytes instead of decoded words — the snapshot
// serialization path, which ships the compressed arena as-is. The byte
// slice aliases the arena: valid only during the call, never mutated.
func (t *SuccinctTable) RangeShardEncoded(s int, fn func(enc []byte, e Entry) bool) bool {
	sh := &t.shards[s]
	for i, h := range sh.hashes {
		if h == 0 || sh.entries[i].Freq == 0 {
			continue
		}
		if !fn(sh.keyAt(i), sh.entries[i]) {
			return false
		}
	}
	return true
}

// DictEntries returns the frozen dictionary's prefixes (nil before
// Freeze). The slices alias table storage; callers must not mutate them.
func (t *SuccinctTable) DictEntries() [][]byte { return t.dict }

// DecodeKeyWithDict decodes an encoded key produced by a table frozen
// with the given dictionary into dst (wordsFor(width) words) — the
// snapshot restore path, which receives arena bytes and the dictionary
// over the wire without a table in hand. scratch is reused for dictionary
// reassembly and returned possibly grown.
func DecodeKeyWithDict(dst []uint64, enc []byte, dict [][]byte, scratch []byte, width int) ([]byte, error) {
	if len(enc) > 0 && enc[0] == tagDict {
		if len(enc) < 2 || int(enc[1]) >= len(dict) {
			return scratch, fmt.Errorf("bfhtable: dictionary key references missing entry")
		}
		scratch = append(scratch[:0], dict[enc[1]]...)
		scratch = append(scratch, enc[2:]...)
		return scratch, bitset.DecodeWordsKey(dst, scratch, width)
	}
	return scratch, bitset.DecodeWordsKey(dst, enc, width)
}

// Freeze builds the shared-prefix dictionary from the keys currently in
// the table and re-encodes every arena in parallel, one goroutine per
// shard. Call it once, after the build's MergeSuccinct: worker-local parts
// must stay dictionary-free so merge byte-compares agree, and a dictionary
// minted from the full key population compresses better than any
// worker-local view. Freeze is idempotent; inserts after Freeze use the
// frozen dictionary. The dictionary is deterministic for a given key set:
// candidate prefixes are ranked by count, ties broken lexicographically.
func (t *SuccinctTable) Freeze() {
	if t.dict != nil {
		return
	}
	counts := make(map[string]int)
	for si := range t.shards {
		s := &t.shards[si]
		for i, h := range s.hashes {
			if h == 0 {
				continue
			}
			key := s.keyAt(i)
			if len(key) >= dictPrefixLen {
				counts[string(key[:dictPrefixLen])]++
			}
		}
	}
	cands := make([]string, 0, len(counts))
	for p, c := range counts {
		if c >= dictMinCount {
			cands = append(cands, p)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if counts[cands[i]] != counts[cands[j]] {
			return counts[cands[i]] > counts[cands[j]]
		}
		return cands[i] < cands[j]
	})
	if len(cands) > dictMaxEntries {
		cands = cands[:dictMaxEntries]
	}
	t.dict = make([][]byte, len(cands))
	t.dictIDs = make(map[string]uint8, len(cands))
	for id, p := range cands {
		t.dict[id] = []byte(p)
		t.dictIDs[p] = uint8(id)
	}
	if len(cands) == 0 {
		return // frozen (dict non-nil, empty); nothing to re-encode
	}

	var totals [4]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si := range t.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s := &t.shards[si]
			if s.used == 0 {
				return
			}
			var local [4]int64
			arena := make([]byte, 0, len(s.arena))
			for i, h := range s.hashes {
				if h == 0 {
					continue
				}
				key := s.keyAt(i)
				off := len(arena)
				if len(key) >= dictPrefixLen {
					if id, ok := t.dictIDs[string(key[:dictPrefixLen])]; ok {
						arena = append(arena, tagDict, id)
						arena = append(arena, key[dictPrefixLen:]...)
						s.offs[i] = uint32(off)
						s.meta[i] = s.meta[i]&^uint32(maxEncLen) | uint32(len(arena)-off)
						local[tagDict] += int64(len(arena) - off)
						continue
					}
				}
				arena = append(arena, key...)
				s.offs[i] = uint32(off)
				local[encodingIndex(key[0])] += int64(len(key))
			}
			s.arena = arena
			mu.Lock()
			for k, v := range local {
				totals[k] += v
			}
			mu.Unlock()
		}(si)
	}
	wg.Wait()
	t.keyBytes = totals
}

// MergeSuccinct folds worker-local succinct tables into one, in parallel
// across shards exactly like Merge, consuming the parts as it goes. All
// parts must share width and shard count and must not be frozen — worker
// parts carry no dictionary, so encoded keys byte-compare consistently
// across parts. The result is unfrozen; the build calls Freeze on it once.
func MergeSuccinct(parts []*SuccinctTable) *SuccinctTable {
	if len(parts) == 0 {
		panic("bfhtable: MergeSuccinct of no tables")
	}
	width, ns := parts[0].width, len(parts[0].shards)
	for _, p := range parts {
		if p.width != width || len(p.shards) != ns {
			panic(fmt.Sprintf("bfhtable: MergeSuccinct shape mismatch: (width %d, %d shards) vs (%d, %d)",
				width, ns, p.width, len(p.shards)))
		}
		if p.Frozen() {
			panic("bfhtable: MergeSuccinct of a frozen table")
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	out := NewSuccinct(width, ns)
	var totals [4]int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s := 0; s < ns; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			os := &out.shards[s]
			total, arenaBytes := 0, 0
			for _, p := range parts {
				total += p.shards[s].used
				arenaBytes += len(p.shards[s].arena)
			}
			if total == 0 {
				return
			}
			capacity := nextPow2(total*4/3 + 1)
			if capacity < minShardCap {
				capacity = minShardCap
			}
			os.hashes = make([]uint64, capacity)
			os.meta = make([]uint32, capacity)
			os.offs = make([]uint32, capacity)
			os.entries = make([]Entry, capacity)
			os.arena = make([]byte, 0, arenaBytes)
			os.mask = uint64(capacity - 1)
			var local [4]int64
			for _, p := range parts {
				ps := &p.shards[s]
				for i, h := range ps.hashes {
					if h == 0 {
						continue
					}
					key := ps.keyAt(i)
					j := os.findSlot(h, ps.meta[i], key)
					oe := &os.entries[j]
					if os.hashes[j] == 0 {
						os.hashes[j] = h
						os.meta[j] = ps.meta[i]
						os.offs[j] = uint32(len(os.arena))
						os.arena = append(os.arena, key...)
						os.used++
						local[encodingIndex(key[0])] += int64(len(key))
					}
					pe := ps.entries[i]
					if oe.Freq == 0 && pe.Freq > 0 {
						os.live++
					}
					oe.Freq += pe.Freq
					oe.Size = pe.Size
					oe.LengthSum += pe.LengthSum
				}
				// The part shard is spent: release its arrays (arena
				// included) now, capping the merge's transient peak.
				*ps = sshard{}
			}
			mu.Lock()
			for k, v := range local {
				totals[k] += v
			}
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	out.keyBytes = totals
	return out
}

// LoadFactor returns occupied slots over total slots across all shards
// (0 for an empty table) — the bfhrf_hash_load_factor gauge.
func (t *SuccinctTable) LoadFactor() float64 {
	slots, used := 0, 0
	for i := range t.shards {
		slots += len(t.shards[i].hashes)
		used += t.shards[i].used
	}
	if slots == 0 {
		return 0
	}
	return float64(used) / float64(slots)
}

// ProbeLengths calls fn with the displacement of every occupied slot from
// its home slot (0 = direct hit) — the source of the
// bfhrf_succinct_bucket_probe_length histogram. Because the probe loop
// rejects non-matching slots on the packed (bucket, length) header,
// displacement is the number of header comparisons a hit pays, not the
// number of key-byte comparisons.
func (t *SuccinctTable) ProbeLengths(fn func(displacement int)) {
	for s := range t.shards {
		sh := &t.shards[s]
		for i, h := range sh.hashes {
			if h == 0 {
				continue
			}
			home := h & sh.mask
			fn(int((uint64(i) - home) & sh.mask))
		}
	}
}
