package bfhtable

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// randMask returns a canonical-looking width-bit mask: bit 0 clear (the
// anchor side convention) and a density drawn from sparse, dense, and
// balanced regimes so every encoding gets exercised.
func randMask(rng *rand.Rand, width int) []uint64 {
	nw := (width + 63) / 64
	words := make([]uint64, nw)
	var p float64
	switch rng.Intn(3) {
	case 0:
		p = 0.01
	case 1:
		p = 0.99
	default:
		p = 0.5
	}
	for i := 1; i < width; i++ {
		if rng.Float64() < p {
			words[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return words
}

func popcount(words []uint64) uint32 {
	return uint32(bitset.PopCountWords(words))
}

// TestSuccinctMatchesTable drives the same operation sequence into a Table
// and a SuccinctTable and demands identical observable state: Len,
// Lookup results for present and absent keys, Dec/tombstone semantics.
func TestSuccinctMatchesTable(t *testing.T) {
	for _, width := range []int{40, 64, 100, 1000, 4096} {
		rng := rand.New(rand.NewSource(int64(width)))
		nw := (width + 63) / 64
		oa := New(nw, 4)
		st := NewSuccinct(width, 4)
		masks := make([][]uint64, 0, 200)
		for i := 0; i < 200; i++ {
			m := randMask(rng, width)
			masks = append(masks, m)
			reps := 1 + rng.Intn(3)
			for r := 0; r < reps; r++ {
				oa.Add(m, popcount(m), 0.25)
				st.Add(m, popcount(m), 0.25)
			}
		}
		if oa.Len() != st.Len() {
			t.Fatalf("width=%d: Len %d vs %d", width, st.Len(), oa.Len())
		}
		check := func(stage string) {
			t.Helper()
			for _, m := range masks {
				we, wok := oa.Lookup(m)
				ge, gok := st.Lookup(m)
				if wok != gok || we != ge {
					t.Fatalf("width=%d %s: lookup mismatch: (%v,%v) vs (%v,%v)", width, stage, ge, gok, we, wok)
				}
			}
			for i := 0; i < 50; i++ {
				m := randMask(rng, width)
				we, wok := oa.Lookup(m)
				ge, gok := st.Lookup(m)
				if wok != gok || we != ge {
					t.Fatalf("width=%d %s: random-probe mismatch", width, stage)
				}
			}
		}
		check("after build")
		// Dec some keys to tombstones and past them; both must agree.
		for i := 0; i < 40; i++ {
			m := masks[rng.Intn(len(masks))]
			if oa.Dec(m, 0.25) != st.Dec(m, 0.25) {
				t.Fatalf("width=%d: Dec disagreement", width)
			}
		}
		if oa.Len() != st.Len() {
			t.Fatalf("width=%d after Dec: Len %d vs %d", width, st.Len(), oa.Len())
		}
		check("after Dec")
		// Freeze mints the dictionary; lookups must be unchanged.
		st.Freeze()
		check("after Freeze")
		// Post-freeze inserts (tombstone revival included) still agree.
		for i := 0; i < 40; i++ {
			m := masks[rng.Intn(len(masks))]
			oa.Add(m, popcount(m), 0.5)
			st.Add(m, popcount(m), 0.5)
		}
		if oa.Len() != st.Len() {
			t.Fatalf("width=%d after revive: Len %d vs %d", width, st.Len(), oa.Len())
		}
		check("after post-freeze adds")
	}
}

// TestSuccinctMergeMatchesSerialFold splits one insertion stream across
// worker parts, merges, and compares against a single-owner table — and
// checks the consuming contract (parts emptied).
func TestSuccinctMergeMatchesSerialFold(t *testing.T) {
	const width, parts = 300, 4
	rng := rand.New(rand.NewSource(7))
	want := NewSuccinct(width, 8)
	ps := make([]*SuccinctTable, parts)
	for i := range ps {
		ps[i] = NewSuccinct(width, 8)
	}
	masks := make([][]uint64, 0, 500)
	for i := 0; i < 500; i++ {
		m := randMask(rng, width)
		masks = append(masks, m)
		want.Add(m, popcount(m), 1)
		ps[rng.Intn(parts)].Add(m, popcount(m), 1)
	}
	got := MergeSuccinct(ps)
	if got.Len() != want.Len() {
		t.Fatalf("merged Len %d, want %d", got.Len(), want.Len())
	}
	for _, m := range masks {
		ge, gok := got.Lookup(m)
		we, wok := want.Lookup(m)
		if gok != wok || ge != we {
			t.Fatalf("merged lookup mismatch: (%v,%v) vs (%v,%v)", ge, gok, we, wok)
		}
	}
	for i, p := range ps {
		for s := range p.shards {
			if p.shards[s].used != 0 || p.shards[s].arena != nil {
				t.Fatalf("part %d shard %d not consumed", i, s)
			}
		}
	}
}

// TestSuccinctFreezeDictionary builds a population with heavily shared
// prefixes and verifies Freeze actually moves arena bytes into the dict
// encoding, shrinks the arena, and keeps every lookup intact.
func TestSuccinctFreezeDictionary(t *testing.T) {
	const width = 2048
	st := NewSuccinct(width, 4)
	nw := (width + 63) / 64
	masks := make([][]uint64, 0, 256)
	// Sparse splits sharing their first set bits: identical leading varint
	// deltas, so their encodings share prefixes longer than dictPrefixLen.
	for i := 0; i < 256; i++ {
		words := make([]uint64, nw)
		for b := 64; b < 64+24; b++ {
			words[b/64] |= 1 << (uint(b) % 64)
		}
		tail := 1024 + i*3
		words[tail/64] |= 1 << (uint(tail) % 64)
		masks = append(masks, words)
		st.Add(words, popcount(words), 0)
	}
	before := st.FootprintBytes()
	raw0, sp0, co0, d0 := st.KeyByteTotals()
	if d0 != 0 {
		t.Fatalf("dict bytes before freeze: %d", d0)
	}
	arenaBefore := raw0 + sp0 + co0
	st.Freeze()
	if !st.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	raw1, sp1, co1, d1 := st.KeyByteTotals()
	if d1 == 0 {
		t.Fatal("no keys moved to the dictionary encoding")
	}
	arenaAfter := raw1 + sp1 + co1 + d1
	if arenaAfter >= arenaBefore {
		t.Fatalf("freeze did not shrink arena bytes: %d -> %d", arenaBefore, arenaAfter)
	}
	if after := st.FootprintBytes(); after >= before {
		t.Fatalf("freeze did not shrink footprint: %d -> %d", before, after)
	}
	for _, m := range masks {
		if e, ok := st.Lookup(m); !ok || e.Freq != 1 {
			t.Fatalf("post-freeze lookup lost a key: %v %v", e, ok)
		}
	}
	// Range must decode dictionary keys back to the exact masks.
	seen := 0
	st.Range(func(words []uint64, e Entry) bool {
		seen++
		found := false
		for _, m := range masks {
			if bitset.EqualWords(words, m) {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("Range produced a mask that was never inserted")
		}
		return true
	})
	if seen != len(masks) {
		t.Fatalf("Range visited %d entries, want %d", seen, len(masks))
	}
}

// TestSuccinctBatchParity checks LookupBatch against scalar probes over
// hit/miss/tombstone mixes, before and after Freeze.
func TestSuccinctBatchParity(t *testing.T) {
	const width = 777
	rng := rand.New(rand.NewSource(11))
	st := NewSuccinct(width, 8)
	masks := make([][]uint64, 0, 300)
	for i := 0; i < 300; i++ {
		m := randMask(rng, width)
		masks = append(masks, m)
		st.Add(m, popcount(m), float64(i))
	}
	for i := 0; i < 30; i++ {
		st.Dec(masks[i*7], float64(i*7))
	}
	run := func(stage string) {
		t.Helper()
		var pb SuccinctBatch
		pb.Reset()
		queries := make([][]uint64, 0, 400)
		for i := 0; i < 400; i++ {
			var m []uint64
			if i%3 == 0 {
				m = randMask(rng, width) // mostly misses
			} else {
				m = masks[rng.Intn(len(masks))]
			}
			queries = append(queries, m)
			var h uint64
			if st.WordsPerKey() == 1 {
				h = bitset.HashWord(m[0])
			} else {
				h = bitset.HashWords(m)
			}
			st.BatchAppend(&pb, h, m)
		}
		got := st.LookupBatch(&pb)
		for i, m := range queries {
			we, wok := st.Lookup(m)
			if wok {
				if got[i] != we {
					t.Fatalf("%s: batch[%d] = %v, scalar = %v", stage, i, got[i], we)
				}
			} else if got[i].Freq != 0 {
				// Scalar misses (absent or tombstoned) surface as Freq==0
				// in the batch result, like Table.LookupBatch.
				t.Fatalf("%s: batch[%d] = %v for a scalar miss", stage, i, got[i])
			}
		}
	}
	run("unfrozen")
	st.Freeze()
	run("frozen")
}

// TestSuccinctAddCopiesWords verifies the caller may reuse its mask slice.
func TestSuccinctAddCopiesWords(t *testing.T) {
	st := NewSuccinct(128, 1)
	w := []uint64{6, 0}
	st.Add(w, 2, 0)
	w[0] = 99
	if _, ok := st.Lookup([]uint64{6, 0}); !ok {
		t.Fatal("mask mutated after Add leaked into the table")
	}
	if _, ok := st.Lookup([]uint64{99, 0}); ok {
		t.Fatal("mutated slice found in table")
	}
}

// TestDecodeKeyWithDict round-trips the snapshot-restore decode helper.
func TestDecodeKeyWithDict(t *testing.T) {
	const width = 2048
	st := NewSuccinct(width, 2)
	masks := make([][]uint64, 0, 64)
	for i := 0; i < 64; i++ {
		words := make([]uint64, (width+63)/64)
		words[1] = 0x3f // shared prefix material
		tail := 512 + i
		words[tail/64] |= 1 << (uint(tail) % 64)
		masks = append(masks, words)
		st.Add(words, popcount(words), 0)
	}
	st.Freeze()
	dict := st.DictEntries()
	dst := make([]uint64, st.WordsPerKey())
	var scratch []byte
	for s := 0; s < st.NumShards(); s++ {
		st.RangeShardEncoded(s, func(enc []byte, e Entry) bool {
			var err error
			scratch, err = DecodeKeyWithDict(dst, enc, dict, scratch, width)
			if err != nil {
				t.Fatalf("DecodeKeyWithDict: %v", err)
			}
			if _, ok := st.Lookup(dst); !ok {
				t.Fatal("decoded key not found in source table")
			}
			return true
		})
	}
}
