// Package bfhtable is the zero-allocation storage engine behind the
// bipartition frequency hash (paper §V, Algorithm 2): a sharded
// open-addressing hash table keyed directly on a bipartition's canonical
// []uint64 mask words.
//
// The legacy backend pays a heap-allocated string key per bipartition on
// every insert and every lookup (bipart.Key() → map[string]entry) plus a
// single-threaded merge of worker-local maps. This table removes both
// costs:
//
//   - Keys are the mask words themselves, hashed with bitset.HashWords
//     (bitset.HashWord on one-word keys) and stored inline in a flat
//     per-shard word arena — no string is ever materialized, and a lookup
//     touches one cache line of hashes before it ever compares words.
//   - The table is hash-partitioned into K shards (the top bits of the
//     word hash select the shard, the low bits the slot). Build workers
//     each own a private K-sharded table, so inserts are lock-free; Merge
//     then folds worker tables shard-by-shard with one goroutine per
//     shard, replacing the serial map merge with K independent merges.
//
// After Merge (or a single-owner build) the table is immutable unless the
// owner mutates it, so any number of readers may Lookup concurrently
// without synchronization — exactly the build-once/query-many contract of
// the BFH.
package bfhtable

import (
	"fmt"
	"math/bits"
	"sync"
	"unsafe"

	"repro/internal/bitset"
)

// Entry is the per-bipartition record: the reference frequency, the
// popcount of the canonical mask (kept so size-dependent variants never
// decode keys), and the accumulated inducing-edge length for weighted RF.
type Entry struct {
	Freq      uint32
	Size      uint32
	LengthSum float64
}

// minShardCap is the initial slot count of a non-empty shard. Power of
// two, like every capacity in this package.
const minShardCap = 8

// maxShards bounds the shard count; beyond this, per-shard fixed costs
// (empty arenas, merge goroutines) outweigh partitioning wins.
const maxShards = 256

// shard is one open-addressing sub-table with linear probing. Slot i's key
// words live at words[i*nw : (i+1)*nw]; hashes[i] == 0 marks an empty slot
// (neither bitset.HashWords nor bitset.HashWord ever returns 0).
type shard struct {
	mask    uint64 // len(hashes) - 1
	hashes  []uint64
	words   []uint64
	entries []Entry
	used    int // occupied slots, including Freq==0 tombstones
	live    int // slots with Freq > 0
}

// Table is the sharded open-addressing frequency table.
type Table struct {
	shards     []shard
	shardShift uint // shard index = hash >> shardShift; 64 means 1 shard
	nw         int  // words per key
}

// New returns an empty table for keys of wordsPerKey words, partitioned
// into the given shard count (rounded up to a power of two and clamped to
// [1, 256]; values <= 1 select a single shard).
func New(wordsPerKey, shards int) *Table {
	if wordsPerKey < 0 {
		panic(fmt.Sprintf("bfhtable: negative words per key %d", wordsPerKey))
	}
	s := nextPow2(shards)
	if s < 1 {
		s = 1
	}
	if s > maxShards {
		s = maxShards
	}
	t := &Table{shards: make([]shard, s), nw: wordsPerKey}
	t.shardShift = uint(64 - bits.TrailingZeros64(uint64(s)))
	return t
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len64(uint64(n-1))
}

// WordsPerKey returns the fixed key width in words.
func (t *Table) WordsPerKey() int { return t.nw }

// NumShards returns the shard count.
func (t *Table) NumShards() int { return len(t.shards) }

// shardOf selects the shard by the hash's top bits, so it is independent
// of the low bits that pick the slot within the shard.
func (t *Table) shardOf(h uint64) *shard {
	if t.shardShift >= 64 {
		return &t.shards[0]
	}
	return &t.shards[h>>t.shardShift]
}

// Len returns the number of live entries (Freq > 0).
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		n += t.shards[i].live
	}
	return n
}

// ShardLen returns the number of live entries in one shard.
func (t *Table) ShardLen(s int) int { return t.shards[s].live }

// FootprintBytes returns the table's resident size — the hash, key-arena,
// and entry arrays across all shards. Probe-path heuristics use it to
// judge whether scattered probes will thrash the CPU cache or the whole
// table is cache-resident anyway.
func (t *Table) FootprintBytes() int64 {
	const entryBytes = int64(unsafe.Sizeof(Entry{}))
	var b int64
	for i := range t.shards {
		s := &t.shards[i]
		b += int64(len(s.hashes))*8 + int64(len(s.words))*8 + int64(len(s.entries))*entryBytes
	}
	return b
}

// key returns slot i's words.
func (s *shard) key(i int, nw int) []uint64 {
	return s.words[i*nw : i*nw+nw]
}

// hashOf is the table's one hashing rule: the cheap inlinable HashWord on
// one-word keys, the generic multi-word mix otherwise. Every operation —
// insert, probe, merge — routes through it, so all tables of the same
// width agree on slots and shard assignment.
func (t *Table) hashOf(words []uint64) uint64 {
	if t.nw == 1 {
		return bitset.HashWord(words[0])
	}
	return bitset.HashWords(words)
}

// findSlot probes for h/words, returning the matching or first empty slot.
// The caller guarantees the shard has at least one empty slot.
func (s *shard) findSlot(h uint64, words []uint64, nw int) int {
	i := h & s.mask
	for {
		sh := s.hashes[i]
		if sh == 0 {
			return int(i)
		}
		if sh == h && bitset.EqualWords(s.key(int(i), nw), words) {
			return int(i)
		}
		i = (i + 1) & s.mask
	}
}

// grow doubles the shard's capacity, re-inserting by stored hash. Keys are
// copied arena-to-arena; no hashing is repeated.
func (s *shard) grow(nw int) {
	oldHashes, oldWords, oldEntries := s.hashes, s.words, s.entries
	cap := 2 * len(oldHashes)
	if cap < minShardCap {
		cap = minShardCap
	}
	s.hashes = make([]uint64, cap)
	s.words = make([]uint64, cap*nw)
	s.entries = make([]Entry, cap)
	s.mask = uint64(cap - 1)
	for i, h := range oldHashes {
		if h == 0 {
			continue
		}
		j := s.findSlot(h, oldWords[i*nw:i*nw+nw], nw)
		s.hashes[j] = h
		copy(s.key(j, nw), oldWords[i*nw:i*nw+nw])
		s.entries[j] = oldEntries[i]
	}
}

// ensure makes room for one more occupied slot, growing past the 3/4 load
// bound (linear probing degrades sharply beyond it).
func (s *shard) ensure(nw int) {
	if len(s.hashes) == 0 || 4*(s.used+1) > 3*len(s.hashes) {
		s.grow(nw)
	}
}

// upsert returns the slot for h/words, inserting the key if absent.
func (s *shard) upsert(h uint64, words []uint64, nw int) int {
	s.ensure(nw)
	i := s.findSlot(h, words, nw)
	if s.hashes[i] == 0 {
		s.hashes[i] = h
		copy(s.key(i, nw), words)
		s.used++
	}
	return i
}

// Add folds one bipartition occurrence: Freq++, Size recorded, LengthSum
// accumulated (pass 0 for unweighted input). words must hold exactly
// WordsPerKey words; they are copied into the arena on first insertion, so
// the caller may reuse the slice.
func (t *Table) Add(words []uint64, size uint32, length float64) {
	h := t.hashOf(words)
	s := t.shardOf(h)
	i := s.upsert(h, words, t.nw)
	e := &s.entries[i]
	if e.Freq == 0 {
		s.live++
	}
	e.Freq++
	e.Size = size
	e.LengthSum += length
}

// AddEntry folds a whole pre-aggregated entry (merge and restore paths):
// frequencies and length sums add, the size is recorded.
func (t *Table) AddEntry(words []uint64, e Entry) {
	h := t.hashOf(words)
	s := t.shardOf(h)
	i := s.upsert(h, words, t.nw)
	se := &s.entries[i]
	if se.Freq == 0 && e.Freq > 0 {
		s.live++
	}
	se.Freq += e.Freq
	se.Size = e.Size
	se.LengthSum += e.LengthSum
}

// Lookup probes for words, returning the stored entry and whether a live
// entry exists. It performs no allocation and takes no lock; concurrent
// Lookups are safe as long as no mutation is in flight.
func (t *Table) Lookup(words []uint64) (Entry, bool) {
	if t.nw == 1 {
		return t.Lookup1(words[0])
	}
	h := t.hashOf(words)
	s := t.shardOf(h)
	if s.used == 0 {
		return Entry{}, false
	}
	nw := t.nw
	i := h & s.mask
	for {
		sh := s.hashes[i]
		if sh == 0 {
			return Entry{}, false
		}
		if sh == h && bitset.EqualWords(s.key(int(i), nw), words) {
			e := s.entries[i]
			return e, e.Freq > 0
		}
		i = (i + 1) & s.mask
	}
}

// Lookup1 is Lookup for the one-word-key case (catalogues of at most 64
// taxa, a single mask word): no key slicing and no EqualWords call —
// hash, slot compare, and word compare are all straight-line. Exposed so
// the query fold can skip the width dispatch per probe; calling it on a
// table of another width is a programming error (it reads word 0 only).
func (t *Table) Lookup1(w uint64) (Entry, bool) {
	h := bitset.HashWord(w)
	s := t.shardOf(h)
	if s.used == 0 {
		return Entry{}, false
	}
	hashes, words := s.hashes, s.words
	i := h & s.mask
	for {
		sh := hashes[i]
		if sh == 0 {
			return Entry{}, false
		}
		if sh == h && words[i] == w {
			e := s.entries[i]
			return e, e.Freq > 0
		}
		i = (i + 1) & s.mask
	}
}

// LookupHashed is Lookup with the key's hash supplied by the caller
// instead of recomputed — the probe path for callers that carry the
// precomputed bipart.Bipartition.Hash. h must be the table's hashing rule
// applied to words (hashOf); any other value silently misses.
func (t *Table) LookupHashed(h uint64, words []uint64) (Entry, bool) {
	s := t.shardOf(h)
	if s.used == 0 {
		return Entry{}, false
	}
	e := s.probeOne(h, words, t.nw)
	return e, e.Freq > 0
}

// Lookup1Hashed is LookupHashed for the one-word-key case; like Lookup1
// it reads word 0 only and skips the EqualWords call.
func (t *Table) Lookup1Hashed(h uint64, w uint64) (Entry, bool) {
	s := t.shardOf(h)
	if s.used == 0 {
		return Entry{}, false
	}
	hashes, words := s.hashes, s.words
	i := h & s.mask
	for {
		sh := hashes[i]
		if sh == 0 {
			return Entry{}, false
		}
		if sh == h && words[i] == w {
			e := s.entries[i]
			return e, e.Freq > 0
		}
		i = (i + 1) & s.mask
	}
}

// Dec subtracts one occurrence of words, removing length from its
// LengthSum. A key whose frequency reaches 0 stays in the table as a
// keyed tombstone — probe chains stay intact and a later Add revives it —
// but no longer counts as live. Dec reports whether a live entry existed.
func (t *Table) Dec(words []uint64, length float64) bool {
	h := t.hashOf(words)
	s := t.shardOf(h)
	if s.used == 0 {
		return false
	}
	nw := t.nw
	i := h & s.mask
	for {
		sh := s.hashes[i]
		if sh == 0 {
			return false
		}
		if sh == h && bitset.EqualWords(s.key(int(i), nw), words) {
			e := &s.entries[i]
			if e.Freq == 0 {
				return false
			}
			e.Freq--
			e.LengthSum -= length
			if e.Freq == 0 {
				e.LengthSum = 0 // shed float dust so a revived entry restarts clean
				s.live--
			}
			return true
		}
		i = (i + 1) & s.mask
	}
}

// Range calls fn for every live entry, shard by shard in slot order. The
// words slice is the arena's storage: valid only during the call and never
// to be mutated. fn returning false stops the iteration.
func (t *Table) Range(fn func(words []uint64, e Entry) bool) {
	for s := range t.shards {
		if !t.RangeShard(s, fn) {
			return
		}
	}
}

// RangeShard is Range over a single shard; it reports whether iteration
// ran to completion (false when fn stopped it).
func (t *Table) RangeShard(s int, fn func(words []uint64, e Entry) bool) bool {
	sh := &t.shards[s]
	for i, h := range sh.hashes {
		if h == 0 || sh.entries[i].Freq == 0 {
			continue
		}
		if !fn(sh.key(i, t.nw), sh.entries[i]) {
			return false
		}
	}
	return true
}

// Merge folds worker-local tables into one, in parallel across shards:
// shard s of the result is built by a single goroutine folding shard s of
// every part, so no lock is taken anywhere. All parts must share words-
// per-key and shard count (they do, coming from one build's workers).
// Merge consumes the parts: each part shard is emptied as soon as it has
// been folded, capping the build's transient peak memory (with more than
// one part; a single part is returned as-is).
func Merge(parts []*Table) *Table {
	if len(parts) == 0 {
		panic("bfhtable: Merge of no tables")
	}
	nw, ns := parts[0].nw, len(parts[0].shards)
	for _, p := range parts[1:] {
		if p.nw != nw || len(p.shards) != ns {
			panic(fmt.Sprintf("bfhtable: Merge shape mismatch: (%d words, %d shards) vs (%d, %d)",
				nw, ns, p.nw, len(p.shards)))
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	out := New(nw, ns)
	var wg sync.WaitGroup
	for s := 0; s < ns; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			os := &out.shards[s]
			total := 0
			for _, p := range parts {
				total += p.shards[s].used
			}
			if total == 0 {
				return
			}
			// Presize so the fold never grows: next power of two with
			// load below 3/4 even if no keys are shared between parts.
			cap := nextPow2(total*4/3 + 1)
			if cap < minShardCap {
				cap = minShardCap
			}
			os.hashes = make([]uint64, cap)
			os.words = make([]uint64, cap*nw)
			os.entries = make([]Entry, cap)
			os.mask = uint64(cap - 1)
			for _, p := range parts {
				ps := &p.shards[s]
				for i, h := range ps.hashes {
					if h == 0 {
						continue
					}
					j := os.findSlot(h, ps.key(i, nw), nw)
					oe := &os.entries[j]
					if os.hashes[j] == 0 {
						os.hashes[j] = h
						copy(os.key(j, nw), ps.key(i, nw))
						os.used++
					}
					pe := ps.entries[i]
					if oe.Freq == 0 && pe.Freq > 0 {
						os.live++
					}
					oe.Freq += pe.Freq
					oe.Size = pe.Size
					oe.LengthSum += pe.LengthSum
				}
				// The part shard is spent: release its arrays now rather
				// than when the whole part table goes out of scope, so the
				// build's transient peak is the merged table plus the
				// not-yet-folded remainder, not plus every worker table.
				*ps = shard{}
			}
		}(s)
	}
	wg.Wait()
	return out
}

// LoadFactor returns occupied slots over total slots across all shards
// (0 for an empty table) — the bfhrf_hash_load_factor gauge.
func (t *Table) LoadFactor() float64 {
	slots, used := 0, 0
	for i := range t.shards {
		slots += len(t.shards[i].hashes)
		used += t.shards[i].used
	}
	if slots == 0 {
		return 0
	}
	return float64(used) / float64(slots)
}

// ProbeLengths calls fn with the displacement of every occupied slot from
// its home slot (0 = direct hit) — the bfhrf_hash_probe_length histogram.
// A healthy table's displacements concentrate at 0–2.
func (t *Table) ProbeLengths(fn func(displacement int)) {
	for s := range t.shards {
		sh := &t.shards[s]
		for i, h := range sh.hashes {
			if h == 0 {
				continue
			}
			home := h & sh.mask
			fn(int((uint64(i) - home) & sh.mask))
		}
	}
}
