package bfhtable

import "bytes"

// Shard-ordered batched lookups for the succinct backend — LookupBatch
// parity with Table. The mechanics mirror batch.go (counting sort by
// shard, insertion sort by home slot, entries scattered back in caller
// order so folds stay bit-identical to scalar), but keys are
// variable-length encodings living in one flat byte buffer instead of
// fixed-width word blocks.

// SuccinctBatch is reusable scratch for SuccinctTable.LookupBatch: a flat
// encoded-key buffer with per-key offsets, packed headers and hashes, the
// shard-ordered permutation, and the result array. A zero SuccinctBatch is
// ready to use; like a Prober it is single-goroutine state.
type SuccinctBatch struct {
	buf     []byte   // concatenated encoded keys
	offs    []int32  // offs[i] is key i's start; offs[n] == len(buf)
	meta    []uint32 // packed (bucket, length) headers
	hashes  []uint64
	order   []int32
	entries []Entry
	bucket  [maxShards + 1]int32
	n       int
}

// Reset clears the batch for a new block of keys; storage is reused.
func (b *SuccinctBatch) Reset() {
	b.buf = b.buf[:0]
	b.offs = append(b.offs[:0], 0)
	b.meta = b.meta[:0]
	b.hashes = b.hashes[:0]
	b.n = 0
}

// BatchAppend encodes one query key into the batch. h must be the table's
// hashing rule over words (the bipartition's precomputed hash). Keys are
// probed by a later LookupBatch in the order they were appended.
func (t *SuccinctTable) BatchAppend(b *SuccinctBatch, h uint64, words []uint64) {
	var meta uint32
	b.buf, meta = t.appendEncode(b.buf, words)
	b.offs = append(b.offs, int32(len(b.buf)))
	b.meta = append(b.meta, meta)
	b.hashes = append(b.hashes, h)
	b.n++
}

// key returns batch key i's encoded bytes.
func (b *SuccinctBatch) key(i int32) []byte {
	return b.buf[b.offs[i]:b.offs[i+1]]
}

// LookupBatch probes every key appended to pb since its Reset and returns
// the entries in append order; absent and tombstoned keys yield a zero
// Entry, matching the scalar LookupEncoded miss. Allocation-free once the
// scratch warms up, lock-free, safe concurrently with other readers.
func (t *SuccinctTable) LookupBatch(pb *SuccinctBatch) []Entry {
	n := pb.n
	if cap(pb.order) < n {
		pb.order = make([]int32, n)
		pb.entries = make([]Entry, n)
	}
	order := pb.order[:n]
	entries := pb.entries[:n]
	hashes := pb.hashes
	// Pass 1: counting sort by shard index into order.
	shift := t.shardShift
	bucket := &pb.bucket
	for i := range t.shards {
		bucket[i] = 0
	}
	bucket[len(t.shards)] = 0
	if shift >= 64 {
		for i := 0; i < n; i++ {
			order[i] = int32(i)
		}
		bucket[0] = int32(n)
	} else {
		for i := 0; i < n; i++ {
			bucket[hashes[i]>>shift]++
		}
		sum := int32(0)
		for i := 0; i <= len(t.shards); i++ {
			c := bucket[i]
			bucket[i] = sum
			sum += c
		}
		for i := 0; i < n; i++ {
			s := hashes[i] >> shift
			order[bucket[s]] = int32(i)
			bucket[s]++
		}
	}
	// Pass 2: within each shard's run, insertion-sort by home slot, then
	// probe in ascending slot order, scattering entries back.
	start := int32(0)
	for si := range t.shards {
		end := bucket[si]
		if end <= start {
			start = end
			continue
		}
		s := &t.shards[si]
		if s.used == 0 {
			for k := start; k < end; k++ {
				entries[order[k]] = Entry{}
			}
			start = end
			continue
		}
		mask := s.mask
		run := order[start:end]
		for i := 1; i < len(run); i++ {
			oi := run[i]
			slot := hashes[oi] & mask
			j := i - 1
			for j >= 0 && hashes[run[j]]&mask > slot {
				run[j+1] = run[j]
				j--
			}
			run[j+1] = oi
		}
		for _, oi := range run {
			entries[oi] = s.probeOneEncoded(hashes[oi], pb.meta[oi], pb.key(oi))
		}
		start = end
	}
	return entries
}

// probeOneEncoded is the scalar probe loop shared by the batched path:
// linear probing from the home slot, header-filtered byte compare, zero
// Entry on an empty slot.
func (s *sshard) probeOneEncoded(h uint64, meta uint32, enc []byte) Entry {
	i := h & s.mask
	for {
		sh := s.hashes[i]
		if sh == 0 {
			return Entry{}
		}
		if sh == h && s.meta[i] == meta && bytes.Equal(s.keyAt(int(i)), enc) {
			return s.entries[i]
		}
		i = (i + 1) & s.mask
	}
}
