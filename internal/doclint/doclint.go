// Package doclint is the repository's documentation gate: it walks a
// source tree and reports every Go package that lacks a package comment.
// ci.sh runs it (via internal/doclint/cmd/doclint) so that "every package
// keeps a package doc" is an enforced invariant rather than a convention
// that decays — the same philosophy as the perf regression gate.
//
// The checker is deliberately small and stdlib-only: go/parser in
// PackageClauseOnly mode reads just the package clause and its attached
// comment, so linting the whole repository costs milliseconds.
package doclint

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one undocumented package.
type Finding struct {
	// Dir is the package directory, relative to the checked root.
	Dir string
	// Package is the package name from the package clause.
	Package string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: package %s has no package comment", f.Dir, f.Package)
}

// Check walks root and returns a finding for every package directory in
// which no non-test Go file carries a package doc comment. Directories
// named testdata, vendor, or starting with "." or "_" are skipped, as are
// _test.go files (test packages document themselves through the tests).
// Findings are sorted by directory for stable output.
func Check(root string) ([]Finding, error) {
	// docs[dir] = true once any non-test file in dir has a package doc;
	// name[dir] remembers the package name for the report.
	docs := make(map[string]bool)
	names := make(map[string]string)
	fset := token.NewFileSet()

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		base := d.Name()
		if d.IsDir() {
			if path != root && (base == "testdata" || base == "vendor" ||
				strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(base, ".go") || strings.HasSuffix(base, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("doclint: %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		if _, seen := docs[dir]; !seen {
			docs[dir] = false
			names[dir] = f.Name.Name
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			docs[dir] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for dir, documented := range docs {
		if documented {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		findings = append(findings, Finding{Dir: rel, Package: names[dir]})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Dir < findings[j].Dir })
	return findings, nil
}
