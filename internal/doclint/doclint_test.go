package doclint

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFindsUndocumentedPackages(t *testing.T) {
	root := t.TempDir()
	// Documented: doc on one of two files suffices.
	write(t, filepath.Join(root, "good", "a.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "good", "b.go"), "package good\n")
	// Undocumented.
	write(t, filepath.Join(root, "bad", "a.go"), "package bad\n")
	// A doc comment only on the _test.go file does not count.
	write(t, filepath.Join(root, "testdoc", "a.go"), "package testdoc\n")
	write(t, filepath.Join(root, "testdoc", "a_test.go"), "// Package testdoc tests.\npackage testdoc\n")
	// Skipped trees.
	write(t, filepath.Join(root, "good", "testdata", "x.go"), "package ignoreme\n")
	write(t, filepath.Join(root, ".hidden", "x.go"), "package hidden\n")
	write(t, filepath.Join(root, "_build", "x.go"), "package underscore\n")

	findings, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want exactly [bad testdoc]", findings)
	}
	if findings[0].Dir != "bad" || findings[0].Package != "bad" {
		t.Errorf("findings[0] = %+v, want dir bad", findings[0])
	}
	if findings[1].Dir != "testdoc" {
		t.Errorf("findings[1] = %+v, want dir testdoc", findings[1])
	}
}

func TestCheckRejectsUnparsableFile(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "broken", "a.go"), "pack age broken\n")
	if _, err := Check(root); err == nil {
		t.Error("unparsable file should be an error, not silently skipped")
	}
}

// TestRepositoryIsFullyDocumented is the actual gate on this repo: every
// package in the module keeps a package comment. If this fails, write
// the doc — do not amend the test.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s", root)
	}
	findings, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}
