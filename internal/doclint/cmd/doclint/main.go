// Command doclint checks that every Go package under the given roots
// (default ".") carries a package comment, exiting 1 with one line per
// violation. ci.sh runs it over the repository so package documentation
// is enforced, not aspirational.
//
// Usage:
//
//	go run ./internal/doclint/cmd/doclint [root ...]
package main

import (
	"fmt"
	"os"

	"repro/internal/doclint"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := false
	for _, root := range roots {
		findings, err := doclint.Check(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
