package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	for _, width := range []int{1, 7, 63, 64, 65, 127, 128, 129, 1000} {
		b := New(width)
		for i := 0; i < width; i += 3 {
			b.Set(i)
		}
		for i := 0; i < width; i++ {
			want := i%3 == 0
			if b.Test(i) != want {
				t.Fatalf("width %d: Test(%d) = %v, want %v", width, i, b.Test(i), want)
			}
		}
		for i := 0; i < width; i += 3 {
			b.Clear(i)
		}
		if b.Any() {
			t.Fatalf("width %d: expected empty after clearing", width)
		}
	}
}

func TestCount(t *testing.T) {
	b := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		b.Set(i)
	}
	if got := b.Count(); got != len(idx) {
		t.Errorf("Count = %d, want %d", got, len(idx))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, f := range []func(){
		func() { b.Set(10) },
		func() { b.Set(-1) },
		func() { b.Test(10) },
		func() { b.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range index")
				}
			}()
			f()
		}()
	}
}

func TestNegativeWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative width")
		}
	}()
	New(-1)
}

func TestComplementMasksTail(t *testing.T) {
	b := New(70)
	b.Set(0)
	c := b.Complement()
	if c.Count() != 69 {
		t.Errorf("Complement Count = %d, want 69", c.Count())
	}
	if c.Test(0) {
		t.Error("bit 0 should be clear in complement")
	}
	// Double complement is identity.
	d := c.Complement()
	if !d.Equal(b) {
		t.Error("double complement is not identity")
	}
}

func TestBooleanOps(t *testing.T) {
	a := MustParse("110010")
	b := MustParse("011011")

	or := a.Clone()
	or.Or(b)
	if or.String() != "111011" {
		t.Errorf("Or = %s", or.String())
	}
	and := a.Clone()
	and.And(b)
	if and.String() != "010010" {
		t.Errorf("And = %s", and.String())
	}
	andNot := a.Clone()
	andNot.AndNot(b)
	if andNot.String() != "100000" {
		t.Errorf("AndNot = %s", andNot.String())
	}
	xor := a.Clone()
	xor.Xor(b)
	if xor.String() != "101001" {
		t.Errorf("Xor = %s", xor.String())
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width mismatch")
		}
	}()
	a.Or(b)
}

func TestKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{1, 5, 64, 65, 200} {
		for trial := 0; trial < 20; trial++ {
			b := New(width)
			for i := 0; i < width; i++ {
				if rng.Intn(2) == 1 {
					b.Set(i)
				}
			}
			got, err := FromKey(b.Key(), width)
			if err != nil {
				t.Fatalf("FromKey: %v", err)
			}
			if !got.Equal(b) {
				t.Fatalf("width %d: round trip mismatch: %s vs %s", width, got, b)
			}
		}
	}
}

func TestKeyCollisionFree(t *testing.T) {
	// Distinct vectors must give distinct keys (the collision-free property
	// BFHRF relies on).
	seen := map[string]string{}
	for i := 0; i < 64; i++ {
		b := New(64)
		b.Set(i)
		k := b.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %s and %s", prev, b)
		}
		seen[k] = b.String()
	}
}

func TestFromKeyRejectsBadInput(t *testing.T) {
	if _, err := FromKey("short", 64); err == nil {
		t.Error("expected error for wrong key length")
	}
	// A key with bits beyond the width must be rejected.
	b := New(64)
	b.Set(63)
	if _, err := FromKey(b.Key(), 60); err == nil {
		t.Error("expected error for tail bits beyond width")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "1", "0011", "1101", "1011", "0111"} {
		b := MustParse(s)
		if b.String() != s {
			t.Errorf("round trip %q -> %q", s, b.String())
		}
	}
}

func TestParseRejectsJunk(t *testing.T) {
	if _, err := Parse("01x1"); err == nil {
		t.Error("expected error for invalid character")
	}
}

func TestPaperExampleEncoding(t *testing.T) {
	// Paper §II.B: T = ((A,B),(C,D)), bit order A=0 … D=3, the internal
	// edge splits {A,B} | {C,D}: encoding "0011" with A's side as 1s.
	ab := MustParse("0011")
	if !ab.Test(0) || !ab.Test(1) || ab.Test(2) || ab.Test(3) {
		t.Errorf("encoding 0011 should set bits 0,1 only: %s", ab)
	}
	if ab.Count() != 2 {
		t.Errorf("Count = %d", ab.Count())
	}
}

func TestNextSetAndIndices(t *testing.T) {
	b := New(200)
	want := []int{0, 63, 64, 150, 199}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
	if b.NextSet(200) != -1 || b.NextSet(-5) != 0 {
		t.Error("NextSet boundary behaviour wrong")
	}
	empty := New(64)
	if empty.NextSet(0) != -1 {
		t.Error("NextSet on empty should be -1")
	}
}

func TestCompare(t *testing.T) {
	a := MustParse("0011")
	b := MustParse("0101")
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a.Clone()) != 0 {
		t.Error("Compare ordering wrong")
	}
}

func TestSubsetAndIntersects(t *testing.T) {
	a := MustParse("0011")
	b := MustParse("0111")
	if !a.IsSubsetOf(b) || b.IsSubsetOf(a) {
		t.Error("subset relation wrong")
	}
	c := MustParse("1100")
	if a.Intersects(c) {
		t.Error("disjoint sets should not intersect")
	}
	if !a.Intersects(b) {
		t.Error("overlapping sets should intersect")
	}
}

// randomBits is a helper for property tests.
func randomBits(rng *rand.Rand, width int) *Bits {
	b := New(width)
	for i := 0; i < width; i++ {
		if rng.Intn(2) == 1 {
			b.Set(i)
		}
	}
	return b
}

func TestQuickDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, w uint8) bool {
		width := int(w)%150 + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBits(r, width)
		b := randomBits(r, width)
		// ¬(a ∨ b) == ¬a ∧ ¬b
		left := a.Clone()
		left.Or(b)
		left.ComplementInPlace()
		right := a.Complement()
		right.And(b.Complement())
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestQuickXorSelfInverse(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		width := int(w)%200 + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBits(r, width)
		b := randomBits(r, width)
		c := a.Clone()
		c.Xor(b)
		c.Xor(b)
		return c.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCountComplement(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		width := int(w)%200 + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBits(r, width)
		return a.Count()+a.Complement().Count() == width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		width := int(w)%200 + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBits(r, width)
		got, err := FromKey(a.Key(), width)
		return err == nil && got.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCopyFromAndReset(t *testing.T) {
	a := MustParse("1010")
	b := New(4)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Error("CopyFrom mismatch")
	}
	b.Reset()
	if b.Any() {
		t.Error("Reset should clear all bits")
	}
	if !a.Any() {
		t.Error("Reset of copy must not affect source")
	}
}

func TestZeroWidth(t *testing.T) {
	b := New(0)
	if b.Any() || b.Count() != 0 || b.Key() != "" {
		t.Error("zero-width vector misbehaves")
	}
	b.ComplementInPlace() // must not panic
	if b.Any() {
		t.Error("complement of zero-width vector should stay empty")
	}
}

// TestHashWordNeverZeroAndSpreads checks the one-word hash's table
// contract: never 0 (0 marks an empty slot) and no empty top-bits bucket
// (the shard selector) over a dense input range.
func TestHashWordNeverZeroAndSpreads(t *testing.T) {
	buckets := make([]int, 64)
	for i := 0; i < 1<<14; i++ {
		h := HashWord(uint64(i))
		if h == 0 {
			t.Fatal("HashWord returned 0")
		}
		buckets[h>>58]++
	}
	for b, c := range buckets {
		if c == 0 {
			t.Fatalf("top-bits bucket %d empty over 16k hashes", b)
		}
	}
	// The seed word itself must not collapse to the zero fixup path.
	if HashWord(0x9e3779b97f4a7c15) == 1 && HashWord(0) == 1 {
		t.Fatal("distinct words collapsed to the zero fixup")
	}
}
