package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompactKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, width := range []int{1, 8, 63, 64, 65, 128, 500, 1000} {
		for trial := 0; trial < 30; trial++ {
			b := randomBits(rng, width)
			got, err := FromCompactKey(b.CompactKey(), width)
			if err != nil {
				t.Fatalf("width %d: %v", width, err)
			}
			if !got.Equal(b) {
				t.Fatalf("width %d: round trip mismatch", width)
			}
		}
	}
}

func TestCompactKeySparseVectors(t *testing.T) {
	// A 1000-bit vector with 3 set bits must compress far below 125 bytes.
	b := New(1000)
	b.Set(10)
	b.Set(500)
	b.Set(999)
	k := b.CompactKey()
	if len(k) > 10 {
		t.Errorf("sparse compact key = %d bytes, expected <= 10", len(k))
	}
	got, err := FromCompactKey(k, 1000)
	if err != nil || !got.Equal(b) {
		t.Fatalf("sparse round trip failed: %v", err)
	}
}

func TestCompactKeyCosparseVectors(t *testing.T) {
	// Nearly-all-ones vectors use the cosparse encoding.
	b := New(1000)
	b.ComplementInPlace()
	b.Clear(7)
	b.Clear(800)
	k := b.CompactKey()
	if len(k) > 10 {
		t.Errorf("cosparse compact key = %d bytes, expected <= 10", len(k))
	}
	got, err := FromCompactKey(k, 1000)
	if err != nil || !got.Equal(b) {
		t.Fatalf("cosparse round trip failed: %v", err)
	}
}

func TestCompactKeyNeverMuchBigger(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		width := rng.Intn(512) + 1
		b := randomBits(rng, width)
		if len(b.CompactKey()) > len(b.Key())+1 {
			t.Fatalf("compact key larger than raw+tag: %d vs %d", len(b.CompactKey()), len(b.Key()))
		}
	}
}

func TestCompactKeyCollisionFree(t *testing.T) {
	// Distinct vectors must give distinct compact keys across encodings.
	seen := map[string]string{}
	width := 300
	vecs := []*Bits{New(width)}
	full := New(width)
	full.ComplementInPlace()
	vecs = append(vecs, full)
	for i := 0; i < width; i += 7 {
		v := New(width)
		v.Set(i)
		vecs = append(vecs, v)
		c := full.Clone()
		c.Clear(i)
		vecs = append(vecs, c)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		vecs = append(vecs, randomBits(rng, width))
	}
	for _, v := range vecs {
		k := v.CompactKey()
		if prev, dup := seen[k]; dup && prev != v.String() {
			t.Fatalf("collision between %s and %s", prev, v)
		}
		seen[k] = v.String()
	}
}

func TestFromCompactKeyErrors(t *testing.T) {
	if _, err := FromCompactKey("", 10); err == nil {
		t.Error("empty key should fail")
	}
	if _, err := FromCompactKey("\xff", 10); err == nil {
		t.Error("unknown tag should fail")
	}
	// Sparse index beyond width.
	b := New(100)
	b.Set(99)
	k := b.CompactKey()
	if _, err := FromCompactKey(k, 50); err == nil {
		t.Error("index beyond width should fail")
	}
	// Truncated varint.
	if _, err := FromCompactKey(string([]byte{tagSparse, 0x80}), 100); err == nil {
		t.Error("truncated varint should fail")
	}
}

func TestQuickCompactRoundTrip(t *testing.T) {
	f := func(seed int64, w uint16) bool {
		width := int(w)%700 + 1
		rng := rand.New(rand.NewSource(seed))
		// Mix densities: some trials sparse, some dense, some uniform.
		b := New(width)
		density := rng.Float64()
		for i := 0; i < width; i++ {
			if rng.Float64() < density {
				b.Set(i)
			}
		}
		got, err := FromCompactKey(b.CompactKey(), width)
		return err == nil && got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompactKeyDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	v := randomBits(rng, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.CompactKey()
	}
}

func BenchmarkCompactKeySparse(b *testing.B) {
	v := New(1000)
	for i := 0; i < 10; i++ {
		v.Set(i * 97)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.CompactKey()
	}
}
