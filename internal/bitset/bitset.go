// Package bitset implements fixed-width bit vectors used to encode tree
// bipartitions as bitmask vectors, following the encoding scheme described
// in the paper (§II.B): taxa are assigned bit positions and a bipartition is
// a length-n bit vector whose set bits mark one side of the split.
//
// Vectors are stored as little-endian []uint64 words. All operations either
// mutate the receiver in place (Set, Clear, AndNot, …) or allocate a fresh
// vector (Clone, Complement, …); the documentation on each method says which.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bits is a fixed-width bit vector. The width (number of valid bits) is
// carried alongside the words so that complementation and canonicalization
// know where the vector ends.
type Bits struct {
	words []uint64
	width int
}

// New returns an all-zero vector of the given width (number of bits).
// Width zero is allowed and yields an empty vector.
func New(width int) *Bits {
	if width < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", width))
	}
	return &Bits{
		words: make([]uint64, wordsFor(width)),
		width: width,
	}
}

func wordsFor(width int) int { return (width + wordBits - 1) / wordBits }

// Width returns the number of valid bits.
func (b *Bits) Width() int { return b.width }

// Words returns the backing words. The slice is shared, not copied; callers
// must not mutate it unless they own the vector.
func (b *Bits) Words() []uint64 { return b.words }

// Set sets bit i to 1. Panics if i is out of range.
func (b *Bits) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0. Panics if i is out of range.
func (b *Bits) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is 1. Panics if i is out of range.
func (b *Bits) Test(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (b *Bits) check(i int) {
	if i < 0 || i >= b.width {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.width))
	}
}

// Count returns the number of set bits (population count).
func (b *Bits) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bits) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset zeroes every bit in place.
func (b *Bits) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns an independent copy.
func (b *Bits) Clone() *Bits {
	c := &Bits{words: make([]uint64, len(b.words)), width: b.width}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with o in place. Panics on width mismatch.
func (b *Bits) CopyFrom(o *Bits) {
	b.mustMatch(o)
	copy(b.words, o.words)
}

// Or sets b |= o in place. Panics on width mismatch.
func (b *Bits) Or(o *Bits) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// And sets b &= o in place. Panics on width mismatch.
func (b *Bits) And(o *Bits) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// AndNot sets b &^= o in place. Panics on width mismatch.
func (b *Bits) AndNot(o *Bits) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] &^= w
	}
}

// Xor sets b ^= o in place. Panics on width mismatch.
func (b *Bits) Xor(o *Bits) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] ^= w
	}
}

// ComplementInPlace flips every valid bit, masking tail bits beyond width.
func (b *Bits) ComplementInPlace() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.maskTail()
}

// Complement returns a fresh vector with every valid bit flipped.
func (b *Bits) Complement() *Bits {
	c := b.Clone()
	c.ComplementInPlace()
	return c
}

// maskTail zeroes bits at positions >= width in the final word so that
// equality, hashing and popcounts are well defined.
func (b *Bits) maskTail() {
	if b.width == 0 {
		return
	}
	rem := b.width % wordBits
	if rem != 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Equal reports whether b and o have the same width and identical bits.
func (b *Bits) Equal(o *Bits) bool {
	if b.width != o.width {
		return false
	}
	for i, w := range b.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// Compare orders vectors of equal width lexicographically from the highest
// word down: -1 if b < o, 0 if equal, +1 if b > o. Panics on width mismatch.
func (b *Bits) Compare(o *Bits) int {
	b.mustMatch(o)
	for i := len(b.words) - 1; i >= 0; i-- {
		switch {
		case b.words[i] < o.words[i]:
			return -1
		case b.words[i] > o.words[i]:
			return 1
		}
	}
	return 0
}

// IsSubsetOf reports whether every set bit of b is also set in o.
func (b *Bits) IsSubsetOf(o *Bits) bool {
	b.mustMatch(o)
	for i, w := range b.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share any set bit.
func (b *Bits) Intersects(o *Bits) bool {
	b.mustMatch(o)
	for i, w := range b.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

func (b *Bits) mustMatch(o *Bits) {
	if b.width != o.width {
		panic(fmt.Sprintf("bitset: width mismatch %d vs %d", b.width, o.width))
	}
}

// Key returns the vector content as a string suitable for use as a
// collision-free map key. The key embeds only the word bytes; two vectors of
// the same width have equal keys iff they are bit-for-bit equal. This is the
// property that distinguishes the paper's BFH from HashRF's lossy
// compressed hashing.
func (b *Bits) Key() string {
	return string(b.AppendKey(nil))
}

// AppendKey appends the Key() bytes to dst and returns the extended slice.
// It allocates only when dst lacks capacity, so hot paths can probe a
// map[string]entry via m[string(buf)] with a reused scratch buffer and no
// per-lookup key materialization.
func (b *Bits) AppendKey(dst []byte) []byte {
	for _, w := range b.words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// MixHash folds one word into a running murmur3-style hash state — the
// per-word mixing step of HashWords, exported so order-invariant digests
// (the query-side topology fingerprint in internal/core) can chain the
// exact same mix over an already-sorted hash sequence instead of
// reinventing constants. Seed the state, fold words, then FinishHash.
func MixHash(h, w uint64) uint64 {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	k := w * c1
	k = bits.RotateLeft64(k, 31)
	k *= c2
	h ^= k
	return bits.RotateLeft64(h, 27)*5 + 0x52dce729
}

// FinishHash applies the final fmix64 avalanche to a MixHash chain. The
// result is never 0, letting tables use 0 as the empty-slot marker.
func FinishHash(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	if h == 0 {
		h = 1
	}
	return h
}

// HashWords mixes a word slice into a 64-bit hash (murmur3-style per-word
// mixing with a final avalanche, standard library only). It is the hash of
// the open-addressing BFH backend: computed directly over a bipartition's
// canonical mask words, so no key string ever exists on that path. The
// result is never 0, letting tables use 0 as the empty-slot marker.
func HashWords(words []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ (uint64(len(words)) * 8)
	for _, w := range words {
		h = MixHash(h, w)
	}
	return FinishHash(h)
}

// HashWord hashes a one-word key (catalogues of at most 64 taxa). It is
// fmix64 — murmur3's finalizer — over the seeded word: a full-avalanche
// mixer at roughly half the multiply count of the generic multi-word
// path, and straight-line code the compiler inlines into a probe loop.
// The open-addressing table uses it for every operation on 1-word keys
// (insert and probe alike), so it need not match HashWords; like
// HashWords it never returns 0.
func HashWord(w uint64) uint64 {
	return FinishHash(w ^ 0x9e3779b97f4a7c15)
}

// EqualWords reports element-wise equality of two word slices of the same
// length. Callers guarantee matching lengths (tables store fixed-width
// keys); mismatched lengths compare unequal.
func EqualWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		if b[i] != w {
			return false
		}
	}
	return true
}

// FromWords builds a vector of the given width from raw little-endian
// words, copying them. It returns an error when the word count does not
// match the width or bits are set beyond it — the same validation FromKey
// applies to serialized keys.
func FromWords(words []uint64, width int) (*Bits, error) {
	if len(words) != wordsFor(width) {
		return nil, fmt.Errorf("bitset: %d words do not match width %d (want %d)", len(words), width, wordsFor(width))
	}
	b := New(width)
	copy(b.words, words)
	tail := b.Clone()
	tail.maskTail()
	if !tail.Equal(b) {
		return nil, fmt.Errorf("bitset: words have bits beyond width %d", width)
	}
	return b, nil
}

// FromKey reconstructs a vector of the given width from a Key() string.
// It returns an error if the key length does not match the width.
func FromKey(key string, width int) (*Bits, error) {
	nw := wordsFor(width)
	if len(key) != nw*8 {
		return nil, fmt.Errorf("bitset: key length %d does not match width %d (want %d bytes)", len(key), width, nw*8)
	}
	b := New(width)
	for i := 0; i < nw; i++ {
		b.words[i] = getUint64LE(key[i*8:])
	}
	// Validate tail bits: a well-formed key never has bits beyond width.
	tail := b.Clone()
	tail.maskTail()
	if !tail.Equal(b) {
		return nil, fmt.Errorf("bitset: key has bits beyond width %d", width)
	}
	return b, nil
}

func getUint64LE(s string) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(s[i]) << (8 * uint(i))
	}
	return v
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (b *Bits) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.width {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// Indices returns the indices of all set bits in increasing order.
func (b *Bits) Indices() []int {
	out := make([]int, 0, b.Count())
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// String renders the vector with bit 0 rightmost, matching the paper's
// examples (e.g. "0011" for taxa {A,B} of {A,B,C,D} with A at bit 0).
func (b *Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.width)
	for i := b.width - 1; i >= 0; i-- {
		if b.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a vector from a String()-formatted bit string
// (bit 0 rightmost). Any rune other than '0' or '1' is an error.
func Parse(s string) (*Bits, error) {
	b := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			b.Set(len(s) - 1 - i)
		default:
			return nil, fmt.Errorf("bitset: invalid character %q in %q", r, s)
		}
	}
	return b, nil
}

// MustParse is Parse but panics on error. For tests and literals.
func MustParse(s string) *Bits {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}
