package bitset

import (
	"fmt"
)

// This file implements the lossless, reversible compression of bipartition
// keys the paper proposes as future work (§IX: "a loss less and reversible
// compression of the bipartitions as keys in the hash to further reduce
// memory"). Three encodings compete per vector and the smallest wins:
//
//	raw    — the full little-endian word bytes (dense vectors);
//	sparse — varint-delta-coded indices of set bits (few 1s);
//	cosparse — varint-delta-coded indices of clear bits (few 0s).
//
// Every encoding is self-describing via a 1-byte tag, so CompactKey is a
// bijection on vectors of a given width: equal keys ⇔ equal vectors, the
// collision-freedom BFHRF requires.

const (
	tagRaw      = 0x00
	tagSparse   = 0x01
	tagCosparse = 0x02
)

// CompactKey returns a collision-free map key that is never longer than
// Key() plus one tag byte and is much shorter for shallow or deep splits
// (few set or few clear bits — the common case for biological splits).
func (b *Bits) CompactKey() string {
	return string(b.AppendCompactKey(nil))
}

// AppendCompactKey appends the CompactKey() bytes to dst and returns the
// extended slice, allocating only when dst lacks capacity. Candidate
// encodings are sized with a counting pass and only the winner is written,
// so a reused scratch buffer makes compressed-key probing allocation-free.
// It delegates to the word-based AppendWordsKey (popcount fast path) and
// shares its byte format exactly.
func (b *Bits) AppendCompactKey(dst []byte) []byte {
	out, _ := AppendWordsKey(dst, b.words, b.width)
	return out
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// FromCompactKey reconstructs a vector of the given width from a
// CompactKey() string.
func FromCompactKey(key string, width int) (*Bits, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("bitset: empty compact key")
	}
	tag, body := key[0], key[1:]
	switch tag {
	case tagRaw:
		return FromKey(body, width)
	case tagSparse, tagCosparse:
		b := New(width)
		if tag == tagCosparse {
			b.ComplementInPlace()
		}
		pos := -1
		for len(body) > 0 {
			d, n := readUvarint(body)
			if n <= 0 {
				return nil, fmt.Errorf("bitset: corrupt varint in compact key")
			}
			body = body[n:]
			pos += int(d)
			if pos >= width {
				return nil, fmt.Errorf("bitset: compact key index %d beyond width %d", pos, width)
			}
			if tag == tagSparse {
				b.Set(pos)
			} else {
				b.Clear(pos)
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("bitset: unknown compact key tag %#x", tag)
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(s string) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x80 {
			if i > 9 || (i == 9 && c > 1) {
				return 0, -1 // overflow
			}
			return v | uint64(c)<<shift, i + 1
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, -1
}
