package bitset

import (
	"fmt"
	"math/bits"
)

// This file is the word-slice counterpart of compact.go: the same
// self-describing raw/sparse/cosparse key encoding, but operating directly
// on a canonical mask's []uint64 words with popcount fast paths
// (bits.OnesCount64 / bits.TrailingZeros64) instead of per-bit Test calls.
// It exists for the succinct open-addressing backend, whose arena stores
// these encodings and whose probe path must encode a query key into a
// scratch buffer without ever materializing a *Bits. The byte format is
// identical to CompactKey, so FromCompactKey decodes either producer.

// PopCountWords returns the number of set bits across words — the
// popcount fast path shared by the encoder and the succinct table's
// cardinality buckets.
func PopCountWords(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendWordsKey appends the compact self-describing encoding of the
// width-bit vector stored in words (little-endian, tail bits clear) to dst
// and returns the extended slice plus the vector's population count. The
// smallest of the raw/sparse/cosparse candidates wins, exactly as
// AppendCompactKey chooses, so the two producers emit identical bytes for
// identical vectors. Only the winner is written; with a reused dst the
// call is allocation-free.
// Candidate pruning keeps the encoder off the probe path's critical
// cost: an index encoding spends at least one varint byte per index, so a
// candidate whose floor (1 tag byte + count) cannot be strictly smaller
// than the current best is rejected on the popcount alone, without
// walking its indices. A sparse key therefore never walks its ~width
// clear bits to rule cosparse out, and a dense-and-sparse-balanced key
// picks raw without walking anything. The winner (strictly smallest,
// ties resolved raw > sparse > cosparse) is unchanged, so the emitted
// bytes stay identical to the unpruned encoder's.
func AppendWordsKey(dst []byte, words []uint64, width int) ([]byte, int) {
	ones := PopCountWords(words)
	zeros := width - ones
	start := len(dst)
	rawLen := len(words)*8 + 1

	// Sparse candidate: emit directly (measuring would walk the same
	// indices), keep only if it actually beats raw.
	sparseLen := -1
	if 1+ones < rawLen {
		dst = append(dst, tagSparse)
		prev := -1
		forEachIndex(words, width, true, func(i int) {
			dst = appendUvarint(dst, uint64(i-prev))
			prev = i
		})
		sparseLen = len(dst) - start
		if sparseLen >= rawLen {
			dst, sparseLen = dst[:start], -1
		}
	}
	best := rawLen
	if sparseLen > 0 {
		best = sparseLen
	}
	if 1+zeros < best {
		if l := wordIndicesLen(words, width, zeros, false); l > 0 && l < best {
			dst = append(dst[:start], tagCosparse)
			prev := -1
			forEachIndex(words, width, false, func(i int) {
				dst = appendUvarint(dst, uint64(i-prev))
				prev = i
			})
			return dst, ones
		}
	}
	if sparseLen > 0 {
		return dst, ones
	}
	dst = append(dst[:start], tagRaw)
	for _, w := range words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst, ones
}

// wordIndicesLen mirrors Bits.indicesLen on raw words: the encoded byte
// length of the delta+varint index encoding over set (want=true) or clear
// (want=false) bits, or -1 when it cannot beat raw.
func wordIndicesLen(words []uint64, width, count int, want bool) int {
	if count >= len(words)*8 {
		return -1
	}
	n := 1
	prev := -1
	forEachIndex(words, width, want, func(i int) {
		n += uvarintLen(uint64(i - prev))
		prev = i
	})
	return n
}

// forEachIndex visits the indices of set (want=true) or clear (want=false)
// bits in increasing order, skipping whole words via TrailingZeros64.
func forEachIndex(words []uint64, width int, want bool, fn func(i int)) {
	for wi, w := range words {
		if !want {
			w = ^w
			if wi == len(words)-1 && width%wordBits != 0 {
				w &= (1 << uint(width%wordBits)) - 1
			}
		}
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// DecodeWordsKey reverses AppendWordsKey into dst, which must hold exactly
// wordsFor(width) words; dst is fully overwritten. The key is validated as
// FromCompactKey/FromKey validate: unknown tags, corrupt varints, indices
// at or beyond width, wrong raw length, and raw tail bits beyond width are
// all errors, so a round-trip through this decoder is a true bijection.
func DecodeWordsKey(dst []uint64, key []byte, width int) error {
	nw := wordsFor(width)
	if len(dst) != nw {
		return fmt.Errorf("bitset: decode buffer has %d words, want %d for width %d", len(dst), nw, width)
	}
	if len(key) == 0 {
		return fmt.Errorf("bitset: empty compact key")
	}
	tag, body := key[0], key[1:]
	switch tag {
	case tagRaw:
		if len(body) != nw*8 {
			return fmt.Errorf("bitset: raw key body length %d does not match width %d (want %d bytes)", len(body), width, nw*8)
		}
		for i := 0; i < nw; i++ {
			b := body[i*8:]
			dst[i] = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		}
		if rem := width % wordBits; rem != 0 && nw > 0 && dst[nw-1]>>uint(rem) != 0 {
			return fmt.Errorf("bitset: raw key has bits beyond width %d", width)
		}
		return nil
	case tagSparse, tagCosparse:
		if tag == tagSparse {
			for i := range dst {
				dst[i] = 0
			}
		} else {
			for i := range dst {
				dst[i] = ^uint64(0)
			}
			if rem := width % wordBits; rem != 0 && nw > 0 {
				dst[nw-1] = (1 << uint(rem)) - 1
			}
		}
		pos := -1
		for len(body) > 0 {
			d, n := readUvarintBytes(body)
			if n <= 0 {
				return fmt.Errorf("bitset: corrupt varint in compact key")
			}
			body = body[n:]
			if d == 0 || d > uint64(width) {
				return fmt.Errorf("bitset: compact key delta %d out of range for width %d", d, width)
			}
			pos += int(d)
			if pos >= width {
				return fmt.Errorf("bitset: compact key index %d beyond width %d", pos, width)
			}
			if tag == tagSparse {
				dst[pos/wordBits] |= 1 << (uint(pos) % wordBits)
			} else {
				dst[pos/wordBits] &^= 1 << (uint(pos) % wordBits)
			}
		}
		return nil
	default:
		return fmt.Errorf("bitset: unknown compact key tag %#x", tag)
	}
}

func readUvarintBytes(s []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x80 {
			if i > 9 || (i == 9 && c > 1) {
				return 0, -1 // overflow
			}
			return v | uint64(c)<<shift, i + 1
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, -1
}
