package bitset

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomBitsP returns a width-bit vector with each bit set with probability p.
func randomBitsP(rng *rand.Rand, width int, p float64) *Bits {
	b := New(width)
	for i := 0; i < width; i++ {
		if rng.Float64() < p {
			b.Set(i)
		}
	}
	return b
}

func TestAppendWordsKeyMatchesCompactKey(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, width := range []int{0, 1, 7, 63, 64, 65, 100, 128, 1000, 4096} {
		for _, p := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 1} {
			b := randomBitsP(rng, width, p)
			want := b.CompactKey()
			got, ones := AppendWordsKey(nil, b.Words(), width)
			if string(got) != want {
				t.Fatalf("width=%d p=%g: AppendWordsKey diverges from CompactKey (%d vs %d bytes)",
					width, p, len(got), len(want))
			}
			if ones != b.Count() {
				t.Fatalf("width=%d p=%g: popcount %d, want %d", width, p, ones, b.Count())
			}
		}
	}
}

func TestDecodeWordsKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, width := range []int{1, 64, 65, 100, 1000, 4096, 8192} {
		dst := make([]uint64, wordsFor(width))
		for _, p := range []float64{0, 0.005, 0.05, 0.5, 0.95, 1} {
			b := randomBitsP(rng, width, p)
			key, _ := AppendWordsKey(nil, b.Words(), width)
			// Poison dst so the decoder's full overwrite is exercised.
			for i := range dst {
				dst[i] = 0xdeadbeefdeadbeef
			}
			if err := DecodeWordsKey(dst, key, width); err != nil {
				t.Fatalf("width=%d p=%g: decode: %v", width, p, err)
			}
			if !EqualWords(dst, b.Words()) {
				t.Fatalf("width=%d p=%g: round-trip mismatch", width, p)
			}
		}
	}
}

func TestDecodeWordsKeyRejectsCorrupt(t *testing.T) {
	width := 100
	dst := make([]uint64, wordsFor(width))
	cases := map[string][]byte{
		"empty":           {},
		"unknown tag":     {0x7f, 1, 2},
		"raw short":       {0x00, 1, 2, 3},
		"raw tail bits":   append([]byte{0x00}, bytes.Repeat([]byte{0xff}, 16)...),
		"sparse overflow": {0x01, 200},
		"sparse zero":     {0x01, 0},
		"corrupt varint":  {0x01, 0x80},
		"cosparse beyond": {0x02, 120},
	}
	for name, key := range cases {
		if err := DecodeWordsKey(dst, key, width); err == nil {
			t.Errorf("%s: decode accepted corrupt key % x", name, key)
		}
	}
	if err := DecodeWordsKey(make([]uint64, 1), []byte{0x00}, 100); err == nil {
		t.Errorf("decode accepted short buffer")
	}
}

func TestAppendWordsKeyCompression(t *testing.T) {
	// A shallow split over 4096 taxa must compress far below raw words.
	width := 4096
	b := New(width)
	for i := 0; i < 8; i++ {
		b.Set(i * 3)
	}
	key, ones := AppendWordsKey(nil, b.Words(), width)
	if ones != 8 {
		t.Fatalf("popcount %d, want 8", ones)
	}
	if key[0] != tagSparse {
		t.Fatalf("tag %#x, want sparse", key[0])
	}
	if len(key) >= wordsFor(width)*8 {
		t.Fatalf("sparse key is %d bytes, no smaller than raw %d", len(key), wordsFor(width)*8)
	}
	// And its complement must go cosparse at the same size.
	c := b.Complement()
	ckey, cones := AppendWordsKey(nil, c.Words(), width)
	if cones != width-8 {
		t.Fatalf("complement popcount %d, want %d", cones, width-8)
	}
	if ckey[0] != tagCosparse {
		t.Fatalf("complement tag %#x, want cosparse", ckey[0])
	}
	if len(ckey) != len(key) {
		t.Fatalf("cosparse key %d bytes, sparse twin %d", len(ckey), len(key))
	}
}
