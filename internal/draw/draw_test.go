package draw

import (
	"strings"
	"testing"

	"repro/internal/newick"
	"repro/internal/tree"
)

func TestStringContainsAllLeaves(t *testing.T) {
	tr := newick.MustParse("((A,B),((C,D),(E,F)));")
	out, err := String(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []string{"A", "B", "C", "D", "E", "F"} {
		if !strings.Contains(out, leaf) {
			t.Errorf("rendering missing leaf %s:\n%s", leaf, out)
		}
	}
	// One row per leaf.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("lines = %d, want 6:\n%s", len(lines), out)
	}
}

func TestStringShowsInternalLabels(t *testing.T) {
	tr := newick.MustParse("((A,B)75,((C,D)50,(E,F)90)100);")
	out, err := String(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, support := range []string{"75", "50", "90"} {
		if !strings.Contains(out, support) {
			t.Errorf("support label %s not drawn:\n%s", support, out)
		}
	}
}

func TestStringShowsLengths(t *testing.T) {
	tr := newick.MustParse("((A:1.5,B:2):0.5,C:3);")
	out, err := String(tr, Options{ShowLengths: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ":1.5") || !strings.Contains(out, ":3") {
		t.Errorf("lengths not drawn:\n%s", out)
	}
	plain, err := String(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, ":1.5") {
		t.Error("lengths drawn despite ShowLengths=false")
	}
}

func TestStringMultifurcation(t *testing.T) {
	tr := newick.MustParse("(A,B,C,D,E);")
	out, err := String(tr, Options{Unit: 2})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("star tree lines = %d:\n%s", len(lines), out)
	}
}

func TestStringErrors(t *testing.T) {
	if _, err := String(nil, Options{}); err == nil {
		t.Error("nil tree should fail")
	}
	if _, err := String(&tree.Tree{}, Options{}); err == nil {
		t.Error("nil root should fail")
	}
}

func TestWriteDelegates(t *testing.T) {
	tr := newick.MustParse("((A,B),C);")
	var sb strings.Builder
	if err := Write(&sb, tr, Options{}); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Error("empty rendering")
	}
}

func TestDeepTree(t *testing.T) {
	// Caterpillar: depth grows linearly; rendering must still hold every
	// leaf on its own row.
	names := make([]string, 20)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	tr := tree.Caterpillar(names)
	out, err := String(tr, Options{Unit: 2})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 20 {
		t.Errorf("lines = %d, want 20", len(lines))
	}
}
