// Package draw renders phylogenetic trees as ASCII art for terminal
// output — consensus trees and supertrees are much easier to sanity-check
// drawn than as raw Newick.
//
// Layout: one row per leaf, internal nodes centred over their children,
// fixed column step per tree depth. Internal labels (e.g. support
// percentages from core.AnnotateSupport) are drawn on the branch.
package draw

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/tree"
)

// Options control rendering.
type Options struct {
	// Unit is the horizontal width of one depth step (default 4, min 2).
	Unit int
	// ShowLengths appends ":length" to node labels.
	ShowLengths bool
}

// Write renders t to w.
func Write(w io.Writer, t *tree.Tree, opts Options) error {
	s, err := String(t, opts)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, s)
	return err
}

// String renders t as a multi-line string.
func String(t *tree.Tree, opts Options) (string, error) {
	if t == nil || t.Root == nil {
		return "", fmt.Errorf("draw: nil tree")
	}
	unit := opts.Unit
	if unit < 2 {
		unit = 4
	}

	// Assign rows: leaves get consecutive rows in postorder; internal
	// nodes the midpoint of their children's rows.
	rows := map[*tree.Node]int{}
	depth := map[*tree.Node]int{}
	nextRow := 0
	maxDepth := 0
	var assign func(n *tree.Node, d int)
	assign = func(n *tree.Node, d int) {
		depth[n] = d
		if d > maxDepth {
			maxDepth = d
		}
		if n.IsLeaf() {
			rows[n] = nextRow
			nextRow++
			return
		}
		for _, c := range n.Children {
			assign(c, d+1)
		}
		rows[n] = (rows[n.Children[0]] + rows[n.Children[len(n.Children)-1]]) / 2
	}
	assign(t.Root, 0)

	width := (maxDepth+1)*unit + 40
	grid := make([][]byte, nextRow)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(row, col int, s string) {
		for i := 0; i < len(s) && col+i < width; i++ {
			grid[row][col+i] = s[i]
		}
	}

	// Draw edges parent→child: horizontal run at the child's row from the
	// parent's column to the child's column, vertical connector at the
	// parent's column spanning the children's rows.
	var drawNode func(n *tree.Node)
	drawNode = func(n *tree.Node) {
		col := depth[n] * unit
		if !n.IsLeaf() {
			first, last := n.Children[0], n.Children[len(n.Children)-1]
			for r := rows[first]; r <= rows[last]; r++ {
				grid[r][col] = '|'
			}
			put(rows[n], col, "+")
			for _, c := range n.Children {
				r := rows[c]
				for x := col + 1; x < depth[c]*unit; x++ {
					grid[r][x] = '-'
				}
				corner := byte('+')
				grid[r][col] = corner
				drawNode(c)
			}
		}
		label := nodeLabel(n, opts)
		if n.IsLeaf() {
			put(rows[n], col, "- "+label)
		} else if label != "" {
			put(rows[n], col+1, label)
		}
	}
	drawNode(t.Root)

	var sb strings.Builder
	for _, line := range grid {
		sb.WriteString(strings.TrimRight(string(line), " "))
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

func nodeLabel(n *tree.Node, opts Options) string {
	label := n.Name
	if opts.ShowLengths && n.HasLength {
		label += fmt.Sprintf(":%.3g", n.Length)
	}
	return label
}
