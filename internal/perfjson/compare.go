package perfjson

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/tabfmt"
)

// Options tunes the comparator's noise rejection.
type Options struct {
	// Threshold is the relative slowdown above which a metric counts as
	// regressed (0.10 = 10%). Non-positive values fall back to the
	// default.
	Threshold float64
	// HeapFloorMB is the absolute peak-heap delta below which heap
	// changes are ignored: tiny workloads jitter by whole allocator
	// size-classes, which dwarfs any relative threshold. Non-positive
	// values fall back to the default.
	HeapFloorMB float64
}

// DefaultThreshold is the gate used by ci and the committed baselines.
const DefaultThreshold = 0.10

// DefaultHeapFloorMB ignores sub-mebibyte heap wobble.
const DefaultHeapFloorMB = 1.0

func (o Options) threshold() float64 {
	if o.Threshold <= 0 {
		return DefaultThreshold
	}
	return o.Threshold
}

func (o Options) heapFloor() float64 {
	if o.HeapFloorMB <= 0 {
		return DefaultHeapFloorMB
	}
	return o.HeapFloorMB
}

// Delta is one metric's change between baseline and current.
type Delta struct {
	Key    string // workload/engine
	Metric string // "time" or "heap"
	// Base and Cur are the metric values (ns/op median, or peak MiB).
	Base, Cur float64
	// Rel is (Cur-Base)/Base.
	Rel float64
}

func (d Delta) String() string {
	return fmt.Sprintf("%s %s: %+.1f%% (%.4g -> %.4g)", d.Key, d.Metric, d.Rel*100, d.Base, d.Cur)
}

// Comparison is the outcome of gating a current suite against a baseline.
type Comparison struct {
	Opts Options
	// Compared counts (workload, engine) pairs present in both suites.
	Compared int
	// Regressions and Improvements hold deltas past the threshold;
	// everything within the noise band is reported in neither.
	Regressions  []Delta
	Improvements []Delta
	// OnlyInBase lists keys the current run no longer measures — a
	// vanished benchmark fails the gate, since dropping a workload must
	// not be a way to hide a regression.
	OnlyInBase []string
	// OnlyInCurrent lists new keys with no baseline; they pass the gate
	// and become part of the next committed baseline.
	OnlyInCurrent []string
}

// OK reports whether the gate passes: no regressions and no vanished
// benchmarks.
func (c *Comparison) OK() bool {
	return len(c.Regressions) == 0 && len(c.OnlyInBase) == 0
}

// Compare gates cur against base. Both suites must be valid (as
// Encode/Decode guarantee); suites recorded at different -scale factors
// are rejected since their workloads ran different sizes.
//
// Noise rejection: a time regression requires BOTH the median and the
// min of the k repetitions to slow down past the threshold — a single
// descheduled repetition inflates the median far less than the mean and
// never inflates the min, so ≤threshold jitter on identical code passes.
// Heap regressions additionally require the absolute delta to exceed
// HeapFloorMB.
func Compare(base, cur *Suite, opts Options) (*Comparison, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := cur.Validate(); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if base.Scale != 0 && cur.Scale != 0 && base.Scale != cur.Scale {
		return nil, fmt.Errorf("perfjson: scale mismatch: baseline %g vs current %g", base.Scale, cur.Scale)
	}
	cmp := &Comparison{Opts: opts}
	th := opts.threshold()
	baseByKey := base.byKey()
	curByKey := cur.byKey()

	keys := make([]string, 0, len(baseByKey))
	for k := range baseByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := baseByKey[k]
		c, ok := curByKey[k]
		if !ok {
			cmp.OnlyInBase = append(cmp.OnlyInBase, k)
			continue
		}
		cmp.Compared++

		relMed := rel(float64(b.NsOpMedian), float64(c.NsOpMedian))
		relMin := rel(float64(b.NsOpMin), float64(c.NsOpMin))
		d := Delta{Key: k, Metric: "time", Base: float64(b.NsOpMedian), Cur: float64(c.NsOpMedian), Rel: relMed}
		switch {
		case relMed > th && relMin > th:
			cmp.Regressions = append(cmp.Regressions, d)
		case relMed < -th && relMin < -th:
			cmp.Improvements = append(cmp.Improvements, d)
		}

		// Heap follows the same median-AND-min rule as time: GC timing
		// inflates individual sampled peaks, but a real memory regression
		// also moves the floor. Deltas under the absolute floor are
		// allocator wobble regardless of their relative size.
		floor := opts.heapFloor()
		hd := Delta{Key: k, Metric: "heap", Base: b.PeakHeapMB, Cur: c.PeakHeapMB, Rel: rel(b.PeakHeapMB, c.PeakHeapMB)}
		switch {
		case grew(b.PeakHeapMB, c.PeakHeapMB, th, floor) && grew(b.PeakHeapMBMin, c.PeakHeapMBMin, th, floor):
			cmp.Regressions = append(cmp.Regressions, hd)
		case grew(c.PeakHeapMB, b.PeakHeapMB, th, floor) && grew(c.PeakHeapMBMin, b.PeakHeapMBMin, th, floor):
			cmp.Improvements = append(cmp.Improvements, hd)
		}
	}
	curKeys := make([]string, 0, len(curByKey))
	for k := range curByKey {
		if _, ok := baseByKey[k]; !ok {
			curKeys = append(curKeys, k)
		}
	}
	sort.Strings(curKeys)
	cmp.OnlyInCurrent = curKeys
	return cmp, nil
}

// rel returns (cur-base)/base, guarding the base == 0 and non-finite
// cases: a zero baseline makes any growth infinitely regressed, which the
// callers above decide with absolute floors instead.
func rel(base, cur float64) float64 {
	if base == 0 || math.IsNaN(base) || math.IsNaN(cur) {
		return 0
	}
	return (cur - base) / base
}

// grew reports whether cur exceeds base by more than the absolute floor
// AND the relative threshold (a zero base passes the relative test by
// definition — any above-floor growth from nothing is real).
func grew(base, cur, th, floor float64) bool {
	if cur-base <= floor {
		return false
	}
	return base == 0 || (cur-base)/base > th
}

// WriteText renders the comparison for humans: the verdict, every delta
// past the threshold, and the membership differences.
func (c *Comparison) WriteText(w io.Writer) error {
	verdict := "PASS"
	if !c.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "perf gate: %s (%d compared, %d regressed, %d improved, threshold %.0f%%)\n",
		verdict, c.Compared, len(c.Regressions), len(c.Improvements), c.Opts.threshold()*100)
	if len(c.Regressions)+len(c.Improvements) > 0 {
		tab := tabfmt.New("", "Direction", "Workload/Engine", "Metric", "Baseline", "Current", "Delta")
		for _, d := range c.Regressions {
			tab.AddRow("REGRESSED", d.Key, d.Metric, fmt.Sprintf("%.4g", d.Base), fmt.Sprintf("%.4g", d.Cur), fmt.Sprintf("%+.1f%%", d.Rel*100))
		}
		for _, d := range c.Improvements {
			tab.AddRow("improved", d.Key, d.Metric, fmt.Sprintf("%.4g", d.Base), fmt.Sprintf("%.4g", d.Cur), fmt.Sprintf("%+.1f%%", d.Rel*100))
		}
		if err := tab.WriteText(w); err != nil {
			return err
		}
	}
	for _, k := range c.OnlyInBase {
		fmt.Fprintf(w, "missing: %s is in the baseline but was not measured (gate fails)\n", k)
	}
	for _, k := range c.OnlyInCurrent {
		fmt.Fprintf(w, "new: %s has no baseline yet\n", k)
	}
	return nil
}
