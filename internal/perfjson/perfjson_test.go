package perfjson

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/memprof"
)

func validSuite() *Suite {
	return &Suite{
		Schema:    SchemaVersion,
		Tool:      "rfbench",
		GitCommit: "deadbeef",
		Timestamp: "2026-08-05T00:00:00Z",
		Scale:     0.02,
		Records: []Record{
			{Workload: "vartrees-n100-r1000", Engine: "DS", N: 100, R: 20, Workers: 1,
				Reps: 5, NsOpMedian: 1e9, NsOpMin: 9e8, PeakHeapMB: 12.5, PeakHeapMBMin: 11.5},
			{Workload: "vartrees-n100-r1000", Engine: "BFHRF8", N: 100, R: 20, Workers: 8,
				Reps: 5, NsOpMedian: 1e7, NsOpMin: 9e6, PeakHeapMB: 2.5, PeakHeapMBMin: 2.25},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	s := validSuite()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != s.Schema || got.Scale != s.Scale || got.GitCommit != s.GitCommit {
		t.Errorf("envelope mismatch: %+v", got)
	}
	if len(got.Records) != len(s.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(s.Records))
	}
	for i := range got.Records {
		if got.Records[i] != s.Records[i] {
			t.Errorf("record %d: got %+v want %+v", i, got.Records[i], s.Records[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	s := validSuite()
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 || got.Records[0].Key() != "vartrees-n100-r1000/DS" {
		t.Errorf("unexpected suite: %+v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Suite)
	}{
		{"wrong schema", func(s *Suite) { s.Schema = SchemaVersion + 1 }},
		{"empty workload", func(s *Suite) { s.Records[0].Workload = "" }},
		{"slash in workload", func(s *Suite) { s.Records[0].Workload = "a/b" }},
		{"empty engine", func(s *Suite) { s.Records[0].Engine = "" }},
		{"zero n", func(s *Suite) { s.Records[0].N = 0 }},
		{"zero reps", func(s *Suite) { s.Records[0].Reps = 0 }},
		{"zero median", func(s *Suite) { s.Records[0].NsOpMedian = 0 }},
		{"min above median", func(s *Suite) { s.Records[0].NsOpMin = s.Records[0].NsOpMedian + 1 }},
		{"NaN heap", func(s *Suite) { s.Records[0].PeakHeapMB = math.NaN() }},
		{"Inf heap", func(s *Suite) { s.Records[0].PeakHeapMB = math.Inf(1) }},
		{"negative heap", func(s *Suite) { s.Records[0].PeakHeapMB = -1; s.Records[0].PeakHeapMBMin = -1 }},
		{"NaN heap min", func(s *Suite) { s.Records[0].PeakHeapMBMin = math.NaN() }},
		{"heap min above median", func(s *Suite) { s.Records[0].PeakHeapMBMin = s.Records[0].PeakHeapMB + 1 }},
		{"NaN scale", func(s *Suite) { s.Scale = math.NaN() }},
		{"duplicate key", func(s *Suite) { s.Records[1] = s.Records[0] }},
	}
	for _, tc := range cases {
		s := validSuite()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid suite", tc.name)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, s); err == nil {
			t.Errorf("%s: Encode accepted an invalid suite", tc.name)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"schema":1,"records":[],"bogus":3}`))
	if err == nil {
		t.Error("unknown field should be rejected")
	}
}

func TestFromMeasurements(t *testing.T) {
	ms := []memprof.Measurement{
		{Wall: 5 * time.Millisecond, PeakHeapBytes: 3 << 20},
		{Wall: 2 * time.Millisecond, PeakHeapBytes: 1 << 20},
		{Wall: 9 * time.Millisecond, PeakHeapBytes: 2 << 20},
	}
	r := FromMeasurements("w", "DS", 100, 20, 1, ms)
	if r.Reps != 3 {
		t.Errorf("Reps = %d", r.Reps)
	}
	if r.NsOpMedian != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("NsOpMedian = %d", r.NsOpMedian)
	}
	if r.NsOpMin != (2 * time.Millisecond).Nanoseconds() {
		t.Errorf("NsOpMin = %d", r.NsOpMin)
	}
	if r.PeakHeapMB != 2 {
		t.Errorf("PeakHeapMB = %v", r.PeakHeapMB)
	}
	if r.PeakHeapMBMin != 1 {
		t.Errorf("PeakHeapMBMin = %v", r.PeakHeapMBMin)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("aggregated record should be valid: %v", err)
	}
}

func TestFromMeasurementsEvenCount(t *testing.T) {
	// Even k takes the lower middle, a value actually observed.
	ms := []memprof.Measurement{
		{Wall: 4 * time.Millisecond}, {Wall: 1 * time.Millisecond},
		{Wall: 2 * time.Millisecond}, {Wall: 3 * time.Millisecond},
	}
	r := FromMeasurements("w", "DS", 10, 10, 1, ms)
	if r.NsOpMedian != (2 * time.Millisecond).Nanoseconds() {
		t.Errorf("NsOpMedian = %d", r.NsOpMedian)
	}
}

func TestGitCommitNeverFails(t *testing.T) {
	// Inside the repo it returns a hash; in a bare temp dir, "unknown".
	// Either way it must return something non-empty.
	if c := GitCommit(t.TempDir()); c == "" {
		t.Error("GitCommit returned empty string")
	}
	if c := GitCommit("."); c == "" {
		t.Error("GitCommit returned empty string in repo")
	}
}
