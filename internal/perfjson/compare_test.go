package perfjson

import (
	"math/rand"
	"strings"
	"testing"
)

// benchSuite builds a valid suite of n records with deterministic values.
func benchSuite(n int) *Suite {
	s := &Suite{Schema: SchemaVersion, Scale: 0.02}
	for i := 0; i < n; i++ {
		s.Records = append(s.Records, Record{
			Workload: "w" + string(rune('a'+i)), Engine: "DS",
			N: 100, R: 50, Workers: 1, Reps: 5,
			NsOpMedian:    int64(1e9) * int64(i+1),
			NsOpMin:       int64(9e8) * int64(i+1),
			PeakHeapMB:    10 * float64(i+1),
			PeakHeapMBMin: 9 * float64(i+1),
		})
	}
	return s
}

func TestCompareIdenticalPasses(t *testing.T) {
	base, cur := benchSuite(4), benchSuite(4)
	cmp, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() || len(cmp.Regressions) != 0 || len(cmp.Improvements) != 0 {
		t.Errorf("identical suites should pass clean: %+v", cmp)
	}
	if cmp.Compared != 4 {
		t.Errorf("Compared = %d, want 4", cmp.Compared)
	}
}

func TestCompareJitterWithinThresholdPasses(t *testing.T) {
	// ≤10% jitter on both median and min, in both directions, must pass
	// at threshold 0.10 — the acceptance condition for identical runs.
	base := benchSuite(6)
	cur := benchSuite(6)
	rng := rand.New(rand.NewSource(1))
	for i := range cur.Records {
		j := 0.90 + 0.20*rng.Float64() // factor in [0.90, 1.10]
		cur.Records[i].NsOpMedian = int64(float64(cur.Records[i].NsOpMedian) * j)
		cur.Records[i].NsOpMin = int64(float64(cur.Records[i].NsOpMin) * j)
	}
	cmp, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Errorf("jitter within threshold should pass: %+v", cmp.Regressions)
	}
}

func TestCompareDetectsSlowdown(t *testing.T) {
	// A 2× slowdown in every record must fail the gate.
	base := benchSuite(3)
	cur := benchSuite(3)
	for i := range cur.Records {
		cur.Records[i].NsOpMedian *= 2
		cur.Records[i].NsOpMin *= 2
	}
	cmp, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() {
		t.Fatal("2x slowdown must fail the gate")
	}
	if len(cmp.Regressions) != 3 {
		t.Errorf("Regressions = %d, want 3", len(cmp.Regressions))
	}
	for _, d := range cmp.Regressions {
		if d.Metric != "time" || d.Rel < 0.9 || d.Rel > 1.1 {
			t.Errorf("unexpected delta: %+v", d)
		}
	}
}

func TestCompareMedianSpikeAloneIsNoise(t *testing.T) {
	// The median regressed but the min did not: one noisy repetition, not
	// a regression.
	base := benchSuite(1)
	cur := benchSuite(1)
	cur.Records[0].NsOpMedian *= 2
	cmp, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Errorf("median-only spike should be treated as noise: %+v", cmp.Regressions)
	}
}

func TestCompareDetectsImprovement(t *testing.T) {
	base := benchSuite(1)
	cur := benchSuite(1)
	cur.Records[0].NsOpMedian /= 3
	cur.Records[0].NsOpMin /= 3
	cmp, err := Compare(base, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() || len(cmp.Improvements) != 1 {
		t.Errorf("improvement should pass and be reported: %+v", cmp)
	}
}

func TestCompareHeapRegression(t *testing.T) {
	base := benchSuite(1)
	cur := benchSuite(1)
	cur.Records[0].PeakHeapMB = base.Records[0].PeakHeapMB*1.5 + 2
	cur.Records[0].PeakHeapMBMin = base.Records[0].PeakHeapMBMin*1.5 + 2
	cmp, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() || len(cmp.Regressions) != 1 || cmp.Regressions[0].Metric != "heap" {
		t.Errorf("heap growth should regress: %+v", cmp)
	}
}

func TestCompareHeapMedianSpikeAloneIsNoise(t *testing.T) {
	// The median peak grew 50% but the min did not move: GC caught the
	// repetitions at bad moments, the floor is unchanged.
	base := benchSuite(1)
	cur := benchSuite(1)
	cur.Records[0].PeakHeapMB = base.Records[0].PeakHeapMB * 1.5
	cmp, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Errorf("heap median-only spike should be treated as noise: %+v", cmp.Regressions)
	}
}

func TestCompareHeapFloorAbsorbsTinyDeltas(t *testing.T) {
	// +50% relative but under the absolute floor: allocator size-class
	// wobble, not a regression.
	base := benchSuite(1)
	cur := benchSuite(1)
	base.Records[0].PeakHeapMB, base.Records[0].PeakHeapMBMin = 0.4, 0.3
	cur.Records[0].PeakHeapMB, cur.Records[0].PeakHeapMBMin = 0.6, 0.5
	cmp, err := Compare(base, cur, Options{Threshold: 0.10, HeapFloorMB: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Errorf("sub-floor heap delta should pass: %+v", cmp.Regressions)
	}
}

func TestCompareZeroHeapBaseline(t *testing.T) {
	// Zero-heap baseline growing past the floor must regress without
	// dividing by zero.
	base := benchSuite(1)
	cur := benchSuite(1)
	base.Records[0].PeakHeapMB, base.Records[0].PeakHeapMBMin = 0, 0
	cur.Records[0].PeakHeapMB, cur.Records[0].PeakHeapMBMin = 5, 4
	cmp, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() {
		t.Error("0 -> 5 MB heap growth should regress")
	}
}

func TestCompareMissingWorkloadFailsGate(t *testing.T) {
	base := benchSuite(3)
	cur := benchSuite(2) // wc vanished
	cmp, err := Compare(base, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.OK() {
		t.Fatal("vanished benchmark must fail the gate")
	}
	if len(cmp.OnlyInBase) != 1 || cmp.OnlyInBase[0] != "wc/DS" {
		t.Errorf("OnlyInBase = %v", cmp.OnlyInBase)
	}
}

func TestCompareNewWorkloadPasses(t *testing.T) {
	base := benchSuite(2)
	cur := benchSuite(3)
	cmp, err := Compare(base, cur, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.OK() {
		t.Error("new benchmark should pass the gate")
	}
	if len(cmp.OnlyInCurrent) != 1 || cmp.OnlyInCurrent[0] != "wc/DS" {
		t.Errorf("OnlyInCurrent = %v", cmp.OnlyInCurrent)
	}
}

func TestCompareScaleMismatch(t *testing.T) {
	base := benchSuite(1)
	cur := benchSuite(1)
	cur.Scale = 0.1
	if _, err := Compare(base, cur, Options{}); err == nil {
		t.Error("scale mismatch should be an error")
	}
}

func TestCompareRejectsInvalidSuite(t *testing.T) {
	base := benchSuite(1)
	cur := benchSuite(1)
	cur.Records[0].NsOpMedian = 0 // invalid: zero time
	if _, err := Compare(base, cur, Options{}); err == nil {
		t.Error("invalid current suite should be an error")
	}
	base.Records[0].Workload = ""
	if _, err := Compare(base, benchSuite(1), Options{}); err == nil {
		t.Error("invalid baseline should be an error")
	}
}

func TestComparisonWriteText(t *testing.T) {
	base := benchSuite(2)
	cur := benchSuite(2)
	cur.Records[0].NsOpMedian *= 2
	cur.Records[0].NsOpMin *= 2
	cmp, err := Compare(base, cur, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cmp.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FAIL", "REGRESSED", "wa/DS", "time"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
