// Package perfjson defines the machine-readable benchmark record that
// tracks the repo's performance trajectory. Every perf-sensitive PR emits a
// suite of records (one per workload × engine) with `rfbench -json`; the
// committed BENCH_*.json files are the baseline that later runs are gated
// against with `rfbench -compare`.
//
// The format is deliberately small: a schema-versioned envelope (Suite)
// holding flat records keyed by a stable workload ID from the experiment
// index plus the engine name. Records carry median-of-k and min-of-k
// nanoseconds per operation so the comparator can distinguish a real
// regression from scheduler noise: a regression is flagged only when both
// the median AND the best-case run slow down past the threshold.
package perfjson

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"sort"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/memprof"
)

// SchemaVersion is bumped whenever a decoder-visible field changes
// meaning. Decoders accept only versions they know.
const SchemaVersion = 1

// Record is one measured (workload, engine) cell of a benchmark suite.
type Record struct {
	// Workload is the stable ID of the data point from the experiment
	// index (e.g. "vartrees-n100-r1000"). Comparisons match records by
	// (Workload, Engine), so the ID must not encode anything that varies
	// between runs of the same configuration.
	Workload string `json:"workload"`
	// Engine names the measured configuration (DS, DSMP8, HashRF, ...).
	Engine string `json:"engine"`
	// N and R are the taxa and tree counts actually run (post-scaling).
	N int `json:"n"`
	R int `json:"r"`
	// Workers is the engine's parallelism (1 for sequential engines).
	Workers int `json:"workers"`
	// Reps is k, the number of repetitions aggregated below.
	Reps int `json:"repetitions"`
	// NsOpMedian and NsOpMin are the median and minimum wall time of the
	// k repetitions, in nanoseconds per operation (one operation = one
	// full average-RF computation of the workload).
	NsOpMedian int64 `json:"ns_op_median"`
	NsOpMin    int64 `json:"ns_op_min"`
	// PeakHeapMB and PeakHeapMBMin are the median and minimum sampled
	// peak live heap above baseline, in MiB, across the k repetitions.
	// The min is kept for the same reason as NsOpMin: GC timing inflates
	// individual peaks multiplicatively, and a real memory regression
	// moves the floor, not just the median.
	PeakHeapMB    float64 `json:"peak_heap_mb"`
	PeakHeapMBMin float64 `json:"peak_heap_mb_min"`
}

// Key identifies the record for comparison: workload/engine.
func (r Record) Key() string { return r.Workload + "/" + r.Engine }

// Validate reports the first schema violation in the record.
func (r Record) Validate() error {
	switch {
	case r.Workload == "":
		return fmt.Errorf("perfjson: record has empty workload")
	case strings.Contains(r.Workload, "/"):
		return fmt.Errorf("perfjson: workload %q contains '/', reserved for the record key", r.Workload)
	case r.Engine == "":
		return fmt.Errorf("perfjson: record %s has empty engine", r.Workload)
	case r.N <= 0 || r.R <= 0:
		return fmt.Errorf("perfjson: record %s: n=%d r=%d must be positive", r.Key(), r.N, r.R)
	case r.Workers <= 0:
		return fmt.Errorf("perfjson: record %s: workers=%d must be positive", r.Key(), r.Workers)
	case r.Reps <= 0:
		return fmt.Errorf("perfjson: record %s: repetitions=%d must be positive", r.Key(), r.Reps)
	case r.NsOpMedian <= 0 || r.NsOpMin <= 0:
		return fmt.Errorf("perfjson: record %s: ns/op median=%d min=%d must be positive", r.Key(), r.NsOpMedian, r.NsOpMin)
	case r.NsOpMin > r.NsOpMedian:
		return fmt.Errorf("perfjson: record %s: ns/op min %d exceeds median %d", r.Key(), r.NsOpMin, r.NsOpMedian)
	case math.IsNaN(r.PeakHeapMB) || math.IsInf(r.PeakHeapMB, 0) || r.PeakHeapMB < 0:
		return fmt.Errorf("perfjson: record %s: peak_heap_mb %v is not a finite non-negative number", r.Key(), r.PeakHeapMB)
	case math.IsNaN(r.PeakHeapMBMin) || math.IsInf(r.PeakHeapMBMin, 0) || r.PeakHeapMBMin < 0:
		return fmt.Errorf("perfjson: record %s: peak_heap_mb_min %v is not a finite non-negative number", r.Key(), r.PeakHeapMBMin)
	case r.PeakHeapMBMin > r.PeakHeapMB:
		return fmt.Errorf("perfjson: record %s: peak heap min %v exceeds median %v", r.Key(), r.PeakHeapMBMin, r.PeakHeapMB)
	}
	return nil
}

// Suite is the envelope one benchmark run emits: provenance plus records.
type Suite struct {
	Schema int `json:"schema"`
	// Tool identifies the emitter (e.g. "rfbench").
	Tool string `json:"tool,omitempty"`
	// GitCommit is the hash of the measured tree, "unknown" outside git.
	GitCommit string `json:"git_commit,omitempty"`
	// Timestamp is the RFC 3339 emission time.
	Timestamp string `json:"timestamp,omitempty"`
	// Scale is the rfbench -scale factor the workloads ran at; suites
	// measured at different scales are not comparable.
	Scale   float64  `json:"scale,omitempty"`
	Records []Record `json:"records"`
}

// Validate checks the envelope and every record, including key
// uniqueness (duplicate keys would make comparisons ambiguous).
func (s *Suite) Validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("perfjson: unsupported schema version %d (want %d)", s.Schema, SchemaVersion)
	}
	if math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) || s.Scale < 0 {
		return fmt.Errorf("perfjson: scale %v is not a finite non-negative number", s.Scale)
	}
	seen := make(map[string]bool, len(s.Records))
	for _, r := range s.Records {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.Key()] {
			return fmt.Errorf("perfjson: duplicate record key %s", r.Key())
		}
		seen[r.Key()] = true
	}
	return nil
}

// byKey indexes the suite's records.
func (s *Suite) byKey() map[string]Record {
	m := make(map[string]Record, len(s.Records))
	for _, r := range s.Records {
		m[r.Key()] = r
	}
	return m
}

// Encode validates the suite and writes it as indented JSON.
func Encode(w io.Writer, s *Suite) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Decode reads and validates a suite.
func Decode(r io.Reader) (*Suite, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("perfjson: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteFile encodes the suite to path atomically (temp file + fsync +
// rename), so a crash mid-write leaves any previous suite intact.
func WriteFile(path string, s *Suite) error {
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Encode(f, s); err != nil {
		return err
	}
	return f.Commit()
}

// ReadFile decodes and validates the suite at path.
func ReadFile(path string) (*Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// FromMeasurements aggregates k memprof measurements into a record:
// median and min wall time, median peak heap. It panics on an empty
// slice (a caller bug, not a data condition).
func FromMeasurements(workload, engine string, n, r, workers int, ms []memprof.Measurement) Record {
	if len(ms) == 0 {
		panic("perfjson: FromMeasurements on zero measurements")
	}
	walls := make([]int64, len(ms))
	heaps := make([]float64, len(ms))
	for i, m := range ms {
		walls[i] = m.Wall.Nanoseconds()
		heaps[i] = m.PeakHeapMB()
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	sort.Float64s(heaps)
	return Record{
		Workload:      workload,
		Engine:        engine,
		N:             n,
		R:             r,
		Workers:       workers,
		Reps:          len(ms),
		NsOpMedian:    median64(walls),
		NsOpMin:       walls[0],
		PeakHeapMB:    medianF(heaps),
		PeakHeapMBMin: heaps[0],
	}
}

// median64 returns the median of a sorted slice (lower middle for even
// lengths, so the value is always one actually observed).
func median64(sorted []int64) int64 {
	return sorted[(len(sorted)-1)/2]
}

func medianF(sorted []float64) float64 {
	return sorted[(len(sorted)-1)/2]
}

// GitCommit returns the current HEAD hash of dir's repository, or
// "unknown" when git or the repository is unavailable — provenance must
// never fail a benchmark run.
func GitCommit(dir string) string {
	cmd := exec.Command("git", "rev-parse", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
