package simphy

import (
	"fmt"
	"math/rand"

	"repro/internal/taxa"
	"repro/internal/tree"
)

// Caterpillar returns the fully pectinate (ladder) tree over a random
// permutation of the catalogue, with unit branch lengths. Caterpillars
// maximize tree depth (n-2 nested internal edges), so a collection of
// label-permuted caterpillars is the depth-stress case for extraction and
// the sparse-key case for the succinct backend: every internal bipartition
// near the tip end has very few set bits.
//
// Construction is iterative and O(n): one permutation draw, one node per
// taxon, no per-label scans — safe for the huge-n collections (n >= 4096)
// that treegen -shape targets.
func Caterpillar(ts *taxa.Set, rng *rand.Rand) *tree.Tree {
	n := ts.Len()
	if n < 2 {
		panic(fmt.Sprintf("simphy: need at least 2 taxa, have %d", n))
	}
	perm := rng.Perm(n)
	leaf := func(i int) *tree.Node {
		return &tree.Node{Name: ts.Name(perm[i]), Length: 1, HasLength: true}
	}
	spine := &tree.Node{Length: 1, HasLength: true}
	spine.AddChild(leaf(0))
	spine.AddChild(leaf(1))
	for i := 2; i < n; i++ {
		parent := &tree.Node{Length: 1, HasLength: true}
		parent.AddChild(spine)
		parent.AddChild(leaf(i))
		spine = parent
	}
	t := tree.New(spine)
	t.Root.HasLength = false
	t.Deroot()
	return t
}

// BalancedBinary returns a maximally balanced binary tree over a random
// permutation of the catalogue, with unit branch lengths: at every internal
// node the taxa split as evenly as possible. Balanced trees minimize depth
// (⌈log₂ n⌉) and make half the bipartitions dense — the cosparse-key case
// for the succinct backend, and the opposite extreme from Caterpillar.
//
// Construction is O(n) (one permutation draw, one node per taxon).
func BalancedBinary(ts *taxa.Set, rng *rand.Rand) *tree.Tree {
	n := ts.Len()
	if n < 2 {
		panic(fmt.Sprintf("simphy: need at least 2 taxa, have %d", n))
	}
	perm := rng.Perm(n)
	var build func(lo, hi int) *tree.Node
	build = func(lo, hi int) *tree.Node {
		if hi-lo == 1 {
			return &tree.Node{Name: ts.Name(perm[lo]), Length: 1, HasLength: true}
		}
		mid := lo + (hi-lo+1)/2
		p := &tree.Node{Length: 1, HasLength: true}
		p.AddChild(build(lo, mid))
		p.AddChild(build(mid, hi))
		return p
	}
	t := tree.New(build(0, n))
	t.Root.HasLength = false
	t.Deroot()
	return t
}
