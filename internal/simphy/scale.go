package simphy

import "repro/internal/tree"

// MeanInternalBranch returns the mean length of internal (non-pendant)
// branches, or 0 if there are none.
func MeanInternalBranch(t *tree.Tree) float64 {
	sum, n := 0.0, 0
	t.Postorder(func(nd *tree.Node) {
		if nd.Parent != nil && !nd.IsLeaf() && nd.HasLength {
			sum += nd.Length
			n++
		}
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ScaleBranches multiplies every branch length in place by factor.
func ScaleBranches(t *tree.Tree, factor float64) {
	t.Postorder(func(nd *tree.Node) {
		if nd.HasLength {
			nd.Length *= factor
		}
	})
}

// ScaleMeanInternal rescales the tree in place so that the mean internal
// branch length equals target coalescent units. Species trees scaled this
// way control the amount of incomplete lineage sorting their gene trees
// exhibit: ≳ 1 unit gives concordant collections with concentrated
// bipartition frequencies (like the paper's empirical data); ≪ 1 gives
// discordant, high-entropy collections.
func ScaleMeanInternal(t *tree.Tree, target float64) {
	mean := MeanInternalBranch(t)
	if mean <= 0 || target <= 0 {
		return
	}
	ScaleBranches(t, target/mean)
}

// StripLengths removes every branch length in place, producing
// structure-only trees like the paper's unweighted Insect data.
func StripLengths(t *tree.Tree) {
	t.Postorder(func(nd *tree.Node) {
		nd.Length = 0
		nd.HasLength = false
	})
}
