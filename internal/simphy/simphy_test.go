package simphy

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/taxa"
	"repro/internal/tree"
)

func TestRandomBinaryShape(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 10, 50, 200} {
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(int64(n)))
		tr := RandomBinary(ts, rng)
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: invalid tree: %v", n, err)
		}
		if tr.NumLeaves() != n {
			t.Fatalf("n=%d: leaves = %d", n, tr.NumLeaves())
		}
		if n >= 3 && !tr.IsBinaryUnrooted() {
			t.Errorf("n=%d: not binary", n)
		}
		names := tr.LeafNames()
		sort.Strings(names)
		for i, name := range names {
			if name != ts.Name(i) {
				t.Fatalf("n=%d: taxa mismatch at %d", n, i)
			}
		}
	}
}

func TestRandomBinaryDeterministic(t *testing.T) {
	ts := taxa.Generate(20)
	a := RandomBinary(ts, rand.New(rand.NewSource(7)))
	b := RandomBinary(ts, rand.New(rand.NewSource(7)))
	// Compare shapes via leaf order of postorder traversal.
	an, bn := a.LeafNames(), b.LeafNames()
	for i := range an {
		if an[i] != bn[i] {
			t.Fatal("same seed should give identical trees")
		}
	}
}

func TestYuleShape(t *testing.T) {
	ts := taxa.Generate(30)
	rng := rand.New(rand.NewSource(3))
	sp := Yule(ts, rng, YuleOptions{BirthRate: 1})
	if err := sp.Validate(); err != nil {
		t.Fatalf("invalid Yule tree: %v", err)
	}
	if sp.NumLeaves() != 30 {
		t.Fatalf("leaves = %d", sp.NumLeaves())
	}
	// Every non-root node must carry a positive branch length.
	sp.Postorder(func(n *tree.Node) {
		if n.Parent != nil {
			if !n.HasLength || n.Length <= 0 {
				t.Errorf("node without positive length: %+v", n.Length)
			}
		}
	})
	// Rooted binary: root has 2 children, internals 2.
	if len(sp.Root.Children) != 2 {
		t.Errorf("Yule root children = %d, want 2", len(sp.Root.Children))
	}
}

func TestYuleUltrametric(t *testing.T) {
	// All root-to-leaf path lengths must be equal (the tips are extended to
	// the same present).
	ts := taxa.Generate(15)
	sp := Yule(ts, rand.New(rand.NewSource(8)), YuleOptions{})
	var depths []float64
	var walk func(n *tree.Node, d float64)
	walk = func(n *tree.Node, d float64) {
		if n.HasLength {
			d += n.Length
		}
		if n.IsLeaf() {
			depths = append(depths, d)
			return
		}
		for _, c := range n.Children {
			walk(c, d)
		}
	}
	walk(sp.Root, 0)
	for _, d := range depths[1:] {
		if math.Abs(d-depths[0]) > 1e-9 {
			t.Fatalf("not ultrametric: %v vs %v", d, depths[0])
		}
	}
}

func TestGeneTreeShape(t *testing.T) {
	ts := taxa.Generate(25)
	rng := rand.New(rand.NewSource(44))
	sp := Yule(ts, rng, YuleOptions{BirthRate: 1})
	for i := 0; i < 5; i++ {
		g, err := GeneTree(sp, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid gene tree: %v", err)
		}
		if g.NumLeaves() != 25 {
			t.Fatalf("gene tree leaves = %d", g.NumLeaves())
		}
		if !g.IsBinaryUnrooted() {
			t.Error("gene tree should be binary (unrooted serialization)")
		}
	}
}

func TestGeneTreeConcordanceRegimes(t *testing.T) {
	// Long species-tree branches → gene trees match the species tree more
	// often than under short branches. Compare distinct-topology counts.
	ts := taxa.Generate(12)
	distinct := func(scale float64, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		sp := Yule(ts, rng, YuleOptions{BirthRate: 1})
		ScaleMeanInternal(sp, scale)
		seen := map[string]bool{}
		for i := 0; i < 40; i++ {
			g, err := GeneTree(sp, rng)
			if err != nil {
				t.Fatal(err)
			}
			seen[topologyKey(g)] = true
		}
		return len(seen)
	}
	concordant := distinct(5.0, 9)
	discordant := distinct(0.05, 9)
	if concordant >= discordant {
		t.Errorf("long branches gave %d topologies, short gave %d; want fewer under long",
			concordant, discordant)
	}
}

// topologyKey gives a canonical string for an unrooted topology: sorted
// leaf-name sets of all clusters. Adequate for small-n testing.
func topologyKey(t *tree.Tree) string {
	var clusters []string
	var walk func(n *tree.Node) []string
	walk = func(n *tree.Node) []string {
		if n.IsLeaf() {
			return []string{n.Name}
		}
		var all []string
		for _, c := range n.Children {
			all = append(all, walk(c)...)
		}
		sort.Strings(all)
		key := ""
		for _, s := range all {
			key += s + ","
		}
		clusters = append(clusters, key)
		return all
	}
	walk(t.Root)
	sort.Strings(clusters)
	out := ""
	for _, c := range clusters {
		out += c + ";"
	}
	return out
}

func TestGeneTreeErrors(t *testing.T) {
	if _, err := GeneTree(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil species tree should fail")
	}
	// Species tree without branch lengths.
	root := &tree.Node{}
	a := &tree.Node{Name: "A"}
	b := &tree.Node{Name: "B"}
	inner := &tree.Node{}
	inner.AddChild(a)
	inner.AddChild(b)
	root.AddChild(inner)
	root.AddChild(&tree.Node{Name: "C"})
	if _, err := GeneTree(tree.New(root), rand.New(rand.NewSource(1))); err == nil {
		t.Error("species tree without lengths should fail")
	}
}

func TestMSCCollectionDeterministic(t *testing.T) {
	ts := taxa.Generate(10)
	c := NewMSCCollection(ts, 123, 1.0)
	a := topologyKey(c.Make(5))
	b := topologyKey(c.Make(5))
	if a != b {
		t.Error("Make(i) must be deterministic in i")
	}
	if topologyKey(c.Make(0)) == "" {
		t.Error("empty key")
	}
}

func TestNNIChangesAtMostOneSplit(t *testing.T) {
	// Structural check: NNI output stays a valid binary tree on the same
	// taxa. (Distance bound is property-tested in the day package.)
	ts := taxa.Generate(15)
	rng := rand.New(rand.NewSource(17))
	tr := RandomBinary(ts, rng)
	for i := 0; i < 20; i++ {
		moved := NNI(tr, rng)
		if err := moved.Validate(); err != nil {
			t.Fatalf("NNI output invalid: %v", err)
		}
		if moved.NumLeaves() != 15 {
			t.Fatalf("NNI changed leaf count: %d", moved.NumLeaves())
		}
		if !moved.IsBinaryUnrooted() {
			t.Error("NNI broke binarity")
		}
		tr = moved
	}
}

func TestNNITinyTree(t *testing.T) {
	ts := taxa.Generate(3)
	rng := rand.New(rand.NewSource(1))
	tr := RandomBinary(ts, rng)
	moved := NNI(tr, rng) // no internal edges: must return unchanged copy
	if moved.NumLeaves() != 3 {
		t.Error("tiny tree corrupted")
	}
}

func TestPerturbNNIAlwaysCopies(t *testing.T) {
	ts := taxa.Generate(8)
	rng := rand.New(rand.NewSource(2))
	tr := RandomBinary(ts, rng)
	p := PerturbNNI(tr, 0, rng)
	if p == tr {
		t.Error("PerturbNNI(t, 0) must return a copy")
	}
}

func TestSPRValid(t *testing.T) {
	ts := taxa.Generate(12)
	rng := rand.New(rand.NewSource(19))
	tr := RandomBinary(ts, rng)
	for i := 0; i < 20; i++ {
		moved := SPR(tr, rng)
		if err := moved.Validate(); err != nil {
			t.Fatalf("SPR output invalid: %v", err)
		}
		if moved.NumLeaves() != 12 {
			t.Fatalf("SPR changed leaf count: %d", moved.NumLeaves())
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	ts := taxa.Generate(10)
	sp := Yule(ts, rand.New(rand.NewSource(4)), YuleOptions{})
	ScaleMeanInternal(sp, 2.5)
	if got := MeanInternalBranch(sp); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("mean internal = %v, want 2.5", got)
	}
	ScaleBranches(sp, 2)
	if got := MeanInternalBranch(sp); math.Abs(got-5.0) > 1e-9 {
		t.Errorf("after doubling, mean = %v, want 5", got)
	}
	StripLengths(sp)
	if MeanInternalBranch(sp) != 0 {
		t.Error("StripLengths left lengths behind")
	}
	sp.Postorder(func(n *tree.Node) {
		if n.HasLength {
			t.Error("HasLength survived StripLengths")
		}
	})
}

func TestQuickGeneratorsProduceValidTrees(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%30 + 4
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(seed))
		rb := RandomBinary(ts, rng)
		if rb.Validate() != nil || rb.NumLeaves() != n {
			return false
		}
		sp := Yule(ts, rng, YuleOptions{BirthRate: 0.5})
		if sp.Validate() != nil || sp.NumLeaves() != n {
			return false
		}
		g, err := GeneTree(sp, rng)
		if err != nil || g.Validate() != nil || g.NumLeaves() != n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
