package simphy

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/taxa"
	"repro/internal/tree"
)

func TestBirthDeathShape(t *testing.T) {
	for _, n := range []int{2, 5, 20, 60} {
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(int64(n) * 13))
		sp, err := BirthDeath(ts, rng, BirthDeathOptions{BirthRate: 1, DeathRate: 0.4})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("n=%d: invalid: %v", n, err)
		}
		if sp.NumLeaves() != n {
			t.Fatalf("n=%d: leaves = %d", n, sp.NumLeaves())
		}
		names := sp.LeafNames()
		sort.Strings(names)
		for i, name := range names {
			if name != ts.Name(i) {
				t.Fatalf("n=%d: taxa mismatch", n)
			}
		}
		// All branches positive.
		sp.Postorder(func(nd *tree.Node) {
			if nd.Parent != nil && (!nd.HasLength || nd.Length <= 0) {
				t.Errorf("n=%d: non-positive branch %v", n, nd.Length)
			}
		})
	}
}

func TestBirthDeathUltrametric(t *testing.T) {
	ts := taxa.Generate(20)
	rng := rand.New(rand.NewSource(7))
	sp, err := BirthDeath(ts, rng, BirthDeathOptions{BirthRate: 1, DeathRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var depths []float64
	var walk func(n *tree.Node, d float64)
	walk = func(n *tree.Node, d float64) {
		if n.HasLength {
			d += n.Length
		}
		if n.IsLeaf() {
			depths = append(depths, d)
			return
		}
		for _, c := range n.Children {
			walk(c, d)
		}
	}
	walk(sp.Root, 0)
	for _, d := range depths[1:] {
		if math.Abs(d-depths[0]) > 1e-9 {
			t.Fatalf("not ultrametric after pruning: %v vs %v", d, depths[0])
		}
	}
}

func TestBirthDeathRejectsBadRates(t *testing.T) {
	ts := taxa.Generate(5)
	rng := rand.New(rand.NewSource(1))
	if _, err := BirthDeath(ts, rng, BirthDeathOptions{BirthRate: 1, DeathRate: 1.5}); err == nil {
		t.Error("μ ≥ λ should fail")
	}
	if _, err := BirthDeath(taxa.Generate(1), rng, BirthDeathOptions{}); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestBirthDeathFeedsGeneTrees(t *testing.T) {
	// The pruned birth-death tree must be a valid MSC substrate.
	ts := taxa.Generate(15)
	rng := rand.New(rand.NewSource(3))
	sp, err := BirthDeath(ts, rng, BirthDeathOptions{BirthRate: 1, DeathRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ScaleMeanInternal(sp, 1.0)
	for i := 0; i < 5; i++ {
		g, err := GeneTree(sp, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumLeaves() != 15 {
			t.Fatalf("gene tree leaves = %d", g.NumLeaves())
		}
	}
}

func TestBirthDeathZeroDeathMatchesYuleStatistics(t *testing.T) {
	// With μ=0 the process is Yule; check tip count and validity only
	// (distributional equivalence would need many replicates).
	ts := taxa.Generate(12)
	rng := rand.New(rand.NewSource(5))
	sp, err := BirthDeath(ts, rng, BirthDeathOptions{BirthRate: 2, DeathRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumLeaves() != 12 {
		t.Errorf("leaves = %d", sp.NumLeaves())
	}
}
