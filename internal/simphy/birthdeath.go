package simphy

import (
	"fmt"
	"math/rand"

	"repro/internal/taxa"
	"repro/internal/tree"
)

// BirthDeathOptions control the birth-death species-tree simulator — the
// fuller generative model SimPhy uses (speciation plus extinction),
// complementing the pure-birth Yule process.
type BirthDeathOptions struct {
	// BirthRate λ and DeathRate μ, events per coalescent time unit.
	// μ must be strictly less than λ; defaults are λ=1, μ=0.5.
	BirthRate, DeathRate float64
	// MaxAttempts bounds the number of simulation restarts when all
	// lineages die out before reaching n tips. Default 1000.
	MaxAttempts int
}

// BirthDeath simulates a species tree under a birth-death process,
// conditioned on exactly n surviving tips (simulation restarts on
// extinction, the standard rejection scheme). Extinct lineages are pruned,
// so internal branch lengths reflect the reconstructed ("molecular")
// process, which differs from Yule in having relatively longer terminal
// branches.
func BirthDeath(ts *taxa.Set, rng *rand.Rand, opts BirthDeathOptions) (*tree.Tree, error) {
	n := ts.Len()
	if n < 2 {
		return nil, fmt.Errorf("simphy: need at least 2 taxa, have %d", n)
	}
	lambda := opts.BirthRate
	if lambda <= 0 {
		lambda = 1
	}
	mu := opts.DeathRate
	if mu < 0 {
		mu = 0
	}
	if opts.DeathRate == 0 && opts.BirthRate == 0 {
		mu = 0.5
	}
	if mu >= lambda {
		return nil, fmt.Errorf("simphy: death rate %v must be below birth rate %v", mu, lambda)
	}
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = 1000
	}
	for a := 0; a < attempts; a++ {
		t := tryBirthDeath(n, lambda, mu, rng)
		if t == nil {
			continue
		}
		// Label surviving tips with catalogue names in random order.
		perm := rng.Perm(n)
		for i, leaf := range t.Leaves() {
			leaf.Name = ts.Name(perm[i])
		}
		return t, nil
	}
	return nil, fmt.Errorf("simphy: birth-death extinct in all %d attempts (λ=%v, μ=%v)", attempts, lambda, mu)
}

// tryBirthDeath runs one forward simulation until n live tips or global
// extinction. Returns nil on extinction or overshoot bookkeeping failure.
func tryBirthDeath(n int, lambda, mu float64, rng *rand.Rand) *tree.Tree {
	type tip struct {
		node  *tree.Node
		birth float64
	}
	root := &tree.Node{}
	now := 0.0
	live := []tip{{node: root, birth: 0}}
	for len(live) < n {
		if len(live) == 0 {
			return nil // extinct
		}
		k := float64(len(live))
		now += expRand(rng, k*(lambda+mu))
		i := rng.Intn(len(live))
		if rng.Float64() < lambda/(lambda+mu) {
			// Speciation: tip i splits.
			parent := live[i]
			parent.node.Length = now - parent.birth
			parent.node.HasLength = parent.node.Parent != nil
			left := &tree.Node{}
			right := &tree.Node{}
			parent.node.AddChild(left)
			parent.node.AddChild(right)
			live[i] = tip{node: left, birth: now}
			live = append(live, tip{node: right, birth: now})
		} else {
			// Extinction: tip i dies; mark it for pruning.
			dead := live[i]
			dead.node.Length = now - dead.birth
			dead.node.HasLength = dead.node.Parent != nil
			dead.node.Name = extinctMarker
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Extend survivors to the present.
	end := now + expRand(rng, float64(n)*(lambda+mu))
	for _, tp := range live {
		tp.node.Length = end - tp.birth
		tp.node.HasLength = tp.node.Parent != nil
	}
	t := tree.New(root)
	// Prune extinct lineages and dissolve the unary chains they leave.
	pruned, err := tree.Restrict(t, func(name string) bool { return name != extinctMarker })
	if err != nil {
		return nil
	}
	if pruned.NumLeaves() != n {
		return nil
	}
	return pruned
}

// extinctMarker labels extinct tips before pruning. Any non-empty string
// outside the catalogue works; Restrict validates names afterwards.
const extinctMarker = "\x00extinct"
