// Package simphy generates simulated tree collections, standing in for the
// SimPhy-generated ASTRAL-II S100 data the paper uses (Table II) and for
// its real gene-tree collections (Avian, Insect), which are not
// redistributable here.
//
// The generative model is the same family the originals come from: a Yule
// (pure-birth) species tree with branch lengths in coalescent units, and
// gene trees drawn from the multispecies coalescent (MSC) within it. Short
// species-tree branches produce incomplete lineage sorting and hence
// topological discordance among gene trees; long branches produce
// concentrated bipartition frequencies. That frequency concentration is
// exactly the property the paper's memory discussion depends on ("the
// probability of seeing unique bipartitions decreases as n and r
// increase", §VI.C), so the substitution preserves the measured behaviour.
//
// All generators are deterministic in their *rand.Rand, so collections can
// be streamed repeatedly (collection.Generator) without being stored.
package simphy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/taxa"
	"repro/internal/tree"
)

// RandomBinary returns a uniformly random unrooted binary tree over the
// catalogue (random sequential coalescent joins), with unit branch lengths.
// Random trees share almost no bipartitions — the adversarial case for
// frequency-hash memory.
func RandomBinary(ts *taxa.Set, rng *rand.Rand) *tree.Tree {
	n := ts.Len()
	if n < 2 {
		panic(fmt.Sprintf("simphy: need at least 2 taxa, have %d", n))
	}
	lineages := make([]*tree.Node, n)
	for i := 0; i < n; i++ {
		lineages[i] = &tree.Node{Name: ts.Name(i), Length: 1, HasLength: true}
	}
	for len(lineages) > 1 {
		i := rng.Intn(len(lineages))
		j := rng.Intn(len(lineages) - 1)
		if j >= i {
			j++
		}
		parent := &tree.Node{Length: 1, HasLength: true}
		parent.AddChild(lineages[i])
		parent.AddChild(lineages[j])
		// Remove i and j, append parent.
		hi, lo := i, j
		if lo > hi {
			hi, lo = lo, hi
		}
		lineages[hi] = lineages[len(lineages)-1]
		lineages = lineages[:len(lineages)-1]
		lineages[lo] = lineages[len(lineages)-1]
		lineages = lineages[:len(lineages)-1]
		lineages = append(lineages, parent)
	}
	t := tree.New(lineages[0])
	t.Root.HasLength = false
	t.Deroot()
	return t
}

// YuleOptions control species-tree simulation.
type YuleOptions struct {
	// BirthRate is the speciation rate λ (events per coalescent time unit).
	// Higher rates give shorter internal branches and therefore more gene
	// tree discordance downstream. Default 1.
	BirthRate float64
}

// Yule simulates a pure-birth species tree over the catalogue with branch
// lengths in coalescent units. Taxa are assigned to tips in random order.
func Yule(ts *taxa.Set, rng *rand.Rand, opts YuleOptions) *tree.Tree {
	n := ts.Len()
	if n < 2 {
		panic(fmt.Sprintf("simphy: need at least 2 taxa, have %d", n))
	}
	rate := opts.BirthRate
	if rate <= 0 {
		rate = 1
	}
	perm := rng.Perm(n)
	type tip struct {
		node  *tree.Node
		birth float64
	}
	root := &tree.Node{}
	now := 0.0
	tips := []tip{{node: root, birth: 0}}
	for len(tips) < n {
		k := float64(len(tips))
		now += expRand(rng, k*rate)
		i := rng.Intn(len(tips))
		parent := tips[i]
		parent.node.Length = now - parent.birth
		parent.node.HasLength = parent.node.Parent != nil
		left := &tree.Node{}
		right := &tree.Node{}
		parent.node.AddChild(left)
		parent.node.AddChild(right)
		tips[i] = tip{node: left, birth: now}
		tips = append(tips, tip{node: right, birth: now})
	}
	// Extend every surviving tip to the present and label it.
	end := now + expRand(rng, float64(n)*rate)
	for i, tp := range tips {
		tp.node.Name = ts.Name(perm[i])
		tp.node.Length = end - tp.birth
		tp.node.HasLength = true
	}
	return tree.New(root)
}

// expRand draws an exponential variate with the given rate.
func expRand(rng *rand.Rand, rate float64) float64 {
	return rng.ExpFloat64() / rate
}

// GeneTree simulates one gene tree under the multispecies coalescent within
// the given species tree (one sampled individual per species). Branch
// lengths of the species tree are interpreted in coalescent units; the
// returned gene tree is unrooted (root degree 3) with coalescent branch
// lengths.
func GeneTree(species *tree.Tree, rng *rand.Rand) (*tree.Tree, error) {
	if species == nil || species.Root == nil {
		return nil, fmt.Errorf("simphy: nil species tree")
	}
	type lineage struct {
		node *tree.Node
		// depth is the time (before the present... measured from this
		// species-tree point) at which the lineage's node was created.
		depth float64
	}
	// Postorder over the species tree: each node yields the set of gene
	// lineages surviving to the top of its branch.
	surviving := make(map[*tree.Node][]lineage)
	var fail error
	species.Postorder(func(sn *tree.Node) {
		if fail != nil {
			return
		}
		var pool []lineage
		if sn.IsLeaf() {
			if sn.Name == "" {
				fail = fmt.Errorf("simphy: species tree has unnamed leaf")
				return
			}
			pool = []lineage{{node: &tree.Node{Name: sn.Name}, depth: 0}}
		} else {
			for _, c := range sn.Children {
				pool = append(pool, surviving[c]...)
				delete(surviving, c)
			}
		}
		// Coalesce within this branch for its duration (root: until one
		// lineage remains).
		duration := math.Inf(1)
		if sn.Parent != nil {
			if !sn.HasLength {
				fail = fmt.Errorf("simphy: species tree branch without length (coalescent units required)")
				return
			}
			duration = sn.Length
		}
		t := 0.0
		for len(pool) > 1 {
			k := float64(len(pool))
			wait := expRand(rng, k*(k-1)/2)
			if t+wait > duration {
				break
			}
			t += wait
			i := rng.Intn(len(pool))
			j := rng.Intn(len(pool) - 1)
			if j >= i {
				j++
			}
			a, b := pool[i], pool[j]
			parent := &tree.Node{}
			a.node.Length = t - a.depth
			a.node.HasLength = true
			b.node.Length = t - b.depth
			b.node.HasLength = true
			parent.AddChild(a.node)
			parent.AddChild(b.node)
			merged := lineage{node: parent, depth: t}
			hi, lo := i, j
			if lo > hi {
				hi, lo = lo, hi
			}
			pool[hi] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			pool[lo] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			pool = append(pool, merged)
		}
		// Lineages that did not coalesce ride up to the parent branch;
		// their pending depth is re-based to the top of this branch.
		if sn.Parent != nil {
			for i := range pool {
				pool[i].depth -= duration // depth becomes negative offset below the branch top
			}
		}
		surviving[sn] = pool
	})
	if fail != nil {
		return nil, fail
	}
	top := surviving[species.Root]
	if len(top) != 1 {
		return nil, fmt.Errorf("simphy: coalescent left %d lineages at the root", len(top))
	}
	g := tree.New(top[0].node)
	g.Root.Length, g.Root.HasLength = 0, false
	g.Deroot()
	return g, nil
}

// MSCCollection deterministically generates r gene trees from one species
// tree grown from the given seed. Make(i) draws the i-th gene tree with an
// independent per-index seed, so the collection can be regenerated
// stream-wise in any order.
type MSCCollection struct {
	Taxa    *taxa.Set
	Species *tree.Tree
	Seed    int64
}

// NewMSCCollection grows a Yule species tree (rate so that expected branch
// lengths produce moderate discordance) and returns the collection handle.
func NewMSCCollection(ts *taxa.Set, seed int64, birthRate float64) *MSCCollection {
	rng := rand.New(rand.NewSource(seed))
	sp := Yule(ts, rng, YuleOptions{BirthRate: birthRate})
	return &MSCCollection{Taxa: ts, Species: sp, Seed: seed}
}

// Make returns the i-th gene tree of the collection.
func (c *MSCCollection) Make(i int) *tree.Tree {
	rng := rand.New(rand.NewSource(c.Seed ^ (0x5851F42D4C957F2D * int64(i+1))))
	g, err := GeneTree(c.Species, rng)
	if err != nil {
		// The species tree is constructed with lengths by Yule; failure is
		// a programming error, not an input error.
		panic(err)
	}
	return g
}
