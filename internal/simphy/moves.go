package simphy

import (
	"fmt"
	"math/rand"

	"repro/internal/tree"
)

// NNI applies one random nearest-neighbour interchange to a copy of t and
// returns it. An NNI picks an internal edge (u, v) and swaps one subtree
// hanging off u with one hanging off v — the smallest topological move, so
// k-NNI neighbourhoods give query collections at controlled RF distance
// from a source tree.
//
// t must have at least one internal edge (n ≥ 4 for binary trees);
// otherwise the copy is returned unchanged.
func NNI(t *tree.Tree, rng *rand.Rand) *tree.Tree {
	c := t.Clone()
	// Internal edges: (v.Parent, v) where v is internal and not the root.
	var candidates []*tree.Node
	c.Postorder(func(n *tree.Node) {
		if n.Parent != nil && !n.IsLeaf() {
			candidates = append(candidates, n)
		}
	})
	if len(candidates) == 0 {
		return c
	}
	v := candidates[rng.Intn(len(candidates))]
	u := v.Parent
	// Pick a sibling subtree s (a child of u other than v) and a child
	// subtree x of v; swap them across the edge.
	var sibs []*tree.Node
	for _, ch := range u.Children {
		if ch != v {
			sibs = append(sibs, ch)
		}
	}
	if len(sibs) == 0 || len(v.Children) == 0 {
		return c
	}
	s := sibs[rng.Intn(len(sibs))]
	x := v.Children[rng.Intn(len(v.Children))]
	swapChild(u, s, x)
	swapChild(v, x, s)
	s.Parent = v
	x.Parent = u
	return c
}

func swapChild(parent, old, repl *tree.Node) {
	for i, ch := range parent.Children {
		if ch == old {
			parent.Children[i] = repl
			return
		}
	}
	panic(fmt.Sprintf("simphy: node %p is not a child of %p", old, parent))
}

// PerturbNNI applies k successive random NNIs to a copy of t.
func PerturbNNI(t *tree.Tree, k int, rng *rand.Rand) *tree.Tree {
	c := t
	for i := 0; i < k; i++ {
		c = NNI(c, rng)
	}
	if c == t {
		c = t.Clone()
	}
	return c
}

// SPR applies one random subtree-prune-and-regraft move to a copy of t: a
// non-root subtree is detached and re-attached along a random remaining
// edge. SPR moves explore tree space faster than NNI and are used to build
// more dispersed query collections.
func SPR(t *tree.Tree, rng *rand.Rand) *tree.Tree {
	c := t.Clone()
	var nodes []*tree.Node
	c.Postorder(func(n *tree.Node) {
		// Prunable: any non-root node whose removal leaves ≥ 3 leaves.
		if n.Parent != nil {
			nodes = append(nodes, n)
		}
	})
	if len(nodes) < 4 {
		return c
	}
	for attempt := 0; attempt < 32; attempt++ {
		p := nodes[rng.Intn(len(nodes))]
		if !detachable(c, p) {
			continue
		}
		parent := p.Parent
		// Detach p.
		removeChild(parent, p)
		// Parent may become unary; dissolve it.
		c.SuppressUnifurcations()
		// Regraft targets: any node with a parent (an edge), not inside p.
		var targets []*tree.Node
		inP := map[*tree.Node]bool{}
		markSubtree(p, inP)
		c.Postorder(func(n *tree.Node) {
			if n.Parent != nil && !inP[n] {
				targets = append(targets, n)
			}
		})
		if len(targets) == 0 {
			// Could not regraft; rebuild from scratch.
			c = t.Clone()
			continue
		}
		tgt := targets[rng.Intn(len(targets))]
		// Split tgt's parent edge with a new node and hang p there.
		mid := &tree.Node{}
		if tgt.HasLength {
			mid.Length, mid.HasLength = tgt.Length/2, true
			tgt.Length /= 2
		}
		gp := tgt.Parent
		replaceChild(gp, tgt, mid)
		mid.Parent = gp
		mid.AddChild(tgt)
		mid.AddChild(p)
		return c
	}
	return c
}

// detachable reports whether pruning p leaves a tree with at least 3 leaves
// and an intact root.
func detachable(t *tree.Tree, p *tree.Node) bool {
	sub := 0
	tree.New(p).Postorder(func(n *tree.Node) {
		if n.IsLeaf() {
			sub++
		}
	})
	total := t.NumLeaves()
	return total-sub >= 3 && sub >= 1
}

func removeChild(parent, child *tree.Node) {
	for i, ch := range parent.Children {
		if ch == child {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			child.Parent = nil
			return
		}
	}
	panic("simphy: removeChild: not a child")
}

func replaceChild(parent, old, repl *tree.Node) {
	for i, ch := range parent.Children {
		if ch == old {
			parent.Children[i] = repl
			return
		}
	}
	panic("simphy: replaceChild: not a child")
}

func markSubtree(root *tree.Node, set map[*tree.Node]bool) {
	stack := []*tree.Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		set[n] = true
		stack = append(stack, n.Children...)
	}
}
