package simphy

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/taxa"
	"repro/internal/tree"
)

func validShapeTree(t *testing.T, tr *tree.Tree, ts *taxa.Set, label string) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: invalid tree: %v", label, err)
	}
	if tr.NumLeaves() != ts.Len() {
		t.Fatalf("%s: leaves = %d, want %d", label, tr.NumLeaves(), ts.Len())
	}
	if ts.Len() >= 3 && !tr.IsBinaryUnrooted() {
		t.Errorf("%s: not binary unrooted", label)
	}
	names := tr.LeafNames()
	sort.Strings(names)
	for i, name := range names {
		if name != ts.Name(i) {
			t.Fatalf("%s: taxa mismatch at %d: %q != %q", label, i, name, ts.Name(i))
		}
	}
}

func TestCaterpillarShape(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 10, 64, 200} {
		ts := taxa.Generate(n)
		tr := Caterpillar(ts, rand.New(rand.NewSource(int64(n))))
		validShapeTree(t, tr, ts, "caterpillar")
		// Pectinate: maximum leaf depth is n-1 edges from the (derooted)
		// root for n >= 4.
		if n >= 4 {
			maxDepth := 0
			var walk func(nd *tree.Node, d int)
			walk = func(nd *tree.Node, d int) {
				if nd.IsLeaf() && d > maxDepth {
					maxDepth = d
				}
				for _, c := range nd.Children {
					walk(c, d+1)
				}
			}
			walk(tr.Root, 0)
			if want := n - 2; maxDepth != want {
				t.Errorf("caterpillar n=%d: max leaf depth = %d, want %d", n, maxDepth, want)
			}
		}
	}
}

func TestBalancedBinaryShape(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 10, 64, 200} {
		ts := taxa.Generate(n)
		tr := BalancedBinary(ts, rand.New(rand.NewSource(int64(n))))
		validShapeTree(t, tr, ts, "balanced")
		// Balanced: depth is logarithmic — far below the pectinate n-2.
		maxDepth := 0
		var walk func(nd *tree.Node, d int)
		walk = func(nd *tree.Node, d int) {
			if nd.IsLeaf() && d > maxDepth {
				maxDepth = d
			}
			for _, c := range nd.Children {
				walk(c, d+1)
			}
		}
		walk(tr.Root, 0)
		if n >= 16 && maxDepth > 2+logCeil2(n) {
			t.Errorf("balanced n=%d: max leaf depth = %d, want <= %d", n, maxDepth, 2+logCeil2(n))
		}
	}
}

func logCeil2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func TestShapesPermuteLabels(t *testing.T) {
	ts := taxa.Generate(32)
	a := Caterpillar(ts, rand.New(rand.NewSource(1)))
	b := Caterpillar(ts, rand.New(rand.NewSource(2)))
	an, bn := a.LeafNames(), b.LeafNames()
	same := true
	for i := range an {
		if an[i] != bn[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should permute caterpillar labels")
	}
	// Same seed must be reproducible.
	c := Caterpillar(ts, rand.New(rand.NewSource(1)))
	cn := c.LeafNames()
	for i := range an {
		if an[i] != cn[i] {
			t.Fatal("same seed should give identical trees")
		}
	}
}

// TestShapesHugeNLinear guards the satellite requirement that shape
// generation stays linear in n: building at n=8192 must cost well under
// 16x the n=512 build (quadratic handling would be ~256x).
func TestShapesHugeNLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	timeBuild := func(n int, mk func(*taxa.Set, *rand.Rand) *tree.Tree) time.Duration {
		ts := taxa.Generate(n)
		rng := rand.New(rand.NewSource(int64(n)))
		mk(ts, rng) // warmup
		const reps = 5
		start := time.Now()
		for i := 0; i < reps; i++ {
			mk(ts, rng)
		}
		return time.Since(start) / reps
	}
	for _, mk := range []struct {
		name string
		f    func(*taxa.Set, *rand.Rand) *tree.Tree
	}{
		{"caterpillar", Caterpillar},
		{"balanced", BalancedBinary},
	} {
		small := timeBuild(512, mk.f)
		big := timeBuild(8192, mk.f)
		// 16x the input; allow generous constant-factor slack (64x) while
		// still catching a quadratic (256x) regression.
		if small > 0 && big > 64*small {
			t.Errorf("%s: n=8192 took %v vs n=512 %v (> 64x — superlinear label handling?)",
				mk.name, big, small)
		}
	}
}
