package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// ArmSpec parses a BFHRF_FAULTS-style schedule description and arms it.
// Entries are comma- or semicolon-separated; each entry is
//
//	point:kind@n[xTIMES][:arg]
//
// where kind is error|delay|short|crash, n is the 1-based hit number,
// TIMES is a repeat count ("*" = forever), and arg is a duration for
// delay plans, "transient" for error plans, or an exit code for crash
// plans. See the package comment for examples.
func ArmSpec(spec string) error {
	plans, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	Arm(plans...)
	return nil
}

// ParseSpec parses the schedule grammar without arming it.
func ParseSpec(spec string) ([]Plan, error) {
	var plans []Plan
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		p, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("faultinject: empty schedule %q", spec)
	}
	return plans, nil
}

func parseEntry(entry string) (Plan, error) {
	parts := strings.SplitN(entry, ":", 3)
	if len(parts) < 2 {
		return Plan{}, fmt.Errorf("faultinject: entry %q: want point:kind@n[xT][:arg]", entry)
	}
	p := Plan{Point: parts[0]}

	kindAt := parts[1]
	kindStr, hitStr, found := strings.Cut(kindAt, "@")
	if !found {
		return Plan{}, fmt.Errorf("faultinject: entry %q: missing @n hit number", entry)
	}
	switch kindStr {
	case "error":
		p.Kind = KindError
	case "delay":
		p.Kind = KindDelay
	case "short":
		p.Kind = KindShortRead
	case "crash":
		p.Kind = KindCrash
	default:
		return Plan{}, fmt.Errorf("faultinject: entry %q: unknown kind %q", entry, kindStr)
	}

	hitPart, timesPart, hasTimes := strings.Cut(hitStr, "x")
	hit, err := strconv.Atoi(hitPart)
	if err != nil || hit < 1 {
		return Plan{}, fmt.Errorf("faultinject: entry %q: bad hit number %q", entry, hitPart)
	}
	p.Hit = hit
	if hasTimes {
		if timesPart == "*" {
			p.Times = -1
		} else {
			times, err := strconv.Atoi(timesPart)
			if err != nil || times < 1 {
				return Plan{}, fmt.Errorf("faultinject: entry %q: bad repeat count %q", entry, timesPart)
			}
			p.Times = times
		}
	}

	if len(parts) == 3 {
		arg := parts[2]
		switch p.Kind {
		case KindDelay:
			d, err := time.ParseDuration(arg)
			if err != nil {
				return Plan{}, fmt.Errorf("faultinject: entry %q: bad delay %q: %v", entry, arg, err)
			}
			p.Delay = d
		case KindError, KindShortRead:
			if arg != "transient" {
				return Plan{}, fmt.Errorf("faultinject: entry %q: unknown error arg %q (want \"transient\")", entry, arg)
			}
			p.Transient = true
		case KindCrash:
			code, err := strconv.Atoi(arg)
			if err != nil || code < 1 || code > 255 {
				return Plan{}, fmt.Errorf("faultinject: entry %q: bad exit code %q", entry, arg)
			}
			p.ExitCode = code
		}
	}
	return p, nil
}

// String renders the plan back in the ArmSpec grammar, so schedules can
// be logged and replayed verbatim.
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:%s@%d", p.Point, p.Kind, int(p.firstHit()))
	if p.Times < 0 {
		sb.WriteString("x*")
	} else if p.Times > 1 {
		fmt.Fprintf(&sb, "x%d", p.Times)
	}
	switch {
	case p.Kind == KindDelay && p.Delay > 0:
		fmt.Fprintf(&sb, ":%s", p.Delay)
	case (p.Kind == KindError || p.Kind == KindShortRead) && p.Transient:
		sb.WriteString(":transient")
	case p.Kind == KindCrash && p.ExitCode != 0:
		fmt.Fprintf(&sb, ":%d", p.ExitCode)
	}
	return sb.String()
}

// SpecOf renders a whole schedule in the ArmSpec grammar.
func SpecOf(plans []Plan) string {
	parts := make([]string, len(plans))
	for i, p := range plans {
		parts[i] = p.String()
	}
	return strings.Join(parts, ",")
}

// Schedule derives a reproducible random fault schedule from seed: between
// 1 and maxFaults plans over the given points, with hit numbers in
// [1, maxHit]. Crash plans are never generated (they would kill the test
// process); kinds rotate over error (permanent and transient), short-read
// and small delays. The same (seed, points, maxFaults, maxHit) always
// yields the same schedule, so a failing chaos run replays exactly.
func Schedule(seed int64, points []string, maxFaults, maxHit int) []Plan {
	rng := rand.New(rand.NewSource(seed))
	if maxFaults < 1 {
		maxFaults = 1
	}
	if maxHit < 1 {
		maxHit = 1
	}
	n := 1 + rng.Intn(maxFaults)
	plans := make([]Plan, 0, n)
	for i := 0; i < n; i++ {
		p := Plan{
			Point: points[rng.Intn(len(points))],
			Hit:   1 + rng.Intn(maxHit),
			Times: 1 + rng.Intn(3),
		}
		switch rng.Intn(4) {
		case 0:
			p.Kind = KindError
		case 1:
			p.Kind = KindError
			p.Transient = true
		case 2:
			p.Kind = KindShortRead
		case 3:
			p.Kind = KindDelay
			p.Delay = time.Duration(1+rng.Intn(3)) * time.Millisecond
		}
		plans = append(plans, p)
	}
	return plans
}
