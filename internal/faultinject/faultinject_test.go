package faultinject

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if err := Hit(PointIORead); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
}

func TestErrorFiresOnExactHit(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "p", Kind: KindError, Hit: 3})
	for i := 1; i <= 5; i++ {
		err := Hit("p")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
		if i == 3 {
			var ie *Error
			if !errors.As(err, &ie) || ie.N != 3 || ie.Point != "p" {
				t.Fatalf("hit 3: unexpected error %#v", err)
			}
		}
	}
}

func TestTimesAndForever(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "p", Kind: KindError, Hit: 2, Times: 2})
	got := ""
	for i := 1; i <= 5; i++ {
		if Hit("p") != nil {
			got += "x"
		} else {
			got += "."
		}
	}
	if got != ".xx.." {
		t.Fatalf("times=2 pattern = %q, want .xx..", got)
	}

	Arm(Plan{Point: "p", Kind: KindError, Hit: 3, Times: -1})
	got = ""
	for i := 1; i <= 5; i++ {
		if Hit("p") != nil {
			got += "x"
		} else {
			got += "."
		}
	}
	if got != "..xxx" {
		t.Fatalf("times=* pattern = %q, want ..xxx", got)
	}
}

func TestTransientUnwraps(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "p", Kind: KindError, Hit: 1, Transient: true})
	err := Hit("p")
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("transient error does not unwrap to ErrUnexpectedEOF: %v", err)
	}
	Arm(Plan{Point: "p", Kind: KindError, Hit: 1})
	if errors.Is(Hit("p"), io.ErrUnexpectedEOF) {
		t.Fatal("permanent error unexpectedly transient")
	}
}

func TestDelayPlanSleeps(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "p", Kind: KindDelay, Hit: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatalf("delay plan returned error %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay plan slept only %v", d)
	}
}

func TestCrashPlanCallsExit(t *testing.T) {
	defer Disarm()
	code := 0
	exit = func(c int) { code = c; panic("exit") }
	defer func() {
		exit = os.Exit
		if r := recover(); r != "exit" {
			t.Fatalf("crash plan did not exit (recovered %v)", r)
		}
		if code != 137 {
			t.Fatalf("crash exit code = %d, want 137", code)
		}
	}()
	Arm(Plan{Point: "p", Kind: KindCrash, Hit: 1})
	Hit("p")
}

func TestReaderShortRead(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "r", Kind: KindShortRead, Hit: 2})
	r := Reader("r", strings.NewReader(strings.Repeat("a", 10)))
	buf := make([]byte, 4)
	n, err := r.Read(buf)
	if n != 4 || err != nil {
		t.Fatalf("first read: n=%d err=%v", n, err)
	}
	n, err = r.Read(buf)
	if n != 0 || err != io.EOF {
		t.Fatalf("short read: n=%d err=%v, want 0, EOF", n, err)
	}
	// The cut is sticky: the stream stays ended.
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("post-cut read err=%v, want EOF", err)
	}
}

func TestReaderErrorAndPassthrough(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "r", Kind: KindError, Hit: 2})
	r := Reader("r", strings.NewReader("abcdef"))
	buf := make([]byte, 3)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("first read errored: %v", err)
	}
	if _, err := r.Read(buf); err == nil {
		t.Fatal("second read did not inject")
	}
	Disarm()
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("disarmed read errored: %v", err)
	}
}

func TestHitCount(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "p", Kind: KindError, Hit: 100})
	for i := 0; i < 7; i++ {
		Hit("p")
	}
	if n := HitCount("p"); n != 7 {
		t.Fatalf("HitCount = %d, want 7", n)
	}
	if n := HitCount("other"); n != 0 {
		t.Fatalf("HitCount(other) = %d, want 0", n)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"parse.tree:error@3",
		"io.read:delay@2x5:10ms",
		"checkpoint.write:crash@2",
		"rpc.send:error@1x*:transient",
		"io.read:short@4",
	}
	for _, s := range specs {
		plans, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if got := SpecOf(plans); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	// Multiple entries, both separators.
	plans, err := ParseSpec("a:error@1;b:delay@2,c:short@3")
	if err != nil || len(plans) != 3 {
		t.Fatalf("multi-entry parse: %v (%d plans)", err, len(plans))
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"", "p", "p:explode@1", "p:error", "p:error@0", "p:error@x",
		"p:error@1x0", "p:delay@1:notaduration", "p:crash@1:9999",
		"p:error@1:permanent",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", s)
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	points := []string{"a", "b", "c"}
	s1 := Schedule(42, points, 4, 10)
	s2 := Schedule(42, points, 4, 10)
	if SpecOf(s1) != SpecOf(s2) {
		t.Fatalf("same seed, different schedules:\n%s\n%s", SpecOf(s1), SpecOf(s2))
	}
	if len(s1) == 0 {
		t.Fatal("empty schedule")
	}
	for _, p := range s1 {
		if p.Kind == KindCrash {
			t.Fatal("Schedule generated a crash plan")
		}
	}
	// Different seeds should (typically) differ; check a sweep isn't constant.
	distinct := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		distinct[SpecOf(Schedule(seed, points, 4, 10))] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("20 seeds produced only %d distinct schedules", len(distinct))
	}
}

func TestConcurrentHits(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "p", Kind: KindError, Hit: 50, Times: 1})
	errs := make(chan error, 100)
	for g := 0; g < 10; g++ {
		go func() {
			for i := 0; i < 10; i++ {
				errs <- Hit("p")
			}
		}()
	}
	fired := 0
	for i := 0; i < 100; i++ {
		if <-errs != nil {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("plan fired %d times across goroutines, want exactly 1", fired)
	}
}
