// Package faultinject is a deterministic, stdlib-only fault-injection
// registry for chaos testing the data and lifecycle layers. Production
// code threads named injection points (Hit, Reader) through its I/O,
// parse, RPC and checkpoint paths; tests — or an operator via the
// BFHRF_FAULTS environment variable — arm those points with error,
// delay, short-read or crash-at-nth-hit plans. Disarmed (the default),
// every point compiles down to one atomic load and a nil return, so the
// hooks are safe to leave in hot-ish paths permanently.
//
// Plans are deterministic: a plan fires on an exact hit number, and the
// Schedule helper derives a reproducible random fault plan from a seed,
// which is what the chaos suite sweeps over. There is no probabilistic
// state anywhere, so a failing schedule replays exactly.
//
// The environment grammar is a comma- or semicolon-separated list of
// entries, each "point:kind@n[xTIMES][:arg]":
//
//	BFHRF_FAULTS='parse.tree:error@3'           error on the 3rd hit
//	BFHRF_FAULTS='io.read:delay@2x5:10ms'       10ms delay on hits 2..6
//	BFHRF_FAULTS='checkpoint.write:crash@2'     exit(137) on the 2nd hit
//	BFHRF_FAULTS='rpc.send:error@1x*:transient' transient errors forever
//	BFHRF_FAULTS='io.read:short@4'              stream ends early at hit 4
package faultinject

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known injection points. The constants document where each point
// lives; arming an unknown point name is allowed (it just never fires).
const (
	// PointIOOpen fires when a tree collection file is (re)opened.
	PointIOOpen = "io.open"
	// PointIORead fires on every buffered read from a collection file.
	PointIORead = "io.read"
	// PointParseTree fires before each tree is parsed (newick and nexus).
	PointParseTree = "parse.tree"
	// PointRPCSend fires before each coordinator-side RPC attempt.
	PointRPCSend = "rpc.send"
	// PointCheckpointWrite fires at each checkpoint flush.
	PointCheckpointWrite = "checkpoint.write"
	// PointCheckpointRead fires per record while loading a checkpoint.
	PointCheckpointRead = "checkpoint.read"
	// PointOutputWrite fires when an atomic output file is committed.
	PointOutputWrite = "output.write"
	// PointCachePut fires before a result is inserted into the query-side
	// topology cache — delay plans widen the compute-to-publish window the
	// eviction hammer races over, and crash plans model a process dying
	// between computing a result and caching it.
	PointCachePut = "cache.put"
	// PointSnapWrite fires per section while a BFH snapshot part is
	// written — crash plans model a process dying mid-file, which must
	// leave the published epoch untouched.
	PointSnapWrite = "snap.write"
	// PointSnapRename fires before an epoch directory rename and before
	// the CURRENT pointer update — the two publish steps whose crash
	// windows the epoch recovery sweep covers.
	PointSnapRename = "snap.rename"
	// PointSnapReap fires before an obsolete epoch directory is removed.
	PointSnapReap = "snap.reap"
	// PointServeAdmit fires in the query service after admission checks
	// but before any body parsing — error plans model an admission-layer
	// rejection (shed with 503), delay plans hold requests in the
	// admitted-but-not-parsing window that the overload tests widen.
	PointServeAdmit = "serve.admit"
	// PointServeQuery fires just before a catalog backend executes an
	// admitted query — error plans turn into clean 502 responses, delay
	// plans pin execution slots to force queue growth.
	PointServeQuery = "serve.query"
)

// Kind enumerates what an armed plan does when it fires.
type Kind int

const (
	// KindError makes the point return an injected error.
	KindError Kind = iota
	// KindDelay makes the point sleep, then proceed normally.
	KindDelay
	// KindShortRead makes a Reader-wrapped stream end early (premature
	// io.EOF — a truncated file). At non-reader points it acts like
	// KindError.
	KindShortRead
	// KindCrash terminates the process immediately (models SIGKILL:
	// no flushes, no deferred cleanup).
	KindCrash
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindShortRead:
		return "short"
	case KindCrash:
		return "crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Plan arms one injection point with one deterministic fault.
type Plan struct {
	// Point is the injection point name (see the Point* constants).
	Point string
	// Kind selects the fault behaviour.
	Kind Kind
	// Hit is the 1-based hit number on which the plan first fires
	// (0 and 1 both mean the first hit).
	Hit int
	// Times is how many consecutive hits fire, starting at Hit.
	// 0 and 1 both mean once; negative means every hit from Hit on.
	Times int
	// Delay is the sleep for KindDelay (default 1ms).
	Delay time.Duration
	// Transient marks injected errors as infrastructure-style failures:
	// they wrap io.ErrUnexpectedEOF, which retry layers classify as
	// retryable. Permanent (default) injected errors wrap nothing.
	Transient bool
	// ExitCode is the status for KindCrash (default 137, mirroring
	// SIGKILL's shell convention).
	ExitCode int
}

func (p Plan) firstHit() int64 {
	if p.Hit <= 1 {
		return 1
	}
	return int64(p.Hit)
}

func (p Plan) fires(n int64) bool {
	first := p.firstHit()
	if n < first {
		return false
	}
	if p.Times < 0 {
		return true
	}
	times := int64(p.Times)
	if times < 1 {
		times = 1
	}
	return n < first+times
}

func (p Plan) delay() time.Duration {
	if p.Delay <= 0 {
		return time.Millisecond
	}
	return p.Delay
}

func (p Plan) exitCode() int {
	if p.ExitCode == 0 {
		return 137
	}
	return p.ExitCode
}

// Error is the error injected by an armed error or short-read plan.
type Error struct {
	// Point is where the fault fired; N is the hit number.
	Point string
	N     int64
	kind  Kind
	cause error
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s (hit %d)", e.kind, e.Point, e.N)
}

// Unwrap exposes the cause (io.ErrUnexpectedEOF for transient plans) so
// retry layers classify injected faults like real ones.
func (e *Error) Unwrap() error { return e.cause }

// Kind reports the fault kind that produced this error.
func (e *Error) Kind() Kind { return e.kind }

// registry is the armed state. The armed flag is the only thing the
// disarmed fast path touches; everything else sits behind the mutex and
// is read-mostly while a schedule is active.
var (
	armed atomic.Bool
	mu    sync.RWMutex
	table map[string][]*armedPlan

	// exit is swapped out by tests of the crash path.
	exit = os.Exit
)

type armedPlan struct {
	Plan
	hits atomic.Int64
}

func init() {
	if spec := os.Getenv("BFHRF_FAULTS"); spec != "" {
		if err := ArmSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring BFHRF_FAULTS: %v\n", err)
		}
	}
}

// Arm replaces the current schedule with plans and enables injection.
// Arming an empty list disarms.
func Arm(plans ...Plan) {
	mu.Lock()
	table = make(map[string][]*armedPlan, len(plans))
	for _, p := range plans {
		table[p.Point] = append(table[p.Point], &armedPlan{Plan: p})
	}
	n := len(plans)
	mu.Unlock()
	armed.Store(n > 0)
}

// Disarm clears the schedule; every point returns to the zero-cost path.
func Disarm() {
	mu.Lock()
	table = nil
	mu.Unlock()
	armed.Store(false)
}

// Armed reports whether any schedule is active.
func Armed() bool { return armed.Load() }

// HitCount returns how many times point has been hit under the current
// schedule (0 when the point has no armed plan). For tests.
func HitCount(point string) int64 {
	mu.RLock()
	defer mu.RUnlock()
	for _, p := range table[point] {
		return p.hits.Load()
	}
	return 0
}

// Hit consults the schedule for point and applies the first firing plan:
// returns an injected error, sleeps, or terminates the process. Disarmed
// it is a single atomic load.
func Hit(point string) error {
	if !armed.Load() {
		return nil
	}
	return hitSlow(point)
}

func hitSlow(point string) error {
	mu.RLock()
	plans := table[point]
	mu.RUnlock()
	for _, p := range plans {
		n := p.hits.Add(1)
		if !p.fires(n) {
			continue
		}
		switch p.Kind {
		case KindDelay:
			time.Sleep(p.delay())
		case KindCrash:
			fmt.Fprintf(os.Stderr, "faultinject: crash at %s (hit %d)\n", point, n)
			exit(p.exitCode())
		default:
			var cause error
			if p.Transient {
				cause = io.ErrUnexpectedEOF
			}
			return &Error{Point: point, N: n, kind: p.Kind, cause: cause}
		}
	}
	return nil
}

// Reader wraps r with point's read faults: error and delay plans fire per
// Read call, and a short-read plan ends the stream early with a clean
// io.EOF — the signature of a truncated file. Disarmed, the wrapper costs
// one atomic load per Read (which the callers buffer, so per ~4KiB chunk).
func Reader(point string, r io.Reader) io.Reader {
	return &faultReader{point: point, r: r}
}

type faultReader struct {
	point string
	r     io.Reader
	cut   bool
}

// Read implements io.Reader with the point's faults applied.
func (f *faultReader) Read(p []byte) (int, error) {
	if f.cut {
		return 0, io.EOF
	}
	if armed.Load() {
		if err := hitSlow(f.point); err != nil {
			var ie *Error
			if asError(err, &ie) && ie.kind == KindShortRead {
				f.cut = true
				return 0, io.EOF
			}
			return 0, err
		}
	}
	return f.r.Read(p)
}

// asError is errors.As specialized to *Error, avoiding the reflection
// cost of the generic helper on the read path.
func asError(err error, target **Error) bool {
	ie, ok := err.(*Error)
	if ok {
		*target = ie
	}
	return ok
}
