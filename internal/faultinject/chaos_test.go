package faultinject_test

// The chaos suite: seeded random fault schedules are armed against full
// end-to-end runs — single-node resumable batches and distributed
// scatter-gather — and every schedule must uphold three invariants:
//
//  1. no hang: each run finishes within a hard deadline;
//  2. no wrong answer: a run that reports success is bit-identical to the
//     fault-free run;
//  3. no silent loss or double count: after a faulted run, resuming from
//     its checkpoint completes to the exact fault-free result set.
//
// Schedules are derived deterministically from the seed (see
// faultinject.Schedule), so any failure names a spec string that replays
// the exact fault sequence.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
	"repro/internal/collection"
	"repro/internal/distrib"
	"repro/internal/faultinject"
	"repro/internal/newick"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"

	"math/rand"
	"net"
)

// chaosDeadline bounds one schedule's run; well above the worst case
// (a few ms of injected delays plus retry backoff) and far below a hang.
const chaosDeadline = 30 * time.Second

// chaosTrees generates a deterministic collection and serializes it.
func chaosTrees(seed int64, n, r int) ([]*tree.Tree, *taxa.Set, string) {
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(seed))
	trees := make([]*tree.Tree, r)
	var sb []byte
	for i := range trees {
		trees[i] = simphy.RandomBinary(ts, rng)
		sb = append(sb, newick.String(trees[i], newick.WriteOptions{BranchLengths: true})...)
		sb = append(sb, '\n')
	}
	return trees, ts, string(sb)
}

// runWithDeadline enforces the no-hang invariant.
func runWithDeadline(t *testing.T, spec string, f func() error) error {
	t.Helper()
	ch := make(chan error, 1)
	go func() { ch <- f() }()
	select {
	case err := <-ch:
		return err
	case <-time.After(chaosDeadline):
		t.Fatalf("schedule %q hung (no result after %v)", spec, chaosDeadline)
		return nil
	}
}

func sameResults(t *testing.T, spec string, got, want []repro.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("schedule %q: %d results, want %d", spec, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule %q: result %d = %+v, want %+v (wrong answer under faults)",
				spec, i, got[i], want[i])
		}
	}
}

// TestChaosSingleNode sweeps seeded schedules over the ingest, parse and
// checkpoint fault points of a resumable single-node batch run.
func TestChaosSingleNode(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	_, _, refs := chaosTrees(101, 10, 12)
	_, _, queries := chaosTrees(102, 10, 8)
	rp := filepath.Join(dir, "r.nwk")
	qp := filepath.Join(dir, "q.nwk")
	if err := os.WriteFile(rp, []byte(refs), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(qp, []byte(queries), 0o644); err != nil {
		t.Fatal(err)
	}

	baseline, err := repro.AverageRFFiles(qp, rp, repro.Config{})
	if err != nil {
		t.Fatal(err)
	}

	points := []string{
		faultinject.PointIOOpen,
		faultinject.PointIORead,
		faultinject.PointParseTree,
		faultinject.PointCheckpointWrite,
		faultinject.PointCheckpointRead,
		faultinject.PointOutputWrite,
	}
	const schedules = 40
	errored := 0
	for seed := int64(0); seed < schedules; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			plans := faultinject.Schedule(seed, points, 3, 25)
			spec := faultinject.SpecOf(plans)
			ck := filepath.Join(t.TempDir(), "run.ckpt")

			var results []repro.Result
			faultinject.Arm(plans...)
			err := runWithDeadline(t, spec, func() error {
				var err error
				results, err = repro.AverageRFFilesResumable(qp, rp, repro.Config{},
					repro.RunOptions{CheckpointPath: ck, CheckpointInterval: 1})
				return err
			})
			faultinject.Disarm()
			if err == nil {
				sameResults(t, spec, results, baseline)
			} else {
				errored++
			}

			// Whatever the fault did, resuming without faults must complete
			// to the exact fault-free result set: nothing lost from the
			// checkpoint, nothing double-counted, nothing corrupt folded in.
			final, err := repro.AverageRFFilesResumable(qp, rp, repro.Config{},
				repro.RunOptions{CheckpointPath: ck, Resume: true})
			if err != nil {
				t.Fatalf("schedule %q: clean resume failed: %v", spec, err)
			}
			sameResults(t, spec, final, baseline)
		})
	}
	// Vacuity guard: the schedules are deterministic, and a healthy sweep
	// must include runs where an injected fault actually surfaced as an
	// error (and was then recovered via resume). If this drops to zero the
	// fault points have silently stopped firing.
	t.Logf("%d/%d schedules surfaced an error", errored, schedules)
	if errored < 5 {
		t.Fatalf("only %d/%d schedules surfaced an error — fault injection looks vacuous", errored, schedules)
	}
}

// TestChaosDistributed sweeps seeded rpc.send schedules over a full
// two-worker scatter-gather run with retries and shard failover enabled.
func TestChaosDistributed(t *testing.T) {
	defer faultinject.Disarm()
	trees, ts, _ := chaosTrees(201, 12, 30)
	queries := trees[:10]

	startWorkers := func(t *testing.T, k int) []string {
		t.Helper()
		addrs := make([]string, k)
		for i := 0; i < k; i++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { l.Close() })
			w := &distrib.Worker{}
			go distrib.ServeWorker(l, w) //nolint:errcheck — ends when l closes
			addrs[i] = l.Addr().String()
		}
		return addrs
	}
	newCoord := func(t *testing.T) *distrib.Coordinator {
		t.Helper()
		coord, err := distrib.Dial(startWorkers(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { coord.Close() })
		coord.ChunkSize = 8
		coord.BatchSize = 4
		coord.RPCTimeout = 5 * time.Second
		coord.Retry = distrib.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
		return coord
	}
	runOnce := func(t *testing.T, spec string) ([]repro.Result, error) {
		t.Helper()
		coord := newCoord(t)
		var out []repro.Result
		err := runWithDeadline(t, spec, func() error {
			if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
				return err
			}
			res, err := coord.AverageRF(collection.FromTrees(queries))
			if err != nil {
				return err
			}
			for _, r := range res {
				out = append(out, repro.Result{Index: r.Index, AvgRF: r.AvgRF})
			}
			return nil
		})
		return out, err
	}

	baseline, err := runOnce(t, "fault-free")
	if err != nil {
		t.Fatal(err)
	}

	const schedules = 16
	survived, errored := 0, 0
	for seed := int64(1000); seed < 1000+schedules; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plans := faultinject.Schedule(seed, []string{faultinject.PointRPCSend}, 3, 40)
			spec := faultinject.SpecOf(plans)
			faultinject.Arm(plans...)
			results, err := runOnce(t, spec)
			faultinject.Disarm()
			if err != nil {
				errored++
				return // the fault surfaced as an error; that is a correct outcome
			}
			survived++
			sameResults(t, spec, results, baseline)
		})
	}
	// Vacuity guard: with retries and failover most schedules should
	// complete with correct answers, and both outcomes must be represented.
	t.Logf("%d/%d schedules survived faults with exact answers, %d errored",
		survived, schedules, errored)
	if survived == 0 {
		t.Fatal("no schedule survived rpc faults — retry/failover look broken")
	}
}
