package newick

import (
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

func TestParseSimple(t *testing.T) {
	tr, err := Parse("((A,B),(C,D));")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.NumLeaves(); got != 4 {
		t.Errorf("NumLeaves = %d, want 4", got)
	}
	names := tr.LeafNames()
	sort.Strings(names)
	if strings.Join(names, ",") != "A,B,C,D" {
		t.Errorf("leaves = %v", names)
	}
}

func TestParseBranchLengths(t *testing.T) {
	tr, err := Parse("((A:0.1,B:0.2):0.3,C:1e-2);")
	if err != nil {
		t.Fatal(err)
	}
	var ab *tree.Node
	tr.Postorder(func(n *tree.Node) {
		if !n.IsLeaf() && n.Parent != nil {
			ab = n
		}
	})
	if ab == nil || !ab.HasLength || ab.Length != 0.3 {
		t.Errorf("internal branch length not parsed: %+v", ab)
	}
	for _, l := range tr.Leaves() {
		if !l.HasLength {
			t.Errorf("leaf %s has no length", l.Name)
		}
		if l.Name == "C" && l.Length != 0.01 {
			t.Errorf("C length = %v, want 0.01", l.Length)
		}
	}
}

func TestParseInternalLabels(t *testing.T) {
	tr, err := Parse("((A,B)95:0.1,(C,D)87);")
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	tr.Postorder(func(n *tree.Node) {
		if !n.IsLeaf() && n.Name != "" {
			labels = append(labels, n.Name)
		}
	})
	sort.Strings(labels)
	if strings.Join(labels, ",") != "87,95" {
		t.Errorf("internal labels = %v", labels)
	}
}

func TestParseQuotedLabels(t *testing.T) {
	tr, err := Parse("('Homo sapiens','it''s here',(C,D));")
	if err != nil {
		t.Fatal(err)
	}
	names := tr.LeafNames()
	sort.Strings(names)
	want := []string{"C", "D", "Homo sapiens", "it's here"}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("names[%d] = %q, want %q", i, names[i], w)
		}
	}
}

func TestParseUnderscoreDecoding(t *testing.T) {
	tr, err := Parse("(Homo_sapiens,Pan_troglodytes,X);")
	if err != nil {
		t.Fatal(err)
	}
	names := tr.LeafNames()
	sort.Strings(names)
	if names[0] != "Homo sapiens" {
		t.Errorf("underscore not decoded: %v", names)
	}
}

func TestParseComments(t *testing.T) {
	tr, err := Parse("((A[&support=1],B)[comment [nested]],C);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 3 {
		t.Errorf("NumLeaves = %d, want 3", tr.NumLeaves())
	}
}

func TestParseWhitespace(t *testing.T) {
	tr, err := Parse("( (A , B) ,\n\t(C, D) ) ;")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 4 {
		t.Errorf("NumLeaves = %d, want 4", tr.NumLeaves())
	}
}

func TestParseMultifurcation(t *testing.T) {
	tr, err := Parse("(A,B,C,D,E);")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Root.Children) != 5 {
		t.Errorf("root children = %d, want 5", len(tr.Root.Children))
	}
}

func TestParseSingleLeaf(t *testing.T) {
	tr, err := Parse("A;")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() || tr.Root.Name != "A" {
		t.Errorf("single leaf tree wrong: %+v", tr.Root)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                   // empty is EOF, checked separately
		"((A,B);",            // unbalanced
		"(A,B)",              // missing semicolon
		"(A,,B);",            // empty label
		"(A,B));",            // extra close
		"(A,B);(",            // trailing garbage
		"(A:xyz,B);",         // bad branch length
		"('unterminated,B);", // unterminated quote
		"(A,B)[unclosed;",    // unterminated comment
		"(,);",               // empty leaves
	}
	for _, s := range cases[1:] {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
	// Empty input: the Reader reports EOF, Parse converts to error.
	if _, err := Parse(""); err == nil {
		t.Error("Parse of empty string should fail")
	}
}

func TestReaderMultipleTrees(t *testing.T) {
	input := "(A,B,(C,D));\n(A,C,(B,D));\n(A,D,(B,C));\n"
	r := NewReader(strings.NewReader(input))
	n := 0
	for {
		tr, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumLeaves() != 4 {
			t.Errorf("tree %d has %d leaves", n, tr.NumLeaves())
		}
		n++
	}
	if n != 3 || r.TreesRead() != 3 {
		t.Errorf("read %d trees (counter %d), want 3", n, r.TreesRead())
	}
}

func TestReaderReadAll(t *testing.T) {
	trees, err := NewReader(strings.NewReader("(A,B,C);(A,B,C);")).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Errorf("ReadAll = %d trees, want 2", len(trees))
	}
}

func TestReaderErrorPropagatesPosition(t *testing.T) {
	_, err := NewReader(strings.NewReader("(A,B,(C,D));\n(A,;\n")).ReadAll()
	if err == nil {
		t.Fatal("expected error on malformed second tree")
	}
	var pe *ParseError
	if !strings.Contains(err.Error(), "parse error") {
		t.Errorf("error should mention parse error: %v", err)
	}
	_ = pe
}

func TestWriteRoundTrip(t *testing.T) {
	cases := []string{
		"((A,B),(C,D));",
		"((A:0.1,B:0.2):0.5,(C:1,D:2):0.25,E:3);",
		"(A,B,C,D,E);",
		"((A,B)label,(C,D));",
	}
	for _, s := range cases {
		tr := MustParse(s)
		out := String(tr, DefaultWriteOptions())
		tr2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", out, err)
		}
		out2 := String(tr2, DefaultWriteOptions())
		if out != out2 {
			t.Errorf("round trip unstable: %q -> %q", out, out2)
		}
	}
}

func TestWriteQuoting(t *testing.T) {
	tr := tree.New(&tree.Node{})
	tr.Root.AddChild(&tree.Node{Name: "has space"})
	tr.Root.AddChild(&tree.Node{Name: "has'quote"})
	tr.Root.AddChild(&tree.Node{Name: "has(paren"})
	s := String(tr, DefaultWriteOptions())
	tr2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	names := tr2.LeafNames()
	sort.Strings(names)
	want := []string{"has space", "has'quote", "has(paren"}
	sort.Strings(want)
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestWriteAll(t *testing.T) {
	trees := []*tree.Tree{MustParse("(A,B,C);"), MustParse("((A,B),C);")}
	var sb strings.Builder
	if err := WriteAll(&sb, trees, DefaultWriteOptions()); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("WriteAll round trip = %d trees", len(got))
	}
}

func TestWriteOptionsToggle(t *testing.T) {
	tr := MustParse("((A:1,B:2)90:3,C:4);")
	bare := String(tr, WriteOptions{})
	if strings.ContainsAny(bare, ":") || strings.Contains(bare, "90") {
		t.Errorf("options off but output has annotations: %q", bare)
	}
	full := String(tr, DefaultWriteOptions())
	if !strings.Contains(full, ":3") || !strings.Contains(full, "90") {
		t.Errorf("full output missing annotations: %q", full)
	}
}

// randomTreeNewick builds a random binary Newick string over n leaves.
func randomTreeNewick(rng *rand.Rand, n int) string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = "L" + string(rune('a'+i%26)) + "x" + itoa(i)
	}
	for len(nodes) > 1 {
		i := rng.Intn(len(nodes))
		j := rng.Intn(len(nodes) - 1)
		if j >= i {
			j++
		}
		merged := "(" + nodes[i] + "," + nodes[j] + ")"
		hi, lo := i, j
		if lo > hi {
			hi, lo = lo, hi
		}
		nodes[hi] = nodes[len(nodes)-1]
		nodes = nodes[:len(nodes)-1]
		nodes[lo] = nodes[len(nodes)-1]
		nodes = nodes[:len(nodes)-1]
		nodes = append(nodes, merged)
	}
	return nodes[0] + ";"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestQuickParseWriteRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		s := randomTreeNewick(rng, n)
		tr, err := Parse(s)
		if err != nil {
			return false
		}
		out := String(tr, DefaultWriteOptions())
		tr2, err := Parse(out)
		if err != nil {
			return false
		}
		// Same leaves, same shape (stable re-serialization).
		a, b := tr.LeafNames(), tr2.LeafNames()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return String(tr2, DefaultWriteOptions()) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
