package newick

import (
	"bufio"
	"io"
	"strconv"
	"strings"

	"repro/internal/tree"
)

// WriteOptions control Newick serialization.
type WriteOptions struct {
	// BranchLengths emits ":length" annotations for nodes with HasLength.
	BranchLengths bool
	// InternalLabels emits names on internal nodes (e.g. support values).
	InternalLabels bool
	// Precision is the number of significant digits for branch lengths;
	// <= 0 means the shortest exact representation.
	Precision int
}

// DefaultWriteOptions emit branch lengths (when present) and internal
// labels, with shortest-form numbers.
func DefaultWriteOptions() WriteOptions {
	return WriteOptions{BranchLengths: true, InternalLabels: true}
}

// Write serializes t (followed by ";\n") to w.
func Write(w io.Writer, t *tree.Tree, opts WriteOptions) error {
	bw := bufio.NewWriter(w)
	if err := writeNode(bw, t.Root, opts); err != nil {
		return err
	}
	if _, err := bw.WriteString(";\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// String serializes t to a Newick string (with trailing ";").
func String(t *tree.Tree, opts WriteOptions) string {
	var sb strings.Builder
	bw := bufio.NewWriter(&sb)
	// strings.Builder writes cannot fail.
	_ = writeNode(bw, t.Root, opts)
	_, _ = bw.WriteString(";")
	_ = bw.Flush()
	return sb.String()
}

func writeNode(bw *bufio.Writer, n *tree.Node, opts WriteOptions) error {
	if n == nil {
		return nil
	}
	if !n.IsLeaf() {
		if err := bw.WriteByte('('); err != nil {
			return err
		}
		for i, c := range n.Children {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if err := writeNode(bw, c, opts); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(')'); err != nil {
			return err
		}
	}
	if n.Name != "" && (n.IsLeaf() || opts.InternalLabels) {
		if _, err := bw.WriteString(quoteLabel(n.Name)); err != nil {
			return err
		}
	}
	if opts.BranchLengths && n.HasLength {
		if err := bw.WriteByte(':'); err != nil {
			return err
		}
		prec := opts.Precision
		if prec <= 0 {
			prec = -1
		}
		if _, err := bw.WriteString(strconv.FormatFloat(n.Length, 'g', prec, 64)); err != nil {
			return err
		}
	}
	return nil
}

// quoteLabel renders a label safely: bare if it contains no structural
// characters (spaces become underscores), single-quoted otherwise.
func quoteLabel(s string) string {
	needsQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', ')', ',', ':', ';', '[', ']', '\'', '\t', '\n', '\r', '_':
			needsQuote = true
		}
	}
	if !needsQuote {
		return strings.ReplaceAll(s, " ", "_")
	}
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// WriteAll serializes a sequence of trees, one per line.
func WriteAll(w io.Writer, trees []*tree.Tree, opts WriteOptions) error {
	bw := bufio.NewWriter(w)
	for _, t := range trees {
		if err := writeNode(bw, t.Root, opts); err != nil {
			return err
		}
		if _, err := bw.WriteString(";\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
