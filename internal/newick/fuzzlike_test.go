package newick

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics feeds the parser random byte soup, random
// structural-character soup, and mutated valid trees: it must always return
// (tree, nil) or (nil, error), never panic or hang. This is the robustness
// contract for a tool whose inputs are multi-gigabyte files assembled by
// heterogeneous pipelines.
func TestQuickParserNeverPanics(t *testing.T) {
	structural := []byte("(),:;[]'_ \t\nAB019.e-")
	f := func(seed int64, mode uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("parser panicked: %v", r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var input string
		switch mode % 3 {
		case 0: // raw random bytes
			b := make([]byte, rng.Intn(200))
			rng.Read(b)
			input = string(b)
		case 1: // structural soup
			n := rng.Intn(200)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(structural[rng.Intn(len(structural))])
			}
			input = sb.String()
		default: // mutated valid tree
			valid := randomTreeNewick(rng, rng.Intn(20)+3)
			b := []byte(valid)
			for m := 0; m < rng.Intn(5); m++ {
				if len(b) == 0 {
					break
				}
				b[rng.Intn(len(b))] = structural[rng.Intn(len(structural))]
			}
			input = string(b)
		}
		_, _ = Parse(input) // outcome irrelevant; absence of panic is the property
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickReaderNeverPanicsOnStreams does the same for the multi-tree
// streaming reader.
func TestQuickReaderNeverPanicsOnStreams(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("reader panicked: %v", r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < rng.Intn(5); i++ {
			if rng.Intn(3) == 0 {
				b := make([]byte, rng.Intn(50))
				rng.Read(b)
				sb.Write(b)
			} else {
				sb.WriteString(randomTreeNewick(rng, rng.Intn(10)+3))
			}
			sb.WriteByte('\n')
		}
		r := NewReader(strings.NewReader(sb.String()))
		for i := 0; i < 20; i++ {
			if _, err := r.Read(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParserDepthBound: deeply nested input must parse (or fail) without
// blowing the stack.
func TestParserDepthBound(t *testing.T) {
	depth := 100000
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteByte('(')
	}
	sb.WriteString("A,B")
	for i := 0; i < depth; i++ {
		sb.WriteByte(')')
	}
	sb.WriteByte(';')
	// Either outcome is fine; no panic allowed. (Current parser is
	// recursive; Go grows goroutine stacks, so this passes.)
	tr, err := Parse(sb.String())
	if err == nil && tr.NumLeaves() != 2 {
		t.Errorf("deep parse lost leaves: %d", tr.NumLeaves())
	}
}
