// Package newick implements reading and writing of phylogenetic trees in
// the Newick format, the interchange format of the paper's datasets.
//
// The parser supports the full practical grammar: nested subtrees, leaf and
// internal labels (bare, underscore-encoded, or single-quoted), branch
// lengths, nested bracket comments, and multi-tree files (one tree per ';').
// The Reader type streams trees one at a time so that collections with
// hundreds of thousands of trees (the paper's Insect set has 149,278) never
// need to be resident in memory at once — the property BFHRF's dynamic
// loading depends on.
package newick

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/tree"
)

// ParseError describes a syntax error with its byte offset (and, when
// known, 1-based line number) within the input stream.
type ParseError struct {
	Pos  int
	Line int
	Msg  string
	// Limit marks errors produced by a resource limit (MaxTreeBytes,
	// MaxTaxa) rather than malformed syntax; both are recoverable the
	// same way (skip the tree), but diagnostics distinguish them.
	Limit bool
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("newick: parse error at line %d (offset %d): %s", e.Line, e.Pos, e.Msg)
	}
	return fmt.Sprintf("newick: parse error at offset %d: %s", e.Pos, e.Msg)
}

// Limits bounds the resources a single tree may consume. Zero values mean
// unlimited. Exceeding a limit yields a *ParseError with Limit set — a
// clean, skippable per-tree failure instead of a runaway allocation.
type Limits struct {
	// MaxTreeBytes caps the serialized size of one tree (bytes consumed
	// between its first token and its ';').
	MaxTreeBytes int
	// MaxTaxa caps the number of leaves in one tree.
	MaxTaxa int
}

// Parse parses a single Newick tree from s. Trailing input after the
// terminating ';' (other than whitespace) is an error.
func Parse(s string) (*tree.Tree, error) {
	r := NewReader(strings.NewReader(s))
	t, err := r.Read()
	if err != nil {
		return nil, err
	}
	if _, err := r.Read(); err != io.EOF {
		if err == nil {
			return nil, &ParseError{Pos: 0, Msg: "unexpected extra tree after ';'"}
		}
		return nil, err
	}
	return t, nil
}

// MustParse is Parse but panics on error. For tests and literals.
func MustParse(s string) *tree.Tree {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Reader streams trees from a multi-tree Newick source. Each call to Read
// returns the next tree; io.EOF signals a clean end of input.
type Reader struct {
	lx     *lexer
	count  int
	limits Limits
	leaves int // leaf count of the tree currently being parsed
}

// NewReader wraps r in a streaming Newick reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{lx: newLexer(r)}
}

// SetLimits applies per-tree resource limits to subsequent Reads.
func (r *Reader) SetLimits(l Limits) {
	r.limits = l
	r.lx.budget = l.MaxTreeBytes
}

// TreesRead returns the number of trees successfully read so far.
func (r *Reader) TreesRead() int { return r.count }

// Pos returns the byte offset and 1-based line of the reader's position,
// for per-tree diagnostics in lenient mode.
func (r *Reader) Pos() (offset, line int) { return r.lx.pos, r.lx.line }

// SkipTree abandons the current (malformed or oversized) tree and
// advances past its terminating ';' so the next Read starts on the
// following tree. Returns io.EOF if the input ends before a ';'.
func (r *Reader) SkipTree() error {
	return r.lx.skipToSemi()
}

// Read parses and returns the next tree, or io.EOF when input is exhausted.
func (r *Reader) Read() (*tree.Tree, error) {
	// Skip to the first meaningful token; bare EOF here is a clean end.
	tok, err := r.lx.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind == tokEOF {
		return nil, io.EOF
	}
	if err := faultinject.Hit(faultinject.PointParseTree); err != nil {
		// Injected parse faults impersonate malformed trees so lenient
		// ingest exercises exactly the recovery path real corruption takes.
		return nil, &ParseError{Pos: tok.pos, Line: r.lx.line, Msg: err.Error()}
	}
	r.lx.startTree()
	r.leaves = 0
	root, err := r.parseNode()
	if err != nil {
		return nil, err
	}
	tok, err = r.lx.next()
	if err != nil {
		return nil, err
	}
	if tok.kind != tokSemi {
		return nil, &ParseError{Pos: tok.pos, Line: r.lx.line, Msg: fmt.Sprintf("expected ';' after tree, found %s", tok.kind)}
	}
	r.count++
	return tree.New(root), nil
}

// ReadAll reads every remaining tree. Prefer streaming Read for large files.
func (r *Reader) ReadAll() ([]*tree.Tree, error) {
	var out []*tree.Tree
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// parseNode parses a subtree: either "(child,child,...)label:length" or a
// leaf "label:length".
func (r *Reader) parseNode() (*tree.Node, error) {
	tok, err := r.lx.peek()
	if err != nil {
		return nil, err
	}
	n := &tree.Node{}
	if tok.kind == tokOpen {
		r.lx.next() // consume '('
		for {
			child, err := r.parseNode()
			if err != nil {
				return nil, err
			}
			n.AddChild(child)
			sep, err := r.lx.next()
			if err != nil {
				return nil, err
			}
			if sep.kind == tokComma {
				continue
			}
			if sep.kind == tokClose {
				break
			}
			return nil, &ParseError{Pos: sep.pos, Line: r.lx.line, Msg: fmt.Sprintf("expected ',' or ')' in subtree, found %s", sep.kind)}
		}
	} else if tok.kind != tokLabel {
		return nil, &ParseError{Pos: tok.pos, Line: r.lx.line, Msg: fmt.Sprintf("expected '(' or label, found %s", tok.kind)}
	}

	// Optional label.
	tok, err = r.lx.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind == tokLabel {
		r.lx.next()
		n.Name = tok.text
	}

	// Optional ":length".
	tok, err = r.lx.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind == tokColon {
		r.lx.next()
		lt, err := r.lx.next()
		if err != nil {
			return nil, err
		}
		if lt.kind != tokLabel {
			return nil, &ParseError{Pos: lt.pos, Line: r.lx.line, Msg: fmt.Sprintf("expected branch length after ':', found %s", lt.kind)}
		}
		// Undo the underscore-to-space decoding for numbers (numbers never
		// legitimately contain underscores, but be strict anyway).
		v, err := strconv.ParseFloat(strings.TrimSpace(lt.text), 64)
		if err != nil {
			return nil, &ParseError{Pos: lt.pos, Line: r.lx.line, Msg: fmt.Sprintf("invalid branch length %q", lt.text)}
		}
		n.Length = v
		n.HasLength = true
	}

	if len(n.Children) == 0 {
		if n.Name == "" {
			return nil, &ParseError{Pos: tok.pos, Line: r.lx.line, Msg: "leaf without a name"}
		}
		r.leaves++
		if r.limits.MaxTaxa > 0 && r.leaves > r.limits.MaxTaxa {
			return nil, &ParseError{Pos: tok.pos, Line: r.lx.line, Limit: true,
				Msg: fmt.Sprintf("tree exceeds %d-taxon limit", r.limits.MaxTaxa)}
		}
	}
	return n, nil
}
