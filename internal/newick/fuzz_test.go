package newick

import (
	"strings"
	"testing"
)

// FuzzParse is the native-fuzzing counterpart of the quick-check tests:
// the parser must never panic, and any tree it accepts must survive a
// write → re-parse round trip. Run the stored corpus as part of `go test`;
// explore with `go test -fuzz=FuzzParse ./internal/newick` (ci.sh does a
// 10-second smoke run).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(a,b);",
		"((a:1,b:2):0.5,c:3);",
		"(a,(b,(c,(d,e))));",
		"('quoted label',b_c)root;",
		"((A,B)90:0.1,(C,D)75:0.2);",
		"(a[comment],b[nested[deep]]);",
		"(,,);",
		"(a:1e-5,b:1E5,c:-0.5);",
		";",
		"(a,b)(c,d);",
		"((((((((((a,b))))))))));",
		"(a\n ,\tb) ;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return // bound parse cost, not robustness
		}
		parsed, err := Parse(input)
		if err != nil {
			return
		}
		if parsed == nil || parsed.Root == nil {
			t.Fatalf("Parse(%q) returned nil tree without error", input)
		}
		// Round trip: what the writer emits, the parser must accept and
		// re-emit identically (writer output is canonical).
		out := String(parsed, DefaultWriteOptions())
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("round trip of %q failed on %q: %v", input, out, err)
		}
		out2 := String(again, DefaultWriteOptions())
		if out != out2 {
			t.Fatalf("canonical form is not a fixed point:\n first: %s\nsecond: %s", out, out2)
		}
	})
}

// FuzzReaderMultiTree feeds the streaming reader: it must consume any
// input to EOF or a clean error without panicking, and the number of
// trees it yields must match a reference count of top-level ';'.
func FuzzReaderMultiTree(f *testing.F) {
	f.Add("(a,b);(c,d);(e,f);")
	f.Add("(a,b);\n\n(c,(d,e));\n")
	f.Add("no trees here")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		r := NewReader(strings.NewReader(input))
		for i := 0; i < 1<<12; i++ {
			tr, err := r.Read()
			if err != nil {
				return
			}
			if tr == nil {
				t.Fatal("Read returned nil tree without error")
			}
		}
		t.Fatalf("reader yielded over %d trees from %d bytes", 1<<12, len(input))
	})
}
