package newick

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func TestMaxTreeBytes(t *testing.T) {
	r := NewReader(strings.NewReader("(" + strings.Repeat("a,", 500) + "b);"))
	r.SetLimits(Limits{MaxTreeBytes: 64})
	_, err := r.Read()
	var pe *ParseError
	if !errors.As(err, &pe) || !pe.Limit {
		t.Fatalf("oversized tree: got %v, want limit ParseError", err)
	}
	if !strings.Contains(pe.Msg, "64-byte") {
		t.Fatalf("limit message %q", pe.Msg)
	}
}

func TestMaxTaxa(t *testing.T) {
	r := NewReader(strings.NewReader("(a,(b,(c,(d,e))));"))
	r.SetLimits(Limits{MaxTaxa: 3})
	_, err := r.Read()
	var pe *ParseError
	if !errors.As(err, &pe) || !pe.Limit {
		t.Fatalf("over-taxa tree: got %v, want limit ParseError", err)
	}

	// At or under the limit is fine.
	r = NewReader(strings.NewReader("(a,(b,c));"))
	r.SetLimits(Limits{MaxTaxa: 3})
	if _, err := r.Read(); err != nil {
		t.Fatalf("tree at taxa limit rejected: %v", err)
	}
}

func TestSkipTreeResyncs(t *testing.T) {
	// Middle tree is malformed; SkipTree should land us on the third.
	in := "(a,b);\n(a,,b);\n(c,d);\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first tree: %v", err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("malformed tree parsed")
	}
	if err := r.SkipTree(); err != nil {
		t.Fatalf("SkipTree: %v", err)
	}
	tr, err := r.Read()
	if err != nil {
		t.Fatalf("tree after resync: %v", err)
	}
	names := tr.LeafNames()
	if len(names) != 2 || names[0] != "c" {
		t.Fatalf("resync landed on wrong tree: %v", names)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF after last tree, got %v", err)
	}
}

func TestSkipTreeHonorsQuotesAndComments(t *testing.T) {
	in := "(a,'se;mi'[also;here],);\n(x,y);\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err == nil {
		t.Fatal("malformed tree parsed")
	}
	if err := r.SkipTree(); err != nil {
		t.Fatalf("SkipTree: %v", err)
	}
	tr, err := r.Read()
	if err != nil {
		t.Fatalf("tree after resync: %v", err)
	}
	if names := tr.LeafNames(); len(names) != 2 || names[0] != "x" {
		t.Fatalf("resync landed on wrong tree: %v", names)
	}
}

func TestParseErrorCarriesLine(t *testing.T) {
	r := NewReader(strings.NewReader("(a,b);\n(c,d);\n(e,,f);\n"))
	r.Read()
	r.Read()
	_, err := r.Read()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v", err)
	}
	if pe.Line != 3 {
		t.Fatalf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Fatalf("message lacks line: %q", pe.Error())
	}
}

func TestInjectedParseFaultLooksMalformed(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointParseTree, Kind: faultinject.KindError, Hit: 2,
	})
	r := NewReader(strings.NewReader("(a,b);(c,d);(e,f);"))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first tree: %v", err)
	}
	_, err := r.Read()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("injected fault is %T (%v), want *ParseError", err, err)
	}
	// Recovery path is identical to a real malformed tree.
	if err := r.SkipTree(); err != nil {
		t.Fatalf("SkipTree after injected fault: %v", err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatalf("tree after injected fault: %v", err)
	}
}
