package newick

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// tokenKind enumerates the lexical token classes of the Newick grammar.
type tokenKind int

const (
	tokEOF    tokenKind = iota
	tokOpen             // (
	tokClose            // )
	tokComma            // ,
	tokColon            // :
	tokSemi             // ;
	tokLabel            // bare or quoted label
	tokNumber           // branch length (lexed as a label-like run; parsed later)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokOpen:
		return "'('"
	case tokClose:
		return "')'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokSemi:
		return "';'"
	case tokLabel:
		return "label"
	case tokNumber:
		return "number"
	default:
		return fmt.Sprintf("tokenKind(%d)", int(k))
	}
}

// token is one lexical unit with its source position (byte offset within the
// current tree's text) for error reporting.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a single Newick tree description. It handles:
//   - bare labels (underscores decoded as spaces, per the Newick convention)
//   - single-quoted labels with doubled-quote escapes ('it”s')
//   - bracketed comments [...] which are skipped (including NHX-style)
//   - arbitrary whitespace between tokens
type lexer struct {
	r      *bufio.Reader
	pos    int
	line   int // 1-based, counts '\n' bytes consumed
	peeked *token
	last   byte // most recently read byte, for unreadByte line accounting

	// Per-tree byte budget: when budget > 0, readByte fails once more than
	// budget bytes have been consumed since treeStart. Turns a pathological
	// or hostile tree (one unterminated 100MB "label") into a clean,
	// position-stamped error instead of an unbounded allocation.
	budget    int
	treeStart int
}

func newLexer(r io.Reader) *lexer {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &lexer{r: br, line: 1}
}

// startTree marks the budget window for the next tree.
func (l *lexer) startTree() { l.treeStart = l.pos }

func (l *lexer) readByte() (byte, error) {
	if l.budget > 0 && l.pos-l.treeStart >= l.budget {
		return 0, &ParseError{Pos: l.pos, Line: l.line, Limit: true,
			Msg: fmt.Sprintf("tree exceeds %d-byte limit", l.budget)}
	}
	b, err := l.r.ReadByte()
	if err == nil {
		l.pos++
		l.last = b
		if b == '\n' {
			l.line++
		}
	}
	return b, err
}

func (l *lexer) unreadByte() {
	if err := l.r.UnreadByte(); err == nil {
		l.pos--
		if l.last == '\n' {
			l.line--
		}
	}
}

// skipToSemi discards input through the next top-level ';' so a lenient
// reader can resynchronize after a malformed tree. Quoted labels and
// bracket comments are honored so an embedded ';' does not end the skip
// early; the byte budget is NOT applied (the whole point is to get past
// an oversized or mangled tree). Returns io.EOF if input ends first.
func (l *lexer) skipToSemi() error {
	l.peeked = nil
	budget := l.budget
	l.budget = 0
	defer func() { l.budget = budget }()
	depth, inQuote := 0, false
	for {
		b, err := l.readByte()
		if err != nil {
			return err
		}
		switch {
		case inQuote:
			if b == '\'' {
				inQuote = false
			}
		case depth > 0:
			if b == '[' {
				depth++
			} else if b == ']' {
				depth--
			}
		case b == '\'':
			inQuote = true
		case b == '[':
			depth++
		case b == ';':
			return nil
		}
	}
}

// peek returns the next token without consuming it.
func (l *lexer) peek() (token, error) {
	if l.peeked == nil {
		t, err := l.lex()
		if err != nil {
			return token{}, err
		}
		l.peeked = &t
	}
	return *l.peeked, nil
}

// next consumes and returns the next token.
func (l *lexer) next() (token, error) {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t, nil
	}
	return l.lex()
}

func (l *lexer) lex() (token, error) {
	for {
		b, err := l.readByte()
		if err == io.EOF {
			return token{kind: tokEOF, pos: l.pos}, nil
		}
		if err != nil {
			return token{}, err
		}
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			continue
		case b == '[':
			if err := l.skipComment(); err != nil {
				return token{}, err
			}
			continue
		case b == '(':
			return token{kind: tokOpen, text: "(", pos: l.pos - 1}, nil
		case b == ')':
			return token{kind: tokClose, text: ")", pos: l.pos - 1}, nil
		case b == ',':
			return token{kind: tokComma, text: ",", pos: l.pos - 1}, nil
		case b == ':':
			return token{kind: tokColon, text: ":", pos: l.pos - 1}, nil
		case b == ';':
			return token{kind: tokSemi, text: ";", pos: l.pos - 1}, nil
		case b == '\'':
			return l.lexQuoted()
		default:
			l.unreadByte()
			return l.lexBare()
		}
	}
}

// skipComment consumes a bracketed comment. Newick comments may nest.
func (l *lexer) skipComment() error {
	depth := 1
	start := l.pos
	for depth > 0 {
		b, err := l.readByte()
		if err == io.EOF {
			return &ParseError{Pos: start, Line: l.line, Msg: "unterminated comment"}
		}
		if err != nil {
			return err
		}
		switch b {
		case '[':
			depth++
		case ']':
			depth--
		}
	}
	return nil
}

// lexQuoted consumes a single-quoted label; the opening quote has already
// been read. A doubled quote inside the label denotes a literal quote.
func (l *lexer) lexQuoted() (token, error) {
	start := l.pos - 1
	var sb strings.Builder
	for {
		b, err := l.readByte()
		if err == io.EOF {
			return token{}, &ParseError{Pos: start, Line: l.line, Msg: "unterminated quoted label"}
		}
		if err != nil {
			return token{}, err
		}
		if b != '\'' {
			sb.WriteByte(b)
			continue
		}
		nb, err := l.readByte()
		if err == io.EOF {
			return token{kind: tokLabel, text: sb.String(), pos: start}, nil
		}
		if err != nil {
			return token{}, err
		}
		if nb == '\'' {
			sb.WriteByte('\'')
			continue
		}
		l.unreadByte()
		return token{kind: tokLabel, text: sb.String(), pos: start}, nil
	}
}

// lexBare consumes an unquoted label or number: a maximal run of bytes that
// are not structural characters, whitespace, or comment/quote openers.
// Underscores are decoded to spaces per the Newick convention.
func (l *lexer) lexBare() (token, error) {
	start := l.pos
	var sb strings.Builder
	for {
		b, err := l.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return token{}, err
		}
		if isStructural(b) {
			l.unreadByte()
			break
		}
		if b == '_' {
			sb.WriteByte(' ')
		} else {
			sb.WriteByte(b)
		}
	}
	text := sb.String()
	if text == "" {
		return token{}, &ParseError{Pos: start, Line: l.line, Msg: "empty label"}
	}
	return token{kind: tokLabel, text: text, pos: start}, nil
}

func isStructural(b byte) bool {
	switch b {
	case '(', ')', ',', ':', ';', '[', ']', '\'', ' ', '\t', '\n', '\r':
		return true
	}
	return false
}
