package distrib_test

import (
	"fmt"
	"log"

	"repro/internal/collection"
	"repro/internal/distrib"
	"repro/internal/newick"
	"repro/internal/tree"
)

func mustParse(newicks []string) []*tree.Tree {
	trees := make([]*tree.Tree, len(newicks))
	for i, s := range newicks {
		t, err := newick.Parse(s)
		if err != nil {
			log.Fatal(err)
		}
		trees[i] = t
	}
	return trees
}

// Example runs the full multi-node pipeline in one process: two workers
// on loopback TCP, a coordinator that shards the references across them,
// and a scatter-gather query whose folded result is exactly the
// single-node answer.
func Example() {
	// Two workers, as `bfhrfd -serve` would start them.
	w1, err := distrib.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer w1.Close()
	w2, err := distrib.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer w2.Close()

	coord, err := distrib.Dial([]string{w1.Addr().String(), w2.Addr().String()})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	refs := mustParse([]string{
		"((A,B),(C,D),E);",
		"((A,B),(C,E),D);",
		"((A,C),(B,D),E);",
		"((A,D),(B,C),E);",
	})
	src := collection.FromTrees(refs)
	ts, err := collection.ScanTaxa(src)
	if err != nil {
		log.Fatal(err)
	}
	coord.ChunkSize = 2 // 2 chunks: each worker holds half the references
	if err := coord.Load(src, ts, false); err != nil {
		log.Fatal(err)
	}

	queries := mustParse([]string{"((A,B),(C,D),E);"})
	results, err := coord.AverageRF(collection.FromTrees(queries))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("query %d: avgRF %.2f over %d workers\n", r.Index, r.AvgRF, coord.NumWorkers())
	}
	// Output:
	// query 0: avgRF 2.50 over 2 workers
}
