package distrib

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/rpc"
	"time"
)

// Retry policy for transient RPC failures. A distributed query crosses
// machine and network boundaries, so dial refusals, severed connections
// and per-RPC deadline expiries are expected events, not bugs; they are
// retried with capped exponential backoff plus jitter before the worker
// is declared dead and shard failover takes over (see coordinator.go).
// Application-level errors (a worker rejecting a malformed tree, a
// protocol violation) are never retried: repeating them cannot help and
// would mask the defect.

// RetryPolicy bounds the retry loop for one logical RPC.
//
// The zero value disables retries (a single attempt), which preserves the
// pre-fault-tolerance behaviour for callers that construct a Coordinator
// without configuring it.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the sleep before the first retry; each subsequent
	// retry doubles it. Defaults to 50ms when retries are enabled.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Defaults to 2s.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized (0..1) to
	// de-synchronize retry storms across coordinators. Defaults to 0.5;
	// set negative to disable jitter entirely.
	Jitter float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

// delay computes the backoff before retry number retry (0-based): base·2^retry
// capped at MaxDelay, with the top Jitter fraction randomized so that a
// fleet of coordinators retrying a recovering worker does not stampede it.
func (p RetryPolicy) delay(retry int) time.Duration {
	d := p.baseDelay()
	for i := 0; i < retry && d < p.maxDelay(); i++ {
		d *= 2
	}
	if d > p.maxDelay() {
		d = p.maxDelay()
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		// Scale into [1-jitter, 1]·d: never longer than the cap,
		// never a zero sleep.
		d = time.Duration(float64(d) * (1 - jitter*rand.Float64()))
		if d <= 0 {
			d = time.Millisecond
		}
	}
	return d
}

// errRPCTimeout marks a per-RPC deadline expiry (see Coordinator.RPCTimeout).
// It is transient: the worker may merely be slow, so the call is retried on
// a fresh connection.
var errRPCTimeout = errors.New("rpc deadline exceeded")

// errWorkerDead marks a worker the coordinator has given up on; calls
// against it fail immediately instead of burning a retry budget.
var errWorkerDead = errors.New("worker marked dead")

// IsTransient reports whether err is an infrastructure failure worth
// retrying: dial errors, timeouts, severed or shut-down connections.
// Application errors returned by a worker's RPC method (rpc.ServerError)
// and protocol violations are permanent.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var serverErr rpc.ServerError
	if errors.As(err, &serverErr) {
		return false
	}
	if errors.Is(err, errRPCTimeout) || errors.Is(err, rpc.ErrShutdown) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr)
}

// Do runs op under the policy, retrying transient failures with backoff
// until the attempt budget is exhausted or ctx is done. onRetry, if
// non-nil, is invoked before each retry (metrics, logging). The final
// error wraps the underlying failure so callers can still errors.Is/As it.
func Do(ctx context.Context, p RetryPolicy, onRetry func(retry int, err error), op func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	for attempt := 0; attempt < p.attempts(); attempt++ {
		if attempt > 0 {
			if onRetry != nil {
				onRetry(attempt-1, err)
			}
			t := time.NewTimer(p.delay(attempt - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("distrib: %w (last error: %w)", ctx.Err(), err)
			}
		}
		err = op()
		if err == nil || !IsTransient(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	if p.attempts() > 1 {
		return fmt.Errorf("distrib: failed after %d attempts: %w", p.attempts(), err)
	}
	return err
}
