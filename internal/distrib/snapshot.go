package distrib

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"math"

	"repro/internal/bfhtable"
	"repro/internal/core"
	"repro/internal/taxa"
)

// Shard snapshots: a compact, shard-aware binary serialization of a
// worker's partial frequency hash. A snapshot captures the hash itself —
// not the reference trees — so restoring costs one pass over the entries
// instead of a re-parse and re-extract of the shard's collection. Because
// entries are serialized as raw canonical mask words grouped by hash
// shard, the encoder walks the open-addressing table's arenas without
// materializing keys, and the layout is backend-independent on restore.
//
// Wire layout (all integers little-endian or uvarint):
//
//	magic   "BFS1"
//	flags   byte: bit0 weighted, bit1 compressed keys, bit2 open-addressing,
//	        bit3 succinct
//	trees   uvarint (r)
//	taxa    uvarint count, then per name: uvarint length + bytes
//	nw      uvarint words per key
//	shards  uvarint shard count
//	succinct only: dict uvarint count, then per prefix: uvarint length + bytes
//	per shard:
//	  entries uvarint
//	  per entry: key, uvarint freq, uvarint size,
//	             8-byte LE float64 bits of the length sum
//	  where key is nw × 8-byte LE words, or for succinct snapshots the
//	  compressed encoding as uvarint length + bytes
//
// The succinct backend ships its arena verbatim — compressed keys plus the
// shared-prefix dictionary — so a huge-n shard's snapshot shrinks with the
// same ratio as its in-memory table.

const snapshotMagic = "BFS1"

const (
	snapFlagWeighted   = 1 << 0
	snapFlagCompressed = 1 << 1
	snapFlagOpenAddr   = 1 << 2
	snapFlagSuccinct   = 1 << 3
)

// EncodeSnapshot serializes h into the snapshot wire format.
func EncodeSnapshot(h *core.FreqHash) ([]byte, error) {
	ts := h.Taxa()
	nw := (ts.Len() + 63) / 64
	buf := make([]byte, 0, 64+h.UniqueBipartitions()*(nw*8+6))
	buf = append(buf, snapshotMagic...)
	var flags byte
	if h.Weighted() {
		flags |= snapFlagWeighted
	}
	if h.Compressed() {
		flags |= snapFlagCompressed
	}
	if h.Backend() == core.BackendOpenAddressing {
		flags |= snapFlagOpenAddr
	}
	st := h.Succinct()
	if st != nil {
		flags |= snapFlagSuccinct
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(h.NumTrees()))
	names := ts.Names()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = binary.AppendUvarint(buf, uint64(len(n)))
		buf = append(buf, n...)
	}
	buf = binary.AppendUvarint(buf, uint64(nw))
	shards := h.NumShards()
	buf = binary.AppendUvarint(buf, uint64(shards))
	if st != nil {
		// Succinct fast path: ship the compressed arena as-is (dictionary
		// first, then per-shard encoded keys) instead of decoding every
		// mask back to nw raw words.
		dict := st.DictEntries()
		buf = binary.AppendUvarint(buf, uint64(len(dict)))
		for _, d := range dict {
			buf = binary.AppendUvarint(buf, uint64(len(d)))
			buf = append(buf, d...)
		}
		for s := 0; s < shards; s++ {
			count := 0
			st.RangeShardEncoded(s, func([]byte, bfhtable.Entry) bool {
				count++
				return true
			})
			buf = binary.AppendUvarint(buf, uint64(count))
			st.RangeShardEncoded(s, func(enc []byte, e bfhtable.Entry) bool {
				buf = binary.AppendUvarint(buf, uint64(len(enc)))
				buf = append(buf, enc...)
				buf = binary.AppendUvarint(buf, uint64(e.Freq))
				buf = binary.AppendUvarint(buf, uint64(e.Size))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.LengthSum))
				return true
			})
		}
		return buf, nil
	}
	for s := 0; s < shards; s++ {
		// Count first: the format is length-prefixed per shard.
		count := 0
		if err := h.RangeShardRaw(s, func([]uint64, bfhtable.Entry) bool {
			count++
			return true
		}); err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(count))
		if err := h.RangeShardRaw(s, func(words []uint64, e bfhtable.Entry) bool {
			for _, w := range words {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
			buf = binary.AppendUvarint(buf, uint64(e.Freq))
			buf = binary.AppendUvarint(buf, uint64(e.Size))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.LengthSum))
			return true
		}); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// snapReader walks a snapshot buffer with explicit bounds checking.
type snapReader struct {
	buf []byte
	off int
}

func (r *snapReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, fmt.Errorf("distrib: truncated snapshot at offset %d", r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *snapReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("distrib: corrupt snapshot varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *snapReader) uint64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// DecodeSnapshot reassembles a hash from the wire format. The restored
// hash keeps the snapshot's backend and key scheme.
func DecodeSnapshot(data []byte) (*core.FreqHash, error) {
	r := &snapReader{buf: data}
	magic, err := r.bytes(len(snapshotMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("distrib: bad snapshot magic %q", magic)
	}
	fb, err := r.bytes(1)
	if err != nil {
		return nil, err
	}
	flags := fb[0]
	trees, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nNames, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	names := make([]string, nNames)
	for i := range names {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(int(l))
		if err != nil {
			return nil, err
		}
		names[i] = string(b)
	}
	ts, err := taxa.NewOrderedSet(names)
	if err != nil {
		return nil, fmt.Errorf("distrib: snapshot catalogue: %w", err)
	}
	nw, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if want := uint64((ts.Len() + 63) / 64); nw != want {
		return nil, fmt.Errorf("distrib: snapshot has %d words per key, catalogue needs %d", nw, want)
	}
	shards, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	backend := core.BackendMap
	switch {
	case flags&snapFlagSuccinct != 0:
		backend = core.BackendSuccinct
	case flags&snapFlagOpenAddr != 0:
		backend = core.BackendOpenAddressing
	}
	var dict [][]byte
	if flags&snapFlagSuccinct != 0 {
		nDict, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		dict = make([][]byte, nDict)
		for i := range dict {
			l, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			b, err := r.bytes(int(l))
			if err != nil {
				return nil, err
			}
			dict[i] = b
		}
	}
	rest, err := core.NewRestorer(core.RestoreSpec{
		Taxa:         ts,
		NumTrees:     int(trees),
		Weighted:     flags&snapFlagWeighted != 0,
		CompressKeys: flags&snapFlagCompressed != 0,
		Backend:      backend,
		HashShards:   int(shards),
	})
	if err != nil {
		return nil, err
	}
	words := make([]uint64, nw)
	var scratch []byte
	for s := uint64(0); s < shards; s++ {
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < count; i++ {
			if flags&snapFlagSuccinct != 0 {
				l, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				enc, err := r.bytes(int(l))
				if err != nil {
					return nil, err
				}
				scratch, err = bfhtable.DecodeKeyWithDict(words, enc, dict, scratch, ts.Len())
				if err != nil {
					return nil, fmt.Errorf("distrib: snapshot key: %w", err)
				}
			} else {
				for w := range words {
					words[w], err = r.uint64()
					if err != nil {
						return nil, err
					}
				}
			}
			freq, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			size, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			lenBits, err := r.uint64()
			if err != nil {
				return nil, err
			}
			if err := rest.AddEntry(words, bfhtable.Entry{
				Freq:      uint32(freq),
				Size:      uint32(size),
				LengthSum: math.Float64frombits(lenBits),
			}); err != nil {
				return nil, err
			}
		}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("distrib: %d trailing snapshot bytes", len(data)-r.off)
	}
	return rest.Finish()
}

// SnapshotArgs request a worker's shard snapshot.
type SnapshotArgs struct{}

// SnapshotReply carries the serialized shard.
type SnapshotReply struct {
	Data []byte
	// Trees and Unique describe the snapshotted shard, for logging and
	// coordinator sanity checks.
	Trees  int
	Unique int
}

// Snapshot serializes the worker's partial hash. Used for checkpointing a
// shard and for migrating it to a replacement worker without re-shipping
// and re-parsing the reference trees.
func (w *Worker) Snapshot(args SnapshotArgs, reply *SnapshotReply) error {
	return observeRPC(sideWorker, "Snapshot", func() error { return w.snapshot(args, reply) })
}

func (w *Worker) snapshot(_ SnapshotArgs, reply *SnapshotReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hash == nil {
		return fmt.Errorf("distrib: nothing to snapshot: no reference chunk loaded")
	}
	data, err := EncodeSnapshot(w.hash)
	if err != nil {
		return err
	}
	reply.Data = data
	reply.Trees = w.hash.NumTrees()
	reply.Unique = w.hash.UniqueBipartitions()
	slog.Debug("shard snapshot encoded",
		"bytes", len(data), "trees", reply.Trees, "unique", reply.Unique)
	return nil
}

// RestoreArgs carry a snapshot to install on a worker.
type RestoreArgs struct {
	Data []byte
}

// Restore replaces the worker's shard state with the decoded snapshot,
// including its taxon catalogue — the receiving half of a migration.
func (w *Worker) Restore(args RestoreArgs, reply *LoadReply) error {
	return observeRPC(sideWorker, "Restore", func() error { return w.restore(args, reply) })
}

func (w *Worker) restore(args RestoreArgs, reply *LoadReply) error {
	h, err := DecodeSnapshot(args.Data)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.taxa = h.Taxa()
	w.hash = h
	w.compress = h.Compressed()
	w.adopted = nil
	reply.ShardTrees = h.NumTrees()
	reply.ShardUnique = h.UniqueBipartitions()
	slog.Debug("shard restored from snapshot",
		"bytes", len(args.Data), "trees", reply.ShardTrees, "unique", reply.ShardUnique)
	return nil
}

// AdoptArgs carry an orphaned shard (a dead worker's checkpoint) to a
// surviving worker during failover.
type AdoptArgs struct {
	// ShardID identifies the orphaned shard (the dead worker's index at
	// the coordinator). Adoption is idempotent per ID: a retried Adopt
	// after a lost reply cannot double-count the shard.
	ShardID int
	// Data is the shard's snapshot in the wire format above.
	Data []byte
}

// Adopt merges an orphaned shard into the worker's own partition — the
// receiving half of failover. Unlike Restore it adds to the current shard
// instead of replacing it: freq[b] = Σ_s freq_s[b] is associative, so the
// merged partition answers for both shards at once and the global fold
// stays exact.
func (w *Worker) Adopt(args AdoptArgs, reply *LoadReply) error {
	return observeRPC(sideWorker, "Adopt", func() error { return w.adopt(args, reply) })
}

func (w *Worker) adopt(args AdoptArgs, reply *LoadReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	stats := func() {
		if w.hash != nil {
			reply.ShardTrees = w.hash.NumTrees()
			reply.ShardUnique = w.hash.UniqueBipartitions()
		}
	}
	if w.adopted[args.ShardID] {
		stats()
		slog.Debug("duplicate adoption ignored", "shard", args.ShardID)
		return nil
	}
	orphan, err := DecodeSnapshot(args.Data)
	if err != nil {
		return err
	}
	if w.hash == nil {
		// Fresh or empty worker: the orphan becomes its whole partition.
		w.taxa = orphan.Taxa()
		w.hash = orphan
		w.compress = orphan.Compressed()
	} else {
		merged, err := mergeHashes(w.hash, orphan)
		if err != nil {
			return err
		}
		w.hash = merged
	}
	if w.adopted == nil {
		w.adopted = make(map[int]bool)
	}
	w.adopted[args.ShardID] = true
	stats()
	slog.Info("orphaned shard adopted",
		"shard", args.ShardID, "bytes", len(args.Data),
		"shard_trees", reply.ShardTrees, "shard_unique", reply.ShardUnique)
	return nil
}

// mergeHashes folds two partial frequency hashes over the same taxon
// catalogue into one: frequencies add, tree counts add, and the result
// keeps a's backend and key scheme. This is the shard-merge primitive
// behind failover.
func mergeHashes(a, b *core.FreqHash) (*core.FreqHash, error) {
	an, bn := a.Taxa().Names(), b.Taxa().Names()
	if len(an) != len(bn) {
		return nil, fmt.Errorf("distrib: cannot merge shards over different catalogues (%d vs %d taxa)", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			return nil, fmt.Errorf("distrib: cannot merge shards: catalogues disagree at position %d (%q vs %q)", i, an[i], bn[i])
		}
	}
	rest, err := core.NewRestorer(core.RestoreSpec{
		Taxa:         a.Taxa(),
		NumTrees:     a.NumTrees() + b.NumTrees(),
		Weighted:     a.Weighted() || b.Weighted(),
		CompressKeys: a.Compressed(),
		Backend:      a.Backend(),
		HashShards:   a.NumShards(),
	})
	if err != nil {
		return nil, err
	}
	for _, h := range []*core.FreqHash{a, b} {
		for s := 0; s < h.NumShards(); s++ {
			var addErr error
			if err := h.RangeShardRaw(s, func(words []uint64, e bfhtable.Entry) bool {
				addErr = rest.AddEntry(words, e)
				return addErr == nil
			}); err != nil {
				return nil, err
			}
			if addErr != nil {
				return nil, addErr
			}
		}
	}
	return rest.Finish()
}
