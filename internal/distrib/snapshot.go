package distrib

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"

	"repro/internal/bfhsnap"
	"repro/internal/bfhtable"
	"repro/internal/core"
	"repro/internal/taxa"
)

// Shard snapshots: a worker's partial frequency hash, serialized in the
// shared bfhsnap stream format (see FORMATS.md). A snapshot captures the
// hash itself — not the reference trees — so restoring costs one pass
// over the storage instead of a re-parse and re-extract of the shard's
// collection. Both sides stream: the encoder walks the table arenas
// section by section and the decoder installs each section as it
// arrives, so neither holds more than one section's payload beyond the
// transport buffer itself.
//
// Snapshots travel two ways. Over RPC (checkpointing, migration,
// failover) the stream rides in a []byte because net/rpc frames whole
// messages. On a shared filesystem the coordinator persists worker
// snapshots as a worker-layout bfhsnap epoch (SaveSnapshotsContext) and
// workers re-open the part files directly (RestoreArgs.Path), skipping
// the RPC byte ship entirely.

// EncodeSnapshot serializes h into the bfhsnap stream format. Callers
// with an io.Writer at hand should prefer bfhsnap.WriteStream, which
// streams; this materializes the stream for RPC transport.
func EncodeSnapshot(h *core.FreqHash) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := bfhsnap.WriteStream(&buf, h, 0, h.NumShards()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot reassembles a hash from the stream format. The restored
// hash keeps the snapshot's backend and key scheme.
func DecodeSnapshot(data []byte) (*core.FreqHash, error) {
	h, _, err := bfhsnap.ReadStream(bytes.NewReader(data), int64(len(data)))
	return h, err
}

// SnapshotArgs request a worker's shard snapshot.
type SnapshotArgs struct{}

// SnapshotReply carries the serialized shard.
type SnapshotReply struct {
	Data []byte
	// Trees and Unique describe the snapshotted shard, for logging and
	// coordinator sanity checks.
	Trees  int
	Unique int
}

// Snapshot serializes the worker's partial hash. Used for checkpointing a
// shard and for migrating it to a replacement worker without re-shipping
// and re-parsing the reference trees.
func (w *Worker) Snapshot(args SnapshotArgs, reply *SnapshotReply) error {
	return observeRPC(sideWorker, "Snapshot", func() error { return w.snapshot(args, reply) })
}

func (w *Worker) snapshot(_ SnapshotArgs, reply *SnapshotReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hash == nil {
		return fmt.Errorf("distrib: nothing to snapshot: no reference chunk loaded")
	}
	data, err := EncodeSnapshot(w.hash)
	if err != nil {
		return err
	}
	reply.Data = data
	reply.Trees = w.hash.NumTrees()
	reply.Unique = w.hash.UniqueBipartitions()
	slog.Debug("shard snapshot encoded",
		"bytes", len(data), "trees", reply.Trees, "unique", reply.Unique)
	return nil
}

// RestoreArgs carry a snapshot to install on a worker. When Path is set
// the worker streams the snapshot straight from that file (the workers
// share a filesystem with the coordinator — the epoch-store case) and
// Data may be left empty; otherwise Data holds the serialized stream.
type RestoreArgs struct {
	Data []byte
	Path string
}

// Restore replaces the worker's shard state with the decoded snapshot,
// including its taxon catalogue — the receiving half of a migration.
func (w *Worker) Restore(args RestoreArgs, reply *LoadReply) error {
	return observeRPC(sideWorker, "Restore", func() error { return w.restore(args, reply) })
}

func (w *Worker) restore(args RestoreArgs, reply *LoadReply) error {
	var h *core.FreqHash
	var err error
	switch {
	case args.Path != "":
		h, _, err = bfhsnap.LoadFile(args.Path)
		if err != nil && len(args.Data) > 0 {
			// The worker may not share the coordinator's filesystem; fall
			// back to the shipped bytes.
			h, err = DecodeSnapshot(args.Data)
		}
	case len(args.Data) > 0:
		h, err = DecodeSnapshot(args.Data)
	default:
		return fmt.Errorf("distrib: restore request carries neither path nor data")
	}
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.taxa = h.Taxa()
	w.hash = h
	w.compress = h.Compressed()
	w.adopted = nil
	reply.ShardTrees = h.NumTrees()
	reply.ShardUnique = h.UniqueBipartitions()
	slog.Debug("shard restored from snapshot",
		"path", args.Path, "bytes", len(args.Data),
		"trees", reply.ShardTrees, "unique", reply.ShardUnique)
	return nil
}

// AdoptArgs carry an orphaned shard (a dead worker's checkpoint) to a
// surviving worker during failover.
type AdoptArgs struct {
	// ShardID identifies the orphaned shard (the dead worker's index at
	// the coordinator). Adoption is idempotent per ID: a retried Adopt
	// after a lost reply cannot double-count the shard.
	ShardID int
	// Data is the shard's snapshot in the stream format above.
	Data []byte
}

// Adopt merges an orphaned shard into the worker's own partition — the
// receiving half of failover. Unlike Restore it adds to the current shard
// instead of replacing it: freq[b] = Σ_s freq_s[b] is associative, so the
// merged partition answers for both shards at once and the global fold
// stays exact.
func (w *Worker) Adopt(args AdoptArgs, reply *LoadReply) error {
	return observeRPC(sideWorker, "Adopt", func() error { return w.adopt(args, reply) })
}

func (w *Worker) adopt(args AdoptArgs, reply *LoadReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	stats := func() {
		if w.hash != nil {
			reply.ShardTrees = w.hash.NumTrees()
			reply.ShardUnique = w.hash.UniqueBipartitions()
		}
	}
	if w.adopted[args.ShardID] {
		stats()
		slog.Debug("duplicate adoption ignored", "shard", args.ShardID)
		return nil
	}
	orphan, err := DecodeSnapshot(args.Data)
	if err != nil {
		return err
	}
	if w.hash == nil {
		// Fresh or empty worker: the orphan becomes its whole partition.
		w.taxa = orphan.Taxa()
		w.hash = orphan
		w.compress = orphan.Compressed()
	} else {
		merged, err := mergeHashes(w.hash, orphan)
		if err != nil {
			return err
		}
		w.hash = merged
	}
	if w.adopted == nil {
		w.adopted = make(map[int]bool)
	}
	w.adopted[args.ShardID] = true
	stats()
	slog.Info("orphaned shard adopted",
		"shard", args.ShardID, "bytes", len(args.Data),
		"shard_trees", reply.ShardTrees, "shard_unique", reply.ShardUnique)
	return nil
}

// mergeHashes folds two partial frequency hashes over the same taxon
// catalogue into one: frequencies add, tree counts add, and the result
// keeps a's backend and key scheme. This is the shard-merge primitive
// behind failover.
func mergeHashes(a, b *core.FreqHash) (*core.FreqHash, error) {
	an, bn := a.Taxa().Names(), b.Taxa().Names()
	if len(an) != len(bn) {
		return nil, fmt.Errorf("distrib: cannot merge shards over different catalogues (%d vs %d taxa)", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			return nil, fmt.Errorf("distrib: cannot merge shards: catalogues disagree at position %d (%q vs %q)", i, an[i], bn[i])
		}
	}
	rest, err := core.NewRestorer(core.RestoreSpec{
		Taxa:         a.Taxa(),
		NumTrees:     a.NumTrees() + b.NumTrees(),
		Weighted:     a.Weighted() || b.Weighted(),
		CompressKeys: a.Compressed(),
		Backend:      a.Backend(),
		HashShards:   a.NumShards(),
	})
	if err != nil {
		return nil, err
	}
	for _, h := range []*core.FreqHash{a, b} {
		for s := 0; s < h.NumShards(); s++ {
			var addErr error
			if err := h.RangeShardRaw(s, func(words []uint64, e bfhtable.Entry) bool {
				addErr = rest.AddEntry(words, e)
				return addErr == nil
			}); err != nil {
				return nil, err
			}
			if addErr != nil {
				return nil, addErr
			}
		}
	}
	return rest.Finish()
}

// SaveSnapshotsContext persists the cluster's loaded reference collection
// as a worker-layout epoch under dir: one part file per non-empty worker,
// each a complete bfhsnap stream of that worker's partial hash. Workers
// are snapshotted one at a time and streamed straight to the staging
// directory, so the coordinator holds at most one shard's bytes. Returns
// the published epoch number.
func (c *Coordinator) SaveSnapshotsContext(ctx context.Context, dir string) (int, error) {
	if c.taxa == nil || c.r == 0 {
		return 0, fmt.Errorf("distrib: nothing to save: load references first")
	}
	store, err := bfhsnap.Open(dir)
	if err != nil {
		return 0, err
	}
	var workers []int
	for _, i := range c.liveIndexes() {
		if c.slot(i).trees > 0 {
			workers = append(workers, i)
		}
	}
	if len(workers) == 0 {
		return 0, fmt.Errorf("distrib: no live worker holds a shard")
	}
	man := &bfhsnap.Manifest{
		Backend:     c.Backend.String(),
		Trees:       c.r,
		Sum:         c.sum,
		Taxa:        c.taxa.Len(),
		Shards:      c.HashShards,
		Fingerprint: c.fp,
	}
	// Shard count, key scheme and weighted totals are worker-side facts;
	// each writer folds its part's header into the manifest as it streams
	// (PublishWorkerEpoch runs writers before serializing MANIFEST).
	var lenSum float64
	writers := make([]func(io.Writer) error, 0, len(workers))
	for _, i := range workers {
		i := i
		writers = append(writers, func(w io.Writer) error {
			var reply SnapshotReply
			if err := c.call(ctx, i, "Snapshot", SnapshotArgs{}, &reply); err != nil {
				return fmt.Errorf("distrib: snapshotting worker %d: %w", i, err)
			}
			hdr, err := bfhsnap.ReadHeader(bytes.NewReader(reply.Data), int64(len(reply.Data)))
			if err != nil {
				return fmt.Errorf("distrib: worker %d snapshot: %w", i, err)
			}
			man.Shards = hdr.Shards
			man.Compressed = hdr.Comp
			man.Weighted = man.Weighted || hdr.Weighted
			lenSum += hdr.LenSum
			man.LenSumBits = math.Float64bits(lenSum)
			if _, err := w.Write(reply.Data); err != nil {
				return err
			}
			return nil
		})
	}
	n, err := store.PublishWorkerEpoch(man, writers)
	if err != nil {
		return 0, err
	}
	slog.Info("cluster snapshot published", "dir", dir, "epoch", n,
		"parts", len(workers), "trees", c.r)
	return n, nil
}

// LoadSnapshotContext restores the cluster from the current worker-layout
// epoch under dir, installing one part per worker (parts beyond the
// worker count are merged onto workers round-robin). Workers that share
// the coordinator's filesystem stream the part files directly; others
// get the bytes over RPC. Replaces any previously loaded references.
func (c *Coordinator) LoadSnapshotContext(ctx context.Context, dir string) error {
	if c.NumWorkers() == 0 {
		return fmt.Errorf("distrib: no workers")
	}
	store, err := bfhsnap.Open(dir)
	if err != nil {
		return err
	}
	cur := store.Current()
	if cur == 0 {
		return fmt.Errorf("distrib: %s holds no published epoch", dir)
	}
	man, err := store.Manifest(cur)
	if err != nil {
		return err
	}
	if man.Layout != bfhsnap.LayoutWorker {
		return fmt.Errorf("distrib: epoch %d has %q layout (a single-node snapshot); load it with bfhrf", cur, man.Layout)
	}
	hdr0, err := bfhsnap.ReadHeaderFile(store.PartPath(cur, man.Parts[0]))
	if err != nil {
		return err
	}
	ts, err := taxa.NewOrderedSet(hdr0.TaxaNames)
	if err != nil {
		return fmt.Errorf("distrib: epoch %d catalogue: %w", cur, err)
	}
	c.taxa = ts
	n := c.NumWorkers()
	for p, part := range man.Parts {
		path, err := filepath.Abs(store.PartPath(cur, part))
		if err != nil {
			return err
		}
		target := p % n
		var reply LoadReply
		if p < n {
			// First part on this worker: replace its shard. Try the shared
			// filesystem first; on failure re-send with the bytes inline.
			if err := c.call(ctx, target, "Restore", RestoreArgs{Path: path}, &reply); err != nil {
				data, rerr := readPartBytes(path)
				if rerr != nil {
					return fmt.Errorf("distrib: restoring worker %d: %w", target, err)
				}
				if err := c.call(ctx, target, "Restore", RestoreArgs{Data: data}, &reply); err != nil {
					return fmt.Errorf("distrib: restoring worker %d: %w", target, err)
				}
			}
		} else {
			// More parts than workers: fold the extras in round-robin.
			data, err := readPartBytes(path)
			if err != nil {
				return err
			}
			if err := c.call(ctx, target, "Adopt", AdoptArgs{ShardID: -1 - p, Data: data}, &reply); err != nil {
				return fmt.Errorf("distrib: merging part %d onto worker %d: %w", p, target, err)
			}
		}
	}
	// Re-fold global totals from the restored cluster, as Load does.
	c.sum, c.r = 0, 0
	for i := 0; i < n; i++ {
		var reply QueryReply
		if err := c.call(ctx, i, "Query", QueryArgs{}, &reply); err != nil {
			return fmt.Errorf("distrib: probing worker %d: %w", i, err)
		}
		c.sum += reply.ShardSum
		c.r += reply.ShardTrees
		c.slot(i).trees = reply.ShardTrees
	}
	if man.Trees != 0 && c.r != man.Trees {
		return fmt.Errorf("distrib: restored cluster holds %d trees, epoch %d declares %d", c.r, cur, man.Trees)
	}
	c.fp = fingerprint(ts, c.r, c.sum)
	if man.Fingerprint != 0 && c.fp != man.Fingerprint {
		return fmt.Errorf("distrib: restored fingerprint %016x, epoch %d declares %016x", c.fp, cur, man.Fingerprint)
	}
	if err := c.checkpoint(ctx); err != nil {
		return err
	}
	slog.Info("cluster restored from snapshot", "dir", dir, "epoch", cur,
		"parts", len(man.Parts), "trees", c.r)
	return nil
}

func readPartBytes(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	return b, nil
}
