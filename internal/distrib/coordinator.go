package distrib

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/newick"
	"repro/internal/obs"
	"repro/internal/taxa"
)

// workerSlot is the coordinator's book-keeping for one worker: its
// connection, the coordinator's health verdict, and the post-load shard
// checkpoint that makes failover possible without re-shipping trees.
type workerSlot struct {
	addr   string
	client *rpc.Client
	state  WorkerState
	// fails counts consecutive health-check failures (see health.go).
	fails int
	// trees is the shard's reference tree count, fixed by Load's probe.
	trees int
	// snapshot is the shard checkpoint taken after Load (nil for empty
	// shards and when failover is disabled).
	snapshot []byte
	// orphaned marks a dead worker whose non-empty shard has not been
	// re-homed yet.
	orphaned bool
}

// Coordinator shards a reference collection across workers and answers
// average-RF queries by scatter-gather. It tolerates worker failure: RPCs
// carry deadlines, transient errors are retried with backoff, and a dead
// worker's shard is re-dispatched to a healthy worker from the post-load
// checkpoint (or, with PartialResults, the query degrades and reports its
// coverage).
type Coordinator struct {
	mu    sync.Mutex
	slots []*workerSlot
	taxa  *taxa.Set
	// sum and r are the folded global totals, fixed after Load.
	sum uint64
	r   int
	// fp is the reference-collection fingerprint, fixed after Load (see
	// Fingerprint).
	fp uint64
	// ChunkSize is the number of reference trees per Load RPC (default 512).
	ChunkSize int
	// BatchSize is the number of query trees per Query RPC (default 256).
	BatchSize int
	// Backend selects every shard's hash engine (BackendAuto by default).
	Backend core.Backend
	// HashShards overrides each shard's open-addressing internal shard
	// count (0 = worker default).
	HashShards int

	// RPCTimeout is the per-RPC deadline. On expiry the connection is
	// considered poisoned (net/rpc cannot cancel an in-flight call), the
	// call fails with a transient error and is retried on a fresh dial.
	// 0 means no deadline.
	RPCTimeout time.Duration
	// Retry bounds the backoff loop around every RPC. The zero value
	// means a single attempt.
	Retry RetryPolicy
	// PartialResults selects the degraded-results policy: instead of
	// re-dispatching a dead worker's shard (fail-fast mode, the default),
	// answer from the shards that responded and report the coverage in
	// the Outcome and in bfhrf_query_shard_coverage.
	PartialResults bool
	// NoFailover disables shard re-dispatch and post-load checkpoints; a
	// dead worker then fails the query (unless PartialResults is set).
	NoFailover bool
	// DeadAfter is the number of consecutive health-check failures after
	// which the health loop declares a worker dead (default 3). The first
	// failure marks it suspect.
	DeadAfter int
	// Cache, when set, is the coordinator-side topology-fingerprint result
	// cache: each query tree is fingerprinted before scatter, an exact
	// topological repeat of an earlier full-coverage answer is emitted
	// without touching any worker, and repeats within one batch are
	// deduplicated so only distinct topologies go over the wire. Results
	// from degraded (coverage < 1) batches are never cached.
	Cache *core.QueryCache
}

// Outcome is the result of one AverageRF run plus its fault-tolerance
// annotations.
type Outcome struct {
	// Results are the per-query averages, in query order.
	Results []core.Result
	// Coverage is the minimum, over query batches, of the fraction of
	// reference trees whose shards answered. 1 means every result is
	// exact; lower values only occur with PartialResults.
	Coverage float64
	// Partial reports whether any batch was answered from a strict
	// subset of the shards.
	Partial bool
	// Failovers counts shards successfully re-dispatched during the run.
	Failovers int
	// DeadWorkers lists addresses declared dead during the run.
	DeadWorkers []string
}

// Dial connects to worker addresses ("host:port"). Each address is tried
// once; wrap Dial in Do with a RetryPolicy to ride out workers that are
// still starting.
func Dial(addrs []string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distrib: no worker addresses")
	}
	c := &Coordinator{ChunkSize: 512, BatchSize: 256}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			rpcErrors(obs.L("side", sideCoordinator), obs.L("method", "Dial"), obs.L("worker", addr)).Inc()
			c.Close()
			return nil, fmt.Errorf("distrib: dialing %s: %w", addr, err)
		}
		c.slots = append(c.slots, &workerSlot{
			addr:   addr,
			client: rpc.NewClient(meterConn(conn, sideCoordinator)),
		})
		workerStateGauge(addr).Set(float64(StateHealthy))
	}
	slog.Debug("coordinator connected", "workers", len(c.slots))
	return c, nil
}

// Close releases every worker connection.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, s := range c.slots {
		if s.client != nil {
			if err := s.client.Close(); err != nil && first == nil {
				first = err
			}
			s.client = nil
		}
	}
	c.slots = nil
	return first
}

// NumWorkers returns the number of dialed shards, dead or alive.
func (c *Coordinator) NumWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slots)
}

// AliveWorkers returns how many workers are not declared dead.
func (c *Coordinator) AliveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.slots {
		if s.state != StateDead {
			n++
		}
	}
	return n
}

// Addrs returns the dialed worker addresses.
func (c *Coordinator) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, len(c.slots))
	for i, s := range c.slots {
		addrs[i] = s.addr
	}
	return addrs
}

// slot returns the i-th worker slot (stable for the coordinator's life).
func (c *Coordinator) slot(i int) *workerSlot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slots[i]
}

// clientOf returns a live client for worker i, redialing if the previous
// connection was poisoned. Fails fast on workers already declared dead.
func (c *Coordinator) clientOf(i int) (*rpc.Client, error) {
	c.mu.Lock()
	s := c.slots[i]
	if s.state == StateDead {
		c.mu.Unlock()
		return nil, fmt.Errorf("distrib: %s: %w", s.addr, errWorkerDead)
	}
	if cl := s.client; cl != nil {
		c.mu.Unlock()
		return cl, nil
	}
	addr := s.addr
	c.mu.Unlock()

	var conn net.Conn
	var err error
	if c.RPCTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, c.RPCTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		rpcErrors(obs.L("side", sideCoordinator), obs.L("method", "Dial"), obs.L("worker", addr)).Inc()
		return nil, fmt.Errorf("distrib: redialing %s: %w", addr, err)
	}
	cl := rpc.NewClient(meterConn(conn, sideCoordinator))
	c.mu.Lock()
	if s.client == nil {
		s.client = cl
	} else {
		// A concurrent caller redialed first; use theirs.
		cl.Close()
		cl = s.client
	}
	c.mu.Unlock()
	slog.Debug("worker redialed", "worker", addr)
	return cl, nil
}

// invalidate drops a poisoned client so the next attempt redials.
func (c *Coordinator) invalidate(i int, cl *rpc.Client) {
	c.mu.Lock()
	s := c.slots[i]
	if s.client == cl {
		s.client = nil
	}
	c.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// callOnce executes one RPC against worker i with full instrumentation:
// per-worker latency histogram, error counter, in-flight gauge, and the
// per-RPC deadline. On deadline expiry or context cancellation the
// connection is closed — net/rpc cannot abandon a single in-flight call —
// so the retry layer redials.
func (c *Coordinator) callOnce(ctx context.Context, i int, method string, args, reply any) error {
	if ferr := faultinject.Hit(faultinject.PointRPCSend); ferr != nil {
		// An injected send fault stands in for a network failure before the
		// bytes leave the coordinator. Transient plans wrap
		// io.ErrUnexpectedEOF, so IsTransient routes them through the same
		// retry/failover machinery a real severed connection takes.
		addr := c.slot(i).addr
		rpcErrors(obs.L("side", sideCoordinator), obs.L("method", method), obs.L("worker", addr)).Inc()
		return fmt.Errorf("distrib: %s to %s: %w", method, addr, ferr)
	}
	cl, err := c.clientOf(i)
	if err != nil {
		return err
	}
	addr := c.slot(i).addr
	inflight := rpcInflight(sideCoordinator)
	inflight.Inc()
	start := time.Now()

	call := cl.Go("BFHRF."+method, args, reply, make(chan *rpc.Call, 1))
	var timeout <-chan time.Time
	if c.RPCTimeout > 0 {
		t := time.NewTimer(c.RPCTimeout)
		defer t.Stop()
		timeout = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-call.Done:
		err = call.Error
	case <-timeout:
		c.invalidate(i, cl)
		err = fmt.Errorf("distrib: %s to %s after %v: %w", method, addr, c.RPCTimeout, errRPCTimeout)
	case <-done:
		c.invalidate(i, cl)
		err = ctx.Err()
	}

	rpcLatency(obs.L("side", sideCoordinator), obs.L("method", method), obs.L("worker", addr)).
		Observe(time.Since(start).Seconds())
	if err != nil {
		rpcErrors(obs.L("side", sideCoordinator), obs.L("method", method), obs.L("worker", addr)).Inc()
	}
	inflight.Dec()
	return err
}

// call executes one RPC against worker i with retry-on-transient: each
// failed attempt drops the (possibly poisoned) connection so the next
// attempt redials the worker.
func (c *Coordinator) call(ctx context.Context, i int, method string, args, reply any) error {
	addr := c.slot(i).addr
	return Do(ctx, c.Retry,
		func(retry int, err error) {
			rpcRetries(method, addr).Inc()
			// Do invokes the hook in the calling goroutine, which is the
			// goroutine that started the span in ctx (if any) — so SetAttr's
			// owner-only rule holds. Last write wins: the attribute ends up
			// as the total retry count.
			obs.SpanFromContext(ctx).SetAttr("retries", retry+1)
			slog.Debug("retrying rpc", "method", method, "worker", addr, "retry", retry+1, "error", err)
		},
		func() error {
			err := c.callOnce(ctx, i, method, args, reply)
			if err != nil && IsTransient(err) {
				c.mu.Lock()
				cl := c.slots[i].client
				c.mu.Unlock()
				c.invalidate(i, cl)
			}
			return err
		})
}

// markDead declares worker i unrecoverable: its connection is dropped,
// bfhrf_worker_state flips to 2, and a non-empty shard becomes an orphan
// awaiting failover.
func (c *Coordinator) markDead(i int, cause error) {
	c.mu.Lock()
	s := c.slots[i]
	alreadyDead := s.state == StateDead
	s.state = StateDead
	if s.trees > 0 {
		s.orphaned = true
	}
	cl := s.client
	s.client = nil
	c.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
	if !alreadyDead {
		workerStateGauge(s.addr).Set(float64(StateDead))
		slog.Warn("worker declared dead", "worker", s.addr, "shard_trees", s.trees, "cause", cause)
	}
}

// liveIndexes snapshots the indexes of workers not declared dead.
func (c *Coordinator) liveIndexes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var live []int
	for i, s := range c.slots {
		if s.state != StateDead {
			live = append(live, i)
		}
	}
	return live
}

// Load initializes every worker with the catalogue and distributes the
// reference collection round-robin in chunks. It must be called once
// before Query.
func (c *Coordinator) Load(refs collection.Source, ts *taxa.Set, compress bool) error {
	return c.LoadContext(context.Background(), refs, ts, compress)
}

// LoadContext is Load with cancellation: ctx bounds every RPC of the load
// phase. A worker failure during load is fatal — failover only covers the
// query phase, because a half-loaded shard has no checkpoint to re-home.
func (c *Coordinator) LoadContext(ctx context.Context, refs collection.Source, ts *taxa.Set, compress bool) error {
	if c.NumWorkers() == 0 {
		return fmt.Errorf("distrib: no workers")
	}
	ctx, span := obs.StartSpan(ctx, "coord.load")
	defer span.End()
	c.taxa = ts
	init := InitArgs{
		TaxaNames:    ts.Names(),
		CompressKeys: compress,
		Backend:      c.Backend.String(),
		HashShards:   c.HashShards,
	}
	n := c.NumWorkers()
	for i := 0; i < n; i++ {
		var reply LoadReply
		if err := c.call(ctx, i, "Init", init, &reply); err != nil {
			return fmt.Errorf("distrib: init worker %d: %w", i, err)
		}
	}
	if err := refs.Reset(); err != nil {
		return err
	}
	chunk := make([]string, 0, c.chunkSize())
	target := 0
	var seq uint64
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		seq++
		var reply LoadReply
		err := c.call(ctx, target, "Load", LoadArgs{Newicks: chunk, Seq: seq}, &reply)
		if err != nil {
			return fmt.Errorf("distrib: load worker %d: %w", target, err)
		}
		slog.Debug("chunk distributed", "worker", c.slot(target).addr,
			"chunk", len(chunk), "shard_trees", reply.ShardTrees, "shard_unique", reply.ShardUnique)
		target = (target + 1) % n
		chunk = chunk[:0]
		return nil
	}
	total := 0
	for {
		t, err := refs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		chunk = append(chunk, newick.String(t, newick.WriteOptions{BranchLengths: true}))
		total++
		if len(chunk) >= c.chunkSize() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("distrib: reference collection is empty")
	}
	// Fold global totals with an empty probe query, and remember each
	// shard's size — the denominator of the coverage arithmetic.
	c.sum, c.r = 0, 0
	for i := 0; i < n; i++ {
		var reply QueryReply
		if err := c.call(ctx, i, "Query", QueryArgs{}, &reply); err != nil {
			return fmt.Errorf("distrib: probing worker %d: %w", i, err)
		}
		c.sum += reply.ShardSum
		c.r += reply.ShardTrees
		c.slot(i).trees = reply.ShardTrees
	}
	if c.r != total {
		return fmt.Errorf("distrib: workers report %d trees, loaded %d", c.r, total)
	}
	c.fp = fingerprint(ts, c.r, c.sum)
	if err := c.checkpoint(ctx); err != nil {
		return err
	}
	slog.Info("references loaded", "trees", total, "workers", n, "sum", c.sum)
	return nil
}

// checkpoint snapshots every non-empty shard so a dead worker's partition
// can be re-dispatched without re-shipping or re-parsing reference trees.
// Skipped when failover is disabled.
func (c *Coordinator) checkpoint(ctx context.Context) error {
	if c.NoFailover {
		return nil
	}
	n := c.NumWorkers()
	for i := 0; i < n; i++ {
		s := c.slot(i)
		if s.trees == 0 {
			continue // an empty shard needs no failover
		}
		var reply SnapshotReply
		if err := c.call(ctx, i, "Snapshot", SnapshotArgs{}, &reply); err != nil {
			return fmt.Errorf("distrib: checkpointing worker %d: %w", i, err)
		}
		c.mu.Lock()
		s.snapshot = reply.Data
		c.mu.Unlock()
		slog.Debug("shard checkpointed", "worker", s.addr, "bytes", len(reply.Data), "trees", reply.Trees)
	}
	return nil
}

func (c *Coordinator) chunkSize() int {
	if c.ChunkSize <= 0 {
		return 512
	}
	return c.ChunkSize
}

func (c *Coordinator) batchSize() int {
	if c.BatchSize <= 0 {
		return 256
	}
	return c.BatchSize
}

// Fingerprint identifies the loaded reference collection: an FNV-1a hash
// over the taxon catalogue, the tree count and the folded bipartition
// mass. Valid after Load; resumable runs store it in their checkpoint
// header so a checkpoint can never silently resume against different
// references. (The local core.FreqHash fingerprint also folds in the
// global unique-bipartition count, which shards cannot provide, so the
// two schemes are deliberately distinct: a single-node checkpoint does
// not resume a distributed run, or vice versa.)
func (c *Coordinator) Fingerprint() uint64 { return c.fp }

// RefTrees is the number of reference trees loaded across all shards.
// Valid after Load.
func (c *Coordinator) RefTrees() int { return c.r }

// TaxaLen is the size of the shared taxon catalogue. Valid after Load.
func (c *Coordinator) TaxaLen() int {
	if c.taxa == nil {
		return 0
	}
	return c.taxa.Len()
}

func fingerprint(ts *taxa.Set, trees int, sum uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	fp := uint64(offset64)
	mix := func(b byte) { fp = (fp ^ uint64(b)) * prime64 }
	mixU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(v >> (8 * i)))
		}
	}
	for i := 0; i < ts.Len(); i++ {
		for _, b := range []byte(ts.Name(i)) {
			mix(b)
		}
		mix(0)
	}
	mixU64(uint64(trees))
	mixU64(sum)
	return fp
}

// ErrCanceled is returned by AverageRFOpts when QueryRunOptions.Cancel
// fires; the results gathered so far accompany it.
var ErrCanceled = core.ErrCanceled

// QueryRunOptions configure one scatter-gather run for resumable
// operation; the zero value is a plain full run.
type QueryRunOptions struct {
	// Skip, when non-nil, is consulted per query tree (by 0-based index in
	// the query collection); true drops it from the batches. Results for
	// skipped trees are absent from the Outcome.
	Skip func(idx int) bool
	// OnResult, when non-nil, observes each result as it is produced —
	// the checkpointing hook. Called from a single goroutine, but not
	// necessarily in query order: with a coordinator cache, a repeated
	// topology's result is emitted before earlier in-flight batches fold.
	// The Outcome's Results slice is always sorted by query index.
	OnResult func(core.Result)
	// Cancel, when closed, stops the run after the current batch: the
	// results so far return with ErrCanceled.
	Cancel <-chan struct{}
}

// AverageRF streams the query collection, fanning each batch out to every
// worker and folding the partial sums. Results are in query order. See
// AverageRFContext for the coverage and failover annotations.
func (c *Coordinator) AverageRF(queries collection.Source) ([]core.Result, error) {
	out, err := c.AverageRFContext(context.Background(), queries)
	if err != nil {
		return nil, err
	}
	return out.Results, nil
}

// AverageRFContext runs the scatter-gather query phase under ctx and
// returns the results together with their fault-tolerance annotations:
// achieved shard coverage, whether any batch was partial, and which
// workers were lost along the way.
func (c *Coordinator) AverageRFContext(ctx context.Context, queries collection.Source) (*Outcome, error) {
	return c.AverageRFOpts(ctx, queries, QueryRunOptions{})
}

// AverageRFOpts is AverageRFContext with per-query skip, result streaming
// and graceful cancellation — the hooks crash-safe resumable runs build
// on. Each result's Index is its position in the query collection, so a
// run that skips trees still reports stable indexes.
func (c *Coordinator) AverageRFOpts(ctx context.Context, queries collection.Source, run QueryRunOptions) (*Outcome, error) {
	if c.r == 0 {
		return nil, fmt.Errorf("distrib: Load before Query")
	}
	// The root span rides the run's context, so cancellation and trace
	// identity travel together through queryBatch into every RPC.
	ctx, span := obs.StartSpan(ctx, "coord.query")
	defer span.End()
	if span.Recorded() {
		span.SetAttr("fingerprint", fmt.Sprintf("%016x", c.fp))
		span.SetAttr("workers", c.NumWorkers())
		span.SetAttr("cache", c.Cache != nil)
	}
	if err := queries.Reset(); err != nil {
		return nil, err
	}
	out := &Outcome{Coverage: 1}
	deadBefore := c.deadAddrs()
	emit := func(r core.Result) {
		if run.OnResult != nil {
			run.OnResult(r)
		}
		out.Results = append(out.Results, r)
	}
	// The coordinator-side cache fingerprints each query tree before it is
	// serialized for the wire; extraction failures fall through to the
	// workers uncached, so worker-side errors stay authoritative.
	var ex *bipart.Extractor
	if c.Cache != nil {
		ex = &bipart.Extractor{Taxa: c.taxa, RequireComplete: true, ReuseMasks: true}
	}
	// A batch ships only distinct topologies: uniq/uniqKey are the wire
	// batch, and each pending query records which uniq slot answers it.
	uniq := make([]string, 0, c.batchSize())
	uniqKey := make([]pendingKey, 0, c.batchSize())
	uniqAt := make(map[core.TopoKey]int, c.batchSize())
	type pendingQuery struct {
		orig int
		pos  int // index into uniq
	}
	pend := make([]pendingQuery, 0, c.batchSize())
	idx := 0
	canceled := false
	cacheHits := 0
	defer func() {
		if span.Recorded() {
			span.SetAttr("queries", idx)
			span.SetAttr("cache_hits", cacheHits)
		}
	}()
	flush := func() error {
		if len(uniq) == 0 {
			return nil
		}
		bctx, bspan := obs.StartSpan(ctx, "coord.query.batch")
		bspan.SetAttr("batch", len(uniq))
		bspan.SetAttr("pending", len(pend))
		avgs, coverage, err := c.queryBatch(bctx, uniq, out)
		bspan.SetAttr("coverage", coverage)
		bspan.End()
		if err != nil {
			return err
		}
		for _, p := range pend {
			emit(core.Result{Index: p.orig, AvgRF: avgs[p.pos]})
		}
		if c.Cache != nil && coverage >= 1 {
			for u, k := range uniqKey {
				if k.ok {
					c.Cache.Put(k.key, core.Plain, avgs[u])
				}
			}
		}
		uniq = uniq[:0]
		uniqKey = uniqKey[:0]
		clear(uniqAt)
		pend = pend[:0]
		return nil
	}
	for !canceled {
		if run.Cancel != nil {
			select {
			case <-run.Cancel:
				canceled = true
				continue
			default:
			}
		}
		t, err := queries.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if run.Skip != nil && run.Skip(idx) {
			idx++
			continue
		}
		key := pendingKey{}
		if ex != nil {
			if bs, exErr := ex.Extract(t); exErr == nil {
				key = pendingKey{key: core.TopologyFingerprint(bs), ok: true}
			}
		}
		u := -1
		if key.ok {
			if avg, hit := c.Cache.Get(key.key, core.Plain); hit {
				cacheHits++
				emit(core.Result{Index: idx, AvgRF: avg})
				idx++
				continue
			}
			if at, dup := uniqAt[key.key]; dup {
				u = at
			}
		}
		if u < 0 {
			u = len(uniq)
			uniq = append(uniq, newick.String(t, newick.WriteOptions{BranchLengths: true}))
			uniqKey = append(uniqKey, key)
			if key.ok {
				uniqAt[key.key] = u
			}
		}
		pend = append(pend, pendingQuery{orig: idx, pos: u})
		idx++
		// The batch fills by pending queries, not distinct topologies
		// (len(uniq) never exceeds len(pend)): a repeat-heavy stream that
		// batched by uniq alone would never flush, withholding every cache
		// insert — and so every hit — until EOF. Duplicate appends count
		// too, which is why the dup branch above falls through to here.
		if len(pend) >= c.batchSize() {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	sort.Slice(out.Results, func(i, j int) bool { return out.Results[i].Index < out.Results[j].Index })
	out.DeadWorkers = diffAddrs(c.deadAddrs(), deadBefore)
	if canceled {
		return out, ErrCanceled
	}
	return out, nil
}

// pendingKey is a query tree's coordinator-side fingerprint; ok is false
// when the cache is off or local extraction failed (the tree then goes to
// the workers unconditionally, so their error reporting stays canonical).
type pendingKey struct {
	key core.TopoKey
	ok  bool
}

// deadAddrs lists workers currently declared dead.
func (c *Coordinator) deadAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dead []string
	for _, s := range c.slots {
		if s.state == StateDead {
			dead = append(dead, s.addr)
		}
	}
	return dead
}

func diffAddrs(now, before []string) []string {
	seen := make(map[string]bool, len(before))
	for _, a := range before {
		seen[a] = true
	}
	var diff []string
	for _, a := range now {
		if !seen[a] {
			diff = append(diff, a)
		}
	}
	return diff
}

// queryBatch scatter-gathers one batch across the live workers and
// returns the per-query averages plus the batch's shard coverage (1 for
// exact answers). Transient worker failures are retried (see call); a
// worker that stays unreachable is declared dead and, in fail-fast mode,
// its shard is re-dispatched from the checkpoint and the batch is retried
// on the new topology. With PartialResults the batch instead folds
// whatever answered and records the coverage.
func (c *Coordinator) queryBatch(ctx context.Context, newicks []string, out *Outcome) ([]float64, float64, error) {
	for round := 0; ; round++ {
		if round > c.NumWorkers() {
			return nil, 0, fmt.Errorf("distrib: failover did not converge after %d rounds", round)
		}
		// Re-home shards orphaned by earlier batches or the health loop
		// before scattering, so the fold sees full coverage.
		if !c.PartialResults && !c.NoFailover {
			if err := c.rehomeOrphans(ctx, out); err != nil {
				return nil, 0, err
			}
		}
		live := c.liveIndexes()
		if len(live) == 0 {
			return nil, 0, fmt.Errorf("distrib: no live workers")
		}

		parts := make([]queryPart, len(live))
		var wg sync.WaitGroup
		for k, i := range live {
			parts[k].idx = i
			wg.Add(1)
			go func(k, i int) {
				defer wg.Done()
				// One span per worker RPC, owned by this goroutine; the
				// trace context rides the args so the worker's spans stitch
				// in, and they come back in the reply.
				qctx, qspan := obs.StartSpan(ctx, "rpc.query")
				qspan.SetAttr("worker", c.slot(i).addr)
				args := QueryArgs{Newicks: newicks, Trace: toTraceContext(obs.SpanContextFrom(qctx))}
				parts[k].err = c.call(qctx, i, "Query", args, &parts[k].reply)
				if parts[k].err != nil {
					qspan.SetAttr("error", parts[k].err.Error())
				} else {
					obs.AttachSpans(qctx, parts[k].reply.Spans)
				}
				qspan.End()
			}(k, i)
		}
		wg.Wait()

		var answered []queryPart
		lost := false
		for _, p := range parts {
			switch {
			case p.err == nil:
				answered = append(answered, p)
			case errors.Is(p.err, context.Canceled) || errors.Is(p.err, context.DeadlineExceeded):
				// A caller-imposed deadline or cancellation is not worker
				// fault: context.DeadlineExceeded satisfies net.Error (and
				// so IsTransient), but marking the worker dead for it would
				// let one impatient client disable a healthy shard. The
				// coordinator's own RPC timeout uses a distinct error and
				// still takes the transient path below.
				return nil, 0, fmt.Errorf("distrib: %w", p.err)
			case IsTransient(p.err):
				c.markDead(p.idx, p.err)
				lost = true
				if !c.PartialResults {
					if c.NoFailover {
						return nil, 0, fmt.Errorf("distrib: worker %s: %w", c.slot(p.idx).addr, p.err)
					}
					// Failover next round; keep draining the other errors
					// so every dead worker is marked this round.
				}
			default:
				// Application or protocol error: retrying or failing over
				// cannot fix a malformed reply or a worker-side bug.
				return nil, 0, fmt.Errorf("distrib: worker %d: %w", p.idx, p.err)
			}
		}
		if lost && !c.PartialResults {
			continue // re-dispatch orphans and retry the batch
		}
		avgs, coverage, err := c.fold(newicks, answered)
		if err != nil {
			return nil, 0, err
		}
		shardCoverage().Observe(coverage)
		if coverage < 1 {
			degradedQueries().Inc()
			out.Partial = true
			if coverage < out.Coverage {
				out.Coverage = coverage
			}
			slog.Warn("degraded query batch", "coverage", coverage, "answered", len(answered))
		}
		return avgs, coverage, nil
	}
}

// queryPart is one worker's contribution to a scattered batch.
type queryPart struct {
	idx   int
	reply QueryReply
	err   error
}

// fold combines the answered partial sums into per-query averages. The
// totals are derived from the replies themselves (Σ ShardSum, Σ
// ShardTrees), so the same arithmetic serves full and degraded batches:
// coverage is the answered tree count over the loaded total.
func (c *Coordinator) fold(newicks []string, answered []queryPart) ([]float64, float64, error) {
	hits := make([]int64, len(newicks))
	splits := make([]int64, len(newicks))
	haveSplits := false
	var sumAns uint64
	rAns := 0
	for _, p := range answered {
		rep := p.reply
		addr := c.slot(p.idx).addr
		if len(rep.Hits) != len(newicks) {
			protocolErrors(addr).Inc()
			return nil, 0, fmt.Errorf("distrib: worker %d returned %d hits for %d queries", p.idx, len(rep.Hits), len(newicks))
		}
		if len(rep.Splits) != len(newicks) {
			protocolErrors(addr).Inc()
			return nil, 0, fmt.Errorf("distrib: worker %d returned %d split counts for %d queries", p.idx, len(rep.Splits), len(newicks))
		}
		for j := range hits {
			hits[j] += rep.Hits[j]
		}
		if !haveSplits {
			copy(splits, rep.Splits)
			haveSplits = true
		} else {
			for j := range splits {
				if splits[j] != rep.Splits[j] {
					protocolErrors(addr).Inc()
					return nil, 0, fmt.Errorf("distrib: workers disagree on |B(query %d)|: %d vs %d", j, splits[j], rep.Splits[j])
				}
			}
		}
		sumAns += rep.ShardSum
		rAns += rep.ShardTrees
	}
	if rAns == 0 {
		return nil, 0, fmt.Errorf("distrib: no reference shards answered")
	}
	out := make([]float64, len(newicks))
	rf := float64(rAns)
	for j := range out {
		left := int64(sumAns) - hits[j]
		right := splits[j]*int64(rAns) - hits[j]
		out[j] = float64(left+right) / rf
	}
	return out, float64(rAns) / float64(c.r), nil
}

// rehomeOrphans re-dispatches every orphaned shard onto a live worker via
// the checkpoint snapshot. The target merges the orphan into its own
// partition (Worker.Adopt), is re-checkpointed so a later failure of the
// target loses nothing, and the donor's orphan flag clears.
func (c *Coordinator) rehomeOrphans(ctx context.Context, out *Outcome) error {
	n := c.NumWorkers()
	for i := 0; i < n; i++ {
		c.mu.Lock()
		s := c.slots[i]
		orphaned := s.orphaned
		snap := s.snapshot
		c.mu.Unlock()
		if !orphaned {
			continue
		}
		if snap == nil {
			return fmt.Errorf("distrib: worker %s died with no shard checkpoint; cannot fail over", s.addr)
		}
		if err := c.adoptOnto(ctx, i, snap, out); err != nil {
			return err
		}
	}
	return nil
}

// adoptOnto finds a live worker to adopt dead worker donor's shard,
// trying each live worker in turn (an adoption target can itself die
// mid-failover).
func (c *Coordinator) adoptOnto(ctx context.Context, donor int, snap []byte, out *Outcome) error {
	s := c.slot(donor)
	var lastErr error
	for _, t := range c.liveIndexes() {
		var reply LoadReply
		err := c.call(ctx, t, "Adopt", AdoptArgs{ShardID: donor, Data: snap}, &reply)
		if err != nil {
			if IsTransient(err) {
				c.markDead(t, err)
				lastErr = err
				continue
			}
			return fmt.Errorf("distrib: worker %d adopting shard of %s: %w", t, s.addr, err)
		}
		target := c.slot(t)
		// Re-checkpoint the target: its partition now includes the
		// adopted shard, so the old snapshot is stale.
		var snapReply SnapshotReply
		if err := c.call(ctx, t, "Snapshot", SnapshotArgs{}, &snapReply); err != nil {
			if IsTransient(err) {
				c.markDead(t, err)
				lastErr = err
				continue
			}
			return fmt.Errorf("distrib: re-checkpointing worker %d: %w", t, err)
		}
		c.mu.Lock()
		target.snapshot = snapReply.Data
		target.trees = snapReply.Trees
		s.orphaned = false
		s.snapshot = nil
		c.mu.Unlock()
		shardFailovers(s.addr).Inc()
		out.Failovers++
		slog.Info("shard failed over", "from", s.addr, "to", target.addr,
			"trees", reply.ShardTrees, "unique", reply.ShardUnique)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no live workers")
	}
	return fmt.Errorf("distrib: failing over shard of %s: %w", s.addr, lastErr)
}

// SnapshotWorker serializes worker i's shard (see snapshot.go for the
// wire format).
func (c *Coordinator) SnapshotWorker(i int) ([]byte, error) {
	if i < 0 || i >= c.NumWorkers() {
		return nil, fmt.Errorf("distrib: no worker %d", i)
	}
	var reply SnapshotReply
	if err := c.call(context.Background(), i, "Snapshot", SnapshotArgs{}, &reply); err != nil {
		return nil, fmt.Errorf("distrib: snapshot worker %d: %w", i, err)
	}
	return reply.Data, nil
}

// RestoreWorker installs a snapshot on worker i, replacing its shard.
func (c *Coordinator) RestoreWorker(i int, data []byte) error {
	if i < 0 || i >= c.NumWorkers() {
		return fmt.Errorf("distrib: no worker %d", i)
	}
	var reply LoadReply
	if err := c.call(context.Background(), i, "Restore", RestoreArgs{Data: data}, &reply); err != nil {
		return fmt.Errorf("distrib: restore worker %d: %w", i, err)
	}
	slog.Debug("worker restored", "worker", c.slot(i).addr,
		"shard_trees", reply.ShardTrees, "shard_unique", reply.ShardUnique)
	return nil
}

// MigrateShard moves worker from's shard onto worker to via
// snapshot/restore — no reference trees are re-shipped or re-parsed. The
// folded totals (sum, r) are unchanged: the shard's content moved, nothing
// was added or lost. The source worker keeps its state; re-Init it (or
// drop it from the address list) to retire it.
func (c *Coordinator) MigrateShard(from, to int) error {
	data, err := c.SnapshotWorker(from)
	if err != nil {
		return err
	}
	return c.RestoreWorker(to, data)
}
