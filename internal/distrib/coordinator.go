package distrib

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/newick"
	"repro/internal/obs"
	"repro/internal/taxa"
)

// Coordinator shards a reference collection across workers and answers
// average-RF queries by scatter-gather.
type Coordinator struct {
	clients []*rpc.Client
	// addrs[i] is the dialed address of clients[i] — the `worker` label on
	// every coordinator-side metric series.
	addrs []string
	taxa  *taxa.Set
	// sum and r are the folded global totals, fixed after Load.
	sum uint64
	r   int
	// ChunkSize is the number of reference trees per Load RPC (default 512).
	ChunkSize int
	// BatchSize is the number of query trees per Query RPC (default 256).
	BatchSize int
	// Backend selects every shard's hash engine (BackendAuto by default).
	Backend core.Backend
	// HashShards overrides each shard's open-addressing internal shard
	// count (0 = worker default).
	HashShards int
}

// Dial connects to worker addresses ("host:port").
func Dial(addrs []string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distrib: no worker addresses")
	}
	c := &Coordinator{ChunkSize: 512, BatchSize: 256}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			rpcErrors(obs.L("side", sideCoordinator), obs.L("method", "Dial"), obs.L("worker", addr)).Inc()
			c.Close()
			return nil, fmt.Errorf("distrib: dialing %s: %w", addr, err)
		}
		c.clients = append(c.clients, rpc.NewClient(meterConn(conn, sideCoordinator)))
		c.addrs = append(c.addrs, addr)
	}
	slog.Debug("coordinator connected", "workers", len(c.clients))
	return c, nil
}

// Close releases every worker connection.
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.clients {
		if cl != nil {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	c.clients = nil
	c.addrs = nil
	return first
}

// NumWorkers returns the number of connected shards.
func (c *Coordinator) NumWorkers() int { return len(c.clients) }

// Addrs returns the dialed worker addresses.
func (c *Coordinator) Addrs() []string { return append([]string(nil), c.addrs...) }

// call executes one RPC against worker i with full instrumentation:
// per-worker latency histogram, error counter, in-flight gauge.
func (c *Coordinator) call(i int, method string, args, reply any) error {
	inflight := rpcInflight(sideCoordinator)
	inflight.Inc()
	start := time.Now()
	err := c.clients[i].Call("BFHRF."+method, args, reply)
	rpcLatency(obs.L("side", sideCoordinator), obs.L("method", method), obs.L("worker", c.addrs[i])).
		Observe(time.Since(start).Seconds())
	if err != nil {
		rpcErrors(obs.L("side", sideCoordinator), obs.L("method", method), obs.L("worker", c.addrs[i])).Inc()
	}
	inflight.Dec()
	return err
}

// Load initializes every worker with the catalogue and distributes the
// reference collection round-robin in chunks. It must be called once
// before Query.
func (c *Coordinator) Load(refs collection.Source, ts *taxa.Set, compress bool) error {
	if len(c.clients) == 0 {
		return fmt.Errorf("distrib: no workers")
	}
	_, span := obs.StartSpan(nil, "coord.load")
	defer span.End()
	c.taxa = ts
	init := InitArgs{
		TaxaNames:    ts.Names(),
		CompressKeys: compress,
		Backend:      c.Backend.String(),
		HashShards:   c.HashShards,
	}
	for i := range c.clients {
		var reply LoadReply
		if err := c.call(i, "Init", init, &reply); err != nil {
			return fmt.Errorf("distrib: init worker %d: %w", i, err)
		}
	}
	if err := refs.Reset(); err != nil {
		return err
	}
	chunk := make([]string, 0, c.chunkSize())
	target := 0
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		var reply LoadReply
		err := c.call(target, "Load", LoadArgs{Newicks: chunk}, &reply)
		if err != nil {
			return fmt.Errorf("distrib: load worker %d: %w", target, err)
		}
		slog.Debug("chunk distributed", "worker", c.addrs[target],
			"chunk", len(chunk), "shard_trees", reply.ShardTrees, "shard_unique", reply.ShardUnique)
		target = (target + 1) % len(c.clients)
		chunk = chunk[:0]
		return nil
	}
	total := 0
	for {
		t, err := refs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		chunk = append(chunk, newick.String(t, newick.WriteOptions{BranchLengths: true}))
		total++
		if len(chunk) >= c.chunkSize() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("distrib: reference collection is empty")
	}
	// Fold global totals with an empty probe query.
	c.sum, c.r = 0, 0
	for i := range c.clients {
		var reply QueryReply
		if err := c.call(i, "Query", QueryArgs{}, &reply); err != nil {
			return fmt.Errorf("distrib: probing worker %d: %w", i, err)
		}
		c.sum += reply.ShardSum
		c.r += reply.ShardTrees
	}
	if c.r != total {
		return fmt.Errorf("distrib: workers report %d trees, loaded %d", c.r, total)
	}
	slog.Info("references loaded", "trees", total, "workers", len(c.clients), "sum", c.sum)
	return nil
}

func (c *Coordinator) chunkSize() int {
	if c.ChunkSize <= 0 {
		return 512
	}
	return c.ChunkSize
}

func (c *Coordinator) batchSize() int {
	if c.BatchSize <= 0 {
		return 256
	}
	return c.BatchSize
}

// AverageRF streams the query collection, fanning each batch out to every
// worker and folding the partial sums. Results are in query order.
func (c *Coordinator) AverageRF(queries collection.Source) ([]core.Result, error) {
	if c.r == 0 {
		return nil, fmt.Errorf("distrib: Load before Query")
	}
	ctx, span := obs.StartSpan(nil, "coord.query")
	defer span.End()
	if err := queries.Reset(); err != nil {
		return nil, err
	}
	var results []core.Result
	batch := make([]string, 0, c.batchSize())
	idx := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, bspan := obs.StartSpan(ctx, "coord.query.batch")
		avgs, err := c.queryBatch(batch)
		bspan.End()
		if err != nil {
			return err
		}
		for _, a := range avgs {
			results = append(results, core.Result{Index: idx, AvgRF: a})
			idx++
		}
		batch = batch[:0]
		return nil
	}
	for {
		t, err := queries.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		batch = append(batch, newick.String(t, newick.WriteOptions{BranchLengths: true}))
		if len(batch) >= c.batchSize() {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return results, nil
}

// queryBatch scatter-gathers one batch across all workers concurrently.
func (c *Coordinator) queryBatch(newicks []string) ([]float64, error) {
	type partial struct {
		reply QueryReply
		err   error
	}
	parts := make([]partial, len(c.clients))
	var wg sync.WaitGroup
	args := QueryArgs{Newicks: newicks}
	for i := range c.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i].err = c.call(i, "Query", args, &parts[i].reply)
		}(i)
	}
	wg.Wait()

	hits := make([]int64, len(newicks))
	splits := make([]int64, len(newicks))
	haveSplits := false
	for i := range parts {
		if parts[i].err != nil {
			return nil, fmt.Errorf("distrib: worker %d: %w", i, parts[i].err)
		}
		rep := parts[i].reply
		if len(rep.Hits) != len(newicks) {
			protocolErrors(c.addrs[i]).Inc()
			return nil, fmt.Errorf("distrib: worker %d returned %d hits for %d queries", i, len(rep.Hits), len(newicks))
		}
		if len(rep.Splits) != len(newicks) {
			protocolErrors(c.addrs[i]).Inc()
			return nil, fmt.Errorf("distrib: worker %d returned %d split counts for %d queries", i, len(rep.Splits), len(newicks))
		}
		for j := range hits {
			hits[j] += rep.Hits[j]
		}
		if !haveSplits {
			copy(splits, rep.Splits)
			haveSplits = true
		} else {
			for j := range splits {
				if splits[j] != rep.Splits[j] {
					protocolErrors(c.addrs[i]).Inc()
					return nil, fmt.Errorf("distrib: workers disagree on |B(query %d)|: %d vs %d", j, splits[j], rep.Splits[j])
				}
			}
		}
	}
	out := make([]float64, len(newicks))
	rf := float64(c.r)
	for j := range out {
		left := int64(c.sum) - hits[j]
		right := splits[j]*int64(c.r) - hits[j]
		out[j] = float64(left+right) / rf
	}
	return out, nil
}

// SnapshotWorker serializes worker i's shard (see snapshot.go for the
// wire format).
func (c *Coordinator) SnapshotWorker(i int) ([]byte, error) {
	if i < 0 || i >= len(c.clients) {
		return nil, fmt.Errorf("distrib: no worker %d", i)
	}
	var reply SnapshotReply
	if err := c.call(i, "Snapshot", SnapshotArgs{}, &reply); err != nil {
		return nil, fmt.Errorf("distrib: snapshot worker %d: %w", i, err)
	}
	return reply.Data, nil
}

// RestoreWorker installs a snapshot on worker i, replacing its shard.
func (c *Coordinator) RestoreWorker(i int, data []byte) error {
	if i < 0 || i >= len(c.clients) {
		return fmt.Errorf("distrib: no worker %d", i)
	}
	var reply LoadReply
	if err := c.call(i, "Restore", RestoreArgs{Data: data}, &reply); err != nil {
		return fmt.Errorf("distrib: restore worker %d: %w", i, err)
	}
	slog.Debug("worker restored", "worker", c.addrs[i],
		"shard_trees", reply.ShardTrees, "shard_unique", reply.ShardUnique)
	return nil
}

// MigrateShard moves worker from's shard onto worker to via
// snapshot/restore — no reference trees are re-shipped or re-parsed. The
// folded totals (sum, r) are unchanged: the shard's content moved, nothing
// was added or lost. The source worker keeps its state; re-Init it (or
// drop it from the address list) to retire it.
func (c *Coordinator) MigrateShard(from, to int) error {
	data, err := c.SnapshotWorker(from)
	if err != nil {
		return err
	}
	return c.RestoreWorker(to, data)
}
