package distrib

import (
	"context"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/faultinject"
)

// TestCallerDeadlineDoesNotKillWorkers pins the error classification in
// queryBatch: context.DeadlineExceeded satisfies net.Error (Timeout()
// returns true), so before the explicit context case was added, a
// caller-imposed per-request deadline — exactly what the HTTP query
// service propagates — took the IsTransient path and marked a healthy
// worker dead. The coordinator must surface the deadline as an error
// and leave the cluster intact for the next query.
func TestCallerDeadlineDoesNotKillWorkers(t *testing.T) {
	defer faultinject.Disarm()
	trees, ts := testCollection(42, 16, 60)
	queries := trees[:10]
	addrs := startWorkers(t, 2)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	alive := coord.AliveWorkers()

	// Delay every query RPC send long enough that a short caller deadline
	// always expires mid-call.
	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointRPCSend, Kind: faultinject.KindDelay,
		Hit: 1, Times: -1, Delay: 200 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = coord.AverageRFOpts(ctx, collection.FromTrees(queries), QueryRunOptions{Cancel: ctx.Done()})
	if err == nil {
		t.Fatal("query with an expired deadline succeeded")
	}
	if got := coord.AliveWorkers(); got != alive {
		t.Fatalf("caller deadline killed workers: alive %d -> %d", alive, got)
	}

	// With the fault cleared, the same cluster answers the next query.
	faultinject.Disarm()
	out, err := coord.AverageRFOpts(context.Background(), collection.FromTrees(queries), QueryRunOptions{})
	if err != nil {
		t.Fatalf("query after deadline recovery: %v", err)
	}
	if len(out.Results) != len(queries) || out.Coverage != 1 {
		t.Fatalf("recovery query: %d results, coverage %v", len(out.Results), out.Coverage)
	}
	if got := coord.AliveWorkers(); got != alive {
		t.Fatalf("workers lost after recovery: alive %d -> %d", alive, got)
	}
}

// TestCallerCancelDoesNotKillWorkers mirrors the deadline case for an
// explicit cancellation (a client hanging up mid-request).
func TestCallerCancelDoesNotKillWorkers(t *testing.T) {
	defer faultinject.Disarm()
	trees, ts := testCollection(43, 16, 60)
	queries := trees[:10]
	addrs := startWorkers(t, 2)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	alive := coord.AliveWorkers()

	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointRPCSend, Kind: faultinject.KindDelay,
		Hit: 1, Times: -1, Delay: 200 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err = coord.AverageRFOpts(ctx, collection.FromTrees(queries), QueryRunOptions{Cancel: ctx.Done()})
	if err == nil {
		t.Fatal("canceled query succeeded")
	}
	if got := coord.AliveWorkers(); got != alive {
		t.Fatalf("caller cancel killed workers: alive %d -> %d", alive, got)
	}
}
