package distrib

import (
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/obs"
)

// Coordinator failure paths: a worker that is unreachable, dies mid-query,
// or answers garbage must surface an error (the CLI turns that into a
// non-zero exit) plus an obs error-counter increment — never a hang. The
// metrics live in the shared Default registry, so assertions are deltas.

func coordErrors(method, worker string) *obs.CounterMetric {
	return rpcErrors(obs.L("side", sideCoordinator), obs.L("method", method), obs.L("worker", worker))
}

// runWithTimeout fails the test if fn does not return within 30 seconds —
// the "not a hang" half of each failure-path contract.
func runWithTimeout(t *testing.T, name string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatalf("%s hung", name)
		return nil
	}
}

func TestWorkerUnreachableAtDial(t *testing.T) {
	// Reserve a port and close it so nothing is listening.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	before := coordErrors("Dial", addr).Value()
	_, err = Dial([]string{addr})
	if err == nil {
		t.Fatal("dialing a dead worker should fail")
	}
	if got := coordErrors("Dial", addr).Value() - before; got != 1 {
		t.Errorf("dial error counter delta = %d, want 1", got)
	}
}

func TestWorkerUnreachableAtLoad(t *testing.T) {
	// The worker accepts the connection, then dies before the coordinator
	// sends Init: the first Load-phase RPC must error out.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	var conns []net.Conn
	var mu sync.Mutex
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
		}
	}()
	defer l.Close()

	coord, err := Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// Kill the accepted connection: the worker is now gone.
	l.Close()
	mu.Lock()
	for _, c := range conns {
		c.Close()
	}
	mu.Unlock()

	trees, ts := testCollection(3, 8, 10)
	before := coordErrors("Init", addr).Value()
	err = runWithTimeout(t, "Load", func() error {
		return coord.Load(collection.FromTrees(trees), ts, false)
	})
	if err == nil {
		t.Fatal("Load against a dead worker should fail")
	}
	if got := coordErrors("Init", addr).Value() - before; got != 1 {
		t.Errorf("Init error counter delta = %d, want 1", got)
	}
}

// killableWorker serves a real Worker but keeps handles on accepted
// connections so the test can sever them mid-run.
type killableWorker struct {
	l     net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func startKillableWorker(t *testing.T) *killableWorker {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kw := &killableWorker{l: l}
	srv := rpc.NewServer()
	if err := srv.RegisterName("BFHRF", &Worker{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			kw.mu.Lock()
			kw.conns = append(kw.conns, conn)
			kw.mu.Unlock()
			go srv.ServeConn(conn)
		}
	}()
	t.Cleanup(kw.kill)
	return kw
}

func (kw *killableWorker) addr() string { return kw.l.Addr().String() }

// kill severs the listener and every live connection.
func (kw *killableWorker) kill() {
	kw.l.Close()
	kw.mu.Lock()
	defer kw.mu.Unlock()
	for _, c := range kw.conns {
		c.Close()
	}
	kw.conns = nil
}

// TestWorkerDiesMidQueryNoFailover pins the pre-failover contract for
// clusters that opt out of recovery: a worker dying mid-query surfaces an
// error (never a hang) plus an error-counter increment.
func TestWorkerDiesMidQueryNoFailover(t *testing.T) {
	kw := startKillableWorker(t)
	healthy := startWorkers(t, 1)
	addrs := []string{kw.addr(), healthy[0]}

	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.NoFailover = true
	trees, ts := testCollection(7, 10, 30)
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	// First batch succeeds while both workers live.
	if _, err := coord.AverageRF(collection.FromTrees(trees[:2])); err != nil {
		t.Fatalf("healthy query: %v", err)
	}

	kw.kill()
	before := coordErrors("Query", kw.addr()).Value()
	err = runWithTimeout(t, "AverageRF", func() error {
		_, err := coord.AverageRF(collection.FromTrees(trees[:4]))
		return err
	})
	if err == nil {
		t.Fatal("query against a dead worker should fail with failover disabled")
	}
	if got := coordErrors("Query", kw.addr()).Value() - before; got == 0 {
		t.Error("Query error counter did not increment")
	}
}

// malformedService mimics the BFHRF wire protocol but returns a hit
// vector of the wrong length for non-empty query batches.
type malformedService struct {
	mu    sync.Mutex
	trees int
}

func (s *malformedService) Init(args InitArgs, reply *LoadReply) error {
	*reply = LoadReply{}
	return nil
}

func (s *malformedService) Load(args LoadArgs, reply *LoadReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trees += len(args.Newicks)
	reply.ShardTrees = s.trees
	reply.ShardUnique = 1
	return nil
}

func (s *malformedService) Query(args QueryArgs, reply *QueryReply) error {
	s.mu.Lock()
	trees := s.trees
	s.mu.Unlock()
	if len(args.Newicks) == 0 {
		// Behave during the Load-phase probe so the failure surfaces in
		// the query phase.
		reply.ShardSum = 1
		reply.ShardTrees = trees
		return nil
	}
	reply.Hits = make([]int64, len(args.Newicks)+1) // wrong length
	reply.Splits = make([]int64, len(args.Newicks)+1)
	reply.ShardSum = 1
	reply.ShardTrees = trees
	return nil
}

func TestMalformedRPCResponse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := rpc.NewServer()
	if err := srv.RegisterName("BFHRF", &malformedService{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	addr := l.Addr().String()

	coord, err := Dial([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// The fake service speaks only the load/query half of the protocol, so
	// skip the post-load snapshot checkpoint.
	coord.NoFailover = true
	trees, ts := testCollection(13, 8, 6)
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatalf("load against malformed service: %v", err)
	}

	before := protocolErrors(addr).Value()
	err = runWithTimeout(t, "AverageRF", func() error {
		_, err := coord.AverageRF(collection.FromTrees(trees[:3]))
		return err
	})
	if err == nil {
		t.Fatal("malformed reply should fail the query")
	}
	if !strings.Contains(err.Error(), "hits") {
		t.Errorf("error should describe the malformed reply, got: %v", err)
	}
	if got := protocolErrors(addr).Value() - before; got != 1 {
		t.Errorf("protocol error counter delta = %d, want 1", got)
	}
}

// TestCoordinatorPerWorkerMetrics is the in-process distributed end-to-end
// check: after a real scatter-gather run over TCP, every worker shows up
// in the coordinator-side per-worker latency series, and the worker-side
// core counters reflect the answered queries.
func TestCoordinatorPerWorkerMetrics(t *testing.T) {
	addrs := startWorkers(t, 2)
	queryLat := func(addr string) *obs.HistogramMetric {
		return rpcLatency(obs.L("side", sideCoordinator), obs.L("method", "Query"), obs.L("worker", addr))
	}
	loadLat := func(addr string) *obs.HistogramMetric {
		return rpcLatency(obs.L("side", sideCoordinator), obs.L("method", "Load"), obs.L("worker", addr))
	}
	befQuery := make([]uint64, 2)
	befLoad := make([]uint64, 2)
	for i, a := range addrs {
		befQuery[i] = queryLat(a).Count()
		befLoad[i] = loadLat(a).Count()
	}
	wrkQueryBefore := rpcLatency(obs.L("side", sideWorker), obs.L("method", "Query")).Count()
	bytesBefore := rpcBytes(sideCoordinator, "written").Value()

	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.ChunkSize = 5
	coord.BatchSize = 4
	trees, ts := testCollection(31, 10, 20)
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	res, err := coord.AverageRF(collection.FromTrees(trees[:9]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 9 {
		t.Fatalf("results = %d, want 9", len(res))
	}

	for i, a := range addrs {
		// 9 queries at batch size 4 = 3 batches, plus the load probe.
		if got := queryLat(a).Count() - befQuery[i]; got != 4 {
			t.Errorf("worker %s Query latency count delta = %d, want 4", a, got)
		}
		// 20 trees at chunk 5 = 4 chunks round-robin over 2 workers.
		if got := loadLat(a).Count() - befLoad[i]; got != 2 {
			t.Errorf("worker %s Load latency count delta = %d, want 2", a, got)
		}
	}
	// The workers run in-process here, so their side of the series moved
	// too: 2 workers × (3 batches + 1 probe).
	if got := rpcLatency(obs.L("side", sideWorker), obs.L("method", "Query")).Count() - wrkQueryBefore; got != 8 {
		t.Errorf("worker-side Query latency count delta = %d, want 8", got)
	}
	if got := rpcBytes(sideCoordinator, "written").Value() - bytesBefore; got == 0 {
		t.Error("coordinator written-bytes counter did not move")
	}
	// Sanity: every per-worker series is visible in the exposition with
	// its worker label, the operator-facing contract.
	var sb strings.Builder
	if err := obs.Default.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if !strings.Contains(sb.String(), fmt.Sprintf(`worker="%s"`, a)) {
			t.Errorf("exposition missing worker label %q", a)
		}
	}
}
