package distrib

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestTracedQueryStitchedAndIdentical is the end-to-end trace gate: a
// distributed query under an injected RPC delay must (a) return results
// byte-identical to an untraced run, (b) assemble ONE stitched trace —
// coordinator root, per-worker RPC spans, and the workers' remote spans
// all under a single trace ID — and (c) export that trace as valid JSONL.
func TestTracedQueryStitchedAndIdentical(t *testing.T) {
	trees, ts := testCollection(23, 16, 80)
	queries := trees[:12]

	// run loads a fresh 3-worker cluster and queries it; between is called
	// after Load so fault plans only see the query-path RPCs.
	run := func(between func()) []core.Result {
		t.Helper()
		addrs := startWorkers(t, 3)
		coord, err := Dial(addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		coord.ChunkSize = 13
		coord.BatchSize = 5
		if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
			t.Fatal(err)
		}
		if between != nil {
			between()
		}
		got, err := coord.AverageRF(collection.FromTrees(queries))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	render := func(rs []core.Result) string {
		var sb strings.Builder
		for _, r := range rs {
			fmt.Fprintf(&sb, "%d\t%g\n", r.Index, r.AvgRF)
		}
		return sb.String()
	}

	// Baseline: tracing disabled.
	prev := obs.SetCurrentTracer(obs.NewTracer(8))
	defer obs.SetCurrentTracer(prev)
	baseline := render(run(nil))

	// Traced run: keep everything, flag roots past 5ms as slow, and delay
	// every query RPC by 20ms so the slow path actually fires.
	tr := obs.NewTracer(64)
	tr.SetSampleRate(1)
	tr.SetSlowQuery(5 * time.Millisecond)
	exportPath := filepath.Join(t.TempDir(), "traces.jsonl")
	tr.SetExportPath(exportPath)
	obs.SetCurrentTracer(tr)
	defer faultinject.Disarm()

	traced := render(run(func() {
		faultinject.Arm(faultinject.Plan{
			Point: faultinject.PointRPCSend,
			Kind:  faultinject.KindDelay,
			Hit:   1,
			Times: -1,
			Delay: 20 * time.Millisecond,
		})
	}))
	faultinject.Disarm()

	if traced != baseline {
		t.Errorf("tracing changed the results:\ntraced:\n%s\nbaseline:\n%s", traced, baseline)
	}

	// Exactly one stitched trace: in a single process the workers' remote
	// roots publish partial traces too, so select by root name.
	var stitched *obs.Trace
	coordTraces := 0
	for _, tc := range tr.Snapshot(0) {
		if tc.Root == "coord.query" {
			coordTraces++
			stitched = tc
		}
	}
	if coordTraces != 1 {
		t.Fatalf("coord.query traces in the ring = %d, want 1", coordTraces)
	}
	if !stitched.Slow {
		t.Errorf("20ms injected delay did not mark the trace slow (duration %s)",
			time.Duration(stitched.DurationNanos))
	}

	spanIDs := make(map[string]bool)
	byName := make(map[string][]obs.SpanRecord)
	for _, s := range stitched.Spans {
		if s.TraceID != stitched.TraceID {
			t.Errorf("span %s carries trace %s, want %s", s.Name, s.TraceID, stitched.TraceID)
		}
		spanIDs[s.SpanID] = true
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range []string{"coord.query", "coord.query.batch", "rpc.query", "worker.query"} {
		if len(byName[name]) == 0 {
			t.Errorf("stitched trace has no %s span; got %d spans", name, len(stitched.Spans))
		}
	}
	// 12 queries in batches of 5 → 3 batches × 3 workers of RPC fan-out.
	if got := len(byName["rpc.query"]); got != 9 {
		t.Errorf("rpc.query spans = %d, want 9 (3 batches × 3 workers)", got)
	}
	if got := len(byName["worker.query"]); got != 9 {
		t.Errorf("worker.query spans = %d, want 9 (one per RPC, stitched from replies)", got)
	}
	// Every worker-side root's parent is one of the coordinator's RPC
	// spans — the cross-process link the propagated context creates.
	rpcIDs := make(map[string]bool)
	for _, s := range byName["rpc.query"] {
		rpcIDs[s.SpanID] = true
	}
	for _, s := range byName["worker.query"] {
		if !rpcIDs[s.ParentID] {
			t.Errorf("worker.query span %s parent %s is not an rpc.query span", s.SpanID, s.ParentID)
		}
		if s.Attrs["queries"] == "" || s.Attrs["shard_trees"] == "" {
			t.Errorf("worker.query span lacks shard attributes: %v", s.Attrs)
		}
	}
	// With dropped spans zero, every parent link resolves inside the trace.
	if stitched.DroppedSpans != 0 {
		t.Errorf("dropped_spans = %d, want 0", stitched.DroppedSpans)
	}
	for _, s := range stitched.Spans {
		if s.ParentID != "" && !spanIDs[s.ParentID] {
			t.Errorf("span %s (%s): dangling parent %s", s.SpanID, s.Name, s.ParentID)
		}
	}

	// The JSONL export round-trips and contains the stitched trace.
	if err := tr.FlushExport(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(exportPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	found := false
	for sc.Scan() {
		var tc obs.Trace
		if err := json.Unmarshal(sc.Bytes(), &tc); err != nil {
			t.Fatalf("invalid JSONL line: %v", err)
		}
		if tc.TraceID == stitched.TraceID && tc.Root == "coord.query" {
			found = true
			if len(tc.Spans) != len(stitched.Spans) {
				t.Errorf("exported trace has %d spans, ring has %d", len(tc.Spans), len(stitched.Spans))
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("stitched trace missing from the JSONL export")
	}
}

// TestUntracedQueryPropagatesNothing: with the tracer disabled the RPC
// args must carry the zero trace context and replies no span payload —
// the wire cost of the trace layer is a few zero bytes per batch.
func TestUntracedQueryPropagatesNothing(t *testing.T) {
	trees, ts := testCollection(29, 12, 40)
	prev := obs.SetCurrentTracer(obs.NewTracer(8))
	defer obs.SetCurrentTracer(prev)

	addrs := startWorkers(t, 2)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AverageRF(collection.FromTrees(trees[:5])); err != nil {
		t.Fatal(err)
	}
	if got := obs.CurrentTracer().Snapshot(0); len(got) != 0 {
		t.Errorf("disabled tracer collected %d traces", len(got))
	}
}
