package distrib

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Worker health: the coordinator runs an optional background loop that
// probes every worker's Health RPC (a cheap shard-status read) and keeps
// a three-state verdict per worker, published as bfhrf_worker_state:
//
//	healthy (0)  last check succeeded
//	suspect (1)  at least one consecutive check failed
//	dead    (2)  DeadAfter consecutive checks failed; the connection is
//	             dropped and the worker's shard becomes an orphan that the
//	             next query re-homes (fail-fast mode) or reports as
//	             missing coverage (partial-results mode)
//
// The query path declares workers dead on its own when retries exhaust,
// so the loop is not required for correctness — it exists to detect death
// between queries, cheaply, before a query pays the timeout.

// WorkerState is the coordinator's health verdict for one worker.
type WorkerState int32

const (
	// StateHealthy means the last health check (or RPC) succeeded.
	StateHealthy WorkerState = iota
	// StateSuspect means the worker failed its most recent health check
	// but has not yet crossed the death threshold.
	StateSuspect
	// StateDead means the coordinator has given up on the worker. Dead is
	// terminal: recovery is a new worker process and a fresh Dial.
	StateDead
)

// String names the state, matching the gauge values 0/1/2.
func (s WorkerState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// WorkerStates reports the current verdict per worker address.
func (c *Coordinator) WorkerStates() map[string]WorkerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	states := make(map[string]WorkerState, len(c.slots))
	for _, s := range c.slots {
		states[s.addr] = s.state
	}
	return states
}

func (c *Coordinator) deadAfter() int {
	if c.DeadAfter <= 0 {
		return 3
	}
	return c.DeadAfter
}

// StartHealthLoop launches the background health-check loop with the
// given probe period and returns a function that stops it and waits for
// the in-flight sweep to finish. Each sweep probes every non-dead worker
// concurrently with the coordinator's RPC deadline (retries are left to
// the next tick — the loop itself is the retry).
func (c *Coordinator) StartHealthLoop(interval time.Duration) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				c.healthSweep(ctx)
			}
		}
	}()
	return func() {
		cancel()
		wg.Wait()
	}
}

// healthSweep probes every non-dead worker once and advances the state
// machine.
func (c *Coordinator) healthSweep(ctx context.Context) {
	live := c.liveIndexes()
	var wg sync.WaitGroup
	for _, i := range live {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var status WorkerStatus
			err := c.callOnce(ctx, i, "Health", HealthArgs{}, &status)
			c.recordHealth(i, err)
		}(i)
	}
	wg.Wait()
}

// recordHealth folds one probe result into worker i's state machine.
func (c *Coordinator) recordHealth(i int, err error) {
	c.mu.Lock()
	s := c.slots[i]
	if s.state == StateDead {
		c.mu.Unlock()
		return
	}
	var transition WorkerState = -1
	died := false
	if err == nil {
		if s.state != StateHealthy {
			transition = StateHealthy
		}
		s.fails = 0
		s.state = StateHealthy
	} else {
		s.fails++
		if s.fails >= c.deadAfter() {
			died = true
		} else if s.state != StateSuspect {
			transition = StateSuspect
			s.state = StateSuspect
		}
	}
	addr, fails, state := s.addr, s.fails, s.state
	c.mu.Unlock()

	if died {
		// markDead handles the gauge, the orphan flag and the connection.
		c.markDead(i, err)
		return
	}
	workerStateGauge(addr).Set(float64(state))
	if transition == StateSuspect {
		slog.Warn("worker suspect", "worker", addr, "fails", fails, "error", err)
	} else if transition == StateHealthy {
		slog.Info("worker recovered", "worker", addr)
	}
}
