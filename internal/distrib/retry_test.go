package distrib

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"repro/internal/collection"
)

func TestIsTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"shutdown", rpc.ErrShutdown, true},
		{"net-closed", net.ErrClosed, true},
		{"rpc-timeout", fmt.Errorf("wrapped: %w", errRPCTimeout), true},
		{"dial-refused", &net.OpError{Op: "dial", Err: errors.New("connection refused")}, true},
		{"server-error", rpc.ServerError("distrib: worker not initialized"), false},
		{"plain", errors.New("some application bug"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryPolicyDelayCapsAndJitters(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: 0.5}
	for retry := 0; retry < 10; retry++ {
		// Deterministic ceiling: base·2^retry capped at MaxDelay.
		ceil := 10 * time.Millisecond << retry
		if ceil > p.MaxDelay {
			ceil = p.MaxDelay
		}
		for rep := 0; rep < 20; rep++ {
			d := p.delay(retry)
			if d > ceil {
				t.Fatalf("delay(%d) = %v, above ceiling %v", retry, d, ceil)
			}
			if d < ceil/2 {
				t.Fatalf("delay(%d) = %v, below jitter floor %v", retry, d, ceil/2)
			}
		}
	}
	// Negative jitter disables randomization entirely.
	exact := RetryPolicy{BaseDelay: 4 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	if d := exact.delay(2); d != 16*time.Millisecond {
		t.Errorf("jitter-free delay(2) = %v, want 16ms", d)
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	calls, retries := 0, 0
	err := Do(context.Background(),
		RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: -1},
		func(int, error) { retries++ },
		func() error {
			calls++
			if calls < 3 {
				return io.ErrUnexpectedEOF
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls = %d retries = %d, want 3 and 2", calls, retries)
	}
}

func TestDoStopsOnNonTransient(t *testing.T) {
	boom := errors.New("application bug")
	calls := 0
	err := Do(context.Background(), RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}, nil,
		func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want the application error", err)
	}
	if calls != 1 {
		t.Errorf("non-transient error was retried %d times", calls-1)
	}
}

func TestDoExhaustionWrapsUnderlyingError(t *testing.T) {
	calls := 0
	err := Do(context.Background(), RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1}, nil,
		func() error { calls++; return io.ErrUnexpectedEOF })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("exhaustion error should wrap the underlying failure, got: %v", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("exhaustion error should mention the attempt budget, got: %v", err)
	}
}

func TestDoHonorsContextCancellation(t *testing.T) {
	// Cancel while Do sleeps in its (hour-long) backoff: the loop must
	// abort promptly, reporting both the cancellation and the last failure.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	calls := 0
	start := time.Now()
	err := Do(ctx, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Hour, Jitter: -1}, nil,
		func() error { calls++; return io.EOF })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do did not abort the backoff sleep (took %v)", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if !errors.Is(err, io.EOF) {
		t.Errorf("cancellation error should also wrap the last failure, got: %v", err)
	}
	if calls != 1 {
		t.Errorf("cancelled ctx still ran %d calls", calls)
	}
}

// TestRPCDeadline: a worker that accepts connections but never answers
// must trip Coordinator.RPCTimeout instead of hanging the load phase.
func TestRPCDeadline(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Swallow the request, never reply.
			go func() { io.Copy(io.Discard, conn) }() //nolint:errcheck
		}
	}()

	coord, err := Dial([]string{l.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.RPCTimeout = 50 * time.Millisecond
	trees, ts := testCollection(3, 8, 6)
	err = runWithTimeout(t, "Load", func() error {
		return coord.Load(collection.FromTrees(trees), ts, false)
	})
	if err == nil {
		t.Fatal("Load against a mute worker should time out")
	}
	if !errors.Is(err, errRPCTimeout) {
		t.Errorf("error should be the RPC deadline, got: %v", err)
	}
}
