// Package distrib extends BFHRF to multi-node operation — the paper's
// §VII.B future-work direction ("it is possible to extend this to a multi
// node configuration"). The reference collection is sharded across worker
// nodes, each holding a partial bipartition frequency hash; queries fan out
// and partial sums fold back exactly:
//
// With shards s, freq[b] = Σ_s freq_s[b] and sum = Σ_s sum_s, so for a
// query tree T' with |B(T')| non-trivial splits,
//
//	hits   = Σ_s Σ_{b'∈B(T')} freq_s[b']
//	RFleft  = sum − hits
//	RFright = |B(T')|·r − hits
//	avgRF(T') = (RFleft + RFright) / r
//
// Only O(1) scalars per (query, worker) cross the wire — the communication
// pattern that makes the approach scale. Transport is net/rpc over TCP
// (or any net.Listener), standard library only.
//
// The layer is fault tolerant: coordinator RPCs carry per-call deadlines,
// transient failures (dial errors, timeouts, severed connections) are
// retried with capped exponential backoff and jitter (retry.go), a
// background health loop grades workers healthy/suspect/dead (health.go),
// and a dead worker's shard is re-dispatched to a healthy worker from a
// post-load snapshot checkpoint (Worker.Adopt) so queries keep returning
// exact results. When failover is impossible, the degraded-results policy
// decides between failing the query and answering from the shards that
// responded with an explicit coverage annotation. ARCHITECTURE.md
// documents the full failure model.
package distrib

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/newick"
	"repro/internal/obs"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// ---- wire types ------------------------------------------------------------

// InitArgs announce the shared taxon catalogue to a worker.
type InitArgs struct {
	// TaxaNames in catalogue order (workers must agree on bit positions).
	TaxaNames []string
	// CompressKeys selects the §IX compact key encoding on the shard
	// (forces the map backend).
	CompressKeys bool
	// Backend names the shard's hash engine ("auto", "openaddr", "map",
	// "succinct"); empty selects auto. Strings keep the wire format free
	// of core enums.
	Backend string
	// HashShards overrides the open-addressing backend's internal shard
	// count (0 = default).
	HashShards int
}

// LoadArgs carry a chunk of reference trees to a worker's shard.
type LoadArgs struct {
	// Newicks are serialized reference trees.
	Newicks []string
	// Seq is the coordinator's chunk sequence number (1-based,
	// monotonically increasing across the load). It makes Load idempotent
	// under retry: a worker that already folded chunk Seq answers its
	// current stats instead of double-counting the trees. 0 disables the
	// check (pre-fault-tolerance callers).
	Seq uint64
}

// LoadReply reports shard statistics after a chunk is folded in.
type LoadReply struct {
	// ShardTrees and ShardUnique describe the worker's partial hash.
	ShardTrees  int
	ShardUnique int
}

// TraceContext propagates the coordinator's distributed-tracing identity
// in RPC args (see internal/obs): the worker starts its spans under this
// trace so both sides of the RPC stitch into one stage tree. The zero
// value means "no recorded trace" and costs the worker nothing.
type TraceContext struct {
	// TraceHi and TraceLo are the halves of the 128-bit trace ID.
	TraceHi, TraceLo uint64
	// SpanID is the coordinator-side span issuing the RPC — the parent of
	// the worker's root span.
	SpanID uint64
	// Sampled reports whether the trace is being recorded.
	Sampled bool
}

// toTraceContext converts an obs span context for the wire.
func toTraceContext(sc obs.SpanContext) TraceContext {
	return TraceContext{
		TraceHi: sc.Trace.Hi,
		TraceLo: sc.Trace.Lo,
		SpanID:  uint64(sc.Span),
		Sampled: sc.Sampled,
	}
}

// spanContext converts back on the receiving side.
func (tc TraceContext) spanContext() obs.SpanContext {
	return obs.SpanContext{
		Trace:   obs.TraceID{Hi: tc.TraceHi, Lo: tc.TraceLo},
		Span:    obs.SpanID(tc.SpanID),
		Sampled: tc.Sampled,
	}
}

// QueryArgs carry a batch of query trees.
type QueryArgs struct {
	Newicks []string
	// Trace carries the coordinator's trace context so worker spans stitch
	// into the caller's trace (zero = untraced).
	Trace TraceContext
}

// QueryReply carries per-query partial sums.
type QueryReply struct {
	// Hits[i] = Σ_{b'∈B(query_i)} freq_shard[b'].
	Hits []int64
	// Splits[i] = |B(query_i)| (identical across workers; used for the
	// RFright term and cross-checked by the coordinator).
	Splits []int64
	// ShardSum and ShardTrees fold into the global sum and r.
	ShardSum   uint64
	ShardTrees int
	// Spans are the worker-side span records of this call, stamped with
	// the trace from QueryArgs.Trace; the coordinator folds them into its
	// live trace. Empty when the trace is not recorded.
	Spans []obs.SpanRecord
}

// ---- worker ----------------------------------------------------------------

// Worker is the RPC service holding one shard of the reference collection.
type Worker struct {
	mu         sync.Mutex
	taxa       *taxa.Set
	hash       *core.FreqHash
	compress   bool
	backend    core.Backend
	hashShards int
	// lastSeq is the highest Load chunk sequence number folded in; chunks
	// re-sent by the coordinator's retry loop are answered, not re-added.
	lastSeq uint64
	// adopted records shard IDs merged in by failover, so a retried Adopt
	// cannot double-count an orphaned shard.
	adopted map[int]bool
}

// WorkerStatus is a consistent snapshot of a worker's shard, exposed for
// health endpoints (cmd/bfhrfd's /healthz).
type WorkerStatus struct {
	// Initialized reports whether Init installed a taxon catalogue.
	Initialized bool
	// Loaded reports whether at least one reference chunk was folded in.
	Loaded bool
	// Trees and Unique describe the shard's partial hash.
	Trees  int
	Unique int
}

// Status returns the worker's current shard state.
func (w *Worker) Status() WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WorkerStatus{Initialized: w.taxa != nil, Loaded: w.hash != nil}
	if w.hash != nil {
		st.Trees = w.hash.NumTrees()
		st.Unique = w.hash.UniqueBipartitions()
	}
	return st
}

// Init installs the catalogue and resets the shard.
func (w *Worker) Init(args InitArgs, reply *LoadReply) error {
	return observeRPC(sideWorker, "Init", func() error { return w.init(args, reply) })
}

func (w *Worker) init(args InitArgs, reply *LoadReply) error {
	ts, err := taxa.NewOrderedSet(args.TaxaNames)
	if err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	backend, err := core.ParseBackend(args.Backend)
	if err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.taxa = ts
	w.hash = nil
	w.compress = args.CompressKeys
	w.backend = backend
	w.hashShards = args.HashShards
	w.lastSeq = 0
	w.adopted = nil
	*reply = LoadReply{}
	slog.Debug("worker initialized", "taxa", len(args.TaxaNames),
		"compress", args.CompressKeys, "backend", backend.String(), "hash_shards", args.HashShards)
	return nil
}

// Load folds a chunk of reference trees into the shard's hash.
func (w *Worker) Load(args LoadArgs, reply *LoadReply) error {
	return observeRPC(sideWorker, "Load", func() error { return w.load(args, reply) })
}

func (w *Worker) load(args LoadArgs, reply *LoadReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.taxa == nil {
		return fmt.Errorf("distrib: worker not initialized")
	}
	if args.Seq != 0 && args.Seq <= w.lastSeq {
		// Duplicate delivery of a chunk the shard already folded in (the
		// coordinator retried after a transport failure that lost only
		// the reply). Answer the current stats instead of double-counting.
		if w.hash != nil {
			reply.ShardTrees = w.hash.NumTrees()
			reply.ShardUnique = w.hash.UniqueBipartitions()
		}
		slog.Debug("duplicate chunk ignored", "seq", args.Seq, "last_seq", w.lastSeq)
		return nil
	}
	trees, err := parseChunk(args.Newicks)
	if err != nil {
		return err
	}
	if w.hash == nil {
		h, err := core.Build(collection.FromTrees(trees), w.taxa, core.BuildOptions{
			RequireComplete: true,
			CompressKeys:    w.compress,
			Backend:         w.backend,
			HashShards:      w.hashShards,
		})
		if err != nil {
			return err
		}
		w.hash = h
	} else {
		for _, t := range trees {
			if err := w.hash.AddTree(t, nil, true); err != nil {
				return err
			}
		}
	}
	if args.Seq != 0 {
		w.lastSeq = args.Seq
	}
	reply.ShardTrees = w.hash.NumTrees()
	reply.ShardUnique = w.hash.UniqueBipartitions()
	slog.Debug("shard chunk loaded",
		"chunk", len(args.Newicks), "shard_trees", reply.ShardTrees, "shard_unique", reply.ShardUnique)
	return nil
}

// HealthArgs request a worker's health status.
type HealthArgs struct{}

// Health is the RPC form of Status, probed by the coordinator's health
// loop (see health.go). It deliberately does no work beyond reading the
// shard state: a health probe must stay cheap under load.
func (w *Worker) Health(args HealthArgs, reply *WorkerStatus) error {
	return observeRPC(sideWorker, "Health", func() error {
		*reply = w.Status()
		return nil
	})
}

// Query computes partial hit sums for a batch of query trees. A worker
// that was initialized but received no reference chunk answers as an empty
// shard (zero hits, zero trees) so that uneven sharding is harmless.
func (w *Worker) Query(args QueryArgs, reply *QueryReply) error {
	return observeRPC(sideWorker, "Query", func() error { return w.query(args, reply) })
}

func (w *Worker) query(args QueryArgs, reply *QueryReply) error {
	// The worker-side root span joins the coordinator's trace when the args
	// carry one; its completed records travel back in the reply.
	_, span := obs.StartRemoteSpan(nil, "worker.query", args.Trace.spanContext())
	err := w.queryShard(span, args, reply)
	span.End()
	if err == nil {
		reply.Spans = span.Records()
	}
	return err
}

func (w *Worker) queryShard(span *obs.Span, args QueryArgs, reply *QueryReply) error {
	w.mu.Lock()
	h := w.hash
	ts := w.taxa
	w.mu.Unlock()
	if ts == nil {
		return fmt.Errorf("distrib: worker not initialized")
	}
	// The hash copies what it keeps, so the extractor can recycle masks,
	// and the prober probes with no per-lookup key allocation.
	ex := bipart.NewExtractor(ts)
	ex.ReuseMasks = true
	var p *core.Prober
	if h != nil {
		p = h.NewProber()
	}
	reply.Hits = make([]int64, len(args.Newicks))
	reply.Splits = make([]int64, len(args.Newicks))
	lookups, misses := 0, 0
	for i, nwk := range args.Newicks {
		t, err := newick.Parse(nwk)
		if err != nil {
			return fmt.Errorf("distrib: query %d: %w", i, err)
		}
		bs, err := ex.Extract(t)
		if err != nil {
			return fmt.Errorf("distrib: query %d: %w", i, err)
		}
		var hits int64
		if p != nil {
			lookups += len(bs)
			for _, b := range bs {
				f := int64(p.Frequency(b))
				if f == 0 {
					misses++
				}
				hits += f
			}
		}
		reply.Hits[i] = hits
		reply.Splits[i] = int64(len(bs))
	}
	if h != nil {
		reply.ShardSum = h.TotalBipartitions()
		reply.ShardTrees = h.NumTrees()
	}
	if span.Recorded() {
		span.SetAttr("queries", len(args.Newicks))
		span.SetAttr("lookups", lookups)
		span.SetAttr("misses", misses)
		span.SetAttr("shard_trees", reply.ShardTrees)
	}
	// The shard answers queries outside core.AverageRF, so it feeds the
	// same core counters (bfhrf_queries_total et al.) itself.
	core.RecordQueries(len(args.Newicks), lookups, misses)
	return nil
}

// parseChunk parses serialized trees, failing fast on the first error.
func parseChunk(newicks []string) ([]*tree.Tree, error) {
	out := make([]*tree.Tree, len(newicks))
	for i, nwk := range newicks {
		t, err := newick.Parse(nwk)
		if err != nil {
			return nil, fmt.Errorf("distrib: reference tree %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}

// ---- serving ---------------------------------------------------------------

// Serve registers a fresh Worker on a net/rpc server and serves l until it
// is closed. Each call runs in its own goroutine (net/rpc behaviour).
func Serve(l net.Listener) error {
	return ServeWorker(l, &Worker{})
}

// ServeWorker serves an explicit Worker on l, so the caller keeps a handle
// on the shard state (cmd/bfhrfd's health endpoint reads w.Status while
// the RPC server runs). Connections are metered into the worker-side byte
// counters.
func ServeWorker(l net.Listener, w *Worker) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("BFHRF", w); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go srv.ServeConn(meterConn(conn, sideWorker))
	}
}

// Listen starts a worker on addr (e.g. "127.0.0.1:0") and returns the
// listener; callers close it to stop the worker.
func Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go Serve(l) //nolint:errcheck — terminates when l closes
	return l, nil
}
