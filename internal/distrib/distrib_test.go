package distrib

import (
	"math"
	"math/rand"
	"net"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// startWorkers launches k workers on ephemeral localhost ports.
func startWorkers(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		l, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		addrs[i] = l.Addr().String()
	}
	return addrs
}

func testCollection(seed int64, n, r int) ([]*tree.Tree, *taxa.Set) {
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(seed))
	trees := make([]*tree.Tree, r)
	for i := range trees {
		trees[i] = simphy.RandomBinary(ts, rng)
	}
	return trees, ts
}

// TestDistributedMatchesLocal: the sharded computation must be exactly the
// single-node BFHRF result, for several worker counts and shard shapes.
func TestDistributedMatchesLocal(t *testing.T) {
	trees, ts := testCollection(11, 20, 150)
	queries := trees[:40]
	local, err := core.BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.AverageRF(collection.FromTrees(queries), core.QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3, 5} {
		addrs := startWorkers(t, workers)
		coord, err := Dial(addrs)
		if err != nil {
			t.Fatal(err)
		}
		coord.ChunkSize = 17 // force many uneven chunks
		coord.BatchSize = 7
		if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := coord.AverageRF(collection.FromTrees(queries))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: results = %d, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].AvgRF-want[i].AvgRF) > 1e-9 {
				t.Errorf("workers=%d query %d: distributed %v vs local %v",
					workers, i, got[i].AvgRF, want[i].AvgRF)
			}
		}
		coord.Close()
	}
}

func TestDistributedCompressedShards(t *testing.T) {
	trees, ts := testCollection(5, 12, 60)
	addrs := startWorkers(t, 2)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Load(collection.FromTrees(trees), ts, true); err != nil {
		t.Fatal(err)
	}
	got, err := coord.AverageRF(collection.FromTrees(trees[:10]))
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.AverageRF(collection.FromTrees(trees[:10]), core.QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i].AvgRF-want[i].AvgRF) > 1e-9 {
			t.Errorf("query %d: %v vs %v", i, got[i].AvgRF, want[i].AvgRF)
		}
	}
}

func TestMoreWorkersThanChunks(t *testing.T) {
	// 4 workers, 3 trees with a huge chunk size: some workers stay empty
	// and must be tolerated.
	trees, ts := testCollection(9, 8, 3)
	addrs := startWorkers(t, 4)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.ChunkSize = 100
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	res, err := coord.AverageRF(collection.FromTrees(trees))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Error("no addresses should fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable worker should fail")
	}
	addrs := startWorkers(t, 1)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// Query before Load.
	trees, ts := testCollection(2, 8, 4)
	if _, err := coord.AverageRF(collection.FromTrees(trees)); err == nil {
		t.Error("Query before Load should fail")
	}
	// Empty reference collection.
	if err := coord.Load(collection.FromTrees(nil), ts, false); err == nil {
		t.Error("empty reference should fail")
	}
	_ = trees
}

func TestWorkerDirectErrors(t *testing.T) {
	w := &Worker{}
	var lr LoadReply
	if err := w.Load(LoadArgs{Newicks: []string{"(A,B,(C,D));"}}, &lr); err == nil {
		t.Error("Load before Init should fail")
	}
	var qr QueryReply
	if err := w.Query(QueryArgs{Newicks: []string{"(A,B,(C,D));"}}, &qr); err == nil {
		t.Error("Query before Load should fail")
	}
	if err := w.Init(InitArgs{TaxaNames: []string{"A", "B", "C", "D"}}, &lr); err != nil {
		t.Fatal(err)
	}
	if err := w.Load(LoadArgs{Newicks: []string{"(((garbage"}}, &lr); err == nil {
		t.Error("malformed reference should fail")
	}
	if err := w.Init(InitArgs{TaxaNames: []string{"A", "A"}}, &lr); err == nil {
		t.Error("duplicate taxa should fail")
	}
}

func TestWorkerServesOverRealTCP(t *testing.T) {
	// Exercise the actual wire path end to end with one worker.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l)

	trees, ts := testCollection(21, 10, 25)
	coord, err := Dial([]string{l.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	res, err := coord.AverageRF(collection.FromTrees(trees[:5]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("results = %d", len(res))
	}
}
