package distrib

import (
	"net"
	"time"

	"repro/internal/obs"
)

// RPC instrumentation for both sides of the wire, published into the obs
// Default registry. Coordinator-side series carry a `worker` label (the
// dialed address) so a straggling or failing shard is visible per worker;
// worker-side series only carry `side` and `method` (a worker does not
// know who its coordinator is). Byte counters are measured at the
// connection level, so they include net/rpc framing — what actually
// crossed the wire, matching the paper's O(1)-scalars-per-query argument.

const (
	sideWorker      = "worker"
	sideCoordinator = "coordinator"

	latencyHelp  = "RPC latency by side and method (coordinator side adds a worker label)."
	errorsHelp   = "RPC failures by side and method (coordinator side adds a worker label)."
	inflightHelp = "RPCs currently executing, by side."
	bytesHelp    = "Bytes moved over RPC connections, by side and direction."
)

// rpcLatency resolves the latency histogram for one (side, method) series.
func rpcLatency(labels ...obs.Label) *obs.HistogramMetric {
	return obs.Histogram("bfhrf_rpc_latency_seconds", latencyHelp, obs.DefLatencyBuckets, labels...)
}

// rpcErrors resolves the error counter for one (side, method) series.
func rpcErrors(labels ...obs.Label) *obs.CounterMetric {
	return obs.Counter("bfhrf_rpc_errors_total", errorsHelp, labels...)
}

// rpcInflight resolves the in-flight gauge for one side.
func rpcInflight(side string) *obs.GaugeMetric {
	return obs.Gauge("bfhrf_rpc_inflight", inflightHelp, obs.L("side", side))
}

// protocolErrors counts structurally invalid replies detected by the
// coordinator (hit-vector length mismatch, split-count disagreement) —
// failures the RPC layer itself cannot see.
func protocolErrors(worker string) *obs.CounterMetric {
	return obs.Counter("bfhrf_protocol_errors_total",
		"Malformed or inconsistent RPC replies detected by the coordinator, by worker.",
		obs.L("worker", worker))
}

// rpcBytes resolves one (side, direction) byte counter.
func rpcBytes(side, direction string) *obs.CounterMetric {
	return obs.Counter("bfhrf_rpc_bytes_total", bytesHelp,
		obs.L("side", side), obs.L("direction", direction))
}

// ---- fault-tolerance families ----------------------------------------------

// workerStateGauge exposes the coordinator's verdict on one worker:
// 0 healthy, 1 suspect (failed its last health check), 2 dead (declared
// unrecoverable; its shard is re-dispatched or the query degrades).
func workerStateGauge(worker string) *obs.GaugeMetric {
	return obs.Gauge("bfhrf_worker_state",
		"Coordinator's health verdict per worker: 0 healthy, 1 suspect, 2 dead.",
		obs.L("worker", worker))
}

// coverageBuckets resolve the shard-coverage histogram in even tenths —
// coverage is a ratio in (0,1], so linear buckets keep full resolution.
var coverageBuckets = obs.LinearBuckets(0.1, 0.1, 10)

// shardCoverage observes, per query batch, the fraction of reference
// trees whose shards answered. 1.0 on every sample means full results;
// anything lower means the batch was served degraded (-partial-results).
func shardCoverage() *obs.HistogramMetric {
	return obs.Histogram("bfhrf_query_shard_coverage",
		"Fraction of reference trees covered by the shards that answered each query batch (1 = full result).",
		coverageBuckets)
}

// rpcRetries counts backoff retries of transient RPC failures, per method
// and worker — a leading indicator of a flaky worker before it is
// declared dead.
func rpcRetries(method, worker string) *obs.CounterMetric {
	return obs.Counter("bfhrf_rpc_retries_total",
		"Transient RPC failures retried with backoff, by method and worker.",
		obs.L("side", sideCoordinator), obs.L("method", method), obs.L("worker", worker))
}

// shardFailovers counts successful shard re-dispatches, labeled by the
// worker that lost the shard.
func shardFailovers(worker string) *obs.CounterMetric {
	return obs.Counter("bfhrf_shard_failovers_total",
		"Shards re-dispatched from a dead worker to a healthy one, by dead worker.",
		obs.L("worker", worker))
}

// degradedQueries counts query batches answered with partial coverage.
func degradedQueries() *obs.CounterMetric {
	return obs.Counter("bfhrf_degraded_query_batches_total",
		"Query batches answered from a strict subset of shards (-partial-results mode).")
}

// init pre-registers the families a fresh process should already expose,
// so an admin /metrics scrape is meaningful before the first RPC arrives.
func init() {
	for _, method := range []string{"Init", "Load", "Query", "Health", "Snapshot", "Restore", "Adopt"} {
		rpcLatency(obs.L("side", sideWorker), obs.L("method", method))
		rpcErrors(obs.L("side", sideWorker), obs.L("method", method))
	}
	rpcInflight(sideWorker)
	rpcInflight(sideCoordinator)
	shardCoverage()
	degradedQueries()
	rpcBytes(sideWorker, "read")
	rpcBytes(sideWorker, "written")
	rpcBytes(sideCoordinator, "read")
	rpcBytes(sideCoordinator, "written")
}

// observeRPC wraps one server-side RPC execution: in-flight gauge,
// latency histogram, error counter.
func observeRPC(side, method string, fn func() error) error {
	inflight := rpcInflight(side)
	inflight.Inc()
	start := time.Now()
	err := fn()
	rpcLatency(obs.L("side", side), obs.L("method", method)).Observe(time.Since(start).Seconds())
	if err != nil {
		rpcErrors(obs.L("side", side), obs.L("method", method)).Inc()
	}
	inflight.Dec()
	return err
}

// countingConn meters a net.Conn into the byte counters for one side.
type countingConn struct {
	net.Conn
	read, written *obs.CounterMetric
}

// meterConn wraps conn so its traffic lands in bfhrf_rpc_bytes_total.
func meterConn(conn net.Conn, side string) net.Conn {
	return &countingConn{
		Conn:    conn,
		read:    rpcBytes(side, "read"),
		written: rpcBytes(side, "written"),
	}
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.read.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.written.Add(uint64(n))
	}
	return n, err
}
