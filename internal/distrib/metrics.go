package distrib

import (
	"net"
	"time"

	"repro/internal/obs"
)

// RPC instrumentation for both sides of the wire, published into the obs
// Default registry. Coordinator-side series carry a `worker` label (the
// dialed address) so a straggling or failing shard is visible per worker;
// worker-side series only carry `side` and `method` (a worker does not
// know who its coordinator is). Byte counters are measured at the
// connection level, so they include net/rpc framing — what actually
// crossed the wire, matching the paper's O(1)-scalars-per-query argument.

const (
	sideWorker      = "worker"
	sideCoordinator = "coordinator"

	latencyHelp  = "RPC latency by side and method (coordinator side adds a worker label)."
	errorsHelp   = "RPC failures by side and method (coordinator side adds a worker label)."
	inflightHelp = "RPCs currently executing, by side."
	bytesHelp    = "Bytes moved over RPC connections, by side and direction."
)

// rpcLatency resolves the latency histogram for one (side, method) series.
func rpcLatency(labels ...obs.Label) *obs.HistogramMetric {
	return obs.Histogram("bfhrf_rpc_latency_seconds", latencyHelp, obs.DefLatencyBuckets, labels...)
}

// rpcErrors resolves the error counter for one (side, method) series.
func rpcErrors(labels ...obs.Label) *obs.CounterMetric {
	return obs.Counter("bfhrf_rpc_errors_total", errorsHelp, labels...)
}

// rpcInflight resolves the in-flight gauge for one side.
func rpcInflight(side string) *obs.GaugeMetric {
	return obs.Gauge("bfhrf_rpc_inflight", inflightHelp, obs.L("side", side))
}

// protocolErrors counts structurally invalid replies detected by the
// coordinator (hit-vector length mismatch, split-count disagreement) —
// failures the RPC layer itself cannot see.
func protocolErrors(worker string) *obs.CounterMetric {
	return obs.Counter("bfhrf_protocol_errors_total",
		"Malformed or inconsistent RPC replies detected by the coordinator, by worker.",
		obs.L("worker", worker))
}

// rpcBytes resolves one (side, direction) byte counter.
func rpcBytes(side, direction string) *obs.CounterMetric {
	return obs.Counter("bfhrf_rpc_bytes_total", bytesHelp,
		obs.L("side", side), obs.L("direction", direction))
}

// init pre-registers the families a fresh process should already expose,
// so an admin /metrics scrape is meaningful before the first RPC arrives.
func init() {
	for _, method := range []string{"Init", "Load", "Query"} {
		rpcLatency(obs.L("side", sideWorker), obs.L("method", method))
		rpcErrors(obs.L("side", sideWorker), obs.L("method", method))
	}
	rpcInflight(sideWorker)
	rpcInflight(sideCoordinator)
	rpcBytes(sideWorker, "read")
	rpcBytes(sideWorker, "written")
	rpcBytes(sideCoordinator, "read")
	rpcBytes(sideCoordinator, "written")
}

// observeRPC wraps one server-side RPC execution: in-flight gauge,
// latency histogram, error counter.
func observeRPC(side, method string, fn func() error) error {
	inflight := rpcInflight(side)
	inflight.Inc()
	start := time.Now()
	err := fn()
	rpcLatency(obs.L("side", side), obs.L("method", method)).Observe(time.Since(start).Seconds())
	if err != nil {
		rpcErrors(obs.L("side", side), obs.L("method", method)).Inc()
	}
	inflight.Dec()
	return err
}

// countingConn meters a net.Conn into the byte counters for one side.
type countingConn struct {
	net.Conn
	read, written *obs.CounterMetric
}

// meterConn wraps conn so its traffic lands in bfhrf_rpc_bytes_total.
func meterConn(conn net.Conn, side string) net.Conn {
	return &countingConn{
		Conn:    conn,
		read:    rpcBytes(side, "read"),
		written: rpcBytes(side, "written"),
	}
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.read.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.written.Add(uint64(n))
	}
	return n, err
}
