package distrib

import (
	"math"
	"testing"

	"repro/internal/bipart"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/tree"
)

// repeatTrees cycles a slice of trees `times` over, producing the
// repeat-heavy stream the coordinator cache exists for.
func repeatTrees(ts []*tree.Tree, times int) []*tree.Tree {
	out := make([]*tree.Tree, 0, len(ts)*times)
	for i := 0; i < times; i++ {
		out = append(out, ts...)
	}
	return out
}

// TestCoordinatorCacheHits pins the mid-stream flush behaviour: on a
// repeat-heavy stream the coordinator must publish cache entries as
// batches fill, not hold every insert until EOF. With 4 distinct
// topologies cycled 100× through a batch of 16, the first batch carries
// all four uniques, so at most one batch's worth of queries can miss —
// everything after must hit. A regression that defers inserts to the
// final flush (e.g. a dedupe branch skipping the flush check) shows up
// as zero hits, not a marginal slowdown.
func TestCoordinatorCacheHits(t *testing.T) {
	trees, ts := testCollection(21, 10, 25)
	queries := repeatTrees(trees[:4], 100)

	run := func(cache *core.QueryCache) []core.Result {
		t.Helper()
		addrs := startWorkers(t, 2)
		coord, err := Dial(addrs)
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		coord.ChunkSize = 9
		coord.BatchSize = 16
		coord.Cache = cache
		if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
			t.Fatal(err)
		}
		res, err := coord.AverageRF(collection.FromTrees(queries))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run(nil)
	cache := core.NewQueryCache(0, 0)
	got := run(cache)
	if len(got) != len(want) || len(got) != len(queries) {
		t.Fatalf("results = %d cached vs %d uncached, want %d", len(got), len(want), len(queries))
	}
	for i := range got {
		if got[i].Index != want[i].Index ||
			math.Float64bits(got[i].AvgRF) != math.Float64bits(want[i].AvgRF) {
			t.Fatalf("query %d: cached %+v != uncached %+v", i, got[i], want[i])
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("repeat-heavy stream produced no cache hits: %+v", st)
	}
	if st.Misses > 16 {
		t.Errorf("misses = %d, want at most one batch (16): inserts are being deferred", st.Misses)
	}
	if st.Hits+st.Misses != uint64(len(queries)) {
		t.Errorf("hits %d + misses %d != queries %d", st.Hits, st.Misses, len(queries))
	}
}

// TestFingerprintStableAcrossExtractions guards the coordinator's cache
// key derivation: with a mask-reusing extractor, re-extracting the same
// tree after extracting others must reproduce the same fingerprint, and
// must agree with a fresh non-reusing extractor. A drift here poisons
// the cache silently — entries are stored and never found again.
func TestFingerprintStableAcrossExtractions(t *testing.T) {
	trees, ts := testCollection(21, 10, 25)
	ex := &bipart.Extractor{Taxa: ts, RequireComplete: true, ReuseMasks: true}
	bs, err := ex.Extract(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	k1 := core.TopologyFingerprint(bs)
	for i := 0; i < 5; i++ {
		if _, err := ex.Extract(trees[1+i]); err != nil {
			t.Fatal(err)
		}
		bs, err := ex.Extract(trees[0])
		if err != nil {
			t.Fatal(err)
		}
		if k := core.TopologyFingerprint(bs); k != k1 {
			t.Fatalf("iteration %d: fingerprint drifted: %+v vs %+v", i, k, k1)
		}
	}
	fresh := &bipart.Extractor{Taxa: ts, RequireComplete: true}
	bs2, err := fresh.Extract(trees[0])
	if err != nil {
		t.Fatal(err)
	}
	if k2 := core.TopologyFingerprint(bs2); k2 != k1 {
		t.Fatalf("reuse vs fresh extractor differ: %+v vs %+v", k2, k1)
	}
}
