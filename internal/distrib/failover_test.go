package distrib

import (
	"errors"
	"io"
	"math"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/newick"
	"repro/internal/tree"
)

// End-to-end fault tolerance: the acceptance contract is that killing one
// worker mid-AverageRF yields (a) the correct full result via shard
// re-dispatch in fail-fast mode and (b) a coverage-annotated partial
// result in -partial-results mode — and never a hang.

func serialize(trees []*tree.Tree) []string {
	out := make([]string, len(trees))
	for i, t := range trees {
		out[i] = newick.String(t, newick.WriteOptions{BranchLengths: true})
	}
	return out
}

// TestFailoverFullResultAfterWorkerDeath kills one of two workers between
// query batches and asserts the next batch still returns the exact
// single-node answer: the orphaned shard is adopted by the survivor from
// its post-load checkpoint.
func TestFailoverFullResultAfterWorkerDeath(t *testing.T) {
	trees, ts := testCollection(41, 16, 30)
	queries := trees[:8]
	local, err := core.BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.AverageRF(collection.FromTrees(queries), core.QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}

	kw := startKillableWorker(t)
	healthy := startWorkers(t, 1)
	coord, err := Dial([]string{kw.addr(), healthy[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.ChunkSize = 5 // 6 chunks round-robin: 15 trees per shard
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	if got := coord.slot(0).trees; got != 15 {
		t.Fatalf("shard 0 holds %d trees, want 15", got)
	}

	kw.kill()
	failoversBefore := shardFailovers(kw.addr()).Value()
	var out *Outcome
	err = runWithTimeout(t, "AverageRF after kill", func() error {
		var err error
		out, err = coord.AverageRFContext(nil, collection.FromTrees(queries))
		return err
	})
	if err != nil {
		t.Fatalf("failover query: %v", err)
	}

	// Exactness: the re-homed cluster answers like a single node.
	if len(out.Results) != len(want) {
		t.Fatalf("results = %d, want %d", len(out.Results), len(want))
	}
	for i := range want {
		if math.Abs(out.Results[i].AvgRF-want[i].AvgRF) > 1e-9 {
			t.Errorf("query %d: failover %v vs local %v", i, out.Results[i].AvgRF, want[i].AvgRF)
		}
	}
	// Annotations: full coverage, one failover, the dead worker named.
	if out.Partial || out.Coverage != 1 {
		t.Errorf("fail-fast outcome partial=%v coverage=%v, want full", out.Partial, out.Coverage)
	}
	if out.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", out.Failovers)
	}
	if len(out.DeadWorkers) != 1 || out.DeadWorkers[0] != kw.addr() {
		t.Errorf("dead workers = %v, want [%s]", out.DeadWorkers, kw.addr())
	}
	// Observability: counter and state gauge moved.
	if got := shardFailovers(kw.addr()).Value() - failoversBefore; got != 1 {
		t.Errorf("failover counter delta = %d, want 1", got)
	}
	if got := workerStateGauge(kw.addr()).Value(); got != float64(StateDead) {
		t.Errorf("worker state gauge = %v, want %v", got, float64(StateDead))
	}
	if got := coord.AliveWorkers(); got != 1 {
		t.Errorf("alive workers = %d, want 1", got)
	}
	// The survivor's shard now holds the whole collection.
	data, err := coord.SnapshotWorker(1)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumTrees() != len(trees) {
		t.Errorf("survivor holds %d trees after adoption, want %d", merged.NumTrees(), len(trees))
	}
	// And a later batch keeps answering exactly, without further failovers.
	out2, err := coord.AverageRFContext(nil, collection.FromTrees(queries))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Failovers != 0 || out2.Partial {
		t.Errorf("second batch failovers=%d partial=%v, want a quiet full batch", out2.Failovers, out2.Partial)
	}
	for i := range want {
		if math.Abs(out2.Results[i].AvgRF-want[i].AvgRF) > 1e-9 {
			t.Errorf("second batch query %d: %v vs local %v", i, out2.Results[i].AvgRF, want[i].AvgRF)
		}
	}
}

// TestPartialResultsCoverage kills one of two workers in -partial-results
// mode and checks the degraded answer is exactly the average over the
// surviving shard's trees, with coverage = survivors/total.
func TestPartialResultsCoverage(t *testing.T) {
	trees, ts := testCollection(43, 14, 20)
	queries := trees[:4]

	kw := startKillableWorker(t)
	healthy := startWorkers(t, 1)
	coord, err := Dial([]string{kw.addr(), healthy[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.PartialResults = true
	// 4 chunks of 5 round-robin: killable gets trees 0-4 and 10-14, the
	// survivor trees 5-9 and 15-19.
	coord.ChunkSize = 5
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}

	// The ground truth for the degraded answer: a local BFHRF over exactly
	// the surviving shard's trees.
	survivors := append(append([]*tree.Tree{}, trees[5:10]...), trees[15:20]...)
	local, err := core.BuildDefault(collection.FromTrees(survivors), ts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.AverageRF(collection.FromTrees(queries), core.QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}

	kw.kill()
	degradedBefore := degradedQueries().Value()
	var out *Outcome
	err = runWithTimeout(t, "degraded AverageRF", func() error {
		var err error
		out, err = coord.AverageRFContext(nil, collection.FromTrees(queries))
		return err
	})
	if err != nil {
		t.Fatalf("partial-results query: %v", err)
	}

	if !out.Partial {
		t.Error("outcome not marked partial")
	}
	if math.Abs(out.Coverage-0.5) > 1e-9 {
		t.Errorf("coverage = %v, want 0.5 (10 of 20 trees answered)", out.Coverage)
	}
	if len(out.Results) != len(want) {
		t.Fatalf("results = %d, want %d", len(out.Results), len(want))
	}
	for i := range want {
		if math.Abs(out.Results[i].AvgRF-want[i].AvgRF) > 1e-9 {
			t.Errorf("query %d: degraded %v vs local-over-survivors %v",
				i, out.Results[i].AvgRF, want[i].AvgRF)
		}
	}
	if len(out.DeadWorkers) != 1 || out.DeadWorkers[0] != kw.addr() {
		t.Errorf("dead workers = %v, want [%s]", out.DeadWorkers, kw.addr())
	}
	if got := degradedQueries().Value() - degradedBefore; got != 1 {
		t.Errorf("degraded-batch counter delta = %d, want 1", got)
	}
	// Partial mode never re-dispatches the shard.
	if out.Failovers != 0 {
		t.Errorf("failovers = %d in partial mode, want 0", out.Failovers)
	}
}

// TestPartialResultsAllShardsLost: when every shard is gone even partial
// mode must error, not fabricate an answer from zero reference trees.
func TestPartialResultsAllShardsLost(t *testing.T) {
	kw := startKillableWorker(t)
	coord, err := Dial([]string{kw.addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.PartialResults = true
	trees, ts := testCollection(3, 8, 10)
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	kw.kill()
	err = runWithTimeout(t, "AverageRF with no shards", func() error {
		_, err := coord.AverageRF(collection.FromTrees(trees[:2]))
		return err
	})
	if err == nil {
		t.Fatal("losing every shard should fail even in partial-results mode")
	}
}

// TestRetryExhaustionSurfacesError pins the retry loop's error contract:
// after MaxAttempts transient failures the caller sees both the attempt
// budget and the underlying transport error, and the retry counter moved.
func TestRetryExhaustionSurfacesError(t *testing.T) {
	kw := startKillableWorker(t)
	coord, err := Dial([]string{kw.addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.NoFailover = true
	coord.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: -1}
	trees, ts := testCollection(5, 8, 12)
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}

	kw.kill()
	retriesBefore := rpcRetries("Query", kw.addr()).Value()
	err = runWithTimeout(t, "AverageRF with exhausted retries", func() error {
		_, err := coord.AverageRF(collection.FromTrees(trees[:2]))
		return err
	})
	if err == nil {
		t.Fatal("query should fail once the retry budget is exhausted")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error should name the attempt budget, got: %v", err)
	}
	// The transport failure stays inspectable through the wrapping.
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) && !errors.Is(err, rpc.ErrShutdown) {
		var netErr net.Error
		if !errors.As(err, &netErr) {
			t.Errorf("error should wrap the underlying transport failure, got: %v", err)
		}
	}
	if got := rpcRetries("Query", kw.addr()).Value() - retriesBefore; got != 2 {
		t.Errorf("retry counter delta = %d, want 2 (attempts 2 and 3)", got)
	}
}

// TestHealthStateMachine drives recordHealth directly: healthy → suspect
// on the first failure, dead at DeadAfter consecutive failures, and a
// success before the threshold resets to healthy.
func TestHealthStateMachine(t *testing.T) {
	addrs := startWorkers(t, 1)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.DeadAfter = 3
	addr := addrs[0]
	state := func() WorkerState { return coord.WorkerStates()[addr] }

	if got := state(); got != StateHealthy {
		t.Fatalf("initial state = %v, want healthy", got)
	}
	coord.recordHealth(0, io.EOF)
	if got := state(); got != StateSuspect {
		t.Errorf("after 1 failure = %v, want suspect", got)
	}
	if got := workerStateGauge(addr).Value(); got != float64(StateSuspect) {
		t.Errorf("gauge after 1 failure = %v, want %v", got, float64(StateSuspect))
	}
	coord.recordHealth(0, nil)
	if got := state(); got != StateHealthy {
		t.Errorf("after recovery = %v, want healthy", got)
	}
	for k := 0; k < 3; k++ {
		coord.recordHealth(0, io.EOF)
	}
	if got := state(); got != StateDead {
		t.Errorf("after %d failures = %v, want dead", coord.DeadAfter, got)
	}
	if got := workerStateGauge(addr).Value(); got != float64(StateDead) {
		t.Errorf("gauge after death = %v, want %v", got, float64(StateDead))
	}
	// Dead is terminal: a late success must not resurrect the worker.
	coord.recordHealth(0, nil)
	if got := state(); got != StateDead {
		t.Errorf("dead worker resurrected to %v", got)
	}
}

// TestHealthLoopDetectsDeath runs the real background loop against a
// killable worker: after the kill the loop must walk the worker to dead,
// and the next fail-fast query must recover the shard and answer exactly.
func TestHealthLoopDetectsDeath(t *testing.T) {
	trees, ts := testCollection(47, 12, 24)
	queries := trees[:5]
	local, err := core.BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.AverageRF(collection.FromTrees(queries), core.QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}

	kw := startKillableWorker(t)
	healthy := startWorkers(t, 1)
	coord, err := Dial([]string{kw.addr(), healthy[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coord.ChunkSize = 4
	coord.DeadAfter = 2
	coord.RPCTimeout = 2 * time.Second
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}

	stop := coord.StartHealthLoop(10 * time.Millisecond)
	defer stop()
	kw.kill()
	deadline := time.Now().Add(15 * time.Second)
	for coord.WorkerStates()[kw.addr()] != StateDead {
		if time.Now().After(deadline) {
			t.Fatalf("health loop never declared the killed worker dead (state=%v)",
				coord.WorkerStates()[kw.addr()])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The loop orphaned the shard; the next query re-homes it silently.
	out, err := coord.AverageRFContext(nil, collection.FromTrees(queries))
	if err != nil {
		t.Fatalf("query after health-loop death: %v", err)
	}
	if out.Failovers != 1 || out.Partial {
		t.Errorf("failovers=%d partial=%v, want one failover and a full result", out.Failovers, out.Partial)
	}
	for i := range want {
		if math.Abs(out.Results[i].AvgRF-want[i].AvgRF) > 1e-9 {
			t.Errorf("query %d: %v vs local %v", i, out.Results[i].AvgRF, want[i].AvgRF)
		}
	}
}

// TestHealthLoopRaceHammer runs the health loop at full tilt against
// concurrent queries and state reads; its assertions are the race
// detector's (ci.sh runs this package under -race).
func TestHealthLoopRaceHammer(t *testing.T) {
	trees, ts := testCollection(53, 10, 20)
	addrs := startWorkers(t, 2)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	stop := coord.StartHealthLoop(time.Millisecond)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := coord.AverageRF(collection.FromTrees(trees[:3])); err != nil {
					t.Errorf("query under health hammer: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			coord.WorkerStates()
			coord.AliveWorkers()
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(done)
	wg.Wait()
	stop()
}

// TestAdoptIdempotent: a retried Adopt of the same shard must not
// double-count the orphan's trees.
func TestAdoptIdempotent(t *testing.T) {
	trees, ts := testCollection(59, 12, 20)
	w := &Worker{}
	var lr LoadReply
	if err := w.Init(InitArgs{TaxaNames: ts.Names()}, &lr); err != nil {
		t.Fatal(err)
	}
	if err := w.Load(LoadArgs{Newicks: serialize(trees[:10]), Seq: 1}, &lr); err != nil {
		t.Fatal(err)
	}
	orphan, err := core.Build(collection.FromTrees(trees[10:]), ts, core.BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := EncodeSnapshot(orphan)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Adopt(AdoptArgs{ShardID: 7, Data: snap}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.ShardTrees != 20 {
		t.Fatalf("after adoption shard holds %d trees, want 20", lr.ShardTrees)
	}
	// Redelivery (the coordinator retried after losing only the reply).
	if err := w.Adopt(AdoptArgs{ShardID: 7, Data: snap}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.ShardTrees != 20 {
		t.Errorf("retried adoption double-counted: %d trees, want 20", lr.ShardTrees)
	}
}

// TestLoadSeqIdempotent: a retried Load chunk must not double-count.
func TestLoadSeqIdempotent(t *testing.T) {
	trees, ts := testCollection(61, 10, 10)
	w := &Worker{}
	var lr LoadReply
	if err := w.Init(InitArgs{TaxaNames: ts.Names()}, &lr); err != nil {
		t.Fatal(err)
	}
	if err := w.Load(LoadArgs{Newicks: serialize(trees[:5]), Seq: 1}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.ShardTrees != 5 {
		t.Fatalf("shard holds %d trees, want 5", lr.ShardTrees)
	}
	if err := w.Load(LoadArgs{Newicks: serialize(trees[:5]), Seq: 1}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.ShardTrees != 5 {
		t.Errorf("duplicate chunk double-counted: %d trees, want 5", lr.ShardTrees)
	}
	if err := w.Load(LoadArgs{Newicks: serialize(trees[5:]), Seq: 2}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.ShardTrees != 10 {
		t.Errorf("next chunk not folded: %d trees, want 10", lr.ShardTrees)
	}
}
