package distrib

import (
	"context"
	"math"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
)

// TestSnapshotRoundTrip: encode→decode must reproduce an observationally
// identical hash, for both backends and both key schemes.
func TestSnapshotRoundTrip(t *testing.T) {
	trees, ts := testCollection(23, 70, 60) // 2 words per mask
	src := collection.FromTrees(trees)
	cases := []struct {
		name string
		opts core.BuildOptions
	}{
		{"openaddr", core.BuildOptions{RequireComplete: true, Backend: core.BackendOpenAddressing}},
		{"map", core.BuildOptions{RequireComplete: true, Backend: core.BackendMap}},
		{"map-compressed", core.BuildOptions{RequireComplete: true, CompressKeys: true}},
		{"succinct", core.BuildOptions{RequireComplete: true, Backend: core.BackendSuccinct}},
	}
	for _, c := range cases {
		h, err := core.Build(src, ts, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		data, err := EncodeSnapshot(h)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.name, err)
		}
		got, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.name, err)
		}
		if got.NumTrees() != h.NumTrees() ||
			got.UniqueBipartitions() != h.UniqueBipartitions() ||
			got.TotalBipartitions() != h.TotalBipartitions() ||
			got.Weighted() != h.Weighted() ||
			got.Compressed() != h.Compressed() ||
			got.Backend() != h.Backend() {
			t.Fatalf("%s: restored shape differs: trees %d/%d unique %d/%d total %d/%d",
				c.name, got.NumTrees(), h.NumTrees(),
				got.UniqueBipartitions(), h.UniqueBipartitions(),
				got.TotalBipartitions(), h.TotalBipartitions())
		}
		// Entries are the full observable state: byte-identical, in order.
		eh, err := h.Entries(0)
		if err != nil {
			t.Fatal(err)
		}
		eg, err := got.Entries(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(eh) != len(eg) {
			t.Fatalf("%s: %d vs %d entries", c.name, len(eh), len(eg))
		}
		for i := range eh {
			if eh[i].Bipartition.Key() != eg[i].Bipartition.Key() ||
				eh[i].Frequency != eg[i].Frequency ||
				eh[i].MeanLength != eg[i].MeanLength {
				t.Fatalf("%s: entry %d differs", c.name, i)
			}
		}
	}
}

func TestDecodeSnapshotRejectsCorrupt(t *testing.T) {
	trees, ts := testCollection(5, 16, 10)
	h, err := core.Build(collection.FromTrees(trees), ts, core.BuildOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSnapshot(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(data[:len(data)/2]); err == nil {
		t.Error("truncated snapshot decoded")
	}
	if _, err := DecodeSnapshot(append([]byte("XXXX"), data[4:]...)); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := DecodeSnapshot(append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing bytes decoded")
	}
}

// TestMigrateShard moves a loaded shard onto a fresh worker and verifies
// the cluster still answers exactly like a single-node run.
func TestMigrateShard(t *testing.T) {
	trees, ts := testCollection(31, 20, 120)
	queries := trees[:30]
	local, err := core.BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.AverageRF(collection.FromTrees(queries), core.QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}

	// Three workers; only the first two get reference chunks. Then migrate
	// shard 0 onto the idle third worker and retire worker 0 by re-pointing
	// the coordinator at workers {2, 1}.
	addrs := startWorkers(t, 3)
	coord, err := Dial(addrs[:2])
	if err != nil {
		t.Fatal(err)
	}
	coord.ChunkSize = 13
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	data, err := coord.SnapshotWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	coord.Close()

	coord2, err := Dial([]string{addrs[2], addrs[1]})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if err := coord2.RestoreWorker(0, data); err != nil {
		t.Fatal(err)
	}
	// Re-fold the totals from the new cluster shape (Load normally does
	// this): probe both workers with an empty query.
	coord2.sum, coord2.r = 0, 0
	for i := 0; i < coord2.NumWorkers(); i++ {
		var reply QueryReply
		if err := coord2.call(context.Background(), i, "Query", QueryArgs{}, &reply); err != nil {
			t.Fatal(err)
		}
		coord2.sum += reply.ShardSum
		coord2.r += reply.ShardTrees
	}
	if coord2.r != len(trees) {
		t.Fatalf("migrated cluster holds %d trees, want %d", coord2.r, len(trees))
	}

	got, err := coord2.AverageRF(collection.FromTrees(queries))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i].AvgRF-want[i].AvgRF) > 1e-9 {
			t.Errorf("query %d: migrated cluster %v vs local %v", i, got[i].AvgRF, want[i].AvgRF)
		}
	}
}

// TestClusterSnapshotSaveLoad persists a loaded cluster as a
// worker-layout epoch and restores it onto a fresh cluster — including
// one with fewer workers, which must merge the extra parts — checking
// the restored cluster answers exactly like a single-node build.
func TestClusterSnapshotSaveLoad(t *testing.T) {
	trees, ts := testCollection(47, 24, 90)
	queries := trees[:20]
	local, err := core.BuildDefault(collection.FromTrees(trees), ts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.AverageRF(collection.FromTrees(queries), core.QueryOptions{RequireComplete: true})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	addrs := startWorkers(t, 3)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	coord.ChunkSize = 11
	if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
		t.Fatal(err)
	}
	epoch, err := coord.SaveSnapshotsContext(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first save published epoch %d, want 1", epoch)
	}
	wantFP := coord.Fingerprint()
	coord.Close()

	for _, nw := range []int{3, 2} {
		fresh := startWorkers(t, nw)
		coord2, err := Dial(fresh)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord2.LoadSnapshotContext(context.Background(), dir); err != nil {
			t.Fatalf("%d workers: %v", nw, err)
		}
		if coord2.r != len(trees) {
			t.Fatalf("%d workers: restored cluster holds %d trees, want %d", nw, coord2.r, len(trees))
		}
		if coord2.Fingerprint() != wantFP {
			t.Fatalf("%d workers: fingerprint %016x, want %016x", nw, coord2.Fingerprint(), wantFP)
		}
		got, err := coord2.AverageRF(collection.FromTrees(queries))
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i].AvgRF-want[i].AvgRF) > 1e-9 {
				t.Errorf("%d workers: query %d: restored %v vs local %v", nw, i, got[i].AvgRF, want[i].AvgRF)
			}
		}
		coord2.Close()
	}
}

// TestInitBackendSelection drives the InitArgs backend plumbing end to end.
func TestInitBackendSelection(t *testing.T) {
	trees, ts := testCollection(7, 12, 40)
	for _, backend := range []core.Backend{core.BackendOpenAddressing, core.BackendMap, core.BackendSuccinct} {
		addrs := startWorkers(t, 1)
		coord, err := Dial(addrs)
		if err != nil {
			t.Fatal(err)
		}
		coord.Backend = backend
		coord.HashShards = 4
		if err := coord.Load(collection.FromTrees(trees), ts, false); err != nil {
			t.Fatal(err)
		}
		data, err := coord.SnapshotWorker(0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		if h.Backend() != backend {
			t.Errorf("worker built %v hash, want %v", h.Backend(), backend)
		}
		coord.Close()
	}
}
