package tabfmt

import (
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	tab := New("Demo", "Algorithm", "n", "Time(m)")
	tab.AddRow("BFHRF8", 100, 0.04)
	tab.AddRow("DS", 100, 3.72)
	var sb strings.Builder
	if err := tab.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "Algorithm", "BFHRF8", "3.72", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestWriteCSV(t *testing.T) {
	tab := New("", "a", "b")
	tab.AddRow("plain", 1)
	tab.AddRow(`with,comma`, `with"quote`)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.0001234, "0.0001234"},
		{3.14159, "3.14"},
		{1234.5678, "1234.6"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNumRows(t *testing.T) {
	tab := New("x", "c")
	if tab.NumRows() != 0 {
		t.Error("fresh table should have 0 rows")
	}
	tab.AddRow(1)
	if tab.NumRows() != 1 {
		t.Error("NumRows != 1")
	}
}
