// Package tabfmt renders plain-text tables and CSV for the experiment
// harness, so rfbench output mirrors the layout of the paper's tables.
package tabfmt

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows of string cells under a fixed header.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// FormatFloat renders a float compactly: two decimals for ordinary
// magnitudes, more precision for small values.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av < 0.01:
		return fmt.Sprintf("%.4g", v)
	case av < 100:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				if pad := widths[i] - utf8.RuneCountInString(c); pad > 0 {
					sb.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for cells containing
// commas, quotes or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvQuote(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
