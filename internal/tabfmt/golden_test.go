package tabfmt

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenTable exercises every rendering edge in one table: alignment
// against a wide header and a wide cell, float formatting across the
// magnitude breakpoints, the paper's "-" and "*" cells, unicode widths,
// and CSV-hostile cells (commas, quotes, newlines).
func goldenTable() *Table {
	t := New("Table X — rendering fixture (n=100)",
		"Algorithm", "n", "R", "Time(m)", "Memory(MB)", "Note")
	t.AddRow("DS", 100, 1000, "12.345*", "512.0", "estimated, \"quoted\"")
	t.AddRow("DSMP8", 100, 1000, 0.001234, 128.25, "floats: small")
	t.AddRow("HashRF", 100, 1000, "-", "-", "refused, unweighted")
	t.AddRow("BFHRF8", 100, 1000, 123456.789, 0.0, "floats: large,comma")
	t.AddRow("BFHRF16-über", 100, 100000, 3.14159, 42.5, "unicode label")
	t.AddRow("X", 1, 1, "a\nb", "", "embedded newline")
	return t
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/tabfmt -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestWriteTextGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenTable().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.txt.golden", sb.String())
}

func TestWriteCSVGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenTable().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.csv.golden", sb.String())
}
