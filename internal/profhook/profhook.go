// Package profhook wires Go's execution profilers into the CLIs as three
// standard flags (-cpuprofile, -memprofile, -trace), so hot paths can be
// inspected with `go tool pprof` / `go tool trace` on production-like
// runs instead of micro-benchmarks.
package profhook

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles holds the destinations selected on the command line; empty
// strings disable the corresponding profiler.
type Profiles struct {
	CPU   string
	Mem   string
	Trace string
}

// RegisterFlags adds the three profiling flags to fs (the default flag
// set when fs is nil) and returns the struct they populate.
func RegisterFlags(fs *flag.FlagSet) *Profiles {
	if fs == nil {
		fs = flag.CommandLine
	}
	p := &Profiles{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	fs.StringVar(&p.Mem, "memprofile", "", "write an allocation profile to this file on exit (go tool pprof)")
	fs.StringVar(&p.Trace, "trace", "", "write an execution trace to this file (go tool trace)")
	return p
}

// Enabled reports whether any profiler was requested.
func (p *Profiles) Enabled() bool { return p.CPU != "" || p.Mem != "" || p.Trace != "" }

// Start begins the requested profilers and returns the function that
// stops them and writes the heap profile. The returned stop is never nil
// and is idempotent, so it is safe both to defer and to call explicitly
// before os.Exit (which skips deferred calls). On error every profiler
// already started is stopped.
func (p *Profiles) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() error {
		var first error
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil && first == nil {
				first = err
			}
			cpuF = nil
		}
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil && first == nil {
				first = err
			}
			traceF = nil
		}
		if p.Mem != "" {
			if err := writeHeapProfile(p.Mem); err != nil && first == nil {
				first = err
			}
			p.Mem = "" // idempotence: write the heap profile once
		}
		return first
	}

	if p.CPU != "" {
		cpuF, err = os.Create(p.CPU)
		if err != nil {
			return noop, fmt.Errorf("profhook: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			return noop, fmt.Errorf("profhook: starting CPU profile: %w", err)
		}
	}
	if p.Trace != "" {
		traceF, err = os.Create(p.Trace)
		if err != nil {
			cleanup()
			return noop, fmt.Errorf("profhook: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return noop, fmt.Errorf("profhook: starting trace: %w", err)
		}
	}
	return cleanup, nil
}

func noop() error { return nil }

// writeHeapProfile snapshots live allocations after a GC, the profile
// that explains peak-memory findings from the benchmark records.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profhook: %w", err)
	}
	runtime.GC() // material allocations only, not garbage awaiting collection
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("profhook: writing heap profile: %w", err)
	}
	return f.Close()
}
