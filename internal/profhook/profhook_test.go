package profhook

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "c.out", "-memprofile", "m.out", "-trace", "t.out"}); err != nil {
		t.Fatal(err)
	}
	if p.CPU != "c.out" || p.Mem != "m.out" || p.Trace != "t.out" {
		t.Errorf("parsed = %+v", p)
	}
	if !p.Enabled() {
		t.Error("Enabled should be true")
	}
	if (&Profiles{}).Enabled() {
		t.Error("zero Profiles should be disabled")
	}
}

func TestStartDisabledIsNoop(t *testing.T) {
	stop, err := (&Profiles{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("noop stop: %v", err)
	}
}

func TestStartWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	p := &Profiles{
		CPU:   filepath.Join(dir, "cpu.pprof"),
		Mem:   filepath.Join(dir, "heap.pprof"),
		Trace: filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := 0
	buf := make([]byte, 1<<20)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Errorf("second stop: %v", err)
	}
	for _, path := range []string{filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "heap.pprof"), filepath.Join(dir, "trace.out")} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestStartBadPathFails(t *testing.T) {
	p := &Profiles{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}
	stop, err := p.Start()
	if err == nil {
		stop()
		t.Fatal("unwritable CPU profile path should fail")
	}
	if stop == nil {
		t.Fatal("stop must never be nil")
	}
	if err := stop(); err != nil {
		t.Errorf("stop after failed start: %v", err)
	}
}
