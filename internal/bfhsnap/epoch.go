package bfhsnap

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// The epoch store: a directory of immutable epoch-NNNNNN/ snapshot
// directories plus a CURRENT pointer file. An epoch is built in a hidden
// .tmp-epoch-NNNNNN/ staging directory, fsynced, renamed into place, and
// only then named by CURRENT — two atomic renames, so at every instant
// CURRENT names a complete, fully fsynced epoch and a crash never leaves a
// partially visible one (ARCHITECTURE.md, failure-model promise 4).
// Readers pin the current epoch; Delta publishes a successor reusing
// unchanged part files via hard links (copy-on-write per part) and the
// superseded epoch is reaped once its last pin is released.

const (
	currentFile  = "CURRENT"
	manifestFile = "MANIFEST"
	epochPrefix  = "epoch-"
	tmpPrefix    = ".tmp-epoch-"

	// LayoutTable marks an epoch whose parts are contiguous shard ranges
	// of one hash (bfhrf, single node). LayoutWorker marks one part per
	// distributed worker, each a complete stream of that worker's partial
	// hash (bfhrfd).
	LayoutTable  = "table"
	LayoutWorker = "worker"

	// maxTableParts bounds how many part files a table-layout epoch is
	// split into. More parts mean finer copy-on-write reuse for deltas;
	// the cap keeps tiny tables from scattering into per-shard files.
	maxTableParts = 16
)

// Manifest is the epoch's authoritative metadata (MANIFEST, a JSON file).
// Totals live here, not in the part headers: copy-on-write hard-links
// part files from older epochs whose embedded headers are stale.
type Manifest struct {
	Version    int    `json:"version"`
	Epoch      int    `json:"epoch"`
	Layout     string `json:"layout"`
	Backend    string `json:"backend"`
	Compressed bool   `json:"compressed"`
	Weighted   bool   `json:"weighted"`
	Trees      int    `json:"trees"`
	Sum        uint64 `json:"sum"`
	LenSumBits uint64 `json:"len_sum_bits"`
	Taxa       int    `json:"taxa"`
	Shards     int    `json:"shards"`
	// Fingerprint is core.FreqHash.Fingerprint for table layout and the
	// coordinator's collection fingerprint for worker layout.
	Fingerprint uint64         `json:"fingerprint"`
	Parts       []ManifestPart `json:"parts"`
}

// ManifestPart names one part file and the shard range it carries
// ([From, To); worker layout uses the full range in every part).
type ManifestPart struct {
	File string `json:"file"`
	From int    `json:"from"`
	To   int    `json:"to"`
}

// LenSum decodes the exact weighted total.
func (m *Manifest) LenSum() float64 { return math.Float64frombits(m.LenSumBits) }

// Store manages the epoch directory. Pin counts and obsolescence marks
// are in-process state: epochs are only reaped by the process that
// obsoleted them (or by an explicit Compact), never from under another
// process's reader.
type Store struct {
	dir string

	mu       sync.Mutex
	current  int // 0 = no epoch published yet
	pins     map[int]int
	obsolete map[int]bool
}

// Open opens (creating if needed) an epoch store at dir and runs crash
// recovery: leftover staging directories are removed, and any epoch
// directory numbered above CURRENT — a publish that crashed between the
// directory rename and the CURRENT update — is deleted, since nothing
// ever named it.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bfhsnap: %w", err)
	}
	s := &Store{dir: dir, pins: map[int]int{}, obsolete: map[int]bool{}}
	cur, err := s.readCurrent()
	if err != nil {
		return nil, err
	}
	s.current = cur
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("bfhsnap: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("bfhsnap: clearing stale staging dir: %w", err)
			}
		case strings.HasPrefix(name, epochPrefix):
			if n, ok := parseEpoch(name); ok && n > cur {
				if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
					return nil, fmt.Errorf("bfhsnap: clearing unpublished epoch: %w", err)
				}
			}
		}
	}
	s.updateGauge()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Reload re-reads the CURRENT pointer from disk, picking up epochs
// published by another process (a delta or compact run) since Open.
// Unlike Open it never deletes anything — a concurrent publisher may
// legitimately own staging directories and not-yet-current epochs — so
// it is safe to call from a long-lived serving process at any time.
// Existing pins are unaffected.
func (s *Store) Reload() error {
	cur, err := s.readCurrent()
	if err != nil {
		return err
	}
	s.mu.Lock()
	if cur > s.current {
		s.current = cur
	}
	s.mu.Unlock()
	s.updateGauge()
	return nil
}

// Current returns the published epoch number (0 when the store is empty).
func (s *Store) Current() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

func epochName(n int) string { return fmt.Sprintf("%s%06d", epochPrefix, n) }

func parseEpoch(name string) (int, bool) {
	n, err := strconv.Atoi(strings.TrimPrefix(name, epochPrefix))
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

func (s *Store) epochDir(n int) string { return filepath.Join(s.dir, epochName(n)) }

func (s *Store) readCurrent() (int, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, currentFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("bfhsnap: %w", err)
	}
	name := strings.TrimSpace(string(b))
	n, ok := parseEpoch(name)
	if !ok {
		return 0, fmt.Errorf("bfhsnap: CURRENT names %q, not an epoch directory", name)
	}
	if _, err := os.Stat(filepath.Join(s.dir, name, manifestFile)); err != nil {
		return 0, fmt.Errorf("bfhsnap: CURRENT names %s but its manifest is unreadable: %w", name, err)
	}
	return n, nil
}

// epochsOnDisk lists published epoch numbers, ascending.
func (s *Store) epochsOnDisk() []int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range entries {
		if n, ok := parseEpoch(e.Name()); ok && strings.HasPrefix(e.Name(), epochPrefix) {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

func (s *Store) updateGauge() { mEpochActive.Set(float64(len(s.epochsOnDisk()))) }

// Manifest reads epoch n's manifest.
func (s *Store) Manifest(n int) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(s.epochDir(n), manifestFile))
	if err != nil {
		return nil, fmt.Errorf("bfhsnap: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("bfhsnap: epoch %d manifest: %w", n, err)
	}
	if m.Epoch != n {
		return nil, fmt.Errorf("bfhsnap: epoch %d manifest declares epoch %d", n, m.Epoch)
	}
	if m.Layout != LayoutTable && m.Layout != LayoutWorker {
		return nil, fmt.Errorf("bfhsnap: epoch %d has unknown layout %q", n, m.Layout)
	}
	if len(m.Parts) == 0 {
		return nil, fmt.Errorf("bfhsnap: epoch %d manifest lists no parts", n)
	}
	return &m, nil
}

// PartPath resolves a manifest part to its on-disk path.
func (s *Store) PartPath(n int, p ManifestPart) string {
	return filepath.Join(s.epochDir(n), p.File)
}

// partSource describes how one part file of a new epoch is produced:
// either freshly written by write, or hard-linked (copy-on-write) from
// linkFrom, an existing file in an older epoch.
type partSource struct {
	name     string
	linkFrom string
	write    func(w io.Writer) error
}

// publish stages a new epoch directory, fsyncs it, renames it into place,
// and flips CURRENT. Returns the new epoch number. The two fault points
// (before the directory rename and before the CURRENT rename) let chaos
// schedules kill the process in each publish window.
func (s *Store) publish(man *Manifest, parts []partSource) (int, error) {
	s.mu.Lock()
	n := s.current + 1
	s.mu.Unlock()

	man.Version = FormatVersion
	man.Epoch = n
	tmp := filepath.Join(s.dir, tmpPrefix+fmt.Sprintf("%06d", n))
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("bfhsnap: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return 0, fmt.Errorf("bfhsnap: %w", err)
	}
	cleanup := true
	defer func() {
		if cleanup {
			os.RemoveAll(tmp)
		}
	}()

	for _, p := range parts {
		dst := filepath.Join(tmp, p.name)
		if p.linkFrom != "" {
			if err := linkOrCopy(p.linkFrom, dst); err != nil {
				return 0, err
			}
			continue
		}
		if err := writePartFile(dst, p.write); err != nil {
			return 0, err
		}
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("bfhsnap: %w", err)
	}
	if err := writePartFile(filepath.Join(tmp, manifestFile), func(w io.Writer) error {
		_, werr := w.Write(append(mb, '\n'))
		return werr
	}); err != nil {
		return 0, err
	}
	syncDir(tmp)

	if err := faultinject.Hit(faultinject.PointSnapRename); err != nil {
		return 0, fmt.Errorf("bfhsnap: publishing epoch %d: %w", n, err)
	}
	final := s.epochDir(n)
	os.RemoveAll(final) // an unpublished leftover only; recovery removes these too
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("bfhsnap: %w", err)
	}
	cleanup = false
	syncDir(s.dir)

	if err := faultinject.Hit(faultinject.PointSnapRename); err != nil {
		return 0, fmt.Errorf("bfhsnap: naming epoch %d current: %w", n, err)
	}
	if err := s.writeCurrent(n); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.current = n
	s.mu.Unlock()
	s.updateGauge()
	return n, nil
}

// writeCurrent atomically points CURRENT at epoch n.
func (s *Store) writeCurrent(n int) error {
	path := filepath.Join(s.dir, currentFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(epochName(n)+"\n"), 0o644); err != nil {
		return fmt.Errorf("bfhsnap: %w", err)
	}
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("bfhsnap: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// writePartFile writes one staged file with an fsync before returning;
// durability of the whole epoch is sealed by the later directory fsyncs.
func writePartFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bfhsnap: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("bfhsnap: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("bfhsnap: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bfhsnap: closing %s: %w", path, err)
	}
	return nil
}

// linkOrCopy hard-links src to dst (the copy-on-write reuse path),
// falling back to a byte copy on filesystems without hard links.
func linkOrCopy(src, dst string) error {
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("bfhsnap: %w", err)
	}
	defer in.Close()
	return writePartFile(dst, func(w io.Writer) error {
		_, cerr := io.Copy(w, in)
		return cerr
	})
}

// syncDir best-effort fsyncs a directory so just-created or just-renamed
// entries are durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// manifestFor captures h's metadata for a table-layout epoch.
func manifestFor(h *core.FreqHash) *Manifest {
	return &Manifest{
		Layout:      LayoutTable,
		Backend:     h.Backend().String(),
		Compressed:  h.Compressed(),
		Weighted:    h.Weighted(),
		Trees:       h.NumTrees(),
		Sum:         h.TotalBipartitions(),
		LenSumBits:  math.Float64bits(h.TotalLengthSum()),
		Taxa:        h.Taxa().Len(),
		Shards:      h.NumShards(),
		Fingerprint: h.Fingerprint(),
	}
}

// tableParts splits shards across at most maxTableParts contiguous
// ranges — the copy-on-write grain for delta builds.
func tableParts(shards int) []ManifestPart {
	nparts := shards
	if nparts > maxTableParts {
		nparts = maxTableParts
	}
	parts := make([]ManifestPart, 0, nparts)
	for i := 0; i < nparts; i++ {
		from := shards * i / nparts
		to := shards * (i + 1) / nparts
		parts = append(parts, ManifestPart{File: fmt.Sprintf("part-%04d.bfh", i), From: from, To: to})
	}
	return parts
}

// SaveEpoch publishes a full table-layout snapshot of h as the next
// epoch. Earlier epochs are left on disk (instant rollback material)
// until Compact or a delta obsoletes them.
func (s *Store) SaveEpoch(h *core.FreqHash) (int, error) {
	man := manifestFor(h)
	man.Parts = tableParts(h.NumShards())
	parts := make([]partSource, 0, len(man.Parts))
	for _, p := range man.Parts {
		from, to := p.From, p.To
		parts = append(parts, partSource{name: p.File, write: func(w io.Writer) error {
			_, err := WriteStream(w, h, from, to)
			return err
		}})
	}
	return s.publish(man, parts)
}

// PublishWorkerEpoch publishes a worker-layout epoch: one complete
// snapshot stream per distributed worker, written by the given writers.
// man.Fingerprint is the coordinator's collection fingerprint. Writers
// run in order, and all of them before MANIFEST is serialized, so a
// caller that only learns totals (shards, weighted, length sums) while
// streaming its parts may fill the manifest from inside its writers.
func (s *Store) PublishWorkerEpoch(man *Manifest, writers []func(w io.Writer) error) (int, error) {
	man.Layout = LayoutWorker
	man.Parts = make([]ManifestPart, 0, len(writers))
	parts := make([]partSource, 0, len(writers))
	for i, wr := range writers {
		i, wr := i, wr
		name := fmt.Sprintf("worker-%04d.bfh", i)
		man.Parts = append(man.Parts, ManifestPart{File: name, From: 0, To: man.Shards})
		parts = append(parts, partSource{name: name, write: func(w io.Writer) error {
			if err := wr(w); err != nil {
				return err
			}
			man.Parts[i].To = man.Shards // writers may have just learned the shard count
			return nil
		}})
	}
	return s.publish(man, parts)
}

// Epoch is a pinned, loaded snapshot: an exclusive in-memory hash (each
// Pin loads its own copy) plus the refcount that delays reaping of the
// on-disk directory while any reader might still re-open part files.
type Epoch struct {
	N        int
	Hash     *core.FreqHash
	Manifest *Manifest
	store    *Store
	released bool
}

// Pin loads the current epoch and holds a reference to its directory.
// The returned hash is the caller's own copy — mutating it (delta builds
// do) never affects other pins. Callers must Release when done.
func (s *Store) Pin() (*Epoch, error) {
	s.mu.Lock()
	n := s.current
	if n == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("bfhsnap: store %s has no published epoch", s.dir)
	}
	s.pins[n]++
	s.mu.Unlock()

	e, err := s.loadEpoch(n)
	if err != nil {
		s.unpin(n)
		return nil, err
	}
	return e, nil
}

func (s *Store) loadEpoch(n int) (*Epoch, error) {
	start := time.Now()
	man, err := s.Manifest(n)
	if err != nil {
		return nil, err
	}
	if man.Layout != LayoutTable {
		return nil, fmt.Errorf("bfhsnap: epoch %d has %q layout (a distributed snapshot); load it with bfhrfd", n, man.Layout)
	}
	hdr, err := ReadHeaderFile(s.PartPath(n, man.Parts[0]))
	if err != nil {
		return nil, err
	}
	l, err := NewLoader(hdr)
	if err != nil {
		return nil, err
	}
	l.OverrideTotals(man.Trees, man.Sum, man.LenSum(), man.Weighted)
	for _, p := range man.Parts {
		if err := s.readPart(l, n, p); err != nil {
			return nil, err
		}
	}
	h, err := l.Finish()
	if err != nil {
		return nil, err
	}
	if got := h.Fingerprint(); got != man.Fingerprint {
		return nil, fmt.Errorf("bfhsnap: epoch %d fingerprint %016x, manifest declares %016x", n, got, man.Fingerprint)
	}
	mSnapshotLoadSeconds.Observe(time.Since(start).Seconds())
	return &Epoch{N: n, Hash: h, Manifest: man, store: s}, nil
}

func (s *Store) readPart(l *Loader, n int, p ManifestPart) error {
	f, size, err := openSized(s.PartPath(n, p))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := l.ReadStream(bufio.NewReaderSize(f, 1<<20), size); err != nil {
		return fmt.Errorf("bfhsnap: epoch %d part %s: %w", n, p.File, err)
	}
	return nil
}

// Release drops the pin. If the epoch was obsoleted (superseded by a
// delta or marked by Compact) and this was the last pin, its directory is
// reaped.
func (e *Epoch) Release() {
	if e.released {
		return
	}
	e.released = true
	e.store.unpin(e.N)
}

func (s *Store) unpin(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[n]--
	if s.pins[n] <= 0 {
		delete(s.pins, n)
		if s.obsolete[n] && n != s.current {
			s.reapLocked(n)
		}
	}
}

// markObsolete flags n for reaping once unpinned (immediately if already
// unpinned).
func (s *Store) markObsolete(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n == 0 || n == s.current {
		return
	}
	s.obsolete[n] = true
	if s.pins[n] == 0 {
		s.reapLocked(n)
	}
}

// reapLocked removes epoch n's directory. Requires s.mu. A failed or
// fault-injected removal leaves the directory for the next Compact; the
// crash window (partially deleted directory) is harmless because nothing
// names a non-CURRENT epoch.
func (s *Store) reapLocked(n int) {
	if err := faultinject.Hit(faultinject.PointSnapReap); err != nil {
		return
	}
	os.RemoveAll(s.epochDir(n))
	delete(s.obsolete, n)
	s.updateGauge()
}

// Compact reaps every non-current epoch that is not pinned, and marks
// pinned ones for reaping on their last Release. Returns how many epoch
// directories remain on disk.
func (s *Store) Compact() int {
	s.mu.Lock()
	cur := s.current
	for _, n := range s.epochsOnDisk() {
		if n == cur {
			continue
		}
		if s.pins[n] > 0 {
			s.obsolete[n] = true
			continue
		}
		s.reapLocked(n)
	}
	s.mu.Unlock()
	s.updateGauge()
	return len(s.epochsOnDisk())
}
