package bfhsnap

import (
	"encoding/binary"
	"math"
	"unsafe"

	"repro/internal/bfhtable"
)

// Zero-copy views between the on-disk little-endian arrays and the
// in-memory slot arrays. On a little-endian host the two layouts are
// byte-identical, so a section payload read off disk is handed to the
// table as-is (provided the buffer landed 8-aligned, which the Go
// allocator gives every large allocation) and a writer aliases the table's
// arrays straight into the output stream. The decode-copy fallbacks keep
// the format portable to big-endian hosts.

// hostLittle reports the native byte order.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aligned8 reports whether p's backing array starts on an 8-byte boundary.
func aligned8(p []byte) bool {
	return len(p) == 0 || uintptr(unsafe.Pointer(&p[0]))%8 == 0
}

// entrySize is the wire (and in-memory) size of one bfhtable.Entry.
const entrySize = 16

// u64sView interprets p (length 8n) as n little-endian uint64s, aliasing
// when the host layout matches.
func u64sView(p []byte) []uint64 {
	n := len(p) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && aligned8(p) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	return out
}

// u32sView interprets p (length 4n) as n little-endian uint32s. Alignment
// of 4 suffices; every payload offset used for a u32 array is a multiple
// of 4 past an 8-aligned base.
func u32sView(p []byte) []uint32 {
	n := len(p) / 4
	if n == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	return out
}

// entriesView interprets p (length 16n) as n entries: freq u32, size u32,
// length-sum float64 bits — exactly bfhtable.Entry's memory layout.
func entriesView(p []byte) []bfhtable.Entry {
	n := len(p) / entrySize
	if n == 0 {
		return nil
	}
	if hostLittle && aligned8(p) {
		return unsafe.Slice((*bfhtable.Entry)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]bfhtable.Entry, n)
	for i := range out {
		out[i] = decodeEntry(p[i*entrySize:])
	}
	return out
}

func decodeEntry(p []byte) bfhtable.Entry {
	return bfhtable.Entry{
		Freq:      binary.LittleEndian.Uint32(p[0:]),
		Size:      binary.LittleEndian.Uint32(p[4:]),
		LengthSum: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
	}
}

func encodeEntry(p []byte, e bfhtable.Entry) {
	binary.LittleEndian.PutUint32(p[0:], e.Freq)
	binary.LittleEndian.PutUint32(p[4:], e.Size)
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(e.LengthSum))
}

// u64sBytes returns s's little-endian wire bytes, aliasing on a matching
// host and encoding into (a grown) scratch otherwise. The returned slice
// is valid until scratch's next use.
func u64sBytes(s []uint64, scratch []byte) ([]byte, []byte) {
	if len(s) == 0 {
		return nil, scratch
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8), scratch
	}
	scratch = grow(scratch, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(scratch[i*8:], v)
	}
	return scratch, scratch
}

// u32sBytes is u64sBytes for uint32 arrays.
func u32sBytes(s []uint32, scratch []byte) ([]byte, []byte) {
	if len(s) == 0 {
		return nil, scratch
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4), scratch
	}
	scratch = grow(scratch, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(scratch[i*4:], v)
	}
	return scratch, scratch
}

// entriesBytes is u64sBytes for entry arrays.
func entriesBytes(s []bfhtable.Entry, scratch []byte) ([]byte, []byte) {
	if len(s) == 0 {
		return nil, scratch
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*entrySize), scratch
	}
	scratch = grow(scratch, len(s)*entrySize)
	for i, e := range s {
		encodeEntry(scratch[i*entrySize:], e)
	}
	return scratch, scratch
}

func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
