package bfhsnap_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/bfhsnap"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// Example builds a BFH over a small reference collection, saves it to a
// single snapshot file, and loads it back without re-parsing a single
// tree. The loaded hash answers queries exactly like the original.
func Example() {
	ts := taxa.Generate(24)
	rng := rand.New(rand.NewSource(7))
	trees := make([]*tree.Tree, 50)
	for i := range trees {
		trees[i] = simphy.RandomBinary(ts, rng)
	}
	h, err := core.Build(collection.FromTrees(trees), ts, core.BuildOptions{
		RequireComplete: true, Workers: 1, Backend: core.BackendOpenAddressing,
	})
	if err != nil {
		panic(err)
	}

	dir, err := os.MkdirTemp("", "bfhsnap-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ref.bfh")

	if _, err := bfhsnap.SaveFile(path, h); err != nil {
		panic(err)
	}
	loaded, hdr, err := bfhsnap.LoadFile(path)
	if err != nil {
		panic(err)
	}

	q := simphy.RandomBinary(ts, rng)
	a, _ := h.AverageRFOne(q, core.QueryOptions{RequireComplete: true})
	b, _ := loaded.AverageRFOne(q, core.QueryOptions{RequireComplete: true})
	fmt.Printf("backend=%s trees=%d identical=%v\n", hdr.Backend, hdr.Trees, a == b)
	// Output:
	// backend=openaddr trees=50 identical=true
}
