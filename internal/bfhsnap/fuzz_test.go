package bfhsnap

import (
	"bytes"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
)

// FuzzSnapshot throws arbitrary bytes at the snapshot decoder. The
// decoder must reject corruption with an error — never panic, never
// over-allocate past the stream's own size — and any stream it does
// accept must produce a structurally sound hash. The seed corpus holds a
// valid stream per backend plus truncations and bit flips of each.
func FuzzSnapshot(f *testing.F) {
	trees, ts := testCollection(21, 40, 12)
	for _, b := range allBackends {
		h, err := core.Build(collection.FromTrees(trees), ts, core.BuildOptions{
			RequireComplete: true, Workers: 1, Backend: b, HashShards: 2,
		})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := WriteStream(&buf, h, 0, h.NumShards()); err != nil {
			f.Fatal(err)
		}
		good := buf.Bytes()
		f.Add(good)
		f.Add(good[:len(good)/2])
		f.Add(good[:len(Magic)+5])
		flipped := append([]byte(nil), good...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, hdr, err := ReadStream(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Accepted streams must be internally consistent.
		if hdr == nil || h == nil {
			t.Fatal("nil result without error")
		}
		if h.NumTrees() != hdr.Trees || h.TotalBipartitions() != hdr.Sum {
			t.Fatalf("loaded hash (%d trees, %d sum) disagrees with header (%d, %d)",
				h.NumTrees(), h.TotalBipartitions(), hdr.Trees, hdr.Sum)
		}
	})
}
