package bfhsnap

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/simphy"
	"repro/internal/taxa"
	"repro/internal/tree"
)

// testCollection generates a deterministic random collection.
func testCollection(seed int64, n, r int) ([]*tree.Tree, *taxa.Set) {
	ts := taxa.Generate(n)
	rng := rand.New(rand.NewSource(seed))
	trees := make([]*tree.Tree, r)
	for i := range trees {
		trees[i] = simphy.RandomBinary(ts, rng)
	}
	return trees, ts
}

func buildOn(t *testing.T, b core.Backend, trees []*tree.Tree, ts *taxa.Set, shards int) *core.FreqHash {
	t.Helper()
	h, err := core.Build(collection.FromTrees(trees), ts, core.BuildOptions{
		RequireComplete: true, Workers: 1, Backend: b, HashShards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// queryVector computes exact average-RF values for a fixed query set; two
// hashes over the same collection must agree bit for bit.
func queryVector(t *testing.T, h *core.FreqHash, ts *taxa.Set, seed int64, k int) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, k)
	for i := range out {
		q := simphy.RandomBinary(ts, rng)
		v, err := h.AverageRFOne(q, core.QueryOptions{RequireComplete: true})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

func sameVector(t *testing.T, got, want []float64, what string) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: query %d: %v vs %v (not bit-identical)", what, i, got[i], want[i])
		}
	}
}

var allBackends = []core.Backend{core.BackendOpenAddressing, core.BackendSuccinct, core.BackendMap}

func TestStreamRoundTrip(t *testing.T) {
	trees, ts := testCollection(1, 40, 60)
	for _, b := range allBackends {
		src := buildOn(t, b, trees, ts, 4)
		var buf bytes.Buffer
		n, err := WriteStream(&buf, src, 0, src.NumShards())
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("%v: reported %d bytes, wrote %d", b, n, buf.Len())
		}
		got, hdr, err := ReadStream(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if got.Backend() != b {
			t.Fatalf("loaded backend %v, want %v", got.Backend(), b)
		}
		if hdr.Trees != src.NumTrees() {
			t.Fatalf("%v: header trees %d, want %d", b, hdr.Trees, src.NumTrees())
		}
		if err := VerifyAgainst(got, src); err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		sameVector(t, queryVector(t, got, ts, 9, 8), queryVector(t, src, ts, 9, 8), b.String())
	}
}

func TestSaveLoadFile(t *testing.T) {
	trees, ts := testCollection(2, 70, 40) // 2-word keys
	dir := t.TempDir()
	for _, b := range allBackends {
		src := buildOn(t, b, trees, ts, 2)
		path := filepath.Join(dir, b.String()+".bfh")
		if _, err := SaveFile(path, src); err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		hdr, err := ReadHeaderFile(path)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if hdr.Backend != b || hdr.Sum != src.TotalBipartitions() {
			t.Fatalf("%v: header %+v", b, hdr)
		}
		got, _, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if err := VerifyAgainst(got, src); err != nil {
			t.Fatalf("%v: %v", b, err)
		}
	}
}

func TestMultiPartLoad(t *testing.T) {
	trees, ts := testCollection(3, 30, 50)
	for _, b := range []core.Backend{core.BackendOpenAddressing, core.BackendSuccinct} {
		src := buildOn(t, b, trees, ts, 8)
		half := src.NumShards() / 2
		var p0, p1 bytes.Buffer
		if _, err := WriteStream(&p0, src, 0, half); err != nil {
			t.Fatal(err)
		}
		if _, err := WriteStream(&p1, src, half, src.NumShards()); err != nil {
			t.Fatal(err)
		}
		hdr, err := ReadHeader(bytes.NewReader(p0.Bytes()), int64(p0.Len()))
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLoader(hdr)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.ReadStream(bytes.NewReader(p0.Bytes()), int64(p0.Len())); err != nil {
			t.Fatal(err)
		}
		// Finishing with half the shards missing must fail loudly.
		if _, err := l.Finish(); err == nil {
			t.Fatalf("%v: Finish accepted a half-covered hash", b)
		}
		if err := l.ReadStream(bytes.NewReader(p1.Bytes()), int64(p1.Len())); err != nil {
			t.Fatal(err)
		}
		got, err := l.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAgainst(got, src); err != nil {
			t.Fatalf("%v: %v", b, err)
		}
	}
}

func TestStreamRejectsCorruption(t *testing.T) {
	trees, ts := testCollection(4, 20, 30)
	src := buildOn(t, core.BackendOpenAddressing, trees, ts, 2)
	var buf bytes.Buffer
	if _, err := WriteStream(&buf, src, 0, src.NumShards()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, _, err := ReadStream(bytes.NewReader(bad), int64(len(bad))); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 50; i++ {
			bad := append([]byte(nil), good...)
			bad[len(Magic)+rng.Intn(len(bad)-len(Magic))] ^= 1 << uint(rng.Intn(8))
			if _, _, err := ReadStream(bytes.NewReader(bad), int64(len(bad))); err == nil {
				t.Fatalf("accepted corrupted stream (flip %d)", i)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{1, 5, len(good) / 2, len(good) - 1} {
			bad := good[:len(good)-cut]
			if _, _, err := ReadStream(bytes.NewReader(bad), int64(len(bad))); err == nil {
				t.Fatalf("accepted stream truncated by %d", cut)
			}
		}
	})
}

func TestEpochStoreLifecycle(t *testing.T) {
	trees, ts := testCollection(6, 40, 50)
	src := buildOn(t, core.BackendOpenAddressing, trees, ts, 8)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pin(); err == nil {
		t.Fatal("Pin on an empty store succeeded")
	}
	n, err := s.SaveEpoch(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || s.Current() != 1 {
		t.Fatalf("first epoch is %d (current %d), want 1", n, s.Current())
	}
	e, err := s.Pin()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainst(e.Hash, src); err != nil {
		t.Fatal(err)
	}

	// Publish a second epoch while the first is pinned; compact must not
	// remove the pinned directory until release.
	if _, err := s.SaveEpoch(src); err != nil {
		t.Fatal(err)
	}
	if left := s.Compact(); left != 2 {
		t.Fatalf("compact with pinned epoch left %d dirs, want 2", left)
	}
	e.Release()
	if _, err := os.Stat(s.epochDir(1)); !os.IsNotExist(err) {
		t.Fatalf("epoch 1 not reaped after release: %v", err)
	}

	// Reopen: CURRENT still names epoch 2.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Current() != 2 {
		t.Fatalf("reopened store current = %d, want 2", s2.Current())
	}
	e2, err := s2.Pin()
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Release()
	if err := VerifyAgainst(e2.Hash, src); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRecoversCrashDebris(t *testing.T) {
	trees, ts := testCollection(7, 20, 20)
	src := buildOn(t, core.BackendOpenAddressing, trees, ts, 2)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SaveEpoch(src); err != nil {
		t.Fatal(err)
	}

	// Simulate the two crash windows: a staging dir that never renamed,
	// and an epoch dir renamed but never named by CURRENT.
	if err := os.MkdirAll(filepath.Join(dir, tmpPrefix+"000009"), 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, epochName(9))
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Current() != 1 {
		t.Fatalf("current = %d, want 1", s2.Current())
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("unpublished epoch dir survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"000009")); !os.IsNotExist(err) {
		t.Fatal("stale staging dir survived recovery")
	}
	e, err := s2.Pin()
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release()
	if err := VerifyAgainst(e.Hash, src); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaEquivalence(t *testing.T) {
	const n, base, extra = 13, 120, 1
	trees, ts := testCollection(8, n, base+extra)
	for _, b := range allBackends {
		shards := 256
		if b == core.BackendMap {
			shards = 1
		}
		baseHash := buildOn(t, b, trees[:base], ts, shards)
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.SaveEpoch(baseHash); err != nil {
			t.Fatal(err)
		}

		res, err := s.Delta(trees[base:], nil, nil, true)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if res.Epoch != 2 || res.Base != 1 {
			t.Fatalf("%v: delta published %+v", b, res)
		}
		if b != core.BackendMap && res.PartsLinked == 0 {
			t.Errorf("%v: small delta rewrote every part (%d written, %d linked)", b, res.PartsWritten, res.PartsLinked)
		}

		// The delta-merged epoch must match a from-scratch build of the
		// full collection bit for bit, including query results.
		scratch := buildOn(t, b, trees, ts, shards)
		e, err := s.Pin()
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAgainst(e.Hash, scratch); err != nil {
			t.Fatalf("%v: delta vs scratch: %v", b, err)
		}
		sameVector(t, queryVector(t, e.Hash, ts, 11, 10), queryVector(t, scratch, ts, 11, 10), b.String())
		e.Release()

		// Retire the extra trees again: back to the base collection.
		res, err = s.Delta(nil, trees[base:], nil, true)
		if err != nil {
			t.Fatalf("%v retire: %v", b, err)
		}
		if res.Epoch != 3 {
			t.Fatalf("%v: retire published epoch %d", b, res.Epoch)
		}
		e, err = s.Pin()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := e.Hash.NumTrees(), base; got != want {
			t.Fatalf("%v: retired epoch has %d trees, want %d", b, got, want)
		}
		sameVector(t, queryVector(t, e.Hash, ts, 12, 6), queryVector(t, baseHash, ts, 12, 6), b.String()+" retire")
		e.Release()
	}
}
