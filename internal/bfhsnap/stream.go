package bfhsnap

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/bfhtable"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/taxa"
)

// Section framing: kind u8, payload length u32, payload, CRC32-C over
// kind+length+payload. Every section's length is computable before its
// first payload byte, so the writer streams — it never buffers a shard.
// The whole-file digest is CRC32-C over every byte from the magic through
// the last pre-footer section.

const frameLen = 5 // kind u8 + payload length u32

// sectionWriter frames sections over w, tracking the section CRC and the
// whole-file digest.
type sectionWriter struct {
	w        io.Writer
	digest   hash.Hash32 // magic through last pre-footer byte
	crc      hash.Hash32 // current section
	sections int
	n        int64
	scratch  []byte // big-endian-host encode buffer
	tmp      [frameLen]byte
}

func newSectionWriter(w io.Writer) (*sectionWriter, error) {
	sw := &sectionWriter{w: w, digest: crc32.New(castagnoli), crc: crc32.New(castagnoli)}
	if err := sw.raw([]byte(Magic), true); err != nil {
		return nil, err
	}
	return sw, nil
}

// raw writes p, folding it into the running digest when inDigest.
func (sw *sectionWriter) raw(p []byte, inDigest bool) error {
	if _, err := sw.w.Write(p); err != nil {
		return fmt.Errorf("bfhsnap: write: %w", err)
	}
	if inDigest {
		sw.digest.Write(p)
	}
	sw.n += int64(len(p))
	return nil
}

// begin opens a section of the exact payload length; chunk calls must
// supply payloadLen bytes in total before end. The fault point fires here,
// once per section, so crash plans can kill a save mid-file.
func (sw *sectionWriter) begin(kind byte, payloadLen int) error {
	if err := faultinject.Hit(faultinject.PointSnapWrite); err != nil {
		return fmt.Errorf("bfhsnap: section write: %w", err)
	}
	if payloadLen < 0 || int64(payloadLen) > maxSectionLen {
		return fmt.Errorf("bfhsnap: section %d payload %d exceeds format bound", kind, payloadLen)
	}
	sw.tmp[0] = kind
	binary.LittleEndian.PutUint32(sw.tmp[1:], uint32(payloadLen))
	sw.crc.Reset()
	sw.crc.Write(sw.tmp[:frameLen])
	return sw.raw(sw.tmp[:frameLen], kind != secFooter)
}

// chunk writes part of the current section's payload.
func (sw *sectionWriter) chunk(kind byte, p []byte) error {
	sw.crc.Write(p)
	return sw.raw(p, kind != secFooter)
}

// end closes the current section with its CRC.
func (sw *sectionWriter) end(kind byte) error {
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], sw.crc.Sum32())
	if err := sw.raw(c[:], kind != secFooter); err != nil {
		return err
	}
	sw.sections++
	return nil
}

// section writes a fully materialized (small) section.
func (sw *sectionWriter) section(kind byte, payload []byte) error {
	if err := sw.begin(kind, len(payload)); err != nil {
		return err
	}
	if err := sw.chunk(kind, payload); err != nil {
		return err
	}
	return sw.end(kind)
}

// footer seals the stream: section count + whole-file digest. The digest
// is taken before any footer byte is written, so it covers exactly the
// bytes preceding the footer.
func (sw *sectionWriter) footer() error {
	var p [8]byte
	binary.LittleEndian.PutUint32(p[0:], uint32(sw.sections))
	binary.LittleEndian.PutUint32(p[4:], sw.digest.Sum32())
	return sw.section(secFooter, p[:])
}

// shardHeader renders the 32-byte fixed header of a shard section. The
// trailing pad keeps the arrays that follow 8-aligned within the payload.
func shardHeader(shard, capacity, used, live, extra int) []byte {
	p := make([]byte, 32)
	binary.LittleEndian.PutUint32(p[0:], uint32(shard))
	binary.LittleEndian.PutUint32(p[4:], uint32(capacity))
	binary.LittleEndian.PutUint32(p[8:], uint32(used))
	binary.LittleEndian.PutUint32(p[12:], uint32(live))
	binary.LittleEndian.PutUint32(p[16:], uint32(extra)) // nw (OA) or arena length (succinct)
	return p
}

// headerFor captures h's stream header for the shard range [from, to).
func headerFor(h *core.FreqHash, from, to int) *Header {
	return &Header{
		Version:   FormatVersion,
		Backend:   h.Backend(),
		Weighted:  h.Weighted(),
		Comp:      h.Compressed(),
		Frozen:    h.Succinct() != nil && h.Succinct().Frozen(),
		Shards:    h.NumShards(),
		ShardFrom: from,
		ShardTo:   to,
		Trees:     h.NumTrees(),
		Sum:       h.TotalBipartitions(),
		LenSum:    h.TotalLengthSum(),
		TaxaNames: h.Taxa().Names(),
	}
}

// WriteStream serializes shards [from, to) of h to w as one snapshot
// stream and returns the bytes written. The full hash is from=0,
// to=h.NumShards(); epoch part files carry narrower ranges. The hash must
// not be mutated during the call.
func WriteStream(w io.Writer, h *core.FreqHash, from, to int) (int64, error) {
	shards := h.NumShards()
	if from < 0 || from >= to || to > shards {
		return 0, fmt.Errorf("bfhsnap: shard range [%d,%d) of %d", from, to, shards)
	}
	sw, err := newSectionWriter(w)
	if err != nil {
		return sw0(sw), err
	}
	hp, err := encodeHeader(headerFor(h, from, to))
	if err != nil {
		return sw.n, err
	}
	if err := sw.section(secHeader, hp); err != nil {
		return sw.n, err
	}
	switch {
	case h.OpenAddr() != nil:
		for s := from; s < to; s++ {
			if err := writeOAShard(sw, h.OpenAddr(), s); err != nil {
				return sw.n, err
			}
		}
	case h.Succinct() != nil:
		st := h.Succinct()
		if st.Frozen() {
			if err := sw.section(secDict, encodeDict(st.DictEntries())); err != nil {
				return sw.n, err
			}
		}
		for s := from; s < to; s++ {
			if err := writeSuccShard(sw, st, s); err != nil {
				return sw.n, err
			}
		}
	default:
		if err := writeMapEntries(sw, h); err != nil {
			return sw.n, err
		}
	}
	if err := sw.footer(); err != nil {
		return sw.n, err
	}
	mSnapshotBytesSave.Add(uint64(sw.n))
	return sw.n, nil
}

func sw0(sw *sectionWriter) int64 {
	if sw == nil {
		return 0
	}
	return sw.n
}

func writeOAShard(sw *sectionWriter, t *bfhtable.Table, s int) error {
	exp := t.ExportShard(s)
	capacity := len(exp.Hashes)
	nw := t.WordsPerKey()
	payload := 32 + capacity*8 + capacity*nw*8 + capacity*entrySize
	if err := sw.begin(secOAShard, payload); err != nil {
		return err
	}
	if err := sw.chunk(secOAShard, shardHeader(s, capacity, exp.Used, exp.Live, nw)); err != nil {
		return err
	}
	var b []byte
	b, sw.scratch = u64sBytes(exp.Hashes, sw.scratch)
	if err := sw.chunk(secOAShard, b); err != nil {
		return err
	}
	b, sw.scratch = u64sBytes(exp.Words, sw.scratch)
	if err := sw.chunk(secOAShard, b); err != nil {
		return err
	}
	b, sw.scratch = entriesBytes(exp.Entries, sw.scratch)
	if err := sw.chunk(secOAShard, b); err != nil {
		return err
	}
	return sw.end(secOAShard)
}

func writeSuccShard(sw *sectionWriter, t *bfhtable.SuccinctTable, s int) error {
	exp := t.ExportShard(s)
	capacity := len(exp.Hashes)
	payload := 32 + capacity*8 + capacity*4 + capacity*4 + capacity*entrySize + len(exp.Arena)
	if err := sw.begin(secSuccShard, payload); err != nil {
		return err
	}
	if err := sw.chunk(secSuccShard, shardHeader(s, capacity, exp.Used, exp.Live, len(exp.Arena))); err != nil {
		return err
	}
	var b []byte
	b, sw.scratch = u64sBytes(exp.Hashes, sw.scratch)
	if err := sw.chunk(secSuccShard, b); err != nil {
		return err
	}
	b, sw.scratch = u32sBytes(exp.Meta, sw.scratch)
	if err := sw.chunk(secSuccShard, b); err != nil {
		return err
	}
	b, sw.scratch = u32sBytes(exp.Offs, sw.scratch)
	if err := sw.chunk(secSuccShard, b); err != nil {
		return err
	}
	b, sw.scratch = entriesBytes(exp.Entries, sw.scratch)
	if err := sw.chunk(secSuccShard, b); err != nil {
		return err
	}
	if err := sw.chunk(secSuccShard, exp.Arena); err != nil {
		return err
	}
	return sw.end(secSuccShard)
}

// writeMapEntries serializes the map backend as a fixed-width entry
// stream: count entries of (nw key words, freq, size, length-sum bits).
func writeMapEntries(sw *sectionWriter, h *core.FreqHash) error {
	nw := (h.Taxa().Len() + 63) / 64
	count := h.UniqueBipartitions()
	stride := nw*8 + entrySize
	if err := sw.begin(secMapEntries, 8+count*stride); err != nil {
		return err
	}
	var hd [8]byte
	binary.LittleEndian.PutUint32(hd[4:], uint32(count))
	if err := sw.chunk(secMapEntries, hd[:]); err != nil {
		return err
	}
	buf := make([]byte, stride)
	wrote := 0
	var werr error
	err := h.RangeShardRaw(0, func(words []uint64, e bfhtable.Entry) bool {
		for i, w := range words {
			binary.LittleEndian.PutUint64(buf[i*8:], w)
		}
		encodeEntry(buf[nw*8:], e)
		if werr = sw.chunk(secMapEntries, buf); werr != nil {
			return false
		}
		wrote++
		return true
	})
	if err != nil {
		return fmt.Errorf("bfhsnap: %w", err)
	}
	if werr != nil {
		return werr
	}
	if wrote != count {
		return fmt.Errorf("bfhsnap: map backend yielded %d entries, expected %d", wrote, count)
	}
	return sw.end(secMapEntries)
}

func encodeDict(dict [][]byte) []byte {
	p := make([]byte, 4, 4+16*len(dict))
	binary.LittleEndian.PutUint32(p, uint32(len(dict)))
	for _, e := range dict {
		p = binary.AppendUvarint(p, uint64(len(e)))
		p = append(p, e...)
	}
	return p
}

func decodeDict(p []byte) ([][]byte, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("bfhsnap: dictionary section is %d bytes", len(p))
	}
	count := int(binary.LittleEndian.Uint32(p))
	q := p[4:]
	if count < 0 || count > len(q) {
		return nil, fmt.Errorf("bfhsnap: dictionary declares %d entries in %d bytes", count, len(q))
	}
	dict := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		l, n := binary.Uvarint(q)
		if n <= 0 || l > uint64(len(q)-n) {
			return nil, fmt.Errorf("bfhsnap: dictionary entry %d truncated", i)
		}
		// Copy: the dictionary outlives the section buffer's aliasing
		// guarantees and is tiny (≤256 short prefixes).
		dict = append(dict, append([]byte(nil), q[n:n+int(l)]...))
		q = q[n+int(l):]
	}
	if len(q) != 0 {
		return nil, fmt.Errorf("bfhsnap: %d trailing bytes after dictionary", len(q))
	}
	return dict, nil
}

// sectionReader un-frames sections from r. size, when >= 0, is the total
// stream length; declared payload lengths beyond the bytes remaining are
// rejected before any allocation, so a corrupt stream cannot demand an
// arbitrarily large buffer.
type sectionReader struct {
	r         io.Reader
	remaining int64 // -1 when unknown
	n         int64 // bytes consumed
	digest    hash.Hash32
	sections  int
	preFooter uint32 // digest value captured when the footer frame starts
}

func newSectionReader(r io.Reader, size int64) (*sectionReader, error) {
	sr := &sectionReader{r: r, remaining: size, digest: crc32.New(castagnoli)}
	var magic [len(Magic)]byte
	if err := sr.readFull(magic[:]); err != nil {
		return nil, fmt.Errorf("bfhsnap: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("bfhsnap: bad magic %q", magic[:])
	}
	sr.digest.Write(magic[:])
	return sr, nil
}

func (sr *sectionReader) readFull(p []byte) error {
	if sr.remaining >= 0 {
		if int64(len(p)) > sr.remaining {
			return fmt.Errorf("bfhsnap: need %d bytes, stream has %d left", len(p), sr.remaining)
		}
		sr.remaining -= int64(len(p))
	}
	n, err := io.ReadFull(sr.r, p)
	sr.n += int64(n)
	return err
}

// next returns the next section's kind and payload. The payload buffer is
// freshly allocated per section and 8-aligned in practice (the arrays the
// loader aliases out of it keep it alive); the CRC is verified before it
// is returned.
func (sr *sectionReader) next() (byte, []byte, error) {
	var frame [frameLen]byte
	if err := sr.readFull(frame[:]); err != nil {
		return 0, nil, fmt.Errorf("bfhsnap: reading section frame: %w", err)
	}
	kind := frame[0]
	if kind == secFooter {
		// The digest covers everything before the footer; snapshot it
		// before folding footer bytes in (which we then simply don't).
		sr.preFooter = sr.digest.Sum32()
	} else {
		sr.digest.Write(frame[:])
	}
	payloadLen := int64(binary.LittleEndian.Uint32(frame[1:]))
	if payloadLen > maxSectionLen {
		return 0, nil, fmt.Errorf("bfhsnap: section %d payload %d exceeds format bound", kind, payloadLen)
	}
	if sr.remaining >= 0 && payloadLen+4 > sr.remaining {
		return 0, nil, fmt.Errorf("bfhsnap: section %d declares %d payload bytes, stream has %d left",
			kind, payloadLen, sr.remaining)
	}
	payload := make([]byte, payloadLen)
	if err := sr.readFull(payload); err != nil {
		return 0, nil, fmt.Errorf("bfhsnap: reading section %d payload: %w", kind, err)
	}
	var crcb [4]byte
	if err := sr.readFull(crcb[:]); err != nil {
		return 0, nil, fmt.Errorf("bfhsnap: reading section %d crc: %w", kind, err)
	}
	c := crc32.New(castagnoli)
	c.Write(frame[:])
	c.Write(payload)
	if got, want := c.Sum32(), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return 0, nil, fmt.Errorf("bfhsnap: section %d crc %08x, stored %08x", kind, got, want)
	}
	if kind != secFooter {
		sr.digest.Write(payload)
		sr.digest.Write(crcb[:])
	}
	sr.sections++
	return kind, payload, nil
}

// checkFooter verifies the footer payload against the stream read so far.
func (sr *sectionReader) checkFooter(p []byte) error {
	if len(p) != 8 {
		return fmt.Errorf("bfhsnap: footer payload is %d bytes, want 8", len(p))
	}
	wantSections := binary.LittleEndian.Uint32(p[0:])
	if got := uint32(sr.sections - 1); got != wantSections { // footer excluded
		return fmt.Errorf("bfhsnap: stream has %d sections, footer declares %d", got, wantSections)
	}
	if want := binary.LittleEndian.Uint32(p[4:]); sr.preFooter != want {
		return fmt.Errorf("bfhsnap: file digest %08x, footer declares %08x", sr.preFooter, want)
	}
	return nil
}

// Loader reassembles a hash from one or more snapshot streams (the parts
// of an epoch). Every stream must describe the same hash; their shard
// ranges together must cover every shard exactly once. Totals default to
// the first stream's header and can be overridden from an epoch MANIFEST.
type Loader struct {
	hdr  *Header
	ts   *taxa.Set
	oa   *bfhtable.Table
	st   *bfhtable.SuccinctTable
	rest *core.Restorer

	trees    int
	sum      uint64
	lenSum   float64
	weighted bool

	gotDict bool
	covered []bool
}

// NewLoader prepares a loader for streams matching hdr (typically the
// first part's header, via ReadHeader).
func NewLoader(hdr *Header) (*Loader, error) {
	ts, err := taxa.NewSet(hdr.TaxaNames)
	if err != nil {
		return nil, fmt.Errorf("bfhsnap: snapshot taxa: %w", err)
	}
	l := &Loader{
		hdr: hdr, ts: ts,
		trees: hdr.Trees, sum: hdr.Sum, lenSum: hdr.LenSum, weighted: hdr.Weighted,
		covered: make([]bool, hdr.Shards),
	}
	nw := (ts.Len() + 63) / 64
	switch hdr.Backend {
	case core.BackendOpenAddressing:
		l.oa = bfhtable.New(nw, hdr.Shards)
	case core.BackendSuccinct:
		l.st = bfhtable.NewSuccinct(ts.Len(), hdr.Shards)
	default:
		l.rest, err = core.NewRestorer(core.RestoreSpec{
			Taxa: ts, NumTrees: hdr.Trees, Weighted: hdr.Weighted,
			CompressKeys: hdr.Comp, Backend: core.BackendMap,
		})
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

// OverrideTotals replaces the header-derived totals with authoritative
// ones (an epoch MANIFEST's); call before Finish.
func (l *Loader) OverrideTotals(trees int, sum uint64, lenSum float64, weighted bool) {
	l.trees, l.sum, l.lenSum, l.weighted = trees, sum, lenSum, weighted
}

// ReadStream consumes one snapshot stream (a whole file or one epoch
// part), installing its sections. size bounds allocations; pass the file
// length, or -1 if genuinely unknown.
func (l *Loader) ReadStream(r io.Reader, size int64) error {
	sr, err := newSectionReader(r, size)
	if err != nil {
		return err
	}
	kind, payload, err := sr.next()
	if err != nil {
		return err
	}
	if kind != secHeader {
		return fmt.Errorf("bfhsnap: first section is kind %d, want header", kind)
	}
	hdr, err := decodeHeader(payload)
	if err != nil {
		return err
	}
	if err := l.hdr.sameHash(hdr); err != nil {
		return err
	}
	return l.readSections(sr, hdr)
}

// readSections consumes the remaining sections of a stream whose header
// has already been read and checked.
func (l *Loader) readSections(sr *sectionReader, hdr *Header) error {
	for {
		kind, payload, err := sr.next()
		if err != nil {
			return err
		}
		switch kind {
		case secHeader:
			return fmt.Errorf("bfhsnap: duplicate header section")
		case secDict:
			if l.st == nil {
				return fmt.Errorf("bfhsnap: dictionary section for backend %v", l.hdr.Backend)
			}
			if l.gotDict {
				continue // identical across parts; first install wins
			}
			dict, err := decodeDict(payload)
			if err != nil {
				return err
			}
			if err := l.st.InstallDict(dict); err != nil {
				return fmt.Errorf("bfhsnap: %w", err)
			}
			l.gotDict = true
		case secOAShard:
			if err := l.installOAShard(hdr, payload); err != nil {
				return err
			}
		case secSuccShard:
			if err := l.installSuccShard(hdr, payload); err != nil {
				return err
			}
		case secMapEntries:
			if err := l.installMapEntries(hdr, payload); err != nil {
				return err
			}
		case secFooter:
			if err := sr.checkFooter(payload); err != nil {
				return err
			}
			mSnapshotBytesLoad.Add(uint64(sr.n))
			return nil
		default:
			return fmt.Errorf("bfhsnap: unknown section kind %d", kind)
		}
	}
}

// claimShard validates a shard section's index against the stream's
// declared range and marks it covered.
func (l *Loader) claimShard(hdr *Header, s int) error {
	if s < hdr.ShardFrom || s >= hdr.ShardTo {
		return fmt.Errorf("bfhsnap: shard %d outside stream range [%d,%d)", s, hdr.ShardFrom, hdr.ShardTo)
	}
	if l.covered[s] {
		return fmt.Errorf("bfhsnap: shard %d appears twice", s)
	}
	l.covered[s] = true
	return nil
}

func (l *Loader) installOAShard(hdr *Header, p []byte) error {
	if l.oa == nil {
		return fmt.Errorf("bfhsnap: open-addressing shard for backend %v", l.hdr.Backend)
	}
	if len(p) < 32 {
		return fmt.Errorf("bfhsnap: shard section is %d bytes", len(p))
	}
	s := int(binary.LittleEndian.Uint32(p[0:]))
	capacity := int(binary.LittleEndian.Uint32(p[4:]))
	used := int(binary.LittleEndian.Uint32(p[8:]))
	live := int(binary.LittleEndian.Uint32(p[12:]))
	nw := int(binary.LittleEndian.Uint32(p[16:]))
	if nw != l.oa.WordsPerKey() {
		return fmt.Errorf("bfhsnap: shard %d has %d-word keys, catalogue needs %d", s, nw, l.oa.WordsPerKey())
	}
	if capacity < 0 || len(p) != 32+capacity*8+capacity*nw*8+capacity*entrySize {
		return fmt.Errorf("bfhsnap: shard %d section is %d bytes for capacity %d", s, len(p), capacity)
	}
	if err := l.claimShard(hdr, s); err != nil {
		return err
	}
	off := 32
	hashes := u64sView(p[off : off+capacity*8])
	off += capacity * 8
	words := u64sView(p[off : off+capacity*nw*8])
	off += capacity * nw * 8
	entries := entriesView(p[off:])
	err := l.oa.InstallShard(s, bfhtable.TableShard{
		Hashes: hashes, Words: words, Entries: entries, Used: used, Live: live,
	})
	if err != nil {
		return fmt.Errorf("bfhsnap: %w", err)
	}
	return nil
}

func (l *Loader) installSuccShard(hdr *Header, p []byte) error {
	if l.st == nil {
		return fmt.Errorf("bfhsnap: succinct shard for backend %v", l.hdr.Backend)
	}
	if len(p) < 32 {
		return fmt.Errorf("bfhsnap: shard section is %d bytes", len(p))
	}
	s := int(binary.LittleEndian.Uint32(p[0:]))
	capacity := int(binary.LittleEndian.Uint32(p[4:]))
	used := int(binary.LittleEndian.Uint32(p[8:]))
	live := int(binary.LittleEndian.Uint32(p[12:]))
	arenaLen := int(binary.LittleEndian.Uint32(p[16:]))
	if capacity < 0 || arenaLen < 0 ||
		len(p) != 32+capacity*8+capacity*4+capacity*4+capacity*entrySize+arenaLen {
		return fmt.Errorf("bfhsnap: shard %d section is %d bytes for capacity %d arena %d", s, len(p), capacity, arenaLen)
	}
	if err := l.claimShard(hdr, s); err != nil {
		return err
	}
	off := 32
	hashes := u64sView(p[off : off+capacity*8])
	off += capacity * 8
	meta := u32sView(p[off : off+capacity*4])
	off += capacity * 4
	offs := u32sView(p[off : off+capacity*4])
	off += capacity * 4
	entries := entriesView(p[off : off+capacity*entrySize])
	off += capacity * entrySize
	arena := p[off:]
	err := l.st.InstallShard(s, bfhtable.SuccinctShard{
		Hashes: hashes, Meta: meta, Offs: offs, Entries: entries, Arena: arena,
		Used: used, Live: live,
	})
	if err != nil {
		return fmt.Errorf("bfhsnap: %w", err)
	}
	return nil
}

func (l *Loader) installMapEntries(hdr *Header, p []byte) error {
	if l.rest == nil {
		return fmt.Errorf("bfhsnap: map entry section for backend %v", l.hdr.Backend)
	}
	if len(p) < 8 {
		return fmt.Errorf("bfhsnap: entry section is %d bytes", len(p))
	}
	s := int(binary.LittleEndian.Uint32(p[0:]))
	count := int(binary.LittleEndian.Uint32(p[4:]))
	nw := (l.ts.Len() + 63) / 64
	stride := nw*8 + entrySize
	if count < 0 || len(p) != 8+count*stride {
		return fmt.Errorf("bfhsnap: entry section is %d bytes for %d entries", len(p), count)
	}
	if err := l.claimShard(hdr, s); err != nil {
		return err
	}
	words := make([]uint64, nw)
	q := p[8:]
	for i := 0; i < count; i++ {
		rec := q[i*stride:]
		for j := range words {
			words[j] = binary.LittleEndian.Uint64(rec[j*8:])
		}
		if err := l.rest.AddEntry(words, decodeEntry(rec[nw*8:])); err != nil {
			return fmt.Errorf("bfhsnap: %w", err)
		}
	}
	return nil
}

// Finish validates coverage and adopts the assembled storage as a
// FreqHash, cross-checking the totals and restoring the exact weighted
// sums the saved hash held.
func (l *Loader) Finish() (*core.FreqHash, error) {
	for s, ok := range l.covered {
		if !ok {
			return nil, fmt.Errorf("bfhsnap: shard %d missing from snapshot parts", s)
		}
	}
	spec := core.RestoreSpec{Taxa: l.ts, NumTrees: l.trees, Weighted: l.weighted}
	switch {
	case l.oa != nil:
		spec.Backend = core.BackendOpenAddressing
		return core.AdoptTable(spec, l.oa, l.sum, l.lenSum)
	case l.st != nil:
		if l.hdr.Frozen && !l.gotDict {
			return nil, fmt.Errorf("bfhsnap: frozen snapshot carries no dictionary section")
		}
		spec.Backend = core.BackendSuccinct
		return core.AdoptSuccinct(spec, l.st, l.sum, l.lenSum)
	default:
		if err := l.rest.OverrideTotals(l.trees, l.sum, l.lenSum); err != nil {
			return nil, err
		}
		return l.rest.Finish()
	}
}

// ReadHeader decodes just the header section of a stream.
func ReadHeader(r io.Reader, size int64) (*Header, error) {
	sr, err := newSectionReader(r, size)
	if err != nil {
		return nil, err
	}
	kind, payload, err := sr.next()
	if err != nil {
		return nil, err
	}
	if kind != secHeader {
		return nil, fmt.Errorf("bfhsnap: first section is kind %d, want header", kind)
	}
	return decodeHeader(payload)
}

// ReadStream loads a complete single-stream snapshot (full shard range)
// from r.
func ReadStream(r io.Reader, size int64) (*core.FreqHash, *Header, error) {
	sr, err := newSectionReader(r, size)
	if err != nil {
		return nil, nil, err
	}
	kind, payload, err := sr.next()
	if err != nil {
		return nil, nil, err
	}
	if kind != secHeader {
		return nil, nil, fmt.Errorf("bfhsnap: first section is kind %d, want header", kind)
	}
	hdr, err := decodeHeader(payload)
	if err != nil {
		return nil, nil, err
	}
	if hdr.ShardFrom != 0 || hdr.ShardTo != hdr.Shards {
		return nil, nil, fmt.Errorf("bfhsnap: stream carries shards [%d,%d) of %d, not a complete snapshot",
			hdr.ShardFrom, hdr.ShardTo, hdr.Shards)
	}
	l, err := NewLoader(hdr)
	if err != nil {
		return nil, nil, err
	}
	if err := l.readSections(sr, hdr); err != nil {
		return nil, nil, err
	}
	if sr.remaining > 0 {
		return nil, nil, fmt.Errorf("bfhsnap: %d trailing bytes after footer", sr.remaining)
	}
	h, err := l.Finish()
	if err != nil {
		return nil, nil, err
	}
	return h, hdr, nil
}
