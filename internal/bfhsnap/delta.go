package bfhsnap

import (
	"fmt"
	"io"
	"math"

	"repro/internal/bfhtable"
	"repro/internal/bipart"
	"repro/internal/core"
	"repro/internal/tree"
)

// Delta builds: append and/or retire reference trees against the current
// epoch and publish the result as a new epoch, rewriting only the part
// files whose shards the delta touched. The untouched parts are
// hard-linked from the base epoch (copy-on-write), so a small delta over
// a large collection costs a small write. The base epoch is marked
// obsolete and reaped once its last pin is released.

// DeltaResult reports what a delta build published.
type DeltaResult struct {
	Epoch        int // the new epoch number
	Base         int // the epoch the delta was applied to
	PartsWritten int // part files freshly serialized
	PartsLinked  int // part files reused via hard link
}

// Delta applies add/retire to a private copy of the current epoch's hash
// and publishes the result as the next epoch. filter and requireComplete
// mirror the build options the collection was created with. The update is
// sequential, so for an unweighted hash (and for a weighted one built
// with a deterministic accumulation order) the published epoch is
// bit-identical to a from-scratch build over the updated collection.
func (s *Store) Delta(add, retire []*tree.Tree, filter bipart.Filter, requireComplete bool) (DeltaResult, error) {
	var res DeltaResult
	base, err := s.Pin()
	if err != nil {
		return res, err
	}
	defer base.Release()
	h := base.Hash
	res.Base = base.N
	shards := h.NumShards()
	dirty := make([]bool, shards)

	// Mark the shards every touched bipartition lands in before mutating
	// anything: over-marking merely rewrites an extra part, under-marking
	// would publish stale storage. The map backend is a single logical
	// shard, so any change dirties it.
	ex := &bipart.Extractor{Taxa: h.Taxa(), RequireComplete: requireComplete, Filter: filter}
	mark := func(t *tree.Tree) error {
		bs, err := ex.Extract(t)
		if err != nil {
			return fmt.Errorf("bfhsnap: delta: %w", err)
		}
		for _, b := range bs {
			dirty[bfhtable.ShardIndex(b.Hash(), shards)] = true
		}
		return nil
	}
	for _, t := range add {
		if err := mark(t); err != nil {
			return res, err
		}
	}
	for _, t := range retire {
		if err := mark(t); err != nil {
			return res, err
		}
	}

	for _, t := range add {
		if err := h.AddTree(t, filter, requireComplete); err != nil {
			return res, fmt.Errorf("bfhsnap: delta add: %w", err)
		}
	}
	for _, t := range retire {
		if err := h.RemoveTree(t, filter, requireComplete); err != nil {
			return res, fmt.Errorf("bfhsnap: delta retire: %w", err)
		}
	}

	// Publish with the base epoch's partition so clean parts stay
	// byte-identical and can be hard-linked.
	man := manifestFor(h)
	man.Parts = append([]ManifestPart(nil), base.Manifest.Parts...)
	parts := make([]partSource, 0, len(man.Parts))
	for _, p := range man.Parts {
		touched := false
		for sh := p.From; sh < p.To; sh++ {
			if dirty[sh] {
				touched = true
				break
			}
		}
		if !touched {
			parts = append(parts, partSource{name: p.File, linkFrom: s.PartPath(base.N, p)})
			res.PartsLinked++
			continue
		}
		from, to := p.From, p.To
		parts = append(parts, partSource{name: p.File, write: func(w io.Writer) error {
			_, werr := WriteStream(w, h, from, to)
			return werr
		}})
		res.PartsWritten++
	}
	n, err := s.publish(man, parts)
	if err != nil {
		return res, err
	}
	res.Epoch = n
	s.markObsolete(base.N)
	return res, nil
}

// VerifyAgainst cross-checks a loaded epoch hash against an independently
// built one: identical fingerprints, totals, and exact weighted sums.
// The equivalence wall uses it to assert delta-merged epochs match a
// from-scratch build bit for bit.
func VerifyAgainst(got, want *core.FreqHash) error {
	switch {
	case got.NumTrees() != want.NumTrees():
		return fmt.Errorf("bfhsnap: %d trees vs %d", got.NumTrees(), want.NumTrees())
	case got.TotalBipartitions() != want.TotalBipartitions():
		return fmt.Errorf("bfhsnap: %d bipartition instances vs %d", got.TotalBipartitions(), want.TotalBipartitions())
	case got.UniqueBipartitions() != want.UniqueBipartitions():
		return fmt.Errorf("bfhsnap: %d unique bipartitions vs %d", got.UniqueBipartitions(), want.UniqueBipartitions())
	case math.Float64bits(got.TotalLengthSum()) != math.Float64bits(want.TotalLengthSum()):
		return fmt.Errorf("bfhsnap: length sum %x vs %x", got.TotalLengthSum(), want.TotalLengthSum())
	case got.Fingerprint() != want.Fingerprint():
		return fmt.Errorf("bfhsnap: fingerprint %016x vs %016x", got.Fingerprint(), want.Fingerprint())
	}
	return nil
}
