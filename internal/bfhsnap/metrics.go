package bfhsnap

import "repro/internal/obs"

// Snapshot telemetry (README "Metrics" table). Load latency covers the
// full stream decode and adopt; the byte counters split save and load
// traffic; the epoch gauge tracks how many epoch directories exist on
// disk, so a reaping failure (or pinned stale epoch) is visible as a
// plateau above 1.
var (
	mSnapshotLoadSeconds = obs.Histogram("bfhrf_snapshot_load_seconds",
		"Wall time to load a BFH snapshot (all parts) into a servable hash.",
		obs.DefLatencyBuckets)
	mSnapshotBytesSave = obs.Counter("bfhrf_snapshot_bytes",
		"Snapshot stream bytes processed, by operation.", obs.L("op", "save"))
	mSnapshotBytesLoad = obs.Counter("bfhrf_snapshot_bytes",
		"Snapshot stream bytes processed, by operation.", obs.L("op", "load"))
	mEpochActive = obs.Gauge("bfhrf_epoch_active",
		"Epoch directories currently on disk in the snapshot store.")
)
