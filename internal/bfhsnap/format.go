// Package bfhsnap persists the bipartition frequency hash: a durable,
// CRC-protected on-disk snapshot format for all three BFH backends, plus
// an epoch-versioned store with copy-on-write delta builds so a live
// reference collection can grow (or retire trees) while queries keep
// flowing against a pinned epoch.
//
// A snapshot stream is the byte-level format specified in FORMATS.md: an
// 8-byte magic, a sequence of framed sections (header, optional succinct
// dictionary, one section per table shard or one entry stream for the map
// backend), and a footer carrying a whole-file digest. Shard sections hold
// the tables' slot arrays verbatim, so a load installs them wholesale via
// bfhtable's restore paths — one validation pass, no per-entry re-insert —
// and the weighted totals are carried as exact float64 bits, making a
// save/load round trip bit-identical.
//
// The epoch store lays snapshots out as snap/epoch-NNNNNN/ directories
// published by directory rename with a CURRENT pointer, so a crash never
// leaves a partially visible epoch; see Store.
package bfhsnap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
)

// Magic identifies a BFH snapshot stream; the trailing digit is the major
// format generation (a reader never attempts a stream whose magic it does
// not know).
const Magic = "BFHSNAP1"

// FormatVersion is the current header version. Readers accept equal
// versions only: the format carries raw table storage whose invariants are
// version-specific, so cross-version compatibility is by re-save, not by
// decode shims.
const FormatVersion = 1

// Section kinds (FORMATS.md "Section catalogue").
const (
	secHeader     = 1   // stream header: version, backend, totals, taxa
	secDict       = 2   // succinct shared-prefix dictionary
	secOAShard    = 3   // one open-addressing shard's slot arrays
	secSuccShard  = 4   // one succinct shard's slot arrays + key arena
	secMapEntries = 5   // map backend: fixed-width entry stream
	secFooter     = 255 // section count + whole-file digest
)

// Backend codes in the header (decoupled from core.Backend's iota, which
// is an in-memory enum free to reorder).
const (
	backendMapCode  = 0
	backendOACode   = 1
	backendSuccCode = 2
)

// Header flag bits.
const (
	flagWeighted   = 1 << 0
	flagCompressed = 1 << 1
	flagFrozen     = 1 << 2
)

// Format limits. Section payloads are additionally bounded by the
// stream's known size, so a corrupt length cannot trigger a huge
// allocation; these caps keep the limits explicit even for readers fed an
// unbounded stream.
const (
	maxSectionLen = 1 << 31 // hard payload bound (2 GiB)
	maxTaxa       = 1 << 22 // 4M taxon names
	maxShards     = 1 << 16 // far above bfhtable's own 256-shard cap
)

// castagnoli is the CRC32-C polynomial table: every section CRC and the
// whole-file digest use it.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded stream header. A stream may carry a contiguous
// subset of the hash's shards ([ShardFrom, ShardTo)); the totals are
// always those of the whole hash. Within an epoch directory the MANIFEST
// totals are authoritative instead — copy-on-write keeps unchanged part
// files from older epochs, whose embedded totals are stale.
type Header struct {
	Version   int
	Backend   core.Backend
	Weighted  bool
	Comp      bool // §IX compressed map keys
	Frozen    bool // succinct dictionary built (a dict section follows)
	Shards    int  // total shard count of the hash
	ShardFrom int  // first shard in this stream
	ShardTo   int  // one past the last shard in this stream
	Trees     int
	Sum       uint64
	LenSum    float64
	TaxaNames []string
}

func backendCode(b core.Backend) (byte, error) {
	switch b {
	case core.BackendMap:
		return backendMapCode, nil
	case core.BackendOpenAddressing:
		return backendOACode, nil
	case core.BackendSuccinct:
		return backendSuccCode, nil
	}
	return 0, fmt.Errorf("bfhsnap: unsnapshotable backend %v", b)
}

func backendFromCode(c byte) (core.Backend, error) {
	switch c {
	case backendMapCode:
		return core.BackendMap, nil
	case backendOACode:
		return core.BackendOpenAddressing, nil
	case backendSuccCode:
		return core.BackendSuccinct, nil
	}
	return 0, fmt.Errorf("bfhsnap: unknown backend code %d", c)
}

// encodeHeader renders the header payload (FORMATS.md "Header section").
func encodeHeader(h *Header) ([]byte, error) {
	code, err := backendCode(h.Backend)
	if err != nil {
		return nil, err
	}
	var flags byte
	if h.Weighted {
		flags |= flagWeighted
	}
	if h.Comp {
		flags |= flagCompressed
	}
	if h.Frozen {
		flags |= flagFrozen
	}
	p := make([]byte, 44, 44+16*len(h.TaxaNames))
	binary.LittleEndian.PutUint16(p[0:], uint16(h.Version))
	p[2] = code
	p[3] = flags
	binary.LittleEndian.PutUint32(p[4:], uint32(h.Shards))
	binary.LittleEndian.PutUint32(p[8:], uint32(h.ShardFrom))
	binary.LittleEndian.PutUint32(p[12:], uint32(h.ShardTo))
	binary.LittleEndian.PutUint64(p[16:], uint64(h.Trees))
	binary.LittleEndian.PutUint64(p[24:], h.Sum)
	binary.LittleEndian.PutUint64(p[32:], math.Float64bits(h.LenSum))
	binary.LittleEndian.PutUint32(p[40:], uint32(len(h.TaxaNames)))
	for _, name := range h.TaxaNames {
		p = binary.AppendUvarint(p, uint64(len(name)))
		p = append(p, name...)
	}
	return p, nil
}

// decodeHeader parses and validates a header payload.
func decodeHeader(p []byte) (*Header, error) {
	if len(p) < 44 {
		return nil, fmt.Errorf("bfhsnap: header payload is %d bytes, need at least 44", len(p))
	}
	h := &Header{Version: int(binary.LittleEndian.Uint16(p[0:]))}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("bfhsnap: header version %d, this reader handles %d", h.Version, FormatVersion)
	}
	var err error
	if h.Backend, err = backendFromCode(p[2]); err != nil {
		return nil, err
	}
	flags := p[3]
	if flags&^(flagWeighted|flagCompressed|flagFrozen) != 0 {
		return nil, fmt.Errorf("bfhsnap: unknown header flags %#x", flags)
	}
	h.Weighted = flags&flagWeighted != 0
	h.Comp = flags&flagCompressed != 0
	h.Frozen = flags&flagFrozen != 0
	h.Shards = int(binary.LittleEndian.Uint32(p[4:]))
	h.ShardFrom = int(binary.LittleEndian.Uint32(p[8:]))
	h.ShardTo = int(binary.LittleEndian.Uint32(p[12:]))
	h.Trees = int(binary.LittleEndian.Uint64(p[16:]))
	h.Sum = binary.LittleEndian.Uint64(p[24:])
	h.LenSum = math.Float64frombits(binary.LittleEndian.Uint64(p[32:]))
	nTaxa := int(binary.LittleEndian.Uint32(p[40:]))
	switch {
	case h.Shards < 1 || h.Shards > maxShards || h.Shards&(h.Shards-1) != 0:
		return nil, fmt.Errorf("bfhsnap: header declares %d shards", h.Shards)
	case h.ShardFrom < 0 || h.ShardFrom >= h.ShardTo || h.ShardTo > h.Shards:
		return nil, fmt.Errorf("bfhsnap: header shard range [%d,%d) of %d", h.ShardFrom, h.ShardTo, h.Shards)
	case h.Trees < 0:
		return nil, fmt.Errorf("bfhsnap: header declares %d trees", h.Trees)
	case nTaxa < 1 || nTaxa > maxTaxa:
		return nil, fmt.Errorf("bfhsnap: header declares %d taxa", nTaxa)
	case h.Comp && h.Backend != core.BackendMap:
		return nil, fmt.Errorf("bfhsnap: compressed keys with backend %v", h.Backend)
	case h.Frozen && h.Backend != core.BackendSuccinct:
		return nil, fmt.Errorf("bfhsnap: frozen flag with backend %v", h.Backend)
	}
	q := p[44:]
	if nTaxa > len(q) {
		// Each name costs at least its one-byte length prefix, so this
		// count cannot fit the payload; checking first keeps a corrupt
		// count from sizing the slice below.
		return nil, fmt.Errorf("bfhsnap: header declares %d taxa in %d bytes", nTaxa, len(q))
	}
	h.TaxaNames = make([]string, 0, nTaxa)
	for i := 0; i < nTaxa; i++ {
		l, n := binary.Uvarint(q)
		if n <= 0 || l > uint64(len(q)-n) {
			return nil, fmt.Errorf("bfhsnap: header taxon %d truncated", i)
		}
		h.TaxaNames = append(h.TaxaNames, string(q[n:n+int(l)]))
		q = q[n+int(l):]
	}
	if len(q) != 0 {
		return nil, fmt.Errorf("bfhsnap: %d trailing bytes after header taxa", len(q))
	}
	return h, nil
}

// sameHash reports whether two part headers describe parts of the same
// hash. Totals and flags are deliberately ignored: copy-on-write epochs
// hard-link unchanged part files from older epochs, whose embedded totals
// (and weighted flag) are stale — the MANIFEST carries the live values.
func (h *Header) sameHash(o *Header) error {
	switch {
	case h.Version != o.Version:
		return fmt.Errorf("bfhsnap: part version %d vs %d", o.Version, h.Version)
	case h.Backend != o.Backend:
		return fmt.Errorf("bfhsnap: part backend %v vs %v", o.Backend, h.Backend)
	case h.Comp != o.Comp:
		return fmt.Errorf("bfhsnap: part key compression mismatch")
	case h.Shards != o.Shards:
		return fmt.Errorf("bfhsnap: part declares %d shards vs %d", o.Shards, h.Shards)
	case len(h.TaxaNames) != len(o.TaxaNames):
		return fmt.Errorf("bfhsnap: part declares %d taxa vs %d", len(o.TaxaNames), len(h.TaxaNames))
	}
	for i, name := range h.TaxaNames {
		if o.TaxaNames[i] != name {
			return fmt.Errorf("bfhsnap: part taxon %d is %q vs %q", i, o.TaxaNames[i], name)
		}
	}
	return nil
}
