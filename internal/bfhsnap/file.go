package bfhsnap

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
)

// Whole-file save/load: the single-stream convenience layer used directly
// for standalone .bfh files and by the epoch store for its part files.

// SaveFile atomically writes a complete snapshot of h to path and returns
// the bytes written. The write is crash-safe (temp file + fsync + rename
// via internal/atomicio): a crash mid-save leaves any previous file
// intact.
func SaveFile(path string, h *core.FreqHash) (int64, error) {
	f, err := atomicio.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	n, err := WriteStream(bw, h, 0, h.NumShards())
	if err != nil {
		return n, err
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("bfhsnap: writing %s: %w", path, err)
	}
	return n, f.Commit()
}

// LoadFile loads a complete single-stream snapshot.
func LoadFile(path string) (*core.FreqHash, *Header, error) {
	start := time.Now()
	f, size, err := openSized(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	h, hdr, err := ReadStream(bufio.NewReaderSize(f, 1<<20), size)
	if err != nil {
		return nil, nil, fmt.Errorf("bfhsnap: loading %s: %w", path, err)
	}
	mSnapshotLoadSeconds.Observe(time.Since(start).Seconds())
	return h, hdr, nil
}

// ReadHeaderFile decodes just the header of a snapshot file — enough to
// learn the taxa, backend, and shard range without loading any storage.
func ReadHeaderFile(path string) (*Header, error) {
	f, size, err := openSized(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr, err := ReadHeader(bufio.NewReaderSize(f, 1<<16), size)
	if err != nil {
		return nil, fmt.Errorf("bfhsnap: reading %s: %w", path, err)
	}
	return hdr, nil
}

func openSized(path string) (io.ReadCloser, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("bfhsnap: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("bfhsnap: %w", err)
	}
	return f, st.Size(), nil
}
