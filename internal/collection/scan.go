package collection

import (
	"fmt"
	"io"

	"repro/internal/taxa"
	"repro/internal/tree"
)

// ScanTaxa streams every source once and returns the union of all leaf
// names as a lexicographically ordered catalogue. Sources are reset before
// and after scanning.
func ScanTaxa(sources ...Source) (*taxa.Set, error) {
	seen := make(map[string]bool)
	var names []string
	for _, src := range sources {
		if err := src.Reset(); err != nil {
			return nil, err
		}
		for {
			t, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			for _, name := range t.LeafNames() {
				if name == "" {
					return nil, fmt.Errorf("collection: tree with unnamed leaf")
				}
				if !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
			}
		}
		if err := src.Reset(); err != nil {
			return nil, err
		}
	}
	return taxa.NewSet(names)
}

// ScanCommonTaxa streams every source once and returns the intersection of
// the leaf-name sets of all trees across all sources — the catalogue used
// by intersection-reduction variable-taxa RF.
func ScanCommonTaxa(sources ...Source) (*taxa.Set, error) {
	var common map[string]bool
	for _, src := range sources {
		if err := src.Reset(); err != nil {
			return nil, err
		}
		for {
			t, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			names := t.LeafNames()
			if common == nil {
				common = make(map[string]bool, len(names))
				for _, n := range names {
					common[n] = true
				}
				continue
			}
			here := make(map[string]bool, len(names))
			for _, n := range names {
				here[n] = true
			}
			for n := range common {
				if !here[n] {
					delete(common, n)
				}
			}
		}
		if err := src.Reset(); err != nil {
			return nil, err
		}
	}
	names := make([]string, 0, len(common))
	for n := range common {
		names = append(names, n)
	}
	return taxa.NewSet(names)
}

// Map wraps src, applying f to every tree as it streams. Reset passes
// through to the underlying source.
type Map struct {
	Src Source
	F   func(*tree.Tree) (*tree.Tree, error)
}

// Next implements Source.
func (m *Map) Next() (*tree.Tree, error) {
	t, err := m.Src.Next()
	if err != nil {
		return nil, err
	}
	return m.F(t)
}

// Reset implements Source.
func (m *Map) Reset() error { return m.Src.Reset() }

// Count implements Counter when the underlying source does.
func (m *Map) Count() int {
	if c, ok := m.Src.(Counter); ok {
		return c.Count()
	}
	return -1
}

// Restricted wraps src so every tree is restricted to the given catalogue
// (intersection reduction for variable-taxa RF).
func Restricted(src Source, ts *taxa.Set) Source {
	return &Map{Src: src, F: func(t *tree.Tree) (*tree.Tree, error) {
		return tree.Restrict(t, ts.Contains)
	}}
}
