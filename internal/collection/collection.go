// Package collection abstracts tree collections (the paper's Q and R) as
// resettable streams, so that engines can either hold a collection in
// memory (DS/DSMP/HashRF, as in the paper) or stream it tree-by-tree
// (BFHRF's dynamic loading).
package collection

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/newick"
	"repro/internal/nexus"
	"repro/internal/tree"
)

// Source is a resettable stream of trees. Next returns io.EOF after the
// last tree. Reset rewinds to the first tree; a Source must support any
// number of Reset/iterate cycles.
type Source interface {
	Next() (*tree.Tree, error)
	Reset() error
}

// Counter is implemented by sources that know their size without a scan.
// A negative Count means the size is not (yet) known.
type Counter interface {
	Count() int
}

// Len returns the number of trees in src, using Counter when available and
// otherwise scanning (and resetting) the source.
func Len(src Source) (int, error) {
	if c, ok := src.(Counter); ok {
		if n := c.Count(); n >= 0 {
			return n, nil
		}
	}
	if err := src.Reset(); err != nil {
		return 0, err
	}
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		n++
	}
	return n, src.Reset()
}

// Slice is an in-memory Source over a fixed slice of trees.
type Slice struct {
	Trees []*tree.Tree
	pos   int
}

// FromTrees wraps trees in an in-memory Source.
func FromTrees(trees []*tree.Tree) *Slice { return &Slice{Trees: trees} }

// Next implements Source.
func (s *Slice) Next() (*tree.Tree, error) {
	if s.pos >= len(s.Trees) {
		return nil, io.EOF
	}
	t := s.Trees[s.pos]
	s.pos++
	return t, nil
}

// Reset implements Source.
func (s *Slice) Reset() error { s.pos = 0; return nil }

// Count implements Counter.
func (s *Slice) Count() int { return len(s.Trees) }

// File streams trees from a Newick file, reopening it on Reset. It never
// holds more than one parsed tree in memory.
type File struct {
	Path  string
	f     *os.File
	gz    *gzip.Reader
	r     treeReader
	nr    *newick.Reader // concrete reader when plain Newick, for resync
	raw   *rawScanner    // non-nil for plain Newick; enables NextRaw
	count int            // trees seen on the first full pass; -1 until known
	seen  int
	opts  Options
	diags []Diag // trees skipped this pass (lenient mode)
}

// treeReader is the streaming interface both format readers satisfy.
type treeReader interface {
	Read() (*tree.Tree, error)
}

// OpenFile returns a streaming Source over the tree file at path. The
// format is sniffed from content: gzip-compressed input is decompressed
// transparently, and a leading "#NEXUS" selects the NEXUS reader (MrBayes
// and PAUP* output); anything else is parsed as plain Newick.
func OpenFile(path string) (*File, error) {
	fs := &File{Path: path, count: -1}
	if err := fs.Reset(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Next implements Source. In lenient mode (Options.Lenient), per-tree
// damage — a malformed statement, a tree over its size or taxon limit —
// is recorded as a Diag and skipped; only stream-level failures
// (unreadable input, byte budget exhausted) surface as errors.
func (s *File) Next() (*tree.Tree, error) {
	if s.r == nil {
		if err := s.Reset(); err != nil {
			return nil, err
		}
	}
	for {
		t, err := s.r.Read()
		if err == io.EOF {
			if s.count < 0 {
				s.count = s.seen
			}
			return nil, io.EOF
		}
		if err != nil {
			if s.recover(err) {
				continue
			}
			return nil, fmt.Errorf("collection: %s: %w", s.Path, err)
		}
		s.seen++
		return t, nil
	}
}

// Count implements Counter: the tree count is known (non-negative) only
// after at least one complete pass over the file.
func (s *File) Count() int { return s.count }

// Reset implements Source.
func (s *File) Reset() error {
	if s.gz != nil {
		s.gz.Close()
		s.gz = nil
	}
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if err := faultinject.Hit(faultinject.PointIOOpen); err != nil {
		return fmt.Errorf("collection: %s: %w", s.Path, err)
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return err
	}
	s.f = f
	br := bufio.NewReader(f)
	// Transparent gzip: sniff the two-byte magic.
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			s.f = nil
			return fmt.Errorf("collection: %s: %w", s.Path, err)
		}
		s.gz = gz
		br = bufio.NewReader(gz)
	}
	// The parser reads through the fault-injection tap (free when
	// disarmed) and, when a budget is set, through the byte-budget
	// enforcer — counting decompressed bytes, so a gzip bomb trips it too.
	var rd io.Reader = faultinject.Reader(faultinject.PointIORead, br)
	if s.opts.MaxInputBytes > 0 {
		rd = newBudgetReader(rd, s.opts.MaxInputBytes, s.Path)
	}
	pbr := bufio.NewReader(rd)
	// Format sniff: "#NEXUS" (optionally after whitespace) vs Newick.
	// For plain Newick a raw-statement scanner shares the buffered reader:
	// per pass, use either Next or NextRaw, never both. The raw fast path
	// is disabled whenever ingest options are set — raw statements bypass
	// the per-tree parser, so limits and lenient skipping could not be
	// enforced on them.
	if isNexus(pbr) {
		xr := nexus.NewReader(pbr)
		xr.SetLimits(s.opts.Limits)
		s.r = xr
		s.nr = nil
		s.raw = nil
	} else {
		nr := newick.NewReader(pbr)
		nr.SetLimits(s.opts.Limits)
		s.r = nr
		s.nr = nr
		if s.opts.zero() {
			s.raw = newRawScanner(pbr)
		} else {
			s.raw = nil
		}
	}
	s.seen = 0
	s.diags = nil
	return nil
}

// isNexus peeks at the first non-whitespace bytes for the NEXUS magic.
func isNexus(br *bufio.Reader) bool {
	const probe = 64
	head, _ := br.Peek(probe)
	trimmed := strings.TrimLeft(string(head), " \t\r\n")
	return len(trimmed) >= 6 && strings.EqualFold(trimmed[:6], "#NEXUS")
}

// Close releases the underlying file.
func (s *File) Close() error {
	if s.gz != nil {
		s.gz.Close()
		s.gz = nil
	}
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}

// Generator synthesizes trees on demand via Make(i), never holding the
// collection in memory. Make must be deterministic in i so that Reset
// reproduces the same collection.
type Generator struct {
	N    int
	Make func(i int) *tree.Tree
	pos  int
}

// Next implements Source.
func (g *Generator) Next() (*tree.Tree, error) {
	if g.pos >= g.N {
		return nil, io.EOF
	}
	t := g.Make(g.pos)
	g.pos++
	return t, nil
}

// Reset implements Source.
func (g *Generator) Reset() error { g.pos = 0; return nil }

// Count implements Counter.
func (g *Generator) Count() int { return g.N }

// ReadAll materializes src into memory (resetting it first and afterwards).
func ReadAll(src Source) ([]*tree.Tree, error) {
	if err := src.Reset(); err != nil {
		return nil, err
	}
	var out []*tree.Tree
	for {
		t, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, src.Reset()
}

// Head wraps src, exposing only its first N trees without materializing
// them (unlike Limit). Reset passes through.
type Head struct {
	Src  Source
	N    int
	seen int
}

// Next implements Source.
func (h *Head) Next() (*tree.Tree, error) {
	if h.seen >= h.N {
		return nil, io.EOF
	}
	t, err := h.Src.Next()
	if err != nil {
		return nil, err
	}
	h.seen++
	return t, nil
}

// Reset implements Source.
func (h *Head) Reset() error {
	h.seen = 0
	return h.Src.Reset()
}

// Count implements Counter when the underlying source does.
func (h *Head) Count() int {
	if c, ok := h.Src.(Counter); ok {
		if n := c.Count(); n >= 0 && n < h.N {
			return n
		}
		if n := c.Count(); n >= 0 {
			return h.N
		}
	}
	return -1
}

// Limit returns an in-memory Source over the first n trees of src
// ("each data point is the first r trees of the data set", paper Fig. 1).
func Limit(src Source, n int) (Source, error) {
	if err := src.Reset(); err != nil {
		return nil, err
	}
	trees := make([]*tree.Tree, 0, n)
	for len(trees) < n {
		t, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
	if err := src.Reset(); err != nil {
		return nil, err
	}
	return FromTrees(trees), nil
}
