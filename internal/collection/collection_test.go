package collection

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/newick"
	"repro/internal/taxa"
	"repro/internal/tree"
)

func mustParseAll(t *testing.T, nwk ...string) []*tree.Tree {
	t.Helper()
	out := make([]*tree.Tree, len(nwk))
	for i, s := range nwk {
		out[i] = newick.MustParse(s)
	}
	return out
}

func drain(t *testing.T, s Source) int {
	t.Helper()
	n := 0
	for {
		_, err := s.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

func TestSliceSource(t *testing.T) {
	s := FromTrees(mustParseAll(t, "(A,B,C);", "(A,(B,C));"))
	if got := drain(t, s); got != 2 {
		t.Errorf("drained %d", got)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Error("exhausted source must keep returning EOF")
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, s); got != 2 {
		t.Errorf("after Reset drained %d", got)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.nwk")
	content := "(A,B,(C,D));\n((A,B),(C,D));\n(A,(B,(C,D)));\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := drain(t, s); got != 3 {
		t.Errorf("drained %d", got)
	}
	// Count becomes known after a full pass.
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, s); got != 3 {
		t.Errorf("after Reset drained %d", got)
	}
}

func TestFileSourceMissing(t *testing.T) {
	if _, err := OpenFile("/nonexistent/path/x.nwk"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestFileSourceParseError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.nwk")
	if err := os.WriteFile(path, []byte("(A,B,(C,D));\n(A,;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Next(); err != nil {
		t.Fatalf("first tree should parse: %v", err)
	}
	if _, err := s.Next(); err == nil || err == io.EOF {
		t.Error("second tree should be a parse error")
	}
}

func TestGeneratorSource(t *testing.T) {
	calls := 0
	g := &Generator{N: 5, Make: func(i int) *tree.Tree {
		calls++
		return newick.MustParse("(A,B,C);")
	}}
	if got := drain(t, g); got != 5 {
		t.Errorf("drained %d", got)
	}
	if err := g.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, g); got != 5 {
		t.Errorf("after Reset drained %d", got)
	}
	if calls != 10 {
		t.Errorf("Make called %d times, want 10 (regenerated)", calls)
	}
	if g.Count() != 5 {
		t.Errorf("Count = %d", g.Count())
	}
}

func TestLen(t *testing.T) {
	s := FromTrees(mustParseAll(t, "(A,B,C);", "(A,B,C);"))
	n, err := Len(s)
	if err != nil || n != 2 {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestReadAll(t *testing.T) {
	s := FromTrees(mustParseAll(t, "(A,B,C);", "(A,(B,C));"))
	drain(t, s) // exhaust first; ReadAll must Reset
	trees, err := ReadAll(s)
	if err != nil || len(trees) != 2 {
		t.Errorf("ReadAll = %d trees, %v", len(trees), err)
	}
	// Source is reset afterwards.
	if got := drain(t, s); got != 2 {
		t.Errorf("source not reset after ReadAll: %d", got)
	}
}

func TestLimit(t *testing.T) {
	s := FromTrees(mustParseAll(t, "(A,B,C);", "(A,(B,C));", "((A,B),C);"))
	lim, err := Limit(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, lim); got != 2 {
		t.Errorf("Limit drained %d", got)
	}
	// Limit beyond size returns everything.
	lim2, err := Limit(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, lim2); got != 3 {
		t.Errorf("over-Limit drained %d", got)
	}
}

func TestScanTaxa(t *testing.T) {
	a := FromTrees(mustParseAll(t, "(A,B,C);"))
	b := FromTrees(mustParseAll(t, "(B,C,D);"))
	ts, err := ScanTaxa(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 4 {
		t.Errorf("union taxa = %d, want 4", ts.Len())
	}
	// Sources usable afterwards.
	if got := drain(t, a); got != 1 {
		t.Error("source not reset after ScanTaxa")
	}
}

func TestScanCommonTaxa(t *testing.T) {
	a := FromTrees(mustParseAll(t, "(A,B,C,D);", "(A,B,C,E);"))
	b := FromTrees(mustParseAll(t, "(A,B,C,F);"))
	ts, err := ScanCommonTaxa(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 3 || !ts.Contains("A") || !ts.Contains("B") || !ts.Contains("C") {
		t.Errorf("common taxa = %v", ts.Names())
	}
}

func TestRestrictedSource(t *testing.T) {
	src := FromTrees(mustParseAll(t, "((A,B),((C,D),(E,X)));"))
	keep := taxa.MustNewSet([]string{"A", "B", "C", "D", "E"})
	rs := Restricted(src, keep)
	tr, err := rs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 5 {
		t.Errorf("restricted leaves = %d, want 5", tr.NumLeaves())
	}
	for _, n := range tr.LeafNames() {
		if n == "X" {
			t.Error("X should be pruned")
		}
	}
	if _, err := rs.Next(); err != io.EOF {
		t.Error("expected EOF")
	}
	if err := rs.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Errorf("after reset: %v", err)
	}
}

func TestMapPropagatesError(t *testing.T) {
	src := FromTrees(mustParseAll(t, "(A,B,C);"))
	m := &Map{Src: src, F: func(*tree.Tree) (*tree.Tree, error) {
		return nil, io.ErrUnexpectedEOF
	}}
	if _, err := m.Next(); err != io.ErrUnexpectedEOF {
		t.Errorf("Map should propagate F errors, got %v", err)
	}
}

func TestFileSourceLarge(t *testing.T) {
	// Streaming over a file with many trees, with interleaved Reset.
	dir := t.TempDir()
	path := filepath.Join(dir, "many.nwk")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := f.WriteString("((A,B),(C,D));\n"); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for pass := 0; pass < 3; pass++ {
		if got := drain(t, s); got != 500 {
			t.Fatalf("pass %d drained %d", pass, got)
		}
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}
