package collection

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/newick"
	"repro/internal/nexus"
	"repro/internal/obs"
)

// mSkipped counts trees dropped by lenient ingest; the per-tree reason
// goes to the diagnostic sink, not a label (causes are unbounded).
var mSkipped = obs.Counter("bfhrf_ingest_skipped_total",
	"Malformed or over-limit trees skipped by lenient ingest.")

// Options hardens file ingest. The zero value is the historical behavior:
// strict parsing, no limits.
type Options struct {
	// Lenient makes Next skip malformed or over-limit trees (recording a
	// Diag for each) instead of failing the whole file. Real I/O errors —
	// unreadable file, byte-budget exhaustion — still fail fast: only
	// per-tree damage is recoverable.
	Lenient bool
	// Limits bounds each tree's serialized size and taxon count.
	Limits newick.Limits
	// MaxInputBytes caps the (decompressed) bytes read from the file per
	// pass; 0 means unlimited. Exceeding it is a hard error even in
	// lenient mode — the budget exists to stop runaway inputs, and a
	// "skip" that keeps reading would not.
	MaxInputBytes int64
	// OnDiag, when set, observes each skipped tree as it happens (for
	// streaming diagnostics files). Diags are also retained on the File.
	OnDiag func(Diag)
}

func (o Options) zero() bool {
	return !o.Lenient && o.Limits == (newick.Limits{}) && o.MaxInputBytes == 0 && o.OnDiag == nil
}

// Diag records one tree skipped by lenient ingest.
type Diag struct {
	Path string
	// Tree is the 1-based ordinal of the damaged statement within the
	// file, counting both parsed and skipped trees.
	Tree int
	// Line is the 1-based line where the failure was detected (0 if
	// unknown).
	Line int
	// Reason is the parser's message.
	Reason string
	// Limit marks trees dropped by a resource limit rather than a syntax
	// error.
	Limit bool
}

func (d Diag) String() string {
	kind := "malformed"
	if d.Limit {
		kind = "over limit"
	}
	return fmt.Sprintf("%s: tree %d (line %d): %s: %s", d.Path, d.Tree, d.Line, kind, d.Reason)
}

// ErrInputBudget is wrapped by errors reported when a file exceeds
// Options.MaxInputBytes.
var ErrInputBudget = errors.New("input byte budget exceeded")

// budgetReader fails any read past max bytes. It sits below the parser's
// buffering, so the cost is one comparison per buffered refill.
type budgetReader struct {
	r         io.Reader
	remaining int64
	max       int64
	path      string
}

func newBudgetReader(r io.Reader, max int64, path string) *budgetReader {
	return &budgetReader{r: r, remaining: max, max: max, path: path}
}

func (b *budgetReader) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("collection: %s: %w (limit %d bytes)", b.path, ErrInputBudget, b.max)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	return n, err
}

// OpenFileOpts is OpenFile with hardened-ingest options.
func OpenFileOpts(path string, opts Options) (*File, error) {
	fs := &File{Path: path, count: -1, opts: opts}
	if err := fs.Reset(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Diags returns the trees skipped so far in the current pass (lenient
// mode only). The slice is owned by the File; do not mutate it.
func (s *File) Diags() []Diag { return s.diags }

// Skipped returns the number of trees dropped in the current pass.
func (s *File) Skipped() int { return len(s.diags) }

// recover inspects a Read error and, in lenient mode, resynchronizes the
// stream past per-tree damage. It reports whether reading may continue.
func (s *File) recover(err error) bool {
	if !s.opts.Lenient {
		return false
	}
	var se *nexus.StatementError
	if errors.As(err, &se) {
		// The offending statement is already consumed; just record it.
		s.recordDiag(Diag{Line: se.Line, Reason: se.Err.Error(), Limit: se.Limit})
		return true
	}
	var pe *newick.ParseError
	if errors.As(err, &pe) {
		if s.nr == nil {
			return false
		}
		if skipErr := s.nr.SkipTree(); skipErr != nil && skipErr != io.EOF {
			return false
		}
		s.recordDiag(Diag{Line: pe.Line, Reason: pe.Msg, Limit: pe.Limit})
		return true
	}
	return false
}

func (s *File) recordDiag(d Diag) {
	d.Path = s.Path
	d.Tree = s.seen + len(s.diags) + 1
	s.diags = append(s.diags, d)
	mSkipped.Inc()
	if s.opts.OnDiag != nil {
		s.opts.OnDiag(d)
	}
}
