package collection

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeGzip(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

const nexusContent = `#NEXUS
BEGIN TREES;
  TRANSLATE 1 A, 2 B, 3 C, 4 D;
  TREE one = ((1,2),(3,4));
  TREE two = ((1,3),(2,4));
END;
`

func TestOpenFileNexusAutoDetect(t *testing.T) {
	path := writeFile(t, "trees.nex", nexusContent)
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	n, err := Len(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("NEXUS trees = %d, want 2", n)
	}
	tr, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	names := tr.LeafNames()
	found := false
	for _, nm := range names {
		if nm == "A" {
			found = true
		}
	}
	if !found {
		t.Errorf("translate not applied: %v", names)
	}
}

func TestOpenFileGzipNewick(t *testing.T) {
	path := writeGzip(t, "trees.nwk.gz", "((A,B),(C,D));\n((A,C),(B,D));\n((A,D),(B,C));\n")
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for pass := 0; pass < 2; pass++ {
		if got := drain(t, src); got != 3 {
			t.Fatalf("pass %d: trees = %d, want 3", pass, got)
		}
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenFileGzipNexus(t *testing.T) {
	path := writeGzip(t, "trees.nex.gz", nexusContent)
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := drain(t, src); got != 2 {
		t.Errorf("gzip NEXUS trees = %d, want 2", got)
	}
}

func TestOpenFileNexusLeadingWhitespace(t *testing.T) {
	path := writeFile(t, "pad.nex", "\n\n  "+nexusContent)
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := drain(t, src); got != 2 {
		t.Errorf("padded NEXUS trees = %d, want 2", got)
	}
}

func TestOpenFileCorruptGzip(t *testing.T) {
	path := writeFile(t, "bad.gz", "\x1f\x8bnot really gzip")
	if _, err := OpenFile(path); err == nil {
		t.Error("corrupt gzip should fail at open")
	}
}
