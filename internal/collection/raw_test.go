package collection

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/newick"
)

func openTempNewick(t *testing.T, content string) *File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.nwk")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

func TestNextRawSplitsStatements(t *testing.T) {
	src := openTempNewick(t, "((A,B),(C,D));\n((A,C),(B,D));\n(A,D,(B,C));\n")
	var stmts []string
	for {
		s, err := src.NextRaw()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stmts = append(stmts, s)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d, want 3", len(stmts))
	}
	// Each statement must itself parse.
	for i, s := range stmts {
		tr, err := newick.Parse(s)
		if err != nil {
			t.Fatalf("statement %d does not parse: %v\n%q", i, err, s)
		}
		if tr.NumLeaves() != 4 {
			t.Errorf("statement %d leaves = %d", i, tr.NumLeaves())
		}
	}
	// Count becomes known after the raw pass too.
	if src.Count() != 3 {
		t.Errorf("Count = %d", src.Count())
	}
}

func TestNextRawRespectsQuotesAndComments(t *testing.T) {
	content := "(('a;b',C),(D,E))[note; with ; semis];\n((X,'it''s'),(Y,Z));\n"
	src := openTempNewick(t, content)
	var stmts []string
	for {
		s, err := src.NextRaw()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stmts = append(stmts, s)
	}
	if len(stmts) != 2 {
		t.Fatalf("statements = %d, want 2: %q", len(stmts), stmts)
	}
	if !strings.Contains(stmts[0], "a;b") {
		t.Error("quoted semicolon split the first statement")
	}
	tr, err := newick.Parse(stmts[1])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tr.LeafNames() {
		if n == "it's" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped quote mangled: %v", tr.LeafNames())
	}
}

func TestNextRawUnterminated(t *testing.T) {
	src := openTempNewick(t, "((A,B),(C,D));\n((A,C),(B,D))")
	if _, err := src.NextRaw(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.NextRaw(); err == nil || err == io.EOF {
		t.Errorf("unterminated statement should error, got %v", err)
	}
}

func TestNextRawResetInterleave(t *testing.T) {
	src := openTempNewick(t, "(A,B,(C,D));\n(A,C,(B,D));\n")
	if _, err := src.NextRaw(); err != nil {
		t.Fatal(err)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	// After Reset the parsed path works from the start.
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("parsed %d after raw+reset, want 2", n)
	}
}

func TestNextRawNexusUnsupported(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.nex")
	if err := os.WriteFile(path, []byte(nexusContent), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.NextRaw(); err != ErrRawUnsupported {
		t.Errorf("NEXUS NextRaw = %v, want ErrRawUnsupported", err)
	}
	// The parsed path still works.
	if got := drain(t, src); got != 2 {
		t.Errorf("parsed NEXUS trees = %d", got)
	}
}

func TestHeadCountSemantics(t *testing.T) {
	src := openTempNewick(t, "(A,B,(C,D));\n(A,C,(B,D));\n(A,D,(B,C));\n")
	h := &Head{Src: src, N: 2}
	// Unknown before a pass.
	if c := h.Count(); c != -1 {
		t.Errorf("Head.Count before pass = %d, want -1", c)
	}
	if got := drain(t, h); got != 2 {
		t.Fatalf("Head drained %d", got)
	}
	if err := h.Reset(); err != nil {
		t.Fatal(err)
	}
	// Underlying file hasn't completed a FULL pass (Head stopped early), so
	// its count may stay unknown; Head must report -1 or 2, never more.
	if c := h.Count(); c > 2 {
		t.Errorf("Head.Count = %d, want <= 2", c)
	}
	// A Head over a counted source caps at N.
	sl := FromTrees(mustParseAll(t, "(A,B,C);", "(A,B,C);", "(A,B,C);"))
	h2 := &Head{Src: sl, N: 2}
	if c := h2.Count(); c != 2 {
		t.Errorf("Head over slice Count = %d, want 2", c)
	}
	h3 := &Head{Src: sl, N: 10}
	if c := h3.Count(); c != 3 {
		t.Errorf("oversized Head Count = %d, want 3", c)
	}
}

func TestHeadNextRaw(t *testing.T) {
	src := openTempNewick(t, "(A,B,(C,D));\n(A,C,(B,D));\n(A,D,(B,C));\n")
	h := &Head{Src: src, N: 2}
	n := 0
	for {
		_, err := h.NextRaw()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("Head.NextRaw yielded %d, want 2", n)
	}
	// Over a non-raw source it must decline.
	h2 := &Head{Src: FromTrees(mustParseAll(t, "(A,B,C);")), N: 1}
	if _, err := h2.NextRaw(); err != ErrRawUnsupported {
		t.Errorf("Head over Slice NextRaw = %v, want ErrRawUnsupported", err)
	}
}
