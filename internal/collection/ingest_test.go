package collection

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/newick"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func drainLeaves(t *testing.T, src Source) []int {
	t.Helper()
	var leaves []int
	for {
		tr, err := src.Next()
		if err == io.EOF {
			return leaves
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		leaves = append(leaves, tr.NumLeaves())
	}
}

func TestLenientSkipsMalformedNewick(t *testing.T) {
	path := writeTemp(t, "mixed.nwk", "(a,b);\n(a,,b);\n(c,(d,e));\n")
	var streamed []Diag
	f, err := OpenFileOpts(path, Options{Lenient: true, OnDiag: func(d Diag) { streamed = append(streamed, d) }})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := drainLeaves(t, f); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("lenient read got leaf counts %v, want [2 3]", got)
	}
	diags := f.Diags()
	if len(diags) != 1 || len(streamed) != 1 {
		t.Fatalf("diags = %v, streamed = %v, want one each", diags, streamed)
	}
	d := diags[0]
	if d.Tree != 2 || d.Line != 2 || d.Path != path || d.Limit {
		t.Fatalf("diag = %+v", d)
	}
	// A second pass reproduces the same skips.
	if err := f.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := drainLeaves(t, f); len(got) != 2 {
		t.Fatalf("second pass got %v", got)
	}
	if f.Skipped() != 1 {
		t.Fatalf("second pass skipped %d", f.Skipped())
	}
}

func TestStrictStillFails(t *testing.T) {
	path := writeTemp(t, "bad.nwk", "(a,b);\n(a,,b);\n")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Next()
	if _, err := f.Next(); err == nil {
		t.Fatal("strict mode parsed malformed tree")
	}
}

func TestLenientSkipsOverLimitTrees(t *testing.T) {
	path := writeTemp(t, "big.nwk", "(a,b);\n(a,(b,(c,(d,(e,f)))));\n(c,d);\n")
	f, err := OpenFileOpts(path, Options{Lenient: true, Limits: newick.Limits{MaxTaxa: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := drainLeaves(t, f); len(got) != 2 {
		t.Fatalf("got %v trees", got)
	}
	if d := f.Diags(); len(d) != 1 || !d[0].Limit {
		t.Fatalf("diags = %v", f.Diags())
	}
}

func TestLenientNexus(t *testing.T) {
	src := "#NEXUS\nBEGIN TREES;\nTREE a = (a,(b,c));\nTREE bad = (a,,b);\nTREE b = ((a,b),(c,d));\nEND;\n"
	path := writeTemp(t, "mixed.nex", src)
	f, err := OpenFileOpts(path, Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if got := drainLeaves(t, f); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("lenient NEXUS got %v", got)
	}
	if len(f.Diags()) != 1 {
		t.Fatalf("diags = %v", f.Diags())
	}
}

func TestInputByteBudget(t *testing.T) {
	path := writeTemp(t, "many.nwk", "(a,b);\n(c,d);\n(e,f);\n(g,h);\n")
	f, err := OpenFileOpts(path, Options{MaxInputBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lastErr error
	for {
		_, err := f.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrInputBudget) {
		t.Fatalf("budget overrun gave %v, want ErrInputBudget", lastErr)
	}
	// Budget exhaustion is fatal even in lenient mode.
	f2, err := OpenFileOpts(path, Options{Lenient: true, MaxInputBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	lastErr = nil
	for {
		_, err := f2.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrInputBudget) {
		t.Fatalf("lenient budget overrun gave %v", lastErr)
	}
}

func TestOptionsDisableRawPath(t *testing.T) {
	path := writeTemp(t, "raw.nwk", "(a,b);\n(c,d);\n")
	f, err := OpenFileOpts(path, Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.NextRaw(); err != ErrRawUnsupported {
		t.Fatalf("NextRaw under options gave %v, want ErrRawUnsupported", err)
	}
	// Without options the raw path still works.
	f2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if stmt, err := f2.NextRaw(); err != nil || stmt == "" {
		t.Fatalf("plain NextRaw: %q, %v", stmt, err)
	}
}

func TestInjectedOpenAndReadFaults(t *testing.T) {
	defer faultinject.Disarm()
	path := writeTemp(t, "ok.nwk", "(a,b);\n(c,d);\n")

	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointIOOpen, Kind: faultinject.KindError, Hit: 1,
	})
	if _, err := OpenFile(path); err == nil {
		t.Fatal("injected open fault not surfaced")
	}
	faultinject.Disarm()

	// A mid-stream read error is fatal even in lenient mode (it is not
	// per-tree damage). Arm after Reset so the format sniff (which
	// tolerates read errors) does not absorb the fault.
	f, err := OpenFileOpts(path, Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	faultinject.Arm(faultinject.Plan{
		Point: faultinject.PointIORead, Kind: faultinject.KindError, Hit: 1, Times: -1,
	})
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, err := f.Next(); err != nil {
			lastErr = err
			break
		}
	}
	var ie *faultinject.Error
	if !errors.As(lastErr, &ie) {
		t.Fatalf("injected read fault gave %v", lastErr)
	}
}
