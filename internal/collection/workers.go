package collection

// treesPerWorkerFloor is the minimum number of trees that justifies one
// extra worker goroutine. Below it, channel handoff and goroutine startup
// dominate the per-tree work and parallelism makes small workloads slower
// (BENCH_0001: DSMP8 lost to single-threaded DS on a 289-tree slice).
const treesPerWorkerFloor = 64

// EffectiveWorkers clamps a requested worker count to what a workload of
// the given tree count can keep busy: at most one worker per 64 trees,
// never below one. A non-positive tree count means the workload size is
// unknown and the request passes through. Every engine routes its worker
// count through this one rule (core.Build, core.AverageRF, seqrf DSMP).
func EffectiveWorkers(requested, trees int) int {
	if requested < 1 {
		requested = 1
	}
	if trees <= 0 {
		return requested
	}
	max := trees / treesPerWorkerFloor
	if max < 1 {
		max = 1
	}
	if requested > max {
		return max
	}
	return requested
}
